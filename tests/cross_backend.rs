//! Cross-backend equivalence: the correctness oracle of the
//! Transport/Engine refactor.
//!
//! The same fixed-seed fleet must produce *identical* per-node RMSE
//! trajectories and byte counts whether it runs through the discrete-event
//! [`MemNetwork`] fabric (lockstep driver, simulated time), the
//! [`ChannelTransport`] fabric (one real OS thread per node, wall-clock
//! time), or the [`TcpTransport`] fabric (real loopback sockets with
//! length-prefixed framing, either driver). Only the time axis may
//! differ. This holds because the engine hands every node its inbox in
//! canonical order (ascending sender id, per-sender FIFO) regardless of
//! physical arrival order, and because the TCP backend's wire barrier
//! makes message visibility deterministic despite real propagation delay.

use rex_repro::core::builder::{build_mf_nodes, build_mf_nodes_sharded, NodeSeeds};
use rex_repro::core::config::{ExecutionMode, GossipAlgorithm, ProtocolConfig, SharingMode};
use rex_repro::core::engine::{Driver, Engine, EngineConfig, EngineResult, TimeAxis};
use rex_repro::core::Node;
use rex_repro::data::{Partition, SyntheticConfig, TrainTestSplit};
use rex_repro::ml::{MfHyperParams, MfModel};
use rex_repro::net::fault::{FaultPlan, FaultyTransport};
use rex_repro::net::{ChannelTransport, MemNetwork, TcpTransport, Transport};
use rex_repro::tee::SgxCostModel;
use rex_repro::topology::TopologySpec;

const EPOCHS: usize = 10;

fn fleet(sharing: SharingMode, algorithm: GossipAlgorithm) -> Vec<Node<MfModel>> {
    let ds = SyntheticConfig {
        num_users: 24,
        num_items: 160,
        num_ratings: 2_000,
        seed: 42,
        ..SyntheticConfig::default()
    }
    .generate();
    let split = TrainTestSplit::standard(&ds, 7);
    let part = Partition::multi_user(&split, 8);
    let graph = TopologySpec::SmallWorld.build(8, 5);
    build_mf_nodes(
        &part,
        &graph,
        ds.num_users,
        ds.num_items,
        MfHyperParams::default(),
        ProtocolConfig {
            sharing,
            algorithm,
            points_per_epoch: 40,
            steps_per_epoch: 120,
            seed: 17,
            ..ProtocolConfig::default()
        },
        NodeSeeds::default(),
    )
}

fn engine_config(execution: ExecutionMode, time: TimeAxis, driver: Driver) -> EngineConfig {
    EngineConfig {
        epochs: EPOCHS,
        execution,
        time,
        driver,
        processes_per_platform: 1, // identical platform packing on both sides
        seed: 0xE0,
        faults: None,
        membership: None,
    }
}

/// Runs one fleet through the simulator fabric, another identical fleet
/// through the channel fabric with real threads, and returns both results
/// plus the final node states.
#[allow(clippy::type_complexity)]
fn run_both(
    execution: ExecutionMode,
) -> (
    (EngineResult, Vec<Node<MfModel>>),
    (EngineResult, Vec<Node<MfModel>>),
) {
    let mut sim_nodes = fleet(SharingMode::RawData, GossipAlgorithm::DPsgd);
    let sim = Engine::<MfModel, MemNetwork>::new(
        MemNetwork::new(sim_nodes.len()),
        engine_config(
            execution,
            TimeAxis::Simulated(Default::default()),
            Driver::Lockstep { parallel: false },
        ),
    )
    .run("sim", &mut sim_nodes);

    let mut threaded_nodes = fleet(SharingMode::RawData, GossipAlgorithm::DPsgd);
    let threaded = Engine::<MfModel, ChannelTransport>::new(
        ChannelTransport::new(threaded_nodes.len()),
        engine_config(execution, TimeAxis::Wall, Driver::ThreadPerNode),
    )
    .run("threads", &mut threaded_nodes);

    ((sim, sim_nodes), (threaded, threaded_nodes))
}

fn assert_equivalent(
    (sim, sim_nodes): &(EngineResult, Vec<Node<MfModel>>),
    (threaded, threaded_nodes): &(EngineResult, Vec<Node<MfModel>>),
) {
    // Per-epoch fleet RMSE and byte means: bit-identical.
    assert_eq!(sim.trace.records.len(), threaded.trace.records.len());
    for (s, t) in sim.trace.records.iter().zip(&threaded.trace.records) {
        assert_eq!(
            s.rmse.to_bits(),
            t.rmse.to_bits(),
            "epoch {}: rmse diverged: sim {} vs threads {}",
            s.epoch,
            s.rmse,
            t.rmse
        );
        assert_eq!(
            s.bytes_per_node.to_bits(),
            t.bytes_per_node.to_bits(),
            "epoch {}: byte means diverged",
            s.epoch
        );
        // The verifiable-epochs contract rides on the same determinism:
        // the aggregate commitment root folds every live node's chained
        // model digest and HMAC tag in node order, so root equality means
        // every per-node commitment matched bit-for-bit.
        assert_eq!(
            s.commitment_root, t.commitment_root,
            "epoch {}: commitment root diverged",
            s.epoch
        );
    }

    // Per-node traffic counters: identical message-for-message.
    assert_eq!(sim.final_stats, threaded.final_stats);

    // Per-node final models: identical local RMSE.
    for (a, b) in sim_nodes.iter().zip(threaded_nodes) {
        let (ra, rb) = (a.local_rmse(), b.local_rmse());
        match (ra, rb) {
            (Some(x), Some(y)) => assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "node {}: final rmse diverged: {x} vs {y}",
                a.id()
            ),
            (None, None) => {}
            _ => panic!("node {}: rmse presence diverged", a.id()),
        }
        assert_eq!(
            a.store().len(),
            b.store().len(),
            "node {}: store size",
            a.id()
        );
    }
}

/// Runs the reference fleet over the mem fabric (lockstep, simulated
/// time) and an identical fleet over real TCP loopback sockets with the
/// given driver.
#[allow(clippy::type_complexity)]
fn run_mem_vs_tcp(
    execution: ExecutionMode,
    tcp_driver: Driver,
) -> (
    (EngineResult, Vec<Node<MfModel>>),
    (EngineResult, Vec<Node<MfModel>>),
) {
    let mut sim_nodes = fleet(SharingMode::RawData, GossipAlgorithm::DPsgd);
    let sim = Engine::<MfModel, MemNetwork>::new(
        MemNetwork::new(sim_nodes.len()),
        engine_config(
            execution,
            TimeAxis::Simulated(Default::default()),
            Driver::Lockstep { parallel: false },
        ),
    )
    .run("sim", &mut sim_nodes);

    let mut tcp_nodes = fleet(SharingMode::RawData, GossipAlgorithm::DPsgd);
    let tcp = Engine::<MfModel, TcpTransport>::new(
        TcpTransport::loopback(tcp_nodes.len()).expect("loopback fabric"),
        engine_config(execution, TimeAxis::Wall, tcp_driver),
    )
    .run("tcp", &mut tcp_nodes);

    ((sim, sim_nodes), (tcp, tcp_nodes))
}

/// Wraps any backend in the fault layer with an *empty* plan — the
/// wrapper's identity oracle. A clean plan must change nothing: not one
/// RMSE bit, not one payload byte.
fn identity_wrapped<T: Transport>(inner: T) -> FaultyTransport<T> {
    FaultyTransport::new(inner, FaultPlan::default())
}

/// Runs the reference fleet over the plain mem fabric and the same
/// fleet over `identity_wrapped(backend)`; both must be equivalent.
fn reference_run(execution: ExecutionMode) -> (EngineResult, Vec<Node<MfModel>>) {
    let mut nodes = fleet(SharingMode::RawData, GossipAlgorithm::DPsgd);
    let result = Engine::<MfModel, MemNetwork>::new(
        MemNetwork::new(nodes.len()),
        engine_config(
            execution,
            TimeAxis::Simulated(Default::default()),
            Driver::Lockstep { parallel: false },
        ),
    )
    .run("reference", &mut nodes);
    (result, nodes)
}

#[test]
fn empty_fault_plan_is_identity_on_every_backend_native() {
    let reference = reference_run(ExecutionMode::Native);

    let mut mem_nodes = fleet(SharingMode::RawData, GossipAlgorithm::DPsgd);
    let mem = Engine::<MfModel, FaultyTransport<MemNetwork>>::new(
        identity_wrapped(MemNetwork::new(mem_nodes.len())),
        engine_config(
            ExecutionMode::Native,
            TimeAxis::Simulated(Default::default()),
            Driver::Lockstep { parallel: false },
        ),
    )
    .run("faulty-mem", &mut mem_nodes);
    assert_equivalent(&reference, &(mem, mem_nodes));

    let mut chan_nodes = fleet(SharingMode::RawData, GossipAlgorithm::DPsgd);
    let chan = Engine::<MfModel, FaultyTransport<ChannelTransport>>::new(
        identity_wrapped(ChannelTransport::new(chan_nodes.len())),
        engine_config(ExecutionMode::Native, TimeAxis::Wall, Driver::ThreadPerNode),
    )
    .run("faulty-chan", &mut chan_nodes);
    assert_equivalent(&reference, &(chan, chan_nodes));

    let mut tcp_nodes = fleet(SharingMode::RawData, GossipAlgorithm::DPsgd);
    let tcp = Engine::<MfModel, FaultyTransport<TcpTransport>>::new(
        identity_wrapped(TcpTransport::loopback(tcp_nodes.len()).expect("loopback fabric")),
        engine_config(ExecutionMode::Native, TimeAxis::Wall, Driver::ThreadPerNode),
    )
    .run("faulty-tcp", &mut tcp_nodes);
    assert_equivalent(&reference, &(tcp, tcp_nodes));
}

#[test]
fn empty_fault_plan_is_identity_on_every_backend_sgx() {
    // SGX routes the attestation handshake through the (wrapped)
    // transport too — the wrapper must pass setup traffic through
    // untouched, native byte accounting included.
    let execution = ExecutionMode::Sgx(SgxCostModel::default());
    let reference = reference_run(execution);

    let mut mem_nodes = fleet(SharingMode::RawData, GossipAlgorithm::DPsgd);
    let mem = Engine::<MfModel, FaultyTransport<MemNetwork>>::new(
        identity_wrapped(MemNetwork::new(mem_nodes.len())),
        engine_config(
            execution,
            TimeAxis::Simulated(Default::default()),
            Driver::Lockstep { parallel: false },
        ),
    )
    .run("faulty-mem-sgx", &mut mem_nodes);
    assert_equivalent(&reference, &(mem, mem_nodes));

    let mut tcp_nodes = fleet(SharingMode::RawData, GossipAlgorithm::DPsgd);
    let tcp = Engine::<MfModel, FaultyTransport<TcpTransport>>::new(
        identity_wrapped(TcpTransport::loopback(tcp_nodes.len()).expect("loopback fabric")),
        engine_config(execution, TimeAxis::Wall, Driver::ThreadPerNode),
    )
    .run("faulty-tcp-sgx", &mut tcp_nodes);
    assert_equivalent(&reference, &(tcp, tcp_nodes));
}

/// Runs the reference fleet on the mem fabric under the work-stealing
/// scheduler with the given worker count.
fn work_steal_run(execution: ExecutionMode, workers: usize) -> (EngineResult, Vec<Node<MfModel>>) {
    let mut nodes = fleet(SharingMode::RawData, GossipAlgorithm::DPsgd);
    let result = Engine::<MfModel, MemNetwork>::new(
        MemNetwork::new(nodes.len()),
        engine_config(
            execution,
            TimeAxis::Simulated(Default::default()),
            Driver::WorkSteal { workers },
        ),
    )
    .run("work-steal", &mut nodes);
    (result, nodes)
}

#[test]
fn work_steal_scheduler_is_bit_identical_to_sequential_native() {
    // The fixed worker pool must not change one bit of the learning
    // trajectory, whatever the worker count (1 worker, several, more
    // workers than the auto choice would pick).
    let reference = reference_run(ExecutionMode::Native);
    for workers in [1, 3, 0] {
        let run = work_steal_run(ExecutionMode::Native, workers);
        assert_equivalent(&reference, &run);
    }
}

#[test]
fn work_steal_scheduler_is_bit_identical_to_sequential_sgx() {
    // SGX setup runs on the driver thread before the pool spins up; the
    // sealed per-epoch traffic must still match bit-for-bit.
    let reference = reference_run(ExecutionMode::Sgx(SgxCostModel::default()));
    let run = work_steal_run(ExecutionMode::Sgx(SgxCostModel::default()), 4);
    assert_equivalent(&reference, &run);
    assert!(run.0.setup_ns > 0);
}

/// The chaos suite's headline scenario (32 nodes, 10% uniform loss, two
/// crash-stop nodes) — the scheduler-equivalence oracle runs it through
/// both drivers over the fault-wrapped mem fabric.
fn headline_fleet() -> Vec<Node<MfModel>> {
    let n = 32;
    let ds = SyntheticConfig {
        num_users: (2 * n) as u32,
        num_items: 160,
        num_ratings: 125 * n,
        seed: 42,
        ..SyntheticConfig::default()
    }
    .generate();
    let split = TrainTestSplit::standard(&ds, 7);
    let part = Partition::multi_user(&split, n);
    let graph = TopologySpec::SmallWorld.build(n, 5);
    build_mf_nodes(
        &part,
        &graph,
        ds.num_users,
        ds.num_items,
        MfHyperParams::default(),
        ProtocolConfig {
            sharing: SharingMode::RawData,
            algorithm: GossipAlgorithm::DPsgd,
            points_per_epoch: 40,
            steps_per_epoch: 100,
            seed: 17,
            ..ProtocolConfig::default()
        },
        NodeSeeds::default(),
    )
}

fn headline_plan() -> FaultPlan {
    use rex_repro::net::fault::LinkFaults;
    FaultPlan::uniform(0xC4A05, LinkFaults::drop_rate(0.10))
        .with_crash(5, 3, None)
        .with_crash(17, 5, None)
}

fn run_headline(execution: ExecutionMode, driver: Driver) -> (EngineResult, Vec<Node<MfModel>>) {
    let plan = headline_plan();
    let mut nodes = headline_fleet();
    let result = Engine::<MfModel, FaultyTransport<MemNetwork>>::new(
        FaultyTransport::new(MemNetwork::new(nodes.len()), plan.clone()),
        EngineConfig {
            epochs: 10,
            execution,
            time: TimeAxis::Simulated(Default::default()),
            driver,
            processes_per_platform: 1,
            seed: 0xE0,
            faults: Some(plan),
            membership: None,
        },
    )
    .run("headline", &mut nodes);
    (result, nodes)
}

#[test]
fn work_steal_matches_sequential_under_chaos_headline_native() {
    let seq = run_headline(ExecutionMode::Native, Driver::Lockstep { parallel: false });
    let pool = run_headline(ExecutionMode::Native, Driver::WorkSteal { workers: 4 });
    assert_equivalent(&seq, &pool);
    // Fault accounting is part of the contract: liveness and the
    // delivered/dropped/late/duplicated counters must match per epoch.
    for (a, b) in seq.0.trace.records.iter().zip(&pool.0.trace.records) {
        assert_eq!(a.live_nodes, b.live_nodes, "epoch {}: liveness", a.epoch);
        assert_eq!(a.delivery, b.delivery, "epoch {}: delivery", a.epoch);
    }
    // And the plan really did degrade the fabric.
    assert!(seq.0.trace.total_delivery().dropped > 0);
    assert_eq!(seq.0.trace.min_live_nodes(), 30);
    // Commitments survive the chaos: every epoch still aggregates the
    // live nodes' chains into a non-zero root (checked equal across
    // drivers by `assert_equivalent` above).
    assert!(seq
        .0
        .trace
        .records
        .iter()
        .all(|r| r.commitment_root != [0u8; 32]));
}

#[test]
fn work_steal_matches_sequential_under_chaos_headline_sgx() {
    let execution = ExecutionMode::Sgx(SgxCostModel::default());
    let seq = run_headline(execution, Driver::Lockstep { parallel: false });
    let pool = run_headline(execution, Driver::WorkSteal { workers: 4 });
    assert_equivalent(&seq, &pool);
    for (a, b) in seq.0.trace.records.iter().zip(&pool.0.trace.records) {
        assert_eq!(a.live_nodes, b.live_nodes, "epoch {}: liveness", a.epoch);
        assert_eq!(a.delivery, b.delivery, "epoch {}: delivery", a.epoch);
    }
    assert!(seq.0.setup_ns > 0 && pool.0.setup_ns > 0);
}

/// One node per user (24 nodes), either through the pre-sharding
/// per-user partition or through width-1 user blocks on the sharded
/// construction path. The two must be indistinguishable — this is the
/// sharding determinism contract (`users_per_node = 1` stays bit-exact).
fn per_user_fleet(sharded: bool) -> Vec<Node<MfModel>> {
    let ds = SyntheticConfig {
        num_users: 24,
        num_items: 160,
        num_ratings: 2_000,
        seed: 42,
        ..SyntheticConfig::default()
    }
    .generate();
    let split = TrainTestSplit::standard(&ds, 7);
    let graph = TopologySpec::SmallWorld.build(24, 5);
    let cfg = ProtocolConfig {
        sharing: SharingMode::RawData,
        algorithm: GossipAlgorithm::DPsgd,
        points_per_epoch: 40,
        steps_per_epoch: 120,
        seed: 17,
        ..ProtocolConfig::default()
    };
    if sharded {
        let (part, blocks) = Partition::user_blocks(&split, 24);
        build_mf_nodes_sharded(
            &part,
            &blocks,
            &graph,
            ds.num_users,
            ds.num_items,
            MfHyperParams::default(),
            cfg,
            NodeSeeds::default(),
        )
    } else {
        let part = Partition::one_user_per_node(&split);
        build_mf_nodes(
            &part,
            &graph,
            ds.num_users,
            ds.num_items,
            MfHyperParams::default(),
            cfg,
            NodeSeeds::default(),
        )
    }
}

#[test]
fn width_one_sharded_fleet_matches_legacy_per_user_run_everywhere() {
    // The pre-PR trajectory: the legacy per-user fleet on the reference
    // backend (mem fabric, sequential lockstep, simulated time).
    let mut legacy_nodes = per_user_fleet(false);
    let legacy = Engine::<MfModel, MemNetwork>::new(
        MemNetwork::new(legacy_nodes.len()),
        engine_config(
            ExecutionMode::Native,
            TimeAxis::Simulated(Default::default()),
            Driver::Lockstep { parallel: false },
        ),
    )
    .run("legacy", &mut legacy_nodes);
    let reference = (legacy, legacy_nodes);

    // The users_per_node = 1 sharded fleet must reproduce it bit-for-bit
    // on every fabric and driver.
    let drivers = [
        Driver::Lockstep { parallel: false },
        Driver::WorkSteal { workers: 4 },
    ];
    for driver in drivers {
        let mut nodes = per_user_fleet(true);
        let result = Engine::<MfModel, MemNetwork>::new(
            MemNetwork::new(nodes.len()),
            engine_config(
                ExecutionMode::Native,
                TimeAxis::Simulated(Default::default()),
                driver,
            ),
        )
        .run("sharded-mem", &mut nodes);
        assert_equivalent(&reference, &(result, nodes));
    }
    for driver in drivers {
        let mut nodes = per_user_fleet(true);
        let result = Engine::<MfModel, ChannelTransport>::new(
            ChannelTransport::new(nodes.len()),
            engine_config(ExecutionMode::Native, TimeAxis::Wall, driver),
        )
        .run("sharded-chan", &mut nodes);
        assert_equivalent(&reference, &(result, nodes));
    }
    for driver in drivers {
        let mut nodes = per_user_fleet(true);
        let result = Engine::<MfModel, TcpTransport>::new(
            TcpTransport::loopback(nodes.len()).expect("loopback fabric"),
            engine_config(ExecutionMode::Native, TimeAxis::Wall, driver),
        )
        .run("sharded-tcp", &mut nodes);
        assert_equivalent(&reference, &(result, nodes));
    }
}

#[test]
fn native_runs_agree_across_backends() {
    let (sim, threaded) = run_both(ExecutionMode::Native);
    assert_equivalent(&sim, &threaded);
    // Sanity: the runs actually learned something.
    let first = sim.0.trace.records.first().unwrap().rmse;
    let last = sim.0.trace.final_rmse().unwrap();
    assert!(last < first, "no learning: {first} -> {last}");
    // Commitment roots are live (every epoch aggregates real chains) and
    // history-chained (no two epochs share a root).
    let roots: Vec<[u8; 32]> = sim
        .0
        .trace
        .records
        .iter()
        .map(|r| r.commitment_root)
        .collect();
    assert!(
        roots.iter().all(|r| *r != [0u8; 32]),
        "zeroed commitment root"
    );
    for (i, a) in roots.iter().enumerate() {
        for b in &roots[i + 1..] {
            assert_ne!(a, b, "commitment roots repeat across epochs");
        }
    }
}

#[test]
fn sgx_runs_agree_across_backends() {
    // SGX mode adds attestation, AEAD sealing, and hardware charges; the
    // charges are time-only, so learning trajectories and wire bytes must
    // still match bit-for-bit (sealing is deterministic per session).
    let (sim, threaded) = run_both(ExecutionMode::Sgx(SgxCostModel::default()));
    assert_equivalent(&sim, &threaded);
    assert!(sim.0.setup_ns > 0 && threaded.0.setup_ns > 0);
}

#[test]
fn lockstep_channel_matches_mem_fabric() {
    // The channel fabric driven in lockstep (no threads at all) must also
    // match: transports are interchangeable under one driver too.
    let mut mem_nodes = fleet(SharingMode::Model, GossipAlgorithm::Rmw);
    let mem = Engine::<MfModel, MemNetwork>::new(
        MemNetwork::new(mem_nodes.len()),
        engine_config(
            ExecutionMode::Native,
            TimeAxis::Simulated(Default::default()),
            Driver::Lockstep { parallel: false },
        ),
    )
    .run("mem", &mut mem_nodes);

    let mut chan_nodes = fleet(SharingMode::Model, GossipAlgorithm::Rmw);
    let chan = Engine::<MfModel, ChannelTransport>::new(
        ChannelTransport::new(chan_nodes.len()),
        engine_config(
            ExecutionMode::Native,
            TimeAxis::Wall,
            Driver::Lockstep { parallel: false },
        ),
    )
    .run("chan", &mut chan_nodes);

    assert_equivalent(&(mem, mem_nodes), &(chan, chan_nodes));
}

#[test]
fn tcp_loopback_threaded_matches_mem_fabric() {
    // Real sockets, one OS thread per node: the loopback stand-in for the
    // paper's distributed testbed must match the simulator bit-for-bit.
    let (sim, tcp) = run_mem_vs_tcp(ExecutionMode::Native, Driver::ThreadPerNode);
    assert_equivalent(&sim, &tcp);
    let first = sim.0.trace.records.first().unwrap().rmse;
    let last = sim.0.trace.final_rmse().unwrap();
    assert!(last < first, "no learning: {first} -> {last}");
}

#[test]
fn tcp_loopback_lockstep_matches_mem_fabric() {
    // The same sockets driven in lockstep (fabric view, no node threads).
    let (sim, tcp) = run_mem_vs_tcp(ExecutionMode::Native, Driver::Lockstep { parallel: false });
    assert_equivalent(&sim, &tcp);
}

#[test]
fn sgx_tcp_loopback_matches_mem_fabric() {
    // SGX mode sends the attestation handshake through the sockets too
    // (and the setup drain must not leak handshake frames into epoch 0).
    let (sim, tcp) = run_mem_vs_tcp(
        ExecutionMode::Sgx(SgxCostModel::default()),
        Driver::ThreadPerNode,
    );
    assert_equivalent(&sim, &tcp);
    assert!(sim.0.setup_ns > 0 && tcp.0.setup_ns > 0);
}
