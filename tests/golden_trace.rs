//! Golden-trace conformance suite: pinned per-epoch RMSE/traffic
//! fixtures, compared bit-for-bit against **every driver × backend**
//! combination — the regression net under the scheduler and codec work.
//!
//! Four scenarios are pinned under `tests/fixtures/`:
//!
//! * `raw` — 8-node REX (raw-data sharing, D-PSGD) on a small world;
//! * `model` — the same fleet sharing full models;
//! * `chaos_headline` — the chaos suite's headline: 32 nodes, 10%
//!   uniform loss, two crash-stop nodes;
//! * `membership` — the dynamic-membership churn scenario: 6 founders,
//!   two online joins (epochs 2 and 4, with sponsor bootstraps) and one
//!   graceful leave (epoch 6). Pinned without the thread-per-node
//!   driver, which rejects membership plans.
//!
//! Each fixture records, per epoch, the fleet-mean RMSE and byte counts
//! (as IEEE-754 bit patterns — *bit*-identical, not approximately equal),
//! liveness, the delivery counters, and the verifiable-epochs
//! `commitment_root` (the aggregate over every live node's signed model
//! commitment — pinning it here means a scheduler or codec change that
//! perturbs any model's wire bytes fails the fixture, not just the
//! audit suite), plus the final per-node traffic totals.
//! Wall/simulated timestamps are deliberately excluded: they are
//! the one thing allowed to differ across backends.
//!
//! A fifth fixture, `golden_serve.txt`, pins the **serve path**: after
//! each training run, a seeded query stream is replayed against every
//! node's final model through the pruned/blocked [`Scorer`], with the
//! node's own rated items excluded. Every backend × driver combination
//! must produce the same top-k items *and score bits* as the pinned
//! trace — the serving contract under the same regression net as the
//! learning trajectory.
//!
//! Every run — mem fabric under the sequential, chunked-parallel and
//! work-stealing drivers; channel fabric under thread-per-node,
//! sequential lockstep and work-stealing; TCP loopback under sequential
//! lockstep and work-stealing — must reproduce the fixture exactly,
//! native mode. A mismatch means a scheduler or transport change
//! altered the learning trajectory or the byte accounting.
//!
//! # Regenerating
//! After an *intentional* trajectory change (new protocol semantics, new
//! dataset shape), refresh the pinned files with:
//!
//! ```sh
//! REX_REGEN_FIXTURES=1 cargo test --test golden_trace
//! ```
//!
//! The regeneration path rewrites the fixtures from the sequential mem
//! reference and then still checks every other driver against the fresh
//! files, so a regen run cannot silently pin a divergent suite. Review
//! the fixture diff like code: it *is* the experiment's contract.

use rex_repro::core::builder::{build_mf_nodes, NodeSeeds};
use rex_repro::core::config::{ExecutionMode, GossipAlgorithm, ProtocolConfig, SharingMode};
use rex_repro::core::engine::{Driver, Engine, EngineConfig, EngineResult, TimeAxis};
use rex_repro::core::membership::MembershipPlan;
use rex_repro::core::serve::{QueryStream, Scorer, TopKQuery};
use rex_repro::core::Node;
use rex_repro::data::{Partition, SyntheticConfig, TrainTestSplit};
use rex_repro::ml::{MfHyperParams, MfModel};
use rex_repro::net::fault::{FaultPlan, FaultyTransport, LinkFaults};
use rex_repro::net::{ChannelTransport, MemNetwork, TcpTransport, Transport};
use rex_repro::topology::TopologySpec;
use std::path::PathBuf;

/// One pinned scenario.
struct Scenario {
    name: &'static str,
    nodes: usize,
    sharing: SharingMode,
    epochs: usize,
    faults: Option<FaultPlan>,
    membership: Option<MembershipPlan>,
}

fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "raw",
            nodes: 8,
            sharing: SharingMode::RawData,
            epochs: 8,
            faults: None,
            membership: None,
        },
        Scenario {
            name: "model",
            nodes: 8,
            sharing: SharingMode::Model,
            epochs: 6,
            faults: None,
            membership: None,
        },
        Scenario {
            name: "chaos_headline",
            nodes: 32,
            sharing: SharingMode::RawData,
            epochs: 10,
            faults: Some(
                FaultPlan::uniform(0xC4A05, LinkFaults::drop_rate(0.10))
                    .with_crash(5, 3, None)
                    .with_crash(17, 5, None),
            ),
            membership: None,
        },
        Scenario {
            name: "membership",
            nodes: 8,
            sharing: SharingMode::RawData,
            epochs: 8,
            faults: None,
            membership: Some(
                MembershipPlan {
                    seed: 0x11,
                    bootstrap_points: 30,
                    ..MembershipPlan::default()
                }
                .with_join(6, 2, None)
                .with_join(7, 4, Some(1))
                .with_leave(2, 6),
            ),
        },
    ]
}

fn fleet(s: &Scenario) -> Vec<Node<MfModel>> {
    let n = s.nodes;
    let ds = SyntheticConfig {
        num_users: (2 * n) as u32,
        num_items: 160,
        num_ratings: 125 * n,
        seed: 42,
        ..SyntheticConfig::default()
    }
    .generate();
    let split = TrainTestSplit::standard(&ds, 7);
    let part = Partition::multi_user(&split, n);
    let graph = TopologySpec::SmallWorld.build(n, 5);
    build_mf_nodes(
        &part,
        &graph,
        ds.num_users,
        ds.num_items,
        MfHyperParams::default(),
        ProtocolConfig {
            sharing: s.sharing,
            algorithm: GossipAlgorithm::DPsgd,
            points_per_epoch: 40,
            steps_per_epoch: 100,
            seed: 17,
            ..ProtocolConfig::default()
        },
        NodeSeeds::default(),
    )
}

fn engine_config(s: &Scenario, time: TimeAxis, driver: Driver) -> EngineConfig {
    EngineConfig {
        epochs: s.epochs,
        execution: ExecutionMode::Native,
        time,
        driver,
        processes_per_platform: 1,
        seed: 0xE0,
        faults: s.faults.clone(),
        membership: s.membership.clone(),
    }
}

/// A combination run's outputs: the trace plus the post-run fleet, so
/// the serve fixture can replay queries against the final models.
type ComboRun = (EngineResult, Vec<Node<MfModel>>);

/// Runs a scenario over one backend/driver combination, wrapping the
/// fabric in the fault layer when the scenario carries a plan.
fn run_combo<T: Transport>(s: &Scenario, transport: T, time: TimeAxis, driver: Driver) -> ComboRun {
    let mut nodes = fleet(s);
    let result = match s.faults.clone() {
        Some(plan) => Engine::<MfModel, FaultyTransport<T>>::new(
            FaultyTransport::new(transport, plan),
            engine_config(s, time, driver),
        )
        .run(s.name, &mut nodes),
        None => Engine::<MfModel, T>::new(transport, engine_config(s, time, driver))
            .run(s.name, &mut nodes),
    };
    (result, nodes)
}

/// Serializes the fixture-relevant slice of a result (time excluded).
fn render(result: &EngineResult) -> String {
    let mut out = String::from(
        "# golden trace fixture — regenerate with REX_REGEN_FIXTURES=1 (see tests/golden_trace.rs)\n\
         # epoch,rmse_bits,bytes_bits,live,delivered,dropped,late,duplicated,commitment_root\n",
    );
    for r in &result.trace.records {
        let root: String = r
            .commitment_root
            .iter()
            .map(|b| format!("{b:02x}"))
            .collect();
        out.push_str(&format!(
            "epoch,{},{:#018x},{:#018x},{},{},{},{},{},{root}\n",
            r.epoch,
            r.rmse.to_bits(),
            r.bytes_per_node.to_bits(),
            r.live_nodes,
            r.delivery.delivered,
            r.delivery.dropped,
            r.delivery.late,
            r.delivery.duplicated,
        ));
    }
    for (id, stats) in result.final_stats.iter().enumerate() {
        out.push_str(&format!(
            "stats,{id},{},{},{},{}\n",
            stats.bytes_out, stats.bytes_in, stats.msgs_out, stats.msgs_in,
        ));
    }
    out
}

/// Queries each node replays against its final model for the serve
/// fixture, and the requested list length (the paper's k = 10).
const SERVE_QUERIES: usize = 6;
const SERVE_K: usize = 10;
const SERVE_SEED: u64 = 0x5E37; // matches `ServeConfig::default().seed`

/// Replays the seeded query stream of the deployed serve path against
/// every node's final model: per node, [`SERVE_QUERIES`] queries drawn
/// from `QueryStream` (seeded the way `rex-node` seeds its per-node
/// serve thread), answered by the pruned/blocked [`Scorer`] with the
/// node's own rated items excluded. One line per query:
///
/// ```text
/// serve,<scenario>,<node>,<user>,<k>,<item>:<score_bits>;...
/// ```
///
/// Score bits are the unclamped f32 predictions — the fixture pins the
/// exact arithmetic, not just the ranking.
fn render_serve(s: &Scenario, nodes: &[Node<MfModel>]) -> String {
    let num_users = (2 * s.nodes) as u32;
    let mut out = String::new();
    for node in nodes {
        let id = node.id();
        let mut stream = QueryStream::new(SERVE_SEED.wrapping_add(id as u64), num_users, SERVE_K);
        let mut scorer = Scorer::default();
        for _ in 0..SERVE_QUERIES {
            let q: TopKQuery = stream.next_query();
            let exclude = node.store().rated_items(q.user);
            let top = scorer.top_k(node.model(), &q, &exclude);
            let items: Vec<String> = top
                .iter()
                .map(|r| format!("{}:{:#010x}", r.item, r.score.to_bits()))
                .collect();
            out.push_str(&format!(
                "serve,{},{id},{},{},{}\n",
                s.name,
                q.user,
                q.k,
                items.join(";"),
            ));
        }
    }
    out
}

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(format!("golden_{name}.txt"))
}

/// Loads the pinned fixture — or, under `REX_REGEN_FIXTURES=1`, rewrites
/// it from the rendered `reference` text first.
fn load_fixture(name: &str, reference: &str) -> String {
    let path = fixture_path(name);
    if std::env::var("REX_REGEN_FIXTURES").as_deref() == Ok("1") {
        std::fs::write(&path, reference).expect("write fixture");
        eprintln!("[golden_trace] regenerated {}", path.display());
    }
    std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); run with REX_REGEN_FIXTURES=1 to create it",
            path.display()
        )
    })
}

fn assert_matches_fixture(scenario: &str, combo: &str, fixture: &str, result: &EngineResult) {
    let got = render(result);
    if got != fixture {
        for (want_line, got_line) in fixture.lines().zip(got.lines()) {
            assert_eq!(
                want_line, got_line,
                "scenario {scenario}: {combo} diverged from the pinned trace"
            );
        }
        panic!(
            "scenario {scenario}: {combo} trace length differs from fixture \
             ({} vs {} lines)",
            fixture.lines().count(),
            got.lines().count()
        );
    }
}

#[test]
fn golden_traces_hold_on_every_driver_and_backend() {
    let serve_header = "# golden serve fixture — regenerate with REX_REGEN_FIXTURES=1 (see tests/golden_trace.rs)\n\
         # serve,scenario,node,user,k,item:score_bits;...\n";
    let mut serve_reference = String::from(serve_header);
    for s in scenarios() {
        let n = s.nodes;
        let sim_time = || TimeAxis::Simulated(Default::default());

        // Reference: mem fabric, sequential lockstep — the generator.
        let (reference, reference_nodes) = run_combo(
            &s,
            MemNetwork::new(n),
            sim_time(),
            Driver::Lockstep { parallel: false },
        );
        let fixture = load_fixture(s.name, &render(&reference));
        assert_matches_fixture(s.name, "mem/lockstep-seq", &fixture, &reference);
        let serve_ref = render_serve(&s, &reference_nodes);
        serve_reference.push_str(&serve_ref);

        // The same scenario through every other driver × backend. The
        // thread-per-node driver rejects membership plans (view
        // transitions are driven by the lockstep-shaped round loop; its
        // deployed equivalent is pinned by `tests/tcp_cluster.rs`), so
        // churn scenarios skip that one combination.
        let mut combos: Vec<(&str, ComboRun)> = vec![
            (
                "mem/lockstep-parallel",
                run_combo(
                    &s,
                    MemNetwork::new(n),
                    sim_time(),
                    Driver::Lockstep { parallel: true },
                ),
            ),
            (
                "mem/work-steal",
                run_combo(
                    &s,
                    MemNetwork::new(n),
                    sim_time(),
                    Driver::WorkSteal { workers: 4 },
                ),
            ),
        ];
        if s.membership.is_none() {
            combos.push((
                "channel/thread-per-node",
                run_combo(
                    &s,
                    ChannelTransport::new(n),
                    TimeAxis::Wall,
                    Driver::ThreadPerNode,
                ),
            ));
        }
        combos.extend([
            (
                "channel/work-steal",
                run_combo(
                    &s,
                    ChannelTransport::new(n),
                    TimeAxis::Wall,
                    Driver::WorkSteal { workers: 3 },
                ),
            ),
            (
                "channel/lockstep-seq",
                run_combo(
                    &s,
                    ChannelTransport::new(n),
                    TimeAxis::Wall,
                    Driver::Lockstep { parallel: false },
                ),
            ),
            (
                "tcp/lockstep-seq",
                run_combo(
                    &s,
                    TcpTransport::loopback(n).expect("loopback fabric"),
                    TimeAxis::Wall,
                    Driver::Lockstep { parallel: false },
                ),
            ),
            (
                "tcp/work-steal",
                run_combo(
                    &s,
                    TcpTransport::loopback(n).expect("loopback fabric"),
                    TimeAxis::Wall,
                    Driver::WorkSteal { workers: 2 },
                ),
            ),
        ]);
        for (combo, (result, nodes)) in &combos {
            assert_matches_fixture(s.name, combo, &fixture, result);
            // The serve replay — final models through the pruned scorer
            // — must also be bit-identical across every combination.
            assert_eq!(
                render_serve(&s, nodes),
                serve_ref,
                "scenario {}: {combo} serve replay diverged from mem/lockstep-seq",
                s.name
            );
        }
    }

    // Pin the accumulated serve trace across *all* scenarios.
    let pinned = load_fixture("serve", &serve_reference);
    assert_eq!(
        serve_reference, pinned,
        "serve replay diverged from the pinned golden_serve.txt fixture"
    );
}

#[test]
fn fixtures_are_committed_and_well_formed() {
    // Guard against a fixture file silently vanishing from the tree (the
    // conformance test above would then only fail with a regen hint) and
    // against format drift.
    for s in scenarios() {
        let path = fixture_path(s.name);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()));
        let epoch_lines = text.lines().filter(|l| l.starts_with("epoch,")).count();
        let stats_lines = text.lines().filter(|l| l.starts_with("stats,")).count();
        assert_eq!(epoch_lines, s.epochs, "{}: epoch line count", s.name);
        assert_eq!(stats_lines, s.nodes, "{}: stats line count", s.name);
        for line in text.lines().filter(|l| l.starts_with("epoch,")) {
            let fields: Vec<&str> = line.split(',').collect();
            assert_eq!(fields.len(), 10, "{}: malformed line {line}", s.name);
            assert!(fields[2].starts_with("0x") && fields[3].starts_with("0x"));
            // The commitment root is 32 bytes of lowercase hex, and the
            // verifiable-epochs machinery means it is never all-zero on
            // a run with live nodes.
            let root = fields[9];
            assert_eq!(root.len(), 64, "{}: bad root width in {line}", s.name);
            assert!(root.chars().all(|c| c.is_ascii_hexdigit()));
            assert_ne!(root, "0".repeat(64), "{}: zero commitment root", s.name);
        }
    }

    // The serve fixture: one line per (scenario, node, query), k results
    // ordered score-descending with id tie-breaks — checked structurally
    // here, bit-exactly by the conformance test above.
    let serve_path = fixture_path("serve");
    let serve_text = std::fs::read_to_string(&serve_path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", serve_path.display()));
    let expected: usize = scenarios().iter().map(|s| s.nodes * SERVE_QUERIES).sum();
    let serve_lines: Vec<&str> = serve_text
        .lines()
        .filter(|l| l.starts_with("serve,"))
        .collect();
    assert_eq!(serve_lines.len(), expected, "serve line count");
    for line in serve_lines {
        let fields: Vec<&str> = line.split(',').collect();
        assert_eq!(fields.len(), 6, "malformed serve line {line}");
        let results: Vec<&str> = fields[5].split(';').collect();
        assert_eq!(results.len(), SERVE_K, "short result list in {line}");
        for r in results {
            let (item, bits) = r.split_once(':').expect("item:bits pair");
            item.parse::<u32>().expect("item id");
            assert!(bits.starts_with("0x") && bits.len() == 10, "bad bits {r}");
        }
    }
}
