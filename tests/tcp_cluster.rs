//! Multi-process deployment oracle: a cluster of real `rex-node` OS
//! processes talking TCP over loopback must reproduce the in-process
//! backends bit-for-bit — per-node RMSE trajectories, byte counts, and
//! final stores.
//!
//! The launcher needs the `rex-node` binary, which `cargo test` builds as
//! part of the workspace; if it is missing (e.g. a filtered build), the
//! tests skip with a notice instead of failing.

use rex_repro::core::config::ExecutionMode;
use rex_repro::core::engine::{Driver, Engine, EngineConfig, TimeAxis};
use rex_repro::ml::MfModel;
use rex_repro::net::ChannelTransport;
use rex_repro::node::launcher::{find_node_binary, launch_cluster, scratch_dir};
use rex_repro::node::{build_fleet, run_cluster_in_process, ClusterConfig, NodeSummary};
use rex_repro::tee::SgxCostModel;
use std::path::PathBuf;

fn tiny_cfg(n: usize, sgx: bool) -> ClusterConfig {
    ClusterConfig {
        // Placeholder addresses; the launcher reserves real ports.
        nodes: (0..n).map(|i| format!("127.0.0.1:{}", 7200 + i)).collect(),
        epochs: 4,
        num_users: 16,
        num_items: 80,
        num_ratings: 1_000,
        points_per_epoch: 20,
        steps_per_epoch: 60,
        sgx,
        ..ClusterConfig::default()
    }
}

fn require_binary() -> Option<PathBuf> {
    let bin = find_node_binary();
    if bin.is_none() {
        eprintln!("[tcp_cluster] rex-node binary not built; skipping");
    }
    bin
}

fn launch(cfg: &ClusterConfig, tag: &str) -> Option<Vec<NodeSummary>> {
    let bin = require_binary()?;
    let dir = scratch_dir(tag);
    let result = launch_cluster(&bin, cfg, &dir);
    let _ = std::fs::remove_dir_all(&dir);
    Some(result.expect("cluster run failed"))
}

#[test]
fn processes_match_in_process_cluster_bit_for_bit() {
    let cfg = tiny_cfg(4, false);
    let Some(deployed) = launch(&cfg, "native") else {
        return;
    };
    let reference = run_cluster_in_process(&cfg).expect("in-process reference");
    assert_eq!(deployed, reference);
}

#[test]
fn processes_match_engine_results() {
    // Tie the deployed loop back to the Engine itself: same fleet through
    // the channel-transport thread-per-node driver.
    let cfg = tiny_cfg(4, false);
    let Some(deployed) = launch(&cfg, "engine-cmp") else {
        return;
    };

    let mut nodes = build_fleet(&cfg);
    let result = Engine::<MfModel, ChannelTransport>::new(
        ChannelTransport::new(nodes.len()),
        EngineConfig {
            epochs: cfg.epochs,
            execution: ExecutionMode::Native,
            time: TimeAxis::Wall,
            driver: Driver::ThreadPerNode,
            processes_per_platform: cfg.processes_per_platform,
            seed: cfg.infra_seed,
            faults: None,
            membership: None,
        },
    )
    .run("reference", &mut nodes);

    for (summary, node) in deployed.iter().zip(&nodes) {
        assert_eq!(
            summary.final_rmse_bits,
            node.local_rmse().map(f64::to_bits),
            "node {}: final rmse diverged between processes and engine",
            summary.id
        );
        assert_eq!(summary.store_len, node.store().len());
        assert_eq!(
            summary.stats, result.final_stats[summary.id],
            "node {}: traffic counters diverged",
            summary.id
        );
    }
}

#[test]
fn sparse_codec_cluster_learns_identically_with_fewer_bytes() {
    // The `codec = "sparse"` TOML knob, end to end through the deployed
    // node loop: model deltas reconstruct bit-exactly, so a sparse
    // cluster's per-node RMSE trajectories equal the dense cluster's to
    // the last bit — only the wire bytes shrink.
    use rex_repro::core::config::{SharingMode, WireCodec};
    let mut dense = tiny_cfg(4, false);
    dense.sharing = SharingMode::Model;
    let mut sparse = dense.clone();
    sparse.codec = WireCodec::sparse();
    // Round-trip the sparse config through its TOML form first, so this
    // also covers the parser path the deployed binary takes.
    let sparse = ClusterConfig::parse(&sparse.to_toml()).expect("sparse config parses");

    let dense_run = run_cluster_in_process(&dense).expect("dense cluster");
    let sparse_run = run_cluster_in_process(&sparse).expect("sparse cluster");
    for (d, s) in dense_run.iter().zip(&sparse_run) {
        assert_eq!(
            d.rmse_trace_bits, s.rmse_trace_bits,
            "node {}: sparse codec changed the learning trajectory",
            d.id
        );
        assert!(
            s.stats.bytes_out < d.stats.bytes_out,
            "node {}: sparse {} B out vs dense {} B out",
            d.id,
            s.stats.bytes_out,
            d.stats.bytes_out
        );
        assert_eq!(d.stats.msgs_out, s.stats.msgs_out);
    }
}

#[test]
fn fifth_process_joins_running_cluster_bit_for_bit() {
    // The dynamic-membership acceptance path: a 5-node config whose
    // fifth id joins at epoch 2. The launcher starts all five OS
    // processes; the four founders mesh and run, the fifth dials in
    // with a `Join` control frame (via `rex-node --join`) and is
    // admitted at the epoch boundary the shared schedule names, with a
    // raw-share bootstrap from its sponsor. The whole run must
    // reproduce the in-process cluster *and* the engine bit-for-bit.
    use rex_repro::core::membership::MembershipPlan;
    use rex_repro::net::MemNetwork;

    let mut cfg = tiny_cfg(5, false);
    cfg.epochs = 5;
    cfg.membership = Some(
        MembershipPlan {
            seed: 0x5A,
            bootstrap_points: 30,
            ..MembershipPlan::default()
        }
        .with_join(4, 2, None)
        .with_leave(1, 4),
    );
    let Some(deployed) = launch(&cfg, "join") else {
        return;
    };
    let reference = run_cluster_in_process(&cfg).expect("in-process reference");
    assert_eq!(deployed, reference);

    // The joiner's trace shows the lifecycle: out, out, in, in, in.
    let joiner = &deployed[4];
    assert!(joiner.rmse_trace_bits[0].is_none() && joiner.rmse_trace_bits[1].is_none());
    assert!(joiner.rmse_trace_bits[2].is_some() && joiner.rmse_trace_bits[4].is_some());
    assert!(joiner.stats.msgs_in > 0, "joiner converged into the gossip");
    assert!(deployed[1].rmse_trace_bits[4].is_none(), "leaver departed");

    // And the engine agrees: same fleet, same schedule, lockstep over
    // the mem fabric — per-node final models, stores, and traffic.
    let mut nodes = rex_repro::node::build_fleet(&cfg);
    let result = Engine::<MfModel, MemNetwork>::new(
        MemNetwork::new(nodes.len()),
        EngineConfig {
            epochs: cfg.epochs,
            execution: ExecutionMode::Native,
            time: TimeAxis::Wall,
            driver: Driver::Lockstep { parallel: false },
            processes_per_platform: cfg.processes_per_platform,
            seed: cfg.infra_seed,
            faults: None,
            membership: cfg.membership.clone(),
        },
    )
    .run("join-reference", &mut nodes);
    for (summary, node) in deployed.iter().zip(&nodes) {
        assert_eq!(
            summary.final_rmse_bits,
            node.local_rmse().map(f64::to_bits),
            "node {}: final rmse diverged between processes and engine",
            summary.id
        );
        assert_eq!(summary.store_len, node.store().len());
        assert_eq!(
            summary.stats, result.final_stats[summary.id],
            "node {}: traffic counters diverged",
            summary.id
        );
    }
}

#[test]
#[ignore = "heaviest cluster scenario (4 OS processes + per-process attestation replay, twice); CI runs it via `cargo test --test tcp_cluster -- --ignored`"]
fn sgx_processes_reproduce_attested_run() {
    // Every process replays provisioning + attestation from the shared
    // seed, deriving identical session keys — sealed traffic and
    // handshake byte accounting must match the in-process SGX run.
    let cfg = tiny_cfg(4, true);
    let Some(deployed) = launch(&cfg, "sgx") else {
        return;
    };
    let reference = run_cluster_in_process(&cfg).expect("in-process reference");
    assert_eq!(deployed, reference);

    let mut nodes = build_fleet(&cfg);
    let result = Engine::<MfModel, ChannelTransport>::new(
        ChannelTransport::new(nodes.len()),
        EngineConfig {
            epochs: cfg.epochs,
            execution: ExecutionMode::Sgx(SgxCostModel::default()),
            time: TimeAxis::Wall,
            driver: Driver::ThreadPerNode,
            processes_per_platform: cfg.processes_per_platform,
            seed: cfg.infra_seed,
            faults: None,
            membership: None,
        },
    )
    .run("sgx-reference", &mut nodes);
    for (summary, node) in deployed.iter().zip(&nodes) {
        assert_eq!(summary.final_rmse_bits, node.local_rmse().map(f64::to_bits));
        assert_eq!(summary.stats, result.final_stats[summary.id]);
    }
}
