//! Chaos scenario suite: REX under packet loss, flash partitions,
//! asymmetric links, and node churn.
//!
//! The paper evaluates REX on a fully reliable fabric; these tests pin
//! down how the protocol degrades when the fabric misbehaves — and that
//! the degradation itself is *deterministic*. Every scenario drives the
//! generic engine through [`FaultyTransport`] with a seeded
//! [`FaultPlan`]:
//!
//! * the same plan replays **bit-for-bit** across reruns (per-epoch
//!   delivered/dropped counts included), because every per-message fate
//!   is a pure hash of `(seed, link, message index)`;
//! * all three backends (mem/channel/TCP) under the same plan stay
//!   **bit-identical** — the fault layer composes above the backends
//!   and below the engine's canonical ordering;
//! * raw-data sharing keeps converging under heavy degradation: the
//!   envelopes asserted here are the suite's regression contract.
//!
//! Raw-data sharing is naturally loss-tolerant: a dropped batch only
//! delays store growth, and D-PSGD's Metropolis–Hastings merge
//! renormalizes the self-weight over whatever actually arrived.

use rex_repro::core::builder::{build_mf_nodes, NodeSeeds};
use rex_repro::core::config::{ExecutionMode, GossipAlgorithm, ProtocolConfig, SharingMode};
use rex_repro::core::engine::{Driver, Engine, EngineConfig, EngineResult, TimeAxis};
use rex_repro::core::membership::MembershipPlan;
use rex_repro::core::Node;
use rex_repro::data::{Partition, SyntheticConfig, TrainTestSplit};
use rex_repro::ml::{MfHyperParams, MfModel};
use rex_repro::net::fault::{FaultPlan, FaultyTransport, LinkFaults};
use rex_repro::net::{ChannelTransport, MemNetwork, TcpTransport, Transport};
use rex_repro::tee::SgxCostModel;
use rex_repro::topology::{alive_connected, repair_after_crashes, TopologySpec};

/// Builds an `n`-node REX fleet (raw-data sharing, D-PSGD) over a
/// small-world overlay, scaled so every node holds a couple of users.
fn fleet(n: usize, epoch_points: usize) -> Vec<Node<MfModel>> {
    let ds = SyntheticConfig {
        num_users: (2 * n) as u32,
        num_items: 160,
        num_ratings: 125 * n,
        seed: 42,
        ..SyntheticConfig::default()
    }
    .generate();
    let split = TrainTestSplit::standard(&ds, 7);
    let part = Partition::multi_user(&split, n);
    let graph = TopologySpec::SmallWorld.build(n, 5);
    build_mf_nodes(
        &part,
        &graph,
        ds.num_users,
        ds.num_items,
        MfHyperParams::default(),
        ProtocolConfig {
            sharing: SharingMode::RawData,
            algorithm: GossipAlgorithm::DPsgd,
            points_per_epoch: epoch_points,
            steps_per_epoch: 100,
            seed: 17,
            ..ProtocolConfig::default()
        },
        NodeSeeds::default(),
    )
}

fn cfg(
    epochs: usize,
    execution: ExecutionMode,
    time: TimeAxis,
    driver: Driver,
    plan: &FaultPlan,
) -> EngineConfig {
    EngineConfig {
        epochs,
        execution,
        time,
        driver,
        processes_per_platform: 1,
        seed: 0xE0,
        faults: Some(plan.clone()),
        membership: None,
    }
}

/// Runs a fleet over the fault-wrapped mem fabric (lockstep, simulated
/// time).
fn run_mem(
    nodes: &mut Vec<Node<MfModel>>,
    epochs: usize,
    execution: ExecutionMode,
    plan: &FaultPlan,
) -> EngineResult {
    Engine::<MfModel, FaultyTransport<MemNetwork>>::new(
        FaultyTransport::new(MemNetwork::new(nodes.len()), plan.clone()),
        cfg(
            epochs,
            execution,
            TimeAxis::Simulated(Default::default()),
            Driver::Lockstep { parallel: true },
            plan,
        ),
    )
    .run("mem", nodes)
}

/// Runs a fleet over the fault-wrapped channel fabric, one OS thread per
/// node.
fn run_channel(
    nodes: &mut Vec<Node<MfModel>>,
    epochs: usize,
    execution: ExecutionMode,
    plan: &FaultPlan,
) -> EngineResult {
    Engine::<MfModel, FaultyTransport<ChannelTransport>>::new(
        FaultyTransport::new(ChannelTransport::new(nodes.len()), plan.clone()),
        cfg(
            epochs,
            execution,
            TimeAxis::Wall,
            Driver::ThreadPerNode,
            plan,
        ),
    )
    .run("channel", nodes)
}

/// Runs a fleet over fault-wrapped real loopback TCP sockets (lockstep
/// fabric view: every frame still crosses the kernel).
fn run_tcp(
    nodes: &mut Vec<Node<MfModel>>,
    epochs: usize,
    execution: ExecutionMode,
    plan: &FaultPlan,
) -> EngineResult {
    Engine::<MfModel, FaultyTransport<TcpTransport>>::new(
        FaultyTransport::new(
            TcpTransport::loopback(nodes.len()).expect("loopback fabric"),
            plan.clone(),
        ),
        cfg(
            epochs,
            execution,
            TimeAxis::Wall,
            Driver::Lockstep { parallel: false },
            plan,
        ),
    )
    .run("tcp", nodes)
}

/// Asserts two runs of the same plan are bit-identical in everything a
/// fault scenario can influence: per-epoch RMSE, byte means, liveness,
/// and the delivered/dropped/late/duplicated counters.
fn assert_same_degradation(a: &EngineResult, b: &EngineResult) {
    assert_eq!(a.trace.records.len(), b.trace.records.len());
    for (x, y) in a.trace.records.iter().zip(&b.trace.records) {
        assert_eq!(
            x.rmse.to_bits(),
            y.rmse.to_bits(),
            "epoch {}: rmse diverged: {} vs {}",
            x.epoch,
            x.rmse,
            y.rmse
        );
        assert_eq!(
            x.bytes_per_node.to_bits(),
            y.bytes_per_node.to_bits(),
            "epoch {}: byte means diverged",
            x.epoch
        );
        assert_eq!(x.live_nodes, y.live_nodes, "epoch {}: liveness", x.epoch);
        assert_eq!(x.delivery, y.delivery, "epoch {}: delivery", x.epoch);
    }
    assert_eq!(a.final_stats, b.final_stats, "traffic counters diverged");
}

const HEADLINE_NODES: usize = 32;
const HEADLINE_EPOCHS: usize = 10;

/// The headline acceptance plan: 10% uniform packet loss plus two
/// crash-stop nodes out of 32.
fn headline_plan() -> FaultPlan {
    FaultPlan::uniform(0xC4A05, LinkFaults::drop_rate(0.10))
        .with_crash(5, 3, None)
        .with_crash(17, 5, None)
}

/// Pinned convergence envelope for the headline scenario. The clean run
/// of this 32-node fleet ends 10 epochs at RMSE ≈ 0.607; with 10% loss
/// and 2 crashes it degrades to ≈ 0.622. The envelope allows a few
/// percent of slack on top — a regression past it means fault tolerance
/// broke (crashed-node aggregation, loss-tolerant merging, or store
/// growth under drops).
const HEADLINE_RMSE_ENVELOPE: f64 = 0.65;

#[test]
fn headline_loss_and_crashes_converge_on_all_backends() {
    let plan = headline_plan();

    let mut mem_nodes = fleet(HEADLINE_NODES, 40);
    let mem = run_mem(
        &mut mem_nodes,
        HEADLINE_EPOCHS,
        ExecutionMode::Native,
        &plan,
    );

    let mut chan_nodes = fleet(HEADLINE_NODES, 40);
    let chan = run_channel(
        &mut chan_nodes,
        HEADLINE_EPOCHS,
        ExecutionMode::Native,
        &plan,
    );

    let mut tcp_nodes = fleet(HEADLINE_NODES, 40);
    let tcp = run_tcp(
        &mut tcp_nodes,
        HEADLINE_EPOCHS,
        ExecutionMode::Native,
        &plan,
    );

    // Degradation is bit-identical across all three backends.
    assert_same_degradation(&mem, &chan);
    assert_same_degradation(&mem, &tcp);

    // Liveness accounting follows the crash schedule.
    let live: Vec<usize> = mem.trace.records.iter().map(|r| r.live_nodes).collect();
    let expected: Vec<usize> = (0..HEADLINE_EPOCHS)
        .map(|e| HEADLINE_NODES - usize::from(e >= 3) - usize::from(e >= 5))
        .collect();
    assert_eq!(live, expected);

    // The fabric really dropped traffic (10% of ~6 msgs/node/epoch).
    let total = mem.trace.total_delivery();
    assert!(
        total.dropped > 50,
        "10% loss dropped only {} messages",
        total.dropped
    );
    assert!(total.delivered > 5 * total.dropped);

    // And REX still converges below the pinned envelope.
    let first = mem.trace.records.first().unwrap().rmse;
    let last = mem.trace.final_rmse().unwrap();
    assert!(last < first, "no learning under faults: {first} -> {last}");
    assert!(
        last < HEADLINE_RMSE_ENVELOPE,
        "degraded convergence {last} blew the envelope {HEADLINE_RMSE_ENVELOPE}"
    );
}

#[test]
fn headline_plan_replays_bitwise_across_reruns() {
    let plan = headline_plan();
    let mut a_nodes = fleet(HEADLINE_NODES, 40);
    let a = run_mem(&mut a_nodes, HEADLINE_EPOCHS, ExecutionMode::Native, &plan);
    let mut b_nodes = fleet(HEADLINE_NODES, 40);
    let b = run_mem(&mut b_nodes, HEADLINE_EPOCHS, ExecutionMode::Native, &plan);
    assert_same_degradation(&a, &b);

    // A different seed re-rolls the per-message fates: same rates, a
    // different realization.
    let reseeded = FaultPlan {
        seed: 0xBEEF,
        ..headline_plan()
    };
    let mut c_nodes = fleet(HEADLINE_NODES, 40);
    let c = run_mem(
        &mut c_nodes,
        HEADLINE_EPOCHS,
        ExecutionMode::Native,
        &reseeded,
    );
    assert_ne!(
        a.trace.total_delivery().dropped,
        c.trace.total_delivery().dropped,
        "reseeding changed nothing — fates are not seed-keyed"
    );
}

#[test]
#[ignore = "widest sweep (4 full 16-node runs); CI runs it via `cargo test --test chaos -- --ignored`"]
fn packet_loss_sweep_degrades_gracefully() {
    // Convergence-under-loss envelopes: RMSE after 8 epochs at each loss
    // level. The clean 16-node run lands at ≈ 0.6475; raw-data sharing
    // is naturally loss-tolerant (a dropped batch only delays store
    // growth), so even 60% loss costs well under 1% — the envelopes pin
    // that property.
    let sweep = [(0.0, 0.66), (0.10, 0.66), (0.30, 0.66), (0.60, 0.67)];
    let mut deliveries = Vec::new();
    let mut finals = Vec::new();
    for &(drop, envelope) in &sweep {
        let plan = FaultPlan::uniform(11, LinkFaults::drop_rate(drop));
        let mut nodes = fleet(16, 40);
        let result = run_mem(&mut nodes, 8, ExecutionMode::Native, &plan);
        let first = result.trace.records.first().unwrap().rmse;
        let last = result.trace.final_rmse().unwrap();
        assert!(
            last < first,
            "no learning at {drop} loss: {first} -> {last}"
        );
        assert!(
            last < envelope,
            "drop {drop}: final rmse {last} blew envelope {envelope}"
        );
        deliveries.push(result.trace.total_delivery());
        finals.push(last);
    }
    // Delivered counts fall monotonically with the loss rate; dropped
    // counts rise.
    for pair in deliveries.windows(2) {
        assert!(
            pair[1].delivered < pair[0].delivered,
            "delivered did not fall: {pair:?}"
        );
        assert!(
            pair[1].dropped > pair[0].dropped,
            "dropped did not rise: {pair:?}"
        );
    }
    assert_eq!(deliveries[0].dropped, 0, "0% loss must drop nothing");
}

#[test]
fn flash_partition_heals_and_convergence_recovers() {
    // Epochs 3..5: the overlay is cut into {0..8} vs {8..16}; afterwards
    // it heals completely.
    let plan = FaultPlan::default().with_partition(3, 5, (0..8).collect());
    let mut nodes = fleet(16, 40);
    let result = run_mem(&mut nodes, 10, ExecutionMode::Native, &plan);

    for r in &result.trace.records {
        let in_partition = (3..5).contains(&r.epoch);
        assert_eq!(
            r.delivery.dropped > 0,
            in_partition,
            "epoch {}: dropped={} (partition active: {in_partition})",
            r.epoch,
            r.delivery.dropped
        );
        assert_eq!(r.live_nodes, 16, "partitions do not kill nodes");
    }
    // Clean 16-node runs land at ≈ 0.6475 after 8 epochs; healing must
    // bring the partitioned run back to the same neighbourhood.
    let last = result.trace.final_rmse().unwrap();
    assert!(
        last < 0.66,
        "post-heal convergence {last} blew the envelope"
    );
}

#[test]
fn coordinated_churn_wave_tracks_liveness_and_recovers() {
    // Two waves: nodes 2,3,4 down for epochs 2..5, nodes 8,9 down for
    // epochs 4..7.
    let plan = FaultPlan::default()
        .with_crash(2, 2, Some(5))
        .with_crash(3, 2, Some(5))
        .with_crash(4, 2, Some(5))
        .with_crash(8, 4, Some(7))
        .with_crash(9, 4, Some(7));
    let mut nodes = fleet(16, 40);
    let result = run_mem(&mut nodes, 10, ExecutionMode::Native, &plan);

    let live: Vec<usize> = result.trace.records.iter().map(|r| r.live_nodes).collect();
    assert_eq!(live, vec![16, 16, 13, 13, 11, 14, 14, 16, 16, 16]);

    // Every node — including the ones that churned — ends the run with a
    // trained model and a grown store.
    for node in &nodes {
        assert!(node.local_rmse().is_some());
        assert!(!node.store().is_empty());
    }
    // Observed ≈ 0.6479 — within a hair of the clean run's 0.6475.
    let last = result.trace.final_rmse().unwrap();
    assert!(last < 0.66, "churned fleet failed to recover: {last}");
}

#[test]
fn asymmetric_lossy_link_starves_one_direction_exactly() {
    // 4 fully connected nodes; the 0 -> 1 direction loses everything,
    // 1 -> 0 is untouched. With D-PSGD every node sends to all 3 peers
    // every epoch: 12 messages per epoch, of which exactly one dies.
    let epochs = 8;
    let plan = FaultPlan::default().with_link(0, 1, LinkFaults::drop_rate(1.0));
    let ds = SyntheticConfig {
        num_users: 12,
        num_items: 100,
        num_ratings: 600,
        seed: 2,
        ..SyntheticConfig::default()
    }
    .generate();
    let split = TrainTestSplit::standard(&ds, 3);
    let part = Partition::multi_user(&split, 4);
    let graph = TopologySpec::FullyConnected.build(4, 0);
    let mut nodes = build_mf_nodes(
        &part,
        &graph,
        ds.num_users,
        ds.num_items,
        MfHyperParams::default(),
        ProtocolConfig {
            sharing: SharingMode::RawData,
            algorithm: GossipAlgorithm::DPsgd,
            points_per_epoch: 20,
            steps_per_epoch: 60,
            seed: 3,
            ..ProtocolConfig::default()
        },
        NodeSeeds::default(),
    );
    let result = run_mem(&mut nodes, epochs, ExecutionMode::Native, &plan);

    for r in &result.trace.records {
        assert_eq!(r.delivery.dropped, 1, "epoch {}: exactly one loss", r.epoch);
        assert_eq!(r.delivery.delivered, 11, "epoch {}", r.epoch);
    }
    // Node 1 hears from only 2 peers; node 0 still hears from all 3.
    assert_eq!(result.final_stats[1].msgs_in, 2 * epochs as u64);
    assert_eq!(result.final_stats[0].msgs_in, 3 * epochs as u64);
    // TrafficStats record what the fabric carried end-to-end: the killed
    // 0 -> 1 message is accounted at *neither* end (the DeliveryStats
    // above are where losses are visible), so node 0 books 2 sends per
    // epoch and everyone else the full 3.
    assert_eq!(result.final_stats[0].msgs_out, 2 * epochs as u64);
    for stats in &result.final_stats[1..] {
        assert_eq!(stats.msgs_out, 3 * epochs as u64);
    }
}

#[test]
fn never_alive_node_is_pruned_and_sgx_still_attests() {
    // Node 3 is dead for the whole run. In SGX mode this exercises the
    // crash-aware setup path: no edge touching node 3 is attested, its
    // neighbours renormalize their degrees, and sealing works for every
    // surviving pair.
    let plan = FaultPlan::default().with_crash(3, 0, None);
    let mut nodes = fleet(8, 40);
    let neighbor_of_3: Vec<usize> = nodes
        .iter()
        .filter(|n| n.neighbors().contains(&3))
        .map(|n| n.id())
        .collect();
    assert!(!neighbor_of_3.is_empty(), "scenario needs node 3 wired in");

    let result = run_mem(
        &mut nodes,
        6,
        ExecutionMode::Sgx(SgxCostModel::default()),
        &plan,
    );
    assert!(result.setup_ns > 0);
    for r in &result.trace.records {
        assert_eq!(r.live_nodes, 7);
    }
    // The dead node was pruned from every neighbour list before setup...
    for node in &nodes {
        assert!(
            node.id() == 3 || !node.neighbors().contains(&3),
            "node {} still lists the dead node",
            node.id()
        );
    }
    // ...so it neither sent nor received a single protocol byte.
    assert_eq!(result.final_stats[3].msgs_in, 0);
    assert_eq!(result.final_stats[3].msgs_out, 0);

    // Overlay repair keeps the survivors connected (the membership-layer
    // counterpart the chaos scenarios rely on).
    let graph = TopologySpec::SmallWorld.build(8, 5);
    let mut dead = vec![false; 8];
    dead[3] = true;
    let repaired = repair_after_crashes(&graph, &dead, 99);
    assert!(alive_connected(&repaired, &dead));
}

#[test]
fn deployed_cluster_replays_delay_plan_bit_identically_with_engine() {
    // The deployed node loop runs *two* wire barriers per epoch (drain +
    // post-send) where the engine's thread driver runs one; held
    // (delayed/reordered) messages must be released only at the
    // post-send barrier or the cluster diverges from the engine and
    // races slow peers' drains. This pins the deployed loop to the
    // engine bit-for-bit under a delay-heavy plan.
    use rex_repro::node::{build_fleet, run_cluster_in_process, ClusterConfig};
    let plan = FaultPlan::uniform(
        5,
        LinkFaults {
            drop: 0.10,
            delay: 0.30,
            duplicate: 0.10,
            reorder: 0.20,
        },
    );
    let cfg = ClusterConfig {
        nodes: (0..4).map(|i| format!("127.0.0.1:{}", 7501 + i)).collect(),
        epochs: 6,
        faults: Some(plan.clone()),
        membership: None,
        ..ClusterConfig::default()
    };
    let summaries = run_cluster_in_process(&cfg).expect("in-process cluster");

    let mut nodes = build_fleet(&cfg);
    let result = Engine::<MfModel, FaultyTransport<ChannelTransport>>::new(
        FaultyTransport::new(ChannelTransport::new(cfg.num_nodes()), plan.clone()),
        EngineConfig {
            epochs: cfg.epochs,
            execution: ExecutionMode::Native,
            time: TimeAxis::Wall,
            driver: Driver::ThreadPerNode,
            processes_per_platform: cfg.processes_per_platform,
            seed: cfg.infra_seed,
            faults: Some(plan),
            membership: None,
        },
    )
    .run("engine-reference", &mut nodes);

    // The plan actually exercised the held-message machinery.
    let total = result.trace.total_delivery();
    assert!(total.late > 0 && total.duplicated > 0 && total.dropped > 0);

    for (summary, node) in summaries.iter().zip(&nodes) {
        assert_eq!(
            summary.final_rmse_bits,
            node.local_rmse().map(f64::to_bits),
            "node {}: cluster diverged from engine under delay plan",
            summary.id
        );
        assert_eq!(summary.store_len, node.store().len());
        assert_eq!(summary.stats, result.final_stats[summary.id]);
    }
}

/// Audit-under-churn: the verifiable-epochs commitment root must stay
/// auditable while the membership view *and* the fabric both misbehave.
///
/// The aggregate root folds every live node's signed model commitment in
/// node order, so it is the single value an external auditor checks per
/// epoch. This scenario runs a join/join/leave schedule under 10% packet
/// loss and asserts the per-epoch roots are (a) bit-identical across
/// mem/channel/TCP backends and reruns, (b) never zero — a membership
/// transition must not produce an epoch with no attested commitments —
/// and (c) pairwise distinct across epochs, because models keep moving
/// and the root binds their exact wire bytes.
#[test]
fn audit_roots_survive_churn_and_loss_on_all_backends() {
    const NODES: usize = 8;
    const EPOCHS: usize = 8;
    let faults = FaultPlan::uniform(0xA0D1, LinkFaults::drop_rate(0.10));
    let membership = MembershipPlan {
        seed: 0x11,
        bootstrap_points: 30,
        ..MembershipPlan::default()
    }
    .with_join(6, 2, None)
    .with_join(7, 4, Some(1))
    .with_leave(2, 6);

    fn run_churn<T: Transport>(
        transport: T,
        time: TimeAxis,
        driver: Driver,
        faults: &FaultPlan,
        membership: &MembershipPlan,
    ) -> EngineResult {
        let mut nodes = fleet(8, 40);
        Engine::<MfModel, FaultyTransport<T>>::new(
            FaultyTransport::new(transport, faults.clone()),
            EngineConfig {
                epochs: 8,
                execution: ExecutionMode::Native,
                time,
                driver,
                processes_per_platform: 1,
                seed: 0xE0,
                faults: Some(faults.clone()),
                membership: Some(membership.clone()),
            },
        )
        .run("audit-churn", &mut nodes)
    }

    let roots = |r: &EngineResult| -> Vec<[u8; 32]> {
        r.trace.records.iter().map(|e| e.commitment_root).collect()
    };

    let mem = run_churn(
        MemNetwork::new(NODES),
        TimeAxis::Simulated(Default::default()),
        Driver::Lockstep { parallel: true },
        &faults,
        &membership,
    );
    let chan = run_churn(
        ChannelTransport::new(NODES),
        TimeAxis::Wall,
        Driver::WorkSteal { workers: 3 },
        &faults,
        &membership,
    );
    let tcp = run_churn(
        TcpTransport::loopback(NODES).expect("loopback fabric"),
        TimeAxis::Wall,
        Driver::Lockstep { parallel: false },
        &faults,
        &membership,
    );
    let rerun = run_churn(
        MemNetwork::new(NODES),
        TimeAxis::Simulated(Default::default()),
        Driver::Lockstep { parallel: true },
        &faults,
        &membership,
    );

    // (a) One auditable root stream, regardless of fabric or scheduler.
    let reference = roots(&mem);
    assert_eq!(reference.len(), EPOCHS);
    assert_eq!(reference, roots(&chan), "channel roots diverged");
    assert_eq!(reference, roots(&tcp), "tcp roots diverged");
    assert_eq!(reference, roots(&rerun), "rerun roots diverged");

    // (b) Every epoch stays attested through joins and the leave.
    assert!(
        reference.iter().all(|r| r != &[0u8; 32]),
        "an epoch lost its commitment root under churn"
    );
    // (c) Roots are distinct epoch to epoch: they bind the evolving
    // model bytes, the live set, and the epoch index.
    for (i, a) in reference.iter().enumerate() {
        for b in reference.iter().skip(i + 1) {
            assert_ne!(a, b, "two epochs produced the same root");
        }
    }

    // The churn schedule actually ran: 6 founders, +1 at epoch 2, +1 at
    // epoch 4, -1 at epoch 6 — and the loss plan actually dropped.
    let live: Vec<usize> = mem.trace.records.iter().map(|r| r.live_nodes).collect();
    assert_eq!(live, vec![6, 6, 7, 7, 8, 8, 7, 7]);
    assert!(
        mem.trace.total_delivery().dropped > 0,
        "loss plan was inert"
    );
}

#[test]
fn delay_and_duplicate_fabric_still_converges_bit_reproducibly() {
    // A nastier mix: late and duplicated messages on every link. Raw
    // batches arriving twice are deduplicated by the store; batches
    // arriving a round late still grow it.
    let plan = FaultPlan::uniform(
        21,
        LinkFaults {
            drop: 0.05,
            delay: 0.15,
            duplicate: 0.10,
            reorder: 0.10,
        },
    );
    let mut a_nodes = fleet(12, 40);
    let a = run_mem(&mut a_nodes, 8, ExecutionMode::Native, &plan);
    let mut b_nodes = fleet(12, 40);
    let b = run_mem(&mut b_nodes, 8, ExecutionMode::Native, &plan);
    assert_same_degradation(&a, &b);

    let total = a.trace.total_delivery();
    assert!(total.late > 0, "no message was ever delayed");
    assert!(total.duplicated > 0, "no message was ever duplicated");
    assert!(total.dropped > 0);
    // Observed ≈ 0.6077 on this 12-node fleet (clean ≈ 0.6075).
    let last = a.trace.final_rmse().unwrap();
    assert!(last < 0.63, "delay/duplicate mix broke convergence: {last}");
}
