//! End-to-end attestation + secure-channel integration over the public API.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rex_repro::tee::attestation::{AttestationError, Attestor};
use rex_repro::tee::measurement::REX_ENCLAVE_V1;
use rex_repro::tee::{DcapService, SgxCostModel, SgxPlatform};

#[test]
fn full_attestation_chain_with_encrypted_exchange() {
    let mut rng = StdRng::seed_from_u64(1);
    let dcap = DcapService::new();
    let pa = SgxPlatform::provision(10, &dcap, &mut rng);
    let pb = SgxPlatform::provision(20, &dcap, &mut rng);

    let mut ea = pa.create_enclave(REX_ENCLAVE_V1, SgxCostModel::default());
    let mut eb = pb.create_enclave(REX_ENCLAVE_V1, SgxCostModel::default());

    let aa = Attestor::new(&mut rng);
    let ab = Attestor::new(&mut rng);
    let qa = pa.quote_report(&ea.create_report(aa.user_data())).unwrap();
    let qb = pb.quote_report(&eb.create_report(ab.user_data())).unwrap();

    let hello = Attestor::hello(qa.clone());
    let (reply, mut sb) = ab.respond(&eb, &dcap, qb, &hello).unwrap();
    let mut sa = aa.finish(&ea, &dcap, &qa, &reply).unwrap();

    // Bidirectional sealed traffic, several frames.
    for i in 0..20u32 {
        let msg = format!("raw-batch-{i}");
        let frame = sa.seal(b"fwd", msg.as_bytes());
        assert_eq!(sb.open(b"fwd", &frame).unwrap(), msg.as_bytes());
        let ack = sb.seal(b"bwd", b"ack");
        assert_eq!(sa.open(b"bwd", &ack).unwrap(), b"ack");
    }
    assert_eq!(sa.bytes_sealed(), sb.bytes_opened());
}

#[test]
fn rogue_enclave_cannot_join_the_network() {
    let mut rng = StdRng::seed_from_u64(2);
    let dcap = DcapService::new();
    let p = SgxPlatform::provision(1, &dcap, &mut rng);

    let honest_enclave = p.create_enclave(REX_ENCLAVE_V1, SgxCostModel::default());
    let mut rogue_enclave = p.create_enclave(b"patched-rex-that-leaks", SgxCostModel::default());

    let honest = Attestor::new(&mut rng);
    let rogue = Attestor::new(&mut rng);
    let honest_quote = {
        let mut e = p.create_enclave(REX_ENCLAVE_V1, SgxCostModel::default());
        p.quote_report(&e.create_report(honest.user_data()))
            .unwrap()
    };
    let rogue_quote = p
        .quote_report(&rogue_enclave.create_report(rogue.user_data()))
        .unwrap();

    // Honest node rejects the rogue's Hello.
    let err = honest
        .respond(
            &honest_enclave,
            &dcap,
            honest_quote,
            &Attestor::hello(rogue_quote),
        )
        .unwrap_err();
    assert_eq!(err, AttestationError::MeasurementMismatch);
}

#[test]
fn attestation_requires_provisioned_platform() {
    let mut rng = StdRng::seed_from_u64(3);
    let real_dcap = DcapService::new();
    let fake_dcap = DcapService::new(); // attacker's view: platform unknown
    let p = SgxPlatform::provision(5, &real_dcap, &mut rng);

    let e = p.create_enclave(REX_ENCLAVE_V1, SgxCostModel::default());
    let att = Attestor::new(&mut rng);
    let quote = {
        let mut e2 = p.create_enclave(REX_ENCLAVE_V1, SgxCostModel::default());
        p.quote_report(&e2.create_report(att.user_data())).unwrap()
    };
    let verifier = Attestor::new(&mut rng);
    let err = verifier
        .respond(&e, &fake_dcap, quote.clone(), &Attestor::hello(quote))
        .unwrap_err();
    assert_eq!(err, AttestationError::UntrustedPlatform);
}
