//! Dynamic-membership acceptance suite: epoch-scoped views, online
//! joins with attested state bootstrap, and graceful leaves with live
//! topology rewiring — held bit-identical across **every lockstep-shaped
//! driver × backend** combination, native and SGX, with and without
//! fault plans.
//!
//! The deployed equivalent (a fifth OS process dialing a running
//! 4-process TCP cluster) lives in `tests/tcp_cluster.rs`; the pinned
//! trace lives in `tests/golden_trace.rs` (`golden_membership`).

use rex_repro::core::builder::{build_mf_nodes, NodeSeeds};
use rex_repro::core::config::{ExecutionMode, GossipAlgorithm, ProtocolConfig, SharingMode};
use rex_repro::core::engine::{Driver, Engine, EngineConfig, EngineResult, TimeAxis};
use rex_repro::core::membership::MembershipPlan;
use rex_repro::core::Node;
use rex_repro::data::{Partition, SyntheticConfig, TrainTestSplit};
use rex_repro::ml::{MfHyperParams, MfModel};
use rex_repro::net::fault::{FaultPlan, FaultyTransport, LinkFaults};
use rex_repro::net::{ChannelTransport, MemNetwork, TcpTransport, Transport};
use rex_repro::tee::SgxCostModel;
use rex_repro::topology::TopologySpec;

const N: usize = 8;
const EPOCHS: usize = 8;

/// 6 founders on a small world over 8 ids; node 6 joins at epoch 2
/// (default sponsor), node 7 at epoch 4 (explicit sponsor 1); node 2
/// leaves at epoch 6.
fn churn_plan() -> MembershipPlan {
    MembershipPlan {
        seed: 0x11,
        bootstrap_points: 30,
        ..MembershipPlan::default()
    }
    .with_join(6, 2, None)
    .with_join(7, 4, Some(1))
    .with_leave(2, 6)
}

fn fleet(sharing: SharingMode) -> Vec<Node<MfModel>> {
    let ds = SyntheticConfig {
        num_users: (2 * N) as u32,
        num_items: 160,
        num_ratings: 125 * N,
        seed: 42,
        ..SyntheticConfig::default()
    }
    .generate();
    let split = TrainTestSplit::standard(&ds, 7);
    let part = Partition::multi_user(&split, N);
    let graph = TopologySpec::SmallWorld.build(N, 5);
    build_mf_nodes(
        &part,
        &graph,
        ds.num_users,
        ds.num_items,
        MfHyperParams::default(),
        ProtocolConfig {
            sharing,
            algorithm: GossipAlgorithm::DPsgd,
            points_per_epoch: 40,
            steps_per_epoch: 100,
            seed: 17,
            ..ProtocolConfig::default()
        },
        NodeSeeds::default(),
    )
}

fn config(
    driver: Driver,
    time: TimeAxis,
    execution: ExecutionMode,
    faults: Option<FaultPlan>,
) -> EngineConfig {
    EngineConfig {
        epochs: EPOCHS,
        execution,
        time,
        driver,
        processes_per_platform: 1,
        seed: 0xE0,
        faults,
        membership: Some(churn_plan()),
    }
}

/// Runs the churn scenario over one combination, returning the result
/// and the trained fleet.
fn run_churn<T: Transport>(
    transport: T,
    driver: Driver,
    time: TimeAxis,
    execution: ExecutionMode,
    faults: Option<FaultPlan>,
) -> (EngineResult, Vec<Node<MfModel>>) {
    let mut nodes = fleet(SharingMode::RawData);
    let cfg = config(driver, time, execution, faults.clone());
    let result = match faults {
        Some(plan) => {
            Engine::<MfModel, FaultyTransport<T>>::new(FaultyTransport::new(transport, plan), cfg)
                .run("churn", &mut nodes)
        }
        None => Engine::<MfModel, T>::new(transport, cfg).run("churn", &mut nodes),
    };
    (result, nodes)
}

/// The fixture-relevant slice of a trace: per-epoch RMSE/byte bits,
/// liveness, delivery counters, final traffic.
fn signature(result: &EngineResult) -> Vec<String> {
    let mut sig: Vec<String> = result
        .trace
        .records
        .iter()
        .map(|r| {
            format!(
                "{}:{:#x}:{:#x}:{}:{}:{}:{}:{}",
                r.epoch,
                r.rmse.to_bits(),
                r.bytes_per_node.to_bits(),
                r.live_nodes,
                r.delivery.delivered,
                r.delivery.dropped,
                r.delivery.late,
                r.delivery.duplicated
            )
        })
        .collect();
    for (id, s) in result.final_stats.iter().enumerate() {
        sig.push(format!(
            "stats {id}: {} {} {} {}",
            s.bytes_out, s.bytes_in, s.msgs_out, s.msgs_in
        ));
    }
    sig
}

#[test]
fn churn_scenario_is_bit_identical_across_drivers_and_backends() {
    let sim = || TimeAxis::Simulated(Default::default());
    let (reference, _) = run_churn(
        MemNetwork::new(N),
        Driver::Lockstep { parallel: false },
        sim(),
        ExecutionMode::Native,
        None,
    );
    let want = signature(&reference);
    let combos: Vec<(&str, EngineResult)> = vec![
        (
            "mem/lockstep-parallel",
            run_churn(
                MemNetwork::new(N),
                Driver::Lockstep { parallel: true },
                sim(),
                ExecutionMode::Native,
                None,
            )
            .0,
        ),
        (
            "mem/work-steal",
            run_churn(
                MemNetwork::new(N),
                Driver::WorkSteal { workers: 4 },
                sim(),
                ExecutionMode::Native,
                None,
            )
            .0,
        ),
        (
            "channel/lockstep-seq",
            run_churn(
                ChannelTransport::new(N),
                Driver::Lockstep { parallel: false },
                TimeAxis::Wall,
                ExecutionMode::Native,
                None,
            )
            .0,
        ),
        (
            "channel/work-steal",
            run_churn(
                ChannelTransport::new(N),
                Driver::WorkSteal { workers: 3 },
                TimeAxis::Wall,
                ExecutionMode::Native,
                None,
            )
            .0,
        ),
        (
            "tcp/lockstep-seq",
            run_churn(
                TcpTransport::loopback(N).expect("loopback fabric"),
                Driver::Lockstep { parallel: false },
                TimeAxis::Wall,
                ExecutionMode::Native,
                None,
            )
            .0,
        ),
        (
            "tcp/work-steal",
            run_churn(
                TcpTransport::loopback(N).expect("loopback fabric"),
                Driver::WorkSteal { workers: 2 },
                TimeAxis::Wall,
                ExecutionMode::Native,
                None,
            )
            .0,
        ),
    ];
    for (combo, result) in &combos {
        assert_eq!(signature(result), want, "{combo} diverged from reference");
    }
}

#[test]
fn joiner_converges_and_leaver_detaches() {
    let (result, nodes) = run_churn(
        MemNetwork::new(N),
        Driver::Lockstep { parallel: false },
        TimeAxis::Simulated(Default::default()),
        ExecutionMode::Native,
        None,
    );

    // Liveness tracks the view: 6 founders, +1 at epoch 2, +1 at epoch
    // 4, -1 at epoch 6.
    let live: Vec<usize> = result.trace.records.iter().map(|r| r.live_nodes).collect();
    assert_eq!(live, vec![6, 6, 7, 7, 8, 8, 7, 7]);

    // The joiners converged into the gossip: they hold neighbours, their
    // stores grew past their initial (empty-join) state, and the
    // sponsor's bootstrap landed (store larger than local partition
    // alone can explain is covered by raw sharing; assert reception via
    // traffic).
    for joiner in [6, 7] {
        assert!(
            !nodes[joiner].neighbors().is_empty(),
            "joiner {joiner} wired into the overlay"
        );
        assert!(
            result.final_stats[joiner].msgs_in > 0,
            "joiner {joiner} received gossip"
        );
        assert!(
            result.final_stats[joiner].msgs_out > 0,
            "joiner {joiner} shared after joining"
        );
    }

    // The leaver is detached: no survivor still lists it.
    for (id, node) in nodes.iter().enumerate() {
        if id != 2 {
            assert!(
                !node.neighbors().contains(&2),
                "node {id} still lists the departed node"
            );
        }
    }
    // The surviving overlay stays connected (graceful leave repaired it).
    let overlay = rex_repro::core::setup::overlay_of(&nodes);
    let dead: Vec<bool> = (0..N).map(|v| v == 2).collect();
    assert!(
        rex_repro::topology::repair::alive_connected(&overlay, &dead),
        "survivor overlay disconnected after the leave"
    );

    // A member before joining contributes no RMSE: epoch 0 mean over 6
    // founders differs from a static 8-node run's epoch 0.
    assert!(result.trace.records[0].rmse.is_finite());
}

#[test]
fn bootstrap_grows_joiner_store_before_first_epoch() {
    // With bootstrapping on, the joiner's first-epoch inbox contains the
    // sponsor's raw shares; with it off, it starts from its local
    // partition only. Compare the two runs' joiner stores right after.
    let run = |points: usize| {
        let mut nodes = fleet(SharingMode::RawData);
        let mut cfg = config(
            Driver::Lockstep { parallel: false },
            TimeAxis::Simulated(Default::default()),
            ExecutionMode::Native,
            None,
        );
        cfg.epochs = 3; // one epoch past the first join
        cfg.membership = Some(
            MembershipPlan {
                seed: 0x11,
                bootstrap_points: points,
                ..MembershipPlan::default()
            }
            .with_join(6, 2, None),
        );
        let _ = Engine::<MfModel, MemNetwork>::new(MemNetwork::new(N), cfg)
            .run("bootstrap", &mut nodes);
        nodes[6].store().len()
    };
    let with = run(50);
    let without = run(0);
    assert!(
        with > without,
        "bootstrap did not grow the joiner's store ({with} vs {without})"
    );
}

#[test]
fn sgx_churn_installs_late_sessions_and_stays_bit_identical() {
    let sgx = ExecutionMode::Sgx(SgxCostModel::default());
    let (mem_result, nodes) = run_churn(
        MemNetwork::new(N),
        Driver::Lockstep { parallel: false },
        TimeAxis::Simulated(Default::default()),
        sgx,
        None,
    );
    // Joiners hold attested sessions with every current neighbour.
    for joiner in [6, 7] {
        for &peer in nodes[joiner].neighbors() {
            assert!(
                nodes[joiner].has_session(peer),
                "joiner {joiner} lacks a session with neighbour {peer}"
            );
        }
    }
    // SGX churn replays bit-identically on another backend + driver.
    let (channel_result, _) = run_churn(
        ChannelTransport::new(N),
        Driver::WorkSteal { workers: 3 },
        TimeAxis::Wall,
        sgx,
        None,
    );
    assert_eq!(signature(&mem_result), signature(&channel_result));
}

#[test]
fn membership_composes_with_fault_plans() {
    // A lossy fabric plus a crash window over the sponsor's join epoch:
    // the schedule still replays bit-for-bit across backends, and the
    // delivery counters show real loss.
    let faults = FaultPlan::uniform(0xFA01, LinkFaults::drop_rate(0.15)).with_crash(3, 1, Some(4));
    let (a, _) = run_churn(
        MemNetwork::new(N),
        Driver::Lockstep { parallel: false },
        TimeAxis::Simulated(Default::default()),
        ExecutionMode::Native,
        Some(faults.clone()),
    );
    let (b, _) = run_churn(
        ChannelTransport::new(N),
        Driver::WorkSteal { workers: 2 },
        TimeAxis::Wall,
        ExecutionMode::Native,
        Some(faults),
    );
    assert_eq!(signature(&a), signature(&b));
    let total = a.trace.total_delivery();
    assert!(total.dropped > 0, "no loss realized under a 15% drop plan");
}

#[test]
fn dropped_bootstrap_is_deterministic_not_fatal() {
    // A link override that destroys everything the default sponsor (node
    // 5, the joiner's lowest-id neighbour — asserted below) sends to the
    // joiner: the bootstrap is lost, the join still happens, and the run
    // replays bit-for-bit.
    let mut nodes = fleet(SharingMode::RawData);
    let plan = MembershipPlan {
        seed: 0x11,
        bootstrap_points: 50,
        ..MembershipPlan::default()
    }
    .with_join(6, 2, Some(0));
    let faults = FaultPlan::default().with_link(0, 6, LinkFaults::drop_rate(1.0));
    let mut cfg = config(
        Driver::Lockstep { parallel: false },
        TimeAxis::Simulated(Default::default()),
        ExecutionMode::Native,
        Some(faults.clone()),
    );
    cfg.membership = Some(plan);
    let run = |cfg: EngineConfig, nodes: &mut Vec<Node<MfModel>>| {
        Engine::<MfModel, FaultyTransport<MemNetwork>>::new(
            FaultyTransport::new(MemNetwork::new(N), faults.clone()),
            cfg,
        )
        .run("dropped-bootstrap", nodes)
    };
    let a = run(cfg.clone(), &mut nodes);
    let mut nodes_b = fleet(SharingMode::RawData);
    let b = run(cfg, &mut nodes_b);
    assert_eq!(signature(&a), signature(&b));
    assert!(
        a.trace.records[2].delivery.dropped > 0,
        "the bootstrap (and the sponsor's epoch shares) were dropped"
    );
    assert_eq!(nodes[6].store().len(), nodes_b[6].store().len());
}
