//! Cross-crate integration: full REX deployments must converge, and the
//! paper's headline orderings must hold end to end.

use rex_repro::core::builder::{build_mf_nodes, NodeSeeds};
use rex_repro::core::centralized::run_baseline;
use rex_repro::core::config::{ExecutionMode, GossipAlgorithm, ProtocolConfig, SharingMode};
use rex_repro::core::runner::{run, Backend, SimulationConfig};
use rex_repro::data::{Partition, SyntheticConfig, TrainTestSplit};
use rex_repro::ml::{MfHyperParams, MfModel};
use rex_repro::topology::TopologySpec;

fn dataset() -> rex_repro::data::Dataset {
    SyntheticConfig {
        num_users: 32,
        num_items: 400,
        num_ratings: 4_800,
        seed: 77,
        ..SyntheticConfig::default()
    }
    .generate()
}

fn fleet(
    sharing: SharingMode,
    algorithm: GossipAlgorithm,
    topology: TopologySpec,
) -> Vec<rex_repro::core::Node<MfModel>> {
    let ds = dataset();
    let split = TrainTestSplit::standard(&ds, 3);
    let partition = Partition::one_user_per_node(&split);
    let graph = topology.build(32, 9);
    build_mf_nodes(
        &partition,
        &graph,
        ds.num_users,
        ds.num_items,
        MfHyperParams::default(),
        ProtocolConfig {
            sharing,
            algorithm,
            points_per_epoch: 100,
            steps_per_epoch: 200,
            seed: 5,
            ..ProtocolConfig::default()
        },
        NodeSeeds::default(),
    )
}

fn sim(epochs: usize) -> Backend {
    Backend::Simulated(SimulationConfig {
        epochs,
        execution: ExecutionMode::Native,
        parallel: true,
        ..Default::default()
    })
}

#[test]
fn rex_and_ms_converge_to_similar_quality() {
    // Paper Fig 1: "all scenarios converge to about the same error value".
    let mut rex_nodes = fleet(
        SharingMode::RawData,
        GossipAlgorithm::DPsgd,
        TopologySpec::SmallWorld,
    );
    let mut ms_nodes = fleet(
        SharingMode::Model,
        GossipAlgorithm::DPsgd,
        TopologySpec::SmallWorld,
    );
    let rex = run(&sim(60), "REX", &mut rex_nodes).trace;
    let ms = run(&sim(60), "MS", &mut ms_nodes).trace;

    // The synthetic data's mean-only baseline is already strong (~0.61
    // RMSE), so convergence deltas are small in absolute terms; what
    // matters is a steady monotone improvement.
    let rex_first = rex.records.first().unwrap().rmse;
    let rex_final = rex.final_rmse().unwrap();
    let ms_final = ms.final_rmse().unwrap();
    assert!(
        rex_final < rex_first - 0.02,
        "REX did not converge: {rex_first} -> {rex_final}"
    );
    assert!(
        (rex_final - ms_final).abs() < 0.08,
        "plateaus diverged: REX {rex_final} vs MS {ms_final}"
    );
}

#[test]
fn rex_beats_ms_in_time_and_bytes_on_every_topology_algorithm_combo() {
    for topology in [TopologySpec::SmallWorld, TopologySpec::ErdosRenyi] {
        for algorithm in [GossipAlgorithm::Rmw, GossipAlgorithm::DPsgd] {
            let mut rex_nodes = fleet(SharingMode::RawData, algorithm, topology);
            let mut ms_nodes = fleet(SharingMode::Model, algorithm, topology);
            let rex = run(&sim(15), "REX", &mut rex_nodes).trace;
            let ms = run(&sim(15), "MS", &mut ms_nodes).trace;
            assert!(
                ms.total_bytes_per_node() > 5.0 * rex.total_bytes_per_node(),
                "{topology:?}/{algorithm:?}: byte gap missing"
            );
            // The time gap is structural for D-PSGD (degree-many models per
            // epoch); under RMW one small model per epoch sits inside
            // debug-build measurement noise, so only assert the broadcast
            // case strictly.
            if algorithm == GossipAlgorithm::DPsgd {
                assert!(
                    ms.duration_secs() > rex.duration_secs(),
                    "{topology:?}/{algorithm:?}: REX not faster"
                );
            }
        }
    }
}

#[test]
fn centralized_baseline_is_fastest_to_quality() {
    // Paper: "the centralized baselines remains fastest as expected".
    let ds = dataset();
    let split = TrainTestSplit::standard(&ds, 3);
    let mut model = MfModel::new(
        ds.num_users,
        ds.num_items,
        MfHyperParams::default(),
        ds.mean_rating() as f32,
        0,
    );
    let central = run_baseline(
        "central",
        &mut model,
        &split.train,
        &split.test,
        split.train.len(),
        30,
        2,
    );
    let mut rex_nodes = fleet(
        SharingMode::RawData,
        GossipAlgorithm::DPsgd,
        TopologySpec::SmallWorld,
    );
    let rex = run(&sim(40), "REX", &mut rex_nodes).trace;
    assert!(
        central.final_rmse().unwrap() <= rex.final_rmse().unwrap() + 0.05,
        "centralized should reach at least comparable quality"
    );
}

#[test]
fn raw_data_dissemination_fills_stores() {
    // REX gossip should spread data well beyond each node's initial share.
    let mut nodes = fleet(
        SharingMode::RawData,
        GossipAlgorithm::DPsgd,
        TopologySpec::SmallWorld,
    );
    let initial: Vec<usize> = nodes.iter().map(|n| n.store().len()).collect();
    let _ = run(&sim(20), "REX", &mut nodes);
    for (node, init) in nodes.iter().zip(initial) {
        assert!(
            node.store().len() > 2 * init,
            "node {} store stayed near its initial size",
            node.id()
        );
    }
}

#[test]
fn rmw_cheaper_than_dpsgd_on_the_wire() {
    // Paper §IV-E-b: "RMW scales better than D-PSGD because of frugal
    // network usage".
    let mut rmw = fleet(
        SharingMode::Model,
        GossipAlgorithm::Rmw,
        TopologySpec::ErdosRenyi,
    );
    let mut dpsgd = fleet(
        SharingMode::Model,
        GossipAlgorithm::DPsgd,
        TopologySpec::ErdosRenyi,
    );
    let r = run(&sim(10), "rmw", &mut rmw).trace;
    let d = run(&sim(10), "dpsgd", &mut dpsgd).trace;
    assert!(d.total_bytes_per_node() > 1.5 * r.total_bytes_per_node());
}
