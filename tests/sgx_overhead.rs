//! Integration: the SGX cost structure must reproduce the paper's Table IV
//! ordering — model sharing pays far more for the enclave than REX, and
//! overcommitting the EPC amplifies the penalty.

use rex_repro::core::builder::{build_mf_nodes, NodeSeeds};
use rex_repro::core::config::{ExecutionMode, GossipAlgorithm, ProtocolConfig, SharingMode};
use rex_repro::core::runner::{run, Backend, SimulationConfig};
use rex_repro::data::{Partition, SyntheticConfig, TrainTestSplit};
use rex_repro::ml::MfHyperParams;
use rex_repro::tee::SgxCostModel;
use rex_repro::topology::TopologySpec;

fn fleet(sharing: SharingMode) -> Vec<rex_repro::core::Node<rex_repro::ml::MfModel>> {
    let ds = SyntheticConfig {
        num_users: 32,
        num_items: 600,
        num_ratings: 5_000,
        seed: 13,
        ..SyntheticConfig::default()
    }
    .generate();
    let split = TrainTestSplit::standard(&ds, 1);
    let partition = Partition::multi_user(&split, 8);
    let graph = TopologySpec::FullyConnected.build(8, 0);
    build_mf_nodes(
        &partition,
        &graph,
        ds.num_users,
        ds.num_items,
        MfHyperParams::default(),
        ProtocolConfig {
            sharing,
            algorithm: GossipAlgorithm::DPsgd,
            points_per_epoch: 100,
            steps_per_epoch: 150,
            seed: 8,
            ..ProtocolConfig::default()
        },
        NodeSeeds::default(),
    )
}

fn charged_overhead(sharing: SharingMode, cost: SgxCostModel) -> u64 {
    let mut nodes = fleet(sharing);
    let result = run(
        &Backend::Simulated(SimulationConfig {
            epochs: 10,
            execution: ExecutionMode::Sgx(cost),
            parallel: false,
            ..Default::default()
        }),
        "sgx",
        &mut nodes,
    );
    result.trace.mean_sgx_overhead_ns()
}

#[test]
fn ms_pays_more_sgx_overhead_than_rex() {
    let cost = SgxCostModel::default();
    let rex = charged_overhead(SharingMode::RawData, cost);
    let ms = charged_overhead(SharingMode::Model, cost);
    assert!(
        ms > 2 * rex,
        "Table IV ordering broken: MS charged {ms} ns vs REX {rex} ns"
    );
}

#[test]
fn epc_overcommit_amplifies_overhead() {
    // Shrink the EPC so the MS working set (model + 7 neighbour models)
    // no longer fits: paging charges must appear.
    let fitting = SgxCostModel::default();
    let overcommitted = SgxCostModel::default().with_epc_limit(64 * 1024);
    let fits = charged_overhead(SharingMode::Model, fitting);
    let pages = charged_overhead(SharingMode::Model, overcommitted);
    assert!(
        pages > fits + fits / 4,
        "paging did not materialize: {fits} ns vs {pages} ns"
    );
}

#[test]
fn sgx_does_not_change_model_quality() {
    let run = |execution| {
        let mut nodes = fleet(SharingMode::RawData);
        run(
            &Backend::Simulated(SimulationConfig {
                epochs: 12,
                execution,
                parallel: false,
                ..Default::default()
            }),
            "q",
            &mut nodes,
        )
        .trace
        .final_rmse()
        .unwrap()
    };
    let native = run(ExecutionMode::Native);
    let sgx = run(ExecutionMode::Sgx(SgxCostModel::default()));
    assert!(
        (native - sgx).abs() < 1e-9,
        "SGX must only cost time, not accuracy: {native} vs {sgx}"
    );
}
