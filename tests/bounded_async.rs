//! The bounded-staleness driver's determinism contract.
//!
//! `Driver::BoundedAsync { k }` trades round fidelity for speed: a node
//! proceeds once ≥ k distinct neighbour shares arrived, and stragglers'
//! shares merge one epoch late under the canonical-order rule. In-process
//! the arrival model is drawn from the run seed, so the contract is:
//!
//! * fixed `(seed, k)` ⇒ a bit-identical trajectory, run to run;
//! * `k ≥ max degree` ⇒ no share is ever late ⇒ bit-identical to
//!   `Driver::Lockstep` — the conformance anchor that pins the staleness
//!   path onto the golden-traced synchronous semantics;
//! * smaller `k` ⇒ a genuinely different (but still deterministic)
//!   trajectory, with identical total traffic — staleness defers
//!   delivery, it does not drop or duplicate.

use rex_repro::core::builder::{build_mf_nodes, NodeSeeds};
use rex_repro::core::config::{ExecutionMode, GossipAlgorithm, ProtocolConfig, SharingMode};
use rex_repro::core::engine::{Driver, Engine, EngineConfig, EngineResult, TimeAxis};
use rex_repro::core::Node;
use rex_repro::data::{Partition, SyntheticConfig, TrainTestSplit};
use rex_repro::ml::{MfHyperParams, MfModel};
use rex_repro::net::MemNetwork;
use rex_repro::topology::TopologySpec;

const EPOCHS: usize = 8;
const NODES: usize = 8;

fn fleet() -> Vec<Node<MfModel>> {
    let ds = SyntheticConfig {
        num_users: 24,
        num_items: 160,
        num_ratings: 2_000,
        seed: 42,
        ..SyntheticConfig::default()
    }
    .generate();
    let split = TrainTestSplit::standard(&ds, 7);
    let part = Partition::multi_user(&split, NODES);
    let graph = TopologySpec::SmallWorld.build(NODES, 5);
    build_mf_nodes(
        &part,
        &graph,
        ds.num_users,
        ds.num_items,
        MfHyperParams::default(),
        ProtocolConfig {
            sharing: SharingMode::RawData,
            algorithm: GossipAlgorithm::DPsgd,
            points_per_epoch: 40,
            steps_per_epoch: 120,
            seed: 17,
            ..ProtocolConfig::default()
        },
        NodeSeeds::default(),
    )
}

fn run(driver: Driver, seed: u64) -> (EngineResult, Vec<Node<MfModel>>) {
    let mut nodes = fleet();
    let result = Engine::<MfModel, MemNetwork>::new(
        MemNetwork::new(nodes.len()),
        EngineConfig {
            epochs: EPOCHS,
            execution: ExecutionMode::Native,
            time: TimeAxis::Simulated(Default::default()),
            driver,
            processes_per_platform: 1,
            seed,
            faults: None,
            membership: None,
        },
    )
    .run("bounded-async", &mut nodes);
    (result, nodes)
}

fn rmse_bits(r: &EngineResult) -> Vec<u64> {
    r.trace.records.iter().map(|e| e.rmse.to_bits()).collect()
}

#[test]
fn fixed_seed_and_k_is_bit_deterministic() {
    let (a, nodes_a) = run(Driver::BoundedAsync { k: 2 }, 0xE0);
    let (b, nodes_b) = run(Driver::BoundedAsync { k: 2 }, 0xE0);
    assert_eq!(rmse_bits(&a), rmse_bits(&b));
    assert_eq!(a.final_stats, b.final_stats);
    for (na, nb) in nodes_a.iter().zip(&nodes_b) {
        assert_eq!(
            na.local_rmse().map(f64::to_bits),
            nb.local_rmse().map(f64::to_bits),
            "node {} models diverged across identical runs",
            na.id()
        );
    }
}

#[test]
fn k_at_least_degree_degenerates_to_lockstep() {
    // Every node has ≤ NODES-1 neighbours, so k = NODES means no share
    // is ever deferred and the trajectory must be *bit-identical* to the
    // synchronous driver that the golden traces pin.
    let (lockstep, lock_nodes) = run(Driver::Lockstep { parallel: false }, 0xE0);
    let (bounded, bounded_nodes) = run(Driver::BoundedAsync { k: NODES }, 0xE0);
    assert_eq!(rmse_bits(&lockstep), rmse_bits(&bounded));
    assert_eq!(lockstep.final_stats, bounded.final_stats);
    for (nl, nb) in lock_nodes.iter().zip(&bounded_nodes) {
        assert_eq!(
            nl.local_rmse().map(f64::to_bits),
            nb.local_rmse().map(f64::to_bits),
            "node {}: bounded-async with k ≥ degree must match lockstep",
            nl.id()
        );
    }
}

#[test]
fn small_k_changes_the_trajectory_but_not_the_traffic() {
    let (lockstep, _) = run(Driver::Lockstep { parallel: false }, 0xE0);
    let (bounded, _) = run(Driver::BoundedAsync { k: 1 }, 0xE0);
    assert_ne!(
        rmse_bits(&lockstep),
        rmse_bits(&bounded),
        "k=1 on a degree-5 topology must defer shares and diverge"
    );
    // Deferral shifts *when* shares merge, never whether they were sent:
    // cumulative per-node traffic is unchanged.
    assert_eq!(lockstep.final_stats, bounded.final_stats);
}

#[test]
fn different_seeds_draw_different_arrival_orders() {
    let (a, _) = run(Driver::BoundedAsync { k: 2 }, 0xE0);
    let (b, _) = run(Driver::BoundedAsync { k: 2 }, 0xE1);
    assert_ne!(
        rmse_bits(&a),
        rmse_bits(&b),
        "the arrival model must be seed-dependent"
    );
}

#[test]
#[should_panic(expected = "does not compose")]
fn bounded_async_rejects_fault_plans() {
    let mut nodes = fleet();
    let n = nodes.len();
    Engine::<MfModel, MemNetwork>::new(
        MemNetwork::new(n),
        EngineConfig {
            epochs: 2,
            driver: Driver::BoundedAsync { k: 2 },
            faults: Some(rex_repro::net::FaultPlan {
                seed: 1,
                ..Default::default()
            }),
            ..Default::default()
        },
    )
    .run("rejects-faults", &mut nodes);
}
