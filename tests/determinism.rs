//! Integration: fixed seeds must yield bit-identical learning trajectories
//! (the basis for every comparison in the bench harness).

use rex_repro::core::builder::{build_mf_nodes, NodeSeeds};
use rex_repro::core::config::{ExecutionMode, GossipAlgorithm, ProtocolConfig, SharingMode};
use rex_repro::core::runner::{run, Backend, SimulationConfig};
use rex_repro::data::{Partition, SyntheticConfig, TrainTestSplit};
use rex_repro::ml::MfHyperParams;
use rex_repro::topology::TopologySpec;

fn run_once(parallel: bool, seed: u64) -> Vec<(f64, f64)> {
    let ds = SyntheticConfig {
        num_users: 24,
        num_items: 300,
        num_ratings: 3_000,
        seed,
        ..SyntheticConfig::default()
    }
    .generate();
    let split = TrainTestSplit::standard(&ds, seed);
    let partition = Partition::one_user_per_node(&split);
    let graph = TopologySpec::SmallWorld.build(24, seed);
    let mut nodes = build_mf_nodes(
        &partition,
        &graph,
        ds.num_users,
        ds.num_items,
        MfHyperParams::default(),
        ProtocolConfig {
            sharing: SharingMode::RawData,
            algorithm: GossipAlgorithm::Rmw,
            points_per_epoch: 60,
            steps_per_epoch: 120,
            seed,
            ..ProtocolConfig::default()
        },
        NodeSeeds::default(),
    );
    let trace = run(
        &Backend::Simulated(SimulationConfig {
            epochs: 15,
            execution: ExecutionMode::Native,
            parallel,
            ..Default::default()
        }),
        "det",
        &mut nodes,
    )
    .trace;
    trace
        .records
        .iter()
        .map(|r| (r.rmse, r.bytes_per_node))
        .collect()
}

#[test]
fn identical_seeds_identical_trajectories() {
    let a = run_once(false, 99);
    let b = run_once(false, 99);
    assert_eq!(a, b);
}

#[test]
fn parallel_execution_preserves_trajectory() {
    // Rayon scheduling must not affect results: per-node RNGs, deterministic
    // message ordering.
    let seq = run_once(false, 7);
    let par = run_once(true, 7);
    assert_eq!(seq, par);
}

#[test]
fn different_seeds_differ() {
    let a = run_once(false, 1);
    let b = run_once(false, 2);
    assert_ne!(a, b);
}
