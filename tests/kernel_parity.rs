//! Kernel-parity property suite: every SIMD dispatch level this host can
//! execute must agree with the scalar reference **bit for bit**, on every
//! primitive, for arbitrary lengths (including ragged tails shorter than
//! a vector width) and adversarial bit patterns — subnormals, ±0.0,
//! ±inf, and NaNs with arbitrary payload bits.
//!
//! Float comparisons go through `to_bits()`: `assert_eq!` on floats would
//! pass `-0.0 == 0.0` and fail all NaNs, neither of which is the contract.
//! The contract is the exact IEEE-754 bit pattern — with one carve-out:
//! a NaN *result* must be NaN on every level, but its payload bits are
//! implementation-defined (IEEE-754 §6.2 leaves payload propagation to
//! the implementation; LLVM commutes `fmul`/`fadd` operands and x86
//! selects the first operand's NaN, so register allocation picks the
//! payload). Comparisons therefore canonicalize NaNs to one quiet-NaN
//! pattern and compare everything else bit-for-bit.

use proptest::prelude::*;
use rex_repro::crypto::chacha20;
use rex_repro::crypto::simd as crypto_simd;
use rex_repro::ml::kernel;

const CANON_QNAN32: u32 = 0x7fc0_0000;
const CANON_QNAN64: u64 = 0x7ff8_0000_0000_0000;

fn canon32(x: f32) -> u32 {
    if x.is_nan() {
        CANON_QNAN32
    } else {
        x.to_bits()
    }
}

fn canon64(x: f64) -> u64 {
    if x.is_nan() {
        CANON_QNAN64
    } else {
        x.to_bits()
    }
}

/// f32 bit patterns weighted toward the edge cases that distinguish a
/// bit-exact kernel from a merely accurate one.
fn arb_f32() -> impl Strategy<Value = f32> {
    (any::<u32>(), 0u8..8).prop_map(|(bits, class)| {
        f32::from_bits(match class {
            // Subnormal: zero exponent, random non-zero-ish mantissa.
            0 => bits & 0x807f_ffff,
            // ±0.0.
            1 => bits & 0x8000_0000,
            // NaN with a random payload (quiet bit forced on so the
            // pattern stays NaN even if the payload is zero).
            2 => (bits & 0x807f_ffff) | 0x7fc0_0000,
            // ±inf.
            3 => (bits & 0x8000_0000) | 0x7f80_0000,
            // Huge finite magnitudes (exponent pinned high).
            4 => (bits & 0x803f_ffff) | 0x7e00_0000,
            // Anything at all, including signaling-NaN encodings.
            _ => bits,
        })
    })
}

fn arb_vec(max_len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(arb_f32(), 0..max_len)
}

fn bits32(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| canon32(*x)).collect()
}

fn bits64(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| canon64(*x)).collect()
}

proptest! {
    #[test]
    fn dot_is_bit_identical_across_levels(a in arb_vec(67), b in arb_vec(67)) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let reference = kernel::dot_scalar(a, b);
        for l in kernel::available_levels() {
            let got = kernel::dot_with(l, a, b);
            prop_assert_eq!(
                canon32(got), canon32(reference),
                "dot {} vs scalar at len {} ({} vs {})", l.name(), n, got, reference
            );
        }
    }

    #[test]
    fn norm_sq_is_bit_identical_across_levels(a in arb_vec(67)) {
        let reference = kernel::norm_sq_scalar(&a);
        for l in kernel::available_levels() {
            let got = kernel::norm_sq_with(l, &a);
            prop_assert_eq!(
                canon64(got), canon64(reference),
                "norm_sq {} vs scalar at len {}", l.name(), a.len()
            );
        }
    }

    #[test]
    fn axpy_is_bit_identical_across_levels(
        alpha in arb_f32(),
        x in arb_vec(67),
        y in arb_vec(67),
    ) {
        let n = x.len().min(y.len());
        let (x, y) = (&x[..n], &y[..n]);
        let mut reference = y.to_vec();
        kernel::axpy_scalar(alpha, x, &mut reference);
        for l in kernel::available_levels() {
            let mut got = y.to_vec();
            kernel::axpy_with(l, alpha, x, &mut got);
            prop_assert_eq!(
                bits32(&got), bits32(&reference),
                "axpy {} vs scalar at len {}", l.name(), n
            );
        }
    }

    #[test]
    fn scale_add_is_bit_identical_across_levels(
        w in any::<f64>(),
        src in arb_vec(67),
        acc_bits in proptest::collection::vec(any::<u64>(), 0..67),
    ) {
        let n = src.len().min(acc_bits.len());
        let src = &src[..n];
        let acc0: Vec<f64> = acc_bits[..n].iter().map(|&b| f64::from_bits(b)).collect();
        let mut reference = acc0.clone();
        kernel::scale_add_scalar(&mut reference, w, src);
        for l in kernel::available_levels() {
            let mut got = acc0.clone();
            kernel::scale_add_with(l, &mut got, w, src);
            prop_assert_eq!(
                bits64(&got), bits64(&reference),
                "scale_add {} vs scalar at len {}", l.name(), n
            );
        }
    }

    #[test]
    fn sgd_update_is_bit_identical_across_levels(
        lr in arb_f32(),
        err in arb_f32(),
        reg in arb_f32(),
        x in arb_vec(67),
        y in arb_vec(67),
    ) {
        let n = x.len().min(y.len());
        let (x0, y0) = (&x[..n], &y[..n]);
        let (mut rx, mut ry) = (x0.to_vec(), y0.to_vec());
        kernel::sgd_update_scalar(&mut rx, &mut ry, lr, err, reg);
        for l in kernel::available_levels() {
            let (mut gx, mut gy) = (x0.to_vec(), y0.to_vec());
            kernel::sgd_update_with(l, &mut gx, &mut gy, lr, err, reg);
            prop_assert_eq!(bits32(&gx), bits32(&rx), "sgd_update x {} len {}", l.name(), n);
            prop_assert_eq!(bits32(&gy), bits32(&ry), "sgd_update y {} len {}", l.name(), n);
        }
    }

    #[test]
    fn chacha20_stream_is_identical_across_levels(
        key_seed in any::<u64>(),
        nonce_seed in any::<u64>(),
        counter in any::<u32>(),
        len in 0usize..1200,
    ) {
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = (key_seed.rotate_left((i % 64) as u32) >> (i % 8)) as u8;
        }
        let mut nonce = [0u8; 12];
        for (i, b) in nonce.iter_mut().enumerate() {
            *b = (nonce_seed.rotate_left((i % 64) as u32) >> (i % 8)) as u8;
        }
        let plain: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
        let mut reference = plain.clone();
        chacha20::xor_stream_with(
            crypto_simd::SimdLevel::Scalar, &key, counter, &nonce, &mut reference,
        );
        for l in crypto_simd::available_levels() {
            let mut got = plain.clone();
            chacha20::xor_stream_with(l, &key, counter, &nonce, &mut got);
            prop_assert_eq!(&got, &reference, "chacha20 {} len {} ctr {}", l.name(), len, counter);
        }
    }
}
