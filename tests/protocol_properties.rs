//! Property-based integration tests over the protocol surfaces.

use proptest::prelude::*;
use rex_repro::core::RawDataStore;
use rex_repro::data::Rating;
use rex_repro::net::codec::{decode_plain, encode_plain};
use rex_repro::net::Plain;

fn arb_rating() -> impl Strategy<Value = Rating> {
    (0u32..500, 0u32..2000, 1u32..=10).prop_map(|(user, item, halves)| Rating {
        user,
        item,
        value: halves as f32 * 0.5,
    })
}

proptest! {
    #[test]
    fn plain_codec_roundtrips(
        ratings in proptest::collection::vec(arb_rating(), 0..400),
        degree in 0u32..1000,
    ) {
        let msg = Plain::RawData { ratings, degree };
        let bytes = encode_plain(&msg);
        prop_assert_eq!(decode_plain(&bytes).unwrap(), msg);
    }

    #[test]
    fn model_payload_roundtrips(bytes in proptest::collection::vec(any::<u8>(), 0..4096), degree in 0u32..64) {
        let msg = Plain::Model { bytes, degree };
        let enc = encode_plain(&msg);
        prop_assert_eq!(decode_plain(&enc).unwrap(), msg);
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_plain(&bytes); // must return Err, not panic
    }

    #[test]
    fn store_append_is_idempotent_and_deduplicating(
        batch_a in proptest::collection::vec(arb_rating(), 0..200),
        batch_b in proptest::collection::vec(arb_rating(), 0..200),
    ) {
        let mut store = RawDataStore::new();
        store.append_batch(&batch_a);
        let after_a = store.len();
        // Re-appending A adds nothing.
        prop_assert_eq!(store.append_batch(&batch_a), 0);
        prop_assert_eq!(store.len(), after_a);
        // Appending B then A∪B again is stable.
        store.append_batch(&batch_b);
        let total = store.len();
        store.append_batch(&batch_a);
        store.append_batch(&batch_b);
        prop_assert_eq!(store.len(), total);
        // Distinct keys bound the size.
        let distinct: std::collections::HashSet<_> =
            batch_a.iter().chain(&batch_b).map(|r| r.key()).collect();
        prop_assert_eq!(store.len(), distinct.len());
    }

    #[test]
    fn store_samples_are_subsets(
        batch in proptest::collection::vec(arb_rating(), 1..300),
        k in 1usize..400,
        seed in any::<u64>(),
    ) {
        use rand::SeedableRng;
        let store = RawDataStore::with_initial(batch.clone());
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let sample = store.sample(k, &mut rng);
        prop_assert_eq!(sample.len(), k.min(store.len()));
        let keys: std::collections::HashSet<_> = store.ratings().iter().map(|r| r.key()).collect();
        for r in &sample {
            prop_assert!(keys.contains(&r.key()));
        }
        // Samples are duplicate-free within one batch.
        let sample_keys: std::collections::HashSet<_> = sample.iter().map(|r| r.key()).collect();
        prop_assert_eq!(sample_keys.len(), sample.len());
    }
}
