//! Property-based integration tests over the protocol surfaces: wire
//! codecs (message payloads and TCP framing), the raw-data store, and
//! the topology generators the experiments run on.

use proptest::prelude::*;
use rex_repro::core::RawDataStore;
use rex_repro::data::Rating;
use rex_repro::ml::{MfHyperParams, MfModel, Model};
use rex_repro::net::codec::{decode_plain, encode_plain};
use rex_repro::net::frame::{decode_frame, encode_frame, read_frame, Frame};
use rex_repro::net::Plain;
use rex_repro::topology::{
    alive_connected, erdos_renyi, metrics, mh_weights::mixing_row, repair_after_crashes,
    small_world,
};

fn arb_rating() -> impl Strategy<Value = Rating> {
    (0u32..500, 0u32..2000, 1u32..=10).prop_map(|(user, item, halves)| Rating {
        user,
        item,
        value: halves as f32 * 0.5,
    })
}

proptest! {
    #[test]
    fn plain_codec_roundtrips(
        ratings in proptest::collection::vec(arb_rating(), 0..400),
        degree in 0u32..1000,
    ) {
        let msg = Plain::RawData { ratings, degree };
        let bytes = encode_plain(&msg);
        prop_assert_eq!(decode_plain(&bytes).unwrap(), msg);
    }

    #[test]
    fn model_payload_roundtrips(bytes in proptest::collection::vec(any::<u8>(), 0..4096), degree in 0u32..64) {
        let msg = Plain::Model { bytes, degree };
        let enc = encode_plain(&msg);
        prop_assert_eq!(decode_plain(&enc).unwrap(), msg);
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_plain(&bytes); // must return Err, not panic
    }

    #[test]
    fn raw_packed_roundtrips_as_a_set(
        ratings in proptest::collection::vec(arb_rating(), 0..400),
        degree in 0u32..1000,
    ) {
        // The sparse raw form canonicalizes order (batches are sets) but
        // must preserve the exact multiset of grid-valued triplets — and
        // never beat the dense form by losing data.
        let enc = encode_plain(&Plain::RawPacked { ratings: ratings.clone(), degree });
        let decoded = decode_plain(&enc).unwrap();
        prop_assert!(matches!(decoded, Plain::RawPacked { .. }), "variant changed");
        let Plain::RawPacked { ratings: back, degree: d } = decoded else {
            unreachable!()
        };
        prop_assert_eq!(d, degree);
        let key = |r: &Rating| (r.user, r.item, (r.value * 2.0) as u32);
        let mut want: Vec<_> = ratings.iter().map(key).collect();
        let mut got: Vec<_> = back.iter().map(key).collect();
        want.sort_unstable();
        got.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn model_delta_roundtrips_bit_exactly_over_random_sparsity(
        steps in proptest::collection::vec(
            (0u32..30, 0u32..60, 1u32..=10),
            0..50,
        ),
        mean in 1u32..=9,
        density_pct in 0u32..=100,
    ) {
        let max_density = f64::from(density_pct) / 100.0;
        // Random sparsity patterns: each step dirties one user row and
        // one item row of a 30x60 model. Whenever the delta encoder
        // chooses to emit (density under the threshold), the decode must
        // reconstruct the sender's model to the last bit; when it
        // declines (dense fallback boundary), that is the only other
        // acceptable outcome.
        let reference = MfModel::new(30, 60, MfHyperParams::default(), 3.5, 77);
        let fp = reference.ref_fingerprint();
        let mut m = reference.clone();
        m.set_global_mean(mean as f32 * 0.5);
        for (user, item, halves) in &steps {
            m.sgd_step(&Rating { user: *user, item: *item, value: *halves as f32 * 0.5 });
        }
        match m.delta_bytes(&reference, fp, max_density) {
            Some(delta) => {
                let back = MfModel::apply_delta(&reference, fp, &delta).unwrap();
                prop_assert_eq!(back.to_bytes(), m.to_bytes());
                // Wrapped in the wire codec it still roundtrips.
                let enc = encode_plain(&Plain::ModelDelta { bytes: delta.clone(), degree: 3 });
                prop_assert_eq!(
                    decode_plain(&enc).unwrap(),
                    Plain::ModelDelta { bytes: delta, degree: 3 }
                );
            }
            None => {
                // Fallback must only trigger when *something* changed and
                // the threshold is below full density.
                prop_assert!(max_density < 1.0);
                prop_assert!(!steps.is_empty());
            }
        }
        // An unchanged model (empty delta) always encodes, whatever the
        // threshold, and reconstructs bit-exactly.
        let mut untouched = reference.clone();
        untouched.set_global_mean(4.5);
        let empty = untouched.delta_bytes(&reference, fp, 0.0)
            .expect("empty delta always under threshold");
        let back = MfModel::apply_delta(&reference, fp, &empty).unwrap();
        prop_assert_eq!(back.to_bytes(), untouched.to_bytes());
    }

    #[test]
    fn model_delta_decoder_never_panics_on_garbage(
        bytes in proptest::collection::vec(any::<u8>(), 0..320),
    ) {
        // Hostile length prefixes, truncations, random noise: Err, never
        // a panic — this is what stands between a hostile peer and the
        // merge stage.
        let reference = MfModel::new(16, 16, MfHyperParams::default(), 3.5, 5);
        let fp = reference.ref_fingerprint();
        let _ = MfModel::apply_delta(&reference, fp, &bytes);
    }

    #[test]
    fn model_delta_truncations_always_error(
        steps in proptest::collection::vec((0u32..8, 0u32..8, 1u32..=10), 1..10),
        cut_seed in any::<u64>(),
    ) {
        let reference = MfModel::new(8, 8, MfHyperParams::default(), 3.5, 6);
        let fp = reference.ref_fingerprint();
        let mut m = reference.clone();
        for (user, item, halves) in &steps {
            m.sgd_step(&Rating { user: *user, item: *item, value: *halves as f32 * 0.5 });
        }
        let delta = m.delta_bytes(&reference, fp, 1.0).expect("threshold 1.0 always encodes");
        let cut = (cut_seed as usize) % delta.len();
        prop_assert!(MfModel::apply_delta(&reference, fp, &delta[..cut]).is_err());
    }

    #[test]
    fn store_append_is_idempotent_and_deduplicating(
        batch_a in proptest::collection::vec(arb_rating(), 0..200),
        batch_b in proptest::collection::vec(arb_rating(), 0..200),
    ) {
        let mut store = RawDataStore::new();
        store.append_batch(&batch_a);
        let after_a = store.len();
        // Re-appending A adds nothing.
        prop_assert_eq!(store.append_batch(&batch_a), 0);
        prop_assert_eq!(store.len(), after_a);
        // Appending B then A∪B again is stable.
        store.append_batch(&batch_b);
        let total = store.len();
        store.append_batch(&batch_a);
        store.append_batch(&batch_b);
        prop_assert_eq!(store.len(), total);
        // Distinct keys bound the size.
        let distinct: std::collections::HashSet<_> =
            batch_a.iter().chain(&batch_b).map(|r| r.key()).collect();
        prop_assert_eq!(store.len(), distinct.len());
    }

    #[test]
    fn frame_decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..320)) {
        // The TCP frame layer's twin of the payload-codec garbage test:
        // arbitrary bytes must produce Ok or Err, never a panic — this is
        // what stands between a hostile peer and the reader thread.
        let _ = decode_frame(&bytes);
        let mut reader = &bytes[..];
        // The streaming path must also survive (and terminate on) any
        // prefix of garbage.
        while let Ok(Some(_)) = read_frame(&mut reader) {}
    }

    #[test]
    fn frame_roundtrips_and_consumes_exactly(
        payload in proptest::collection::vec(any::<u8>(), 0..2048),
        from in 0usize..1024,
        trailer in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let frame = Frame::Data { from, payload };
        let mut wire = encode_frame(&frame);
        let framed_len = wire.len();
        wire.extend_from_slice(&trailer);
        let (back, consumed) = decode_frame(&wire).unwrap();
        prop_assert_eq!(back, frame);
        prop_assert_eq!(consumed, framed_len, "must not eat into the next frame");
    }

    #[test]
    fn erdos_renyi_is_connected_at_paper_parameters(
        seed in any::<u64>(),
        n in 20usize..200,
    ) {
        // §IV-A2b: p = 5%, "made connected by adding the missing edges".
        let g = erdos_renyi(n, 0.05, seed);
        prop_assert_eq!(g.len(), n);
        prop_assert!(metrics::is_connected(&g), "n={} seed={}", n, seed);
    }

    #[test]
    fn small_world_connected_with_degree_bounds(
        seed in any::<u64>(),
        n in 8usize..160,
    ) {
        // §IV-A2a: k = 6 close connections, 3% far-fetched probability.
        // The lattice guarantees every node at least k distinct
        // neighbours; shortcuts add at most one edge per lattice edge.
        let g = small_world(n, 6, 0.03, seed);
        prop_assert!(metrics::is_connected(&g));
        for v in 0..n {
            prop_assert!(g.degree(v) >= 6, "node {} degree {}", v, g.degree(v));
            prop_assert!(g.degree(v) < n);
        }
        prop_assert!(g.num_edges() <= n * 6, "too many edges: {}", g.num_edges());
    }

    #[test]
    fn metropolis_hastings_rows_are_stochastic(
        seed in any::<u64>(),
        n in 8usize..120,
        er in any::<bool>(),
    ) {
        // §III-C2: every mixing row sums to 1 with a non-negative
        // self-weight, whatever connected topology the run uses.
        let g = if er {
            erdos_renyi(n, 0.05, seed)
        } else {
            small_world(n, 6, 0.03, seed)
        };
        for node in 0..n {
            let (self_w, row) = mixing_row(&g, node);
            let total: f64 = self_w + row.iter().map(|&(_, w)| w).sum::<f64>();
            prop_assert!((total - 1.0).abs() < 1e-9, "row sum {}", total);
            prop_assert!(self_w >= -1e-12, "negative self weight {}", self_w);
            for &(_, w) in &row {
                prop_assert!(w > 0.0 && w <= 1.0);
            }
        }
    }

    #[test]
    fn crash_repair_reconnects_survivors(
        seed in any::<u64>(),
        n in 8usize..80,
        dead_picks in proptest::collection::vec(any::<u64>(), 1..8),
    ) {
        // Kill up to 8 arbitrary nodes of a small world; the repaired
        // overlay must keep every pair of survivors mutually reachable
        // through survivors only.
        let g = small_world(n, 6, 0.03, seed);
        let mut dead = vec![false; n];
        for pick in &dead_picks {
            dead[(*pick as usize) % n] = true;
        }
        prop_assume!(dead.iter().filter(|&&d| !d).count() >= 2);
        let repaired = repair_after_crashes(&g, &dead, seed ^ 0x5EED);
        prop_assert!(alive_connected(&repaired, &dead));
        for (v, &d) in dead.iter().enumerate() {
            if d {
                prop_assert_eq!(repaired.degree(v), 0, "dead node {} kept edges", v);
            }
        }
    }

    #[test]
    fn store_samples_are_subsets(
        batch in proptest::collection::vec(arb_rating(), 1..300),
        k in 1usize..400,
        seed in any::<u64>(),
    ) {
        use rand::SeedableRng;
        let store = RawDataStore::with_initial(batch.clone());
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let sample = store.sample(k, &mut rng);
        prop_assert_eq!(sample.len(), k.min(store.len()));
        let keys: std::collections::HashSet<_> = store.ratings().iter().map(|r| r.key()).collect();
        for r in &sample {
            prop_assert!(keys.contains(&r.key()));
        }
        // Samples are duplicate-free within one batch.
        let sample_keys: std::collections::HashSet<_> = sample.iter().map(|r| r.key()).collect();
        prop_assert_eq!(sample_keys.len(), sample.len());
    }
}
