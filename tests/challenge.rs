//! Challenger-mode oracle: a real multi-process TCP cluster run is
//! replayable bit-for-bit, so `rex-node --challenge` accepts every
//! honest recorded summary and flags (then evicts) a tampered one.
//!
//! The launcher needs the `rex-node` binary, which `cargo test` builds as
//! part of the workspace; if it is missing (e.g. a filtered build), the
//! tests skip with a notice instead of failing.

use rex_repro::core::commitment::verify_tag;
use rex_repro::core::CommitmentChain;
use rex_repro::node::launcher::{find_node_binary, launch_cluster, scratch_dir};
use rex_repro::node::{
    challenge_node, run_cluster_in_process, AuditConfig, ChallengeVerdict, ClusterConfig,
    NodeSummary,
};
use std::path::{Path, PathBuf};
use std::process::Command;

fn tiny_cfg(n: usize) -> ClusterConfig {
    ClusterConfig {
        // Placeholder addresses; the launcher reserves real ports.
        nodes: (0..n).map(|i| format!("127.0.0.1:{}", 7300 + i)).collect(),
        epochs: 4,
        num_users: 16,
        num_items: 80,
        num_ratings: 1_000,
        points_per_epoch: 20,
        steps_per_epoch: 60,
        audit: Some(AuditConfig::default()),
        ..ClusterConfig::default()
    }
}

fn require_binary() -> Option<PathBuf> {
    let bin = find_node_binary();
    if bin.is_none() {
        eprintln!("[challenge] rex-node binary not built; skipping");
    }
    bin
}

/// Runs `rex-node --challenge` against a recorded summary and returns
/// `(exit_code, stdout)`.
fn run_challenger(bin: &Path, config: &Path, suspect: usize, summary: &Path) -> (i32, String) {
    let output = Command::new(bin)
        .arg("--config")
        .arg(config)
        .arg("--challenge")
        .arg(suspect.to_string())
        .arg("--summary")
        .arg(summary)
        .output()
        .expect("spawning challenger");
    (
        output.status.code().expect("challenger exit code"),
        String::from_utf8_lossy(&output.stdout).into_owned(),
    )
}

#[test]
fn challenger_audits_a_deployed_cluster_end_to_end() {
    let Some(bin) = require_binary() else {
        return;
    };
    let cfg = tiny_cfg(4);
    let dir = scratch_dir("challenge");
    // Keep the workdir alive: the challenger reads the very config file
    // and summary files the deployed cluster wrote.
    let deployed = launch_cluster(&bin, &cfg, &dir).expect("cluster run failed");
    let config_path = dir.join("cluster.toml");

    // The deployed processes committed every epoch with verifiable tags.
    for s in &deployed {
        assert_eq!(s.commitments.len(), cfg.epochs, "node {}", s.id);
        for (epoch, c) in s.commitments.iter().enumerate() {
            let c = c.expect("static fleet commits every epoch");
            assert!(
                verify_tag(cfg.protocol_seed, s.id, epoch, &c),
                "node {} epoch {epoch}: deployed tag does not verify",
                s.id
            );
        }
    }

    // Honest recorded summary: the binary replays the run from seed and
    // accepts (exit 0).
    let (code, stdout) = run_challenger(&bin, &config_path, 1, &dir.join("node1.summary"));
    assert_eq!(code, 0, "honest challenge failed:\n{stdout}");
    assert!(stdout.contains("verdict = honest"), "{stdout}");
    assert!(stdout.contains("epochs_committed = 4"), "{stdout}");

    // Library-level: every node's deployed summary matches the replay.
    let recorded_cfg =
        ClusterConfig::parse(&std::fs::read_to_string(&config_path).expect("config readback"))
            .expect("config reparse");
    for s in &deployed {
        let verdict = challenge_node(&recorded_cfg, s.id, s).expect("challenge ran");
        assert_eq!(
            verdict,
            ChallengeVerdict::Honest {
                epochs_checked: cfg.epochs,
                epochs_committed: cfg.epochs,
            },
            "node {}",
            s.id
        );
    }

    // Tamper with the recorded chain (flip one digest bit, keep the
    // stale tag) and challenge again: flagged, eviction demonstrated,
    // exit 1.
    let mut tampered = deployed[1].clone();
    let mut c = tampered.commitments[2].expect("epoch 2 commitment");
    c.digest[0] ^= 0x01;
    tampered.commitments[2] = Some(c);
    let tampered_path = dir.join("node1.tampered.summary");
    std::fs::write(&tampered_path, tampered.to_text()).expect("writing tampered summary");

    let (code, stdout) = run_challenger(&bin, &config_path, 1, &tampered_path);
    assert_eq!(code, 1, "tampered challenge not flagged:\n{stdout}");
    assert!(stdout.contains("verdict = divergent"), "{stdout}");
    assert!(stdout.contains("divergent_epoch = 2"), "{stdout}");
    assert!(stdout.contains("eviction_epoch = 2"), "{stdout}");
    assert!(stdout.contains("post_eviction_survivors = 3"), "{stdout}");

    // A garbage summary is an error (exit 2), not a verdict.
    let bad_path = dir.join("garbage.summary");
    std::fs::write(&bad_path, "not a summary").expect("writing garbage");
    let output = Command::new(&bin)
        .arg("--config")
        .arg(&config_path)
        .arg("--challenge")
        .arg("1")
        .arg("--summary")
        .arg(&bad_path)
        .output()
        .expect("spawning challenger");
    assert_eq!(output.status.code(), Some(2));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mid_run_model_tamper_diverges_at_the_flipped_epoch() {
    // The subtle forgery: the suspect trains honestly through epoch 1,
    // then flips a bit in one model row and keeps signing its (now
    // wrong) chain with its *real* key. Every tag verifies — only the
    // replay exposes that the committed models are not the protocol's.
    let cfg = tiny_cfg(4);
    let summaries = run_cluster_in_process(&cfg).expect("reference run");
    let mut tampered = summaries[2].clone();
    let honest_head = tampered.commitments[1].expect("epoch 1").digest;
    let mut forged = CommitmentChain::resume(cfg.protocol_seed, 2, honest_head);
    // Static fleet: the chain index the tag binds equals the epoch.
    tampered.commitments[2] = Some(forged.advance(2, b"model with one row bit-flipped"));
    tampered.commitments[3] = Some(forged.advance(3, b"the divergence persists"));
    for (epoch, c) in tampered.commitments.iter().enumerate() {
        assert!(
            verify_tag(cfg.protocol_seed, 2, epoch, &c.unwrap()),
            "epoch {epoch}: the forger signs with its real key"
        );
    }

    let ChallengeVerdict::Divergent {
        epoch,
        reason,
        eviction_epoch,
        post_eviction,
    } = challenge_node(&cfg, 2, &tampered).expect("challenge ran")
    else {
        panic!("mid-run tamper accepted");
    };
    assert_eq!(epoch, 2);
    assert!(
        reason.contains("model digest diverges"),
        "valid tag, wrong model: {reason}"
    );
    assert_eq!(eviction_epoch, 2);
    // The eviction re-run: suspect sits out from the divergent epoch on,
    // the surviving fleet completes the whole run.
    assert_eq!(post_eviction.len(), 4);
    assert!(post_eviction[2].rmse_trace_bits[2..]
        .iter()
        .all(Option::is_none));
    assert!(post_eviction[2].commitments[2..]
        .iter()
        .all(Option::is_none));
    for s in &post_eviction {
        if s.id != 2 {
            assert!(
                s.rmse_trace_bits.iter().all(Option::is_some),
                "node {}",
                s.id
            );
            assert!(s.commitments.iter().all(Option::is_some), "node {}", s.id);
        }
    }
}

#[test]
fn recorded_summary_roundtrips_through_disk_for_the_challenger() {
    // The challenger consumes summaries through the text format; the
    // commitment log must survive the disk roundtrip bit-for-bit.
    let cfg = tiny_cfg(3);
    let summaries = run_cluster_in_process(&cfg).expect("reference run");
    for s in &summaries {
        let reparsed = NodeSummary::parse(&s.to_text()).expect("roundtrip");
        assert_eq!(&reparsed, s);
        assert_eq!(
            challenge_node(&cfg, s.id, &reparsed).expect("challenge ran"),
            ChallengeVerdict::Honest {
                epochs_checked: cfg.epochs,
                epochs_committed: cfg.epochs,
            }
        );
    }
}
