//! Brute-force oracle conformance for the serve path: the blocked,
//! bound-pruned [`Scorer`] must return **exactly** what a naive
//! full-scan argsort returns — same items, same unclamped score bits,
//! same deterministic tie order — for random factors, every k regime
//! (1, 10, dim, over-ask), with and without exclusion lists, and across
//! interleaved `train_steps_batched` updates that invalidate the norm
//! cache mid-stream.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rex_repro::core::serve::{naive_top_k, score_one, QueryStream, Scorer, TopKQuery};
use rex_repro::data::Rating;
use rex_repro::ml::{MfHyperParams, MfModel, Model};

/// A rating on the half-star grid, over a small dense universe so
/// random draws actually collide into seen users/items.
fn arb_rating(users: u32, items: u32) -> impl Strategy<Value = Rating> {
    (0..users, 0..items, 1u32..=10).prop_map(|(user, item, halves)| Rating {
        user,
        item,
        value: halves as f32 * 0.5,
    })
}

/// A model trained on random data for a random number of steps: random
/// factors with the real generating process (so seen-masks, biases and
/// embeddings all carry realistic structure).
fn trained(seed: u64, users: u32, items: u32, data: &[Rating], steps: usize) -> MfModel {
    let mut m = MfModel::new(users, items, MfHyperParams::default(), 3.3, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
    m.train_steps(data, steps, &mut rng);
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The headline oracle: every block size, every k regime, random
    /// factors — pruned/blocked top-k equals full-scan argsort exactly.
    #[test]
    fn scorer_equals_oracle(
        seed in 0u64..1_000,
        data in proptest::collection::vec(arb_rating(12, 90), 1..300),
        steps in 1usize..600,
        block in 1usize..130,
        user in 0u32..12,
    ) {
        let m = trained(seed, 12, 90, &data, steps);
        let mut scorer = Scorer::new(block);
        // k = 1, the paper's k = 10, k = dim (90), and an over-ask.
        for k in [1usize, 10, 90, 150] {
            let got = scorer.top_k(&m, &TopKQuery { user, k }, &[]);
            let want = naive_top_k(&m, user, k, &[]);
            prop_assert_eq!(&got, &want, "block {} k {}", block, k);
            // Scores are the exact unclamped bits of score_one.
            for s in &got {
                prop_assert_eq!(s.score.to_bits(), score_one(&m, user, s.item).to_bits());
            }
        }
    }

    /// Exclusion lists (per-shard candidate pruning) never change the
    /// relative order of what remains, and excluded items never appear.
    #[test]
    fn scorer_equals_oracle_under_exclusions(
        seed in 0u64..1_000,
        data in proptest::collection::vec(arb_rating(10, 60), 1..200),
        excl in proptest::collection::vec(0u32..60, 0..40),
        block in 1usize..70,
        user in 0u32..10,
        k in 1usize..70,
    ) {
        let m = trained(seed, 10, 60, &data, 300);
        let mut exclude = excl;
        exclude.sort_unstable();
        exclude.dedup();
        let mut scorer = Scorer::new(block);
        let got = scorer.top_k(&m, &TopKQuery { user, k }, &exclude);
        prop_assert_eq!(&got, &naive_top_k(&m, user, k, &exclude));
        for s in &got {
            prop_assert!(exclude.binary_search(&s.item).is_err(), "excluded item served");
        }
    }

    /// Unseen users (cold-start) and a fully tied score surface: the
    /// answer is the k smallest admissible item ids, deterministically.
    #[test]
    fn cold_start_ties_break_by_item_id(
        users in 1u32..8,
        items in 1u32..120,
        k in 1usize..130,
        block in 1usize..40,
    ) {
        let m = MfModel::new(users, items, MfHyperParams::default(), 3.0, 1);
        let mut scorer = Scorer::new(block);
        let got = scorer.top_k(&m, &TopKQuery { user: 0, k }, &[]);
        let want: Vec<u32> = (0..items).take(k).collect();
        prop_assert_eq!(got.iter().map(|s| s.item).collect::<Vec<_>>(), want);
    }

    /// Norm-cache invalidation under interleaved batched training: the
    /// same `Scorer` instance queried between `train_steps_batched`
    /// rounds (the user-sharded training path) must track every factor
    /// mutation — a stale cached bound that survived an update would
    /// prune the wrong block and diverge from the oracle.
    #[test]
    fn cache_survives_interleaved_batched_training(
        seed in 0u64..1_000,
        data in proptest::collection::vec(arb_rating(8, 64), 4..200),
        rounds in 1usize..12,
        block in 1usize..70,
    ) {
        let mut m = trained(seed, 8, 64, &data, 50);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xBA7C);
        let mut scorer = Scorer::new(block);
        let mut stream = QueryStream::new(seed, 8, 10);
        for _ in 0..rounds {
            m.train_steps_batched(&data, 40, &mut rng);
            for _ in 0..4 {
                let q = stream.next_query();
                prop_assert_eq!(
                    scorer.top_k(&m, &q, &[]),
                    naive_top_k(&m, q.user, q.k, &[])
                );
            }
        }
    }
}

/// Merges — the other write path the serve thread can observe between
/// epochs — also re-key the cache: score a model, merge a peer into it,
/// score again, and check both answers against the oracle.
#[test]
fn cache_tracks_merges() {
    let data_a: Vec<Rating> = (0..80)
        .map(|j| Rating {
            user: j % 8,
            item: (j * 7) % 64,
            value: 0.5 + (j % 9) as f32 * 0.5,
        })
        .collect();
    let data_b: Vec<Rating> = (0..80)
        .map(|j| Rating {
            user: j % 8,
            item: (j * 11 + 3) % 64,
            value: 0.5 + (j % 7) as f32 * 0.5,
        })
        .collect();
    let mut a = trained(1, 8, 64, &data_a, 300);
    let b = trained(2, 8, 64, &data_b, 300);
    let mut scorer = Scorer::new(16);
    for user in 0..8 {
        assert_eq!(
            scorer.top_k(&a, &TopKQuery { user, k: 10 }, &[]),
            naive_top_k(&a, user, 10, &[])
        );
    }
    a.merge(&[(0.5, &b)], 0.5);
    for user in 0..8 {
        assert_eq!(
            scorer.top_k(&a, &TopKQuery { user, k: 10 }, &[]),
            naive_top_k(&a, user, 10, &[]),
            "user {user}: stale cache after merge"
        );
    }
}

/// Duplicated factor rows produce exact score ties between *different*
/// items; the tie must always resolve to the smaller item id, from both
/// the scorer and the oracle, at every block size.
#[test]
fn exact_ties_from_duplicated_rows_resolve_deterministically() {
    // Train, serialize, and duplicate item rows via the byte codec so
    // items (i, i + 32) are bit-identical without touching private
    // fields: decode, re-encode with the y/c/seen sections rewritten.
    let data: Vec<Rating> = (0..120)
        .map(|j| Rating {
            user: j % 10,
            item: j % 32, // only items 0..32 are ever seen
            value: 0.5 + (j % 10) as f32 * 0.5,
        })
        .collect();
    let m = trained(9, 10, 64, &data, 500);
    // Rebuild a 64-item model whose rows 32..64 mirror rows 0..32.
    let k = m.hyper_params().k;
    let mut y = m.item_factors()[..32 * k].to_vec();
    y.extend_from_slice(&m.item_factors()[..32 * k]);
    let mut c = m.item_biases()[..32].to_vec();
    c.extend_from_slice(&m.item_biases()[..32]);
    let mut seen = m.item_seen_mask()[..32].to_vec();
    seen.extend_from_slice(&m.item_seen_mask()[..32]);
    // Same seeds + data + steps reproduce m bit-for-bit — the codec
    // image we splice the mirrored item tables into.
    let base = trained(9, 10, 64, &data, 500);
    assert_eq!(base.to_bytes(), m.to_bytes());
    // Scores must tie exactly between i and i+32 when both are seen:
    // assert through the public scoring surface by comparing the two
    // halves of the oracle's full ranking on a synthetic model built
    // from the mirrored tables.
    let bytes = {
        // Splice the mirrored tables into the wire image: header (4*4+4
        // bytes mean) + b (10 f32) + c (64 f32) + x (10k f32) + y (64k
        // f32) + masks. Easier: build via from_bytes of a hand-packed
        // image matching MfModel's codec layout.
        let mut buf = Vec::new();
        let src = base.to_bytes();
        buf.extend_from_slice(&src[..4 * 4 + 4]); // magic, dims, k, mean
        let mut off = 4 * 4 + 4;
        buf.extend_from_slice(&src[off..off + 10 * 4]); // b
        off += 10 * 4;
        for v in &c {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        off += 64 * 4;
        buf.extend_from_slice(&src[off..off + 10 * k * 4]); // x
        off += 10 * k * 4;
        for v in &y {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        off += 64 * k * 4;
        // user mask passes through; item mask rebuilt from `seen`.
        buf.extend_from_slice(&src[off..off + 2]); // 10 users → 2 bytes
        let mut packed = [0u8; 8];
        for (i, &s) in seen.iter().enumerate() {
            if s {
                packed[i / 8] |= 1 << (i % 8);
            }
        }
        buf.extend_from_slice(&packed);
        buf
    };
    let tied = MfModel::from_bytes(&bytes).expect("hand-packed image decodes");
    for user in 0..10 {
        for (i, twin) in (0..32u32).map(|i| (i, i + 32)) {
            assert_eq!(
                score_one(&tied, user, i).to_bits(),
                score_one(&tied, user, twin).to_bits(),
                "rows {i}/{twin} are bit-identical, scores must tie"
            );
        }
        // Full ranking: every tied pair appears smaller-id-first, and
        // the scorer agrees with the oracle bit-for-bit at several
        // block sizes spanning the tie distance.
        for block in [1usize, 8, 32, 64, 128] {
            let mut scorer = Scorer::new(block);
            let got = scorer.top_k(&tied, &TopKQuery { user, k: 64 }, &[]);
            assert_eq!(got, naive_top_k(&tied, user, 64, &[]), "block {block}");
            for pair in got.windows(2) {
                if pair[0].score.to_bits() == pair[1].score.to_bits() {
                    assert!(pair[0].item < pair[1].item, "tie out of order");
                }
            }
        }
    }
}
