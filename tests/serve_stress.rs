//! Serve-under-training stress: queries answered mid-epoch from a
//! separate thread, on every node of a TCP-loopback cluster, while the
//! chaos headline fault plan (10% uniform loss + two permanent crashes)
//! degrades the fabric — over 100+ epochs.
//!
//! The torn-row assertion is `verify_snapshots = true`: the trainer
//! digests each model's wire bytes at publish time and the serve thread
//! re-serializes and re-digests before answering queries against it. A
//! single mid-epoch SGD write leaking into a served model would flip
//! the digest and fail the run. The replay assertion then pins the
//! whole served answer stream: two runs of the same config must produce
//! bit-identical serve digests on every node.

use rex_repro::net::fault::{FaultPlan, LinkFaults};
use rex_repro::node::{run_cluster_in_process, ClusterConfig, ServeConfig};

const NODES: usize = 18;
const EPOCHS: usize = 120;
const QUERIES_PER_EPOCH: usize = 4;

/// The chaos suite's headline plan, verbatim: 10% uniform packet loss,
/// node 5 crash-stopped from epoch 3 and node 17 from epoch 5 (no
/// rejoin) — both inside this fleet and both spanning most of the run.
fn headline_plan() -> FaultPlan {
    FaultPlan::uniform(0xC4A05, LinkFaults::drop_rate(0.10))
        .with_crash(5, 3, None)
        .with_crash(17, 5, None)
}

fn stress_cfg() -> ClusterConfig {
    ClusterConfig {
        nodes: (0..NODES)
            .map(|i| format!("127.0.0.1:{}", 7300 + i))
            .collect(),
        epochs: EPOCHS,
        num_users: 2 * NODES as u32,
        num_items: 60,
        num_ratings: 1_400,
        points_per_epoch: 5,
        steps_per_epoch: 10,
        faults: Some(headline_plan()),
        serve: Some(ServeConfig {
            queries_per_epoch: QUERIES_PER_EPOCH,
            top_k: 5,
            verify_snapshots: true, // the torn-read detector
            ..ServeConfig::default()
        }),
        ..ClusterConfig::default()
    }
}

#[test]
fn serve_survives_120_epochs_of_headline_chaos_and_replays() {
    let cfg = stress_cfg();
    // Run 1: 18 serve threads each re-digest 120 snapshots while their
    // trainer thread keeps mutating the live model next door. Any torn
    // read fails the run with a digest mismatch naming the epoch.
    let a = run_cluster_in_process(&cfg).expect("no torn snapshot in 18 x 120 epochs");

    for s in &a {
        let serve = s.serve.expect("[serve] section → summary on every node");
        // Every member epoch publishes — crash windows included (the
        // model is frozen, not absent): 120 snapshots per node.
        assert_eq!(
            serve.queries,
            (EPOCHS * QUERIES_PER_EPOCH) as u64,
            "node {}: served epochs must span the whole run",
            s.id
        );
    }
    // The crashed nodes trained less but served the full run.
    assert!(a[5].rmse_trace_bits[3..].iter().all(Option::is_none));
    assert!(a[17].rmse_trace_bits[5..].iter().all(Option::is_none));
    // Loss actually degraded the fabric (the plan was live).
    let reliable = ((NODES - 1) * EPOCHS) as u64;
    assert!(
        a.iter().any(|s| s.stats.msgs_in < reliable),
        "10% drop plan delivered everything"
    );

    // Run 2: the served answer streams — not just the models — must
    // replay bit-for-bit under the identical fault schedule.
    let b = run_cluster_in_process(&cfg).expect("replay run failed");
    assert_eq!(a, b, "serve digests must replay bit-for-bit under chaos");
}
