//! Umbrella crate for the REX reproduction.
//!
//! Re-exports every subsystem so examples and integration tests can depend
//! on a single crate. See `README.md` for the architecture overview and
//! `DESIGN.md` for the paper-to-module map.

pub use rex_core as core;
pub use rex_crypto as crypto;
pub use rex_data as data;
pub use rex_ml as ml;
pub use rex_net as net;
pub use rex_node as node;
pub use rex_sim as sim;
pub use rex_tee as tee;
pub use rex_topology as topology;
