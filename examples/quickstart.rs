//! Quickstart: a 16-node REX deployment on a small-world graph, compared
//! against model sharing and a centralized baseline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rex_repro::core::builder::{build_mf_nodes, NodeSeeds};
use rex_repro::core::centralized::run_baseline;
use rex_repro::core::config::{ExecutionMode, GossipAlgorithm, ProtocolConfig, SharingMode};
use rex_repro::core::runner::{run, Backend, SimulationConfig};
use rex_repro::data::{Partition, SyntheticConfig, TrainTestSplit};
use rex_repro::ml::{MfHyperParams, MfModel};
use rex_repro::topology::TopologySpec;

fn main() {
    // 1. A MovieLens-like dataset: 16 users, 400 items, dense enough to
    //    learn from.
    let dataset = SyntheticConfig {
        num_users: 16,
        num_items: 400,
        num_ratings: 2_600,
        seed: 42,
        ..SyntheticConfig::default()
    }
    .generate();
    println!(
        "dataset: {} users x {} items, {} ratings (density {:.2}%)",
        dataset.num_users,
        dataset.num_items,
        dataset.ratings.len(),
        dataset.density() * 100.0
    );

    // 2. 70/30 split, one node per user, small-world gossip graph.
    let split = TrainTestSplit::standard(&dataset, 7);
    let partition = Partition::one_user_per_node(&split);
    let graph = TopologySpec::SmallWorld.build(16, 3);

    // 3. Run REX (raw-data sharing) and the model-sharing baseline.
    let sim = Backend::Simulated(SimulationConfig {
        epochs: 60,
        execution: ExecutionMode::Native,
        parallel: true,
        ..Default::default()
    });
    let mut results = Vec::new();
    for sharing in [SharingMode::RawData, SharingMode::Model] {
        let mut nodes = build_mf_nodes(
            &partition,
            &graph,
            dataset.num_users,
            dataset.num_items,
            MfHyperParams::default(),
            ProtocolConfig {
                sharing,
                algorithm: GossipAlgorithm::DPsgd,
                points_per_epoch: 50,
                steps_per_epoch: 200,
                seed: 1,
                ..ProtocolConfig::default()
            },
            NodeSeeds::default(),
        );
        let result = run(&sim, sharing.label(), &mut nodes);
        results.push(result.trace);
    }

    // 4. Centralized reference.
    let mut central = MfModel::new(
        dataset.num_users,
        dataset.num_items,
        MfHyperParams::default(),
        dataset.mean_rating() as f32,
        NodeSeeds::default().model_init,
    );
    let central_trace = run_baseline(
        "Centralized",
        &mut central,
        &split.train,
        &split.test,
        split.train.len(),
        30,
        5,
    );
    results.push(central_trace);

    // 5. Compare.
    println!(
        "\n{:<14} {:>10} {:>14} {:>14}",
        "scheme", "final RMSE", "sim time", "bytes/node"
    );
    for t in &results {
        println!(
            "{:<14} {:>10.4} {:>12.3}s {:>12.1} KiB",
            t.name,
            t.final_rmse().unwrap_or(f64::NAN),
            t.duration_secs(),
            t.total_bytes_per_node() / 1024.0
        );
    }
    let rex = &results[0];
    let ms = &results[1];
    println!(
        "\nREX moved {:.0}x fewer bytes and finished {:.1}x sooner than model sharing.",
        ms.total_bytes_per_node() / rex.total_bytes_per_node(),
        ms.duration_secs() / rex.duration_secs(),
    );
}
