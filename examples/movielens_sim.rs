//! Configurable decentralized-recommender simulation: choose sharing mode,
//! gossip algorithm, topology, node count and epochs from the command line.
//!
//! ```text
//! cargo run --release --example movielens_sim -- \
//!     [rex|ms] [rmw|dpsgd] [sw|er|fc|ring] [nodes] [epochs] [--sgx]
//! e.g. cargo run --release --example movielens_sim -- rex dpsgd sw 64 80
//! ```

use rex_repro::core::builder::{build_mf_nodes, NodeSeeds};
use rex_repro::core::config::{ExecutionMode, GossipAlgorithm, ProtocolConfig, SharingMode};
use rex_repro::core::runner::{run, Backend, SimulationConfig};
use rex_repro::data::{Partition, SyntheticConfig, TrainTestSplit};
use rex_repro::ml::MfHyperParams;
use rex_repro::tee::SgxCostModel;
use rex_repro::topology::TopologySpec;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let sharing = match args.first().map(String::as_str) {
        Some("ms") => SharingMode::Model,
        _ => SharingMode::RawData,
    };
    let algorithm = match args.get(1).map(String::as_str) {
        Some("rmw") => GossipAlgorithm::Rmw,
        _ => GossipAlgorithm::DPsgd,
    };
    let topology = match args.get(2).map(String::as_str) {
        Some("er") => TopologySpec::ErdosRenyi,
        Some("fc") => TopologySpec::FullyConnected,
        Some("ring") => TopologySpec::Ring,
        _ => TopologySpec::SmallWorld,
    };
    let nodes: usize = args.get(3).and_then(|v| v.parse().ok()).unwrap_or(64);
    let epochs: usize = args.get(4).and_then(|v| v.parse().ok()).unwrap_or(80);
    let sgx = args.iter().any(|a| a == "--sgx");

    println!(
        "running {} / {} on {} ({} nodes, {} epochs, {})",
        sharing.label(),
        algorithm.label(),
        topology.label(),
        nodes,
        epochs,
        if sgx { "SGX" } else { "native" }
    );

    let dataset = SyntheticConfig {
        num_users: nodes as u32,
        num_items: (nodes * 30) as u32,
        num_ratings: nodes * 164,
        seed: 11,
        ..SyntheticConfig::default()
    }
    .generate();
    let split = TrainTestSplit::standard(&dataset, 1);
    let partition = Partition::one_user_per_node(&split);
    let graph = topology.build(nodes, 5);

    let mut fleet = build_mf_nodes(
        &partition,
        &graph,
        dataset.num_users,
        dataset.num_items,
        MfHyperParams::default(),
        ProtocolConfig {
            sharing,
            algorithm,
            points_per_epoch: 300,
            steps_per_epoch: 300,
            seed: 3,
            ..ProtocolConfig::default()
        },
        NodeSeeds::default(),
    );

    let execution = if sgx {
        ExecutionMode::Sgx(SgxCostModel::default())
    } else {
        ExecutionMode::Native
    };
    let result = run(
        &Backend::Simulated(SimulationConfig {
            epochs,
            execution,
            parallel: true,
            ..Default::default()
        }),
        &format!(
            "{}, {}, {}",
            sharing.label(),
            algorithm.label(),
            topology.label()
        ),
        &mut fleet,
    );

    if sgx {
        println!("attestation setup: {:.2} ms", result.setup_ns as f64 / 1e6);
    }
    println!("\nepoch  time[s]   rmse     bytes/node");
    let step = (epochs / 12).max(1);
    for r in result.trace.records.iter().step_by(step) {
        println!(
            "{:>5} {:>8.3} {:>8.4} {:>12.1} KiB",
            r.epoch,
            r.time_ns as f64 / 1e9,
            r.rmse,
            r.bytes_per_node / 1024.0
        );
    }
    println!(
        "\nfinal: rmse={:.4} after {:.3}s simulated; {:.1} MiB/node total traffic",
        result.trace.final_rmse().unwrap_or(f64::NAN),
        result.trace.duration_secs(),
        result.trace.total_bytes_per_node() / (1024.0 * 1024.0)
    );
}
