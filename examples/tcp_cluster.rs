//! Launch a real multi-process REX cluster on this machine.
//!
//! ```sh
//! cargo run --example tcp_cluster
//! ```
//!
//! Reserves loopback ports, writes a shared cluster config, spawns one
//! `rex-node` OS process per node (build it first: `cargo build -p
//! rex-node`), waits for the run, and prints each node's summary next to
//! the in-process reference — the two columns are bit-identical.

use rex_repro::node::launcher::{find_node_binary, launch_cluster, scratch_dir};
use rex_repro::node::{run_cluster_in_process, ClusterConfig};

fn main() {
    let cfg = ClusterConfig {
        nodes: (0..4).map(|i| format!("127.0.0.1:{}", 7300 + i)).collect(),
        epochs: 6,
        num_users: 24,
        num_items: 160,
        num_ratings: 2_000,
        points_per_epoch: 40,
        steps_per_epoch: 120,
        ..ClusterConfig::default()
    };

    let Some(binary) = find_node_binary() else {
        eprintln!("rex-node binary not found; run `cargo build -p rex-node` first");
        std::process::exit(1);
    };
    println!(
        "Launching {} rex-node processes ({} epochs, {})...",
        cfg.num_nodes(),
        cfg.epochs,
        cfg.protocol().label()
    );
    let dir = scratch_dir("example");
    let deployed = launch_cluster(&binary, &cfg, &dir).expect("cluster run");
    let _ = std::fs::remove_dir_all(&dir);
    let reference = run_cluster_in_process(&cfg).expect("in-process reference");

    println!("\n node | processes: rmse / bytes out | in-process: rmse / bytes out");
    for (d, r) in deployed.iter().zip(&reference) {
        let rmse = |bits: Option<u64>| match bits {
            Some(b) => format!("{:.4}", f64::from_bits(b)),
            None => "-".to_string(),
        };
        println!(
            "   {}  |        {} / {:>8}       |       {} / {:>8}",
            d.id,
            rmse(d.final_rmse_bits),
            d.stats.bytes_out,
            rmse(r.final_rmse_bits),
            r.stats.bytes_out,
        );
        assert_eq!(d, r, "node {} diverged", d.id);
    }
    println!(
        "\nAll {} nodes bit-identical across deployments.",
        deployed.len()
    );
}
