//! Mutual remote attestation between two simulated SGX enclaves, followed
//! by an encrypted raw-data exchange — the trust-establishment path of
//! paper §III-A, step by step.
//!
//! ```text
//! cargo run --release --example attestation_demo
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use rex_repro::tee::attestation::Attestor;
use rex_repro::tee::measurement::REX_ENCLAVE_V1;
use rex_repro::tee::{DcapService, SgxCostModel, SgxPlatform};

fn main() {
    let mut rng = StdRng::seed_from_u64(2024);

    // Provisioning: two SGX machines register with the attestation service.
    let dcap = DcapService::new();
    let platform_a = SgxPlatform::provision(1, &dcap, &mut rng);
    let platform_b = SgxPlatform::provision(2, &dcap, &mut rng);
    println!("provisioned {} platforms with DCAP", dcap.platform_count());

    // Both machines load the same REX enclave binary.
    let mut enclave_a = platform_a.create_enclave(REX_ENCLAVE_V1, SgxCostModel::default());
    let mut enclave_b = platform_b.create_enclave(REX_ENCLAVE_V1, SgxCostModel::default());
    println!("enclave A measurement: {}", enclave_a.measurement());
    println!("enclave B measurement: {}", enclave_b.measurement());

    // Each side prepares an ephemeral X25519 key + nonce; the public key
    // rides in the quote's user-data field (paper §III-A).
    let attestor_a = Attestor::new(&mut rng);
    let attestor_b = Attestor::new(&mut rng);

    let report_a = enclave_a.create_report(attestor_a.user_data());
    let quote_a = platform_a.quote_report(&report_a).expect("QE signs");
    println!("A: report -> quoting enclave -> quote (signed by platform 1)");

    let report_b = enclave_b.create_report(attestor_b.user_data());
    let quote_b = platform_b.quote_report(&report_b).expect("QE signs");
    println!("B: report -> quoting enclave -> quote (signed by platform 2)");

    // Two-message handshake.
    let hello = Attestor::hello(quote_a.clone());
    let (reply, mut session_b) = attestor_b
        .respond(&enclave_b, &dcap, quote_b, &hello)
        .expect("B verifies A's quote + measurement");
    println!("B verified A via DCAP; measurements match; session derived");

    let mut session_a = attestor_a
        .finish(&enclave_a, &dcap, &quote_a, &reply)
        .expect("A verifies B's quote + measurement");
    println!("A verified B; mutual attestation complete\n");

    // Attested channel: share raw ratings, sealed.
    let ratings = b"user=4,item=291,rating=4.5;user=4,item=87,rating=3.0";
    let frame = session_a.seal(b"epoch:1", ratings);
    println!(
        "A -> B sealed frame: {} bytes ({} plaintext + 16 tag)",
        frame.len(),
        ratings.len()
    );
    let opened = session_b.open(b"epoch:1", &frame).expect("authentic");
    println!("B opened: {}", String::from_utf8_lossy(&opened));

    // A rogue enclave cannot join: its measurement differs.
    let mut rogue = platform_b.create_enclave(b"rogue-data-exfiltrator", SgxCostModel::default());
    let rogue_attestor = Attestor::new(&mut rng);
    let rogue_report = rogue.create_report(rogue_attestor.user_data());
    let rogue_quote = platform_b
        .quote_report(&rogue_report)
        .expect("QE signs anything genuine");
    let rogue_hello = Attestor::hello(rogue_quote);
    let err = attestor_a
        .respond(&enclave_a, &dcap, quote_a, &rogue_hello)
        .unwrap_err();
    println!("\nrogue enclave rejected: {err}");
}
