//! Explore the two gossip topologies of the paper (§IV-A2): generate
//! small-world and Erdős–Rényi graphs at several sizes and print the
//! structural metrics that drive REX's convergence behaviour.
//!
//! ```text
//! cargo run --release --example topology_explorer
//! ```

use rex_repro::topology::{metrics, TopologySpec};

fn main() {
    println!(
        "{:<6} {:<5} {:>9} {:>12} {:>10} {:>9}",
        "topo", "n", "edges", "mean degree", "clustering", "diameter"
    );
    for &n in &[50usize, 128, 610] {
        for spec in [TopologySpec::SmallWorld, TopologySpec::ErdosRenyi] {
            let g = spec.build(n, 42);
            let diameter = metrics::diameter(&g)
                .map(|d| d.to_string())
                .unwrap_or_else(|| "inf".into());
            println!(
                "{:<6} {:<5} {:>9} {:>12.2} {:>10.3} {:>9}",
                spec.label(),
                n,
                g.num_edges(),
                g.mean_degree(),
                metrics::clustering_coefficient(&g),
                diameter
            );
        }
    }
    println!(
        "\nAs in the paper: small world keeps high clustering with low\n\
         diameter; Erdős–Rényi (p=5%) grows denser with n — at 610 nodes its\n\
         mean degree (~30) makes D-PSGD broadcast traffic expensive, which\n\
         is exactly where REX's 18.3x speedup shows up (Table II)."
    );

    // Metropolis-Hastings weight sanity on the 610-node graphs.
    use rex_repro::topology::mh_weights::mixing_row;
    for spec in [TopologySpec::SmallWorld, TopologySpec::ErdosRenyi] {
        let g = spec.build(610, 42);
        let (self_w, row) = mixing_row(&g, 0);
        let sum: f64 = self_w + row.iter().map(|(_, w)| w).sum::<f64>();
        println!(
            "{}: node 0 MH row sums to {:.6} over {} neighbours (self weight {:.3})",
            spec.label(),
            sum,
            row.len(),
            self_w
        );
    }
}
