//! Property tests over dataset generation, splitting and partitioning.

use proptest::prelude::*;
use rex_data::{Partition, Rating, SyntheticConfig, TrainTestSplit};

fn arb_config() -> impl Strategy<Value = SyntheticConfig> {
    (2u32..40, 20u32..200, 1usize..8, any::<u64>()).prop_map(|(users, items, per_user, seed)| {
        SyntheticConfig {
            num_users: users,
            num_items: items,
            num_ratings: (users as usize) * per_user.min(items as usize),
            seed,
            ..SyntheticConfig::default()
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generator_respects_config(cfg in arb_config()) {
        let ds = cfg.generate();
        prop_assert_eq!(ds.num_users, cfg.num_users);
        prop_assert_eq!(ds.num_items, cfg.num_items);
        prop_assert_eq!(ds.ratings.len(), cfg.num_ratings);
        // In-range, on-grid, no duplicate cells.
        let mut seen = std::collections::HashSet::new();
        for r in &ds.ratings {
            prop_assert!(r.user < cfg.num_users && r.item < cfg.num_items);
            prop_assert!((0.5..=5.0).contains(&r.value));
            let doubled = r.value * 2.0;
            prop_assert!((doubled - doubled.round()).abs() < 1e-6);
            prop_assert!(seen.insert(r.key()));
        }
    }

    #[test]
    fn split_partitions_ratings_exactly(cfg in arb_config(), frac in 0.3f64..1.0, seed in any::<u64>()) {
        let ds = cfg.generate();
        let split = TrainTestSplit::new(&ds, frac, seed);
        prop_assert_eq!(split.train.len() + split.test.len(), ds.ratings.len());
        // Multiset equality via sorted keys.
        let mut orig: Vec<(u32, u32)> = ds.ratings.iter().map(Rating::key).collect();
        let mut got: Vec<(u32, u32)> = split.train.iter().chain(&split.test).map(Rating::key).collect();
        orig.sort_unstable();
        got.sort_unstable();
        prop_assert_eq!(orig, got);
        // Every user trains.
        let train_users: std::collections::HashSet<u32> =
            split.train.iter().map(|r| r.user).collect();
        for u in 0..ds.num_users {
            prop_assert!(train_users.contains(&u), "user {u} lost all training data");
        }
    }

    #[test]
    fn partition_covers_everything(cfg in arb_config(), nodes_div in 1u32..8, seed in any::<u64>()) {
        let ds = cfg.generate();
        let split = TrainTestSplit::standard(&ds, seed);
        let nodes = ((cfg.num_users / nodes_div).max(1)) as usize;
        let part = Partition::multi_user(&split, nodes);
        prop_assert_eq!(part.num_nodes(), nodes);
        prop_assert_eq!(part.total_train(), split.train.len());
        prop_assert_eq!(part.total_test(), split.test.len());
        // Every user appears exactly once.
        let mut all_users: Vec<u32> = part.users.iter().flatten().copied().collect();
        all_users.sort_unstable();
        let expected: Vec<u32> = (0..cfg.num_users).collect();
        prop_assert_eq!(all_users, expected);
        // Balance within 1.
        let sizes: Vec<usize> = part.users.iter().map(Vec::len).collect();
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        prop_assert!(max - min <= 1);
    }
}
