//! Core rating types.

/// One user–item interaction: the raw data item REX gossips (paper §IV-B:
/// "a triplet containing the user and item identifications, along with the
/// rating").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rating {
    /// Dense user index in `0..num_users`.
    pub user: u32,
    /// Dense item index in `0..num_items`.
    pub item: u32,
    /// Rating value on the 0.5–5.0 half-star grid.
    pub value: f32,
}

impl Rating {
    /// Bytes of one triplet on the wire (u32 + u32 + f32). Used everywhere
    /// network volume is accounted.
    pub const WIRE_SIZE: usize = 12;

    /// Key identifying the (user, item) cell; two ratings for the same cell
    /// are duplicates regardless of value.
    #[must_use]
    pub fn key(&self) -> (u32, u32) {
        (self.user, self.item)
    }
}

/// A complete rating dataset: dimensions plus the list of known cells.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Number of users (rows of the interaction matrix).
    pub num_users: u32,
    /// Number of items (columns).
    pub num_items: u32,
    /// All known ratings, in no particular order.
    pub ratings: Vec<Rating>,
}

impl Dataset {
    /// Builds a dataset, validating that every rating is in range.
    ///
    /// # Panics
    /// If any rating references a user/item outside the declared dimensions.
    #[must_use]
    pub fn new(num_users: u32, num_items: u32, ratings: Vec<Rating>) -> Self {
        for r in &ratings {
            assert!(
                r.user < num_users && r.item < num_items,
                "rating ({}, {}) outside {}x{} matrix",
                r.user,
                r.item,
                num_users,
                num_items
            );
        }
        Dataset {
            num_users,
            num_items,
            ratings,
        }
    }

    /// Fraction of matrix cells that are filled.
    #[must_use]
    pub fn density(&self) -> f64 {
        self.ratings.len() as f64 / (f64::from(self.num_users) * f64::from(self.num_items))
    }

    /// Mean rating value.
    #[must_use]
    pub fn mean_rating(&self) -> f64 {
        if self.ratings.is_empty() {
            return 0.0;
        }
        self.ratings.iter().map(|r| f64::from(r.value)).sum::<f64>() / self.ratings.len() as f64
    }

    /// Ratings grouped by user: `result[u]` holds all ratings of user `u`.
    #[must_use]
    pub fn by_user(&self) -> Vec<Vec<Rating>> {
        let mut out = vec![Vec::new(); self.num_users as usize];
        for r in &self.ratings {
            out[r.user as usize].push(*r);
        }
        out
    }

    /// Number of distinct items that received at least one rating.
    #[must_use]
    pub fn rated_items(&self) -> usize {
        let mut seen = vec![false; self.num_items as usize];
        let mut count = 0;
        for r in &self.ratings {
            if !seen[r.item as usize] {
                seen[r.item as usize] = true;
                count += 1;
            }
        }
        count
    }
}

/// Snaps a raw score to the MovieLens half-star grid, clamping to
/// `[0.5, 5.0]`. Ratings "can take very few values (only 10 in the case of
/// MovieLens)" (paper §IV-E).
#[must_use]
pub fn snap_to_grid(raw: f32) -> f32 {
    let clamped = raw.clamp(0.5, 5.0);
    (clamped * 2.0).round() / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_snapping() {
        assert_eq!(snap_to_grid(3.26), 3.5);
        assert_eq!(snap_to_grid(3.24), 3.0);
        assert_eq!(snap_to_grid(-1.0), 0.5);
        assert_eq!(snap_to_grid(9.0), 5.0);
        assert_eq!(snap_to_grid(0.74), 0.5);
        assert_eq!(snap_to_grid(0.76), 1.0);
    }

    #[test]
    fn grid_values_are_exactly_ten() {
        let mut values = std::collections::BTreeSet::new();
        let mut x = -1.0f32;
        while x < 7.0 {
            values.insert((snap_to_grid(x) * 2.0) as i32);
            x += 0.01;
        }
        assert_eq!(values.len(), 10);
    }

    #[test]
    fn dataset_stats() {
        let ds = Dataset::new(
            2,
            3,
            vec![
                Rating {
                    user: 0,
                    item: 0,
                    value: 4.0,
                },
                Rating {
                    user: 0,
                    item: 2,
                    value: 2.0,
                },
                Rating {
                    user: 1,
                    item: 0,
                    value: 3.0,
                },
            ],
        );
        assert!((ds.density() - 0.5).abs() < 1e-12);
        assert!((ds.mean_rating() - 3.0).abs() < 1e-12);
        assert_eq!(ds.rated_items(), 2);
        let by_user = ds.by_user();
        assert_eq!(by_user[0].len(), 2);
        assert_eq!(by_user[1].len(), 1);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rejects_out_of_range() {
        let _ = Dataset::new(
            1,
            1,
            vec![Rating {
                user: 1,
                item: 0,
                value: 3.0,
            }],
        );
    }

    #[test]
    fn wire_size_matches_fields() {
        assert_eq!(
            Rating::WIRE_SIZE,
            std::mem::size_of::<u32>() * 2 + std::mem::size_of::<f32>()
        );
    }
}
