//! Dataset presets matching paper Table I, plus scaled-down variants used by
//! fast tests and CI-sized bench runs.

use crate::rating::Dataset;
use crate::synthetic::SyntheticConfig;

/// A named dataset shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetSpec {
    /// MovieLens Latest: 100 000 ratings, 610 users, 9 000 items (Table I).
    MlLatestSmall,
    /// MovieLens 25M capped at 15 000 users: 2 249 739 ratings, 28 830 items
    /// (Table I). Large: generating it takes a few seconds.
    Ml25mCapped,
    /// A miniature shape (~5 k ratings, 61 users) for unit tests and smoke
    /// benches; preserves the density of MlLatestSmall.
    Mini,
    /// A medium shape (~20 k ratings, 200 users) for integration tests.
    Medium,
}

impl DatasetSpec {
    /// Expansion into generator parameters.
    #[must_use]
    pub fn config(self, seed: u64) -> SyntheticConfig {
        match self {
            DatasetSpec::MlLatestSmall => SyntheticConfig {
                num_users: 610,
                num_items: 9_000,
                num_ratings: 100_000,
                seed,
                ..SyntheticConfig::default()
            },
            DatasetSpec::Ml25mCapped => SyntheticConfig {
                num_users: 15_000,
                num_items: 28_830,
                num_ratings: 2_249_739,
                seed,
                ..SyntheticConfig::default()
            },
            DatasetSpec::Mini => SyntheticConfig {
                num_users: 61,
                num_items: 900,
                num_ratings: 5_000,
                seed,
                ..SyntheticConfig::default()
            },
            DatasetSpec::Medium => SyntheticConfig {
                num_users: 200,
                num_items: 3_000,
                num_ratings: 20_000,
                seed,
                ..SyntheticConfig::default()
            },
        }
    }

    /// Generates the dataset for this preset.
    #[must_use]
    pub fn generate(self, seed: u64) -> Dataset {
        self.config(seed).generate()
    }

    /// Human-readable name used in bench output.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DatasetSpec::MlLatestSmall => "MovieLens-Latest(610u)",
            DatasetSpec::Ml25mCapped => "MovieLens-25M(15000u)",
            DatasetSpec::Mini => "Mini(61u)",
            DatasetSpec::Medium => "Medium(200u)",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ml_latest_matches_table1() {
        let cfg = DatasetSpec::MlLatestSmall.config(0);
        assert_eq!(cfg.num_users, 610);
        assert_eq!(cfg.num_items, 9_000);
        assert_eq!(cfg.num_ratings, 100_000);
    }

    #[test]
    fn ml_25m_matches_table1() {
        let cfg = DatasetSpec::Ml25mCapped.config(0);
        assert_eq!(cfg.num_users, 15_000);
        assert_eq!(cfg.num_items, 28_830);
        assert_eq!(cfg.num_ratings, 2_249_739);
    }

    #[test]
    fn mini_generates_quickly_and_exactly() {
        let ds = DatasetSpec::Mini.generate(1);
        assert_eq!(ds.num_users, 61);
        assert_eq!(ds.ratings.len(), 5_000);
    }
}
