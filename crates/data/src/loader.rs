//! Loader for real MovieLens `ratings.csv` files.
//!
//! Format: `userId,movieId,rating,timestamp` with a header line. User and
//! item ids are re-indexed densely (MovieLens ids are sparse), and an
//! optional user cap reproduces the paper's truncation of MovieLens 25M to
//! its first 15 000 users (Table I footnote).

use crate::rating::{Dataset, Rating};
use std::collections::HashMap;
use std::io::BufRead;
use std::path::Path;

/// Errors raised while parsing a ratings file.
#[derive(Debug)]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed CSV line (1-based line number and description).
    Parse(usize, String),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "io error: {e}"),
            LoadError::Parse(line, msg) => write!(f, "parse error at line {line}: {msg}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> Self {
        LoadError::Io(e)
    }
}

/// Parses MovieLens CSV content from any reader.
///
/// `max_users`: keep only the first N distinct users encountered
/// (`None` = all). Ids are densified in first-seen order.
pub fn parse_ratings_csv<R: BufRead>(
    reader: R,
    max_users: Option<usize>,
) -> Result<Dataset, LoadError> {
    let mut user_index: HashMap<u64, u32> = HashMap::new();
    let mut item_index: HashMap<u64, u32> = HashMap::new();
    let mut ratings = Vec::new();

    for (line_no, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        // Skip header.
        if line_no == 0 && trimmed.starts_with("userId") {
            continue;
        }
        let mut fields = trimmed.split(',');
        let (raw_user, raw_item, raw_value) = match (fields.next(), fields.next(), fields.next()) {
            (Some(u), Some(i), Some(v)) => (u, i, v),
            _ => {
                return Err(LoadError::Parse(
                    line_no + 1,
                    format!("expected at least 3 fields, got: {trimmed}"),
                ))
            }
        };
        let raw_user: u64 = raw_user
            .parse()
            .map_err(|e| LoadError::Parse(line_no + 1, format!("bad user id: {e}")))?;
        let raw_item: u64 = raw_item
            .parse()
            .map_err(|e| LoadError::Parse(line_no + 1, format!("bad item id: {e}")))?;
        let value: f32 = raw_value
            .parse()
            .map_err(|e| LoadError::Parse(line_no + 1, format!("bad rating: {e}")))?;

        let next_user = user_index.len() as u32;
        let user = match user_index.get(&raw_user) {
            Some(&u) => u,
            None => {
                if let Some(cap) = max_users {
                    if user_index.len() >= cap {
                        continue; // paper-style truncation: drop later users
                    }
                }
                user_index.insert(raw_user, next_user);
                next_user
            }
        };
        let next_item = item_index.len() as u32;
        let item = *item_index.entry(raw_item).or_insert(next_item);
        ratings.push(Rating { user, item, value });
    }

    Ok(Dataset::new(
        user_index.len() as u32,
        item_index.len() as u32,
        ratings,
    ))
}

/// Loads a `ratings.csv` from disk.
pub fn load_ratings_csv<P: AsRef<Path>>(
    path: P,
    max_users: Option<usize>,
) -> Result<Dataset, LoadError> {
    let file = std::fs::File::open(path)?;
    parse_ratings_csv(std::io::BufReader::new(file), max_users)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "userId,movieId,rating,timestamp\n\
        1,31,2.5,1260759144\n\
        1,1029,3.0,1260759179\n\
        7,31,4.0,851868750\n\
        15,1029,1.5,12345\n";

    #[test]
    fn parses_and_densifies() {
        let ds = parse_ratings_csv(SAMPLE.as_bytes(), None).unwrap();
        assert_eq!(ds.num_users, 3);
        assert_eq!(ds.num_items, 2);
        assert_eq!(ds.ratings.len(), 4);
        // First-seen order: user 1 -> 0, user 7 -> 1, user 15 -> 2.
        assert_eq!(ds.ratings[2].user, 1);
        assert_eq!(ds.ratings[2].item, 0); // movie 31 -> 0
        assert_eq!(ds.ratings[2].value, 4.0);
    }

    #[test]
    fn caps_users_like_the_paper() {
        let ds = parse_ratings_csv(SAMPLE.as_bytes(), Some(2)).unwrap();
        assert_eq!(ds.num_users, 2);
        assert_eq!(ds.ratings.len(), 3); // user 15's line dropped
    }

    #[test]
    fn rejects_malformed_line() {
        let bad = "userId,movieId,rating,timestamp\n1,2\n";
        let err = parse_ratings_csv(bad.as_bytes(), None).unwrap_err();
        assert!(matches!(err, LoadError::Parse(2, _)), "{err}");
    }

    #[test]
    fn rejects_non_numeric() {
        let bad = "1,x,3.0,0\n";
        assert!(parse_ratings_csv(bad.as_bytes(), None).is_err());
    }

    #[test]
    fn skips_blank_lines() {
        let content = "1,2,3.0,0\n\n2,2,4.0,0\n";
        let ds = parse_ratings_csv(content.as_bytes(), None).unwrap();
        assert_eq!(ds.ratings.len(), 2);
    }
}
