//! Assignment of users to nodes (paper §IV-A5).
//!
//! Two deployment scenarios are evaluated:
//! * **one node per user** — "users initially have only their own data";
//! * **multiple users per node** — cohorts served by distributed servers
//!   ("we partitioned the ratings of the 610 users through 50 nodes",
//!   12–13 users per node for the DNN experiments).

use crate::rating::Rating;
use crate::split::TrainTestSplit;

/// A mapping of users onto nodes, plus the per-node train/test data derived
/// from a [`TrainTestSplit`].
#[derive(Debug, Clone)]
pub struct Partition {
    /// `users[n]` lists the users hosted by node `n`.
    pub users: Vec<Vec<u32>>,
    /// `train[n]` holds node `n`'s initial local training ratings.
    pub train: Vec<Vec<Rating>>,
    /// `test[n]` holds node `n`'s local held-out test ratings.
    pub test: Vec<Vec<Rating>>,
}

impl Partition {
    /// One node per user: node `u` hosts exactly user `u`.
    #[must_use]
    pub fn one_user_per_node(split: &TrainTestSplit) -> Self {
        let train = split.train_by_user();
        let test = split.test_by_user();
        let users = (0..split.num_users).map(|u| vec![u]).collect();
        Partition { users, train, test }
    }

    /// Distributes all users round-robin over `num_nodes` nodes, so cohort
    /// sizes differ by at most one (the paper's 610-users/50-nodes setup
    /// yields 12 or 13 users per node).
    ///
    /// # Panics
    /// If `num_nodes` is zero or exceeds the number of users.
    #[must_use]
    pub fn multi_user(split: &TrainTestSplit, num_nodes: usize) -> Self {
        assert!(num_nodes > 0, "need at least one node");
        assert!(
            num_nodes <= split.num_users as usize,
            "more nodes ({num_nodes}) than users ({})",
            split.num_users
        );
        let mut users = vec![Vec::new(); num_nodes];
        for u in 0..split.num_users {
            users[(u as usize) % num_nodes].push(u);
        }
        let train_by_user = split.train_by_user();
        let test_by_user = split.test_by_user();
        let mut train = vec![Vec::new(); num_nodes];
        let mut test = vec![Vec::new(); num_nodes];
        for (node, cohort) in users.iter().enumerate() {
            for &u in cohort {
                train[node].extend_from_slice(&train_by_user[u as usize]);
                test[node].extend_from_slice(&test_by_user[u as usize]);
            }
        }
        Partition { users, train, test }
    }

    /// Number of nodes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.users.len()
    }

    /// Total training ratings across nodes.
    #[must_use]
    pub fn total_train(&self) -> usize {
        self.train.iter().map(Vec::len).sum()
    }

    /// Total test ratings across nodes.
    #[must_use]
    pub fn total_test(&self) -> usize {
        self.test.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticConfig;

    fn split() -> TrainTestSplit {
        let ds = SyntheticConfig {
            num_users: 61,
            num_items: 300,
            num_ratings: 3_000,
            seed: 11,
            ..SyntheticConfig::default()
        }
        .generate();
        TrainTestSplit::standard(&ds, 3)
    }

    #[test]
    fn one_user_per_node_shape() {
        let s = split();
        let p = Partition::one_user_per_node(&s);
        assert_eq!(p.num_nodes(), 61);
        for (n, cohort) in p.users.iter().enumerate() {
            assert_eq!(cohort, &vec![n as u32]);
        }
        assert_eq!(p.total_train(), s.train.len());
        assert_eq!(p.total_test(), s.test.len());
    }

    #[test]
    fn multi_user_balanced() {
        let s = split();
        let p = Partition::multi_user(&s, 5);
        assert_eq!(p.num_nodes(), 5);
        let sizes: Vec<usize> = p.users.iter().map(Vec::len).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max - min <= 1, "cohorts {sizes:?}");
        assert_eq!(sizes.iter().sum::<usize>(), 61);
    }

    #[test]
    fn multi_user_covers_all_data() {
        let s = split();
        let p = Partition::multi_user(&s, 7);
        assert_eq!(p.total_train(), s.train.len());
        assert_eq!(p.total_test(), s.test.len());
    }

    #[test]
    fn node_data_belongs_to_its_users() {
        let s = split();
        let p = Partition::multi_user(&s, 4);
        for (node, cohort) in p.users.iter().enumerate() {
            let cohort: std::collections::HashSet<u32> = cohort.iter().copied().collect();
            assert!(p.train[node].iter().all(|r| cohort.contains(&r.user)));
            assert!(p.test[node].iter().all(|r| cohort.contains(&r.user)));
        }
    }

    #[test]
    #[should_panic(expected = "more nodes")]
    fn rejects_more_nodes_than_users() {
        let s = split();
        let _ = Partition::multi_user(&s, 62);
    }

    #[test]
    fn paper_cohort_sizes() {
        // 610 users over 50 nodes -> 12 or 13 each, like the paper's DNN setup.
        let ds = SyntheticConfig {
            num_users: 610,
            num_items: 500,
            num_ratings: 10_000,
            seed: 2,
            ..SyntheticConfig::default()
        }
        .generate();
        let s = TrainTestSplit::standard(&ds, 0);
        let p = Partition::multi_user(&s, 50);
        assert!(p.users.iter().all(|c| c.len() == 12 || c.len() == 13));
    }
}
