//! Assignment of users to nodes (paper §IV-A5).
//!
//! Two deployment scenarios are evaluated:
//! * **one node per user** — "users initially have only their own data";
//! * **multiple users per node** — cohorts served by distributed servers
//!   ("we partitioned the ratings of the 610 users through 50 nodes",
//!   12–13 users per node for the DNN experiments).

use crate::rating::Rating;
use crate::split::TrainTestSplit;

/// A contiguous half-open block of user rows `[start, end)` hosted by one
/// node — a **user shard**. Contiguity is what makes shard-local training
/// a row-block sweep over the embedding tables (`rex-ml`'s batched path)
/// instead of a random walk, and it gives every shard a closed-form
/// `user → local row` mapping with no lookup table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UserBlock {
    /// First user row of the block (inclusive).
    pub start: u32,
    /// One past the last user row of the block (exclusive).
    pub end: u32,
}

impl UserBlock {
    /// Number of user rows in the block.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.end - self.start
    }

    /// Whether `user` falls inside the block.
    #[must_use]
    pub fn contains(&self, user: u32) -> bool {
        (self.start..self.end).contains(&user)
    }

    /// The block-local row of `user`, or `None` when outside the block.
    #[must_use]
    pub fn local_row(&self, user: u32) -> Option<u32> {
        self.contains(user).then(|| user - self.start)
    }
}

/// How a sharded deployment groups users into per-node shards
/// (`shard_strategy` in the `[sharding]` TOML section).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardStrategy {
    /// Contiguous equal row blocks: node `n` hosts users
    /// `[n·w, (n+1)·w)`. Enables the row-block batched training path.
    /// The default.
    Contiguous,
    /// Round-robin (the legacy multi-user layout): user `u` lives on node
    /// `u mod n`. Cohorts are strided, so nodes get no contiguous block
    /// and train through the per-user path.
    RoundRobin,
}

/// A mapping of users onto nodes, plus the per-node train/test data derived
/// from a [`TrainTestSplit`].
#[derive(Debug, Clone)]
pub struct Partition {
    /// `users[n]` lists the users hosted by node `n`.
    pub users: Vec<Vec<u32>>,
    /// `train[n]` holds node `n`'s initial local training ratings.
    pub train: Vec<Vec<Rating>>,
    /// `test[n]` holds node `n`'s local held-out test ratings.
    pub test: Vec<Vec<Rating>>,
}

impl Partition {
    /// One node per user: node `u` hosts exactly user `u`.
    #[must_use]
    pub fn one_user_per_node(split: &TrainTestSplit) -> Self {
        let train = split.train_by_user();
        let test = split.test_by_user();
        let users = (0..split.num_users).map(|u| vec![u]).collect();
        Partition { users, train, test }
    }

    /// Distributes all users round-robin over `num_nodes` nodes, so cohort
    /// sizes differ by at most one (the paper's 610-users/50-nodes setup
    /// yields 12 or 13 users per node).
    ///
    /// # Panics
    /// If `num_nodes` is zero or exceeds the number of users.
    #[must_use]
    pub fn multi_user(split: &TrainTestSplit, num_nodes: usize) -> Self {
        assert!(num_nodes > 0, "need at least one node");
        assert!(
            num_nodes <= split.num_users as usize,
            "more nodes ({num_nodes}) than users ({})",
            split.num_users
        );
        let mut users = vec![Vec::new(); num_nodes];
        for u in 0..split.num_users {
            users[(u as usize) % num_nodes].push(u);
        }
        let train_by_user = split.train_by_user();
        let test_by_user = split.test_by_user();
        let mut train = vec![Vec::new(); num_nodes];
        let mut test = vec![Vec::new(); num_nodes];
        for (node, cohort) in users.iter().enumerate() {
            for &u in cohort {
                train[node].extend_from_slice(&train_by_user[u as usize]);
                test[node].extend_from_slice(&test_by_user[u as usize]);
            }
        }
        Partition { users, train, test }
    }

    /// Shard-level grouping: splits the user universe into `num_nodes`
    /// **contiguous row blocks** whose widths differ by at most one
    /// (node `n` hosts `[⌊n·U/N⌋, ⌊(n+1)·U/N⌋)`), and returns the
    /// partition together with the per-node [`UserBlock`]s. With
    /// `num_nodes == num_users` every block has width 1 and the per-node
    /// data is exactly [`Partition::one_user_per_node`]'s — the
    /// determinism anchor for `users_per_node = 1` deployments.
    ///
    /// # Panics
    /// If `num_nodes` is zero or exceeds the number of users.
    #[must_use]
    pub fn user_blocks(split: &TrainTestSplit, num_nodes: usize) -> (Self, Vec<UserBlock>) {
        assert!(num_nodes > 0, "need at least one node");
        assert!(
            num_nodes <= split.num_users as usize,
            "more nodes ({num_nodes}) than users ({})",
            split.num_users
        );
        let total = split.num_users as usize;
        let blocks: Vec<UserBlock> = (0..num_nodes)
            .map(|n| UserBlock {
                start: (n * total / num_nodes) as u32,
                end: ((n + 1) * total / num_nodes) as u32,
            })
            .collect();
        let train_by_user = split.train_by_user();
        let test_by_user = split.test_by_user();
        let mut users = Vec::with_capacity(num_nodes);
        let mut train = Vec::with_capacity(num_nodes);
        let mut test = Vec::with_capacity(num_nodes);
        for block in &blocks {
            users.push((block.start..block.end).collect::<Vec<u32>>());
            let mut node_train = Vec::new();
            let mut node_test = Vec::new();
            for u in block.start..block.end {
                node_train.extend_from_slice(&train_by_user[u as usize]);
                node_test.extend_from_slice(&test_by_user[u as usize]);
            }
            train.push(node_train);
            test.push(node_test);
        }
        (Partition { users, train, test }, blocks)
    }

    /// Number of nodes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.users.len()
    }

    /// Total training ratings across nodes.
    #[must_use]
    pub fn total_train(&self) -> usize {
        self.train.iter().map(Vec::len).sum()
    }

    /// Total test ratings across nodes.
    #[must_use]
    pub fn total_test(&self) -> usize {
        self.test.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticConfig;

    fn split() -> TrainTestSplit {
        let ds = SyntheticConfig {
            num_users: 61,
            num_items: 300,
            num_ratings: 3_000,
            seed: 11,
            ..SyntheticConfig::default()
        }
        .generate();
        TrainTestSplit::standard(&ds, 3)
    }

    #[test]
    fn one_user_per_node_shape() {
        let s = split();
        let p = Partition::one_user_per_node(&s);
        assert_eq!(p.num_nodes(), 61);
        for (n, cohort) in p.users.iter().enumerate() {
            assert_eq!(cohort, &vec![n as u32]);
        }
        assert_eq!(p.total_train(), s.train.len());
        assert_eq!(p.total_test(), s.test.len());
    }

    #[test]
    fn multi_user_balanced() {
        let s = split();
        let p = Partition::multi_user(&s, 5);
        assert_eq!(p.num_nodes(), 5);
        let sizes: Vec<usize> = p.users.iter().map(Vec::len).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max - min <= 1, "cohorts {sizes:?}");
        assert_eq!(sizes.iter().sum::<usize>(), 61);
    }

    #[test]
    fn multi_user_covers_all_data() {
        let s = split();
        let p = Partition::multi_user(&s, 7);
        assert_eq!(p.total_train(), s.train.len());
        assert_eq!(p.total_test(), s.test.len());
    }

    #[test]
    fn node_data_belongs_to_its_users() {
        let s = split();
        let p = Partition::multi_user(&s, 4);
        for (node, cohort) in p.users.iter().enumerate() {
            let cohort: std::collections::HashSet<u32> = cohort.iter().copied().collect();
            assert!(p.train[node].iter().all(|r| cohort.contains(&r.user)));
            assert!(p.test[node].iter().all(|r| cohort.contains(&r.user)));
        }
    }

    #[test]
    #[should_panic(expected = "more nodes")]
    fn rejects_more_nodes_than_users() {
        let s = split();
        let _ = Partition::multi_user(&s, 62);
    }

    #[test]
    fn user_blocks_are_contiguous_and_balanced() {
        let s = split(); // 61 users
        let (p, blocks) = Partition::user_blocks(&s, 8);
        assert_eq!(p.num_nodes(), 8);
        assert_eq!(blocks.len(), 8);
        // Blocks tile [0, 61) without gaps or overlap, widths differ <= 1.
        assert_eq!(blocks[0].start, 0);
        assert_eq!(blocks.last().unwrap().end, 61);
        for w in blocks.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
        let widths: Vec<u32> = blocks.iter().map(UserBlock::width).collect();
        let (min, max) = (*widths.iter().min().unwrap(), *widths.iter().max().unwrap());
        assert!(max - min <= 1, "widths {widths:?}");
        // Every node's data belongs to its block.
        for (node, block) in blocks.iter().enumerate() {
            assert!(p.train[node].iter().all(|r| block.contains(r.user)));
            assert!(p.test[node].iter().all(|r| block.contains(r.user)));
        }
        assert_eq!(p.total_train(), s.train.len());
        assert_eq!(p.total_test(), s.test.len());
    }

    #[test]
    fn width_one_blocks_match_one_user_per_node() {
        // The users_per_node = 1 determinism anchor: a sharded partition
        // at width 1 is exactly the per-user partition.
        let s = split();
        let (sharded, blocks) = Partition::user_blocks(&s, 61);
        let legacy = Partition::one_user_per_node(&s);
        assert!(blocks.iter().all(|b| b.width() == 1));
        assert_eq!(sharded.users, legacy.users);
        assert_eq!(sharded.train, legacy.train);
        assert_eq!(sharded.test, legacy.test);
    }

    #[test]
    fn user_block_row_mapping() {
        let b = UserBlock { start: 10, end: 14 };
        assert_eq!(b.width(), 4);
        assert!(b.contains(10) && b.contains(13));
        assert!(!b.contains(9) && !b.contains(14));
        assert_eq!(b.local_row(12), Some(2));
        assert_eq!(b.local_row(14), None);
    }

    #[test]
    #[should_panic(expected = "more nodes")]
    fn user_blocks_reject_more_nodes_than_users() {
        let s = split();
        let _ = Partition::user_blocks(&s, 62);
    }

    #[test]
    fn paper_cohort_sizes() {
        // 610 users over 50 nodes -> 12 or 13 each, like the paper's DNN setup.
        let ds = SyntheticConfig {
            num_users: 610,
            num_items: 500,
            num_ratings: 10_000,
            seed: 2,
            ..SyntheticConfig::default()
        }
        .generate();
        let s = TrainTestSplit::standard(&ds, 0);
        let p = Partition::multi_user(&s, 50);
        assert!(p.users.iter().all(|c| c.len() == 12 || c.len() == 13));
    }
}
