//! Per-user train/test split (paper §IV-A3a: 70 % train, 30 % test).
//!
//! The split is per-user so that every node in both deployment scenarios
//! (one user per node, cohorts of users per node) owns both local training
//! data and a local held-out test set (`local_test_data` in Algorithm 2).

use crate::rating::{Dataset, Rating};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A dataset split into train and test rating lists.
#[derive(Debug, Clone)]
pub struct TrainTestSplit {
    /// Training ratings (all users mixed).
    pub train: Vec<Rating>,
    /// Held-out test ratings.
    pub test: Vec<Rating>,
    /// Dimensions carried over from the source dataset.
    pub num_users: u32,
    /// Number of items.
    pub num_items: u32,
}

impl TrainTestSplit {
    /// Splits `dataset` per user with the given train fraction.
    ///
    /// Users with a single rating keep it in the training set (a node must
    /// always be able to train). Deterministic for a given `seed`.
    ///
    /// # Panics
    /// If `train_fraction` is outside `(0, 1]`.
    #[must_use]
    pub fn new(dataset: &Dataset, train_fraction: f64, seed: u64) -> Self {
        assert!(
            train_fraction > 0.0 && train_fraction <= 1.0,
            "train fraction {train_fraction} outside (0, 1]"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut train = Vec::new();
        let mut test = Vec::new();
        for mut user_ratings in dataset.by_user() {
            user_ratings.shuffle(&mut rng);
            let n = user_ratings.len();
            let n_train = ((n as f64) * train_fraction).round() as usize;
            let n_train = n_train.clamp(usize::from(n > 0), n);
            for (i, r) in user_ratings.into_iter().enumerate() {
                if i < n_train {
                    train.push(r);
                } else {
                    test.push(r);
                }
            }
        }
        TrainTestSplit {
            train,
            test,
            num_users: dataset.num_users,
            num_items: dataset.num_items,
        }
    }

    /// The paper's 70/30 split.
    #[must_use]
    pub fn standard(dataset: &Dataset, seed: u64) -> Self {
        Self::new(dataset, 0.7, seed)
    }

    /// Training ratings grouped by user.
    #[must_use]
    pub fn train_by_user(&self) -> Vec<Vec<Rating>> {
        group_by_user(&self.train, self.num_users)
    }

    /// Test ratings grouped by user.
    #[must_use]
    pub fn test_by_user(&self) -> Vec<Vec<Rating>> {
        group_by_user(&self.test, self.num_users)
    }
}

fn group_by_user(ratings: &[Rating], num_users: u32) -> Vec<Vec<Rating>> {
    let mut out = vec![Vec::new(); num_users as usize];
    for r in ratings {
        out[r.user as usize].push(*r);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticConfig;

    fn dataset() -> Dataset {
        SyntheticConfig {
            num_users: 40,
            num_items: 150,
            num_ratings: 1_500,
            seed: 5,
            ..SyntheticConfig::default()
        }
        .generate()
    }

    #[test]
    fn preserves_all_ratings() {
        let ds = dataset();
        let split = TrainTestSplit::standard(&ds, 1);
        assert_eq!(split.train.len() + split.test.len(), ds.ratings.len());
    }

    #[test]
    fn fraction_close_to_requested() {
        let ds = dataset();
        let split = TrainTestSplit::standard(&ds, 1);
        let frac = split.train.len() as f64 / ds.ratings.len() as f64;
        assert!((frac - 0.7).abs() < 0.05, "train fraction {frac}");
    }

    #[test]
    fn per_user_split() {
        let ds = dataset();
        let split = TrainTestSplit::standard(&ds, 1);
        let train_by_user = split.train_by_user();
        // Every user keeps training data.
        assert!(train_by_user.iter().all(|v| !v.is_empty()));
        // Users with several ratings also get test data (most of them).
        let test_by_user = split.test_by_user();
        let with_test = test_by_user.iter().filter(|v| !v.is_empty()).count();
        assert!(with_test as f64 > 0.8 * f64::from(ds.num_users));
    }

    #[test]
    fn no_overlap_between_train_and_test() {
        let ds = dataset();
        let split = TrainTestSplit::standard(&ds, 1);
        let train_keys: std::collections::HashSet<_> =
            split.train.iter().map(Rating::key).collect();
        assert!(split.test.iter().all(|r| !train_keys.contains(&r.key())));
    }

    #[test]
    fn deterministic() {
        let ds = dataset();
        let a = TrainTestSplit::standard(&ds, 9);
        let b = TrainTestSplit::standard(&ds, 9);
        assert_eq!(a.train.len(), b.train.len());
        assert!(a.train.iter().zip(&b.train).all(|(x, y)| x == y));
    }

    #[test]
    fn full_train_fraction() {
        let ds = dataset();
        let split = TrainTestSplit::new(&ds, 1.0, 0);
        assert!(split.test.is_empty());
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rejects_zero_fraction() {
        let ds = dataset();
        let _ = TrainTestSplit::new(&ds, 0.0, 0);
    }
}
