//! Synthetic MovieLens-like dataset generator.
//!
//! Ground truth is a biased low-rank model: each user and item gets latent
//! factors and a bias; ratings are `μ + b_u + c_i + p_u·q_i + noise` snapped
//! to the half-star grid. Item choice follows a Zipf popularity law and user
//! activity a log-normal, matching the qualitative shape of the MovieLens
//! interaction distribution. See DESIGN.md §2 for why this preserves the
//! paper's conclusions.

use crate::dist::{log_normal, normal, Zipf};
use crate::rating::{snap_to_grid, Dataset, Rating};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Parameters of the generator.
#[derive(Debug, Clone)]
pub struct SyntheticConfig {
    /// Number of users.
    pub num_users: u32,
    /// Number of items.
    pub num_items: u32,
    /// Target number of ratings (achieved exactly unless the matrix is too
    /// small to hold that many distinct cells).
    pub num_ratings: usize,
    /// Rank of the ground-truth latent model.
    pub true_rank: usize,
    /// Global mean rating.
    pub global_mean: f64,
    /// Std of user/item biases.
    pub bias_std: f64,
    /// Std of observation noise before grid snapping.
    pub noise_std: f64,
    /// Zipf exponent of item popularity.
    pub popularity_exponent: f64,
    /// Sigma of the log-normal user-activity distribution.
    pub activity_sigma: f64,
    /// RNG seed; identical configs generate identical datasets.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            num_users: 610,
            num_items: 9_000,
            num_ratings: 100_000,
            true_rank: 8,
            global_mean: 3.5,
            bias_std: 0.35,
            noise_std: 0.35,
            popularity_exponent: 0.9,
            activity_sigma: 0.9,
            seed: 0x5EED,
        }
    }
}

impl SyntheticConfig {
    /// Generates the dataset.
    ///
    /// # Panics
    /// If the requested rating count exceeds the number of matrix cells.
    #[must_use]
    pub fn generate(&self) -> Dataset {
        let cells = u64::from(self.num_users) * u64::from(self.num_items);
        assert!(
            (self.num_ratings as u64) <= cells,
            "cannot place {} ratings in a {}x{} matrix",
            self.num_ratings,
            self.num_users,
            self.num_items
        );
        let mut rng = StdRng::seed_from_u64(self.seed);

        // Ground-truth latent model.
        let factor_std = 1.0 / (self.true_rank as f64).sqrt();
        let user_factors: Vec<Vec<f64>> = (0..self.num_users)
            .map(|_| {
                (0..self.true_rank)
                    .map(|_| normal(&mut rng, 0.0, factor_std))
                    .collect()
            })
            .collect();
        let item_factors: Vec<Vec<f64>> = (0..self.num_items)
            .map(|_| {
                (0..self.true_rank)
                    .map(|_| normal(&mut rng, 0.0, factor_std))
                    .collect()
            })
            .collect();
        let user_bias: Vec<f64> = (0..self.num_users)
            .map(|_| normal(&mut rng, 0.0, self.bias_std))
            .collect();
        let item_bias: Vec<f64> = (0..self.num_items)
            .map(|_| normal(&mut rng, 0.0, self.bias_std))
            .collect();

        // User activity: log-normal weights normalized to the target count,
        // with every user guaranteed at least one rating.
        let weights: Vec<f64> = (0..self.num_users)
            .map(|_| log_normal(&mut rng, 0.0, self.activity_sigma))
            .collect();
        let total_weight: f64 = weights.iter().sum();
        let mut per_user: Vec<usize> = weights
            .iter()
            .map(|w| ((w / total_weight) * self.num_ratings as f64).round() as usize)
            .map(|n| n.max(1).min(self.num_items as usize))
            .collect();
        // Adjust the total to match the target exactly.
        loop {
            let total: usize = per_user.iter().sum();
            match total.cmp(&self.num_ratings) {
                std::cmp::Ordering::Equal => break,
                std::cmp::Ordering::Less => {
                    let idx = rng.gen_range(0..per_user.len());
                    if per_user[idx] < self.num_items as usize {
                        per_user[idx] += 1;
                    }
                }
                std::cmp::Ordering::Greater => {
                    let idx = rng.gen_range(0..per_user.len());
                    if per_user[idx] > 1 {
                        per_user[idx] -= 1;
                    }
                }
            }
        }

        let popularity = Zipf::new(self.num_items as usize, self.popularity_exponent);
        let mut ratings = Vec::with_capacity(self.num_ratings);
        let mut seen: HashSet<(u32, u32)> = HashSet::with_capacity(self.num_ratings);

        for user in 0..self.num_users {
            let want = per_user[user as usize];
            let mut have = 0;
            let mut attempts = 0usize;
            while have < want {
                // Rejection-sample distinct items; fall back to a linear scan
                // if the popularity law keeps colliding (very active users).
                let item = if attempts < want * 30 {
                    popularity.sample(&mut rng) as u32
                } else {
                    rng.gen_range(0..self.num_items)
                };
                attempts += 1;
                if !seen.insert((user, item)) {
                    continue;
                }
                let dot: f64 = user_factors[user as usize]
                    .iter()
                    .zip(&item_factors[item as usize])
                    .map(|(a, b)| a * b)
                    .sum();
                let raw = self.global_mean
                    + user_bias[user as usize]
                    + item_bias[item as usize]
                    + dot
                    + normal(&mut rng, 0.0, self.noise_std);
                ratings.push(Rating {
                    user,
                    item,
                    value: snap_to_grid(raw as f32),
                });
                have += 1;
            }
        }

        Dataset::new(self.num_users, self.num_items, ratings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> SyntheticConfig {
        SyntheticConfig {
            num_users: 50,
            num_items: 200,
            num_ratings: 2_000,
            seed: 123,
            ..SyntheticConfig::default()
        }
    }

    #[test]
    fn exact_rating_count() {
        let ds = small_config().generate();
        assert_eq!(ds.ratings.len(), 2_000);
        assert_eq!(ds.num_users, 50);
        assert_eq!(ds.num_items, 200);
    }

    #[test]
    fn deterministic_for_seed() {
        let a = small_config().generate();
        let b = small_config().generate();
        assert_eq!(a.ratings.len(), b.ratings.len());
        for (x, y) in a.ratings.iter().zip(&b.ratings) {
            assert_eq!(x, y);
        }
        let c = SyntheticConfig {
            seed: 124,
            ..small_config()
        }
        .generate();
        assert!(a.ratings.iter().zip(&c.ratings).any(|(x, y)| x != y));
    }

    #[test]
    fn no_duplicate_cells() {
        let ds = small_config().generate();
        let mut seen = HashSet::new();
        for r in &ds.ratings {
            assert!(seen.insert(r.key()), "duplicate cell {:?}", r.key());
        }
    }

    #[test]
    fn every_user_has_data() {
        let ds = small_config().generate();
        let by_user = ds.by_user();
        assert!(by_user.iter().all(|v| !v.is_empty()));
    }

    #[test]
    fn ratings_on_grid_and_in_range() {
        let ds = small_config().generate();
        for r in &ds.ratings {
            assert!(r.value >= 0.5 && r.value <= 5.0);
            let doubled = r.value * 2.0;
            assert!(
                (doubled - doubled.round()).abs() < 1e-6,
                "off grid: {}",
                r.value
            );
        }
    }

    #[test]
    fn popularity_is_skewed() {
        let ds = small_config().generate();
        let mut counts = vec![0u32; ds.num_items as usize];
        for r in &ds.ratings {
            counts[r.item as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let nonzero = counts.iter().filter(|&&c| c > 0).count();
        let mean_nonzero = ds.ratings.len() as f64 / nonzero as f64;
        assert!(
            f64::from(max) > 3.0 * mean_nonzero,
            "max {max} mean {mean_nonzero}"
        );
    }

    #[test]
    fn mean_near_global_mean() {
        let ds = small_config().generate();
        assert!((ds.mean_rating() - 3.5).abs() < 0.3, "{}", ds.mean_rating());
    }

    #[test]
    #[should_panic(expected = "cannot place")]
    fn rejects_overfull_matrix() {
        let _ = SyntheticConfig {
            num_users: 2,
            num_items: 2,
            num_ratings: 5,
            ..SyntheticConfig::default()
        }
        .generate();
    }
}
