//! Rating-dataset substrate for the REX reproduction.
//!
//! The paper evaluates on MovieLens Latest (100 k ratings, 610 users, 9 k
//! items) and a 15 000-user cap of MovieLens 25M (Table I). Real MovieLens
//! files are not redistributable with this repository, so [`synthetic`]
//! provides a generator that reproduces the *shape* that matters for every
//! reported metric: matrix dimensions, sparsity pattern (Zipf item
//! popularity, heavy-tailed user activity), the 0.5–5.0 half-star rating
//! grid, and learnable low-rank structure. [`loader`] can ingest the real
//! `ratings.csv` when available; everything downstream is agnostic.
//!
//! Downstream crates consume three things:
//! * [`Dataset`] — the global rating table,
//! * [`split::TrainTestSplit`] — per-user 70/30 split (paper §IV-A3),
//! * [`partition`] — assignment of users to nodes (one-user-per-node or
//!   multi-user cohorts, paper §IV-A5).

pub mod dist;
pub mod loader;
pub mod partition;
pub mod presets;
pub mod rating;
pub mod split;
pub mod synthetic;

pub use partition::{Partition, ShardStrategy, UserBlock};
pub use presets::DatasetSpec;
pub use rating::{Dataset, Rating};
pub use split::TrainTestSplit;
pub use synthetic::SyntheticConfig;
