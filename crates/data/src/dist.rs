//! Small sampling distributions used by the synthetic generator.
//!
//! Implemented locally (Box–Muller, inverse-CDF Zipf) to keep the dependency
//! footprint at `rand` alone.

use rand::Rng;

/// Samples a standard normal via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0).
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Samples N(mean, std^2).
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std: f64) -> f64 {
    mean + std * standard_normal(rng)
}

/// Samples a log-normal with the given underlying normal parameters.
pub fn log_normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Discrete sampler over `0..n` with Zipf-like weights `1/(rank+1)^s`,
/// used for item popularity (a handful of blockbusters, a long tail).
///
/// Sampling is O(log n) by binary search over the cumulative weights.
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for `n` ranks with exponent `s`.
    ///
    /// # Panics
    /// If `n == 0` or `s` is not finite.
    #[must_use]
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf over empty support");
        assert!(s.is_finite(), "Zipf exponent must be finite");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 0..n {
            total += 1.0 / ((rank + 1) as f64).powf(s);
            cumulative.push(total);
        }
        Zipf { cumulative }
    }

    /// Draws one rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let x = rng.gen_range(0.0..total);
        self.cumulative.partition_point(|&c| c <= x)
    }

    /// Support size.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the support is empty (never true by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 2.0, 3.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
        assert!((var - 9.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn log_normal_positive() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(log_normal(&mut rng, 0.0, 1.5) > 0.0);
        }
    }

    #[test]
    fn zipf_front_loaded() {
        let mut rng = StdRng::seed_from_u64(7);
        let zipf = Zipf::new(1000, 1.0);
        let mut counts = vec![0u32; 1000];
        for _ in 0..50_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        // Rank 0 must dominate rank 99 by roughly the weight ratio (100x),
        // allow wide tolerance.
        assert!(
            counts[0] > counts[99] * 20,
            "{} vs {}",
            counts[0],
            counts[99]
        );
        // Every sample in range (no panic), and the tail is still reachable.
        assert!(counts[500..].iter().any(|&c| c > 0));
    }

    #[test]
    fn zipf_uniform_when_s_zero() {
        let mut rng = StdRng::seed_from_u64(9);
        let zipf = Zipf::new(10, 0.0);
        let mut counts = vec![0u32; 10];
        for _ in 0..100_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((f64::from(c) / 10_000.0 - 1.0).abs() < 0.1);
        }
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn zipf_rejects_empty() {
        let _ = Zipf::new(0, 1.0);
    }
}
