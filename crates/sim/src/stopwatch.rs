//! Wall-clock measurement of real compute.
//!
//! Simulated epoch time = measured compute (this stopwatch) + modelled
//! network transfer + modelled SGX charges.

use std::time::Instant;

/// A simple stopwatch around [`Instant`].
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}

impl Stopwatch {
    /// Starts timing.
    #[must_use]
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Nanoseconds since start.
    #[must_use]
    pub fn elapsed_ns(&self) -> u64 {
        self.start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
    }

    /// Restarts and returns the elapsed ns of the finished lap.
    pub fn lap(&mut self) -> u64 {
        let ns = self.elapsed_ns();
        self.start = Instant::now();
        ns
    }
}

/// Times a closure, returning `(result, elapsed_ns)`.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, u64) {
    let sw = Stopwatch::start();
    let r = f();
    (r, sw.elapsed_ns())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let (sum, ns) = time(|| (0..100_000u64).sum::<u64>());
        assert_eq!(sum, 4_999_950_000);
        assert!(ns > 0);
    }

    #[test]
    fn lap_resets() {
        let mut sw = Stopwatch::start();
        std::hint::black_box((0..10_000u64).sum::<u64>());
        let first = sw.lap();
        let second = sw.elapsed_ns();
        assert!(first > 0);
        // The second reading starts fresh and should be far below the sum
        // of both laps.
        assert!(second < first + 1_000_000_000);
    }
}
