//! Report emission: CSV series for figures, markdown tables matching the
//! paper's Tables II–IV.

use crate::stage::{StageTimes, STAGES};
use crate::trace::{speedup_to_target, ExperimentTrace};
use std::fmt::Write as _;

/// Serializes traces as CSV: one row per (trace, epoch) with every recorded
/// column — the raw material for regenerating any figure.
#[must_use]
pub fn traces_to_csv(traces: &[&ExperimentTrace]) -> String {
    let mut out = String::from(
        "series,epoch,time_s,rmse,bytes_per_node,ram_mib,sgx_overhead_ms,merge_ms,train_ms,share_ms,test_ms,live_nodes,delivered,dropped,late,duplicated\n",
    );
    for t in traces {
        for r in &t.records {
            let st = r.stage_times;
            let _ = writeln!(
                out,
                "{},{},{:.6},{:.6},{:.1},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3},{},{},{},{},{}",
                t.name,
                r.epoch,
                r.time_ns as f64 / 1e9,
                r.rmse,
                r.bytes_per_node,
                r.ram_bytes / (1024.0 * 1024.0),
                r.sgx_overhead_ns as f64 / 1e6,
                st.get(crate::stage::Stage::Merge) as f64 / 1e6,
                st.get(crate::stage::Stage::Train) as f64 / 1e6,
                st.get(crate::stage::Stage::Share) as f64 / 1e6,
                st.get(crate::stage::Stage::Test) as f64 / 1e6,
                r.live_nodes,
                r.delivery.delivered,
                r.delivery.dropped,
                r.delivery.late,
                r.delivery.duplicated,
            );
        }
    }
    out
}

/// One row of a speedup table (paper Tables II/III).
#[derive(Debug, Clone)]
pub struct SpeedupRow {
    /// Setup label, e.g. "D-PSGD, ER".
    pub setup: String,
    /// Target error (the MS run's final RMSE).
    pub error_target: f64,
    /// REX time to target, seconds.
    pub rex_secs: f64,
    /// MS time to target, seconds.
    pub ms_secs: f64,
    /// Ratio.
    pub speedup: f64,
}

/// Builds a speedup row from a (REX, MS) trace pair. The paper uses the MS
/// run's final error as the target ("an error target (chosen as the final
/// value achieved by MS scheme)"); when the two plateaus differ slightly we
/// take the highest final error *both* schemes achieved, so the row always
/// compares times to a commonly reached quality (robust variant of the same
/// methodology; see EXPERIMENTS.md).
#[must_use]
pub fn speedup_row(setup: &str, rex: &ExperimentTrace, ms: &ExperimentTrace) -> Option<SpeedupRow> {
    let target = ms.final_rmse()?.max(rex.final_rmse()?) + 1e-9;
    let rex_secs = rex.time_to_target_secs(target)?;
    let ms_secs = ms.time_to_target_secs(target)?;
    Some(SpeedupRow {
        setup: setup.to_string(),
        error_target: target,
        rex_secs,
        ms_secs,
        speedup: speedup_to_target(rex, ms, target)?,
    })
}

/// Renders speedup rows as a markdown table in the paper's column order.
#[must_use]
pub fn speedup_table_markdown(rows: &[SpeedupRow], unit: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "| Setup | Error target | REX [{unit}] | MS [{unit}] | REX speed-up |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|");
    let scale = if unit == "min" { 60.0 } else { 1.0 };
    for r in rows {
        let _ = writeln!(
            out,
            "| {} | {:.2} | {:.1} | {:.1} | {:.1}x |",
            r.setup,
            r.error_target,
            r.rex_secs / scale,
            r.ms_secs / scale,
            r.speedup
        );
    }
    out
}

/// Renders a stage-time breakdown (Figs 5a, 6a, 7a) as markdown.
#[must_use]
pub fn stage_breakdown_markdown(rows: &[(String, StageTimes)]) -> String {
    let mut out = String::from(
        "| Config | merge | train | share | test | total |\n|---|---|---|---|---|---|\n",
    );
    for (name, st) in rows {
        let _ = write!(out, "| {name} |");
        for stage in STAGES {
            let _ = write!(out, " {:.2} ms |", st.get(stage) as f64 / 1e6);
        }
        let _ = writeln!(out, " {:.2} ms |", st.total() as f64 / 1e6);
    }
    out
}

/// Renders an SGX-overhead table (paper Table IV).
#[must_use]
pub fn overhead_table_markdown(rows: &[(String, f64, f64)]) -> String {
    let mut out = String::from("| Setup | RAM [MiB] | Overhead [%] |\n|---|---|---|\n");
    for (setup, ram_mib, overhead_pct) in rows {
        let _ = writeln!(out, "| {setup} | {ram_mib:.1} | {overhead_pct:.0} |");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::Stage;
    use crate::trace::EpochRecord;

    fn trace(name: &str, points: &[(usize, f64, f64)]) -> ExperimentTrace {
        let mut t = ExperimentTrace::new(name);
        for &(e, s, r) in points {
            t.push(EpochRecord {
                epoch: e,
                time_ns: (s * 1e9) as u64,
                rmse: r,
                bytes_per_node: 10.0,
                stage_times: StageTimes::new(),
                ram_bytes: 0.0,
                sgx_overhead_ns: 0,
                live_nodes: 4,
                delivery: rex_net::stats::DeliveryStats::default(),
                commitment_root: [0; 32],
            });
        }
        t
    }

    #[test]
    fn csv_shape() {
        let t = trace("REX, RMW, SW", &[(0, 1.0, 1.5), (1, 2.0, 1.2)]);
        let csv = traces_to_csv(&[&t]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("series,epoch"));
        assert!(lines[1].starts_with("REX, RMW, SW,0,"));
        assert_eq!(lines[1].split(',').count(), lines[0].split(',').count() + 2);
        // name contains commas
    }

    #[test]
    fn speedup_row_uses_ms_final_error() {
        let rex = trace("rex", &[(0, 2.0, 1.3), (1, 10.0, 1.0)]);
        let ms = trace("ms", &[(0, 50.0, 1.4), (1, 100.0, 1.0)]);
        let row = speedup_row("D-PSGD, ER", &rex, &ms).unwrap();
        assert!((row.error_target - 1.0).abs() < 1e-6);
        assert!((row.speedup - 10.0).abs() < 1e-6);
        let md = speedup_table_markdown(&[row], "s");
        assert!(md.contains("10.0x"));
    }

    #[test]
    fn speedup_uses_common_achievable_target() {
        // REX plateaus at 1.5, MS at 1.0: target becomes 1.5, reached by
        // REX at t=1 and by MS at t=2.
        let rex = trace("rex", &[(0, 1.0, 1.5)]);
        let ms = trace("ms", &[(0, 2.0, 1.5), (1, 4.0, 1.0)]);
        let row = speedup_row("x", &rex, &ms).unwrap();
        assert!((row.speedup - 2.0).abs() < 1e-9);
    }

    #[test]
    fn speedup_none_for_empty_traces() {
        let rex = trace("rex", &[]);
        let ms = trace("ms", &[(0, 2.0, 1.0)]);
        assert!(speedup_row("x", &rex, &ms).is_none());
    }

    #[test]
    fn stage_breakdown_renders() {
        let mut st = StageTimes::new();
        st.add(Stage::Merge, 2_000_000);
        st.add(Stage::Train, 8_000_000);
        let md = stage_breakdown_markdown(&[("REX".into(), st)]);
        assert!(md.contains("| REX | 2.00 ms | 8.00 ms | 0.00 ms | 0.00 ms | 10.00 ms |"));
    }

    #[test]
    fn overhead_table_renders() {
        let md = overhead_table_markdown(&[("RMW, REX".into(), 11.5, 14.0)]);
        assert!(md.contains("| RMW, REX | 11.5 | 14 |"));
    }
}
