//! Virtual time.

/// A monotonically advancing virtual clock, in nanoseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct VirtualClock {
    now_ns: u64,
}

impl VirtualClock {
    /// Clock at t = 0.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time, ns.
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }

    /// Current virtual time, seconds.
    #[must_use]
    pub fn now_secs(&self) -> f64 {
        self.now_ns as f64 / 1e9
    }

    /// Advances by `delta_ns`.
    pub fn advance(&mut self, delta_ns: u64) {
        self.now_ns = self
            .now_ns
            .checked_add(delta_ns)
            .expect("virtual clock overflow");
    }

    /// Jumps forward to `t_ns` (no-op if already past it).
    pub fn advance_to(&mut self, t_ns: u64) {
        self.now_ns = self.now_ns.max(t_ns);
    }
}

/// The simulated arm of the engine's time hook: time moves only through
/// modelled charges (compute, network, SGX), never by itself.
impl rex_net::transport::Clock for VirtualClock {
    fn now_ns(&self) -> u64 {
        VirtualClock::now_ns(self)
    }

    fn advance(&mut self, delta_ns: u64) {
        VirtualClock::advance(self, delta_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_monotonically() {
        let mut c = VirtualClock::new();
        c.advance(10);
        c.advance(5);
        assert_eq!(c.now_ns(), 15);
        c.advance_to(12); // already past: no-op
        assert_eq!(c.now_ns(), 15);
        c.advance_to(20);
        assert_eq!(c.now_ns(), 20);
        assert!((c.now_secs() - 2e-8).abs() < 1e-20);
    }
}
