//! Experiment traces: one record per epoch, plus the derived metrics the
//! paper reports (time-to-target-error → Tables II/III; series → figures).

use crate::stage::StageTimes;
use rex_net::stats::DeliveryStats;

/// Aggregated measurements of one epoch across all nodes.
///
/// Per-node metrics (`rmse`, `bytes_per_node`, `stage_times`,
/// `ram_bytes`, `sgx_overhead_ns`) are means over the epoch's **live**
/// nodes; `live_nodes` records how many that was (crash-stop nodes sit
/// out their down epochs), and `delivery` carries the fabric's
/// delivered/dropped/late/duplicated message counts for the epoch
/// (all-zero on fault-free transports).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochRecord {
    /// Epoch index (0 = training on initial local data only).
    pub epoch: usize,
    /// Virtual time at the *end* of this epoch, ns.
    pub time_ns: u64,
    /// Live-nodes-mean RMSE on local test sets (the paper's y-axis).
    pub rmse: f64,
    /// Mean per-node data in+out during this epoch, bytes.
    pub bytes_per_node: f64,
    /// Mean per-node stage times during this epoch.
    pub stage_times: StageTimes,
    /// Mean per-node resident memory, bytes.
    pub ram_bytes: f64,
    /// Mean per-node SGX overhead charged this epoch, ns (0 native).
    pub sgx_overhead_ns: u64,
    /// Nodes that ran this epoch (crashed nodes excluded).
    pub live_nodes: usize,
    /// Fleet-wide message delivery accounting for this epoch.
    pub delivery: DeliveryStats,
    /// SHA-256 aggregate over the live nodes' signed per-epoch model
    /// commitments, in node order — one checkable artifact per epoch
    /// (the verifiable-epochs audit root; all-zero when no node
    /// reported, e.g. a fully idle epoch).
    pub commitment_root: [u8; 32],
}

/// A named series of epoch records.
#[derive(Debug, Clone, Default)]
pub struct ExperimentTrace {
    /// Label, e.g. "REX, D-PSGD, SW".
    pub name: String,
    /// Per-epoch records in epoch order.
    pub records: Vec<EpochRecord>,
}

impl ExperimentTrace {
    /// Creates an empty named trace.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        ExperimentTrace {
            name: name.into(),
            records: Vec::new(),
        }
    }

    /// Appends a record.
    ///
    /// # Panics
    /// If epochs are appended out of order.
    pub fn push(&mut self, record: EpochRecord) {
        if let Some(last) = self.records.last() {
            assert!(record.epoch > last.epoch, "records must be in epoch order");
            assert!(
                record.time_ns >= last.time_ns,
                "virtual time went backwards"
            );
        }
        self.records.push(record);
    }

    /// Final RMSE of the run.
    #[must_use]
    pub fn final_rmse(&self) -> Option<f64> {
        self.records.last().map(|r| r.rmse)
    }

    /// First virtual time (seconds) at which the RMSE reaches `target`
    /// (Tables II/III pick the model-sharing run's final error as target).
    #[must_use]
    pub fn time_to_target_secs(&self, target: f64) -> Option<f64> {
        self.records
            .iter()
            .find(|r| r.rmse <= target)
            .map(|r| r.time_ns as f64 / 1e9)
    }

    /// First epoch at which the RMSE reaches `target`.
    #[must_use]
    pub fn epochs_to_target(&self, target: f64) -> Option<usize> {
        self.records
            .iter()
            .find(|r| r.rmse <= target)
            .map(|r| r.epoch)
    }

    /// Total bytes per node over the run.
    #[must_use]
    pub fn total_bytes_per_node(&self) -> f64 {
        self.records.iter().map(|r| r.bytes_per_node).sum()
    }

    /// Mean per-epoch stage times over the run.
    #[must_use]
    pub fn mean_stage_times(&self) -> StageTimes {
        let sum = self
            .records
            .iter()
            .fold(StageTimes::new(), |acc, r| acc.plus(&r.stage_times));
        sum.mean_over(self.records.len() as u64)
    }

    /// Peak mean RAM across epochs, bytes.
    #[must_use]
    pub fn peak_ram_bytes(&self) -> f64 {
        self.records.iter().map(|r| r.ram_bytes).fold(0.0, f64::max)
    }

    /// Total fleet-wide message-delivery accounting over the run (sums
    /// the per-epoch [`DeliveryStats`]; all-zero for fault-free runs).
    #[must_use]
    pub fn total_delivery(&self) -> DeliveryStats {
        let mut total = DeliveryStats::default();
        for r in &self.records {
            total.absorb(&r.delivery);
        }
        total
    }

    /// Smallest per-epoch live-node count of the run (equals the fleet
    /// size unless churn took nodes down).
    #[must_use]
    pub fn min_live_nodes(&self) -> usize {
        self.records.iter().map(|r| r.live_nodes).min().unwrap_or(0)
    }

    /// Total virtual duration, seconds.
    #[must_use]
    pub fn duration_secs(&self) -> f64 {
        self.records.last().map_or(0.0, |r| r.time_ns as f64 / 1e9)
    }

    /// Mean per-epoch SGX overhead fraction relative to total epoch time
    /// (Table IV's "Overh. %" compares SGX vs native mean epoch times; this
    /// helper reports the charged-overhead share for diagnostics).
    #[must_use]
    pub fn mean_sgx_overhead_ns(&self) -> u64 {
        if self.records.is_empty() {
            return 0;
        }
        self.records.iter().map(|r| r.sgx_overhead_ns).sum::<u64>() / self.records.len() as u64
    }
}

/// Speedup of `fast` over `slow` reaching `target` RMSE (paper Tables
/// II/III: "REX speed-up"). `None` if either never reaches it.
#[must_use]
pub fn speedup_to_target(
    fast: &ExperimentTrace,
    slow: &ExperimentTrace,
    target: f64,
) -> Option<f64> {
    let tf = fast.time_to_target_secs(target)?;
    let ts = slow.time_to_target_secs(target)?;
    if tf <= 0.0 {
        return None;
    }
    Some(ts / tf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(epoch: usize, time_s: f64, rmse: f64) -> EpochRecord {
        EpochRecord {
            epoch,
            time_ns: (time_s * 1e9) as u64,
            rmse,
            bytes_per_node: 100.0,
            stage_times: StageTimes::new(),
            ram_bytes: 1e6,
            sgx_overhead_ns: 0,
            live_nodes: 8,
            delivery: DeliveryStats::default(),
            commitment_root: [0; 32],
        }
    }

    fn trace(name: &str, points: &[(usize, f64, f64)]) -> ExperimentTrace {
        let mut t = ExperimentTrace::new(name);
        for &(e, s, r) in points {
            t.push(record(e, s, r));
        }
        t
    }

    #[test]
    fn time_to_target() {
        let t = trace(
            "x",
            &[(0, 1.0, 1.5), (1, 2.0, 1.2), (2, 3.0, 1.0), (3, 4.0, 0.9)],
        );
        assert_eq!(t.time_to_target_secs(1.2), Some(2.0));
        assert_eq!(t.time_to_target_secs(0.95), Some(4.0));
        assert_eq!(t.time_to_target_secs(0.5), None);
        assert_eq!(t.epochs_to_target(1.0), Some(2));
        assert_eq!(t.final_rmse(), Some(0.9));
    }

    #[test]
    fn speedup_table_math() {
        // REX reaches 1.04 at 16.3 s; MS at 297.5 s -> 18.3x (Table II row 1).
        let rex = trace("REX", &[(0, 16.3, 1.04)]);
        let ms = trace("MS", &[(0, 297.5, 1.04)]);
        let s = speedup_to_target(&rex, &ms, 1.04).unwrap();
        assert!((s - 18.25).abs() < 0.05, "{s}");
    }

    #[test]
    fn totals_and_peaks() {
        let t = trace("x", &[(0, 1.0, 1.5), (1, 2.0, 1.4)]);
        assert_eq!(t.total_bytes_per_node(), 200.0);
        assert_eq!(t.peak_ram_bytes(), 1e6);
        assert_eq!(t.duration_secs(), 2.0);
    }

    #[test]
    fn delivery_and_liveness_aggregate() {
        let mut t = ExperimentTrace::new("churn");
        let mut a = record(0, 1.0, 1.5);
        a.delivery = DeliveryStats {
            delivered: 10,
            dropped: 2,
            late: 1,
            duplicated: 0,
        };
        let mut b = record(1, 2.0, 1.4);
        b.live_nodes = 6;
        b.delivery = DeliveryStats {
            delivered: 7,
            dropped: 5,
            late: 0,
            duplicated: 1,
        };
        t.push(a);
        t.push(b);
        let total = t.total_delivery();
        assert_eq!(
            (total.delivered, total.dropped, total.late, total.duplicated),
            (17, 7, 1, 1)
        );
        assert_eq!(t.min_live_nodes(), 6);
        assert_eq!(ExperimentTrace::new("empty").min_live_nodes(), 0);
    }

    #[test]
    #[should_panic(expected = "epoch order")]
    fn rejects_out_of_order() {
        let mut t = ExperimentTrace::new("bad");
        t.push(record(1, 1.0, 1.0));
        t.push(record(0, 2.0, 1.0));
    }
}
