//! Deterministic discrete-event queue.
//!
//! Ties on the timestamp break by insertion order, which keeps simulations
//! reproducible for a fixed seed regardless of heap internals.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    at_ns: u64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at_ns == other.at_ns && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap on (time, seq).
        (other.at_ns, other.seq).cmp(&(self.at_ns, self.seq))
    }
}

/// A min-heap of timestamped events.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }
}

impl<E> EventQueue<E> {
    /// Empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at absolute time `at_ns`.
    pub fn schedule(&mut self, at_ns: u64, event: E) {
        self.heap.push(Entry {
            at_ns,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Pops the earliest event as `(time, event)`.
    pub fn pop(&mut self) -> Option<(u64, E)> {
        self.heap.pop().map(|e| (e.at_ns, e.event))
    }

    /// Timestamp of the earliest pending event.
    #[must_use]
    pub fn peek_time(&self) -> Option<u64> {
        self.heap.peek().map(|e| e.at_ns)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, "c");
        q.schedule(10, "a");
        q.schedule(20, "b");
        assert_eq!(q.peek_time(), Some(10));
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(5, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((5, i)));
        }
    }

    #[test]
    fn len_tracks() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(1, ());
        q.schedule(2, ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }
}
