//! The four protocol stages of paper Algorithm 2 and their time accounting.

/// One stage of the merge→train→share→test pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Merging received models / appending received raw data.
    Merge,
    /// Local SGD/Adam steps.
    Train,
    /// Sampling + serializing + sending.
    Share,
    /// Evaluating the local test set.
    Test,
}

/// All stages in pipeline order.
pub const STAGES: [Stage; 4] = [Stage::Merge, Stage::Train, Stage::Share, Stage::Test];

impl Stage {
    /// Human-readable label used in bench output.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Stage::Merge => "merge",
            Stage::Train => "train",
            Stage::Share => "share",
            Stage::Test => "test",
        }
    }

    fn index(self) -> usize {
        match self {
            Stage::Merge => 0,
            Stage::Train => 1,
            Stage::Share => 2,
            Stage::Test => 3,
        }
    }
}

/// Per-stage durations (ns) of one epoch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimes {
    ns: [u64; 4],
}

impl StageTimes {
    /// All-zero times.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `ns` to `stage`.
    pub fn add(&mut self, stage: Stage, ns: u64) {
        self.ns[stage.index()] += ns;
    }

    /// Duration of one stage.
    #[must_use]
    pub fn get(&self, stage: Stage) -> u64 {
        self.ns[stage.index()]
    }

    /// Total epoch duration.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.ns.iter().sum()
    }

    /// Element-wise sum.
    #[must_use]
    pub fn plus(&self, other: &StageTimes) -> StageTimes {
        let mut out = *self;
        for i in 0..4 {
            out.ns[i] += other.ns[i];
        }
        out
    }

    /// Element-wise mean over `n` epochs/nodes (saturating at n = 0).
    #[must_use]
    pub fn mean_over(&self, n: u64) -> StageTimes {
        if n == 0 {
            return *self;
        }
        let mut out = *self;
        for v in &mut out.ns {
            *v /= n;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_per_stage() {
        let mut t = StageTimes::new();
        t.add(Stage::Merge, 10);
        t.add(Stage::Train, 100);
        t.add(Stage::Merge, 5);
        assert_eq!(t.get(Stage::Merge), 15);
        assert_eq!(t.get(Stage::Train), 100);
        assert_eq!(t.get(Stage::Share), 0);
        assert_eq!(t.total(), 115);
    }

    #[test]
    fn plus_and_mean() {
        let mut a = StageTimes::new();
        a.add(Stage::Share, 30);
        let mut b = StageTimes::new();
        b.add(Stage::Share, 10);
        b.add(Stage::Test, 20);
        let sum = a.plus(&b);
        assert_eq!(sum.get(Stage::Share), 40);
        let mean = sum.mean_over(2);
        assert_eq!(mean.get(Stage::Share), 20);
        assert_eq!(mean.get(Stage::Test), 10);
    }

    #[test]
    fn labels_cover_all_stages() {
        let labels: Vec<&str> = STAGES.iter().map(|s| s.label()).collect();
        assert_eq!(labels, vec!["merge", "train", "share", "test"]);
    }
}
