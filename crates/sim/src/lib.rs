//! Simulation-engine substrate for the REX reproduction.
//!
//! The protocol logic lives in `rex-core`; this crate supplies the
//! machinery every experiment shares:
//!
//! * [`clock`] — virtual time in nanoseconds (the x-axis of Figs 1, 3, 4,
//!   6c/d, 7c/d is *simulated elapsed time*: measured compute + modelled
//!   network/SGX charges);
//! * [`event`] — a deterministic discrete-event queue (used by the
//!   asynchronous RMW schedule);
//! * [`stage`] — the merge/train/share/test stage taxonomy of Algorithm 2
//!   and per-stage time accounting (Figs 5a, 6a, 7a);
//! * [`stopwatch`] — wall-clock measurement of real compute;
//! * [`trace`] — per-epoch experiment records and derived metrics
//!   (time-to-target-error drives Tables II/III);
//! * [`report`] — CSV/markdown emission matching the paper's tables.

pub mod clock;
pub mod event;
pub mod report;
pub mod stage;
pub mod stopwatch;
pub mod trace;

pub use clock::VirtualClock;
pub use event::EventQueue;
pub use stage::{Stage, StageTimes};
pub use stopwatch::Stopwatch;
pub use trace::{EpochRecord, ExperimentTrace};
