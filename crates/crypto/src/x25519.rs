//! X25519 Diffie–Hellman key agreement (RFC 7748).
//!
//! REX attestation (paper §III-A) piggybacks each party's ECDH public key on
//! the quote's user-data field; after mutual attestation the shared secret
//! seeds the session key schedule. This is a straightforward 51-bit-limb
//! Montgomery-ladder implementation validated against the RFC 7748 vectors.

use crate::ct::ct_swap;
use crate::error::CryptoError;
use rand::RngCore;

/// Byte length of scalars, points and shared secrets.
pub const KEY_LEN: usize = 32;

const MASK51: u64 = (1 << 51) - 1;

/// Field element of GF(2^255 - 19), five 51-bit limbs, little-endian.
#[derive(Clone, Copy, Debug)]
struct Fe([u64; 5]);

impl Fe {
    const ZERO: Fe = Fe([0; 5]);
    const ONE: Fe = Fe([1, 0, 0, 0, 0]);

    fn from_bytes(bytes: &[u8; 32]) -> Fe {
        let load = |b: &[u8]| -> u64 {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(&b[..8]);
            u64::from_le_bytes(buf)
        };
        // RFC 7748: the top bit of the u-coordinate is masked.
        Fe([
            load(&bytes[0..8]) & MASK51,
            (load(&bytes[6..14]) >> 3) & MASK51,
            (load(&bytes[12..20]) >> 6) & MASK51,
            (load(&bytes[19..27]) >> 1) & MASK51,
            (load(&bytes[24..32]) >> 12) & MASK51,
        ])
    }

    fn to_bytes(mut self) -> [u8; 32] {
        self = self.carry().carry();
        // Canonical reduction: q = 1 iff value >= p, then add 19q and drop
        // bit 255 (ref10 trick).
        let mut q = (self.0[0].wrapping_add(19)) >> 51;
        q = (self.0[1].wrapping_add(q)) >> 51;
        q = (self.0[2].wrapping_add(q)) >> 51;
        q = (self.0[3].wrapping_add(q)) >> 51;
        q = (self.0[4].wrapping_add(q)) >> 51;

        let mut h = self.0;
        h[0] = h[0].wrapping_add(19 * q);
        let mut carry = h[0] >> 51;
        h[0] &= MASK51;
        for limb in h.iter_mut().skip(1) {
            *limb = limb.wrapping_add(carry);
            carry = *limb >> 51;
            *limb &= MASK51;
        }

        let mut out = [0u8; 32];
        let mut acc: u128 = 0;
        let mut acc_bits = 0u32;
        let mut idx = 0;
        for limb in h {
            acc |= (limb as u128) << acc_bits;
            acc_bits += 51;
            while acc_bits >= 8 && idx < 32 {
                out[idx] = (acc & 0xff) as u8;
                acc >>= 8;
                acc_bits -= 8;
                idx += 1;
            }
        }
        if idx < 32 {
            // Flush the final partial byte (bits 248..255).
            out[idx] = acc as u8;
        }
        out
    }

    fn carry(self) -> Fe {
        let mut h = self.0;
        let mut c = h[0] >> 51;
        h[0] &= MASK51;
        for limb in h.iter_mut().skip(1) {
            *limb = limb.wrapping_add(c);
            c = *limb >> 51;
            *limb &= MASK51;
        }
        h[0] = h[0].wrapping_add(19 * c);
        Fe(h)
    }

    fn add(self, rhs: Fe) -> Fe {
        let mut h = [0u64; 5];
        for ((limb, a), b) in h.iter_mut().zip(self.0).zip(rhs.0) {
            *limb = a + b;
        }
        Fe(h).carry()
    }

    fn sub(self, rhs: Fe) -> Fe {
        // Add 2p before subtracting to keep limbs non-negative.
        const TWO_P: [u64; 5] = [
            0xf_ffff_ffff_ffda,
            0xf_ffff_ffff_fffe,
            0xf_ffff_ffff_fffe,
            0xf_ffff_ffff_fffe,
            0xf_ffff_ffff_fffe,
        ];
        let mut h = [0u64; 5];
        for i in 0..5 {
            h[i] = self.0[i] + TWO_P[i] - rhs.0[i];
        }
        Fe(h).carry()
    }

    fn mul(self, rhs: Fe) -> Fe {
        let [a0, a1, a2, a3, a4] = self.0.map(u128::from);
        let [b0, b1, b2, b3, b4] = rhs.0.map(u128::from);
        let t0 = a0 * b0 + 19 * (a1 * b4 + a2 * b3 + a3 * b2 + a4 * b1);
        let t1 = a0 * b1 + a1 * b0 + 19 * (a2 * b4 + a3 * b3 + a4 * b2);
        let t2 = a0 * b2 + a1 * b1 + a2 * b0 + 19 * (a3 * b4 + a4 * b3);
        let t3 = a0 * b3 + a1 * b2 + a2 * b1 + a3 * b0 + 19 * (a4 * b4);
        let t4 = a0 * b4 + a1 * b3 + a2 * b2 + a3 * b1 + a4 * b0;
        Self::reduce128([t0, t1, t2, t3, t4])
    }

    fn square(self) -> Fe {
        self.mul(self)
    }

    fn mul_small(self, scalar: u64) -> Fe {
        let s = u128::from(scalar);
        let t: [u128; 5] = self.0.map(|limb| u128::from(limb) * s);
        Self::reduce128(t)
    }

    fn reduce128(t: [u128; 5]) -> Fe {
        let mut r = [0u64; 5];
        let mut c: u128 = 0;
        for i in 0..5 {
            let v = t[i] + c;
            r[i] = (v as u64) & MASK51;
            c = v >> 51;
        }
        // Wrap the final carry: 2^255 ≡ 19 (mod p).
        let wrapped = r[0] as u128 + c * 19;
        r[0] = (wrapped as u64) & MASK51;
        r[1] = r[1].wrapping_add((wrapped >> 51) as u64);
        Fe(r)
    }

    /// Computes self^(p-2) = self^-1 via the standard addition chain.
    fn invert(self) -> Fe {
        let z = self;
        let z2 = z.square(); // 2
        let z8 = z2.square().square(); // 8
        let z9 = z8.mul(z); // 9
        let z11 = z9.mul(z2); // 11
        let z22 = z11.square(); // 22
        let z_5_0 = z22.mul(z9); // 2^5 - 2^0 = 31

        let mut t = z_5_0;
        for _ in 0..5 {
            t = t.square();
        }
        let z_10_0 = t.mul(z_5_0); // 2^10 - 2^0

        let mut t = z_10_0;
        for _ in 0..10 {
            t = t.square();
        }
        let z_20_0 = t.mul(z_10_0); // 2^20 - 2^0

        let mut t = z_20_0;
        for _ in 0..20 {
            t = t.square();
        }
        let z_40_0 = t.mul(z_20_0); // 2^40 - 2^0

        let mut t = z_40_0;
        for _ in 0..10 {
            t = t.square();
        }
        let z_50_0 = t.mul(z_10_0); // 2^50 - 2^0

        let mut t = z_50_0;
        for _ in 0..50 {
            t = t.square();
        }
        let z_100_0 = t.mul(z_50_0); // 2^100 - 2^0

        let mut t = z_100_0;
        for _ in 0..100 {
            t = t.square();
        }
        let z_200_0 = t.mul(z_100_0); // 2^200 - 2^0

        let mut t = z_200_0;
        for _ in 0..50 {
            t = t.square();
        }
        let z_250_0 = t.mul(z_50_0); // 2^250 - 2^0

        let mut t = z_250_0;
        for _ in 0..5 {
            t = t.square();
        }
        t.mul(z11) // 2^255 - 21 = p - 2
    }
}

/// Clamps a 32-byte scalar per RFC 7748 §5.
fn clamp(mut k: [u8; 32]) -> [u8; 32] {
    k[0] &= 248;
    k[31] &= 127;
    k[31] |= 64;
    k
}

/// Raw X25519 scalar multiplication on clamped scalar bytes.
#[must_use]
pub fn scalar_mult(scalar: &[u8; 32], u: &[u8; 32]) -> [u8; 32] {
    let k = clamp(*scalar);
    let x1 = Fe::from_bytes(u);
    let mut x2 = Fe::ONE;
    let mut z2 = Fe::ZERO;
    let mut x3 = x1;
    let mut z3 = Fe::ONE;
    let mut swap = 0u64;

    for t in (0..255).rev() {
        let k_t = u64::from((k[t / 8] >> (t % 8)) & 1);
        swap ^= k_t;
        ct_swap(swap, &mut x2.0, &mut x3.0);
        ct_swap(swap, &mut z2.0, &mut z3.0);
        swap = k_t;

        let a = x2.add(z2);
        let aa = a.square();
        let b = x2.sub(z2);
        let bb = b.square();
        let e = aa.sub(bb);
        let c = x3.add(z3);
        let d = x3.sub(z3);
        let da = d.mul(a);
        let cb = c.mul(b);
        x3 = da.add(cb).square();
        z3 = x1.mul(da.sub(cb).square());
        x2 = aa.mul(bb);
        z2 = e.mul(aa.add(e.mul_small(121_665)));
    }
    ct_swap(swap, &mut x2.0, &mut x3.0);
    ct_swap(swap, &mut z2.0, &mut z3.0);

    x2.mul(z2.invert()).to_bytes()
}

/// The X25519 base point (u = 9).
pub const BASE_POINT: [u8; 32] = {
    let mut b = [0u8; 32];
    b[0] = 9;
    b
};

/// A long-term (or per-session) X25519 private key.
#[derive(Clone)]
pub struct StaticSecret {
    scalar: [u8; 32],
}

impl StaticSecret {
    /// Generates a fresh random secret from `rng`.
    pub fn random<R: RngCore>(rng: &mut R) -> Self {
        let mut scalar = [0u8; 32];
        rng.fill_bytes(&mut scalar);
        StaticSecret {
            scalar: clamp(scalar),
        }
    }

    /// Builds a secret from raw bytes (clamped internally). Useful for tests
    /// and deterministic simulations.
    #[must_use]
    pub fn from_bytes(bytes: [u8; 32]) -> Self {
        StaticSecret {
            scalar: clamp(bytes),
        }
    }

    /// Derives the corresponding public key.
    #[must_use]
    pub fn public_key(&self) -> PublicKey {
        PublicKey(scalar_mult(&self.scalar, &BASE_POINT))
    }

    /// Computes the shared secret with `peer`. Rejects low-order peer points
    /// (all-zero output) as mandated for authenticated protocols.
    pub fn diffie_hellman(&self, peer: &PublicKey) -> Result<SharedSecret, CryptoError> {
        let shared = scalar_mult(&self.scalar, &peer.0);
        if shared.iter().all(|&b| b == 0) {
            return Err(CryptoError::LowOrderPoint);
        }
        Ok(SharedSecret(shared))
    }
}

/// An X25519 public key (u-coordinate).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PublicKey(pub [u8; 32]);

impl PublicKey {
    /// Raw bytes.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }
}

/// The result of a DH exchange; feed through HKDF before use as a key.
#[derive(Clone)]
pub struct SharedSecret(pub [u8; 32]);

impl SharedSecret {
    /// Raw bytes (input keying material for HKDF).
    #[must_use]
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn unhex32(s: &str) -> [u8; 32] {
        let v: Vec<u8> = (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect();
        v.try_into().unwrap()
    }

    // RFC 7748 §5.2 test vector 1.
    #[test]
    fn rfc7748_vector1() {
        let scalar = unhex32("a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
        let u = unhex32("e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
        let out = scalar_mult(&scalar, &u);
        assert_eq!(
            out,
            unhex32("c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552")
        );
    }

    // RFC 7748 §5.2 test vector 2.
    #[test]
    fn rfc7748_vector2() {
        let scalar = unhex32("4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d");
        let u = unhex32("e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493");
        let out = scalar_mult(&scalar, &u);
        assert_eq!(
            out,
            unhex32("95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957")
        );
    }

    // RFC 7748 §5.2 iterated test, 1 and 1000 iterations.
    #[test]
    fn rfc7748_iterated() {
        let mut k = BASE_POINT;
        let mut u = BASE_POINT;
        let mut result = scalar_mult(&k, &u);
        let after_1 = result;
        assert_eq!(
            after_1,
            unhex32("422c8e7a6227d7bca1350b3e2bb7279f7897b87bb6854b783c60e80311ae3079")
        );
        for _ in 1..1000 {
            u = k;
            k = result;
            result = scalar_mult(&k, &u);
        }
        assert_eq!(
            result,
            unhex32("684cf59ba83309552800ef566f2f4d3c1c3887c49360e3875f2eb94d99532c51")
        );
    }

    // RFC 7748 §6.1 Diffie-Hellman test.
    #[test]
    fn rfc7748_dh() {
        let alice = StaticSecret::from_bytes(unhex32(
            "77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a",
        ));
        let bob = StaticSecret::from_bytes(unhex32(
            "5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb",
        ));
        assert_eq!(
            alice.public_key().0,
            unhex32("8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a")
        );
        assert_eq!(
            bob.public_key().0,
            unhex32("de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f")
        );
        let shared_a = alice.diffie_hellman(&bob.public_key()).unwrap();
        let shared_b = bob.diffie_hellman(&alice.public_key()).unwrap();
        assert_eq!(shared_a.0, shared_b.0);
        assert_eq!(
            shared_a.0,
            unhex32("4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742")
        );
    }

    #[test]
    fn dh_commutes_for_random_keys() {
        let mut rng = StdRng::seed_from_u64(0xDEC0DE);
        for _ in 0..8 {
            let a = StaticSecret::random(&mut rng);
            let b = StaticSecret::random(&mut rng);
            let s1 = a.diffie_hellman(&b.public_key()).unwrap();
            let s2 = b.diffie_hellman(&a.public_key()).unwrap();
            assert_eq!(s1.0, s2.0);
        }
    }

    #[test]
    fn rejects_low_order_zero_point() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = StaticSecret::random(&mut rng);
        let zero = PublicKey([0u8; 32]);
        assert!(matches!(
            a.diffie_hellman(&zero),
            Err(CryptoError::LowOrderPoint)
        ));
    }

    #[test]
    fn field_roundtrip() {
        // to_bytes(from_bytes(x)) is canonical for already-reduced x.
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..50 {
            let mut b = [0u8; 32];
            rand::RngCore::fill_bytes(&mut rng, &mut b);
            b[31] &= 0x7f; // keep below 2^255
            let fe = Fe::from_bytes(&b);
            let back = fe.to_bytes();
            // from_bytes(back) must be a fixed point.
            assert_eq!(Fe::from_bytes(&back).to_bytes(), back);
        }
    }

    #[test]
    fn invert_inverts() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            let mut b = [0u8; 32];
            rand::RngCore::fill_bytes(&mut rng, &mut b);
            b[31] &= 0x7f;
            let fe = Fe::from_bytes(&b);
            let prod = fe.mul(fe.invert());
            assert_eq!(prod.to_bytes(), Fe::ONE.to_bytes());
        }
    }
}
