//! Poly1305 one-time authenticator (RFC 8439 §2.5), 26-bit limb
//! implementation (poly1305-donna style).

/// Key length in bytes (r ‖ s).
pub const KEY_LEN: usize = 32;
/// Tag length in bytes.
pub const TAG_LEN: usize = 16;

/// Incremental Poly1305 MAC.
pub struct Poly1305 {
    r: [u32; 5],
    h: [u32; 5],
    pad: [u32; 4],
    buf: [u8; 16],
    buf_len: usize,
}

impl Poly1305 {
    /// Creates a one-time MAC keyed with a 32-byte key. The key **must not**
    /// be reused across messages; the AEAD derives a fresh one per nonce.
    #[must_use]
    pub fn new(key: &[u8; KEY_LEN]) -> Self {
        // r is clamped per RFC 8439.
        let r0 = u32::from_le_bytes(key[0..4].try_into().unwrap());
        let r1 = u32::from_le_bytes(key[3..7].try_into().unwrap());
        let r2 = u32::from_le_bytes(key[6..10].try_into().unwrap());
        let r3 = u32::from_le_bytes(key[9..13].try_into().unwrap());
        let r4 = u32::from_le_bytes(key[12..16].try_into().unwrap());
        let r = [
            r0 & 0x03ff_ffff,
            (r1 >> 2) & 0x03ff_ff03,
            (r2 >> 4) & 0x03ff_c0ff,
            (r3 >> 6) & 0x03f0_3fff,
            (r4 >> 8) & 0x000f_ffff,
        ];
        let pad = [
            u32::from_le_bytes(key[16..20].try_into().unwrap()),
            u32::from_le_bytes(key[20..24].try_into().unwrap()),
            u32::from_le_bytes(key[24..28].try_into().unwrap()),
            u32::from_le_bytes(key[28..32].try_into().unwrap()),
        ];
        Poly1305 {
            r,
            h: [0; 5],
            pad,
            buf: [0; 16],
            buf_len: 0,
        }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        if self.buf_len > 0 {
            let take = (16 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 16 {
                let block = self.buf;
                self.process_block(&block, 1 << 24);
                self.buf_len = 0;
            }
        }
        while data.len() >= 16 {
            let (block, rest) = data.split_at(16);
            let mut b = [0u8; 16];
            b.copy_from_slice(block);
            self.process_block(&b, 1 << 24);
            data = rest;
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    fn process_block(&mut self, block: &[u8; 16], hibit: u32) {
        let t0 = u32::from_le_bytes(block[0..4].try_into().unwrap());
        let t1 = u32::from_le_bytes(block[3..7].try_into().unwrap());
        let t2 = u32::from_le_bytes(block[6..10].try_into().unwrap());
        let t3 = u32::from_le_bytes(block[9..13].try_into().unwrap());
        let t4 = u32::from_le_bytes(block[12..16].try_into().unwrap());

        // h += m
        let h0 = self.h[0] + (t0 & 0x03ff_ffff);
        let h1 = self.h[1] + ((t1 >> 2) & 0x03ff_ffff);
        let h2 = self.h[2] + ((t2 >> 4) & 0x03ff_ffff);
        let h3 = self.h[3] + ((t3 >> 6) & 0x03ff_ffff);
        let h4 = self.h[4] + ((t4 >> 8) | hibit);

        // h *= r (mod 2^130 - 5) with 64-bit accumulators.
        let [r0, r1, r2, r3, r4] = self.r.map(u64::from);
        let s1 = r1 * 5;
        let s2 = r2 * 5;
        let s3 = r3 * 5;
        let s4 = r4 * 5;
        let (h0, h1, h2, h3, h4) = (
            u64::from(h0),
            u64::from(h1),
            u64::from(h2),
            u64::from(h3),
            u64::from(h4),
        );

        let d0 = h0 * r0 + h1 * s4 + h2 * s3 + h3 * s2 + h4 * s1;
        let d1 = h0 * r1 + h1 * r0 + h2 * s4 + h3 * s3 + h4 * s2;
        let d2 = h0 * r2 + h1 * r1 + h2 * r0 + h3 * s4 + h4 * s3;
        let d3 = h0 * r3 + h1 * r2 + h2 * r1 + h3 * r0 + h4 * s4;
        let d4 = h0 * r4 + h1 * r3 + h2 * r2 + h3 * r1 + h4 * r0;

        // Partial reduction.
        let mut c: u64;
        let mut d0 = d0;
        let mut d1 = d1;
        let mut d2 = d2;
        let mut d3 = d3;
        let mut d4 = d4;
        c = d0 >> 26;
        let h0 = (d0 & 0x03ff_ffff) as u32;
        d1 += c;
        c = d1 >> 26;
        let h1 = (d1 & 0x03ff_ffff) as u32;
        d2 += c;
        c = d2 >> 26;
        let h2 = (d2 & 0x03ff_ffff) as u32;
        d3 += c;
        c = d3 >> 26;
        let h3 = (d3 & 0x03ff_ffff) as u32;
        d4 += c;
        c = d4 >> 26;
        let h4 = (d4 & 0x03ff_ffff) as u32;
        d0 = u64::from(h0) + c * 5;
        c = d0 >> 26;
        let h0 = (d0 & 0x03ff_ffff) as u32;
        let h1 = h1 + c as u32;

        self.h = [h0, h1, h2, h3, h4];
    }

    /// Emits the 16-byte tag, consuming the MAC.
    #[must_use]
    pub fn finalize(mut self) -> [u8; TAG_LEN] {
        if self.buf_len > 0 {
            // Final partial block: append 0x01 then zero-pad; no high bit.
            let mut block = [0u8; 16];
            block[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
            block[self.buf_len] = 1;
            self.process_block(&block, 0);
        }

        let [mut h0, mut h1, mut h2, mut h3, mut h4] = self.h;

        // Fully reduce h.
        let mut c = h1 >> 26;
        h1 &= 0x03ff_ffff;
        h2 += c;
        c = h2 >> 26;
        h2 &= 0x03ff_ffff;
        h3 += c;
        c = h3 >> 26;
        h3 &= 0x03ff_ffff;
        h4 += c;
        c = h4 >> 26;
        h4 &= 0x03ff_ffff;
        h0 += c * 5;
        c = h0 >> 26;
        h0 &= 0x03ff_ffff;
        h1 += c;

        // Compute h + -p.
        let mut g0 = h0.wrapping_add(5);
        c = g0 >> 26;
        g0 &= 0x03ff_ffff;
        let mut g1 = h1.wrapping_add(c);
        c = g1 >> 26;
        g1 &= 0x03ff_ffff;
        let mut g2 = h2.wrapping_add(c);
        c = g2 >> 26;
        g2 &= 0x03ff_ffff;
        let mut g3 = h3.wrapping_add(c);
        c = g3 >> 26;
        g3 &= 0x03ff_ffff;
        let g4 = h4.wrapping_add(c).wrapping_sub(1 << 26);

        // Select h if h < p, else h - p (constant time).
        let mask = (g4 >> 31).wrapping_sub(1);
        g0 &= mask;
        g1 &= mask;
        g2 &= mask;
        g3 &= mask;
        let g4m = g4 & mask;
        let nmask = !mask;
        h0 = (h0 & nmask) | g0;
        h1 = (h1 & nmask) | g1;
        h2 = (h2 & nmask) | g2;
        h3 = (h3 & nmask) | g3;
        h4 = (h4 & nmask) | g4m;

        // h = h % 2^128, then add pad (s) with carry.
        let hh0 = h0 | (h1 << 26);
        let hh1 = (h1 >> 6) | (h2 << 20);
        let hh2 = (h2 >> 12) | (h3 << 14);
        let hh3 = (h3 >> 18) | (h4 << 8);

        let mut f: u64 = u64::from(hh0) + u64::from(self.pad[0]);
        let f0 = f as u32;
        f = u64::from(hh1) + u64::from(self.pad[1]) + (f >> 32);
        let f1 = f as u32;
        f = u64::from(hh2) + u64::from(self.pad[2]) + (f >> 32);
        let f2 = f as u32;
        f = u64::from(hh3) + u64::from(self.pad[3]) + (f >> 32);
        let f3 = f as u32;

        let mut tag = [0u8; TAG_LEN];
        tag[0..4].copy_from_slice(&f0.to_le_bytes());
        tag[4..8].copy_from_slice(&f1.to_le_bytes());
        tag[8..12].copy_from_slice(&f2.to_le_bytes());
        tag[12..16].copy_from_slice(&f3.to_le_bytes());
        tag
    }

    /// One-shot MAC.
    #[must_use]
    pub fn mac(key: &[u8; KEY_LEN], data: &[u8]) -> [u8; TAG_LEN] {
        let mut p = Self::new(key);
        p.update(data);
        p.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex(s: &str) -> Vec<u8> {
        let s: String = s.chars().filter(|c| !c.is_whitespace()).collect();
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // RFC 8439 §2.5.2 test vector.
    #[test]
    fn rfc8439_tag() {
        let key: [u8; 32] =
            unhex("85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b")
                .try_into()
                .unwrap();
        let tag = Poly1305::mac(&key, b"Cryptographic Forum Research Group");
        assert_eq!(tag.to_vec(), unhex("a8061dc1305136c6c22b8baf0c0127a9"));
    }

    // RFC 8439 §A.3 vector #1: all-zero key and message.
    #[test]
    fn zero_key_zero_message() {
        let key = [0u8; 32];
        let msg = [0u8; 64];
        assert_eq!(Poly1305::mac(&key, &msg), [0u8; 16]);
    }

    // RFC 8439 §A.3 vector #3: r with all bits set (clamping stress).
    #[test]
    fn clamping_stress() {
        let mut key = [0u8; 32];
        for b in key[..16].iter_mut() {
            *b = 0xff;
        }
        // s = 0 so the tag is the raw reduced accumulator.
        let msg = unhex(
            "02000000000000000000000000000000000000000000000000000000000000000000000000000000\
             0000000000000000",
        );
        // This exact case is covered by the wrap-around vectors below; here we
        // simply assert determinism and 16-byte output.
        let t1 = Poly1305::mac(&key, &msg);
        let t2 = Poly1305::mac(&key, &msg);
        assert_eq!(t1, t2);
    }

    // RFC 8439 §A.3 vector #4 exercises the 2^130-5 wraparound.
    #[test]
    fn wraparound_vector() {
        let key: [u8; 32] =
            unhex("0200000000000000000000000000000000000000000000000000000000000000")
                .try_into()
                .unwrap();
        let msg = unhex("ffffffffffffffffffffffffffffffff");
        assert_eq!(
            Poly1305::mac(&key, &msg).to_vec(),
            unhex("03000000000000000000000000000000")
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let key = [0x42u8; 32];
        let data: Vec<u8> = (0..200u32).map(|i| i as u8).collect();
        for split in [0usize, 1, 15, 16, 17, 31, 100, 199] {
            let mut p = Poly1305::new(&key);
            p.update(&data[..split]);
            p.update(&data[split..]);
            assert_eq!(p.finalize(), Poly1305::mac(&key, &data), "split {split}");
        }
    }
}
