//! Best-effort constant-time comparison helpers.
//!
//! Used for AEAD tag checks and attestation measurement comparison so that
//! equality rejects do not leak a matching prefix length through timing.

/// Compares two byte slices in time independent of their contents.
///
/// Returns `false` immediately only on length mismatch (lengths are public
/// for every use in this workspace: tags, hashes and keys are fixed-size).
#[must_use]
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        acc |= x ^ y;
    }
    // A data-dependent branch only on the final accumulated byte.
    acc == 0
}

/// Conditionally swaps two u64 limb arrays when `swap == 1`, without
/// branching on `swap`. Used by the X25519 Montgomery ladder.
pub fn ct_swap(swap: u64, a: &mut [u64; 5], b: &mut [u64; 5]) {
    debug_assert!(swap == 0 || swap == 1);
    let mask = swap.wrapping_neg();
    for i in 0..5 {
        let t = mask & (a[i] ^ b[i]);
        a[i] ^= t;
        b[i] ^= t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq_basic() {
        assert!(ct_eq(b"abc", b"abc"));
        assert!(!ct_eq(b"abc", b"abd"));
        assert!(!ct_eq(b"abc", b"ab"));
        assert!(ct_eq(b"", b""));
    }

    #[test]
    fn swap_swaps() {
        let mut a = [1, 2, 3, 4, 5];
        let mut b = [6, 7, 8, 9, 10];
        ct_swap(0, &mut a, &mut b);
        assert_eq!(a, [1, 2, 3, 4, 5]);
        ct_swap(1, &mut a, &mut b);
        assert_eq!(a, [6, 7, 8, 9, 10]);
        assert_eq!(b, [1, 2, 3, 4, 5]);
    }
}
