//! Error type shared by all primitives in this crate.

use std::fmt;

/// Failure modes of the cryptographic primitives.
///
/// Deliberately coarse: distinguishing *why* an AEAD open failed would leak
/// information to a caller that should only ever see "reject".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CryptoError {
    /// AEAD tag mismatch or malformed ciphertext.
    DecryptionFailed,
    /// A key, nonce or tag had the wrong length.
    InvalidLength {
        /// What was being parsed.
        what: &'static str,
        /// Expected byte length.
        expected: usize,
        /// Actual byte length.
        actual: usize,
    },
    /// X25519 produced an all-zero shared secret (low-order peer point).
    LowOrderPoint,
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::DecryptionFailed => write!(f, "decryption failed"),
            CryptoError::InvalidLength {
                what,
                expected,
                actual,
            } => write!(
                f,
                "invalid {what} length: expected {expected}, got {actual}"
            ),
            CryptoError::LowOrderPoint => write!(f, "X25519 peer point has low order"),
        }
    }
}

impl std::error::Error for CryptoError {}
