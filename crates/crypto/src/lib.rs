//! Cryptographic primitives for the REX reproduction, written from scratch.
//!
//! The REX protocol (paper §III-A/B) needs exactly four cryptographic
//! capabilities inside its simulated enclaves:
//!
//! * a **measurement hash** for enclave identity ([`sha256`]),
//! * **keyed integrity** for the simulated quoting-enclave signature chain
//!   ([`hmac`]),
//! * an **ECDH key agreement** whose public key piggybacks on the quote's
//!   user-data field ([`x25519`], paper §III-A), and
//! * an **AEAD channel** for all post-attestation traffic
//!   ([`aead`], ChaCha20-Poly1305; the paper uses Intel SGX SSL / AES-GCM —
//!   see DESIGN.md §2 for the substitution argument).
//!
//! All primitives are validated against the relevant RFC test vectors
//! (RFC 6234, RFC 4231, RFC 5869, RFC 8439, RFC 7748) in their module tests.
//!
//! This crate is deliberately dependency-free except for `rand` (key
//! generation). It is **not** hardened against side channels beyond
//! best-effort constant-time tag/point comparisons ([`ct`]); it substitutes
//! for SGX SSL inside a *simulated* enclave, not a production one.

pub mod aead;
pub mod chacha20;
pub mod ct;
pub mod error;
pub mod hkdf;
pub mod hmac;
pub mod mix;
pub mod poly1305;
pub mod sha256;
pub mod simd;
pub mod x25519;

pub use aead::ChaCha20Poly1305;
pub use error::CryptoError;
pub use hkdf::Hkdf;
pub use hmac::HmacSha256;
pub use mix::splitmix64;
pub use sha256::Sha256;
pub use simd::SimdLevel;
pub use x25519::{PublicKey, SharedSecret, StaticSecret};
