//! HMAC-SHA256 (RFC 2104), used by the simulated quoting enclave to sign
//! quotes and by report MACs.

use crate::sha256::{Sha256, BLOCK_LEN, DIGEST_LEN};

/// Incremental HMAC-SHA256.
#[derive(Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    outer: Sha256,
}

impl HmacSha256 {
    /// Creates a MAC context keyed with `key` (any length).
    #[must_use]
    pub fn new(key: &[u8]) -> Self {
        let mut key_block = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            key_block[..DIGEST_LEN].copy_from_slice(&Sha256::digest(key));
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }

        let mut ipad = [0x36u8; BLOCK_LEN];
        let mut opad = [0x5cu8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] ^= key_block[i];
            opad[i] ^= key_block[i];
        }

        let mut inner = Sha256::new();
        inner.update(&ipad);
        let mut outer = Sha256::new();
        outer.update(&opad);
        HmacSha256 { inner, outer }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Emits the 32-byte tag.
    #[must_use]
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let inner_digest = self.inner.finalize();
        self.outer.update(&inner_digest);
        self.outer.finalize()
    }

    /// One-shot MAC.
    #[must_use]
    pub fn mac(key: &[u8], data: &[u8]) -> [u8; DIGEST_LEN] {
        let mut m = Self::new(key);
        m.update(data);
        m.finalize()
    }

    /// Verifies `tag` against the MAC of `data` in constant time.
    #[must_use]
    pub fn verify(key: &[u8], data: &[u8], tag: &[u8]) -> bool {
        crate::ct::ct_eq(&Self::mac(key, data), tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 4231 test cases for HMAC-SHA-256.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        assert_eq!(
            hex(&HmacSha256::mac(&key, b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case2() {
        assert_eq!(
            hex(&HmacSha256::mac(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        assert_eq!(
            hex(&HmacSha256::mac(&key, &data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case6_long_key() {
        let key = [0xaau8; 131];
        assert_eq!(
            hex(&HmacSha256::mac(
                &key,
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn verify_roundtrip_and_reject() {
        let tag = HmacSha256::mac(b"k", b"m");
        assert!(HmacSha256::verify(b"k", b"m", &tag));
        assert!(!HmacSha256::verify(b"k", b"m2", &tag));
        assert!(!HmacSha256::verify(b"k2", b"m", &tag));
        let mut bad = tag;
        bad[0] ^= 1;
        assert!(!HmacSha256::verify(b"k", b"m", &bad));
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut m = HmacSha256::new(b"key");
        m.update(b"hello ");
        m.update(b"world");
        assert_eq!(m.finalize(), HmacSha256::mac(b"key", b"hello world"));
    }
}
