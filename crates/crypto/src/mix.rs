//! Non-cryptographic seeded mixing.
//!
//! [`splitmix64`] is the one bit mixer behind every *deterministic
//! replay* stream in the workspace — fault-plan fates (`rex-net`),
//! membership repair seeds (`rex-core`), late-attestation ephemerals
//! (`rex-tee`). It lives here, in the lowest common crate, precisely so
//! those streams can never drift apart through divergent copies: the
//! constants are part of the experiment contract (reseeding a pinned
//! scenario re-rolls every decision derived from it).
//!
//! Not a cryptographic primitive — statistical mixing only (Steele,
//! Lea & Flood, "Fast Splittable Pseudorandom Number Generators").

/// One SplitMix64 step: maps `z` to a statistically well-mixed 64-bit
/// value. Chain calls (`splitmix64(seed ^ part)`) to fold structured
/// inputs into a stream seed.
#[must_use]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values_are_pinned() {
        // These outputs are load-bearing: fault fates, repair bridges
        // and late-attestation keys all derive from them. Changing the
        // mixer invalidates every pinned scenario in the workspace.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(1), 0x910A_2DEC_8902_5CC1);
        assert_eq!(splitmix64(0xDEAD_BEEF), 0x4ADF_B90F_68C9_EB9B);
    }

    #[test]
    fn distinct_inputs_mix_apart() {
        let a = splitmix64(7);
        let b = splitmix64(8);
        assert_ne!(a, b);
        assert_ne!(a ^ b, 7 ^ 8, "outputs are not a trivial xor of inputs");
    }
}
