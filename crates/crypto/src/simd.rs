//! Runtime SIMD dispatch for the crypto kernels.
//!
//! Mirrors `rex_ml::kernel`'s dispatch contract (the crypto crate stays
//! dependency-free, so the ~50 lines are deliberately duplicated): the
//! widest available x86_64 instruction set is detected once per process
//! via `is_x86_feature_detected!`, and the `REX_KERNEL` environment
//! variable (`scalar` | `sse2` | `avx2`) pins the level for testing.
//! Requesting an unavailable level aborts rather than silently
//! degrading. Unlike the float kernels, every ChaCha20 path is integer
//! arithmetic, so bit-exactness across levels is structural — the
//! parity suite pins it anyway.

use std::sync::atomic::{AtomicU8, Ordering};

/// A crypto-kernel dispatch level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdLevel {
    /// Portable scalar reference.
    Scalar,
    /// 4-blocks-wide 128-bit x86_64 path (baseline on x86_64).
    Sse2,
    /// 8-blocks-wide 256-bit x86_64 path (runtime-detected).
    Avx2,
}

impl SimdLevel {
    /// Parses a `REX_KERNEL` value.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "scalar" => Some(SimdLevel::Scalar),
            "sse2" => Some(SimdLevel::Sse2),
            "avx2" => Some(SimdLevel::Avx2),
            _ => None,
        }
    }

    /// The level's `REX_KERNEL` spelling.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Sse2 => "sse2",
            SimdLevel::Avx2 => "avx2",
        }
    }

    /// Whether this host can execute the level.
    #[must_use]
    pub fn is_available(self) -> bool {
        match self {
            SimdLevel::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Sse2 => true,
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Avx2 => is_x86_feature_detected!("avx2"),
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }

    fn encode(self) -> u8 {
        match self {
            SimdLevel::Scalar => 1,
            SimdLevel::Sse2 => 2,
            SimdLevel::Avx2 => 3,
        }
    }

    fn decode(v: u8) -> Option<Self> {
        match v {
            1 => Some(SimdLevel::Scalar),
            2 => Some(SimdLevel::Sse2),
            3 => Some(SimdLevel::Avx2),
            _ => None,
        }
    }
}

/// Every level this host can execute, narrowest first.
#[must_use]
pub fn available_levels() -> Vec<SimdLevel> {
    [SimdLevel::Scalar, SimdLevel::Sse2, SimdLevel::Avx2]
        .into_iter()
        .filter(|l| l.is_available())
        .collect()
}

static LEVEL: AtomicU8 = AtomicU8::new(0);

fn detect() -> SimdLevel {
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx2") {
            SimdLevel::Avx2
        } else {
            SimdLevel::Sse2
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    SimdLevel::Scalar
}

fn init_level() -> SimdLevel {
    let level = match std::env::var("REX_KERNEL") {
        Ok(v) => {
            let l = SimdLevel::parse(&v)
                .unwrap_or_else(|| panic!("REX_KERNEL={v}: expected scalar|sse2|avx2"));
            assert!(
                l.is_available(),
                "REX_KERNEL={v} requested but this host cannot execute it"
            );
            l
        }
        Err(_) => detect(),
    };
    LEVEL.store(level.encode(), Ordering::Relaxed);
    level
}

/// The process-wide dispatch level: `REX_KERNEL` if set, else the
/// widest detected instruction set. Resolved once, then cached.
#[inline]
#[must_use]
pub fn level() -> SimdLevel {
    match SimdLevel::decode(LEVEL.load(Ordering::Relaxed)) {
        Some(l) => l,
        None => init_level(),
    }
}

/// Pins the dispatch level in-process (bench/test hook).
///
/// # Panics
/// When this host cannot execute `l`.
pub fn force_level(l: SimdLevel) {
    assert!(l.is_available(), "simd level {} unavailable", l.name());
    LEVEL.store(l.encode(), Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_availability() {
        assert_eq!(SimdLevel::parse("scalar"), Some(SimdLevel::Scalar));
        assert_eq!(SimdLevel::parse("sse2"), Some(SimdLevel::Sse2));
        assert_eq!(SimdLevel::parse("avx2"), Some(SimdLevel::Avx2));
        assert_eq!(SimdLevel::parse("avx512"), None);
        let levels = available_levels();
        assert!(levels.contains(&SimdLevel::Scalar));
        for l in levels {
            assert!(l.is_available());
            assert_eq!(SimdLevel::parse(l.name()), Some(l));
        }
        assert!(level().is_available());
    }
}
