//! ChaCha20-Poly1305 AEAD (RFC 8439 §2.8).
//!
//! This is the encrypted channel used for all post-attestation REX traffic
//! (paper Algorithm 1 `ocall_send` / Algorithm 2 `ecall_input`): raw rating
//! triplets and serialized models travel inside these sealed frames.

use crate::chacha20::{self, NONCE_LEN};
use crate::ct::ct_eq;
use crate::error::CryptoError;
use crate::poly1305::{Poly1305, TAG_LEN};

/// Key length in bytes.
pub const KEY_LEN: usize = 32;

/// An AEAD cipher instance bound to one 256-bit key.
///
/// ```
/// use rex_crypto::ChaCha20Poly1305;
/// let cipher = ChaCha20Poly1305::new(&[7u8; 32]);
/// let nonce = [1u8; 12];
/// let sealed = cipher.seal(&nonce, b"header", b"secret payload");
/// let opened = cipher.open(&nonce, b"header", &sealed).unwrap();
/// assert_eq!(opened, b"secret payload");
/// ```
#[derive(Clone)]
pub struct ChaCha20Poly1305 {
    key: [u8; KEY_LEN],
}

impl ChaCha20Poly1305 {
    /// Creates a cipher with the given key.
    #[must_use]
    pub fn new(key: &[u8; KEY_LEN]) -> Self {
        ChaCha20Poly1305 { key: *key }
    }

    /// Derives the per-nonce Poly1305 key (RFC 8439 §2.6).
    fn poly_key(&self, nonce: &[u8; NONCE_LEN]) -> [u8; 32] {
        let block = chacha20::block(&self.key, 0, nonce);
        let mut pk = [0u8; 32];
        pk.copy_from_slice(&block[..32]);
        pk
    }

    fn compute_tag(poly_key: &[u8; 32], aad: &[u8], ciphertext: &[u8]) -> [u8; TAG_LEN] {
        let mut mac = Poly1305::new(poly_key);
        mac.update(aad);
        mac.update(&zero_pad(aad.len()));
        mac.update(ciphertext);
        mac.update(&zero_pad(ciphertext.len()));
        mac.update(&(aad.len() as u64).to_le_bytes());
        mac.update(&(ciphertext.len() as u64).to_le_bytes());
        mac.finalize()
    }

    /// Encrypts `plaintext` with associated data `aad`; returns
    /// `ciphertext ‖ 16-byte tag`.
    #[must_use]
    pub fn seal(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(plaintext.len() + TAG_LEN);
        out.extend_from_slice(plaintext);
        chacha20::xor_stream(&self.key, 1, nonce, &mut out);
        let tag = Self::compute_tag(&self.poly_key(nonce), aad, &out);
        out.extend_from_slice(&tag);
        out
    }

    /// Decrypts `sealed` (`ciphertext ‖ tag`); returns the plaintext or an
    /// error if authentication fails. Verification runs before decryption.
    pub fn open(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        sealed: &[u8],
    ) -> Result<Vec<u8>, CryptoError> {
        if sealed.len() < TAG_LEN {
            return Err(CryptoError::DecryptionFailed);
        }
        let (ciphertext, tag) = sealed.split_at(sealed.len() - TAG_LEN);
        let expected = Self::compute_tag(&self.poly_key(nonce), aad, ciphertext);
        if !ct_eq(&expected, tag) {
            return Err(CryptoError::DecryptionFailed);
        }
        let mut plain = ciphertext.to_vec();
        chacha20::xor_stream(&self.key, 1, nonce, &mut plain);
        Ok(plain)
    }

    /// Number of bytes added to a plaintext by [`Self::seal`].
    pub const OVERHEAD: usize = TAG_LEN;
}

fn zero_pad(len: usize) -> Vec<u8> {
    vec![0u8; (16 - (len % 16)) % 16]
}

/// A monotonically increasing 96-bit nonce generator for one session
/// direction. Reusing a (key, nonce) pair is catastrophic for this AEAD, so
/// sessions hand out nonces only through this counter.
#[derive(Debug, Clone, Default)]
pub struct NonceSequence {
    counter: u64,
    /// Distinguishes the two directions of a duplex session (RFC 9000-style).
    direction: u32,
}

impl NonceSequence {
    /// Creates a sequence for one direction (0 = initiator, 1 = responder).
    #[must_use]
    pub fn new(direction: u32) -> Self {
        NonceSequence {
            counter: 0,
            direction,
        }
    }

    /// Returns the next unique nonce; panics on exhaustion (2^64 messages).
    // Not an `Iterator`: it is infallible (no `Option`) and never ends.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> [u8; NONCE_LEN] {
        let nonce = self.peek();
        self.advance();
        nonce
    }

    /// Returns the nonce that [`Self::next`] would yield, without
    /// consuming it. Receivers use this to verify a frame *before*
    /// committing the counter, so hostile garbage cannot desynchronize a
    /// session.
    #[must_use]
    pub fn peek(&self) -> [u8; NONCE_LEN] {
        let mut nonce = [0u8; NONCE_LEN];
        nonce[..4].copy_from_slice(&self.direction.to_le_bytes());
        nonce[4..].copy_from_slice(&self.counter.to_le_bytes());
        nonce
    }

    /// Consumes the current nonce position.
    pub fn advance(&mut self) {
        self.counter = self
            .counter
            .checked_add(1)
            .expect("nonce sequence exhausted");
    }

    /// Number of nonces handed out so far.
    #[must_use]
    pub fn issued(&self) -> u64 {
        self.counter
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex(s: &str) -> Vec<u8> {
        let s: String = s.chars().filter(|c| !c.is_whitespace()).collect();
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // RFC 8439 §2.8.2 AEAD test vector.
    #[test]
    fn rfc8439_seal() {
        let key: [u8; 32] =
            unhex("808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f")
                .try_into()
                .unwrap();
        let nonce: [u8; 12] = unhex("070000004041424344454647").try_into().unwrap();
        let aad = unhex("50515253c0c1c2c3c4c5c6c7");
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you \
only one tip for the future, sunscreen would be it.";

        let cipher = ChaCha20Poly1305::new(&key);
        let sealed = cipher.seal(&nonce, &aad, plaintext);

        let expected_ct = unhex(
            "d31a8d34648e60db7b86afbc53ef7ec2a4aded51296e08fea9e2b5a736ee62d6
             3dbea45e8ca9671282fafb69da92728b1a71de0a9e060b2905d6a5b67ecd3b36
             92ddbd7f2d778b8c9803aee328091b58fab324e4fad675945585808b4831d7bc
             3ff4def08e4b7a9de576d26586cec64b6116",
        );
        let expected_tag = unhex("1ae10b594f09e26a7e902ecbd0600691");
        assert_eq!(&sealed[..plaintext.len()], &expected_ct[..]);
        assert_eq!(&sealed[plaintext.len()..], &expected_tag[..]);

        let opened = cipher.open(&nonce, &aad, &sealed).unwrap();
        assert_eq!(opened, plaintext);
    }

    #[test]
    fn tamper_detection() {
        let cipher = ChaCha20Poly1305::new(&[3u8; 32]);
        let nonce = [5u8; 12];
        let sealed = cipher.seal(&nonce, b"aad", b"message");

        // Flip each byte in turn: every mutation must be rejected.
        for i in 0..sealed.len() {
            let mut bad = sealed.clone();
            bad[i] ^= 0x01;
            assert_eq!(
                cipher.open(&nonce, b"aad", &bad),
                Err(CryptoError::DecryptionFailed),
                "tamper at byte {i} accepted"
            );
        }
        // Wrong AAD rejected.
        assert!(cipher.open(&nonce, b"aaX", &sealed).is_err());
        // Wrong nonce rejected.
        assert!(cipher.open(&[6u8; 12], b"aad", &sealed).is_err());
        // Too-short input rejected.
        assert!(cipher.open(&nonce, b"aad", &sealed[..10]).is_err());
    }

    #[test]
    fn empty_plaintext_and_aad() {
        let cipher = ChaCha20Poly1305::new(&[1u8; 32]);
        let nonce = [0u8; 12];
        let sealed = cipher.seal(&nonce, b"", b"");
        assert_eq!(sealed.len(), TAG_LEN);
        assert_eq!(cipher.open(&nonce, b"", &sealed).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn nonce_sequence_unique_across_directions() {
        let mut a = NonceSequence::new(0);
        let mut b = NonceSequence::new(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            assert!(seen.insert(a.next()));
            assert!(seen.insert(b.next()));
        }
        assert_eq!(a.issued(), 100);
    }
}
