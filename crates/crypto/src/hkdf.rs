//! HKDF-SHA256 (RFC 5869): extract-and-expand key derivation.
//!
//! Attested REX sessions derive their AEAD channel keys from the X25519
//! shared secret via HKDF with a transcript-bound `info` string
//! (see `rex-tee::attestation`).

use crate::hmac::HmacSha256;
use crate::sha256::DIGEST_LEN;

/// HKDF-SHA256 context holding a pseudorandom key.
pub struct Hkdf {
    prk: [u8; DIGEST_LEN],
}

impl Hkdf {
    /// HKDF-Extract: derives a PRK from `salt` and input keying material.
    #[must_use]
    pub fn extract(salt: &[u8], ikm: &[u8]) -> Self {
        Hkdf {
            prk: HmacSha256::mac(salt, ikm),
        }
    }

    /// HKDF-Expand into `okm`. Panics if more than `255 * 32` bytes are
    /// requested (RFC 5869 limit) — callers in this workspace derive at most
    /// two 32-byte keys per session.
    pub fn expand(&self, info: &[u8], okm: &mut [u8]) {
        assert!(
            okm.len() <= 255 * DIGEST_LEN,
            "HKDF output too long: {}",
            okm.len()
        );
        let mut t: Vec<u8> = Vec::with_capacity(DIGEST_LEN);
        let mut offset = 0;
        let mut counter = 1u8;
        while offset < okm.len() {
            let mut m = HmacSha256::new(&self.prk);
            m.update(&t);
            m.update(info);
            m.update(&[counter]);
            let block = m.finalize();
            let take = (okm.len() - offset).min(DIGEST_LEN);
            okm[offset..offset + take].copy_from_slice(&block[..take]);
            t.clear();
            t.extend_from_slice(&block);
            offset += take;
            counter = counter.checked_add(1).expect("HKDF counter overflow");
        }
    }

    /// Convenience: extract then expand into a fixed-size array.
    #[must_use]
    pub fn derive<const N: usize>(salt: &[u8], ikm: &[u8], info: &[u8]) -> [u8; N] {
        let mut out = [0u8; N];
        Self::extract(salt, ikm).expand(info, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // RFC 5869 test case 1.
    #[test]
    fn rfc5869_case1() {
        let ikm = [0x0bu8; 22];
        let salt = unhex("000102030405060708090a0b0c");
        let info = unhex("f0f1f2f3f4f5f6f7f8f9");
        let hk = Hkdf::extract(&salt, &ikm);
        assert_eq!(
            hex(&hk.prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );
        let mut okm = [0u8; 42];
        hk.expand(&info, &mut okm);
        assert_eq!(
            hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    // RFC 5869 test case 2 (longer inputs/outputs, spans multiple blocks).
    #[test]
    fn rfc5869_case2() {
        let ikm: Vec<u8> = (0x00..=0x4f).collect();
        let salt: Vec<u8> = (0x60..=0xaf).collect();
        let info: Vec<u8> = (0xb0..=0xff).collect();
        let mut okm = [0u8; 82];
        Hkdf::extract(&salt, &ikm).expand(&info, &mut okm);
        assert_eq!(
            hex(&okm),
            "b11e398dc80327a1c8e7f78c596a49344f012eda2d4efad8a050cc4c19afa97c\
             59045a99cac7827271cb41c65e590e09da3275600c2f09b8367793a9aca3db71\
             cc30c58179ec3e87c14c01d5c1f3434f1d87"
        );
    }

    // RFC 5869 test case 3 (zero-length salt and info).
    #[test]
    fn rfc5869_case3() {
        let ikm = [0x0bu8; 22];
        let mut okm = [0u8; 42];
        Hkdf::extract(&[], &ikm).expand(&[], &mut okm);
        assert_eq!(
            hex(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8"
        );
    }

    #[test]
    fn derive_array() {
        let k: [u8; 32] = Hkdf::derive(b"salt", b"ikm", b"info");
        let mut expected = [0u8; 32];
        Hkdf::extract(b"salt", b"ikm").expand(b"info", &mut expected);
        assert_eq!(k, expected);
    }
}
