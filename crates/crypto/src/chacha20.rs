//! The ChaCha20 stream cipher (RFC 8439 §2.3–2.4).

/// Key length in bytes.
pub const KEY_LEN: usize = 32;
/// Nonce length in bytes (IETF variant).
pub const NONCE_LEN: usize = 12;
/// Keystream block size in bytes.
pub const BLOCK_LEN: usize = 64;

const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Computes one 64-byte keystream block for (`key`, `counter`, `nonce`).
#[must_use]
pub fn block(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN]) -> [u8; BLOCK_LEN] {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&SIGMA);
    for i in 0..8 {
        state[4 + i] = u32::from_le_bytes(key[i * 4..i * 4 + 4].try_into().unwrap());
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes(nonce[i * 4..i * 4 + 4].try_into().unwrap());
    }

    let mut working = state;
    for _ in 0..10 {
        // Column rounds.
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        // Diagonal rounds.
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }

    let mut out = [0u8; BLOCK_LEN];
    for i in 0..16 {
        let word = working[i].wrapping_add(state[i]);
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// XORs the ChaCha20 keystream (starting at `initial_counter`) into `data`
/// in place. Encryption and decryption are the same operation.
pub fn xor_stream(
    key: &[u8; KEY_LEN],
    initial_counter: u32,
    nonce: &[u8; NONCE_LEN],
    data: &mut [u8],
) {
    let mut counter = initial_counter;
    for chunk in data.chunks_mut(BLOCK_LEN) {
        let ks = block(key, counter, nonce);
        for (byte, k) in chunk.iter_mut().zip(ks.iter()) {
            *byte ^= k;
        }
        counter = counter.wrapping_add(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex(s: &str) -> Vec<u8> {
        let s: String = s.chars().filter(|c| !c.is_whitespace()).collect();
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // RFC 8439 §2.3.2 block function test vector.
    #[test]
    fn rfc8439_block() {
        let key: [u8; 32] =
            unhex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
                .try_into()
                .unwrap();
        let nonce: [u8; 12] = unhex("000000090000004a00000000").try_into().unwrap();
        let ks = block(&key, 1, &nonce);
        let expected = unhex(
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e",
        );
        assert_eq!(ks.to_vec(), expected);
    }

    // RFC 8439 §2.4.2 encryption test vector.
    #[test]
    fn rfc8439_encrypt() {
        let key: [u8; 32] =
            unhex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
                .try_into()
                .unwrap();
        let nonce: [u8; 12] = unhex("000000000000004a00000000").try_into().unwrap();
        let mut data = b"Ladies and Gentlemen of the class of '99: If I could offer you \
only one tip for the future, sunscreen would be it."
            .to_vec();
        xor_stream(&key, 1, &nonce, &mut data);
        let expected = unhex(
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b
             f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8
             07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736
             5af90bbf74a35be6b40b8eedf2785e42874d",
        );
        assert_eq!(data, expected);
    }

    #[test]
    fn xor_roundtrip() {
        let key = [7u8; 32];
        let nonce = [9u8; 12];
        let plaintext: Vec<u8> = (0..1000u32).map(|i| (i % 256) as u8).collect();
        let mut data = plaintext.clone();
        xor_stream(&key, 0, &nonce, &mut data);
        assert_ne!(data, plaintext);
        xor_stream(&key, 0, &nonce, &mut data);
        assert_eq!(data, plaintext);
    }

    #[test]
    fn counter_advances_across_blocks() {
        let key = [1u8; 32];
        let nonce = [2u8; 12];
        // Stream over 3 blocks equals blockwise XOR with counters 5,6,7.
        let mut data = vec![0u8; 192];
        xor_stream(&key, 5, &nonce, &mut data);
        for (i, b) in (5u32..8).enumerate() {
            assert_eq!(&data[i * 64..(i + 1) * 64], &block(&key, b, &nonce));
        }
    }
}
