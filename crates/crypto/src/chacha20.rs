//! The ChaCha20 stream cipher (RFC 8439 §2.3–2.4).
//!
//! The keystream generator is a **multi-block kernel**: on x86_64 the
//! 20-round permutation runs 4 blocks wide (SSE2, one block per 32-bit
//! lane) or 8 blocks wide (AVX2), dispatched at runtime by
//! [`crate::simd::level`] and overridable with `REX_KERNEL`. ChaCha20
//! is pure integer arithmetic, so every path produces bit-identical
//! keystream by construction; the RFC vectors and the kernel-parity
//! suite pin it anyway.

use crate::simd::{self, SimdLevel};

/// Key length in bytes.
pub const KEY_LEN: usize = 32;
/// Nonce length in bytes (IETF variant).
pub const NONCE_LEN: usize = 12;
/// Keystream block size in bytes.
pub const BLOCK_LEN: usize = 64;
/// Widest batch any kernel generates per call (AVX2: 8 blocks).
pub const MAX_WIDE_BLOCKS: usize = 8;

const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// The RFC 8439 initial state for (`key`, `counter`, `nonce`).
#[inline]
fn init_state(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN]) -> [u32; 16] {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&SIGMA);
    for i in 0..8 {
        state[4 + i] = u32::from_le_bytes(key[i * 4..i * 4 + 4].try_into().unwrap());
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes(nonce[i * 4..i * 4 + 4].try_into().unwrap());
    }
    state
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Computes one 64-byte keystream block for (`key`, `counter`, `nonce`)
/// — the scalar reference every wide kernel must match bit-for-bit.
#[must_use]
pub fn block(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN]) -> [u8; BLOCK_LEN] {
    let state = init_state(key, counter, nonce);

    let mut working = state;
    for _ in 0..10 {
        // Column rounds.
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        // Diagonal rounds.
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }

    let mut out = [0u8; BLOCK_LEN];
    for i in 0..16 {
        let word = working[i].wrapping_add(state[i]);
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// The x86_64 multi-block keystream kernels. One 32-bit lane per block:
/// all 16 state words live in vector registers, the counter word holds
/// lanes `counter + {0..width-1}`, and the 20 rounds run on every block
/// at once. Rotations are `slli | srli` pairs; everything is wrapping
/// integer arithmetic, so the output is bit-identical to [`block`].
#[cfg(target_arch = "x86_64")]
mod wide {
    use super::BLOCK_LEN;
    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::*;

    macro_rules! rotl128 {
        ($v:expr, $n:literal) => {
            _mm_or_si128(_mm_slli_epi32($v, $n), _mm_srli_epi32($v, 32 - $n))
        };
    }
    macro_rules! qr128 {
        ($v:ident, $a:literal, $b:literal, $c:literal, $d:literal) => {
            $v[$a] = _mm_add_epi32($v[$a], $v[$b]);
            $v[$d] = rotl128!(_mm_xor_si128($v[$d], $v[$a]), 16);
            $v[$c] = _mm_add_epi32($v[$c], $v[$d]);
            $v[$b] = rotl128!(_mm_xor_si128($v[$b], $v[$c]), 12);
            $v[$a] = _mm_add_epi32($v[$a], $v[$b]);
            $v[$d] = rotl128!(_mm_xor_si128($v[$d], $v[$a]), 8);
            $v[$c] = _mm_add_epi32($v[$c], $v[$d]);
            $v[$b] = rotl128!(_mm_xor_si128($v[$b], $v[$c]), 7);
        };
    }
    macro_rules! rotl256 {
        ($v:expr, $n:literal) => {
            _mm256_or_si256(_mm256_slli_epi32($v, $n), _mm256_srli_epi32($v, 32 - $n))
        };
    }
    macro_rules! qr256 {
        ($v:ident, $a:literal, $b:literal, $c:literal, $d:literal) => {
            $v[$a] = _mm256_add_epi32($v[$a], $v[$b]);
            $v[$d] = rotl256!(_mm256_xor_si256($v[$d], $v[$a]), 16);
            $v[$c] = _mm256_add_epi32($v[$c], $v[$d]);
            $v[$b] = rotl256!(_mm256_xor_si256($v[$b], $v[$c]), 12);
            $v[$a] = _mm256_add_epi32($v[$a], $v[$b]);
            $v[$d] = rotl256!(_mm256_xor_si256($v[$d], $v[$a]), 8);
            $v[$c] = _mm256_add_epi32($v[$c], $v[$d]);
            $v[$b] = rotl256!(_mm256_xor_si256($v[$b], $v[$c]), 7);
        };
    }

    macro_rules! double_round {
        ($qr:ident, $v:ident) => {
            // Column rounds.
            $qr!($v, 0, 4, 8, 12);
            $qr!($v, 1, 5, 9, 13);
            $qr!($v, 2, 6, 10, 14);
            $qr!($v, 3, 7, 11, 15);
            // Diagonal rounds.
            $qr!($v, 0, 5, 10, 15);
            $qr!($v, 1, 6, 11, 12);
            $qr!($v, 2, 7, 8, 13);
            $qr!($v, 3, 4, 9, 14);
        };
    }

    /// Writes 4 keystream blocks (counters `state[12] + {0,1,2,3}`) into
    /// `out[..256]`.
    ///
    /// # Safety
    /// SSE2 (baseline on x86_64).
    #[target_feature(enable = "sse2")]
    pub unsafe fn blocks4_sse2(state: &[u32; 16], out: &mut [u8]) {
        debug_assert!(out.len() >= 4 * BLOCK_LEN);
        let mut v = [_mm_setzero_si128(); 16];
        for (vi, &w) in v.iter_mut().zip(state.iter()) {
            *vi = _mm_set1_epi32(w as i32);
        }
        v[12] = _mm_add_epi32(v[12], _mm_set_epi32(3, 2, 1, 0));
        let init = v;
        for _ in 0..10 {
            double_round!(qr128, v);
        }
        let mut lanes = [0u32; 4];
        for (i, (&w, &s)) in v.iter().zip(init.iter()).enumerate() {
            let sum = _mm_add_epi32(w, s);
            _mm_storeu_si128(lanes.as_mut_ptr().cast::<__m128i>(), sum);
            for (b, &lane) in lanes.iter().enumerate() {
                out[b * BLOCK_LEN + i * 4..b * BLOCK_LEN + i * 4 + 4]
                    .copy_from_slice(&lane.to_le_bytes());
            }
        }
    }

    /// Writes 8 keystream blocks (counters `state[12] + {0..7}`) into
    /// `out[..512]`.
    ///
    /// # Safety
    /// Caller must have verified AVX2 support.
    #[target_feature(enable = "avx2")]
    pub unsafe fn blocks8_avx2(state: &[u32; 16], out: &mut [u8]) {
        debug_assert!(out.len() >= 8 * BLOCK_LEN);
        let mut v = [_mm256_setzero_si256(); 16];
        for (vi, &w) in v.iter_mut().zip(state.iter()) {
            *vi = _mm256_set1_epi32(w as i32);
        }
        v[12] = _mm256_add_epi32(v[12], _mm256_set_epi32(7, 6, 5, 4, 3, 2, 1, 0));
        let init = v;
        for _ in 0..10 {
            double_round!(qr256, v);
        }
        let mut lanes = [0u32; 8];
        for (i, (&w, &s)) in v.iter().zip(init.iter()).enumerate() {
            let sum = _mm256_add_epi32(w, s);
            _mm256_storeu_si256(lanes.as_mut_ptr().cast::<__m256i>(), sum);
            for (b, &lane) in lanes.iter().enumerate() {
                out[b * BLOCK_LEN + i * 4..b * BLOCK_LEN + i * 4 + 4]
                    .copy_from_slice(&lane.to_le_bytes());
            }
        }
    }
}

/// XORs the ChaCha20 keystream (starting at `initial_counter`) into `data`
/// in place, via the process-wide [`simd::level`] kernel. Encryption and
/// decryption are the same operation.
pub fn xor_stream(
    key: &[u8; KEY_LEN],
    initial_counter: u32,
    nonce: &[u8; NONCE_LEN],
    data: &mut [u8],
) {
    xor_stream_with(simd::level(), key, initial_counter, nonce, data);
}

/// [`xor_stream`] pinned to a specific dispatch level (bench/parity hook).
///
/// # Panics
/// When this host cannot execute `level`.
pub fn xor_stream_with(
    level: SimdLevel,
    key: &[u8; KEY_LEN],
    initial_counter: u32,
    nonce: &[u8; NONCE_LEN],
    data: &mut [u8],
) {
    assert!(
        level.is_available(),
        "simd level {} unavailable",
        level.name()
    );
    let mut counter = initial_counter;
    let mut off = 0usize;

    // Widths cascade: AVX2 drains 8-block batches, then (AVX2 implies
    // SSE2) a 4-block batch picks up a medium remainder, and the scalar
    // loop below finishes whatever is left. Every path emits the same
    // RFC keystream, so the split points are invisible in the output.
    #[cfg(target_arch = "x86_64")]
    {
        let mut ks = [0u8; MAX_WIDE_BLOCKS * BLOCK_LEN];
        let mut run_batches = |width: usize, off: &mut usize, counter: &mut u32| {
            let batch = width * BLOCK_LEN;
            while data.len() - *off >= batch {
                let state = init_state(key, *counter, nonce);
                // SAFETY: availability asserted above; `ks` holds
                // `width` blocks; AVX2 implies SSE2.
                unsafe {
                    match width {
                        8 => wide::blocks8_avx2(&state, &mut ks),
                        _ => wide::blocks4_sse2(&state, &mut ks[..batch]),
                    }
                }
                for (byte, k) in data[*off..*off + batch].iter_mut().zip(ks[..batch].iter()) {
                    *byte ^= k;
                }
                *counter = counter.wrapping_add(width as u32);
                *off += batch;
            }
        };
        if level == SimdLevel::Avx2 {
            run_batches(8, &mut off, &mut counter);
        }
        if level != SimdLevel::Scalar {
            run_batches(4, &mut off, &mut counter);
        }
    }

    for chunk in data[off..].chunks_mut(BLOCK_LEN) {
        let ks = block(key, counter, nonce);
        for (byte, k) in chunk.iter_mut().zip(ks.iter()) {
            *byte ^= k;
        }
        counter = counter.wrapping_add(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex(s: &str) -> Vec<u8> {
        let s: String = s.chars().filter(|c| !c.is_whitespace()).collect();
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // RFC 8439 §2.3.2 block function test vector.
    #[test]
    fn rfc8439_block() {
        let key: [u8; 32] =
            unhex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
                .try_into()
                .unwrap();
        let nonce: [u8; 12] = unhex("000000090000004a00000000").try_into().unwrap();
        let ks = block(&key, 1, &nonce);
        let expected = unhex(
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e",
        );
        assert_eq!(ks.to_vec(), expected);
    }

    // RFC 8439 §2.4.2 encryption test vector.
    #[test]
    fn rfc8439_encrypt() {
        let key: [u8; 32] =
            unhex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
                .try_into()
                .unwrap();
        let nonce: [u8; 12] = unhex("000000000000004a00000000").try_into().unwrap();
        let mut data = b"Ladies and Gentlemen of the class of '99: If I could offer you \
only one tip for the future, sunscreen would be it."
            .to_vec();
        xor_stream(&key, 1, &nonce, &mut data);
        let expected = unhex(
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b
             f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8
             07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736
             5af90bbf74a35be6b40b8eedf2785e42874d",
        );
        assert_eq!(data, expected);
    }

    #[test]
    fn xor_roundtrip() {
        let key = [7u8; 32];
        let nonce = [9u8; 12];
        let plaintext: Vec<u8> = (0..1000u32).map(|i| (i % 256) as u8).collect();
        let mut data = plaintext.clone();
        xor_stream(&key, 0, &nonce, &mut data);
        assert_ne!(data, plaintext);
        xor_stream(&key, 0, &nonce, &mut data);
        assert_eq!(data, plaintext);
    }

    // Every available kernel produces byte-identical streams, including
    // ragged lengths that exercise wide batches + scalar remainders and
    // counters that wrap through u32::MAX mid-batch.
    #[test]
    fn all_levels_agree_on_every_length() {
        let key = [0xa5u8; 32];
        let nonce = [0x5au8; 12];
        let lens = [0usize, 1, 63, 64, 65, 255, 256, 257, 511, 512, 513, 1000];
        for &counter in &[0u32, 1, u32::MAX - 2] {
            for &len in &lens {
                let mut reference: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
                let plain = reference.clone();
                xor_stream_with(SimdLevel::Scalar, &key, counter, &nonce, &mut reference);
                for l in simd::available_levels() {
                    let mut data = plain.clone();
                    xor_stream_with(l, &key, counter, &nonce, &mut data);
                    assert_eq!(
                        data,
                        reference,
                        "level {} len {len} ctr {counter}",
                        l.name()
                    );
                }
            }
        }
    }

    #[test]
    fn counter_advances_across_blocks() {
        let key = [1u8; 32];
        let nonce = [2u8; 12];
        // Stream over 3 blocks equals blockwise XOR with counters 5,6,7.
        let mut data = vec![0u8; 192];
        xor_stream(&key, 5, &nonce, &mut data);
        for (i, b) in (5u32..8).enumerate() {
            assert_eq!(&data[i * 64..(i + 1) * 64], &block(&key, b, &nonce));
        }
    }
}
