//! Property-based tests over the crypto primitives.

use proptest::prelude::*;
use rex_crypto::aead::NonceSequence;
use rex_crypto::{ChaCha20Poly1305, HmacSha256, Sha256, StaticSecret};

proptest! {
    #[test]
    fn sha256_incremental_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..2048), split in any::<prop::sample::Index>()) {
        let split = split.index(data.len() + 1);
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), Sha256::digest(&data));
    }

    #[test]
    fn aead_roundtrip(
        key in any::<[u8; 32]>(),
        nonce in any::<[u8; 12]>(),
        aad in proptest::collection::vec(any::<u8>(), 0..128),
        plaintext in proptest::collection::vec(any::<u8>(), 0..1024),
    ) {
        let cipher = ChaCha20Poly1305::new(&key);
        let sealed = cipher.seal(&nonce, &aad, &plaintext);
        prop_assert_eq!(sealed.len(), plaintext.len() + ChaCha20Poly1305::OVERHEAD);
        let opened = cipher.open(&nonce, &aad, &sealed).unwrap();
        prop_assert_eq!(opened, plaintext);
    }

    #[test]
    fn aead_rejects_bit_flips(
        key in any::<[u8; 32]>(),
        nonce in any::<[u8; 12]>(),
        plaintext in proptest::collection::vec(any::<u8>(), 1..256),
        flip_byte in any::<prop::sample::Index>(),
        flip_bit in 0u8..8,
    ) {
        let cipher = ChaCha20Poly1305::new(&key);
        let mut sealed = cipher.seal(&nonce, b"", &plaintext);
        let idx = flip_byte.index(sealed.len());
        sealed[idx] ^= 1 << flip_bit;
        prop_assert!(cipher.open(&nonce, b"", &sealed).is_err());
    }

    #[test]
    fn aead_wrong_key_rejected(
        key in any::<[u8; 32]>(),
        mut other in any::<[u8; 32]>(),
        nonce in any::<[u8; 12]>(),
        plaintext in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        if other == key { other[0] ^= 1; }
        let sealed = ChaCha20Poly1305::new(&key).seal(&nonce, b"", &plaintext);
        prop_assert!(ChaCha20Poly1305::new(&other).open(&nonce, b"", &sealed).is_err());
    }

    #[test]
    fn hmac_keys_separate(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let t1 = HmacSha256::mac(b"key-one", &data);
        let t2 = HmacSha256::mac(b"key-two", &data);
        prop_assert_ne!(t1, t2);
    }

    #[test]
    fn x25519_dh_commutes(a in any::<[u8; 32]>(), b in any::<[u8; 32]>()) {
        let sa = StaticSecret::from_bytes(a);
        let sb = StaticSecret::from_bytes(b);
        let s1 = sa.diffie_hellman(&sb.public_key()).unwrap();
        let s2 = sb.diffie_hellman(&sa.public_key()).unwrap();
        prop_assert_eq!(s1.as_bytes(), s2.as_bytes());
    }

    #[test]
    fn nonce_sequence_never_repeats(n in 1usize..512) {
        let mut seq = NonceSequence::new(0);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..n {
            prop_assert!(seen.insert(seq.next()));
        }
    }
}
