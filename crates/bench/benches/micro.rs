//! Criterion microbenches over the substrates: crypto, attestation,
//! model training/merging, codecs, topology generation, and the
//! `Transport` backends.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rex_core::config::{GossipAlgorithm, ProtocolConfig, SharingMode};
use rex_crypto::{ChaCha20Poly1305, Sha256, StaticSecret};
use rex_data::{Rating, SyntheticConfig};
use rex_ml::{MfHyperParams, MfModel, Model};
use rex_net::codec::{decode_plain, encode_plain};
use rex_net::message::Plain;
use rex_tee::attestation::Attestor;
use rex_tee::measurement::REX_ENCLAVE_V1;
use rex_tee::{DcapService, SgxCostModel, SgxPlatform};
use rex_topology::{erdos_renyi, small_world};

fn bench_crypto(c: &mut Criterion) {
    let mut group = c.benchmark_group("crypto");
    for size in [1_024usize, 65_536] {
        let data = vec![0xA5u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("sha256", size), &data, |b, d| {
            b.iter(|| Sha256::digest(d));
        });
        let cipher = ChaCha20Poly1305::new(&[7u8; 32]);
        let nonce = [1u8; 12];
        group.bench_with_input(BenchmarkId::new("aead_seal", size), &data, |b, d| {
            b.iter(|| cipher.seal(&nonce, b"", d));
        });
        let sealed = cipher.seal(&nonce, b"", &data);
        group.bench_with_input(BenchmarkId::new("aead_open", size), &sealed, |b, s| {
            b.iter(|| cipher.open(&nonce, b"", s).unwrap());
        });
    }
    group.finish();

    c.bench_function("crypto/x25519_dh", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        let a = StaticSecret::random(&mut rng);
        let p = StaticSecret::random(&mut rng).public_key();
        b.iter(|| a.diffie_hellman(&p).unwrap());
    });
}

fn bench_attestation(c: &mut Criterion) {
    c.bench_function("tee/mutual_attestation", |b| {
        let dcap = DcapService::new();
        let mut rng = StdRng::seed_from_u64(2);
        let p1 = SgxPlatform::provision(1, &dcap, &mut rng);
        let p2 = SgxPlatform::provision(2, &dcap, &mut rng);
        b.iter(|| {
            let e1 = p1.create_enclave(REX_ENCLAVE_V1, SgxCostModel::default());
            let e2 = p2.create_enclave(REX_ENCLAVE_V1, SgxCostModel::default());
            let mut e1 = e1;
            let mut e2 = e2;
            let a1 = Attestor::new(&mut rng);
            let a2 = Attestor::new(&mut rng);
            let q1 = p1.quote_report(&e1.create_report(a1.user_data())).unwrap();
            let q2 = p2.quote_report(&e2.create_report(a2.user_data())).unwrap();
            let hello = Attestor::hello(q1.clone());
            let (reply, sb) = a2.respond(&e2, &dcap, q2, &hello).unwrap();
            let sa = a1.finish(&e1, &dcap, &q1, &reply).unwrap();
            (sa, sb)
        });
    });
}

fn bench_kernels(c: &mut Criterion) {
    // The SIMD kernel layer, per dispatch level: the MF hot-path float
    // primitives at the paper's embedding scale and the 4/8-block-wide
    // ChaCha20 keystream behind share sealing.
    use rex_crypto::chacha20;
    use rex_ml::kernel;

    let k = 32usize;
    let a: Vec<f32> = (0..k).map(|i| (i as f32 - 16.0) * 0.031).collect();
    let b_vec: Vec<f32> = (0..k).map(|i| (i as f32 - 7.0) * 0.017).collect();

    let mut group = c.benchmark_group("kernel/dot_k32");
    for level in kernel::available_levels() {
        group.bench_function(level.name(), |bch| {
            bch.iter(|| kernel::dot_with(level, &a, &b_vec));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("kernel/axpy_k32");
    for level in kernel::available_levels() {
        group.bench_function(level.name(), |bch| {
            let mut y = b_vec.clone();
            bch.iter(|| kernel::axpy_with(level, 0.37, &a, &mut y));
        });
    }
    group.finish();

    // 4 blocks = 256 bytes: the smallest batch the SSE2 wide kernel
    // runs whole, so every level prices the same work.
    let mut group = c.benchmark_group("kernel/chacha20_4block");
    group.throughput(Throughput::Bytes(4 * chacha20::BLOCK_LEN as u64));
    for level in rex_crypto::simd::available_levels() {
        group.bench_function(level.name(), |bch| {
            let key = [7u8; 32];
            let nonce = [9u8; 12];
            let mut buf = vec![0u8; 4 * chacha20::BLOCK_LEN];
            bch.iter(|| chacha20::xor_stream_with(level, &key, 1, &nonce, &mut buf));
        });
    }
    group.finish();
}

fn mf_training_set() -> Vec<Rating> {
    SyntheticConfig {
        num_users: 200,
        num_items: 2_000,
        num_ratings: 20_000,
        seed: 3,
        ..SyntheticConfig::default()
    }
    .generate()
    .ratings
}

fn bench_mf(c: &mut Criterion) {
    let data = mf_training_set();
    c.bench_function("mf/epoch_300_steps", |b| {
        let mut model = MfModel::new(200, 2_000, MfHyperParams::default(), 3.5, 0);
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| model.train_steps(&data, 300, &mut rng));
    });

    c.bench_function("mf/serialize", |b| {
        let model = MfModel::new(200, 2_000, MfHyperParams::default(), 3.5, 0);
        b.iter(|| model.to_bytes());
    });

    let mut group = c.benchmark_group("mf/merge");
    for neighbors in [1usize, 8, 30] {
        group.bench_with_input(
            BenchmarkId::from_parameter(neighbors),
            &neighbors,
            |b, &n| {
                let mut rng = StdRng::seed_from_u64(5);
                let data = mf_training_set();
                let mut local = MfModel::new(200, 2_000, MfHyperParams::default(), 3.5, 0);
                local.train_steps(&data, 500, &mut rng);
                let alien: Vec<MfModel> = (0..n)
                    .map(|i| {
                        let mut m =
                            MfModel::new(200, 2_000, MfHyperParams::default(), 3.5, i as u64);
                        m.train_steps(&data, 200, &mut rng);
                        m
                    })
                    .collect();
                let w = 1.0 / (n + 1) as f64;
                b.iter(|| {
                    let mut target = local.clone();
                    let contributions: Vec<(f64, &MfModel)> =
                        alien.iter().map(|m| (w, m)).collect();
                    target.merge(&contributions, w);
                    target
                });
            },
        );
    }
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let ratings: Vec<Rating> = (0..300)
        .map(|i| Rating {
            user: i,
            item: i * 7,
            value: 3.5,
        })
        .collect();
    let plain = Plain::RawData { ratings, degree: 6 };
    c.bench_function("codec/encode_300_triplets", |b| {
        b.iter(|| encode_plain(&plain));
    });
    let bytes = encode_plain(&plain);
    c.bench_function("codec/decode_300_triplets", |b| {
        b.iter(|| decode_plain(&bytes).unwrap());
    });
}

fn bench_transport(c: &mut Criterion) {
    // Encode + send + recv roundtrip through each Transport backend, per
    // payload size — the baseline for backend work (batching, zero-copy).
    // The TCP variant includes the delivery barrier (flush), so it prices
    // a *guaranteed-delivered* roundtrip through the kernel's TCP stack.
    use rex_net::channel::ChannelTransport;
    use rex_net::mem::MemNetwork;
    use rex_net::tcp::TcpTransport;
    use rex_net::transport::Transport;

    let mut group = c.benchmark_group("transport_roundtrip");
    for size in [256usize, 4_096, 65_536] {
        let plain = Plain::Model {
            bytes: vec![0xA5u8; size],
            degree: 8,
        };
        let encoded_len = encode_plain(&plain).len() as u64;
        group.throughput(Throughput::Bytes(encoded_len));
        group.bench_with_input(BenchmarkId::new("mem", size), &plain, |b, p| {
            let mut net = MemNetwork::new(2);
            b.iter(|| {
                let bytes = encode_plain(p);
                Transport::send(&mut net, 0, 1, bytes);
                Transport::recv(&mut net, 1)
            });
        });
        group.bench_with_input(BenchmarkId::new("channel", size), &plain, |b, p| {
            let mut net = ChannelTransport::new(2);
            b.iter(|| {
                let bytes = encode_plain(p);
                Transport::send(&mut net, 0, 1, bytes);
                Transport::recv(&mut net, 1)
            });
        });
        group.bench_with_input(BenchmarkId::new("tcp", size), &plain, |b, p| {
            let mut net = TcpTransport::loopback(2).expect("loopback fabric");
            b.iter(|| {
                let bytes = encode_plain(p);
                Transport::send(&mut net, 0, 1, bytes);
                net.flush();
                Transport::recv(&mut net, 1)
            });
        });
    }
    group.finish();
}

fn bench_store(c: &mut Criterion) {
    // RawDataStore::append_batch is the merge stage's hot path: every
    // epoch each node appends all neighbor shares in one call. Priced
    // flat (arrival-order Vec, single reserve) and sharded (plus the
    // per-user row index maintenance).
    use rex_core::store::RawDataStore;
    use rex_data::UserBlock;

    let mut group = c.benchmark_group("store/append_batch");
    for batch_size in [64usize, 1_024, 16_384] {
        let batch: Vec<Rating> = (0..batch_size)
            .map(|i| Rating {
                user: (i % 256) as u32,
                item: (i * 13 % 4_096) as u32,
                value: 3.5,
            })
            .collect();
        group.throughput(Throughput::Elements(batch_size as u64));
        group.bench_with_input(BenchmarkId::new("flat", batch_size), &batch, |b, batch| {
            b.iter(|| {
                let mut store = RawDataStore::new();
                store.append_batch(batch);
                store
            });
        });
        group.bench_with_input(
            BenchmarkId::new("sharded_256u", batch_size),
            &batch,
            |b, batch| {
                b.iter(|| {
                    let mut store =
                        RawDataStore::with_shard(UserBlock { start: 0, end: 256 }, Vec::new());
                    store.append_batch(batch);
                    store
                });
            },
        );
    }
    group.finish();
}

fn bench_topology(c: &mut Criterion) {
    c.bench_function("topology/small_world_610", |b| {
        b.iter(|| small_world(610, 6, 0.03, 1));
    });
    c.bench_function("topology/erdos_renyi_610", |b| {
        b.iter(|| erdos_renyi(610, 0.05, 1));
    });
}

fn bench_protocol_epoch(c: &mut Criterion) {
    // One full node epoch (merge+train+share+test), REX vs MS, as the
    // headline end-to-end microbenchmark.
    let mut group = c.benchmark_group("node_epoch");
    group.sample_size(20);
    for (name, sharing) in [("rex", SharingMode::RawData), ("ms", SharingMode::Model)] {
        group.bench_function(name, |b| {
            let ds = SyntheticConfig {
                num_users: 64,
                num_items: 800,
                num_ratings: 8_000,
                seed: 9,
                ..SyntheticConfig::default()
            }
            .generate();
            let split = rex_data::TrainTestSplit::standard(&ds, 1);
            let part = rex_data::Partition::multi_user(&split, 8);
            let graph = rex_topology::TopologySpec::FullyConnected.build(8, 0);
            let nodes = rex_core::builder::build_mf_nodes(
                &part,
                &graph,
                64,
                800,
                MfHyperParams::default(),
                ProtocolConfig {
                    sharing,
                    algorithm: GossipAlgorithm::DPsgd,
                    points_per_epoch: 300,
                    steps_per_epoch: 300,
                    seed: 1,
                    ..ProtocolConfig::default()
                },
                rex_core::builder::NodeSeeds::default(),
            );
            let mut node = nodes.into_iter().next().unwrap();
            b.iter(|| node.epoch(Vec::new()));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_crypto,
    bench_attestation,
    bench_kernels,
    bench_mf,
    bench_codec,
    bench_transport,
    bench_store,
    bench_topology,
    bench_protocol_epoch
);
criterion_main!(benches);
