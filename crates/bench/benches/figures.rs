//! `cargo bench` figure regenerator: runs a trimmed version of every paper
//! table/figure so a single `cargo bench --workspace` exercises the whole
//! evaluation. For presentation-quality runs use the dedicated binaries
//! (`cargo run -p rex-bench --release --bin fig1 [--full]`, ...).

use rex_bench::args::BenchArgs;
use rex_bench::dnn_experiments::{run_fig5, DnnScale};
use rex_bench::mf_experiments::{run_panel, MfScale, FOUR_PANELS};
use rex_bench::output;
use rex_bench::sgx_experiments::{overhead_row, run_arm, Arm, SgxScale};
use rex_core::config::{ExecutionMode, GossipAlgorithm, SharingMode};
use rex_sim::report::{overhead_table_markdown, speedup_row, speedup_table_markdown};

fn bench_args(epochs: usize, nodes: usize) -> BenchArgs {
    BenchArgs {
        epochs: Some(epochs),
        nodes: Some(nodes),
        ..BenchArgs::default()
    }
}

fn main() {
    // Criterion-compatible CLI hygiene: `cargo bench` passes `--bench`.
    println!("== REX figure regeneration (bench-sized) ==\n");

    // Figs 1 & 2 + Table II: one node per user, all four panels.
    let scale = MfScale::one_user_quick(&bench_args(40, 32));
    let mut rows = Vec::new();
    let mut traces = Vec::new();
    for (label, algorithm, topology) in FOUR_PANELS {
        eprintln!("[figs 1-2] {label}");
        let (rex, ms) = run_panel(&scale, label, algorithm, topology, ExecutionMode::Native);
        if let Some(row) = speedup_row(label, &rex, &ms) {
            rows.push(row);
        }
        traces.push(rex);
        traces.push(ms);
    }
    println!(
        "Table II (bench scale):\n{}",
        speedup_table_markdown(&rows, "s")
    );
    let refs: Vec<&_> = traces.iter().collect();
    output::save_traces("bench_fig1_fig2", &refs);

    // Fig 4 + Table III: multiple users per node.
    let scale = MfScale::multi_user_quick(&bench_args(40, 12));
    let mut rows = Vec::new();
    for (label, algorithm, topology) in FOUR_PANELS {
        eprintln!("[fig 4] {label}");
        let (rex, ms) = run_panel(&scale, label, algorithm, topology, ExecutionMode::Native);
        if let Some(row) = speedup_row(label, &rex, &ms) {
            rows.push(row);
        }
    }
    println!(
        "Table III (bench scale):\n{}",
        speedup_table_markdown(&rows, "s")
    );

    // Fig 5: DNN arms.
    let scale = DnnScale {
        epochs: 8,
        ..DnnScale::quick(&bench_args(8, 8))
    };
    let dnn_traces = run_fig5(&scale);
    println!("Fig 5 (bench scale):");
    for t in &dnn_traces {
        output::print_trace_summary(t);
    }

    // Figs 6-7 + Table IV: SGX vs native on 8 threaded nodes.
    let mut rows = Vec::new();
    for (scale, tag) in [
        (SgxScale::fig6_quick(&bench_args(8, 8)), "small"),
        (SgxScale::fig7_quick(&bench_args(6, 8)), "beyond-EPC"),
    ] {
        for algorithm in [GossipAlgorithm::Rmw, GossipAlgorithm::DPsgd] {
            for sharing in [SharingMode::RawData, SharingMode::Model] {
                let label = format!(
                    "{}, {} ({tag})",
                    algorithm.label(),
                    if sharing == SharingMode::RawData {
                        "REX"
                    } else {
                        "MS"
                    }
                );
                eprintln!("[figs 6-7] {label}");
                let native = run_arm(
                    &scale,
                    Arm {
                        algorithm,
                        sharing,
                        sgx: false,
                    },
                );
                let sgx = run_arm(
                    &scale,
                    Arm {
                        algorithm,
                        sharing,
                        sgx: true,
                    },
                );
                rows.push(overhead_row(&label, &sgx, &native));
            }
        }
    }
    println!(
        "Table IV (bench scale):\n{}",
        overhead_table_markdown(&rows)
    );

    println!("== figure regeneration done ==");
}
