//! Matrix-factorization experiment harness (Figs 1–4, Tables II–III).

use crate::args::BenchArgs;
use rex_core::builder::{build_mf_nodes, NodeSeeds};
use rex_core::centralized::run_baseline as run_centralized_baseline;
use rex_core::config::{ExecutionMode, GossipAlgorithm, ProtocolConfig, SharingMode};
use rex_core::node::Node;
use rex_core::runner::{run, Backend, SimulationConfig};
use rex_data::{Partition, SyntheticConfig, TrainTestSplit};
use rex_ml::{MfHyperParams, MfModel};
use rex_sim::trace::ExperimentTrace;
use rex_topology::TopologySpec;

/// Scale of an MF experiment.
#[derive(Debug, Clone)]
pub struct MfScale {
    /// Users in the synthetic dataset.
    pub num_users: u32,
    /// Items.
    pub num_items: u32,
    /// Total ratings.
    pub num_ratings: usize,
    /// `None` = one node per user (§IV-B-a); `Some(n)` = cohorts (§IV-B-b).
    pub multi_node: Option<usize>,
    /// Epoch budget.
    pub epochs: usize,
    /// Raw points shared per epoch (paper: 300).
    pub points_per_epoch: usize,
    /// SGD steps per epoch (fixed, §III-E).
    pub steps_per_epoch: usize,
    /// Embedding dimension (paper: 10).
    pub k: usize,
    /// Base seed.
    pub seed: u64,
}

impl MfScale {
    /// Quick one-node-per-user scale: 64 users, same density as
    /// MovieLens-latest, sized for single-core CI machines.
    #[must_use]
    pub fn one_user_quick(args: &BenchArgs) -> Self {
        let users = args.nodes.unwrap_or(64) as u32;
        MfScale {
            num_users: users,
            num_items: 2_000,
            num_ratings: (users as usize) * 164, // ML-latest's ratings/user
            multi_node: None,
            epochs: args.epochs.unwrap_or(100),
            points_per_epoch: 300,
            steps_per_epoch: 300,
            k: 10,
            seed: args.seed,
        }
    }

    /// Paper scale: 610 users, 9 000 items, 100 k ratings (Table I).
    #[must_use]
    pub fn one_user_full(args: &BenchArgs) -> Self {
        MfScale {
            num_users: 610,
            num_items: 9_000,
            num_ratings: 100_000,
            multi_node: None,
            epochs: args.epochs.unwrap_or(400),
            points_per_epoch: 300,
            steps_per_epoch: 300,
            k: 10,
            seed: args.seed,
        }
    }

    /// Quick multi-user scale (fig4): users spread over 24 nodes.
    #[must_use]
    pub fn multi_user_quick(args: &BenchArgs) -> Self {
        MfScale {
            multi_node: Some(args.nodes.unwrap_or(24)),
            epochs: args.epochs.unwrap_or(80),
            ..Self::one_user_quick(&BenchArgs {
                nodes: None,
                ..args.clone()
            })
        }
    }

    /// Paper multi-user scale: 610 users over 50 nodes.
    #[must_use]
    pub fn multi_user_full(args: &BenchArgs) -> Self {
        MfScale {
            multi_node: Some(args.nodes.unwrap_or(50)),
            epochs: args.epochs.unwrap_or(200),
            ..Self::one_user_full(args)
        }
    }

    /// Node count implied by this scale.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.multi_node.unwrap_or(self.num_users as usize)
    }

    fn dataset_config(&self) -> SyntheticConfig {
        SyntheticConfig {
            num_users: self.num_users,
            num_items: self.num_items,
            num_ratings: self.num_ratings,
            seed: self.seed,
            ..SyntheticConfig::default()
        }
    }

    fn hyper_params(&self) -> MfHyperParams {
        MfHyperParams {
            k: self.k,
            ..MfHyperParams::default()
        }
    }
}

/// The paper's four panels, in Fig 1 order.
pub const FOUR_PANELS: [(&str, GossipAlgorithm, TopologySpec); 4] = [
    ("RMW, SW", GossipAlgorithm::Rmw, TopologySpec::SmallWorld),
    ("RMW, ER", GossipAlgorithm::Rmw, TopologySpec::ErdosRenyi),
    (
        "D-PSGD, SW",
        GossipAlgorithm::DPsgd,
        TopologySpec::SmallWorld,
    ),
    (
        "D-PSGD, ER",
        GossipAlgorithm::DPsgd,
        TopologySpec::ErdosRenyi,
    ),
];

/// Builds the node fleet for one (sharing, algorithm, topology) arm.
#[must_use]
pub fn build_fleet(
    scale: &MfScale,
    topology: TopologySpec,
    sharing: SharingMode,
    algorithm: GossipAlgorithm,
) -> Vec<Node<MfModel>> {
    let dataset = scale.dataset_config().generate();
    let split = TrainTestSplit::standard(&dataset, scale.seed ^ 0x5917);
    let partition = match scale.multi_node {
        None => Partition::one_user_per_node(&split),
        Some(n) => Partition::multi_user(&split, n),
    };
    let graph = topology.build(partition.num_nodes(), scale.seed ^ 0x7090);
    build_mf_nodes(
        &partition,
        &graph,
        dataset.num_users,
        dataset.num_items,
        scale.hyper_params(),
        ProtocolConfig {
            sharing,
            algorithm,
            points_per_epoch: scale.points_per_epoch,
            steps_per_epoch: scale.steps_per_epoch,
            seed: scale.seed ^ 0x0DE5,
            ..ProtocolConfig::default()
        },
        NodeSeeds::default(),
    )
}

/// Runs one panel (REX + MS arms) and returns `(rex, ms)` traces.
pub fn run_panel(
    scale: &MfScale,
    label: &str,
    algorithm: GossipAlgorithm,
    topology: TopologySpec,
    execution: ExecutionMode,
) -> (ExperimentTrace, ExperimentTrace) {
    let sim = Backend::Simulated(SimulationConfig {
        epochs: scale.epochs,
        execution,
        parallel: true,
        ..Default::default()
    });
    let mut rex_nodes = build_fleet(scale, topology, SharingMode::RawData, algorithm);
    let rex = run(&sim, &format!("REX, {label}"), &mut rex_nodes);
    drop(rex_nodes);
    let mut ms_nodes = build_fleet(scale, topology, SharingMode::Model, algorithm);
    let ms = run(&sim, &format!("MS, {label}"), &mut ms_nodes);
    (rex.trace, ms.trace)
}

/// Runs the centralized baseline at this scale.
pub fn run_baseline(scale: &MfScale) -> ExperimentTrace {
    let dataset = scale.dataset_config().generate();
    let split = TrainTestSplit::standard(&dataset, scale.seed ^ 0x5917);
    let mut model = MfModel::new(
        dataset.num_users,
        dataset.num_items,
        scale.hyper_params(),
        dataset.mean_rating() as f32,
        NodeSeeds::default().model_init,
    );
    run_centralized_baseline(
        "Centralized",
        &mut model,
        &split.train,
        &split.test,
        split.train.len(),
        scale.epochs.min(60),
        scale.seed ^ 0xCE47,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> MfScale {
        MfScale {
            num_users: 16,
            num_items: 100,
            num_ratings: 1_200,
            multi_node: None,
            epochs: 6,
            points_per_epoch: 50,
            steps_per_epoch: 100,
            k: 5,
            seed: 1,
        }
    }

    #[test]
    fn fleet_matches_scale() {
        let nodes = build_fleet(
            &tiny_scale(),
            TopologySpec::Ring,
            SharingMode::RawData,
            GossipAlgorithm::Rmw,
        );
        assert_eq!(nodes.len(), 16);
    }

    #[test]
    fn panel_produces_both_arms() {
        let (rex, ms) = run_panel(
            &tiny_scale(),
            "RMW, SW",
            GossipAlgorithm::Rmw,
            TopologySpec::Ring,
            ExecutionMode::Native,
        );
        assert_eq!(rex.records.len(), 6);
        assert_eq!(ms.records.len(), 6);
        assert!(rex.name.starts_with("REX"));
        assert!(ms.name.starts_with("MS"));
        assert!(ms.total_bytes_per_node() > rex.total_bytes_per_node());
    }

    #[test]
    fn quick_scales_match_args() {
        let args = BenchArgs {
            epochs: Some(33),
            nodes: Some(64),
            ..Default::default()
        };
        let s = MfScale::one_user_quick(&args);
        assert_eq!(s.epochs, 33);
        assert_eq!(s.num_users, 64);
        assert_eq!(s.node_count(), 64);
        let m = MfScale::multi_user_quick(&args);
        assert_eq!(m.node_count(), 64);
        let f = MfScale::one_user_full(&BenchArgs::default());
        assert_eq!(
            (f.num_users, f.num_items, f.num_ratings),
            (610, 9_000, 100_000)
        );
    }
}
