//! Minimal CLI parsing shared by the bench binaries (no external parser:
//! two flags and two overrides).

/// Parsed command-line options.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Run the paper-scale configuration instead of the quick one.
    pub full: bool,
    /// Run real-thread arms over the TCP loopback transport instead of
    /// in-process channels (where the binary supports it).
    pub tcp: bool,
    /// Override the epoch budget.
    pub epochs: Option<usize>,
    /// Override the node count (where meaningful).
    pub nodes: Option<usize>,
    /// Base seed.
    pub seed: u64,
    /// Compare against a committed baseline JSON and exit non-zero on
    /// regression (where the binary supports it — see `bench_transport`).
    pub check_baseline: Option<String>,
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs {
            full: false,
            tcp: false,
            epochs: None,
            nodes: None,
            seed: 0xBE7C,
            check_baseline: None,
        }
    }
}

impl BenchArgs {
    /// Parses `std::env::args()`; exits with usage on unknown flags.
    #[must_use]
    pub fn parse() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parses from an iterator (testable).
    pub fn from_args<I: IntoIterator<Item = String>>(iter: I) -> Self {
        let mut out = BenchArgs::default();
        let mut iter = iter.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--full" => out.full = true,
                // Quick is the default; the flag exists so CI jobs can
                // spell the mode they mean.
                "--quick" => out.full = false,
                "--tcp" => out.tcp = true,
                "--epochs" => {
                    out.epochs = Some(
                        iter.next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| usage("--epochs needs a number")),
                    );
                }
                "--nodes" => {
                    out.nodes = Some(
                        iter.next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| usage("--nodes needs a number")),
                    );
                }
                "--seed" => {
                    out.seed = iter
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--seed needs a number"));
                }
                "--check-baseline" => {
                    out.check_baseline = Some(
                        iter.next()
                            .unwrap_or_else(|| usage("--check-baseline needs a path")),
                    );
                }
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown flag {other}")),
            }
        }
        out
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: <bench> [--full | --quick] [--tcp] [--epochs N] [--nodes N] [--seed N] \
         [--check-baseline PATH]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> BenchArgs {
        BenchArgs::from_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]);
        assert!(!a.full);
        assert!(a.epochs.is_none());
        assert!(!parse(&["--quick"]).full);
        assert!(!parse(&["--full", "--quick"]).full, "last flag wins");
    }

    #[test]
    fn flags() {
        let a = parse(&[
            "--full",
            "--tcp",
            "--epochs",
            "42",
            "--nodes",
            "16",
            "--seed",
            "9",
            "--check-baseline",
            "results/BENCH_transport.json",
        ]);
        assert!(a.full);
        assert!(a.tcp);
        assert_eq!(a.epochs, Some(42));
        assert_eq!(a.nodes, Some(16));
        assert_eq!(a.seed, 9);
        assert_eq!(
            a.check_baseline.as_deref(),
            Some("results/BENCH_transport.json")
        );
    }
}
