//! DNN experiment harness (Fig 5: 50 nodes, multiple users per node,
//! D-PSGD, small-world and Erdős–Rényi).

use crate::args::BenchArgs;
use rex_core::builder::{build_dnn_nodes, NodeSeeds};
use rex_core::config::{ExecutionMode, GossipAlgorithm, ProtocolConfig, SharingMode};
use rex_core::runner::{run, Backend, SimulationConfig};
use rex_data::{Partition, SyntheticConfig, TrainTestSplit};
use rex_ml::dnn::DnnHyperParams;
use rex_sim::trace::ExperimentTrace;
use rex_topology::TopologySpec;

/// Scale of the DNN experiment.
#[derive(Debug, Clone)]
pub struct DnnScale {
    /// Users in the dataset.
    pub num_users: u32,
    /// Items.
    pub num_items: u32,
    /// Ratings.
    pub num_ratings: usize,
    /// Node count (users are spread in cohorts, 12–13 each in the paper).
    pub nodes: usize,
    /// Epoch budget.
    pub epochs: usize,
    /// Raw points shared per epoch (paper: 40).
    pub points_per_epoch: usize,
    /// Minibatch steps per epoch.
    pub steps_per_epoch: usize,
    /// Base seed.
    pub seed: u64,
}

impl DnnScale {
    /// Quick: 80 users over 16 nodes, sized for single-core CI machines.
    #[must_use]
    pub fn quick(args: &BenchArgs) -> Self {
        let nodes = args.nodes.unwrap_or(16);
        DnnScale {
            num_users: 80,
            num_items: 1_200,
            num_ratings: 13_000,
            nodes,
            epochs: args.epochs.unwrap_or(30),
            points_per_epoch: 40,
            steps_per_epoch: 4,
            seed: args.seed,
        }
    }

    /// Paper scale: 610 users over 50 nodes, MovieLens-latest shape.
    #[must_use]
    pub fn full(args: &BenchArgs) -> Self {
        DnnScale {
            num_users: 610,
            num_items: 9_000,
            num_ratings: 100_000,
            nodes: args.nodes.unwrap_or(50),
            epochs: args.epochs.unwrap_or(80),
            points_per_epoch: 40,
            steps_per_epoch: 8,
            seed: args.seed,
        }
    }
}

/// Runs one (topology, sharing) arm with D-PSGD (the paper's DNN scheme).
pub fn run_dnn_arm(
    scale: &DnnScale,
    topology: TopologySpec,
    sharing: SharingMode,
) -> ExperimentTrace {
    let dataset = SyntheticConfig {
        num_users: scale.num_users,
        num_items: scale.num_items,
        num_ratings: scale.num_ratings,
        seed: scale.seed,
        ..SyntheticConfig::default()
    }
    .generate();
    let split = TrainTestSplit::standard(&dataset, scale.seed ^ 0x0D22);
    let partition = Partition::multi_user(&split, scale.nodes);
    let graph = topology.build(scale.nodes, scale.seed ^ 0x0777);
    let mut nodes = build_dnn_nodes(
        &partition,
        &graph,
        dataset.num_users,
        dataset.num_items,
        DnnHyperParams::default(),
        ProtocolConfig {
            sharing,
            algorithm: GossipAlgorithm::DPsgd,
            points_per_epoch: scale.points_per_epoch,
            steps_per_epoch: scale.steps_per_epoch,
            seed: scale.seed ^ 0x0883,
            ..ProtocolConfig::default()
        },
        NodeSeeds::default(),
    );
    let name = format!("{}, D-PSGD, {}", sharing.label(), topology.label());
    run(
        &Backend::Simulated(SimulationConfig {
            epochs: scale.epochs,
            execution: ExecutionMode::Native,
            parallel: true,
            ..Default::default()
        }),
        &name,
        &mut nodes,
    )
    .trace
}

/// Runs all four Fig 5 arms: {SW, ER} × {REX, MS}.
pub fn run_fig5(scale: &DnnScale) -> Vec<ExperimentTrace> {
    let mut out = Vec::with_capacity(4);
    for topology in [TopologySpec::SmallWorld, TopologySpec::ErdosRenyi] {
        for sharing in [SharingMode::RawData, SharingMode::Model] {
            eprintln!("[fig5] running {} {}", topology.label(), sharing.label());
            out.push(run_dnn_arm(scale, topology, sharing));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_dnn_arm_runs() {
        let scale = DnnScale {
            num_users: 24,
            num_items: 100,
            num_ratings: 1_500,
            nodes: 6,
            epochs: 3,
            points_per_epoch: 20,
            steps_per_epoch: 2,
            seed: 5,
        };
        let trace = run_dnn_arm(&scale, TopologySpec::Ring, SharingMode::RawData);
        assert_eq!(trace.records.len(), 3);
        assert!(trace.final_rmse().unwrap().is_finite());
    }
}
