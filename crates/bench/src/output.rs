//! Result emission: CSVs under `results/`, markdown to stdout.

use rex_sim::trace::ExperimentTrace;
use std::path::PathBuf;

/// Directory where bench binaries drop their CSVs (workspace-relative).
#[must_use]
pub fn results_dir() -> PathBuf {
    // Walk up from the executable's cwd to find the workspace root
    // (identified by DESIGN.md); fall back to cwd.
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("DESIGN.md").exists() {
            return dir.join("results");
        }
        if !dir.pop() {
            return PathBuf::from("results");
        }
    }
}

/// Writes `content` under `results/<name>`, creating the directory.
pub fn save(name: &str, content: &str) -> std::io::Result<PathBuf> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(name);
    std::fs::write(&path, content)?;
    Ok(path)
}

/// Saves traces as `results/<name>.csv` and reports the path on stdout.
pub fn save_traces(name: &str, traces: &[&ExperimentTrace]) {
    let csv = rex_sim::report::traces_to_csv(traces);
    match save(&format!("{name}.csv"), &csv) {
        Ok(path) => println!("[saved] {}", path.display()),
        Err(e) => eprintln!("[warn] could not save {name}.csv: {e}"),
    }
}

/// Prints a one-line summary of a trace.
pub fn print_trace_summary(t: &ExperimentTrace) {
    let bytes = t.total_bytes_per_node();
    println!(
        "  {:<28} epochs={:<4} time={:>9.2}s final_rmse={:.4} bytes/node={}",
        t.name,
        t.records.len(),
        t.duration_secs(),
        t.final_rmse().unwrap_or(f64::NAN),
        human_bytes(bytes),
    );
}

/// Human-readable byte count.
#[must_use]
pub fn human_bytes(b: f64) -> String {
    if b >= 1024.0 * 1024.0 * 1024.0 {
        format!("{:.2} GiB", b / (1024.0 * 1024.0 * 1024.0))
    } else if b >= 1024.0 * 1024.0 {
        format!("{:.2} MiB", b / (1024.0 * 1024.0))
    } else if b >= 1024.0 {
        format!("{:.2} KiB", b / 1024.0)
    } else {
        format!("{b:.0} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(512.0), "512 B");
        assert_eq!(human_bytes(2048.0), "2.00 KiB");
        assert_eq!(human_bytes(3.0 * 1024.0 * 1024.0), "3.00 MiB");
        assert_eq!(human_bytes(1.5 * 1024.0 * 1024.0 * 1024.0), "1.50 GiB");
    }

    #[test]
    fn results_dir_finds_workspace() {
        let dir = results_dir();
        assert!(dir.ends_with("results"));
    }
}
