//! Transport microbenchmark with machine-readable output: times a
//! guaranteed-delivered roundtrip (encode → send → flush → recv)
//! through every `Transport` backend and writes
//! `results/BENCH_transport.json` — the artifact CI uploads on every run
//! to track the perf trajectory of the wire path.
//!
//! Quick mode (default) keeps total runtime around a second; `--full`
//! measures longer. `ns_per_roundtrip` is a mean over the measured
//! iterations; the TCP row includes the wire barrier, i.e. it prices real
//! kernel socket delivery, not just an enqueue.

use rex_bench::{output, BenchArgs};
use rex_net::channel::ChannelTransport;
use rex_net::codec::encode_plain;
use rex_net::mem::MemNetwork;
use rex_net::message::Plain;
use rex_net::tcp::TcpTransport;
use rex_net::transport::Transport;
use std::time::Instant;

const PAYLOAD_SIZES: [usize; 3] = [256, 4_096, 65_536];

struct Row {
    backend: &'static str,
    payload_bytes: usize,
    encoded_bytes: usize,
    iters: u64,
    ns_per_roundtrip: f64,
    mib_per_sec: f64,
}

/// Times `roundtrip` adaptively: warm up once, then size the iteration
/// count to fill `window_ms`.
fn measure(window_ms: u64, mut roundtrip: impl FnMut()) -> (u64, f64) {
    let probe = Instant::now();
    roundtrip();
    let once_ns = probe.elapsed().as_nanos().max(1) as u64;
    let iters = (window_ms * 1_000_000 / once_ns).clamp(10, 200_000);
    let start = Instant::now();
    for _ in 0..iters {
        roundtrip();
    }
    let total = start.elapsed().as_nanos() as f64;
    (iters, total / iters as f64)
}

fn bench_backend(
    backend: &'static str,
    window_ms: u64,
    plain: &Plain,
    payload_bytes: usize,
    mut net: impl Transport,
    flush: bool,
) -> Row {
    let encoded_bytes = encode_plain(plain).len();
    let (iters, ns) = measure(window_ms, || {
        let bytes = encode_plain(plain);
        net.send(0, 1, bytes);
        if flush {
            net.flush();
        }
        let got = net.recv(1);
        assert!(!got.is_empty(), "{backend}: roundtrip lost the message");
    });
    Row {
        backend,
        payload_bytes,
        encoded_bytes,
        iters,
        ns_per_roundtrip: ns,
        mib_per_sec: encoded_bytes as f64 / (1024.0 * 1024.0) / (ns / 1e9),
    }
}

fn json_escape_free(rows: &[Row], mode: &str) -> String {
    // Hand-rolled JSON: fixed schema, no strings that need escaping.
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"bench\": \"transport_roundtrip\",\n  \"mode\": \"{mode}\",\n"
    ));
    out.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"backend\": \"{}\", \"payload_bytes\": {}, \"encoded_bytes\": {}, \"iters\": {}, \"ns_per_roundtrip\": {:.1}, \"mib_per_sec\": {:.2}}}{}\n",
            r.backend,
            r.payload_bytes,
            r.encoded_bytes,
            r.iters,
            r.ns_per_roundtrip,
            r.mib_per_sec,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args = BenchArgs::parse();
    let window_ms = if args.full { 500 } else { 60 };
    let mode = if args.full { "full" } else { "quick" };

    let mut rows = Vec::new();
    for size in PAYLOAD_SIZES {
        let plain = Plain::Model {
            bytes: vec![0xA5u8; size],
            degree: 8,
        };
        rows.push(bench_backend(
            "mem",
            window_ms,
            &plain,
            size,
            MemNetwork::new(2),
            false,
        ));
        rows.push(bench_backend(
            "channel",
            window_ms,
            &plain,
            size,
            ChannelTransport::new(2),
            false,
        ));
        rows.push(bench_backend(
            "tcp",
            window_ms,
            &plain,
            size,
            TcpTransport::loopback(2).expect("loopback fabric"),
            true,
        ));
    }

    println!("transport roundtrip ({mode} mode):");
    for r in &rows {
        println!(
            "  {:<8} {:>7} B payload: {:>10.0} ns/rt  {:>9.2} MiB/s",
            r.backend, r.payload_bytes, r.ns_per_roundtrip, r.mib_per_sec
        );
    }

    let json = json_escape_free(&rows, mode);
    match output::save("BENCH_transport.json", &json) {
        Ok(path) => println!("[saved] {}", path.display()),
        Err(e) => {
            eprintln!("could not save BENCH_transport.json: {e}");
            std::process::exit(1);
        }
    }
}
