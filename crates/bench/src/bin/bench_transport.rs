//! Transport microbenchmark with machine-readable output: times a
//! guaranteed-delivered roundtrip (encode → send → flush → recv)
//! through every `Transport` backend and writes
//! `results/BENCH_transport.json` — the artifact CI uploads on every run
//! to track the perf trajectory of the wire path.
//!
//! Quick mode (default) keeps total runtime around a second; `--full`
//! measures longer. `ns_per_roundtrip` is a mean over the measured
//! iterations; the TCP row includes the wire barrier, i.e. it prices real
//! kernel socket delivery, not just an enqueue.
//!
//! A second section sweeps the fault-injection layer over the TCP
//! backend: drop rate vs. per-cycle cost and realized delivery
//! fraction, so CI tracks both the wrapper's overhead (the 0-rate row
//! vs. the plain TCP row) and its behaviour under loss.
//!
//! A third section prices connection *scale* on a star fabric: one hub
//! endpoint fans in a full epoch of frames from 64–512 spokes through a
//! single poller thread, so CI tracks the reactor's per-connection cost
//! at the fan-ins the paper's 610-node deployments imply.
//!
//! `--check-baseline <path>` compares this run's `tcp_mem_ratio_256`
//! (TCP roundtrip cost over the in-memory backend's, 256 B payload —
//! a machine-speed-independent gauge of wire-path overhead) against a
//! committed baseline JSON and exits non-zero when it regressed more
//! than 25%.

use rex_bench::{output, BenchArgs};
use rex_net::channel::ChannelTransport;
use rex_net::codec::encode_plain;
use rex_net::fault::{FaultPlan, FaultyTransport, LinkFaults};
use rex_net::mem::MemNetwork;
use rex_net::message::Plain;
use rex_net::tcp::TcpTransport;
use rex_net::transport::Transport;
use std::time::Instant;

const PAYLOAD_SIZES: [usize; 4] = [256, 4_096, 65_536, 262_144];
const STAR_FAN_INS: [usize; 3] = [64, 256, 512];
/// Fail `--check-baseline` when `tcp_mem_ratio_256` regresses by more
/// than this factor over the committed run.
const BASELINE_TOLERANCE: f64 = 1.25;

struct Row {
    backend: &'static str,
    payload_bytes: usize,
    encoded_bytes: usize,
    iters: u64,
    ns_per_roundtrip: f64,
    mib_per_sec: f64,
}

/// Times `roundtrip` adaptively: warm up once, then size the iteration
/// count to fill `window_ms`.
fn measure(window_ms: u64, mut roundtrip: impl FnMut()) -> (u64, f64) {
    let probe = Instant::now();
    roundtrip();
    let once_ns = probe.elapsed().as_nanos().max(1) as u64;
    let iters = (window_ms * 1_000_000 / once_ns).clamp(10, 200_000);
    let start = Instant::now();
    for _ in 0..iters {
        roundtrip();
    }
    let total = start.elapsed().as_nanos() as f64;
    (iters, total / iters as f64)
}

fn bench_backend(
    backend: &'static str,
    window_ms: u64,
    plain: &Plain,
    payload_bytes: usize,
    mut net: impl Transport,
    flush: bool,
) -> Row {
    let encoded_bytes = encode_plain(plain).len();
    let (iters, ns) = measure(window_ms, || {
        let bytes = encode_plain(plain);
        net.send(0, 1, bytes);
        if flush {
            net.flush();
        }
        let got = net.recv(1);
        assert!(!got.is_empty(), "{backend}: roundtrip lost the message");
    });
    Row {
        backend,
        payload_bytes,
        encoded_bytes,
        iters,
        ns_per_roundtrip: ns,
        mib_per_sec: encoded_bytes as f64 / (1024.0 * 1024.0) / (ns / 1e9),
    }
}

/// One row of the drop-rate sweep over the fault-wrapped TCP backend.
struct FaultRow {
    drop_rate: f64,
    iters: u64,
    ns_per_cycle: f64,
    delivered_fraction: f64,
}

/// Times `send → flush (wire barrier) → recv` cycles through
/// `FaultyTransport<TcpTransport>` at the given drop rate, counting how
/// many messages actually came out the far end.
fn bench_fault_sweep(window_ms: u64, payload: usize) -> Vec<FaultRow> {
    [0.0, 0.1, 0.3, 0.5]
        .into_iter()
        .map(|drop_rate| {
            let plan = FaultPlan::uniform(0xBE9C, LinkFaults::drop_rate(drop_rate));
            let mut net =
                FaultyTransport::new(TcpTransport::loopback(2).expect("loopback fabric"), plan);
            net.epoch_begin(0);
            let plain = Plain::Model {
                bytes: vec![0x5Au8; payload],
                degree: 8,
            };
            let (iters, ns) = measure(window_ms, || {
                let bytes = encode_plain(&plain);
                net.send(0, 1, bytes);
                net.flush();
                // Drain so the mailbox stays bounded; the realized
                // fraction comes from the delivery counters below, which
                // also cover the warm-up probe's send.
                net.recv(1);
            });
            let counts = net.take_delivery();
            let attempts = counts.delivered + counts.dropped;
            FaultRow {
                drop_rate,
                iters,
                ns_per_cycle: ns,
                delivered_fraction: counts.delivered as f64 / attempts.max(1) as f64,
            }
        })
        .collect()
}

/// One row of the connection-scale arm: a full fan-in epoch on a star
/// fabric (`peers` spokes each deliver one 256 B frame to the hub, all
/// links flush, the hub drains).
struct ScaleRow {
    peers: usize,
    iters: u64,
    ns_per_epoch: f64,
    ns_per_message: f64,
}

fn bench_conn_scale(window_ms: u64) -> Vec<ScaleRow> {
    STAR_FAN_INS
        .into_iter()
        .map(|peers| {
            let mut net = TcpTransport::star(peers + 1).expect("star fabric");
            net.epoch_begin(0);
            let plain = Plain::Model {
                bytes: vec![0xA5u8; PAYLOAD_SIZES[0]],
                degree: 8,
            };
            let bytes = encode_plain(&plain);
            let (iters, ns) = measure(window_ms, || {
                for spoke in 1..=peers {
                    net.send(spoke, 0, bytes.clone());
                }
                net.flush();
                let got = net.recv(0);
                assert_eq!(got.len(), peers, "star fan-in lost frames");
            });
            ScaleRow {
                peers,
                iters,
                ns_per_epoch: ns,
                ns_per_message: ns / peers as f64,
            }
        })
        .collect()
}

/// Extracts `"tcp_mem_ratio_256": <number>` from a baseline JSON without
/// a JSON parser (fixed schema, written by this binary).
fn parse_baseline_ratio(text: &str) -> Option<f64> {
    let key = "\"tcp_mem_ratio_256\":";
    let rest = &text[text.find(key)? + key.len()..];
    let end = rest.find(['}', ',', '\n'])?;
    rest[..end].trim().parse().ok()
}

fn json_escape_free(
    rows: &[Row],
    fault_rows: &[FaultRow],
    scale_rows: &[ScaleRow],
    tcp_mem_ratio_256: f64,
    mode: &str,
) -> String {
    // Hand-rolled JSON: fixed schema, no strings that need escaping.
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"bench\": \"transport_roundtrip\",\n  \"mode\": \"{mode}\",\n"
    ));
    out.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"backend\": \"{}\", \"payload_bytes\": {}, \"encoded_bytes\": {}, \"iters\": {}, \"ns_per_roundtrip\": {:.1}, \"mib_per_sec\": {:.2}}}{}\n",
            r.backend,
            r.payload_bytes,
            r.encoded_bytes,
            r.iters,
            r.ns_per_roundtrip,
            r.mib_per_sec,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n  \"fault_sweep\": [\n");
    for (i, r) in fault_rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"backend\": \"tcp+fault\", \"drop_rate\": {:.2}, \"iters\": {}, \"ns_per_cycle\": {:.1}, \"delivered_fraction\": {:.4}}}{}\n",
            r.drop_rate,
            r.iters,
            r.ns_per_cycle,
            r.delivered_fraction,
            if i + 1 < fault_rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n  \"conn_scale\": [\n");
    for (i, r) in scale_rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"backend\": \"tcp-star\", \"peers\": {}, \"iters\": {}, \"ns_per_epoch\": {:.1}, \"ns_per_message\": {:.1}}}{}\n",
            r.peers,
            r.iters,
            r.ns_per_epoch,
            r.ns_per_message,
            if i + 1 < scale_rows.len() { "," } else { "" },
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"summary\": {{\"tcp_mem_ratio_256\": {tcp_mem_ratio_256:.2}}}\n}}\n"
    ));
    out
}

fn main() {
    let args = BenchArgs::parse();
    let window_ms = if args.full { 500 } else { 60 };
    let mode = if args.full { "full" } else { "quick" };

    let mut rows = Vec::new();
    for size in PAYLOAD_SIZES {
        let plain = Plain::Model {
            bytes: vec![0xA5u8; size],
            degree: 8,
        };
        rows.push(bench_backend(
            "mem",
            window_ms,
            &plain,
            size,
            MemNetwork::new(2),
            false,
        ));
        rows.push(bench_backend(
            "channel",
            window_ms,
            &plain,
            size,
            ChannelTransport::new(2),
            false,
        ));
        rows.push(bench_backend(
            "tcp",
            window_ms,
            &plain,
            size,
            TcpTransport::loopback(2).expect("loopback fabric"),
            true,
        ));
    }

    println!("transport roundtrip ({mode} mode):");
    for r in &rows {
        println!(
            "  {:<8} {:>7} B payload: {:>10.0} ns/rt  {:>9.2} MiB/s",
            r.backend, r.payload_bytes, r.ns_per_roundtrip, r.mib_per_sec
        );
    }

    let fault_rows = bench_fault_sweep(window_ms, PAYLOAD_SIZES[0]);
    println!("fault-injected tcp sweep ({} B payload):", PAYLOAD_SIZES[0]);
    for r in &fault_rows {
        println!(
            "  drop {:>4.2}: {:>10.0} ns/cycle  delivered {:>6.2}%",
            r.drop_rate,
            r.ns_per_cycle,
            100.0 * r.delivered_fraction
        );
    }

    let scale_rows = bench_conn_scale(window_ms);
    println!(
        "connection-scale star fan-in ({} B payload):",
        PAYLOAD_SIZES[0]
    );
    for r in &scale_rows {
        println!(
            "  {:>4} peers: {:>12.0} ns/epoch  {:>8.0} ns/message",
            r.peers, r.ns_per_epoch, r.ns_per_message
        );
    }

    let ns_at = |backend: &str| {
        rows.iter()
            .find(|r| r.backend == backend && r.payload_bytes == PAYLOAD_SIZES[0])
            .expect("sweep covers every backend at 256 B")
            .ns_per_roundtrip
    };
    let tcp_mem_ratio_256 = ns_at("tcp") / ns_at("mem");
    println!("summary: tcp/mem roundtrip ratio at 256 B = {tcp_mem_ratio_256:.2}");

    // Read the baseline *before* saving: the committed baseline is
    // usually the same results/ file this run is about to overwrite.
    let baseline = args.check_baseline.as_ref().map(|path| {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("could not read baseline {path}: {e}");
            std::process::exit(1);
        });
        parse_baseline_ratio(&text).unwrap_or_else(|| {
            eprintln!("baseline {path} has no tcp_mem_ratio_256 summary");
            std::process::exit(1);
        })
    });

    let json = json_escape_free(&rows, &fault_rows, &scale_rows, tcp_mem_ratio_256, mode);
    match output::save("BENCH_transport.json", &json) {
        Ok(path) => println!("[saved] {}", path.display()),
        Err(e) => {
            eprintln!("could not save BENCH_transport.json: {e}");
            std::process::exit(1);
        }
    }

    if let Some(baseline) = baseline {
        let ceiling = baseline * BASELINE_TOLERANCE;
        if tcp_mem_ratio_256 > ceiling {
            eprintln!(
                "REGRESSION: tcp_mem_ratio_256 = {tcp_mem_ratio_256:.2} exceeds \
                 {ceiling:.2} (baseline {baseline:.2} x {BASELINE_TOLERANCE})"
            );
            std::process::exit(1);
        }
        println!(
            "baseline check: {tcp_mem_ratio_256:.2} within {ceiling:.2} \
             (baseline {baseline:.2} x {BASELINE_TOLERANCE})"
        );
    }
}
