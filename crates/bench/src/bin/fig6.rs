//! Fig 6 — SGX vs native, 8 fully connected nodes, MF, low memory usage:
//! (a) per-stage breakdown, (b) RAM + network per epoch,
//! (c)/(d) convergence for native/SGX arms.

use rex_bench::sgx_experiments::{all_arms, mean_epoch_secs, run_arm, SgxScale};
use rex_bench::{output, BenchArgs};
use rex_sim::report::stage_breakdown_markdown;

fn main() {
    let args = BenchArgs::parse();
    let scale = if args.full {
        SgxScale::fig6_full(&args)
    } else {
        SgxScale::fig6_quick(&args)
    };
    println!(
        "Fig 6: SGX vs native (low memory). {} users, {} ratings, 8 nodes, {} epochs",
        scale.num_users, scale.num_ratings, scale.epochs
    );

    let mut results = Vec::new();
    for arm in all_arms() {
        eprintln!("[fig6] arm {}", arm.label());
        results.push((arm, run_arm(&scale, arm)));
    }

    println!("\n(a) Stage breakdown (mean per epoch):");
    let rows: Vec<(String, _)> = results
        .iter()
        .map(|(arm, r)| (arm.label(), r.trace.mean_stage_times()))
        .collect();
    println!("{}", stage_breakdown_markdown(&rows));

    println!("(b) RAM and network volume:");
    for (arm, r) in &results {
        let per_epoch = r.trace.total_bytes_per_node() / r.trace.records.len() as f64;
        println!(
            "  {:<22} RAM {:>10}   {:>12}/epoch   mean epoch {:>8.2} ms",
            arm.label(),
            output::human_bytes(r.trace.peak_ram_bytes()),
            output::human_bytes(per_epoch),
            mean_epoch_secs(r) * 1e3,
        );
    }

    println!("\n(c)(d) Convergence:");
    for (_, r) in &results {
        output::print_trace_summary(&r.trace);
    }

    let traces: Vec<&_> = results.iter().map(|(_, r)| &r.trace).collect();
    output::save_traces("fig6", &traces);
}
