//! Ablation: EPC budget sweep. Holds the workload fixed and shrinks the
//! usable EPC, charting how the SGX overhead of model sharing versus REX
//! responds — the mechanism behind Fig 7 / Table IV's beyond-EPC rows.

use rex_bench::sgx_experiments::{mean_epoch_secs, run_arm, Arm, SgxScale};
use rex_bench::{output, BenchArgs};
use rex_core::config::{GossipAlgorithm, SharingMode};
use rex_tee::SgxCostModel;

fn main() {
    let args = BenchArgs::parse();
    let base = SgxScale {
        epochs: args.epochs.unwrap_or(12),
        ..SgxScale::fig7_quick(&args)
    };

    println!(
        "EPC budget sweep ({} users, {} ratings, 8 nodes, D-PSGD)\n",
        base.num_users, base.num_ratings
    );

    // Native reference times.
    let native_rex = run_arm(
        &base,
        Arm {
            algorithm: GossipAlgorithm::DPsgd,
            sharing: SharingMode::RawData,
            sgx: false,
        },
    );
    let native_ms = run_arm(
        &base,
        Arm {
            algorithm: GossipAlgorithm::DPsgd,
            sharing: SharingMode::Model,
            sgx: false,
        },
    );
    let t_rex = mean_epoch_secs(&native_rex);
    let t_ms = mean_epoch_secs(&native_ms);

    println!(
        "{:>12} {:>16} {:>16}",
        "EPC budget", "REX overhead %", "MS overhead %"
    );
    let unlimited = SgxCostModel::default().epc_limit_bytes;
    for epc in [unlimited, 16 << 20, 8 << 20, 4 << 20, 2 << 20, 1 << 20] {
        let mut scale = base.clone();
        scale.epc_limit_bytes = epc;
        let sgx_rex = run_arm(
            &scale,
            Arm {
                algorithm: GossipAlgorithm::DPsgd,
                sharing: SharingMode::RawData,
                sgx: true,
            },
        );
        let sgx_ms = run_arm(
            &scale,
            Arm {
                algorithm: GossipAlgorithm::DPsgd,
                sharing: SharingMode::Model,
                sgx: true,
            },
        );
        let o_rex = (mean_epoch_secs(&sgx_rex) / t_rex - 1.0) * 100.0;
        let o_ms = (mean_epoch_secs(&sgx_ms) / t_ms - 1.0) * 100.0;
        println!(
            "{:>12} {:>15.1}% {:>15.1}%",
            output::human_bytes(epc as f64),
            o_rex,
            o_ms
        );
    }
    println!(
        "\nExpected shape: both flat while everything fits; MS (large\n\
         resident set: neighbour models + buffers) blows up first as the\n\
         budget shrinks; REX's small footprint keeps it cheap longest."
    );
}
