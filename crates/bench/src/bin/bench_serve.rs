//! Online-serving benchmark with machine-readable output: times top-k
//! queries through the pruned/blocked `Scorer` against the final model
//! of a small decentralized training run, idle and **while training
//! continues next door**, and writes `results/BENCH_serve.json` — the
//! artifact CI uploads to track the serve path's latency trajectory.
//!
//! Two arms mirror the paper's sharing modes: the served model comes
//! from a raw-data-sharing (REX) fleet and from a model-sharing fleet.
//! Each arm is measured twice:
//!
//! * **idle** — the model is frozen; queries hit a warm norm cache;
//! * **concurrent** — a trainer thread keeps running
//!   `train_steps_batched` rounds and swapping fresh model snapshots
//!   into the serving slot, so every adoption invalidates the scorer's
//!   block cache and the query pays the rebuild — the deployed
//!   node-serving regime under live training.
//!
//! Reported per (arm, regime): queries answered, qps, and p50/p99
//! latency. The summary key is `p99_ratio_concurrent` — the worst
//! arm's p99 under training over its idle p99, a machine-speed-
//! independent gauge of how much live training costs the tail.
//!
//! `--check-baseline <path>` compares this run's ratio against a
//! committed baseline JSON and exits non-zero when it regressed more
//! than 25%.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rex_bench::{output, BenchArgs};
use rex_core::builder::{build_mf_nodes, NodeSeeds};
use rex_core::config::{ExecutionMode, GossipAlgorithm, ProtocolConfig, SharingMode};
use rex_core::engine::{Driver, Engine, EngineConfig, TimeAxis};
use rex_core::serve::{QueryStream, Scorer};
use rex_data::{Partition, Rating, SyntheticConfig, TrainTestSplit};
use rex_ml::{MfHyperParams, MfModel, Model};
use rex_net::mem::MemNetwork;
use rex_topology::TopologySpec;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Fail `--check-baseline` when `p99_ratio_concurrent` regresses by
/// more than this factor over the committed run.
const BASELINE_TOLERANCE: f64 = 1.25;
/// The paper's recommendation-list length.
const TOP_K: usize = 10;
/// Steps per trainer round between snapshot publications.
const TRAIN_ROUND_STEPS: usize = 50;
/// Windows measured per (arm, regime); the best (lowest-p99) window is
/// reported. Scheduling hiccups only ever inflate a tail, so taking the
/// best window filters OS noise while a real serve-path regression —
/// systematic, present in every window — still shows.
const WINDOW_REPS: usize = 3;

struct Arm {
    name: &'static str,
    sharing: SharingMode,
}

/// One measured regime of one arm.
struct Row {
    arm: &'static str,
    training: bool,
    queries: u64,
    qps: f64,
    p50_ns: u64,
    p99_ns: u64,
}

/// Trains a small fleet under the given sharing mode and returns node
/// 0's final model plus the training ratings (the trainer thread's
/// fuel) and the user-universe size for the query stream.
fn train_arm(sharing: SharingMode, epochs: usize) -> (MfModel, Vec<Rating>, u32) {
    let n = 8;
    let ds = SyntheticConfig {
        num_users: 64,
        num_items: 1024,
        num_ratings: 6_000,
        seed: 42,
        ..SyntheticConfig::default()
    }
    .generate();
    let split = TrainTestSplit::standard(&ds, 7);
    let part = Partition::multi_user(&split, n);
    let graph = TopologySpec::SmallWorld.build(n, 5);
    let mut nodes = build_mf_nodes(
        &part,
        &graph,
        ds.num_users,
        ds.num_items,
        MfHyperParams::default(),
        ProtocolConfig {
            sharing,
            algorithm: GossipAlgorithm::DPsgd,
            points_per_epoch: 40,
            steps_per_epoch: 100,
            seed: 17,
            ..ProtocolConfig::default()
        },
        NodeSeeds::default(),
    );
    Engine::<MfModel, MemNetwork>::new(
        MemNetwork::new(n),
        EngineConfig {
            epochs,
            execution: ExecutionMode::Native,
            time: TimeAxis::Simulated(Default::default()),
            driver: Driver::Lockstep { parallel: true },
            processes_per_platform: 1,
            seed: 0xE0,
            faults: None,
            membership: None,
        },
    )
    .run("serve-train", &mut nodes);
    let train = split.train;
    (nodes[0].model().clone(), train, ds.num_users)
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// Measures one serving window: a seeded query stream against the model
/// in `slot`, adopting whatever snapshot the trainer last published
/// (idle runs never see a swap). Returns per-query latencies.
fn serve_window(
    arm: &'static str,
    training: bool,
    window: Duration,
    model: &MfModel,
    data: &[Rating],
    num_users: u32,
) -> Row {
    let slot = Arc::new(Mutex::new(Arc::new(model.clone())));
    let stop = Arc::new(AtomicBool::new(false));
    let trainer = training.then(|| {
        let slot = Arc::clone(&slot);
        let stop = Arc::clone(&stop);
        let mut m = model.clone();
        let data = data.to_vec();
        std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(0x7EA1);
            let mut rounds = 0u64;
            while !stop.load(Ordering::Relaxed) {
                m.train_steps_batched(&data, TRAIN_ROUND_STEPS, &mut rng);
                *slot.lock().expect("slot poisoned") = Arc::new(m.clone());
                rounds += 1;
            }
            rounds
        })
    });

    let mut scorer = Scorer::default();
    let mut stream = QueryStream::new(0x5E37, num_users, TOP_K);
    let mut latencies: Vec<u64> = Vec::with_capacity(4096);
    let mut served_items = 0usize;
    let start = Instant::now();
    while start.elapsed() < window && latencies.len() < 500_000 {
        let q = stream.next_query();
        let t = Instant::now();
        let snapshot = Arc::clone(&slot.lock().expect("slot poisoned"));
        let top = scorer.top_k(&snapshot, &q, &[]);
        latencies.push(t.elapsed().as_nanos() as u64);
        served_items += top.len();
    }
    let elapsed = start.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);
    if let Some(handle) = trainer {
        let rounds = handle.join().expect("trainer thread panicked");
        assert!(rounds > 0, "{arm}: trainer thread never published");
    }
    assert_eq!(
        served_items,
        latencies.len() * TOP_K,
        "{arm}: short result lists"
    );

    latencies.sort_unstable();
    Row {
        arm,
        training,
        queries: latencies.len() as u64,
        qps: latencies.len() as f64 / elapsed,
        p50_ns: percentile(&latencies, 0.50),
        p99_ns: percentile(&latencies, 0.99),
    }
}

/// Extracts `"p99_ratio_concurrent": <number>` from a baseline JSON
/// without a JSON parser (fixed schema, written by this binary).
fn parse_baseline_ratio(text: &str) -> Option<f64> {
    let key = "\"p99_ratio_concurrent\":";
    let rest = &text[text.find(key)? + key.len()..];
    let end = rest.find(['}', ',', '\n'])?;
    rest[..end].trim().parse().ok()
}

fn render_json(rows: &[Row], ratio: f64, mode: &str) -> String {
    // Hand-rolled JSON: fixed schema, no strings that need escaping.
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"bench\": \"serve_topk\",\n  \"mode\": \"{mode}\",\n  \"top_k\": {TOP_K},\n"
    ));
    out.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"arm\": \"{}\", \"training\": {}, \"queries\": {}, \"qps\": {:.1}, \"p50_ns\": {}, \"p99_ns\": {}}}{}\n",
            r.arm,
            r.training,
            r.queries,
            r.qps,
            r.p50_ns,
            r.p99_ns,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"summary\": {{\"p99_ratio_concurrent\": {ratio:.2}}}\n}}\n"
    ));
    out
}

fn main() {
    let args = BenchArgs::parse();
    let mode = if args.full { "full" } else { "quick" };
    let window = Duration::from_millis(if args.full { 2_000 } else { 800 });
    let epochs = args.epochs.unwrap_or(if args.full { 6 } else { 3 });

    let arms = [
        Arm {
            name: "raw",
            sharing: SharingMode::RawData,
        },
        Arm {
            name: "model",
            sharing: SharingMode::Model,
        },
    ];

    let mut rows = Vec::new();
    for arm in &arms {
        eprintln!("[bench_serve] training {} arm ({epochs} epochs)", arm.name);
        let (model, data, num_users) = train_arm(arm.sharing, epochs);
        for training in [false, true] {
            let best = (0..WINDOW_REPS)
                .map(|_| serve_window(arm.name, training, window, &model, &data, num_users))
                .min_by_key(|r| r.p99_ns)
                .expect("WINDOW_REPS > 0");
            rows.push(best);
        }
    }

    println!("top-{TOP_K} serving ({mode} mode, {window:?} windows):");
    for r in &rows {
        println!(
            "  {:<6} {:<10} {:>9.0} qps  p50 {:>8} ns  p99 {:>8} ns  ({} queries)",
            r.arm,
            if r.training { "training" } else { "idle" },
            r.qps,
            r.p50_ns,
            r.p99_ns,
            r.queries
        );
    }

    // Worst arm's p99 under concurrent training over its idle p99: how
    // much the live-training regime costs the latency tail, independent
    // of absolute machine speed.
    let ratio_for = |arm: &str| {
        let p99 = |training: bool| {
            rows.iter()
                .find(|r| r.arm == arm && r.training == training)
                .expect("both regimes measured per arm")
                .p99_ns as f64
        };
        p99(true) / p99(false).max(1.0)
    };
    let p99_ratio_concurrent = arms.iter().map(|a| ratio_for(a.name)).fold(0.0, f64::max);
    println!("summary: worst concurrent/idle p99 ratio = {p99_ratio_concurrent:.2}");

    // Read the baseline *before* saving: the committed baseline is
    // usually the same results/ file this run is about to overwrite.
    let baseline = args.check_baseline.as_ref().map(|path| {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("could not read baseline {path}: {e}");
            std::process::exit(1);
        });
        parse_baseline_ratio(&text).unwrap_or_else(|| {
            eprintln!("baseline {path} has no p99_ratio_concurrent summary");
            std::process::exit(1);
        })
    });

    let json = render_json(&rows, p99_ratio_concurrent, mode);
    match output::save("BENCH_serve.json", &json) {
        Ok(path) => println!("[saved] {}", path.display()),
        Err(e) => {
            eprintln!("could not save BENCH_serve.json: {e}");
            std::process::exit(1);
        }
    }

    if let Some(baseline) = baseline {
        let ceiling = baseline * BASELINE_TOLERANCE;
        if p99_ratio_concurrent > ceiling {
            eprintln!(
                "REGRESSION: p99_ratio_concurrent = {p99_ratio_concurrent:.2} exceeds \
                 {ceiling:.2} (baseline {baseline:.2} x {BASELINE_TOLERANCE})"
            );
            std::process::exit(1);
        }
        println!(
            "baseline check: {p99_ratio_concurrent:.2} within {ceiling:.2} \
             (baseline {baseline:.2} x {BASELINE_TOLERANCE})"
        );
    }
}
