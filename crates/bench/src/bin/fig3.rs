//! Fig 3 — Effect of the feature-vector (embedding) size k ∈ {10..50} for
//! D-PSGD on a small world: RMSE vs epoch, RMSE vs time, and data volume
//! per round, for MS (row 1) and REX (row 2).
//!
//! Expected shape: MS network load grows linearly in k at little
//! convergence benefit; REX's load is k-independent.

use rex_bench::mf_experiments::{build_fleet, MfScale};
use rex_bench::{output, BenchArgs};
use rex_core::config::{ExecutionMode, GossipAlgorithm, SharingMode};
use rex_core::runner::{run, Backend, SimulationConfig};
use rex_topology::TopologySpec;

fn main() {
    let args = BenchArgs::parse();
    let mut scale = if args.full {
        MfScale::one_user_full(&args)
    } else {
        MfScale::one_user_quick(&args)
    };
    // The paper fixes 400 epochs for this sweep; quick mode trims it.
    scale.epochs = args.epochs.unwrap_or(if args.full { 400 } else { 60 });
    println!(
        "Fig 3: embedding-size sweep, D-PSGD, SW. {} nodes, {} epochs",
        scale.node_count(),
        scale.epochs
    );

    let sim = Backend::Simulated(SimulationConfig {
        epochs: scale.epochs,
        execution: ExecutionMode::Native,
        parallel: true,
        ..Default::default()
    });

    let mut traces = Vec::new();
    for sharing in [SharingMode::Model, SharingMode::RawData] {
        for k in [10usize, 20, 30, 40, 50] {
            let mut k_scale = scale.clone();
            k_scale.k = k;
            eprintln!("[fig3] {} k={k}", sharing.label());
            let mut nodes = build_fleet(
                &k_scale,
                TopologySpec::SmallWorld,
                sharing,
                GossipAlgorithm::DPsgd,
            );
            let name = format!("{}, D-PSGD, SW, k={k}", sharing.label());
            traces.push(run(&sim, &name, &mut nodes).trace);
        }
    }

    println!("\nPer-round data volume and final quality:");
    for t in &traces {
        let per_round = t.total_bytes_per_node() / t.records.len() as f64;
        println!(
            "  {:<26} bytes/round {:>12}   final RMSE {:.4}   duration {:>8.2}s",
            t.name,
            output::human_bytes(per_round),
            t.final_rmse().unwrap_or(f64::NAN),
            t.duration_secs()
        );
    }
    // Headline check: MS row grows ~linearly with k; REX row is flat.
    let ms_10 = traces[0].total_bytes_per_node();
    let ms_50 = traces[4].total_bytes_per_node();
    let rex_10 = traces[5].total_bytes_per_node();
    let rex_50 = traces[9].total_bytes_per_node();
    println!(
        "\nMS volume k=50 / k=10: {:.2}x (paper: ~4.6x, linear in k)",
        ms_50 / ms_10
    );
    println!(
        "REX volume k=50 / k=10: {:.2}x (paper: 1.0x, constant)",
        rex_50 / rex_10
    );

    let refs: Vec<&_> = traces.iter().collect();
    output::save_traces("fig3", &refs);
}
