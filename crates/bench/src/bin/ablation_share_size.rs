//! Ablation (paper §III-E): "Sharing data brings the question of how much
//! to share in every epoch. We treat this as another hyperparameter."
//!
//! Sweeps the number of raw points shared per epoch and reports the
//! accuracy-vs-time-vs-bytes trade-off that motivates the paper's choice
//! of 300 (MF).

use rex_bench::mf_experiments::{build_fleet, MfScale};
use rex_bench::{output, BenchArgs};
use rex_core::config::{ExecutionMode, GossipAlgorithm, SharingMode};
use rex_core::runner::{run, Backend, SimulationConfig};
use rex_topology::TopologySpec;

fn main() {
    let args = BenchArgs::parse();
    let base = if args.full {
        MfScale::one_user_full(&args)
    } else {
        MfScale::one_user_quick(&args)
    };
    println!(
        "Ablation: points shared per epoch (D-PSGD, SW, {} nodes, {} epochs)\n",
        base.node_count(),
        base.epochs
    );

    let sim = Backend::Simulated(SimulationConfig {
        epochs: base.epochs,
        execution: ExecutionMode::Native,
        parallel: true,
        ..Default::default()
    });

    let mut traces = Vec::new();
    for points in [10usize, 50, 100, 300, 1000, 3000] {
        let mut scale = base.clone();
        scale.points_per_epoch = points;
        eprintln!("[ablation] points/epoch = {points}");
        let mut nodes = build_fleet(
            &scale,
            TopologySpec::SmallWorld,
            SharingMode::RawData,
            GossipAlgorithm::DPsgd,
        );
        let trace = run(&sim, &format!("REX, {points} pts"), &mut nodes).trace;
        traces.push(trace);
    }

    println!(
        "{:<16} {:>10} {:>12} {:>14}",
        "points/epoch", "final RMSE", "sim time", "bytes/node"
    );
    for t in &traces {
        println!(
            "{:<16} {:>10.4} {:>10.3}s {:>14}",
            t.name.trim_start_matches("REX, "),
            t.final_rmse().unwrap_or(f64::NAN),
            t.duration_secs(),
            output::human_bytes(t.total_bytes_per_node())
        );
    }
    println!(
        "\nExpected shape: accuracy saturates while bytes grow linearly —\n\
         a mid-range value (the paper picks 300) is the sweet spot."
    );
    let refs: Vec<&_> = traces.iter().collect();
    output::save_traces("ablation_share_size", &refs);
}
