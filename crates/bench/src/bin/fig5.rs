//! Fig 5 — DNN model, multiple users per node, D-PSGD:
//! (a) per-stage time breakdown, (b) data volume per epoch,
//! (c) test error vs epochs, for {SW, ER} × {REX, MS}.

use rex_bench::dnn_experiments::{run_fig5, DnnScale};
use rex_bench::{output, BenchArgs};
use rex_sim::report::stage_breakdown_markdown;

fn main() {
    let args = BenchArgs::parse();
    let scale = if args.full {
        DnnScale::full(&args)
    } else {
        DnnScale::quick(&args)
    };
    println!(
        "Fig 5: DNN recommender. {} users on {} nodes, {} epochs, {} pts/epoch",
        scale.num_users, scale.nodes, scale.epochs, scale.points_per_epoch
    );

    let traces = run_fig5(&scale);

    println!("\n(a) Stage time breakdown (mean per epoch):");
    let rows: Vec<(String, _)> = traces
        .iter()
        .map(|t| (t.name.clone(), t.mean_stage_times()))
        .collect();
    println!("{}", stage_breakdown_markdown(&rows));

    println!("(b) Data volume per epoch (mean per node):");
    for t in &traces {
        let per_epoch = t.total_bytes_per_node() / t.records.len() as f64;
        println!(
            "  {:<22} {:>12}/epoch",
            t.name,
            output::human_bytes(per_epoch)
        );
    }

    println!("\n(c) Test error evolution:");
    for t in &traces {
        output::print_trace_summary(t);
    }

    let refs: Vec<&_> = traces.iter().collect();
    output::save_traces("fig5", &refs);
}
