//! Fig 4 — Multiple users per node, MF model: test error vs simulated time
//! for the four panels. Same structure as Fig 1 with users partitioned
//! over fewer server-style nodes (§IV-B-b).

use rex_bench::mf_experiments::{run_baseline, run_panel, MfScale, FOUR_PANELS};
use rex_bench::{output, BenchArgs};
use rex_core::config::ExecutionMode;

fn main() {
    let args = BenchArgs::parse();
    let scale = if args.full {
        MfScale::multi_user_full(&args)
    } else {
        MfScale::multi_user_quick(&args)
    };
    println!(
        "Fig 4: multiple users per node — MF. {} users on {} nodes, {} epochs",
        scale.num_users,
        scale.node_count(),
        scale.epochs
    );

    let mut traces = Vec::new();
    for (label, algorithm, topology) in FOUR_PANELS {
        eprintln!("[fig4] panel {label}");
        let (rex, ms) = run_panel(&scale, label, algorithm, topology, ExecutionMode::Native);
        traces.push(rex);
        traces.push(ms);
    }
    traces.push(run_baseline(&scale));

    println!("\nSeries (test RMSE vs simulated time):");
    for t in &traces {
        output::print_trace_summary(t);
    }
    let refs: Vec<&_> = traces.iter().collect();
    output::save_traces("fig4", &refs);
}
