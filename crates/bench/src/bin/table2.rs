//! Table II — One node per user: REX speed-up over MS at the MS run's
//! final error, for the four (algorithm, topology) setups.

use rex_bench::mf_experiments::{run_panel, MfScale, FOUR_PANELS};
use rex_bench::{output, BenchArgs};
use rex_core::config::ExecutionMode;
use rex_sim::report::{speedup_row, speedup_table_markdown};

fn main() {
    let args = BenchArgs::parse();
    let scale = if args.full {
        MfScale::one_user_full(&args)
    } else {
        MfScale::one_user_quick(&args)
    };
    println!(
        "Table II: one node per user ({} nodes, {} epochs)\n",
        scale.node_count(),
        scale.epochs
    );

    let mut rows = Vec::new();
    // Paper row order: D-PSGD ER, RMW ER, D-PSGD SW, RMW SW.
    let order = [3usize, 1, 2, 0];
    let mut panels = Vec::new();
    for (label, algorithm, topology) in FOUR_PANELS {
        eprintln!("[table2] panel {label}");
        panels.push((
            label,
            run_panel(&scale, label, algorithm, topology, ExecutionMode::Native),
        ));
    }
    for idx in order {
        let (label, (rex, ms)) = &panels[idx];
        match speedup_row(label, rex, ms) {
            Some(row) => rows.push(row),
            None => eprintln!(
                "[table2] {label}: REX did not reach the MS target within the epoch budget"
            ),
        }
    }
    let md = speedup_table_markdown(&rows, "s");
    println!("{md}");
    let _ = output::save("table2.md", &md).map(|p| println!("[saved] {}", p.display()));
    println!("(paper, full scale: 18.3x / 11.5x / 7.5x / 2.3x in the same row order)");
}
