//! Ablation (paper §III-E): stateless sampling "may send the same data
//! points more than once, although the probability of duplicates decreases
//! as the data size increases".
//!
//! Measures the per-epoch duplicate rate observed by receivers as stores
//! fill up, for several share sizes.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rex_core::store::RawDataStore;
use rex_data::SyntheticConfig;

fn main() {
    let dataset = SyntheticConfig {
        num_users: 64,
        num_items: 1_000,
        num_ratings: 10_000,
        seed: 4,
        ..SyntheticConfig::default()
    }
    .generate();
    let mut rng = StdRng::seed_from_u64(9);

    println!("Duplicate rate of stateless sampling (sender store -> receiver store)\n");
    println!(
        "{:<14} {:<18} {:>14} {:>12}",
        "points/epoch", "receiver fill", "new items", "dup rate"
    );
    for points in [50usize, 300, 1000] {
        // Sender holds the full dataset; receiver starts empty and absorbs
        // one sampled batch per epoch.
        let sender = RawDataStore::with_initial(dataset.ratings.clone());
        let mut receiver = RawDataStore::new();
        for epoch in [1usize, 5, 10, 20, 40] {
            // Advance to this epoch count from scratch for a clean measure.
            let mut r = RawDataStore::new();
            let mut rng2 = StdRng::seed_from_u64(9);
            let mut last_new = 0;
            let mut last_sent = 0;
            for _ in 0..epoch {
                let batch = sender.sample(points, &mut rng2);
                last_sent = batch.len();
                last_new = r.append_batch(&batch);
            }
            let dup_rate = 1.0 - last_new as f64 / last_sent.max(1) as f64;
            println!(
                "{:<14} {:<18} {:>14} {:>11.1}%",
                points,
                format!("{} / {} (e{epoch})", r.len(), sender.len()),
                last_new,
                dup_rate * 100.0
            );
        }
        let _ = receiver.append_batch(&sender.sample(points, &mut rng));
        println!();
    }
    println!(
        "As the receiver's store approaches the sender's, the marginal\n\
         batch is increasingly redundant — the cost of statelessness the\n\
         paper accepts for simplicity."
    );
}
