//! Scale benchmark with machine-readable output: the work-stealing
//! scheduler against the sequential lockstep driver on a large
//! mem-backend fleet, the sparse wire codec against the dense baseline
//! on the Table-IV synthetic workload, and the **user-sharded** fleet
//! arms (each node hosts a contiguous block of virtual users, up to the
//! 1M-user configuration) with RAM-per-user and epoch-time curves.
//! Writes `results/BENCH_scale.json` — the artifact CI uploads to track
//! the scaling trajectory.
//!
//! Quick mode (default, the CI scale-smoke job): 512 nodes, 5 epochs,
//! and one 64-shard × 1024-users-per-node arm per sharing mode.
//! `--full`: 1024 nodes, 10 epochs, sharded curves up to 16 × 65536
//! (1,048,576 virtual users) — the committed artifact. `--nodes` and
//! `--epochs` override the fleet shape. Both schedulers run the *same*
//! seeded fleet, so their final RMSE must agree to the bit — the
//! benchmark fails loudly if the parallel run diverges, making the
//! artifact an equivalence proof as well as a timing.
//!
//! `--check-baseline PATH` reads a previously committed
//! `BENCH_scale.json` *before* overwriting it and exits non-zero if the
//! quick sharded arm's RAM-per-user grew more than 25% — the CI
//! regression gate on per-user memory.
//!
//! Scheduler speedup is bounded by the host's cores (`host_cpus` in the
//! JSON): on a single-core container the pool can only tie the
//! sequential driver; the committed numbers record whatever the build
//! host honestly measured.

use rex_bench::{output, BenchArgs};
use rex_core::builder::{build_mf_nodes, build_mf_nodes_sharded, NodeSeeds};
use rex_core::config::{ExecutionMode, GossipAlgorithm, ProtocolConfig, SharingMode, WireCodec};
use rex_core::engine::{Driver, Engine, EngineConfig, EngineResult, TimeAxis};
use rex_core::membership::MembershipPlan;
use rex_core::Node;
use rex_data::{Partition, SyntheticConfig, TrainTestSplit};
use rex_ml::{MfHyperParams, MfModel};
use rex_net::mem::MemNetwork;
use rex_topology::TopologySpec;
use std::time::Instant;

/// Builds the scheduler benchmark's fleet: `n` nodes over a small world,
/// two users per node (the chaos suite's shape, scaled up).
fn scale_fleet(n: usize, sharing: SharingMode) -> Vec<Node<MfModel>> {
    let ds = SyntheticConfig {
        num_users: (2 * n) as u32,
        num_items: 160,
        num_ratings: 125 * n,
        seed: 42,
        ..SyntheticConfig::default()
    }
    .generate();
    let split = TrainTestSplit::standard(&ds, 7);
    let part = Partition::multi_user(&split, n);
    let graph = TopologySpec::SmallWorld.build(n, 5);
    build_mf_nodes(
        &part,
        &graph,
        ds.num_users,
        ds.num_items,
        MfHyperParams::default(),
        ProtocolConfig {
            sharing,
            algorithm: GossipAlgorithm::DPsgd,
            points_per_epoch: 40,
            steps_per_epoch: 100,
            seed: 17,
            ..ProtocolConfig::default()
        },
        NodeSeeds::default(),
    )
}

fn engine_config(epochs: usize, driver: Driver) -> EngineConfig {
    EngineConfig {
        epochs,
        execution: ExecutionMode::Native,
        time: TimeAxis::Simulated(Default::default()),
        driver,
        processes_per_platform: 1,
        seed: 0xE0,
        faults: None,
        membership: None,
    }
}

fn run_driver(n: usize, epochs: usize, driver: Driver) -> (f64, EngineResult) {
    let mut nodes = scale_fleet(n, SharingMode::RawData);
    let start = Instant::now();
    let result =
        Engine::<MfModel, MemNetwork>::new(MemNetwork::new(n), engine_config(epochs, driver))
            .run("scale", &mut nodes);
    (start.elapsed().as_secs_f64(), result)
}

/// One codec-comparison arm on the Table-IV quick workload (200 users ×
/// 3000 items over 8 fully connected nodes — `SgxScale::fig6_quick`).
struct CodecRow {
    sharing: &'static str,
    codec: &'static str,
    bytes_per_node_per_epoch: f64,
    final_rmse_bits: u64,
}

fn run_codec_arm(sharing: SharingMode, codec: WireCodec, epochs: usize) -> CodecRow {
    let ds = SyntheticConfig {
        num_users: 200,
        num_items: 3_000,
        num_ratings: 33_000,
        seed: 0xBE7C,
        ..SyntheticConfig::default()
    }
    .generate();
    let split = TrainTestSplit::standard(&ds, 2);
    let part = Partition::multi_user(&split, 8);
    let graph = TopologySpec::FullyConnected.build(8, 0);
    let mut nodes = build_mf_nodes(
        &part,
        &graph,
        ds.num_users,
        ds.num_items,
        MfHyperParams::default(),
        ProtocolConfig {
            sharing,
            codec,
            ..ProtocolConfig::default()
        },
        NodeSeeds::default(),
    );
    let result = Engine::<MfModel, MemNetwork>::new(
        MemNetwork::new(8),
        engine_config(epochs, Driver::WorkSteal { workers: 0 }),
    )
    .run("codec", &mut nodes);
    CodecRow {
        sharing: match sharing {
            SharingMode::RawData => "raw",
            SharingMode::Model => "model",
        },
        codec: if codec.is_sparse() { "sparse" } else { "dense" },
        bytes_per_node_per_epoch: result.trace.total_bytes_per_node() / epochs as f64,
        final_rmse_bits: result.trace.final_rmse().unwrap_or(f64::NAN).to_bits(),
    }
}

/// The join-wave arm: a quarter of the ids are not founders but join in
/// waves (spread over the run's early epochs, sponsor-bootstrapped),
/// and one founder leaves gracefully near the end — the
/// dynamic-membership stress shape. Run under both lockstep and the
/// work-stealing pool so the artifact doubles as a view-transition
/// equivalence proof at scale.
fn run_join_wave(n: usize, epochs: usize) -> (f64, f64, usize, EngineResult) {
    assert!(epochs >= 3, "join wave needs at least 3 epochs");
    let joiners = (n / 4).max(1);
    let wave_epochs = epochs - 2; // joins land on 1..=epochs-2
    let mut plan = MembershipPlan {
        seed: 0x7A7E,
        bootstrap_points: 40,
        ..MembershipPlan::default()
    };
    for i in 0..joiners {
        plan = plan.with_join(n - joiners + i, 1 + (i % wave_epochs), None);
    }
    plan = plan.with_leave(0, epochs - 1);

    let run = |driver| {
        let mut nodes = scale_fleet(n, SharingMode::RawData);
        let mut cfg = engine_config(epochs, driver);
        cfg.membership = Some(plan.clone());
        let start = Instant::now();
        let result = Engine::<MfModel, MemNetwork>::new(MemNetwork::new(n), cfg)
            .run("join-wave", &mut nodes);
        (start.elapsed().as_secs_f64(), result)
    };
    let (seq_secs, seq) = run(Driver::Lockstep { parallel: false });
    let (pool_secs, pool) = run(Driver::WorkSteal { workers: 0 });
    assert_eq!(
        seq.trace.final_rmse().map(f64::to_bits),
        pool.trace.final_rmse().map(f64::to_bits),
        "join-wave run diverged between lockstep and the work-stealing pool"
    );
    (seq_secs, pool_secs, joiners, pool)
}

/// One user-sharded fleet arm: `shards` enclave nodes, each hosting a
/// contiguous block of `users_per_node` virtual users behind a single
/// wire endpoint (aggregate-then-share: one message per shard per
/// neighbor, never one per user).
struct ShardRow {
    shards: usize,
    users_per_node: u32,
    users: u64,
    sharing: &'static str,
    epochs: usize,
    epoch_secs: f64,
    ram_per_user: f64,
    bytes_per_node_per_epoch: f64,
    final_rmse_bits: u64,
}

fn run_shard_arm(
    shards: usize,
    users_per_node: u32,
    sharing: SharingMode,
    epochs: usize,
) -> ShardRow {
    let num_users = shards as u32 * users_per_node;
    let ds = SyntheticConfig {
        num_users,
        num_items: 160,
        num_ratings: 5 * num_users as usize,
        seed: 42,
        ..SyntheticConfig::default()
    }
    .generate();
    let split = TrainTestSplit::standard(&ds, 7);
    let (part, blocks) = Partition::user_blocks(&split, shards);
    let graph = TopologySpec::SmallWorld.build(shards, 5);
    // Model sharing at these scales only makes sense over the sparse
    // delta codec (a dense 1M-row embedding table per message would
    // swamp the fabric); raw sharing keeps the dense rating encoding.
    let codec = match sharing {
        SharingMode::RawData => WireCodec::Dense,
        SharingMode::Model => WireCodec::sparse(),
    };
    let mut nodes = build_mf_nodes_sharded(
        &part,
        &blocks,
        &graph,
        ds.num_users,
        ds.num_items,
        MfHyperParams::default(),
        ProtocolConfig {
            sharing,
            codec,
            algorithm: GossipAlgorithm::DPsgd,
            points_per_epoch: 40,
            steps_per_epoch: 100,
            seed: 17,
        },
        NodeSeeds::default(),
    );
    let start = Instant::now();
    let result = Engine::<MfModel, MemNetwork>::new(
        MemNetwork::new(shards),
        engine_config(epochs, Driver::Lockstep { parallel: false }),
    )
    .run("shard", &mut nodes);
    let secs = start.elapsed().as_secs_f64();
    let last = result.trace.records.last().expect("shard arm ran epochs");
    ShardRow {
        shards,
        users_per_node,
        users: u64::from(num_users),
        sharing: match sharing {
            SharingMode::RawData => "raw",
            SharingMode::Model => "model",
        },
        epochs,
        epoch_secs: secs / epochs as f64,
        ram_per_user: last.ram_bytes / f64::from(users_per_node),
        bytes_per_node_per_epoch: result.trace.total_bytes_per_node() / epochs as f64,
        final_rmse_bits: result.trace.final_rmse().unwrap_or(f64::NAN).to_bits(),
    }
}

/// Extracts `"shard_ram_per_user_64x1024_raw": <number>` from a baseline
/// JSON without a JSON parser (fixed schema, written by this binary).
fn parse_baseline_ram_per_user(text: &str) -> Option<f64> {
    let key = "\"shard_ram_per_user_64x1024_raw\":";
    let rest = &text[text.find(key)? + key.len()..];
    let end = rest.find(['}', ',', '\n'])?;
    rest[..end].trim().parse().ok()
}

/// CI gate: the quick sharded arm's RAM-per-user may grow at most 25%
/// over the committed baseline.
const RAM_BASELINE_TOLERANCE: f64 = 1.25;

fn main() {
    let args = BenchArgs::parse();
    let mode = if args.full { "full" } else { "quick" };
    let nodes = args.nodes.unwrap_or(if args.full { 1024 } else { 512 });
    let epochs = args.epochs.unwrap_or(if args.full { 10 } else { 5 });
    let host_cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    // Warm both drivers (allocator, page cache) before timing anything,
    // so run order does not bias the comparison.
    let _ = run_driver(64, 1, Driver::Lockstep { parallel: false });
    let _ = run_driver(64, 1, Driver::WorkSteal { workers: 0 });

    eprintln!("[bench_scale] {nodes} nodes x {epochs} epochs, sequential driver...");
    let (seq_secs, seq) = run_driver(nodes, epochs, Driver::Lockstep { parallel: false });
    eprintln!("[bench_scale] work-stealing pool ({host_cpus} workers)...");
    let (pool_secs, pool) = run_driver(nodes, epochs, Driver::WorkSteal { workers: 0 });

    let seq_rmse = seq.trace.final_rmse().expect("sequential run has epochs");
    let pool_rmse = pool.trace.final_rmse().expect("pool run has epochs");
    assert_eq!(
        seq_rmse.to_bits(),
        pool_rmse.to_bits(),
        "work-stealing scheduler diverged from the sequential driver"
    );
    let speedup = seq_secs / pool_secs;
    println!(
        "scheduler ({nodes} nodes x {epochs} epochs, {host_cpus} cores): \
         sequential {seq_secs:.2}s, work-steal {pool_secs:.2}s, speedup {speedup:.2}x, \
         final rmse {seq_rmse:.4} (bit-identical)"
    );

    let codec_epochs = if args.full { 10 } else { 5 };
    let mut codec_rows = Vec::new();
    for sharing in [SharingMode::RawData, SharingMode::Model] {
        for codec in [WireCodec::Dense, WireCodec::sparse()] {
            eprintln!("[bench_scale] codec arm: {:?} / {:?}...", sharing, codec);
            codec_rows.push(run_codec_arm(sharing, codec, codec_epochs));
        }
    }
    println!("codec (table4 workload, 8 nodes x {codec_epochs} epochs):");
    for r in &codec_rows {
        println!(
            "  {:<6} {:<6}: {:>10.0} B/node/epoch",
            r.sharing, r.codec, r.bytes_per_node_per_epoch
        );
    }
    // The artifact's second claim: sparse moves fewer bytes in both
    // sharing modes, and sparse model sharing learns identically.
    for pair in codec_rows.chunks(2) {
        assert!(
            pair[1].bytes_per_node_per_epoch < pair[0].bytes_per_node_per_epoch,
            "{}: sparse did not reduce bytes",
            pair[0].sharing
        );
    }
    assert_eq!(
        codec_rows[2].final_rmse_bits, codec_rows[3].final_rmse_bits,
        "sparse model sharing changed the learning trajectory"
    );

    // Join-wave arm: dynamic membership at the same fleet scale.
    eprintln!("[bench_scale] join-wave arm ({nodes} ids, both drivers)...");
    let (wave_seq_secs, wave_pool_secs, wave_joiners, wave) = run_join_wave(nodes, epochs.max(3));
    let wave_first_live = wave.trace.records.first().map_or(0, |r| r.live_nodes);
    let wave_last_live = wave.trace.records.last().map_or(0, |r| r.live_nodes);
    println!(
        "join wave ({nodes} ids, {wave_joiners} joiners, 1 leave): live {wave_first_live} -> \
         {wave_last_live}, sequential {wave_seq_secs:.2}s, work-steal {wave_pool_secs:.2}s, \
         bit-identical across drivers"
    );
    assert_eq!(wave_first_live, nodes - wave_joiners);
    assert_eq!(
        wave_last_live,
        nodes - 1,
        "everyone joined, one founder left"
    );

    // User-sharded arms: RAM-per-user and epoch-time curves. Quick mode
    // runs the CI smoke shape (64 shards x 1024 users, both sharing
    // modes); full mode extends the raw curve through 262k users and the
    // 1M-user configuration, and gives model sharing a second point.
    let shard_arms: &[(usize, u32, SharingMode)] = if args.full {
        &[
            (64, 1024, SharingMode::RawData),
            (64, 2048, SharingMode::RawData),
            (64, 4096, SharingMode::RawData),
            (16, 65536, SharingMode::RawData), // 1,048,576 virtual users
            (64, 1024, SharingMode::Model),
            (64, 2048, SharingMode::Model),
        ]
    } else {
        &[
            (64, 1024, SharingMode::RawData),
            (64, 1024, SharingMode::Model),
        ]
    };
    let mut shard_rows = Vec::new();
    for &(shards, upn, sharing) in shard_arms {
        eprintln!(
            "[bench_scale] sharded arm: {shards} shards x {upn} users ({:?})...",
            sharing
        );
        shard_rows.push(run_shard_arm(shards, upn, sharing, epochs));
    }
    println!("user sharding ({epochs} epochs per arm):");
    for r in &shard_rows {
        println!(
            "  {:>3} shards x {:>6} users ({:<5}): {:>8.1} B/user RAM, {:>7.3} s/epoch, \
             {:>10.0} B/node/epoch",
            r.shards,
            r.users_per_node,
            r.sharing,
            r.ram_per_user,
            r.epoch_secs,
            r.bytes_per_node_per_epoch
        );
    }

    // Wire-traffic claim: bytes per node per epoch track the shard
    // count (a shard sends one aggregate message per neighbor), not the
    // user count — quadrupling users per shard must not move traffic by
    // more than encoding slack.
    let wire_small = run_shard_arm(32, 256, SharingMode::RawData, epochs);
    let wire_large = run_shard_arm(32, 1024, SharingMode::RawData, epochs);
    let wire_ratio = wire_large.bytes_per_node_per_epoch / wire_small.bytes_per_node_per_epoch;
    println!(
        "wire scaling (32 shards, raw): {:>8.0} B/node/epoch at 256 u/shard, {:>8.0} at 1024 \
         u/shard (ratio {wire_ratio:.3})",
        wire_small.bytes_per_node_per_epoch, wire_large.bytes_per_node_per_epoch
    );
    assert!(
        wire_ratio < 1.10,
        "wire traffic scaled with user count (ratio {wire_ratio:.3}), not shard count"
    );

    let quick_ram_per_user = shard_rows
        .iter()
        .find(|r| r.shards == 64 && r.users_per_node == 1024 && r.sharing == "raw")
        .expect("every mode runs the 64x1024 raw arm")
        .ram_per_user;

    // Read the baseline *before* saving: the committed baseline is
    // usually the same results/ file this run is about to overwrite.
    let baseline = args.check_baseline.as_ref().map(|path| {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("could not read baseline {path}: {e}");
            std::process::exit(1);
        });
        parse_baseline_ram_per_user(&text).unwrap_or_else(|| {
            eprintln!("baseline {path} has no shard_ram_per_user_64x1024_raw summary");
            std::process::exit(1);
        })
    });

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"bench\": \"scale\",\n  \"mode\": \"{mode}\",\n  \"host_cpus\": {host_cpus},\n"
    ));
    json.push_str(&format!(
        "  \"scheduler\": {{\"nodes\": {nodes}, \"epochs\": {epochs}, \"workers\": {host_cpus}, \
         \"sequential_secs\": {seq_secs:.3}, \"work_steal_secs\": {pool_secs:.3}, \
         \"speedup\": {speedup:.3}, \"final_rmse_bits_equal\": true, \
         \"final_rmse_bits\": \"{:#018x}\"}},\n",
        seq_rmse.to_bits()
    ));
    json.push_str("  \"codec\": [\n");
    for (i, r) in codec_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"sharing\": \"{}\", \"codec\": \"{}\", \"epochs\": {codec_epochs}, \
             \"bytes_per_node_per_epoch\": {:.1}, \"final_rmse_bits\": \"{:#018x}\"}}{}\n",
            r.sharing,
            r.codec,
            r.bytes_per_node_per_epoch,
            r.final_rmse_bits,
            if i + 1 < codec_rows.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"membership\": {{\"nodes\": {nodes}, \"epochs\": {}, \"joiners\": {wave_joiners}, \
         \"leaves\": 1, \"live_first\": {wave_first_live}, \"live_last\": {wave_last_live}, \
         \"sequential_secs\": {wave_seq_secs:.3}, \"work_steal_secs\": {wave_pool_secs:.3}, \
         \"final_rmse_bits_equal\": true, \"final_rmse_bits\": \"{:#018x}\"}},\n",
        epochs.max(3),
        wave.trace.final_rmse().unwrap_or(f64::NAN).to_bits()
    ));
    json.push_str("  \"sharding\": [\n");
    for (i, r) in shard_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"shards\": {}, \"users_per_node\": {}, \"users\": {}, \"sharing\": \"{}\", \
             \"epochs\": {}, \"ram_per_user_bytes\": {:.1}, \"epoch_secs\": {:.4}, \
             \"bytes_per_node_per_epoch\": {:.1}, \"final_rmse_bits\": \"{:#018x}\"}}{}\n",
            r.shards,
            r.users_per_node,
            r.users,
            r.sharing,
            r.epochs,
            r.ram_per_user,
            r.epoch_secs,
            r.bytes_per_node_per_epoch,
            r.final_rmse_bits,
            if i + 1 < shard_rows.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"wire_scaling\": {{\"shards\": 32, \"sharing\": \"raw\", \
         \"bytes_per_node_per_epoch_256u\": {:.1}, \"bytes_per_node_per_epoch_1024u\": {:.1}, \
         \"ratio\": {wire_ratio:.4}}},\n",
        wire_small.bytes_per_node_per_epoch, wire_large.bytes_per_node_per_epoch
    ));
    json.push_str(&format!(
        "  \"summary\": {{\"shard_ram_per_user_64x1024_raw\": {quick_ram_per_user:.1}}}\n"
    ));
    json.push_str("}\n");

    match output::save("BENCH_scale.json", &json) {
        Ok(path) => println!("[saved] {}", path.display()),
        Err(e) => {
            eprintln!("could not save BENCH_scale.json: {e}");
            std::process::exit(1);
        }
    }

    if let Some(baseline) = baseline {
        let ceiling = baseline * RAM_BASELINE_TOLERANCE;
        if quick_ram_per_user > ceiling {
            eprintln!(
                "REGRESSION: shard_ram_per_user_64x1024_raw = {quick_ram_per_user:.1} exceeds \
                 {ceiling:.1} (baseline {baseline:.1} x {RAM_BASELINE_TOLERANCE})"
            );
            std::process::exit(1);
        }
        println!(
            "baseline check: {quick_ram_per_user:.1} B/user within {ceiling:.1} \
             (baseline {baseline:.1} x {RAM_BASELINE_TOLERANCE})"
        );
    }
}
