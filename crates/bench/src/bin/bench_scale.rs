//! Scale benchmark with machine-readable output: the work-stealing
//! scheduler against the sequential lockstep driver on a large
//! mem-backend fleet, plus the sparse wire codec against the dense
//! baseline on the Table-IV synthetic workload. Writes
//! `results/BENCH_scale.json` — the artifact CI uploads to track the
//! scaling trajectory.
//!
//! Quick mode (default, the CI scale-smoke job): 512 nodes, 5 epochs.
//! `--full`: 1024 nodes, 10 epochs (the committed artifact). `--nodes`
//! and `--epochs` override either. Both schedulers run the *same* seeded
//! fleet, so their final RMSE must agree to the bit — the benchmark
//! fails loudly if the parallel run diverges, making the artifact an
//! equivalence proof as well as a timing.
//!
//! Scheduler speedup is bounded by the host's cores (`host_cpus` in the
//! JSON): on a single-core container the pool can only tie the
//! sequential driver; the committed numbers record whatever the build
//! host honestly measured.

use rex_bench::{output, BenchArgs};
use rex_core::builder::{build_mf_nodes, NodeSeeds};
use rex_core::config::{ExecutionMode, GossipAlgorithm, ProtocolConfig, SharingMode, WireCodec};
use rex_core::engine::{Driver, Engine, EngineConfig, EngineResult, TimeAxis};
use rex_core::membership::MembershipPlan;
use rex_core::Node;
use rex_data::{Partition, SyntheticConfig, TrainTestSplit};
use rex_ml::{MfHyperParams, MfModel};
use rex_net::mem::MemNetwork;
use rex_topology::TopologySpec;
use std::time::Instant;

/// Builds the scheduler benchmark's fleet: `n` nodes over a small world,
/// two users per node (the chaos suite's shape, scaled up).
fn scale_fleet(n: usize, sharing: SharingMode) -> Vec<Node<MfModel>> {
    let ds = SyntheticConfig {
        num_users: (2 * n) as u32,
        num_items: 160,
        num_ratings: 125 * n,
        seed: 42,
        ..SyntheticConfig::default()
    }
    .generate();
    let split = TrainTestSplit::standard(&ds, 7);
    let part = Partition::multi_user(&split, n);
    let graph = TopologySpec::SmallWorld.build(n, 5);
    build_mf_nodes(
        &part,
        &graph,
        ds.num_users,
        ds.num_items,
        MfHyperParams::default(),
        ProtocolConfig {
            sharing,
            algorithm: GossipAlgorithm::DPsgd,
            points_per_epoch: 40,
            steps_per_epoch: 100,
            seed: 17,
            ..ProtocolConfig::default()
        },
        NodeSeeds::default(),
    )
}

fn engine_config(epochs: usize, driver: Driver) -> EngineConfig {
    EngineConfig {
        epochs,
        execution: ExecutionMode::Native,
        time: TimeAxis::Simulated(Default::default()),
        driver,
        processes_per_platform: 1,
        seed: 0xE0,
        faults: None,
        membership: None,
    }
}

fn run_driver(n: usize, epochs: usize, driver: Driver) -> (f64, EngineResult) {
    let mut nodes = scale_fleet(n, SharingMode::RawData);
    let start = Instant::now();
    let result =
        Engine::<MfModel, MemNetwork>::new(MemNetwork::new(n), engine_config(epochs, driver))
            .run("scale", &mut nodes);
    (start.elapsed().as_secs_f64(), result)
}

/// One codec-comparison arm on the Table-IV quick workload (200 users ×
/// 3000 items over 8 fully connected nodes — `SgxScale::fig6_quick`).
struct CodecRow {
    sharing: &'static str,
    codec: &'static str,
    bytes_per_node_per_epoch: f64,
    final_rmse_bits: u64,
}

fn run_codec_arm(sharing: SharingMode, codec: WireCodec, epochs: usize) -> CodecRow {
    let ds = SyntheticConfig {
        num_users: 200,
        num_items: 3_000,
        num_ratings: 33_000,
        seed: 0xBE7C,
        ..SyntheticConfig::default()
    }
    .generate();
    let split = TrainTestSplit::standard(&ds, 2);
    let part = Partition::multi_user(&split, 8);
    let graph = TopologySpec::FullyConnected.build(8, 0);
    let mut nodes = build_mf_nodes(
        &part,
        &graph,
        ds.num_users,
        ds.num_items,
        MfHyperParams::default(),
        ProtocolConfig {
            sharing,
            codec,
            ..ProtocolConfig::default()
        },
        NodeSeeds::default(),
    );
    let result = Engine::<MfModel, MemNetwork>::new(
        MemNetwork::new(8),
        engine_config(epochs, Driver::WorkSteal { workers: 0 }),
    )
    .run("codec", &mut nodes);
    CodecRow {
        sharing: match sharing {
            SharingMode::RawData => "raw",
            SharingMode::Model => "model",
        },
        codec: if codec.is_sparse() { "sparse" } else { "dense" },
        bytes_per_node_per_epoch: result.trace.total_bytes_per_node() / epochs as f64,
        final_rmse_bits: result.trace.final_rmse().unwrap_or(f64::NAN).to_bits(),
    }
}

/// The join-wave arm: a quarter of the ids are not founders but join in
/// waves (spread over the run's early epochs, sponsor-bootstrapped),
/// and one founder leaves gracefully near the end — the
/// dynamic-membership stress shape. Run under both lockstep and the
/// work-stealing pool so the artifact doubles as a view-transition
/// equivalence proof at scale.
fn run_join_wave(n: usize, epochs: usize) -> (f64, f64, usize, EngineResult) {
    assert!(epochs >= 3, "join wave needs at least 3 epochs");
    let joiners = (n / 4).max(1);
    let wave_epochs = epochs - 2; // joins land on 1..=epochs-2
    let mut plan = MembershipPlan {
        seed: 0x7A7E,
        bootstrap_points: 40,
        ..MembershipPlan::default()
    };
    for i in 0..joiners {
        plan = plan.with_join(n - joiners + i, 1 + (i % wave_epochs), None);
    }
    plan = plan.with_leave(0, epochs - 1);

    let run = |driver| {
        let mut nodes = scale_fleet(n, SharingMode::RawData);
        let mut cfg = engine_config(epochs, driver);
        cfg.membership = Some(plan.clone());
        let start = Instant::now();
        let result = Engine::<MfModel, MemNetwork>::new(MemNetwork::new(n), cfg)
            .run("join-wave", &mut nodes);
        (start.elapsed().as_secs_f64(), result)
    };
    let (seq_secs, seq) = run(Driver::Lockstep { parallel: false });
    let (pool_secs, pool) = run(Driver::WorkSteal { workers: 0 });
    assert_eq!(
        seq.trace.final_rmse().map(f64::to_bits),
        pool.trace.final_rmse().map(f64::to_bits),
        "join-wave run diverged between lockstep and the work-stealing pool"
    );
    (seq_secs, pool_secs, joiners, pool)
}

fn main() {
    let args = BenchArgs::parse();
    let mode = if args.full { "full" } else { "quick" };
    let nodes = args.nodes.unwrap_or(if args.full { 1024 } else { 512 });
    let epochs = args.epochs.unwrap_or(if args.full { 10 } else { 5 });
    let host_cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    // Warm both drivers (allocator, page cache) before timing anything,
    // so run order does not bias the comparison.
    let _ = run_driver(64, 1, Driver::Lockstep { parallel: false });
    let _ = run_driver(64, 1, Driver::WorkSteal { workers: 0 });

    eprintln!("[bench_scale] {nodes} nodes x {epochs} epochs, sequential driver...");
    let (seq_secs, seq) = run_driver(nodes, epochs, Driver::Lockstep { parallel: false });
    eprintln!("[bench_scale] work-stealing pool ({host_cpus} workers)...");
    let (pool_secs, pool) = run_driver(nodes, epochs, Driver::WorkSteal { workers: 0 });

    let seq_rmse = seq.trace.final_rmse().expect("sequential run has epochs");
    let pool_rmse = pool.trace.final_rmse().expect("pool run has epochs");
    assert_eq!(
        seq_rmse.to_bits(),
        pool_rmse.to_bits(),
        "work-stealing scheduler diverged from the sequential driver"
    );
    let speedup = seq_secs / pool_secs;
    println!(
        "scheduler ({nodes} nodes x {epochs} epochs, {host_cpus} cores): \
         sequential {seq_secs:.2}s, work-steal {pool_secs:.2}s, speedup {speedup:.2}x, \
         final rmse {seq_rmse:.4} (bit-identical)"
    );

    let codec_epochs = if args.full { 10 } else { 5 };
    let mut codec_rows = Vec::new();
    for sharing in [SharingMode::RawData, SharingMode::Model] {
        for codec in [WireCodec::Dense, WireCodec::sparse()] {
            eprintln!("[bench_scale] codec arm: {:?} / {:?}...", sharing, codec);
            codec_rows.push(run_codec_arm(sharing, codec, codec_epochs));
        }
    }
    println!("codec (table4 workload, 8 nodes x {codec_epochs} epochs):");
    for r in &codec_rows {
        println!(
            "  {:<6} {:<6}: {:>10.0} B/node/epoch",
            r.sharing, r.codec, r.bytes_per_node_per_epoch
        );
    }
    // The artifact's second claim: sparse moves fewer bytes in both
    // sharing modes, and sparse model sharing learns identically.
    for pair in codec_rows.chunks(2) {
        assert!(
            pair[1].bytes_per_node_per_epoch < pair[0].bytes_per_node_per_epoch,
            "{}: sparse did not reduce bytes",
            pair[0].sharing
        );
    }
    assert_eq!(
        codec_rows[2].final_rmse_bits, codec_rows[3].final_rmse_bits,
        "sparse model sharing changed the learning trajectory"
    );

    // Join-wave arm: dynamic membership at the same fleet scale.
    eprintln!("[bench_scale] join-wave arm ({nodes} ids, both drivers)...");
    let (wave_seq_secs, wave_pool_secs, wave_joiners, wave) = run_join_wave(nodes, epochs.max(3));
    let wave_first_live = wave.trace.records.first().map_or(0, |r| r.live_nodes);
    let wave_last_live = wave.trace.records.last().map_or(0, |r| r.live_nodes);
    println!(
        "join wave ({nodes} ids, {wave_joiners} joiners, 1 leave): live {wave_first_live} -> \
         {wave_last_live}, sequential {wave_seq_secs:.2}s, work-steal {wave_pool_secs:.2}s, \
         bit-identical across drivers"
    );
    assert_eq!(wave_first_live, nodes - wave_joiners);
    assert_eq!(
        wave_last_live,
        nodes - 1,
        "everyone joined, one founder left"
    );

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"bench\": \"scale\",\n  \"mode\": \"{mode}\",\n  \"host_cpus\": {host_cpus},\n"
    ));
    json.push_str(&format!(
        "  \"scheduler\": {{\"nodes\": {nodes}, \"epochs\": {epochs}, \"workers\": {host_cpus}, \
         \"sequential_secs\": {seq_secs:.3}, \"work_steal_secs\": {pool_secs:.3}, \
         \"speedup\": {speedup:.3}, \"final_rmse_bits_equal\": true, \
         \"final_rmse_bits\": \"{:#018x}\"}},\n",
        seq_rmse.to_bits()
    ));
    json.push_str("  \"codec\": [\n");
    for (i, r) in codec_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"sharing\": \"{}\", \"codec\": \"{}\", \"epochs\": {codec_epochs}, \
             \"bytes_per_node_per_epoch\": {:.1}, \"final_rmse_bits\": \"{:#018x}\"}}{}\n",
            r.sharing,
            r.codec,
            r.bytes_per_node_per_epoch,
            r.final_rmse_bits,
            if i + 1 < codec_rows.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"membership\": {{\"nodes\": {nodes}, \"epochs\": {}, \"joiners\": {wave_joiners}, \
         \"leaves\": 1, \"live_first\": {wave_first_live}, \"live_last\": {wave_last_live}, \
         \"sequential_secs\": {wave_seq_secs:.3}, \"work_steal_secs\": {wave_pool_secs:.3}, \
         \"final_rmse_bits_equal\": true, \"final_rmse_bits\": \"{:#018x}\"}}\n",
        epochs.max(3),
        wave.trace.final_rmse().unwrap_or(f64::NAN).to_bits()
    ));
    json.push_str("}\n");

    match output::save("BENCH_scale.json", &json) {
        Ok(path) => println!("[saved] {}", path.display()),
        Err(e) => {
            eprintln!("could not save BENCH_scale.json: {e}");
            std::process::exit(1);
        }
    }
}
