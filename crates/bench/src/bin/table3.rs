//! Table III — Multiple users per node: REX speed-up over MS at the MS
//! run's final error (paper: 3.3x / 2.4x / 7.5x / 2.8x).

use rex_bench::mf_experiments::{run_panel, MfScale, FOUR_PANELS};
use rex_bench::{output, BenchArgs};
use rex_core::config::ExecutionMode;
use rex_sim::report::{speedup_row, speedup_table_markdown};

fn main() {
    let args = BenchArgs::parse();
    let scale = if args.full {
        MfScale::multi_user_full(&args)
    } else {
        MfScale::multi_user_quick(&args)
    };
    println!(
        "Table III: multiple users per node ({} users on {} nodes, {} epochs)\n",
        scale.num_users,
        scale.node_count(),
        scale.epochs
    );

    let mut panels = Vec::new();
    for (label, algorithm, topology) in FOUR_PANELS {
        eprintln!("[table3] panel {label}");
        panels.push((
            label,
            run_panel(&scale, label, algorithm, topology, ExecutionMode::Native),
        ));
    }
    let mut rows = Vec::new();
    for idx in [3usize, 1, 2, 0] {
        let (label, (rex, ms)) = &panels[idx];
        match speedup_row(label, rex, ms) {
            Some(row) => rows.push(row),
            None => eprintln!("[table3] {label}: target unreached in epoch budget"),
        }
    }
    let md = speedup_table_markdown(&rows, "s");
    println!("{md}");
    let _ = output::save("table3.md", &md).map(|p| println!("[saved] {}", p.display()));
    println!("(paper, full scale: 3.3x / 2.4x / 7.5x / 2.8x in the same row order)");
}
