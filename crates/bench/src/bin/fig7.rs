//! Fig 7 — SGX vs native beyond the EPC limit (capped MovieLens-25M
//! shape). Same panels as Fig 6; the EPC budget is overcommitted by the
//! MS arms, so paging amplifies their overhead (see EXPERIMENTS.md for the
//! budget-scaling substitution).

use rex_bench::sgx_experiments::{all_arms, mean_epoch_secs, run_arm, SgxScale};
use rex_bench::{output, BenchArgs};
use rex_sim::report::stage_breakdown_markdown;

fn main() {
    let args = BenchArgs::parse();
    let scale = if args.full {
        SgxScale::fig7_full(&args)
    } else {
        SgxScale::fig7_quick(&args)
    };
    println!(
        "Fig 7: SGX vs native beyond EPC. {} users, {} ratings, EPC budget {}",
        scale.num_users,
        scale.num_ratings,
        output::human_bytes(scale.epc_limit_bytes as f64)
    );

    let mut results = Vec::new();
    for arm in all_arms() {
        eprintln!("[fig7] arm {}", arm.label());
        results.push((arm, run_arm(&scale, arm)));
    }

    println!("\n(a) Stage breakdown (mean per epoch):");
    let rows: Vec<(String, _)> = results
        .iter()
        .map(|(arm, r)| (arm.label(), r.trace.mean_stage_times()))
        .collect();
    println!("{}", stage_breakdown_markdown(&rows));

    println!("(b) RAM and network volume (MS arms should exceed the EPC):");
    for (arm, r) in &results {
        let ram = r.trace.peak_ram_bytes();
        let over = ram > scale.epc_limit_bytes as f64;
        println!(
            "  {:<22} RAM {:>10} {}  mean epoch {:>9.2} ms",
            arm.label(),
            output::human_bytes(ram),
            if over { "(beyond EPC)" } else { "            " },
            mean_epoch_secs(r) * 1e3,
        );
    }

    println!("\n(c)(d) Convergence:");
    for (_, r) in &results {
        output::print_trace_summary(&r.trace);
    }

    let traces: Vec<&_> = results.iter().map(|(_, r)| &r.trace).collect();
    output::save_traces("fig7", &traces);
}
