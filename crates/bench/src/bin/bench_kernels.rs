//! Kernel-layer benchmark with machine-readable output: per-primitive
//! throughput of the `rex_ml::kernel` / ChaCha20 SIMD kernels at the
//! embedding dimensions the paper sweeps (k = 16/32/128), plus two
//! end-to-end arms — MF epoch time and serve-path p99 — each measured
//! under every dispatch level this host can execute. Writes
//! `results/BENCH_kernels.json`.
//!
//! The summary keys are machine-speed-independent *ratios* of the
//! scalar reference over the best SIMD level:
//!
//! * `dot32_speedup` — the headline: scalar ns/op over best-SIMD ns/op
//!   for [`kernel::dot`] at k = 32 (the acceptance floor is 2x on an
//!   AVX2 host);
//! * `epoch_speedup` — `train_steps_batched` wall time, scalar / best;
//! * `serve_p99_speedup` — top-k query p99, scalar / best;
//! * `chacha_speedup` — keystream MiB/s, best / scalar.
//!
//! `--check-baseline <path>` compares this run's `dot32_speedup`
//! against a committed baseline JSON and exits non-zero when it
//! regressed by more than 25%. On a host without AVX2 the gate is
//! skipped with a notice — the committed baseline was measured on an
//! AVX2 runner and the ratio is not comparable.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rex_bench::{output, BenchArgs};
use rex_core::serve::{QueryStream, Scorer};
use rex_crypto::chacha20;
use rex_crypto::simd::{self, SimdLevel};
use rex_data::{SyntheticConfig, TrainTestSplit};
use rex_ml::kernel::{self, KernelLevel};
use rex_ml::{MfHyperParams, MfModel, Model};
use std::hint::black_box;
use std::time::Instant;

/// Fail `--check-baseline` when `dot32_speedup` regresses by more than
/// this factor over the committed run.
const BASELINE_TOLERANCE: f64 = 1.25;
/// Embedding dimensions for the micro arms (the paper's Fig 3 sweeps
/// k = 10–50; 128 probes the wide-vector regime).
const DIMS: [usize; 3] = [16, 32, 128];
/// Distinct vectors cycled through per micro window so the arms stream
/// factor rows instead of hammering two cache lines.
const POOL: usize = 256;
/// Windows per measurement; the best (fastest) window is reported.
/// Scheduling hiccups only ever slow a window down, so the minimum
/// filters OS noise while a real regression shows in every window.
const WINDOW_REPS: usize = 3;

/// Window count for the micro arms, which feed the ratio gate. A
/// shared single-core host can stall for longer than three short
/// windows in a row, so the gated ratios get more chances to land a
/// clean window on each side.
const MICRO_WINDOW_REPS: usize = 9;

struct MicroRow {
    primitive: &'static str,
    k: usize,
    level: &'static str,
    ns_per_op: f64,
}

struct E2eRow {
    arm: &'static str,
    level: &'static str,
    value: f64,
    unit: &'static str,
}

/// Deterministic f32 in [-1, 1) from splitmix64.
fn fill(seed: u64, out: &mut [f32]) {
    let mut s = seed;
    for v in out.iter_mut() {
        s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = s;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        let bits = (z ^ (z >> 31)) as u32;
        *v = (bits % 65536) as f32 / 32768.0 - 1.0;
    }
}

/// Best ns/op per level for one primitive, windows interleaved across
/// levels: rep `r` times every level back-to-back before rep `r + 1`
/// starts, so a burst of steal time on a shared host slows every
/// level's window in that rep together instead of silently skewing one
/// side of the scalar-vs-SIMD ratio the CI gate compares.
fn time_levels<F: FnMut(KernelLevel)>(levels: &[KernelLevel], iters: usize, mut op: F) -> Vec<f64> {
    let mut best = vec![f64::INFINITY; levels.len()];
    for _ in 0..MICRO_WINDOW_REPS {
        for (slot, &l) in levels.iter().enumerate() {
            let start = Instant::now();
            for _ in 0..iters {
                op(l);
            }
            best[slot] = best[slot].min(start.elapsed().as_nanos() as f64 / iters as f64);
        }
    }
    best
}

/// Micro arms: every primitive at every `k`, per dispatch level.
fn micro_arms(levels: &[KernelLevel], iters: usize) -> Vec<MicroRow> {
    let mut rows = Vec::new();
    let push = |rows: &mut Vec<MicroRow>, primitive, k, per_level: Vec<f64>| {
        for (&l, ns) in levels.iter().zip(per_level) {
            rows.push(MicroRow {
                primitive,
                k,
                level: l.name(),
                ns_per_op: ns,
            });
        }
    };
    for &k in &DIMS {
        let mut a = vec![0.0f32; POOL * k];
        let mut b = vec![0.0f32; POOL * k];
        fill(0xD07 + k as u64, &mut a);
        fill(0xA11 + k as u64, &mut b);

        let mut i = 0usize;
        let per_level = time_levels(levels, iters, |l| {
            let row = (i % POOL) * k;
            i += 1;
            black_box(kernel::dot_with(l, &a[row..row + k], &b[row..row + k]));
        });
        push(&mut rows, "dot", k, per_level);

        let mut i = 0usize;
        let per_level = time_levels(levels, iters, |l| {
            let row = (i % POOL) * k;
            i += 1;
            black_box(kernel::norm_sq_with(l, &a[row..row + k]));
        });
        push(&mut rows, "norm_sq", k, per_level);

        let mut y = b.clone();
        let mut i = 0usize;
        let per_level = time_levels(levels, iters, |l| {
            let row = (i % POOL) * k;
            i += 1;
            kernel::axpy_with(l, 0.37, &a[row..row + k], &mut y[row..row + k]);
        });
        black_box(&y);
        push(&mut rows, "axpy", k, per_level);

        let mut x = a.clone();
        let mut y = b.clone();
        let mut i = 0usize;
        let per_level = time_levels(levels, iters, |l| {
            let row = (i % POOL) * k;
            i += 1;
            kernel::sgd_update_with(
                l,
                &mut x[row..row + k],
                &mut y[row..row + k],
                0.005,
                0.33,
                0.1,
            );
        });
        black_box((&x, &y));
        push(&mut rows, "sgd_update", k, per_level);
    }
    rows
}

/// ChaCha20 keystream throughput (MiB/s) per crypto dispatch level.
fn chacha_arms(levels: &[SimdLevel], buf_kib: usize) -> Vec<E2eRow> {
    let key = [0x42u8; 32];
    let nonce = [0x17u8; 12];
    let mut buf = vec![0u8; buf_kib * 1024];
    levels
        .iter()
        .map(|&l| {
            let mut best = f64::INFINITY;
            for _ in 0..WINDOW_REPS {
                let start = Instant::now();
                chacha20::xor_stream_with(l, &key, 1, &nonce, &mut buf);
                best = best.min(start.elapsed().as_secs_f64());
            }
            black_box(&buf);
            E2eRow {
                arm: "chacha20_stream",
                level: l.name(),
                value: buf.len() as f64 / (1024.0 * 1024.0) / best,
                unit: "mib_per_s",
            }
        })
        .collect()
}

/// End-to-end arms at k = 32: MF training wall time and serve-path p99,
/// per kernel dispatch level (flipped in-process via `force_level`).
fn e2e_arms(levels: &[KernelLevel], steps: usize, queries: usize) -> Vec<E2eRow> {
    let ds = SyntheticConfig {
        num_users: 64,
        num_items: 1024,
        num_ratings: 6_000,
        seed: 42,
        ..SyntheticConfig::default()
    }
    .generate();
    let split = TrainTestSplit::standard(&ds, 7);
    let hp = MfHyperParams {
        k: 32,
        ..MfHyperParams::default()
    };
    let global_mean =
        split.train.iter().map(|r| f64::from(r.value)).sum::<f64>() / split.train.len() as f64;

    let mut rows = Vec::new();
    for &l in levels {
        kernel::force_level(l);

        // Training arm: one batched sweep of `steps` SGD steps.
        let mut best = f64::INFINITY;
        for rep in 0..WINDOW_REPS {
            let mut model = MfModel::new(ds.num_users, ds.num_items, hp, global_mean as f32, 9);
            let mut rng = StdRng::seed_from_u64(0xEB0C + rep as u64);
            let start = Instant::now();
            model.train_steps_batched(&split.train, steps, &mut rng);
            best = best.min(start.elapsed().as_secs_f64());
            black_box(&model);
        }
        rows.push(E2eRow {
            arm: "epoch_train_k32",
            level: l.name(),
            value: best * 1e3,
            unit: "ms",
        });

        // Serve arm: top-10 queries against a trained model.
        let mut model = MfModel::new(ds.num_users, ds.num_items, hp, global_mean as f32, 9);
        let mut rng = StdRng::seed_from_u64(0x5E37);
        model.train_steps_batched(&split.train, split.train.len(), &mut rng);
        let mut p99 = f64::INFINITY;
        for rep in 0..WINDOW_REPS {
            let mut scorer = Scorer::default();
            let mut stream = QueryStream::new(0xF00D + rep as u64, ds.num_users, 10);
            let mut lat: Vec<u64> = Vec::with_capacity(queries);
            for _ in 0..queries {
                let q = stream.next_query();
                let t = Instant::now();
                black_box(scorer.top_k(&model, &q, &[]));
                lat.push(t.elapsed().as_nanos() as u64);
            }
            lat.sort_unstable();
            p99 = p99.min(lat[(lat.len() as f64 * 0.99) as usize - 1] as f64);
        }
        rows.push(E2eRow {
            arm: "serve_p99_top10",
            level: l.name(),
            value: p99,
            unit: "ns",
        });
    }
    rows
}

/// Extracts `"dot32_speedup": <number>` from a baseline JSON without a
/// JSON parser (fixed schema, written by this binary).
fn parse_baseline_speedup(text: &str) -> Option<f64> {
    let key = "\"dot32_speedup\":";
    let rest = &text[text.find(key)? + key.len()..];
    let end = rest.find(['}', ',', '\n'])?;
    rest[..end].trim().parse().ok()
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    mode: &str,
    best: &str,
    micro: &[MicroRow],
    chacha: &[E2eRow],
    e2e: &[E2eRow],
    dot32: f64,
    epoch: f64,
    serve: f64,
    chacha_speedup: f64,
) -> String {
    // Hand-rolled JSON: fixed schema, no strings that need escaping.
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"bench\": \"kernels\",\n  \"mode\": \"{mode}\",\n  \"best_level\": \"{best}\",\n"
    ));
    out.push_str("  \"micro\": [\n");
    for (i, r) in micro.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"primitive\": \"{}\", \"k\": {}, \"level\": \"{}\", \"ns_per_op\": {:.2}}}{}\n",
            r.primitive,
            r.k,
            r.level,
            r.ns_per_op,
            if i + 1 < micro.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n  \"e2e\": [\n");
    let all: Vec<&E2eRow> = chacha.iter().chain(e2e.iter()).collect();
    for (i, r) in all.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"arm\": \"{}\", \"level\": \"{}\", \"{}\": {:.2}}}{}\n",
            r.arm,
            r.level,
            r.unit,
            r.value,
            if i + 1 < all.len() { "," } else { "" },
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"summary\": {{\"dot32_speedup\": {dot32:.2}, \"epoch_speedup\": {epoch:.2}, \
         \"serve_p99_speedup\": {serve:.2}, \"chacha_speedup\": {chacha_speedup:.2}}}\n}}\n"
    ));
    out
}

fn main() {
    let args = BenchArgs::parse();
    let mode = if args.full { "full" } else { "quick" };
    let iters = if args.full { 2_000_000 } else { 400_000 };
    let steps = args
        .epochs
        .unwrap_or(if args.full { 60_000 } else { 12_000 });
    let queries = if args.full { 4_000 } else { 1_500 };
    let buf_kib = if args.full { 4_096 } else { 1_024 };

    let levels = kernel::available_levels();
    let crypto_levels = simd::available_levels();
    let best = *levels.last().expect("scalar is always available");
    eprintln!(
        "[bench_kernels] levels: {:?}, best: {}",
        levels.iter().map(|l| l.name()).collect::<Vec<_>>(),
        best.name()
    );

    let micro = micro_arms(&levels, iters);
    let chacha = chacha_arms(&crypto_levels, buf_kib);
    let e2e = e2e_arms(&levels, steps, queries);
    kernel::force_level(best);

    println!("kernel micro arms ({mode} mode, {iters} iters, best of {WINDOW_REPS}):");
    for r in &micro {
        println!(
            "  {:<10} k={:<4} {:<7} {:>8.2} ns/op",
            r.primitive, r.k, r.level, r.ns_per_op
        );
    }
    for r in chacha.iter().chain(e2e.iter()) {
        println!(
            "  {:<16} {:<7} {:>12.2} {}",
            r.arm, r.level, r.value, r.unit
        );
    }

    let micro_ns = |primitive: &str, k: usize, level: &str| {
        micro
            .iter()
            .find(|r| r.primitive == primitive && r.k == k && r.level == level)
            .expect("all micro cells measured")
            .ns_per_op
    };
    let e2e_val = |arm: &str, level: &str| {
        e2e.iter()
            .chain(chacha.iter())
            .find(|r| r.arm == arm && r.level == level)
            .expect("all e2e cells measured")
            .value
    };
    let dot32 = micro_ns("dot", 32, "scalar") / micro_ns("dot", 32, best.name());
    let epoch = e2e_val("epoch_train_k32", "scalar") / e2e_val("epoch_train_k32", best.name());
    let serve = e2e_val("serve_p99_top10", "scalar") / e2e_val("serve_p99_top10", best.name());
    let chacha_speedup =
        e2e_val("chacha20_stream", best.name()) / e2e_val("chacha20_stream", "scalar");
    println!(
        "summary: dot32 {dot32:.2}x, epoch {epoch:.2}x, serve p99 {serve:.2}x, \
         chacha {chacha_speedup:.2}x (scalar over {})",
        best.name()
    );

    // Read the baseline *before* saving: the committed baseline is
    // usually the same results/ file this run is about to overwrite.
    let baseline = args.check_baseline.as_ref().map(|path| {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("could not read baseline {path}: {e}");
            std::process::exit(1);
        });
        parse_baseline_speedup(&text).unwrap_or_else(|| {
            eprintln!("baseline {path} has no dot32_speedup summary");
            std::process::exit(1);
        })
    });

    let json = render_json(
        mode,
        best.name(),
        &micro,
        &chacha,
        &e2e,
        dot32,
        epoch,
        serve,
        chacha_speedup,
    );
    match output::save("BENCH_kernels.json", &json) {
        Ok(path) => println!("[saved] {}", path.display()),
        Err(e) => {
            eprintln!("could not save BENCH_kernels.json: {e}");
            std::process::exit(1);
        }
    }

    if let Some(baseline) = baseline {
        if best != KernelLevel::Avx2 {
            println!(
                "baseline check SKIPPED: best level here is {} but the committed \
                 baseline was measured on an AVX2 host; ratios are not comparable",
                best.name()
            );
            return;
        }
        let floor = baseline / BASELINE_TOLERANCE;
        if dot32 < floor {
            eprintln!(
                "REGRESSION: dot32_speedup = {dot32:.2} below {floor:.2} \
                 (baseline {baseline:.2} / {BASELINE_TOLERANCE})"
            );
            std::process::exit(1);
        }
        println!(
            "baseline check: {dot32:.2} within {floor:.2} \
             (baseline {baseline:.2} / {BASELINE_TOLERANCE})"
        );
    }
}
