//! Fig 1 — One node per user, MF model: test-error evolution over
//! simulated time for the four panels (RMW/D-PSGD × SW/ER), REX vs MS vs
//! the centralized baseline.
//!
//! Quick mode: 128 nodes, 150 epochs. `--full`: the paper's 610 nodes.

use rex_bench::mf_experiments::{run_baseline, run_panel, MfScale, FOUR_PANELS};
use rex_bench::{output, BenchArgs};
use rex_core::config::ExecutionMode;

fn main() {
    let args = BenchArgs::parse();
    let scale = if args.full {
        MfScale::one_user_full(&args)
    } else {
        MfScale::one_user_quick(&args)
    };
    println!(
        "Fig 1: one node per user — MF. {} nodes, {} epochs, k={}",
        scale.node_count(),
        scale.epochs,
        scale.k
    );

    let mut traces = Vec::new();
    for (label, algorithm, topology) in FOUR_PANELS {
        eprintln!("[fig1] panel {label}");
        let (rex, ms) = run_panel(&scale, label, algorithm, topology, ExecutionMode::Native);
        traces.push(rex);
        traces.push(ms);
    }
    eprintln!("[fig1] centralized baseline");
    traces.push(run_baseline(&scale));

    println!("\nSeries (test RMSE vs simulated time):");
    for t in &traces {
        output::print_trace_summary(t);
    }
    let refs: Vec<&_> = traces.iter().collect();
    output::save_traces("fig1", &refs);

    // Preview the Table II derivation from these runs.
    println!("\nTime-to-target preview (full table: `table2` bin):");
    for pair in traces.chunks(2).take(4) {
        if let [rex, ms] = pair {
            if let Some(row) = rex_sim::report::speedup_row(&ms.name[4..], rex, ms) {
                println!(
                    "  {:<12} target={:.3}  REX {:>8.1}s  MS {:>8.1}s  speedup {:.1}x",
                    row.setup, row.error_target, row.rex_secs, row.ms_secs, row.speedup
                );
            }
        }
    }
}
