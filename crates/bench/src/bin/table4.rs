//! Table IV — SGX overhead in execution time vs native, with the memory
//! usage that explains it, for {RMW, D-PSGD} × {REX, MS} at both dataset
//! scales (paper: REX ≤ 17 %, MS 51–135 %).

use rex_bench::sgx_experiments::{overhead_row, run_arm_on, Arm, ArmBackend, SgxScale};
use rex_bench::{output, BenchArgs};
use rex_core::config::{GossipAlgorithm, SharingMode};
use rex_sim::report::overhead_table_markdown;

fn run_scale(scale: &SgxScale, tag: &str, backend: ArmBackend) -> Vec<(String, f64, f64)> {
    let mut rows = Vec::new();
    for algorithm in [GossipAlgorithm::Rmw, GossipAlgorithm::DPsgd] {
        for sharing in [SharingMode::RawData, SharingMode::Model] {
            let label = format!(
                "{}, {} ({tag})",
                algorithm.label(),
                match sharing {
                    SharingMode::RawData => "REX",
                    SharingMode::Model => "MS",
                }
            );
            eprintln!("[table4] {label}");
            let native = run_arm_on(
                scale,
                Arm {
                    algorithm,
                    sharing,
                    sgx: false,
                },
                backend,
            );
            let sgx = run_arm_on(
                scale,
                Arm {
                    algorithm,
                    sharing,
                    sgx: true,
                },
                backend,
            );
            rows.push(overhead_row(&label, &sgx, &native));
        }
    }
    rows
}

fn main() {
    let args = BenchArgs::parse();
    let (small, large) = if args.full {
        (SgxScale::fig6_full(&args), SgxScale::fig7_full(&args))
    } else {
        (SgxScale::fig6_quick(&args), SgxScale::fig7_quick(&args))
    };

    let backend = ArmBackend::from_args(&args);
    println!(
        "Table IV: SGX overhead vs native{}. Small scale: {}u; large: {}u (EPC {})\n",
        match backend {
            ArmBackend::Channel => "",
            ArmBackend::Tcp => ", over TCP loopback sockets",
        },
        small.num_users,
        large.num_users,
        output::human_bytes(large.epc_limit_bytes as f64)
    );

    let mut rows = run_scale(&small, &format!("{}u", small.num_users), backend);
    rows.extend(run_scale(&large, &format!("{}u", large.num_users), backend));

    let md = overhead_table_markdown(&rows);
    println!("{md}");
    let _ = output::save("table4.md", &md).map(|p| println!("[saved] {}", p.display()));
    println!("(paper, 610u: REX 5-14 %, MS 51-70 %; 15000u: REX 8-17 %, MS 91-135 %)");
}
