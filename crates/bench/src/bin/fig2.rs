//! Fig 2 — One node per user, MF model: network volume (row 1, log-scale
//! bytes in+out per node) and test error (row 2) as functions of *epochs*,
//! for the four panels. Same runs as Fig 1; different projection.

use rex_bench::mf_experiments::{run_baseline, run_panel, MfScale, FOUR_PANELS};
use rex_bench::{output, BenchArgs};
use rex_core::config::ExecutionMode;

fn main() {
    let args = BenchArgs::parse();
    let mut scale = if args.full {
        MfScale::one_user_full(&args)
    } else {
        MfScale::one_user_quick(&args)
    };
    // The paper plots Fig 2 over the first 100 epochs.
    scale.epochs = args.epochs.unwrap_or(scale.epochs.min(100));
    println!(
        "Fig 2: data volume + RMSE vs epochs. {} nodes, {} epochs",
        scale.node_count(),
        scale.epochs
    );

    let mut traces = Vec::new();
    for (label, algorithm, topology) in FOUR_PANELS {
        eprintln!("[fig2] panel {label}");
        let (rex, ms) = run_panel(&scale, label, algorithm, topology, ExecutionMode::Native);
        traces.push(rex);
        traces.push(ms);
    }
    traces.push(run_baseline(&scale));

    println!("\nPer-epoch network volume (mean per node):");
    for pair in traces.chunks(2).take(4) {
        if let [rex, ms] = pair {
            let rex_epoch = rex.total_bytes_per_node() / rex.records.len() as f64;
            let ms_epoch = ms.total_bytes_per_node() / ms.records.len() as f64;
            println!(
                "  {:<14} REX {:>12}/epoch   MS {:>12}/epoch   ratio {:>6.0}x",
                &ms.name[4..],
                output::human_bytes(rex_epoch),
                output::human_bytes(ms_epoch),
                ms_epoch / rex_epoch
            );
        }
    }
    println!("\nFinal RMSE per series:");
    for t in &traces {
        output::print_trace_summary(t);
    }
    let refs: Vec<&_> = traces.iter().collect();
    output::save_traces("fig2", &refs);
}
