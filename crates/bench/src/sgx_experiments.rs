//! SGX-vs-native experiment harness (Figs 6–7, Table IV): 8 fully
//! connected nodes, real threads, MF model, four arms per algorithm:
//! {Native, SGX} × {DS/REX, MS}.

use crate::args::BenchArgs;
use rex_core::builder::{build_mf_nodes, NodeSeeds};
use rex_core::config::{ExecutionMode, GossipAlgorithm, ProtocolConfig, SharingMode};
use rex_core::engine::{Driver, Engine, EngineConfig, TimeAxis};
use rex_core::runner::{run, Backend, ThreadedConfig, ThreadedResult};
use rex_data::{Partition, SyntheticConfig, TrainTestSplit};
use rex_ml::{MfHyperParams, MfModel};
use rex_net::tcp::TcpTransport;
use rex_tee::SgxCostModel;
use rex_topology::TopologySpec;

/// Scale of an SGX experiment.
#[derive(Debug, Clone)]
pub struct SgxScale {
    /// Users in the dataset.
    pub num_users: u32,
    /// Items.
    pub num_items: u32,
    /// Ratings.
    pub num_ratings: usize,
    /// Epoch budget.
    pub epochs: usize,
    /// Usable EPC bytes for the SGX arms. The paper's machines expose
    /// 93.5 MiB; our working sets are smaller than the C++/Eigen original
    /// (f32, lean buffers), so the beyond-EPC experiment (fig7) scales the
    /// budget to reproduce the same overcommit *ratio* (EXPERIMENTS.md).
    pub epc_limit_bytes: u64,
    /// Base seed.
    pub seed: u64,
}

impl SgxScale {
    /// Fig 6 quick: medium dataset, EPC comfortably larger than any arm.
    #[must_use]
    pub fn fig6_quick(args: &BenchArgs) -> Self {
        SgxScale {
            num_users: 200,
            num_items: 3_000,
            num_ratings: 33_000,
            epochs: args.epochs.unwrap_or(25),
            epc_limit_bytes: SgxCostModel::default().epc_limit_bytes,
            seed: args.seed,
        }
    }

    /// Fig 6 full: the MovieLens-latest shape (610 users).
    #[must_use]
    pub fn fig6_full(args: &BenchArgs) -> Self {
        SgxScale {
            num_users: 610,
            num_items: 9_000,
            num_ratings: 100_000,
            epochs: args.epochs.unwrap_or(120),
            epc_limit_bytes: SgxCostModel::default().epc_limit_bytes,
            seed: args.seed,
        }
    }

    /// Fig 7 quick: a larger dataset + an EPC budget scaled so the MS arm
    /// overcommits ~2.2x (the paper's D-PSGD-MS-to-EPC ratio at 15 k
    /// users) while REX stays near the limit.
    #[must_use]
    pub fn fig7_quick(args: &BenchArgs) -> Self {
        SgxScale {
            num_users: 1_000,
            num_items: 6_000,
            num_ratings: 150_000,
            epochs: args.epochs.unwrap_or(15),
            epc_limit_bytes: 3 * 1024 * 1024,
            seed: args.seed,
        }
    }

    /// Fig 7 full: the capped MovieLens-25M shape (15 k users).
    #[must_use]
    pub fn fig7_full(args: &BenchArgs) -> Self {
        SgxScale {
            num_users: 15_000,
            num_items: 28_830,
            num_ratings: 2_249_739,
            epochs: args.epochs.unwrap_or(60),
            epc_limit_bytes: 24 * 1024 * 1024,
            seed: args.seed,
        }
    }
}

/// One experiment arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arm {
    /// Gossip algorithm.
    pub algorithm: GossipAlgorithm,
    /// Sharing mode.
    pub sharing: SharingMode,
    /// SGX or native.
    pub sgx: bool,
}

impl Arm {
    /// Label in the paper's naming ("REX" = SGX+DS; "SGX, MS"; "Native, DS";
    /// "Native, MS").
    #[must_use]
    pub fn label(&self) -> String {
        let exec = match (self.sgx, self.sharing) {
            (true, SharingMode::RawData) => "REX".to_string(),
            (true, SharingMode::Model) => "SGX, MS".to_string(),
            (false, SharingMode::RawData) => "Native, DS".to_string(),
            (false, SharingMode::Model) => "Native, MS".to_string(),
        };
        format!("{}, {}", self.algorithm.label(), exec)
    }
}

/// All eight arms: {RMW, D-PSGD} × {DS, MS} × {Native, SGX}.
#[must_use]
pub fn all_arms() -> Vec<Arm> {
    let mut arms = Vec::with_capacity(8);
    for algorithm in [GossipAlgorithm::Rmw, GossipAlgorithm::DPsgd] {
        for sharing in [SharingMode::RawData, SharingMode::Model] {
            for sgx in [false, true] {
                arms.push(Arm {
                    algorithm,
                    sharing,
                    sgx,
                });
            }
        }
    }
    arms
}

/// Transport the real-thread arms run over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ArmBackend {
    /// In-process crossbeam channels (default).
    #[default]
    Channel,
    /// Real TCP sockets over loopback — the same run with every frame
    /// crossing the kernel's network stack. Results are bit-identical;
    /// only wall-clock timings differ.
    Tcp,
}

impl ArmBackend {
    /// Maps the shared `--tcp` CLI flag.
    #[must_use]
    pub fn from_args(args: &BenchArgs) -> Self {
        if args.tcp {
            ArmBackend::Tcp
        } else {
            ArmBackend::Channel
        }
    }
}

/// Runs one arm on the paper's 8-node fully connected deployment over
/// the chosen transport backend.
pub fn run_arm_on(scale: &SgxScale, arm: Arm, backend: ArmBackend) -> ThreadedResult {
    let dataset = SyntheticConfig {
        num_users: scale.num_users,
        num_items: scale.num_items,
        num_ratings: scale.num_ratings,
        seed: scale.seed,
        ..SyntheticConfig::default()
    }
    .generate();
    let split = TrainTestSplit::standard(&dataset, scale.seed ^ 0x6F1);
    let partition = Partition::multi_user(&split, 8);
    let graph = TopologySpec::FullyConnected.build(8, 0);
    let nodes = build_mf_nodes(
        &partition,
        &graph,
        dataset.num_users,
        dataset.num_items,
        MfHyperParams::default(),
        ProtocolConfig {
            sharing: arm.sharing,
            algorithm: arm.algorithm,
            points_per_epoch: 300,
            steps_per_epoch: 300,
            seed: scale.seed ^ 0x3A1,
            ..ProtocolConfig::default()
        },
        NodeSeeds::default(),
    );
    let execution = if arm.sgx {
        ExecutionMode::Sgx(SgxCostModel::default().with_epc_limit(scale.epc_limit_bytes))
    } else {
        ExecutionMode::Native
    };
    match backend {
        ArmBackend::Channel => {
            let mut nodes = nodes;
            run(
                &Backend::Threaded(ThreadedConfig {
                    epochs: scale.epochs,
                    execution,
                    processes_per_platform: 2, // the paper packs 2 processes/machine
                    seed: scale.seed ^ 0x991,
                }),
                &arm.label(),
                &mut nodes,
            )
        }
        ArmBackend::Tcp => {
            let mut nodes = nodes;
            Engine::<MfModel, TcpTransport>::new(
                TcpTransport::loopback(nodes.len()).expect("loopback fabric"),
                EngineConfig {
                    epochs: scale.epochs,
                    execution,
                    time: TimeAxis::Wall,
                    driver: Driver::ThreadPerNode,
                    processes_per_platform: 2,
                    seed: scale.seed ^ 0x991,
                    faults: None,
                    membership: None,
                },
            )
            .run(&arm.label(), &mut nodes)
        }
    }
}

/// Runs one arm over the default channel backend.
pub fn run_arm(scale: &SgxScale, arm: Arm) -> ThreadedResult {
    run_arm_on(scale, arm, ArmBackend::Channel)
}

/// Mean epoch duration (seconds) excluding setup.
#[must_use]
pub fn mean_epoch_secs(result: &ThreadedResult) -> f64 {
    let Some(last) = result.trace.records.last() else {
        return 0.0;
    };
    let total = last.time_ns.saturating_sub(result.setup_ns);
    total as f64 / 1e9 / result.trace.records.len() as f64
}

/// One row of Table IV: `(setup label, RAM MiB, overhead %)` computed from
/// an SGX arm and its native twin.
#[must_use]
pub fn overhead_row(
    label: &str,
    sgx: &ThreadedResult,
    native: &ThreadedResult,
) -> (String, f64, f64) {
    let t_sgx = mean_epoch_secs(sgx);
    let t_native = mean_epoch_secs(native);
    let overhead_pct = if t_native > 0.0 {
        (t_sgx / t_native - 1.0) * 100.0
    } else {
        0.0
    };
    let ram_mib = sgx.trace.peak_ram_bytes() / (1024.0 * 1024.0);
    (label.to_string(), ram_mib, overhead_pct)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arm_labels_match_paper_naming() {
        let labels: Vec<String> = all_arms().iter().map(Arm::label).collect();
        assert_eq!(labels.len(), 8);
        assert!(labels.contains(&"RMW, REX".to_string()));
        assert!(labels.contains(&"D-PSGD, SGX, MS".to_string()));
        assert!(labels.contains(&"D-PSGD, Native, DS".to_string()));
    }

    #[test]
    fn tiny_arm_runs_native_and_sgx() {
        let scale = SgxScale {
            num_users: 24,
            num_items: 150,
            num_ratings: 1_600,
            epochs: 4,
            epc_limit_bytes: SgxCostModel::default().epc_limit_bytes,
            seed: 2,
        };
        let native = run_arm(
            &scale,
            Arm {
                algorithm: GossipAlgorithm::DPsgd,
                sharing: SharingMode::RawData,
                sgx: false,
            },
        );
        let sgx = run_arm(
            &scale,
            Arm {
                algorithm: GossipAlgorithm::DPsgd,
                sharing: SharingMode::RawData,
                sgx: true,
            },
        );
        assert_eq!(native.trace.records.len(), 4);
        assert!(sgx.setup_ns > 0);
        let (label, ram, overhead) = overhead_row("D-PSGD, REX", &sgx, &native);
        assert_eq!(label, "D-PSGD, REX");
        assert!(ram > 0.0);
        // Overheads on tiny runs are noisy; just require a finite number.
        assert!(overhead.is_finite());
    }

    #[test]
    fn tcp_backend_arm_matches_channel_backend() {
        let scale = SgxScale {
            num_users: 24,
            num_items: 150,
            num_ratings: 1_600,
            epochs: 3,
            epc_limit_bytes: SgxCostModel::default().epc_limit_bytes,
            seed: 3,
        };
        let arm = Arm {
            algorithm: GossipAlgorithm::DPsgd,
            sharing: SharingMode::RawData,
            sgx: false,
        };
        let channel = run_arm_on(&scale, arm, ArmBackend::Channel);
        let tcp = run_arm_on(&scale, arm, ArmBackend::Tcp);
        // Same learning and wire traffic; only the time axis may differ.
        for (c, t) in channel.trace.records.iter().zip(&tcp.trace.records) {
            assert_eq!(c.rmse.to_bits(), t.rmse.to_bits());
            assert_eq!(c.bytes_per_node.to_bits(), t.bytes_per_node.to_bits());
        }
        assert_eq!(channel.final_stats, tcp.final_stats);
    }
}
