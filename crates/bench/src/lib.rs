//! Shared harness for regenerating every table and figure of the paper.
//!
//! Each `src/bin/figN.rs` / `src/bin/tableN.rs` binary is a thin CLI over
//! the experiment functions here; `benches/figures.rs` chains the quick
//! variants so `cargo bench` regenerates everything. DESIGN.md §4 maps
//! each paper artefact to its bench target.
//!
//! Two scales per experiment:
//! * **quick** (default) — a reduced node count / epoch budget that runs in
//!   seconds to a few minutes and preserves every qualitative conclusion;
//! * **full** (`--full`) — the paper's exact shape (610 nodes, 400 epochs,
//!   MovieLens-scale data); expect long runtimes, as the authors did
//!   (their D-PSGD/ER simulation took 5 h).

pub mod args;
pub mod dnn_experiments;
pub mod mf_experiments;
pub mod output;
pub mod sgx_experiments;

pub use args::BenchArgs;
