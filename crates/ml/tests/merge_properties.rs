//! Property tests over model merging — the heart of the D-PSGD/RMW
//! semantics (paper §III-C).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rex_data::Rating;
use rex_ml::{MfHyperParams, MfModel, Model};

fn trained_model(seed: u64, steps: usize) -> MfModel {
    let mut m = MfModel::new(6, 12, MfHyperParams::default(), 3.5, 42);
    let data: Vec<Rating> = (0..6u32)
        .flat_map(|u| {
            (0..12u32).map(move |i| Rating {
                user: u,
                item: i,
                value: 0.5 + ((u * 7 + i * 3) % 10) as f32 * 0.5,
            })
        })
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    m.train_steps(&data, steps, &mut rng);
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn merging_identical_models_is_identity(seed in any::<u64>(), w in 0.05f64..0.95) {
        let m = trained_model(seed, 200);
        let mut merged = m.clone();
        merged.merge(&[(1.0 - w, &m)], w);
        for (u, i) in [(0u32, 0u32), (3, 7), (5, 11)] {
            prop_assert!((merged.predict(u, i) - m.predict(u, i)).abs() < 1e-4,
                "prediction moved under self-merge");
        }
        prop_assert_eq!(merged.to_bytes().len(), m.to_bytes().len());
    }

    #[test]
    fn merge_is_convex_on_fully_seen_models(seed_a in 0u64..1000, seed_b in 1000u64..2000, w in 0.0f64..1.0) {
        // With both models fully trained (all rows seen), the merged
        // global mean must be the exact convex combination.
        let a = trained_model(seed_a, 400);
        let b = trained_model(seed_b, 400);
        let expected = w * f64::from(a.global_mean()) + (1.0 - w) * f64::from(b.global_mean());
        let mut merged = a.clone();
        merged.merge(&[(1.0 - w, &b)], w);
        prop_assert!((f64::from(merged.global_mean()) - expected).abs() < 1e-5);
    }

    #[test]
    fn codec_roundtrip_preserves_predictions(seed in any::<u64>()) {
        let m = trained_model(seed, 300);
        let back = MfModel::from_bytes(&m.to_bytes()).unwrap();
        for u in 0..6u32 {
            for i in 0..12u32 {
                prop_assert_eq!(back.predict(u, i), m.predict(u, i));
            }
        }
    }

    #[test]
    fn training_marks_exactly_touched_rows(step_count in 1usize..50, seed in any::<u64>()) {
        let mut m = MfModel::new(20, 20, MfHyperParams::default(), 3.0, 0);
        let data: Vec<Rating> = (0..5u32)
            .map(|i| Rating { user: i, item: i + 10, value: 3.0 })
            .collect();
        let mut rng = StdRng::seed_from_u64(seed);
        m.train_steps(&data, step_count, &mut rng);
        for u in 0..20u32 {
            let should = u < 5 && {
                // Only rows actually sampled get marked; sampled ⊆ data rows.
                m.has_user(u)
            };
            if should {
                prop_assert!(m.has_item(u + 10), "user {u} seen but its item not");
            }
            if u >= 5 {
                prop_assert!(!m.has_user(u), "untouched user {u} marked seen");
            }
        }
    }
}

#[test]
fn merge_chain_converges_models_toward_consensus() {
    // Repeated pairwise averaging (the RMW dynamic) must shrink the
    // disagreement between two models.
    let a0 = trained_model(1, 500);
    let b0 = trained_model(2, 500);
    let disagreement = |a: &MfModel, b: &MfModel| -> f64 {
        let mut d: f64 = 0.0;
        for u in 0..6u32 {
            for i in 0..12u32 {
                d += f64::from((a.predict(u, i) - b.predict(u, i)).abs());
            }
        }
        d
    };
    let before = disagreement(&a0, &b0);
    let mut a = a0;
    let mut b = b0;
    for _ in 0..5 {
        let a_snapshot = a.clone();
        a.merge(&[(0.5, &b)], 0.5);
        b.merge(&[(0.5, &a_snapshot)], 0.5);
    }
    let after = disagreement(&a, &b);
    assert!(
        after < before * 0.2,
        "consensus not approached: {before} -> {after}"
    );
}
