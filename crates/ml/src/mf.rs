//! Biased matrix factorization trained by SGD (paper §II-A-b).
//!
//! Loss (paper, §II-A-b):
//! `½ Σ (a_ui − μ − b_u − c_i − x_u·y_i)² + λ/2 (‖X‖² + ‖Y‖²)`
//! optimized by single-sample SGD. The paper's experimental setting is
//! k = 10, η = 0.005, λ = 0.1 (§IV-A3a).

use crate::bytesio::{self, Reader};
use crate::kernel;
use crate::model::{Model, ModelCodecError};
use rand::rngs::StdRng;
use rand::Rng;
use rex_data::dist::normal;
use rex_data::Rating;

const MAGIC: u32 = 0x4d46_3031; // "MF01"
const MAGIC_DELTA: u32 = 0x4d46_4431; // "MFD1"

/// Process-wide stamp source for [`MfModel::factor_version`]. Every
/// mutation takes a fresh stamp, so two models carry the same version
/// only when one is an unmutated clone of the other — which makes the
/// version a sound cache key for derived read-side data (item norms in
/// `rex_core::serve`) across *any* set of models in the process.
static FACTOR_STAMP: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

fn next_factor_stamp() -> u64 {
    FACTOR_STAMP.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}

/// Hyperparameters of the MF recommender.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MfHyperParams {
    /// Embedding dimension (paper default: 10; Fig 3 sweeps 10–50).
    pub k: usize,
    /// SGD learning rate η.
    pub learning_rate: f32,
    /// L2 regularization λ.
    pub lambda: f32,
    /// Std of the Gaussian embedding initialization.
    pub init_std: f32,
}

impl Default for MfHyperParams {
    fn default() -> Self {
        MfHyperParams {
            k: 10,
            learning_rate: 0.005,
            lambda: 0.1,
            init_std: 0.1,
        }
    }
}

/// Biased MF model over a fixed user/item universe.
///
/// Every node of a REX deployment instantiates the full embedding tables
/// (as in the paper's implementation, where models are exchanged whole);
/// the `user_seen`/`item_seen` masks track which rows carry information,
/// which drives the partial-merge rule of §III-C2.
#[derive(Debug, Clone)]
pub struct MfModel {
    hp: MfHyperParams,
    num_users: u32,
    num_items: u32,
    global_mean: f32,
    /// User embeddings, row-major `num_users × k`.
    x: Vec<f32>,
    /// Item embeddings, row-major `num_items × k`.
    y: Vec<f32>,
    /// User biases.
    b: Vec<f32>,
    /// Item biases.
    c: Vec<f32>,
    user_seen: Vec<bool>,
    item_seen: Vec<bool>,
    /// In-memory mutation stamp (see [`MfModel::factor_version`]).
    /// Deliberately *not* serialized: wire bytes and fingerprints are
    /// unchanged by its existence.
    version: u64,
}

impl MfModel {
    /// Creates a model with Gaussian-initialized embeddings and zero biases.
    /// All nodes of a deployment use the same `seed` so their initial models
    /// coincide (standard for decentralized SGD).
    #[must_use]
    pub fn new(
        num_users: u32,
        num_items: u32,
        hp: MfHyperParams,
        global_mean: f32,
        seed: u64,
    ) -> Self {
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let nu = num_users as usize;
        let ni = num_items as usize;
        let x = (0..nu * hp.k)
            .map(|_| normal(&mut rng, 0.0, f64::from(hp.init_std)) as f32)
            .collect();
        let y = (0..ni * hp.k)
            .map(|_| normal(&mut rng, 0.0, f64::from(hp.init_std)) as f32)
            .collect();
        MfModel {
            hp,
            num_users,
            num_items,
            global_mean,
            x,
            y,
            b: vec![0.0; nu],
            c: vec![0.0; ni],
            user_seen: vec![false; nu],
            item_seen: vec![false; ni],
            version: next_factor_stamp(),
        }
    }

    /// The model's current factor version: a process-unique stamp that
    /// changes on every mutation (SGD step, merge, mean update, codec
    /// reconstruction). Read-side consumers key caches of derived data
    /// (e.g. per-item factor norms) on it: an unchanged version
    /// guarantees bit-identical parameters, so the cache is exact, and
    /// any row delta — however small — invalidates it. Cloning preserves
    /// the version (a clone *is* bit-identical until mutated). The stamp
    /// is in-memory only: it never reaches the wire or the digests.
    #[must_use]
    pub fn factor_version(&self) -> u64 {
        self.version
    }

    /// Number of user rows in the embedding table.
    #[must_use]
    pub fn num_users(&self) -> u32 {
        self.num_users
    }

    /// Number of item rows in the embedding table.
    #[must_use]
    pub fn num_items(&self) -> u32 {
        self.num_items
    }

    /// The user's embedding row `x_u` (length `k`).
    ///
    /// # Panics
    /// When `user` is outside the model's user universe.
    #[must_use]
    pub fn user_factors(&self, user: u32) -> &[f32] {
        let k = self.hp.k;
        let u = user as usize;
        &self.x[u * k..(u + 1) * k]
    }

    /// The user's bias `b_u`.
    ///
    /// # Panics
    /// When `user` is outside the model's user universe.
    #[must_use]
    pub fn user_bias(&self, user: u32) -> f32 {
        self.b[user as usize]
    }

    /// The full item embedding table `Y`, row-major `num_items × k` —
    /// the serve path's blocked scan iterates this contiguously.
    #[must_use]
    pub fn item_factors(&self) -> &[f32] {
        &self.y
    }

    /// The item bias vector `c`.
    #[must_use]
    pub fn item_biases(&self) -> &[f32] {
        &self.c
    }

    /// The per-item seen mask (`item_seen[i]` ⇔ [`MfModel::has_item`]).
    #[must_use]
    pub fn item_seen_mask(&self) -> &[bool] {
        &self.item_seen
    }

    fn touch(&mut self) {
        self.version = next_factor_stamp();
    }

    /// Hyperparameters.
    #[must_use]
    pub fn hyper_params(&self) -> &MfHyperParams {
        &self.hp
    }

    /// Global mean used as prediction baseline.
    #[must_use]
    pub fn global_mean(&self) -> f32 {
        self.global_mean
    }

    /// Sets the global mean (normally derived from local training data).
    pub fn set_global_mean(&mut self, mean: f32) {
        self.global_mean = mean;
        self.touch();
    }

    /// One SGD step on a single rating.
    pub fn sgd_step(&mut self, r: &Rating) {
        let (u, i) = (r.user as usize, r.item as usize);
        let k = self.hp.k;
        let lr = self.hp.learning_rate;
        let reg = self.hp.lambda;

        let xu = &self.x[u * k..(u + 1) * k];
        let yi = &self.y[i * k..(i + 1) * k];
        let dot = kernel::dot(xu, yi);
        let pred = self.global_mean + self.b[u] + self.c[i] + dot;
        let err = r.value - pred;

        self.b[u] += lr * (err - reg * self.b[u]);
        self.c[i] += lr * (err - reg * self.c[i]);
        kernel::sgd_update(
            &mut self.x[u * k..(u + 1) * k],
            &mut self.y[i * k..(i + 1) * k],
            lr,
            err,
            reg,
        );
        self.user_seen[u] = true;
        self.item_seen[i] = true;
        self.touch();
    }

    /// Training loss (MSE + L2 terms) over `data`, for tests/diagnostics.
    ///
    /// The per-rating prediction runs through [`kernel::dot`] — the
    /// *same* kernel `sgd_step` trains with — so reported loss can
    /// never diverge bitwise from the predictions training saw.
    #[must_use]
    pub fn loss(&self, data: &[Rating]) -> f64 {
        let k = self.hp.k;
        let mse: f64 = data
            .iter()
            .map(|r| {
                let (u, i) = (r.user as usize, r.item as usize);
                let dot = kernel::dot(&self.x[u * k..(u + 1) * k], &self.y[i * k..(i + 1) * k]);
                let e = f64::from(r.value - (self.global_mean + self.b[u] + self.c[i] + dot));
                e * e
            })
            .sum::<f64>()
            * 0.5;
        let l2x: f64 = self.x.iter().map(|v| f64::from(*v) * f64::from(*v)).sum();
        let l2y: f64 = self.y.iter().map(|v| f64::from(*v) * f64::from(*v)).sum();
        mse + 0.5 * f64::from(self.hp.lambda) * (l2x + l2y)
    }

    /// Whether this model has trained on (or merged) data for `user`.
    #[must_use]
    pub fn has_user(&self, user: u32) -> bool {
        self.user_seen[user as usize]
    }

    /// Whether this model has trained on (or merged) data for `item`.
    #[must_use]
    pub fn has_item(&self, item: u32) -> bool {
        self.item_seen[item as usize]
    }

    /// Row indices of one table whose parameters differ from `reference`
    /// (embedding row, bias, or seen flag — compared bit-for-bit via
    /// `f32` equality, so reconstruction from the delta is exact).
    #[allow(clippy::too_many_arguments)]
    fn changed_rows(
        rows: usize,
        k: usize,
        emb: &[f32],
        bias: &[f32],
        seen: &[bool],
        ref_emb: &[f32],
        ref_bias: &[f32],
        ref_seen: &[bool],
    ) -> Vec<u32> {
        (0..rows)
            .filter(|&row| {
                bias[row] != ref_bias[row]
                    || seen[row] != ref_seen[row]
                    || emb[row * k..(row + 1) * k] != ref_emb[row * k..(row + 1) * k]
            })
            .map(|row| row as u32)
            .collect()
    }

    fn put_delta_section(
        buf: &mut Vec<u8>,
        rows: &[u32],
        k: usize,
        emb: &[f32],
        bias: &[f32],
        seen: &[bool],
    ) {
        bytesio::put_u32(buf, rows.len() as u32);
        bytesio::put_u32_slice(buf, rows);
        let flags: Vec<bool> = rows.iter().map(|&row| seen[row as usize]).collect();
        bytesio::put_bool_slice(buf, &flags);
        for &row in rows {
            let row = row as usize;
            bytesio::put_f32(buf, bias[row]);
            bytesio::put_f32_slice(buf, &emb[row * k..(row + 1) * k]);
        }
    }

    fn read_delta_section(
        r: &mut Reader<'_>,
        rows: usize,
        k: usize,
        emb: &mut [f32],
        bias: &mut [f32],
        seen: &mut [bool],
    ) -> Result<(), ModelCodecError> {
        let count = r.u32()? as usize;
        if count > rows {
            return Err(ModelCodecError::Malformed(format!(
                "delta claims {count} changed rows of {rows}"
            )));
        }
        let ids = r.u32_vec(count)?;
        for &row in &ids {
            if row as usize >= rows {
                return Err(ModelCodecError::Malformed(format!(
                    "delta row {row} outside table of {rows}"
                )));
            }
        }
        // Seen flags travel bit-packed after the ids, one per carried row.
        let flags = r.bool_vec(count)?;
        for (&row, &flag) in ids.iter().zip(&flags) {
            let row = row as usize;
            bias[row] = r.f32()?;
            let values = r.f32_vec(k)?;
            emb[row * k..(row + 1) * k].copy_from_slice(&values);
            seen[row] = flag;
        }
        Ok(())
    }

    fn check_compatible(&self, other: &Self) {
        assert!(
            self.num_users == other.num_users
                && self.num_items == other.num_items
                && self.hp.k == other.hp.k,
            "merging incompatible MF models ({}x{} k={} vs {}x{} k={})",
            self.num_users,
            self.num_items,
            self.hp.k,
            other.num_users,
            other.num_items,
            other.hp.k
        );
    }
}

/// Merges one embedding table + bias vector in place without per-row
/// allocations (this is the hot path of model-sharing simulations: ~10 k
/// rows × ~30 contributors per node per epoch).
#[allow(clippy::too_many_arguments)]
fn merge_table(
    k: usize,
    rows: usize,
    emb: &mut [f32],
    bias: &mut [f32],
    seen: &mut [bool],
    self_weight: f64,
    contributions: &[(f64, &MfModel)],
    select: impl Fn(&MfModel) -> (&[f32], &[f32], &[bool]),
    scratch: &mut [f64],
) {
    for row in 0..rows {
        let mut total = if seen[row] { self_weight } else { 0.0 };
        for (w, m) in contributions {
            let (_, _, m_seen) = select(m);
            if m_seen[row] {
                total += w;
            }
        }
        if total <= 0.0 {
            continue; // nobody has information for this row: keep local init
        }
        let inv = 1.0 / total;
        let base = row * k;
        scratch.iter_mut().for_each(|a| *a = 0.0);
        let mut bias_acc = 0.0f64;
        if seen[row] {
            let w = self_weight * inv;
            kernel::scale_add(scratch, w, &emb[base..base + k]);
            bias_acc += w * f64::from(bias[row]);
        }
        for (wc, m) in contributions {
            let (m_emb, m_bias, m_seen) = select(m);
            if m_seen[row] {
                let w = wc * inv;
                kernel::scale_add(scratch, w, &m_emb[base..base + k]);
                bias_acc += w * f64::from(m_bias[row]);
            }
        }
        for d in 0..k {
            emb[base + d] = scratch[d] as f32;
        }
        bias[row] = bias_acc as f32;
        seen[row] = true;
    }
}

impl Model for MfModel {
    fn train_steps(&mut self, data: &[Rating], steps: usize, rng: &mut StdRng) {
        if data.is_empty() {
            return;
        }
        for _ in 0..steps {
            let idx = rng.gen_range(0..data.len());
            self.sgd_step(&data[idx]);
        }
    }

    fn train_steps_batched(&mut self, data: &[Rating], steps: usize, rng: &mut StdRng) {
        if data.is_empty() {
            return;
        }
        // Draw exactly the same index sequence train_steps would (the
        // node's RNG consumption must not depend on which path runs),
        // then bucket by user row: the stable sort keeps draw order
        // within a user while the sweep walks the x table front-to-back.
        let mut picks: Vec<u32> = (0..steps)
            .map(|_| rng.gen_range(0..data.len()) as u32)
            .collect();
        picks.sort_by_key(|&idx| data[idx as usize].user);
        for idx in picks {
            self.sgd_step(&data[idx as usize]);
        }
    }

    fn predict(&self, user: u32, item: u32) -> f32 {
        let (u, i) = (user as usize, item as usize);
        let mut pred = self.global_mean;
        let user_ok = self.user_seen.get(u).copied().unwrap_or(false);
        let item_ok = self.item_seen.get(i).copied().unwrap_or(false);
        if user_ok {
            pred += self.b[u];
        }
        if item_ok {
            pred += self.c[i];
        }
        if user_ok && item_ok {
            let k = self.hp.k;
            pred += kernel::dot(&self.x[u * k..(u + 1) * k], &self.y[i * k..(i + 1) * k]);
        }
        pred.clamp(0.5, 5.0)
    }

    fn merge(&mut self, contributions: &[(f64, &Self)], self_weight: f64) {
        for (_, other) in contributions {
            self.check_compatible(other);
        }
        let weight_sum: f64 = self_weight + contributions.iter().map(|(w, _)| *w).sum::<f64>();
        debug_assert!(
            (weight_sum - 1.0).abs() < 1e-6,
            "merge weights sum to {weight_sum}"
        );

        // Global mean merges unconditionally (every node has one).
        let mut mean = self_weight * f64::from(self.global_mean);
        for (w, m) in contributions {
            mean += w * f64::from(m.global_mean);
        }
        self.global_mean = mean as f32;

        let k = self.hp.k;
        let mut scratch = vec![0.0f64; k];
        merge_table(
            k,
            self.num_users as usize,
            &mut self.x,
            &mut self.b,
            &mut self.user_seen,
            self_weight,
            contributions,
            |m| (m.x.as_slice(), m.b.as_slice(), m.user_seen.as_slice()),
            &mut scratch,
        );
        merge_table(
            k,
            self.num_items as usize,
            &mut self.y,
            &mut self.c,
            &mut self.item_seen,
            self_weight,
            contributions,
            |m| (m.y.as_slice(), m.c.as_slice(), m.item_seen.as_slice()),
            &mut scratch,
        );
        self.touch();
    }

    fn param_count(&self) -> usize {
        self.x.len() + self.y.len() + self.b.len() + self.c.len()
    }

    fn wire_size(&self) -> usize {
        // header (magic, dims, k) + mean + params + bit-packed masks
        4 + 4
            + 4
            + 4
            + 4
            + self.param_count() * 4
            + (self.num_users as usize).div_ceil(8)
            + (self.num_items as usize).div_ceil(8)
    }

    fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.wire_size());
        bytesio::put_u32(&mut buf, MAGIC);
        bytesio::put_u32(&mut buf, self.num_users);
        bytesio::put_u32(&mut buf, self.num_items);
        bytesio::put_u32(&mut buf, self.hp.k as u32);
        bytesio::put_f32(&mut buf, self.global_mean);
        bytesio::put_f32_slice(&mut buf, &self.b);
        bytesio::put_f32_slice(&mut buf, &self.c);
        bytesio::put_f32_slice(&mut buf, &self.x);
        bytesio::put_f32_slice(&mut buf, &self.y);
        bytesio::put_bool_slice(&mut buf, &self.user_seen);
        bytesio::put_bool_slice(&mut buf, &self.item_seen);
        buf
    }

    fn from_bytes(bytes: &[u8]) -> Result<Self, ModelCodecError> {
        let mut r = Reader::new(bytes);
        if r.u32()? != MAGIC {
            return Err(ModelCodecError::Malformed("bad magic".into()));
        }
        let num_users = r.u32()?;
        let num_items = r.u32()?;
        let k = r.u32()? as usize;
        if k == 0 || k > 4096 {
            return Err(ModelCodecError::Incompatible(format!("k = {k}")));
        }
        let global_mean = r.f32()?;
        let nu = num_users as usize;
        let ni = num_items as usize;
        let b = r.f32_vec(nu)?;
        let c = r.f32_vec(ni)?;
        let x = r.f32_vec(nu * k)?;
        let y = r.f32_vec(ni * k)?;
        let user_seen = r.bool_vec(nu)?;
        let item_seen = r.bool_vec(ni)?;
        if r.remaining() != 0 {
            return Err(ModelCodecError::Malformed(format!(
                "{} trailing bytes",
                r.remaining()
            )));
        }
        Ok(MfModel {
            hp: MfHyperParams {
                k,
                ..MfHyperParams::default()
            },
            num_users,
            num_items,
            global_mean,
            x,
            y,
            b,
            c,
            user_seen,
            item_seen,
            version: next_factor_stamp(),
        })
    }

    fn memory_bytes(&self) -> usize {
        self.param_count() * 4 + self.user_seen.len() + self.item_seen.len()
    }

    /// Fingerprint over the parameter tables and seen masks — the global
    /// mean is deliberately excluded, because every node's reference is
    /// the fleet's shared initialization *except* for its locally derived
    /// mean, and the delta carries the mean explicitly.
    fn ref_fingerprint(&self) -> u64 {
        let mut bytes = Vec::with_capacity(self.param_count() * 4);
        bytesio::put_f32_slice(&mut bytes, &self.b);
        bytesio::put_f32_slice(&mut bytes, &self.c);
        bytesio::put_f32_slice(&mut bytes, &self.x);
        bytesio::put_f32_slice(&mut bytes, &self.y);
        bytesio::put_bool_slice(&mut bytes, &self.user_seen);
        bytesio::put_bool_slice(&mut bytes, &self.item_seen);
        bytesio::fnv1a64(&bytes)
    }

    fn delta_bytes(
        &self,
        reference: &Self,
        ref_fingerprint: u64,
        max_density: f64,
    ) -> Option<Vec<u8>> {
        self.check_compatible(reference);
        let k = self.hp.k;
        let users = Self::changed_rows(
            self.num_users as usize,
            k,
            &self.x,
            &self.b,
            &self.user_seen,
            &reference.x,
            &reference.b,
            &reference.user_seen,
        );
        let items = Self::changed_rows(
            self.num_items as usize,
            k,
            &self.y,
            &self.c,
            &self.item_seen,
            &reference.y,
            &reference.c,
            &reference.item_seen,
        );
        let total_rows = (self.num_users + self.num_items) as usize;
        let density = (users.len() + items.len()) as f64 / total_rows.max(1) as f64;
        if density > max_density {
            return None;
        }
        let mut buf = Vec::with_capacity(32 + (users.len() + items.len()) * (8 + k * 4));
        bytesio::put_u32(&mut buf, MAGIC_DELTA);
        bytesio::put_u32(&mut buf, self.num_users);
        bytesio::put_u32(&mut buf, self.num_items);
        bytesio::put_u32(&mut buf, k as u32);
        bytesio::put_u64(&mut buf, ref_fingerprint);
        bytesio::put_f32(&mut buf, self.global_mean);
        Self::put_delta_section(&mut buf, &users, k, &self.x, &self.b, &self.user_seen);
        Self::put_delta_section(&mut buf, &items, k, &self.y, &self.c, &self.item_seen);
        Some(buf)
    }

    fn apply_delta(
        reference: &Self,
        ref_fingerprint: u64,
        bytes: &[u8],
    ) -> Result<Self, ModelCodecError> {
        let mut r = Reader::new(bytes);
        if r.u32()? != MAGIC_DELTA {
            return Err(ModelCodecError::Malformed("bad delta magic".into()));
        }
        let num_users = r.u32()?;
        let num_items = r.u32()?;
        let k = r.u32()? as usize;
        if num_users != reference.num_users
            || num_items != reference.num_items
            || k != reference.hp.k
        {
            return Err(ModelCodecError::Incompatible(format!(
                "delta shape {num_users}x{num_items} k={k} vs reference {}x{} k={}",
                reference.num_users, reference.num_items, reference.hp.k
            )));
        }
        let fingerprint = r.u64()?;
        if fingerprint != ref_fingerprint {
            return Err(ModelCodecError::Incompatible(format!(
                "delta encoded against reference {fingerprint:#x}, ours is {ref_fingerprint:#x}"
            )));
        }
        let mut model = reference.clone();
        model.global_mean = r.f32()?;
        Self::read_delta_section(
            &mut r,
            num_users as usize,
            k,
            &mut model.x,
            &mut model.b,
            &mut model.user_seen,
        )?;
        Self::read_delta_section(
            &mut r,
            num_items as usize,
            k,
            &mut model.y,
            &mut model.c,
            &mut model.item_seen,
        )?;
        if r.remaining() != 0 {
            return Err(ModelCodecError::Malformed(format!(
                "{} trailing bytes",
                r.remaining()
            )));
        }
        model.touch();
        Ok(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::rmse;
    use rand::SeedableRng;
    use rex_data::SyntheticConfig;

    fn tiny_data() -> Vec<Rating> {
        SyntheticConfig {
            num_users: 20,
            num_items: 50,
            num_ratings: 600,
            seed: 3,
            ..SyntheticConfig::default()
        }
        .generate()
        .ratings
    }

    #[test]
    fn param_count_matches_paper_shape() {
        // 610 users, 9000 items, k=10: (610+9000)*10 + 610 + 9000 params.
        let m = MfModel::new(610, 9_000, MfHyperParams::default(), 3.5, 0);
        assert_eq!(m.param_count(), (610 + 9_000) * 10 + 610 + 9_000);
        // ~420 KiB on the wire, vs 12 bytes per raw triplet: the 2-orders
        // -of-magnitude gap Fig 2 reports.
        assert!(m.wire_size() > 100_000);
    }

    #[test]
    fn training_reduces_loss_and_rmse() {
        let data = tiny_data();
        let mut m = MfModel::new(20, 50, MfHyperParams::default(), 3.5, 1);
        let before_loss = m.loss(&data);
        let before_rmse = rmse(&m, &data).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..30 {
            m.train_steps(&data, data.len(), &mut rng);
        }
        assert!(m.loss(&data) < before_loss);
        assert!(rmse(&m, &data).unwrap() < before_rmse - 0.05);
    }

    #[test]
    fn batched_training_reduces_loss_and_is_deterministic() {
        let data = tiny_data();
        let run = || {
            let mut m = MfModel::new(20, 50, MfHyperParams::default(), 3.5, 1);
            let mut rng = StdRng::seed_from_u64(7);
            for _ in 0..30 {
                m.train_steps_batched(&data, data.len(), &mut rng);
            }
            m
        };
        let before = MfModel::new(20, 50, MfHyperParams::default(), 3.5, 1).loss(&data);
        let a = run();
        assert!(a.loss(&data) < before, "batched training must learn");
        assert_eq!(a.to_bytes(), run().to_bytes(), "batched path not seeded");
    }

    #[test]
    fn batched_path_consumes_rng_like_the_sequential_path() {
        // The protocol's determinism contract: a node's RNG state after
        // training must not depend on which path ran — both draw exactly
        // `steps` uniform indices.
        let data = tiny_data();
        let mut seq_rng = StdRng::seed_from_u64(11);
        let mut bat_rng = StdRng::seed_from_u64(11);
        let mut seq = MfModel::new(20, 50, MfHyperParams::default(), 3.5, 1);
        let mut bat = seq.clone();
        seq.train_steps(&data, 137, &mut seq_rng);
        bat.train_steps_batched(&data, 137, &mut bat_rng);
        assert_eq!(
            seq_rng.gen::<u64>(),
            bat_rng.gen::<u64>(),
            "RNG streams diverged between the two training paths"
        );
    }

    #[test]
    fn batched_path_is_bit_identical_on_single_user_data() {
        // Width-1 shards: grouping by user is a no-op, so the batched
        // sweep must replay the sequential update order bit-for-bit.
        let data: Vec<Rating> = tiny_data().into_iter().filter(|r| r.user == 3).collect();
        assert!(data.len() > 5, "need some single-user data");
        let mut seq = MfModel::new(20, 50, MfHyperParams::default(), 3.5, 1);
        let mut bat = seq.clone();
        let mut seq_rng = StdRng::seed_from_u64(5);
        let mut bat_rng = StdRng::seed_from_u64(5);
        seq.train_steps(&data, 200, &mut seq_rng);
        bat.train_steps_batched(&data, 200, &mut bat_rng);
        assert_eq!(seq.to_bytes(), bat.to_bytes());
    }

    #[test]
    fn batched_path_groups_updates_by_ascending_user_row() {
        // Two interleaved users: the batched sweep applies all of user
        // 0's draws before user 1's regardless of draw order, which a
        // deliberately order-sensitive probe can observe — while the
        // same-user subsequences stay in draw order (stable sort).
        let data = vec![
            Rating {
                user: 1,
                item: 0,
                value: 5.0,
            },
            Rating {
                user: 0,
                item: 0,
                value: 1.0,
            },
        ];
        let mut seq = MfModel::new(2, 1, MfHyperParams::default(), 3.0, 9);
        let mut bat = seq.clone();
        let mut seq_rng = StdRng::seed_from_u64(1);
        let mut bat_rng = StdRng::seed_from_u64(1);
        seq.train_steps(&data, 64, &mut seq_rng);
        bat.train_steps_batched(&data, 64, &mut bat_rng);
        // Both saw the same multiset of samples, so both learned both
        // users; the item row (shared) differs because the update order
        // across users changed.
        assert!(bat.has_user(0) && bat.has_user(1));
        assert!(seq.has_user(0) && seq.has_user(1));
        assert_ne!(
            seq.to_bytes(),
            bat.to_bytes(),
            "reordering across users should perturb the shared item row"
        );
    }

    #[test]
    fn sgd_step_matches_finite_difference_gradient() {
        // Check the analytic update direction against numeric d(loss)/d(b_u).
        let r = Rating {
            user: 0,
            item: 0,
            value: 5.0,
        };
        let m = MfModel::new(
            1,
            1,
            MfHyperParams {
                lambda: 0.0,
                ..Default::default()
            },
            3.0,
            2,
        );
        let eps = 1e-3f32;
        let base_loss = m.loss(&[r]);
        let mut bumped = m.clone();
        bumped.b[0] += eps;
        let d_num = (bumped.loss(&[r]) - base_loss) / f64::from(eps);
        // Analytic: dJ/db_u = -(r - μ - b_u - c_i - x_u·y_i).
        let dot: f32 = m.x.iter().zip(&m.y).map(|(a, b)| a * b).sum();
        let err = f64::from(r.value - (m.global_mean + m.b[0] + m.c[0] + dot));
        assert!(
            (d_num + err).abs() < 1e-2,
            "numeric {d_num} vs analytic {}",
            -err
        );
    }

    #[test]
    fn predict_clamped_and_falls_back() {
        let m = MfModel::new(5, 5, MfHyperParams::default(), 3.5, 0);
        // Untrained model predicts the global mean for any pair.
        assert_eq!(m.predict(0, 0), 3.5);
        let clamped = MfModel::new(5, 5, MfHyperParams::default(), 99.0, 0);
        assert_eq!(clamped.predict(1, 1), 5.0);
    }

    #[test]
    fn seen_masks_track_training() {
        let mut m = MfModel::new(3, 3, MfHyperParams::default(), 3.5, 0);
        assert!(!m.has_user(1) && !m.has_item(2));
        m.sgd_step(&Rating {
            user: 1,
            item: 2,
            value: 4.0,
        });
        assert!(m.has_user(1) && m.has_item(2));
        assert!(!m.has_user(0) && !m.has_item(0));
    }

    #[test]
    fn codec_roundtrip() {
        let data = tiny_data();
        let mut m = MfModel::new(20, 50, MfHyperParams::default(), 3.5, 1);
        let mut rng = StdRng::seed_from_u64(0);
        m.train_steps(&data, 500, &mut rng);
        let bytes = m.to_bytes();
        assert_eq!(bytes.len(), m.wire_size());
        let back = MfModel::from_bytes(&bytes).unwrap();
        assert_eq!(back.param_count(), m.param_count());
        assert_eq!(back.x, m.x);
        assert_eq!(back.y, m.y);
        assert_eq!(back.b, m.b);
        assert_eq!(back.user_seen, m.user_seen);
        for (u, i) in [(0u32, 0u32), (3, 7), (19, 49)] {
            assert_eq!(back.predict(u, i), m.predict(u, i));
        }
    }

    #[test]
    fn codec_rejects_garbage() {
        assert!(MfModel::from_bytes(&[1, 2, 3]).is_err());
        let m = MfModel::new(2, 2, MfHyperParams::default(), 3.5, 0);
        let mut bytes = m.to_bytes();
        bytes.push(0); // trailing garbage
        assert!(MfModel::from_bytes(&bytes).is_err());
        let mut bad_magic = m.to_bytes();
        bad_magic[0] ^= 0xff;
        assert!(MfModel::from_bytes(&bad_magic).is_err());
    }

    #[test]
    fn merge_average_of_two() {
        let mut a = MfModel::new(2, 2, MfHyperParams::default(), 3.0, 0);
        let mut b = MfModel::new(2, 2, MfHyperParams::default(), 4.0, 0);
        // a trains user 0, b trains user 1.
        a.sgd_step(&Rating {
            user: 0,
            item: 0,
            value: 5.0,
        });
        b.sgd_step(&Rating {
            user: 1,
            item: 1,
            value: 1.0,
        });
        let b_bias_u1 = b.b[1];
        let a_bias_u0 = a.b[0];
        a.merge(&[(0.5, &b)], 0.5);
        // Mean averaged.
        assert!((a.global_mean - 3.5).abs() < 1e-6);
        // Row seen only by b: copied from b (renormalized weight 1).
        assert!((a.b[1] - b_bias_u1).abs() < 1e-6);
        assert!(a.has_user(1));
        // Row seen only by a: kept.
        assert!((a.b[0] - a_bias_u0).abs() < 1e-6);
        assert!(a.has_user(0));
    }

    #[test]
    fn merge_weighted_rows_seen_by_both() {
        let mut a = MfModel::new(1, 1, MfHyperParams::default(), 3.0, 0);
        let mut b = MfModel::new(1, 1, MfHyperParams::default(), 3.0, 0);
        a.sgd_step(&Rating {
            user: 0,
            item: 0,
            value: 5.0,
        });
        b.sgd_step(&Rating {
            user: 0,
            item: 0,
            value: 1.0,
        });
        let expected = 0.25 * a.b[0] + 0.75 * b.b[0];
        a.merge(&[(0.75, &b)], 0.25);
        assert!((a.b[0] - expected).abs() < 1e-6);
    }

    #[test]
    fn merge_ignores_unseen_contributors() {
        let mut a = MfModel::new(1, 1, MfHyperParams::default(), 3.0, 0);
        a.sgd_step(&Rating {
            user: 0,
            item: 0,
            value: 5.0,
        });
        let fresh = MfModel::new(1, 1, MfHyperParams::default(), 3.0, 99);
        let a_b0 = a.b[0];
        let a_x: Vec<f32> = a.x.clone();
        a.merge(&[(0.5, &fresh)], 0.5);
        // fresh never saw user 0 -> a's row must be untouched.
        assert!((a.b[0] - a_b0).abs() < 1e-6);
        assert_eq!(a.x, a_x);
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn merge_rejects_mismatched_dims() {
        let mut a = MfModel::new(2, 2, MfHyperParams::default(), 3.0, 0);
        let b = MfModel::new(3, 2, MfHyperParams::default(), 3.0, 0);
        a.merge(&[(0.5, &b)], 0.5);
    }

    #[test]
    fn delta_roundtrip_is_bit_exact() {
        let reference = MfModel::new(20, 50, MfHyperParams::default(), 3.5, 1);
        let fp = reference.ref_fingerprint();
        let mut m = reference.clone();
        m.set_global_mean(2.75);
        let mut rng = StdRng::seed_from_u64(9);
        m.train_steps(&tiny_data(), 40, &mut rng);
        let delta = m.delta_bytes(&reference, fp, 1.0).expect("delta encodes");
        let back = MfModel::apply_delta(&reference, fp, &delta).unwrap();
        // Reconstruction is bit-exact: the full dense serializations agree.
        assert_eq!(back.to_bytes(), m.to_bytes());
        // And the delta beats the dense wire form for this few-rows case.
        assert!(
            delta.len() < m.wire_size(),
            "{} vs {}",
            delta.len(),
            m.wire_size()
        );
    }

    #[test]
    fn empty_delta_carries_only_the_mean() {
        let reference = MfModel::new(8, 8, MfHyperParams::default(), 3.5, 4);
        let fp = reference.ref_fingerprint();
        let mut m = reference.clone();
        m.set_global_mean(4.25);
        let delta = m
            .delta_bytes(&reference, fp, 0.0)
            .expect("zero rows changed");
        let back = MfModel::apply_delta(&reference, fp, &delta).unwrap();
        assert_eq!(back.to_bytes(), m.to_bytes());
        // header (4 u32 + u64 + f32) + two zero-count sections.
        assert_eq!(delta.len(), 16 + 8 + 4 + 2 * 4);
    }

    #[test]
    fn dense_fallback_when_density_crosses_threshold() {
        let reference = MfModel::new(4, 4, MfHyperParams::default(), 3.5, 4);
        let fp = reference.ref_fingerprint();
        let mut m = reference.clone();
        // Touch one user row + one item row: density 2/8 = 0.25.
        m.sgd_step(&Rating {
            user: 1,
            item: 2,
            value: 4.0,
        });
        assert!(m.delta_bytes(&reference, fp, 0.25).is_some());
        assert!(m.delta_bytes(&reference, fp, 0.2499).is_none());
    }

    #[test]
    fn delta_rejects_wrong_reference_and_garbage() {
        let reference = MfModel::new(8, 8, MfHyperParams::default(), 3.5, 4);
        let fp = reference.ref_fingerprint();
        let mut m = reference.clone();
        m.sgd_step(&Rating {
            user: 0,
            item: 0,
            value: 5.0,
        });
        let delta = m.delta_bytes(&reference, fp, 1.0).unwrap();
        // A reference with different parameters has a different
        // fingerprint: decode must refuse, not corrupt.
        let other = MfModel::new(8, 8, MfHyperParams::default(), 3.5, 99);
        let other_fp = other.ref_fingerprint();
        assert_ne!(fp, other_fp);
        assert!(matches!(
            MfModel::apply_delta(&other, other_fp, &delta),
            Err(ModelCodecError::Incompatible(_))
        ));
        // Same parameters but a different local mean: same fingerprint —
        // deltas are exchangeable across nodes by design.
        let mut mean_shifted = reference.clone();
        mean_shifted.set_global_mean(1.0);
        assert_eq!(mean_shifted.ref_fingerprint(), fp);
        assert!(MfModel::apply_delta(&mean_shifted, fp, &delta).is_ok());
        // Truncations and tag garbage fail cleanly.
        for cut in 0..delta.len() {
            assert!(
                MfModel::apply_delta(&reference, fp, &delta[..cut]).is_err(),
                "prefix {cut} accepted"
            );
        }
        let mut bad = delta.clone();
        bad[0] ^= 0xff;
        assert!(MfModel::apply_delta(&reference, fp, &bad).is_err());
    }

    #[test]
    fn factor_version_changes_on_every_mutation_path() {
        let data = tiny_data();
        let mut m = MfModel::new(20, 50, MfHyperParams::default(), 3.5, 1);
        let v0 = m.factor_version();

        // Clone preserves the stamp: a clone is bit-identical.
        let clone = m.clone();
        assert_eq!(clone.factor_version(), v0);

        // Every mutation path re-stamps.
        m.sgd_step(&data[0]);
        let v1 = m.factor_version();
        assert_ne!(v1, v0, "sgd_step must invalidate");
        m.set_global_mean(3.75);
        let v2 = m.factor_version();
        assert_ne!(v2, v1, "set_global_mean must invalidate");
        let other = MfModel::new(20, 50, MfHyperParams::default(), 3.5, 2);
        m.merge(&[(0.5, &other)], 0.5);
        let v3 = m.factor_version();
        assert_ne!(v3, v2, "merge must invalidate");
        let mut rng = StdRng::seed_from_u64(4);
        m.train_steps_batched(&data, 10, &mut rng);
        assert_ne!(m.factor_version(), v3, "batched training must invalidate");

        // Codec reconstructions are distinct objects: fresh stamps, so a
        // cache keyed on another model's version can never alias them.
        let decoded = MfModel::from_bytes(&m.to_bytes()).unwrap();
        assert_ne!(decoded.factor_version(), m.factor_version());
        let fp = clone.ref_fingerprint();
        let delta = m.delta_bytes(&clone, fp, 1.0).unwrap();
        let applied = MfModel::apply_delta(&clone, fp, &delta).unwrap();
        assert_ne!(applied.factor_version(), clone.factor_version());

        // The stamp is process-unique: two different models never share.
        let a = MfModel::new(2, 2, MfHyperParams::default(), 3.0, 0);
        let b = MfModel::new(2, 2, MfHyperParams::default(), 3.0, 0);
        assert_ne!(a.factor_version(), b.factor_version());
    }

    #[test]
    fn factor_accessors_expose_the_predict_inputs() {
        let data = tiny_data();
        let mut m = MfModel::new(20, 50, MfHyperParams::default(), 3.5, 1);
        let mut rng = StdRng::seed_from_u64(3);
        m.train_steps(&data, 400, &mut rng);
        assert_eq!(m.num_users(), 20);
        assert_eq!(m.num_items(), 50);
        let k = m.hyper_params().k;
        assert_eq!(m.item_factors().len(), 50 * k);
        assert_eq!(m.item_biases().len(), 50);
        assert_eq!(m.item_seen_mask().len(), 50);
        // Recomposing predict() from the accessors matches it bit-for-bit.
        for (u, i) in [(0u32, 0u32), (3, 7), (19, 49)] {
            let mut score = m.global_mean();
            if m.has_user(u) {
                score += m.user_bias(u);
            }
            if m.has_item(i) {
                score += m.item_biases()[i as usize];
            }
            if m.has_user(u) && m.has_item(i) {
                let yi = &m.item_factors()[i as usize * k..(i as usize + 1) * k];
                let dot: f32 = m.user_factors(u).iter().zip(yi).map(|(a, b)| a * b).sum();
                score += dot;
            }
            assert_eq!(score.clamp(0.5, 5.0).to_bits(), m.predict(u, i).to_bits());
        }
        assert_eq!(
            m.item_seen_mask().iter().filter(|&&s| s).count(),
            (0..50).filter(|&i| m.has_item(i)).count()
        );
    }

    #[test]
    fn identical_inits_across_nodes() {
        let a = MfModel::new(4, 4, MfHyperParams::default(), 3.5, 42);
        let b = MfModel::new(4, 4, MfHyperParams::default(), 3.5, 42);
        assert_eq!(a.x, b.x);
        assert_eq!(a.y, b.y);
    }

    #[test]
    fn wire_size_scales_linearly_with_k() {
        // Fig 3: MS network load grows linearly in the embedding size.
        let sizes: Vec<usize> = [10usize, 20, 30, 40, 50]
            .iter()
            .map(|&k| {
                MfModel::new(
                    100,
                    500,
                    MfHyperParams {
                        k,
                        ..Default::default()
                    },
                    3.5,
                    0,
                )
                .wire_size()
            })
            .collect();
        let d1 = sizes[1] - sizes[0];
        for w in sizes.windows(2) {
            assert_eq!(w[1] - w[0], d1, "non-linear growth: {sizes:?}");
        }
    }
}
