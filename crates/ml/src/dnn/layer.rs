//! Layers and the Adam optimizer state for the DNN recommender.

use super::tensor::Matrix;
use rand::rngs::StdRng;
use rand::Rng;

/// Adam hyperparameters (paper §IV-A3b: η = 1e-4, weight decay 1e-5;
/// betas/eps are PyTorch defaults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdamParams {
    /// Learning rate η.
    pub learning_rate: f32,
    /// L2 weight decay added to the gradient (PyTorch-style Adam).
    pub weight_decay: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical stabilizer.
    pub eps: f32,
}

impl Default for AdamParams {
    fn default() -> Self {
        AdamParams {
            learning_rate: 1e-4,
            weight_decay: 1e-5,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }
}

/// First/second moment buffers for one parameter tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct AdamState {
    m: Vec<f32>,
    v: Vec<f32>,
}

impl AdamState {
    /// Zero-initialized state for `len` parameters.
    #[must_use]
    pub fn new(len: usize) -> Self {
        AdamState {
            m: vec![0.0; len],
            v: vec![0.0; len],
        }
    }

    /// Applies one Adam update to `params` given `grads` at timestep `t`
    /// (1-based).
    pub fn update(&mut self, params: &mut [f32], grads: &[f32], hp: &AdamParams, t: u64) {
        debug_assert_eq!(params.len(), grads.len());
        debug_assert_eq!(params.len(), self.m.len());
        let bc1 = 1.0 - hp.beta1.powi(t as i32);
        let bc2 = 1.0 - hp.beta2.powi(t as i32);
        for i in 0..params.len() {
            let g = grads[i] + hp.weight_decay * params[i];
            self.m[i] = hp.beta1 * self.m[i] + (1.0 - hp.beta1) * g;
            self.v[i] = hp.beta2 * self.v[i] + (1.0 - hp.beta2) * g * g;
            let m_hat = self.m[i] / bc1;
            let v_hat = self.v[i] / bc2;
            params[i] -= hp.learning_rate * m_hat / (v_hat.sqrt() + hp.eps);
        }
    }

    /// Applies one Adam update to a sub-range (one embedding row) of a
    /// parameter vector; used for lazy/sparse embedding updates.
    pub fn update_range(
        &mut self,
        params: &mut [f32],
        grads: &[f32],
        start: usize,
        hp: &AdamParams,
        t: u64,
    ) {
        let end = start + grads.len();
        let bc1 = 1.0 - hp.beta1.powi(t as i32);
        let bc2 = 1.0 - hp.beta2.powi(t as i32);
        for (offset, &g_raw) in grads.iter().enumerate() {
            let i = start + offset;
            debug_assert!(i < end);
            let g = g_raw + hp.weight_decay * params[i];
            self.m[i] = hp.beta1 * self.m[i] + (1.0 - hp.beta1) * g;
            self.v[i] = hp.beta2 * self.v[i] + (1.0 - hp.beta2) * g * g;
            let m_hat = self.m[i] / bc1;
            let v_hat = self.v[i] / bc2;
            params[i] -= hp.learning_rate * m_hat / (v_hat.sqrt() + hp.eps);
        }
    }

    /// Memory footprint in bytes.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        (self.m.len() + self.v.len()) * 4
    }
}

/// Fully connected layer `y = x·W + b` with its Adam state.
#[derive(Debug, Clone)]
pub struct Linear {
    /// Weights, `input_dim × output_dim`.
    pub w: Matrix,
    /// Bias, `output_dim`.
    pub b: Vec<f32>,
    adam_w: AdamState,
    adam_b: AdamState,
}

/// Gradients produced by [`Linear::backward`].
pub struct LinearGrads {
    /// dL/dW.
    pub dw: Matrix,
    /// dL/db.
    pub db: Vec<f32>,
    /// dL/dX (propagated to the previous layer).
    pub dx: Matrix,
}

impl Linear {
    /// He-style initialization: W ~ N(0, sqrt(2/in)), b = 0.
    #[must_use]
    pub fn new(input_dim: usize, output_dim: usize, rng: &mut StdRng) -> Self {
        let std = (2.0 / input_dim as f32).sqrt();
        Linear {
            w: Matrix::randn(input_dim, output_dim, std, rng),
            b: vec![0.0; output_dim],
            adam_w: AdamState::new(input_dim * output_dim),
            adam_b: AdamState::new(output_dim),
        }
    }

    /// Input dimension.
    #[must_use]
    pub fn input_dim(&self) -> usize {
        self.w.rows()
    }

    /// Output dimension.
    #[must_use]
    pub fn output_dim(&self) -> usize {
        self.w.cols()
    }

    /// Forward pass: `x (B×in) -> (B×out)`.
    #[must_use]
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut y = x.matmul(&self.w);
        for r in 0..y.rows() {
            let row = y.row_mut(r);
            for (v, b) in row.iter_mut().zip(&self.b) {
                *v += b;
            }
        }
        y
    }

    /// Backward pass given the forward input `x` and upstream gradient `dy`.
    #[must_use]
    pub fn backward(&self, x: &Matrix, dy: &Matrix) -> LinearGrads {
        let dw = x.t_matmul(dy);
        let mut db = vec![0.0f32; self.output_dim()];
        for r in 0..dy.rows() {
            for (d, v) in db.iter_mut().zip(dy.row(r)) {
                *d += v;
            }
        }
        let dx = dy.matmul_t(&self.w);
        LinearGrads { dw, db, dx }
    }

    /// Applies Adam with the layer's state.
    pub fn apply(&mut self, grads: &LinearGrads, hp: &AdamParams, t: u64) {
        self.adam_w
            .update(self.w.data_mut(), grads.dw.data(), hp, t);
        self.adam_b.update(&mut self.b, &grads.db, hp, t);
    }

    /// Number of learnable parameters.
    #[must_use]
    pub fn param_count(&self) -> usize {
        self.w.data().len() + self.b.len()
    }

    /// Parameters + optimizer state, in bytes.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.param_count() * 4 + self.adam_w.memory_bytes() + self.adam_b.memory_bytes()
    }
}

/// In-place ReLU; returns the activation mask for the backward pass.
pub fn relu_forward(x: &mut Matrix) -> Vec<bool> {
    let mut mask = Vec::with_capacity(x.data().len());
    for v in x.data_mut() {
        if *v > 0.0 {
            mask.push(true);
        } else {
            *v = 0.0;
            mask.push(false);
        }
    }
    mask
}

/// In-place ReLU backward: zeroes gradient entries where the forward
/// activation was clipped.
pub fn relu_backward(dy: &mut Matrix, mask: &[bool]) {
    debug_assert_eq!(dy.data().len(), mask.len());
    for (v, &m) in dy.data_mut().iter_mut().zip(mask) {
        if !m {
            *v = 0.0;
        }
    }
}

/// Inverted dropout: zeroes entries with probability `p` and scales the
/// survivors by `1/(1-p)`. Returns the keep-mask (already incorporating the
/// scale on the forward side). No-op when `p == 0`.
pub fn dropout_forward(x: &mut Matrix, p: f32, rng: &mut StdRng) -> Option<Vec<bool>> {
    if p <= 0.0 {
        return None;
    }
    assert!(p < 1.0, "dropout probability {p} >= 1");
    let scale = 1.0 / (1.0 - p);
    let mut mask = Vec::with_capacity(x.data().len());
    for v in x.data_mut() {
        if rng.gen::<f32>() < p {
            *v = 0.0;
            mask.push(false);
        } else {
            *v *= scale;
            mask.push(true);
        }
    }
    Some(mask)
}

/// Dropout backward: applies the same mask and scale to the gradient.
pub fn dropout_backward(dy: &mut Matrix, mask: &Option<Vec<bool>>, p: f32) {
    let Some(mask) = mask else { return };
    let scale = 1.0 / (1.0 - p);
    for (v, &m) in dy.data_mut().iter_mut().zip(mask) {
        if m {
            *v *= scale;
        } else {
            *v = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn linear_forward_known() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut layer = Linear::new(2, 2, &mut rng);
        layer.w = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        layer.b = vec![0.5, -0.5];
        let x = Matrix::from_vec(1, 2, vec![1.0, 1.0]);
        let y = layer.forward(&x);
        assert_eq!(y.data(), &[4.5, 5.5]);
    }

    #[test]
    fn linear_gradcheck() {
        // Finite-difference check of dW, db, dx for a scalar loss L = Σy².
        let mut rng = StdRng::seed_from_u64(3);
        let layer = Linear::new(3, 2, &mut rng);
        let x = Matrix::randn(4, 3, 1.0, &mut rng);

        let loss = |l: &Linear, x: &Matrix| -> f64 {
            l.forward(x)
                .data()
                .iter()
                .map(|v| f64::from(*v) * f64::from(*v))
                .sum()
        };
        // Upstream grad of L = Σy² is 2y.
        let y = layer.forward(&x);
        let dy = Matrix::from_vec(
            y.rows(),
            y.cols(),
            y.data().iter().map(|v| 2.0 * v).collect(),
        );
        let grads = layer.backward(&x, &dy);

        let eps = 1e-3f32;
        // Check a handful of weight entries.
        for &(r, c) in &[(0usize, 0usize), (1, 1), (2, 0)] {
            let mut bumped = layer.clone();
            bumped.w.set(r, c, bumped.w.get(r, c) + eps);
            let numeric = (loss(&bumped, &x) - loss(&layer, &x)) / f64::from(eps);
            let analytic = f64::from(grads.dw.get(r, c));
            assert!(
                (numeric - analytic).abs() < 0.05 * (analytic.abs() + 1.0),
                "dW[{r},{c}] numeric {numeric} vs analytic {analytic}"
            );
        }
        // Bias entry.
        let mut bumped = layer.clone();
        bumped.b[1] += eps;
        let numeric = (loss(&bumped, &x) - loss(&layer, &x)) / f64::from(eps);
        assert!((numeric - f64::from(grads.db[1])).abs() < 0.05 * (numeric.abs() + 1.0));
        // Input entry.
        let mut x2 = x.clone();
        x2.set(0, 0, x2.get(0, 0) + eps);
        let numeric = (loss(&layer, &x2) - loss(&layer, &x)) / f64::from(eps);
        assert!((numeric - f64::from(grads.dx.get(0, 0))).abs() < 0.05 * (numeric.abs() + 1.0));
    }

    #[test]
    fn relu_roundtrip() {
        let mut x = Matrix::from_vec(1, 4, vec![-1.0, 0.0, 2.0, -3.0]);
        let mask = relu_forward(&mut x);
        assert_eq!(x.data(), &[0.0, 0.0, 2.0, 0.0]);
        assert_eq!(mask, vec![false, false, true, false]);
        let mut dy = Matrix::from_vec(1, 4, vec![1.0, 1.0, 1.0, 1.0]);
        relu_backward(&mut dy, &mask);
        assert_eq!(dy.data(), &[0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn dropout_zero_p_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut x = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let mask = dropout_forward(&mut x, 0.0, &mut rng);
        assert!(mask.is_none());
        assert_eq!(x.data(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn dropout_preserves_expectation() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let mut x = Matrix::from_vec(1, n, vec![1.0; n]);
        let _ = dropout_forward(&mut x, 0.25, &mut rng);
        let mean: f32 = x.data().iter().sum::<f32>() / n as f32;
        assert!((mean - 1.0).abs() < 0.03, "mean {mean}");
    }

    #[test]
    fn adam_descends_quadratic() {
        // Minimize f(p) = (p - 3)² with Adam; must approach 3.
        let hp = AdamParams {
            learning_rate: 0.1,
            weight_decay: 0.0,
            ..Default::default()
        };
        let mut state = AdamState::new(1);
        let mut p = vec![0.0f32];
        for t in 1..=500 {
            let g = vec![2.0 * (p[0] - 3.0)];
            state.update(&mut p, &g, &hp, t);
        }
        assert!((p[0] - 3.0).abs() < 0.05, "p = {}", p[0]);
    }

    #[test]
    fn adam_update_range_matches_full_update() {
        let hp = AdamParams::default();
        let mut full = AdamState::new(4);
        let mut sparse = AdamState::new(4);
        let mut p1 = vec![1.0f32, 2.0, 3.0, 4.0];
        let mut p2 = p1.clone();
        let g = vec![0.1f32, -0.2, 0.3, -0.4];
        full.update(&mut p1, &g, &hp, 1);
        sparse.update_range(&mut p2, &g[0..2], 0, &hp, 1);
        sparse.update_range(&mut p2, &g[2..4], 2, &hp, 1);
        for (a, b) in p1.iter().zip(&p2) {
            assert!((a - b).abs() < 1e-7);
        }
    }
}
