//! The DNN recommender model: embeddings + MLP with manual backprop.

use super::layer::{
    dropout_backward, dropout_forward, relu_backward, relu_forward, AdamParams, AdamState, Linear,
    LinearGrads,
};
use super::tensor::Matrix;
use crate::bytesio::{self, Reader};
use crate::model::{Model, ModelCodecError};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashMap;

const MAGIC: u32 = 0x444e_3031; // "DN01"

/// Hyperparameters of the DNN recommender (defaults = paper §IV-A3b).
#[derive(Debug, Clone, PartialEq)]
pub struct DnnHyperParams {
    /// Embedding dimension (paper: 20).
    pub k: usize,
    /// Hidden layer widths (4 hidden Linear+ReLU layers).
    pub hidden: Vec<usize>,
    /// Adam settings (paper: η=1e-4, weight decay 1e-5).
    pub adam: AdamParams,
    /// Dropout on the concatenated embedding input (paper: 0.02).
    pub dropout_embedding: f32,
    /// Dropout after the first two hidden layers (paper: 0.15).
    pub dropout_hidden: f32,
    /// Minibatch size per SGD step.
    pub batch_size: usize,
    /// Std of the Gaussian embedding initialization.
    pub init_std: f32,
}

impl Default for DnnHyperParams {
    fn default() -> Self {
        DnnHyperParams {
            k: 20,
            hidden: vec![128, 64, 32, 16],
            adam: AdamParams::default(),
            dropout_embedding: 0.02,
            dropout_hidden: 0.15,
            batch_size: 32,
            init_std: 0.1,
        }
    }
}

/// DNN recommender: `concat(user_emb, item_emb)` → 4×(Linear+ReLU with
/// dropout on the first two) → Linear(→1) → ReLU.
#[derive(Debug, Clone)]
pub struct DnnModel {
    hp: DnnHyperParams,
    num_users: u32,
    num_items: u32,
    global_mean: f32,
    user_emb: Matrix,
    item_emb: Matrix,
    user_seen: Vec<bool>,
    item_seen: Vec<bool>,
    user_adam: AdamState,
    item_adam: AdamState,
    layers: Vec<Linear>,
    t: u64,
}

/// Everything recorded during a training forward pass, consumed by backward.
struct Trace {
    users: Vec<u32>,
    items: Vec<u32>,
    emb_mask: Option<Vec<bool>>,
    /// Input to each linear layer; `layer_inputs[0]` is the (dropped-out)
    /// embedding concat.
    layer_inputs: Vec<Matrix>,
    relu_masks: Vec<Vec<bool>>,
    drop_masks: Vec<Option<Vec<bool>>>,
    out: Matrix,
}

/// Gradients of one minibatch.
struct Grads {
    layer_grads: Vec<LinearGrads>,
    /// Accumulated user-embedding row gradients.
    user_grads: HashMap<u32, Vec<f32>>,
    /// Accumulated item-embedding row gradients.
    item_grads: HashMap<u32, Vec<f32>>,
}

impl DnnModel {
    /// Creates a model; all nodes of a deployment share `seed` so initial
    /// parameters coincide.
    #[must_use]
    pub fn new(
        num_users: u32,
        num_items: u32,
        hp: DnnHyperParams,
        global_mean: f32,
        seed: u64,
    ) -> Self {
        use rand::SeedableRng;
        assert!(!hp.hidden.is_empty(), "need at least one hidden layer");
        let mut rng = StdRng::seed_from_u64(seed);
        let nu = num_users as usize;
        let ni = num_items as usize;
        let user_emb = Matrix::randn(nu, hp.k, hp.init_std, &mut rng);
        let item_emb = Matrix::randn(ni, hp.k, hp.init_std, &mut rng);

        let mut dims = Vec::with_capacity(hp.hidden.len() + 2);
        dims.push(2 * hp.k);
        dims.extend_from_slice(&hp.hidden);
        dims.push(1);
        let layers: Vec<Linear> = dims
            .windows(2)
            .map(|w| Linear::new(w[0], w[1], &mut rng))
            .collect();

        DnnModel {
            user_adam: AdamState::new(nu * hp.k),
            item_adam: AdamState::new(ni * hp.k),
            hp,
            num_users,
            num_items,
            global_mean,
            user_emb,
            item_emb,
            user_seen: vec![false; nu],
            item_seen: vec![false; ni],
            layers,
            t: 0,
        }
    }

    /// Hyperparameters.
    #[must_use]
    pub fn hyper_params(&self) -> &DnnHyperParams {
        &self.hp
    }

    fn gather(&self, users: &[u32], items: &[u32]) -> Matrix {
        let k = self.hp.k;
        let b = users.len();
        let mut x = Matrix::zeros(b, 2 * k);
        for r in 0..b {
            let row = x.row_mut(r);
            row[..k].copy_from_slice(self.user_emb.row(users[r] as usize));
            row[k..].copy_from_slice(self.item_emb.row(items[r] as usize));
        }
        x
    }

    fn forward_train(&self, users: Vec<u32>, items: Vec<u32>, rng: &mut StdRng) -> Trace {
        let mut x = self.gather(&users, &items);
        let emb_mask = dropout_forward(&mut x, self.hp.dropout_embedding, rng);

        let n_hidden = self.hp.hidden.len();
        let mut layer_inputs = Vec::with_capacity(self.layers.len());
        let mut relu_masks = Vec::with_capacity(self.layers.len());
        let mut drop_masks = Vec::with_capacity(n_hidden);

        let mut h = x;
        for (li, layer) in self.layers.iter().enumerate() {
            layer_inputs.push(h.clone());
            let mut z = layer.forward(&h);
            relu_masks.push(relu_forward(&mut z));
            if li < n_hidden {
                // Dropout only on the first two hidden activations (§IV-A3b).
                let p = if li < 2 { self.hp.dropout_hidden } else { 0.0 };
                drop_masks.push(dropout_forward(&mut z, p, rng));
            }
            h = z;
        }
        Trace {
            users,
            items,
            emb_mask,
            layer_inputs,
            relu_masks,
            drop_masks,
            out: h,
        }
    }

    /// Inference forward (no dropout, no trace).
    fn forward_eval(&self, users: &[u32], items: &[u32]) -> Matrix {
        let mut h = self.gather(users, items);
        for layer in &self.layers {
            let mut z = layer.forward(&h);
            let _ = relu_forward(&mut z);
            h = z;
        }
        h
    }

    fn backward(&self, trace: &Trace, targets: &[f32]) -> Grads {
        let b = targets.len();
        let k = self.hp.k;
        let n_hidden = self.hp.hidden.len();

        // dL/dout for L = mean((out - y)²).
        let mut d = Matrix::from_vec(
            b,
            1,
            trace
                .out
                .data()
                .iter()
                .zip(targets)
                .map(|(o, y)| 2.0 * (o - y) / b as f32)
                .collect(),
        );

        let mut layer_grads: Vec<Option<LinearGrads>> =
            (0..self.layers.len()).map(|_| None).collect();
        for li in (0..self.layers.len()).rev() {
            if li < n_hidden {
                let p = if li < 2 { self.hp.dropout_hidden } else { 0.0 };
                dropout_backward(&mut d, &trace.drop_masks[li], p);
            }
            relu_backward(&mut d, &trace.relu_masks[li]);
            let grads = self.layers[li].backward(&trace.layer_inputs[li], &d);
            d = grads.dx.clone();
            layer_grads[li] = Some(grads);
        }

        // d is now dL/d(embedding concat) — undo the embedding dropout.
        dropout_backward(&mut d, &trace.emb_mask, self.hp.dropout_embedding);

        let mut user_grads: HashMap<u32, Vec<f32>> = HashMap::new();
        let mut item_grads: HashMap<u32, Vec<f32>> = HashMap::new();
        for r in 0..b {
            let row = d.row(r);
            let ug = user_grads
                .entry(trace.users[r])
                .or_insert_with(|| vec![0.0; k]);
            for (g, v) in ug.iter_mut().zip(&row[..k]) {
                *g += v;
            }
            let ig = item_grads
                .entry(trace.items[r])
                .or_insert_with(|| vec![0.0; k]);
            for (g, v) in ig.iter_mut().zip(&row[k..]) {
                *g += v;
            }
        }

        Grads {
            layer_grads: layer_grads.into_iter().map(Option::unwrap).collect(),
            user_grads,
            item_grads,
        }
    }

    fn apply(&mut self, grads: &Grads) {
        self.t += 1;
        let hp = self.hp.adam;
        for (layer, g) in self.layers.iter_mut().zip(&grads.layer_grads) {
            layer.apply(g, &hp, self.t);
        }
        let k = self.hp.k;
        for (&u, g) in &grads.user_grads {
            let start = u as usize * k;
            self.user_adam
                .update_range(self.user_emb.data_mut(), g, start, &hp, self.t);
            self.user_seen[u as usize] = true;
        }
        for (&i, g) in &grads.item_grads {
            let start = i as usize * k;
            self.item_adam
                .update_range(self.item_emb.data_mut(), g, start, &hp, self.t);
            self.item_seen[i as usize] = true;
        }
    }

    /// Runs one minibatch training step.
    pub fn train_minibatch(&mut self, batch: &[rex_data::Rating], rng: &mut StdRng) {
        if batch.is_empty() {
            return;
        }
        let users: Vec<u32> = batch.iter().map(|r| r.user).collect();
        let items: Vec<u32> = batch.iter().map(|r| r.item).collect();
        let targets: Vec<f32> = batch.iter().map(|r| r.value).collect();
        let trace = self.forward_train(users, items, rng);
        let grads = self.backward(&trace, &targets);
        self.apply(&grads);
    }

    /// Mean squared error over `data` in eval mode (tests/diagnostics).
    #[must_use]
    pub fn mse(&self, data: &[rex_data::Rating]) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let users: Vec<u32> = data.iter().map(|r| r.user).collect();
        let items: Vec<u32> = data.iter().map(|r| r.item).collect();
        let out = self.forward_eval(&users, &items);
        out.data()
            .iter()
            .zip(data)
            .map(|(o, r)| {
                let e = f64::from(o - r.value);
                e * e
            })
            .sum::<f64>()
            / data.len() as f64
    }

    fn check_compatible(&self, other: &Self) {
        assert!(
            self.num_users == other.num_users
                && self.num_items == other.num_items
                && self.hp.k == other.hp.k
                && self.hp.hidden == other.hp.hidden,
            "merging incompatible DNN models"
        );
    }
}

impl Model for DnnModel {
    fn train_steps(&mut self, data: &[rex_data::Rating], steps: usize, rng: &mut StdRng) {
        if data.is_empty() {
            return;
        }
        let bs = self.hp.batch_size;
        let mut batch = Vec::with_capacity(bs);
        for _ in 0..steps {
            batch.clear();
            for _ in 0..bs {
                batch.push(data[rng.gen_range(0..data.len())]);
            }
            // Clone into a local to satisfy the borrow checker cheaply.
            let local: Vec<rex_data::Rating> = batch.clone();
            self.train_minibatch(&local, rng);
        }
    }

    fn predict(&self, user: u32, item: u32) -> f32 {
        let user_ok = self.user_seen.get(user as usize).copied().unwrap_or(false);
        let item_ok = self.item_seen.get(item as usize).copied().unwrap_or(false);
        if !user_ok || !item_ok {
            return self.global_mean.clamp(0.5, 5.0);
        }
        let out = self.forward_eval(&[user], &[item]);
        out.get(0, 0).clamp(0.5, 5.0)
    }

    fn merge(&mut self, contributions: &[(f64, &Self)], self_weight: f64) {
        for (_, other) in contributions {
            self.check_compatible(other);
        }
        // Global mean + MLP parameters: plain weighted average (every node
        // has a full MLP).
        let mut mean = self_weight * f64::from(self.global_mean);
        for (w, m) in contributions {
            mean += w * f64::from(m.global_mean);
        }
        self.global_mean = mean as f32;

        for li in 0..self.layers.len() {
            let w_len = self.layers[li].w.data().len();
            for idx in 0..w_len {
                let mut acc = self_weight * f64::from(self.layers[li].w.data()[idx]);
                for (w, m) in contributions {
                    acc += w * f64::from(m.layers[li].w.data()[idx]);
                }
                self.layers[li].w.data_mut()[idx] = acc as f32;
            }
            for idx in 0..self.layers[li].b.len() {
                let mut acc = self_weight * f64::from(self.layers[li].b[idx]);
                for (w, m) in contributions {
                    acc += w * f64::from(m.layers[li].b[idx]);
                }
                self.layers[li].b[idx] = acc as f32;
            }
        }

        // Embedding rows: masked merge with renormalization (§III-C2).
        let k = self.hp.k;
        let mut scratch = vec![0.0f64; k];
        for u in 0..self.num_users as usize {
            let mut total = if self.user_seen[u] { self_weight } else { 0.0 };
            for (w, m) in contributions {
                if m.user_seen[u] {
                    total += w;
                }
            }
            if total <= 0.0 {
                continue;
            }
            let inv = 1.0 / total;
            scratch.iter_mut().for_each(|a| *a = 0.0);
            if self.user_seen[u] {
                let w = self_weight * inv;
                for (a, v) in scratch.iter_mut().zip(self.user_emb.row(u)) {
                    *a += w * f64::from(*v);
                }
            }
            for (wc, m) in contributions {
                if m.user_seen[u] {
                    let w = wc * inv;
                    for (a, v) in scratch.iter_mut().zip(m.user_emb.row(u)) {
                        *a += w * f64::from(*v);
                    }
                }
            }
            for (dst, a) in self.user_emb.row_mut(u).iter_mut().zip(&scratch) {
                *dst = *a as f32;
            }
            self.user_seen[u] = true;
        }
        for i in 0..self.num_items as usize {
            let mut total = if self.item_seen[i] { self_weight } else { 0.0 };
            for (w, m) in contributions {
                if m.item_seen[i] {
                    total += w;
                }
            }
            if total <= 0.0 {
                continue;
            }
            let inv = 1.0 / total;
            scratch.iter_mut().for_each(|a| *a = 0.0);
            if self.item_seen[i] {
                let w = self_weight * inv;
                for (a, v) in scratch.iter_mut().zip(self.item_emb.row(i)) {
                    *a += w * f64::from(*v);
                }
            }
            for (wc, m) in contributions {
                if m.item_seen[i] {
                    let w = wc * inv;
                    for (a, v) in scratch.iter_mut().zip(m.item_emb.row(i)) {
                        *a += w * f64::from(*v);
                    }
                }
            }
            for (dst, a) in self.item_emb.row_mut(i).iter_mut().zip(&scratch) {
                *dst = *a as f32;
            }
            self.item_seen[i] = true;
        }
    }

    fn param_count(&self) -> usize {
        self.user_emb.data().len()
            + self.item_emb.data().len()
            + self.layers.iter().map(Linear::param_count).sum::<usize>()
    }

    fn wire_size(&self) -> usize {
        4 + 4 + 4 + 4 // magic + dims + k
            + 4 + self.hp.hidden.len() * 4 // hidden widths
            + 4 // global mean
            + self.param_count() * 4
            + (self.num_users as usize).div_ceil(8)
            + (self.num_items as usize).div_ceil(8)
    }

    fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.wire_size());
        bytesio::put_u32(&mut buf, MAGIC);
        bytesio::put_u32(&mut buf, self.num_users);
        bytesio::put_u32(&mut buf, self.num_items);
        bytesio::put_u32(&mut buf, self.hp.k as u32);
        bytesio::put_u32(&mut buf, self.hp.hidden.len() as u32);
        for &h in &self.hp.hidden {
            bytesio::put_u32(&mut buf, h as u32);
        }
        bytesio::put_f32(&mut buf, self.global_mean);
        bytesio::put_f32_slice(&mut buf, self.user_emb.data());
        bytesio::put_f32_slice(&mut buf, self.item_emb.data());
        for layer in &self.layers {
            bytesio::put_f32_slice(&mut buf, layer.w.data());
            bytesio::put_f32_slice(&mut buf, &layer.b);
        }
        bytesio::put_bool_slice(&mut buf, &self.user_seen);
        bytesio::put_bool_slice(&mut buf, &self.item_seen);
        buf
    }

    fn from_bytes(bytes: &[u8]) -> Result<Self, ModelCodecError> {
        let mut r = Reader::new(bytes);
        if r.u32()? != MAGIC {
            return Err(ModelCodecError::Malformed("bad magic".into()));
        }
        let num_users = r.u32()?;
        let num_items = r.u32()?;
        let k = r.u32()? as usize;
        let n_hidden = r.u32()? as usize;
        if k == 0 || k > 4096 || n_hidden == 0 || n_hidden > 64 {
            return Err(ModelCodecError::Incompatible(format!(
                "k = {k}, hidden layers = {n_hidden}"
            )));
        }
        let mut hidden = Vec::with_capacity(n_hidden);
        for _ in 0..n_hidden {
            hidden.push(r.u32()? as usize);
        }
        let global_mean = r.f32()?;
        let nu = num_users as usize;
        let ni = num_items as usize;
        let user_emb = Matrix::from_vec(nu, k, r.f32_vec(nu * k)?);
        let item_emb = Matrix::from_vec(ni, k, r.f32_vec(ni * k)?);

        let hp = DnnHyperParams {
            k,
            hidden: hidden.clone(),
            ..DnnHyperParams::default()
        };
        // Rebuild layers from the wire (fresh Adam state: optimizer state is
        // local and never shared, like parameter-sharing FL/DLS systems).
        let mut dims = Vec::with_capacity(hidden.len() + 2);
        dims.push(2 * k);
        dims.extend_from_slice(&hidden);
        dims.push(1);
        let mut layers = Vec::with_capacity(dims.len() - 1);
        for w in dims.windows(2) {
            let (din, dout) = (w[0], w[1]);
            let weights = Matrix::from_vec(din, dout, r.f32_vec(din * dout)?);
            let bias = r.f32_vec(dout)?;
            use rand::SeedableRng;
            let mut dummy = StdRng::seed_from_u64(0);
            let mut layer = Linear::new(din, dout, &mut dummy);
            layer.w = weights;
            layer.b = bias;
            layers.push(layer);
        }
        let user_seen = r.bool_vec(nu)?;
        let item_seen = r.bool_vec(ni)?;
        if r.remaining() != 0 {
            return Err(ModelCodecError::Malformed(format!(
                "{} trailing bytes",
                r.remaining()
            )));
        }
        Ok(DnnModel {
            user_adam: AdamState::new(nu * k),
            item_adam: AdamState::new(ni * k),
            hp,
            num_users,
            num_items,
            global_mean,
            user_emb,
            item_emb,
            user_seen,
            item_seen,
            layers,
            t: 0,
        })
    }

    fn memory_bytes(&self) -> usize {
        // Parameters + Adam first/second moments for embeddings and layers.
        (self.user_emb.data().len() + self.item_emb.data().len()) * 4 * 3
            + self.layers.iter().map(Linear::memory_bytes).sum::<usize>()
            + self.user_seen.len()
            + self.item_seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rex_data::{Rating, SyntheticConfig};

    fn tiny_hp() -> DnnHyperParams {
        DnnHyperParams {
            k: 4,
            hidden: vec![8, 6],
            dropout_embedding: 0.0,
            dropout_hidden: 0.0,
            batch_size: 8,
            adam: AdamParams {
                learning_rate: 0.01,
                weight_decay: 0.0,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    fn tiny_data() -> Vec<Rating> {
        SyntheticConfig {
            num_users: 15,
            num_items: 30,
            num_ratings: 300,
            seed: 9,
            ..SyntheticConfig::default()
        }
        .generate()
        .ratings
    }

    #[test]
    fn paper_parameter_count_shape() {
        // Paper: 610 users, 9000 items, k=20, 4 hidden layers, 215 001
        // parameters total. Our widths give 208 329 — same order, same
        // embedding share (see EXPERIMENTS.md).
        let m = DnnModel::new(610, 9_000, DnnHyperParams::default(), 3.5, 0);
        let emb = (610 + 9_000) * 20;
        let mlp = (40 * 128 + 128) + (128 * 64 + 64) + (64 * 32 + 32) + (32 * 16 + 16) + (16 + 1);
        assert_eq!(m.param_count(), emb + mlp);
        assert!(m.param_count() > 200_000 && m.param_count() < 220_000);
    }

    #[test]
    fn training_reduces_mse() {
        let data = tiny_data();
        let mut m = DnnModel::new(15, 30, tiny_hp(), 3.5, 1);
        let before = m.mse(&data);
        let mut rng = StdRng::seed_from_u64(2);
        m.train_steps(&data, 400, &mut rng);
        let after = m.mse(&data);
        assert!(
            after < before * 0.8,
            "MSE did not drop enough: {before} -> {after}"
        );
    }

    #[test]
    fn gradcheck_against_finite_differences() {
        // No dropout; compare analytic grads with numeric d(mse)/dθ.
        let mut m = DnnModel::new(4, 4, tiny_hp(), 3.0, 3);
        let batch = vec![
            Rating {
                user: 0,
                item: 1,
                value: 4.0,
            },
            Rating {
                user: 2,
                item: 3,
                value: 2.0,
            },
        ];
        let users: Vec<u32> = batch.iter().map(|r| r.user).collect();
        let items: Vec<u32> = batch.iter().map(|r| r.item).collect();
        let targets: Vec<f32> = batch.iter().map(|r| r.value).collect();
        let mut rng = StdRng::seed_from_u64(0);
        let trace = m.forward_train(users, items, &mut rng);
        let grads = m.backward(&trace, &targets);

        // Central differences: a forward difference's O(eps) truncation
        // error dominates near ReLU kinks and under curvature; the
        // symmetric form cancels it.
        let eps = 2e-4f32;
        let central =
            |m: &mut DnnModel, set: &mut dyn FnMut(&mut DnnModel, f32), orig: f32| -> f64 {
                set(m, orig + eps);
                let plus = m.mse(&batch);
                set(m, orig - eps);
                let minus = m.mse(&batch);
                set(m, orig);
                (plus - minus) / (2.0 * f64::from(eps))
            };

        // A weight in the first layer.
        let analytic = f64::from(grads.layer_grads[0].dw.get(0, 0));
        let orig = m.layers[0].w.get(0, 0);
        let numeric = central(&mut m, &mut |m, v| m.layers[0].w.set(0, 0, v), orig);
        assert!(
            (numeric - analytic).abs() < 0.05 * (analytic.abs() + 0.01),
            "layer0 dW: numeric {numeric} vs analytic {analytic}"
        );

        // A user-embedding entry (user 0, dim 1).
        let analytic = f64::from(grads.user_grads[&0][1]);
        let orig = m.user_emb.get(0, 1);
        let numeric = central(&mut m, &mut |m, v| m.user_emb.set(0, 1, v), orig);
        assert!(
            (numeric - analytic).abs() < 0.05 * (analytic.abs() + 0.01),
            "user emb: numeric {numeric} vs analytic {analytic}"
        );

        // An item-embedding entry (item 3, dim 0).
        let analytic = f64::from(grads.item_grads[&3][0]);
        let orig = m.item_emb.get(3, 0);
        let numeric = central(&mut m, &mut |m, v| m.item_emb.set(3, 0, v), orig);
        assert!(
            (numeric - analytic).abs() < 0.05 * (analytic.abs() + 0.01),
            "item emb: numeric {numeric} vs analytic {analytic}"
        );
    }

    #[test]
    fn predict_falls_back_for_unseen() {
        let m = DnnModel::new(5, 5, tiny_hp(), 3.5, 0);
        assert_eq!(m.predict(0, 0), 3.5);
    }

    #[test]
    fn codec_roundtrip() {
        let data = tiny_data();
        let mut m = DnnModel::new(15, 30, tiny_hp(), 3.5, 1);
        let mut rng = StdRng::seed_from_u64(4);
        m.train_steps(&data, 50, &mut rng);
        let bytes = m.to_bytes();
        assert_eq!(bytes.len(), m.wire_size());
        let back = DnnModel::from_bytes(&bytes).unwrap();
        assert_eq!(back.param_count(), m.param_count());
        for (u, i) in [(0u32, 0u32), (3, 7), (14, 29)] {
            assert!((back.predict(u, i) - m.predict(u, i)).abs() < 1e-6);
        }
    }

    #[test]
    fn codec_rejects_garbage() {
        assert!(DnnModel::from_bytes(&[0u8; 8]).is_err());
        let m = DnnModel::new(3, 3, tiny_hp(), 3.5, 0);
        let mut bytes = m.to_bytes();
        bytes.truncate(bytes.len() - 1);
        assert!(DnnModel::from_bytes(&bytes).is_err());
    }

    #[test]
    fn merge_averages_mlp_and_respects_masks() {
        let mut a = DnnModel::new(2, 2, tiny_hp(), 3.0, 0);
        let mut b = DnnModel::new(2, 2, tiny_hp(), 4.0, 0);
        let mut rng = StdRng::seed_from_u64(5);
        a.train_minibatch(
            &[Rating {
                user: 0,
                item: 0,
                value: 5.0,
            }],
            &mut rng,
        );
        b.train_minibatch(
            &[Rating {
                user: 1,
                item: 1,
                value: 1.0,
            }],
            &mut rng,
        );

        let expected_w00 = 0.5 * (a.layers[0].w.get(0, 0) + b.layers[0].w.get(0, 0));
        let b_user1 = b.user_emb.row(1).to_vec();
        a.merge(&[(0.5, &b)], 0.5);
        assert!((a.global_mean - 3.5).abs() < 1e-6);
        assert!((a.layers[0].w.get(0, 0) - expected_w00).abs() < 1e-6);
        // User 1 seen only by b: copied.
        for (x, y) in a.user_emb.row(1).iter().zip(&b_user1) {
            assert!((x - y).abs() < 1e-6);
        }
        assert!(a.user_seen[1]);
    }

    #[test]
    fn wire_size_much_larger_than_raw_triplets() {
        // Fig 5b: DNN model sharing is orders of magnitude heavier than the
        // 40 triplets REX shares per epoch.
        let m = DnnModel::new(610, 9_000, DnnHyperParams::default(), 3.5, 0);
        let raw_bytes_per_epoch = 40 * rex_data::Rating::WIRE_SIZE;
        assert!(m.wire_size() > 100 * raw_bytes_per_epoch);
    }

    #[test]
    fn identical_seeds_identical_models() {
        let a = DnnModel::new(6, 6, tiny_hp(), 3.5, 7);
        let b = DnnModel::new(6, 6, tiny_hp(), 3.5, 7);
        assert_eq!(a.user_emb, b.user_emb);
        assert_eq!(a.layers[0].w, b.layers[0].w);
    }
}
