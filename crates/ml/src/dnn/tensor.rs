//! Minimal dense row-major matrix used by the DNN layers.

use crate::kernel;
use rand::rngs::StdRng;
use rex_data::dist::normal;

/// Dense `rows × cols` matrix of f32, row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// All-zero matrix.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Gaussian-initialized matrix, N(0, std²).
    #[must_use]
    pub fn randn(rows: usize, cols: usize, std: f32, rng: &mut StdRng) -> Self {
        Matrix {
            rows,
            cols,
            data: (0..rows * cols)
                .map(|_| normal(rng, 0.0, f64::from(std)) as f32)
                .collect(),
        }
    }

    /// Wraps an existing buffer.
    ///
    /// # Panics
    /// If `data.len() != rows * cols`.
    #[must_use]
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Flat data slice.
    #[must_use]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat data slice.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Row `r` as a slice.
    #[must_use]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element access.
    #[must_use]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Element mutation.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// `self (r×k) · other (k×c) -> (r×c)`, cache-friendly ikj order.
    #[must_use]
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let (r, k, c) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(r, c);
        for i in 0..r {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (p, &a_ip) in a_row.iter().enumerate().take(k) {
                if a_ip == 0.0 {
                    continue;
                }
                kernel::axpy(a_ip, other.row(p), out_row);
            }
        }
        out
    }

    /// `selfᵀ (k×r) · other (r×c) -> (k×c)` — used for `dW = Xᵀ·dY`.
    #[must_use]
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "t_matmul shape mismatch");
        let (r, k, c) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(k, c);
        for i in 0..r {
            let a_row = self.row(i);
            let b_row = other.row(i);
            for (p, &a_ip) in a_row.iter().enumerate().take(k) {
                if a_ip == 0.0 {
                    continue;
                }
                kernel::axpy(a_ip, b_row, out.row_mut(p));
            }
        }
        out
    }

    /// `self (r×c) · otherᵀ (k×c) -> (r×k)` — used for `dX = dY·Wᵀ`.
    #[must_use]
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_t shape mismatch");
        let (r, k) = (self.rows, other.rows);
        let mut out = Matrix::zeros(r, k);
        for i in 0..r {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (p, o) in out_row.iter_mut().enumerate().take(k) {
                *o = kernel::dot(a_row, other.row(p));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn transpose_variants_agree_with_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = Matrix::randn(4, 3, 1.0, &mut rng);
        let b = Matrix::randn(4, 5, 1.0, &mut rng);
        // aᵀ·b via t_matmul vs manual transpose.
        let mut at = Matrix::zeros(3, 4);
        for i in 0..4 {
            for j in 0..3 {
                at.set(j, i, a.get(i, j));
            }
        }
        let expected = at.matmul(&b);
        let got = a.t_matmul(&b);
        for (x, y) in expected.data().iter().zip(got.data()) {
            assert!((x - y).abs() < 1e-5);
        }

        // a·cᵀ via matmul_t.
        let c = Matrix::randn(6, 3, 1.0, &mut rng);
        let mut ct = Matrix::zeros(3, 6);
        for i in 0..6 {
            for j in 0..3 {
                ct.set(j, i, c.get(i, j));
            }
        }
        let expected2 = a.matmul(&ct);
        let got2 = a.matmul_t(&c);
        for (x, y) in expected2.data().iter().zip(got2.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn row_access() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.get(0, 1), 2.0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn randn_statistics() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = Matrix::randn(100, 100, 0.5, &mut rng);
        let mean: f32 = m.data().iter().sum::<f32>() / 10_000.0;
        let var: f32 = m.data().iter().map(|v| (v - mean).powi(2)).sum::<f32>() / 10_000.0;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 0.25).abs() < 0.02, "var {var}");
    }
}
