//! DNN recommender (paper §II-A-c, §IV-A3b).
//!
//! Architecture, matching the paper's description: a user and an item
//! embedding (k = 20) are concatenated and fed through four hidden
//! Linear+ReLU layers with dropout (0.02 on the embedding layer, 0.15 on
//! the first two hidden layers), a final linear unit and a closing ReLU.
//! Training uses Adam (η = 1e-4, weight decay 1e-5) on minibatches.
//!
//! Everything — forward, backward, Adam — is hand-written on a small
//! row-major [`tensor::Matrix`]; no autograd framework is involved
//! (DESIGN.md: PyTorch substitution).

pub mod layer;
pub mod model;
pub mod tensor;

pub use model::{DnnHyperParams, DnnModel};
pub use tensor::Matrix;
