//! The [`Model`] trait: the contract between recommenders and the REX
//! protocol layer (`rex-core`).

use rand::rngs::StdRng;
use rex_data::Rating;

/// Error returned when deserializing a model from wire bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelCodecError {
    /// Buffer too short or trailing garbage.
    Malformed(String),
    /// Header fields disagree with the receiving node's configuration.
    Incompatible(String),
}

impl std::fmt::Display for ModelCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelCodecError::Malformed(m) => write!(f, "malformed model bytes: {m}"),
            ModelCodecError::Incompatible(m) => write!(f, "incompatible model: {m}"),
        }
    }
}

impl std::error::Error for ModelCodecError {}

impl From<crate::bytesio::ShortBuffer> for ModelCodecError {
    fn from(e: crate::bytesio::ShortBuffer) -> Self {
        ModelCodecError::Malformed(e.to_string())
    }
}

/// A recommender model that can be trained, merged and serialized.
///
/// Merging follows the paper's two schemes (§III-C): RMW averages the local
/// model with a single received one; D-PSGD computes a Metropolis–Hastings
/// weighted average over all neighbours plus self. Both are expressed
/// through [`Model::merge`], which takes explicit `(weight, model)`
/// contributions plus the self-weight.
pub trait Model: Clone + Send + Sync + 'static {
    /// Runs `steps` single-sample SGD (or minibatch) steps over `data`,
    /// sampling uniformly with the caller's RNG. A fixed step count per
    /// epoch keeps epoch duration constant as the raw-data store grows
    /// (paper §III-E).
    fn train_steps(&mut self, data: &[Rating], steps: usize, rng: &mut StdRng);

    /// Predicts the rating of `user` for `item`, clamped to the valid
    /// rating range. Falls back to bias terms / global mean for users or
    /// items this model has never seen.
    fn predict(&self, user: u32, item: u32) -> f32;

    /// Merges neighbour `contributions` (weight, model) with `self_weight`
    /// for the local parameters. Weights must sum to 1 across
    /// `self_weight + Σ contributions`. Rows (user/item embeddings) that a
    /// contributor has never seen are excluded from that row's average,
    /// with remaining weights renormalized (paper §III-C2: "when a node has
    /// no embedding for a given user or item, we consider only those of its
    /// neighbors").
    fn merge(&mut self, contributions: &[(f64, &Self)], self_weight: f64);

    /// Total number of learnable parameters.
    fn param_count(&self) -> usize;

    /// Serialized size in bytes (what model sharing puts on the wire).
    fn wire_size(&self) -> usize {
        self.to_bytes().len()
    }

    /// Serializes for the wire.
    fn to_bytes(&self) -> Vec<u8>;

    /// Deserializes from wire bytes.
    fn from_bytes(bytes: &[u8]) -> Result<Self, ModelCodecError>
    where
        Self: Sized;

    /// Resident memory estimate in bytes: parameters plus optimizer state
    /// plus masks. Used by the EPC accounting in `rex-tee`.
    fn memory_bytes(&self) -> usize;
}
