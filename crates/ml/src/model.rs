//! The [`Model`] trait: the contract between recommenders and the REX
//! protocol layer (`rex-core`).

use rand::rngs::StdRng;
use rex_data::Rating;

/// Error returned when deserializing a model from wire bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelCodecError {
    /// Buffer too short or trailing garbage.
    Malformed(String),
    /// Header fields disagree with the receiving node's configuration.
    Incompatible(String),
}

impl std::fmt::Display for ModelCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelCodecError::Malformed(m) => write!(f, "malformed model bytes: {m}"),
            ModelCodecError::Incompatible(m) => write!(f, "incompatible model: {m}"),
        }
    }
}

impl std::error::Error for ModelCodecError {}

impl From<crate::bytesio::ShortBuffer> for ModelCodecError {
    fn from(e: crate::bytesio::ShortBuffer) -> Self {
        ModelCodecError::Malformed(e.to_string())
    }
}

/// A recommender model that can be trained, merged and serialized.
///
/// Merging follows the paper's two schemes (§III-C): RMW averages the local
/// model with a single received one; D-PSGD computes a Metropolis–Hastings
/// weighted average over all neighbours plus self. Both are expressed
/// through [`Model::merge`], which takes explicit `(weight, model)`
/// contributions plus the self-weight.
pub trait Model: Clone + Send + Sync + 'static {
    /// Runs `steps` single-sample SGD (or minibatch) steps over `data`,
    /// sampling uniformly with the caller's RNG. A fixed step count per
    /// epoch keeps epoch duration constant as the raw-data store grows
    /// (paper §III-E).
    fn train_steps(&mut self, data: &[Rating], steps: usize, rng: &mut StdRng);

    /// Batched variant of [`Model::train_steps`] for **user-sharded**
    /// nodes hosting a contiguous block of user rows: draws the same
    /// `steps` uniform sample indices from the caller's RNG (identical
    /// RNG consumption, so a node's trajectory stays a pure function of
    /// its seed), then applies them **grouped by user row in ascending
    /// order** — a shard's updates sweep contiguous embedding rows
    /// instead of hopping across the table. Within one user's group the
    /// draw order is preserved.
    ///
    /// Grouping reorders float updates across users, so this is *not*
    /// bit-identical to [`Model::train_steps`] on multi-user data; the
    /// protocol layer only routes through it when a shard hosts more
    /// than one user (`users_per_node = 1` keeps the legacy path and its
    /// bit-exact trajectories). On single-user data the grouping is a
    /// no-op, making the two paths bit-identical by construction.
    ///
    /// The default falls back to [`Model::train_steps`] — models without
    /// a row-block structure (e.g. dense DNNs) need no override.
    fn train_steps_batched(&mut self, data: &[Rating], steps: usize, rng: &mut StdRng) {
        self.train_steps(data, steps, rng);
    }

    /// Predicts the rating of `user` for `item`, clamped to the valid
    /// rating range. Falls back to bias terms / global mean for users or
    /// items this model has never seen.
    fn predict(&self, user: u32, item: u32) -> f32;

    /// Merges neighbour `contributions` (weight, model) with `self_weight`
    /// for the local parameters. Weights must sum to 1 across
    /// `self_weight + Σ contributions`. Rows (user/item embeddings) that a
    /// contributor has never seen are excluded from that row's average,
    /// with remaining weights renormalized (paper §III-C2: "when a node has
    /// no embedding for a given user or item, we consider only those of its
    /// neighbors").
    fn merge(&mut self, contributions: &[(f64, &Self)], self_weight: f64);

    /// Total number of learnable parameters.
    fn param_count(&self) -> usize;

    /// Serialized size in bytes (what model sharing puts on the wire).
    fn wire_size(&self) -> usize {
        self.to_bytes().len()
    }

    /// Serializes for the wire.
    fn to_bytes(&self) -> Vec<u8>;

    /// Deserializes from wire bytes.
    fn from_bytes(bytes: &[u8]) -> Result<Self, ModelCodecError>
    where
        Self: Sized;

    /// Resident memory estimate in bytes: parameters plus optimizer state
    /// plus masks. Used by the EPC accounting in `rex-tee`.
    fn memory_bytes(&self) -> usize;

    /// Content fingerprint of this model *as a sparse-delta reference*:
    /// two models with the same fingerprint must be interchangeable as
    /// the `reference` of [`Model::delta_bytes`] / [`Model::apply_delta`],
    /// up to fields the delta carries explicitly. Implementations that
    /// exclude per-node fields (e.g. MF's local global mean) let fleets
    /// whose references differ only in those fields exchange deltas.
    fn ref_fingerprint(&self) -> u64 {
        crate::bytesio::fnv1a64(&self.to_bytes())
    }

    /// Serializes this model as a **sparse delta** against `reference`:
    /// only the rows whose parameters differ, keyed by row index — the
    /// REX wire optimization for model sharing, where early-epoch models
    /// diverge from the fleet's shared initialization in few rows.
    ///
    /// Returns `None` when the changed-row density exceeds `max_density`
    /// (the dense encoding is then no smaller, so callers fall back to
    /// [`Model::to_bytes`]) or when the model has no sparse form. The
    /// default implementation never produces a delta. `ref_fingerprint`
    /// is the caller-cached [`Model::ref_fingerprint`] of `reference`;
    /// it is embedded in the encoding so a decoder with a mismatched
    /// reference rejects instead of silently corrupting.
    fn delta_bytes(
        &self,
        _reference: &Self,
        _ref_fingerprint: u64,
        _max_density: f64,
    ) -> Option<Vec<u8>> {
        None
    }

    /// Reconstructs the sender's full model from a sparse delta produced
    /// by [`Model::delta_bytes`]: clones `reference` and overwrites the
    /// carried rows, bit-exactly. Fails when the embedded fingerprint
    /// disagrees with `ref_fingerprint` (the decode reference is not the
    /// encode reference) or the bytes are malformed.
    fn apply_delta(
        _reference: &Self,
        _ref_fingerprint: u64,
        _bytes: &[u8],
    ) -> Result<Self, ModelCodecError>
    where
        Self: Sized,
    {
        Err(ModelCodecError::Incompatible(
            "model has no sparse-delta form".into(),
        ))
    }
}
