//! Minimal little-endian byte serialization helpers shared by the model
//! codecs (and re-used by `rex-net` for message framing).

/// Cursor-style reader over a byte slice.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

/// Raised when a buffer is shorter than the encoding requires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShortBuffer {
    /// Bytes requested beyond the end.
    pub needed: usize,
}

impl std::fmt::Display for ShortBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "short buffer: {} more bytes needed", self.needed)
    }
}

impl std::error::Error for ShortBuffer {}

impl<'a> Reader<'a> {
    /// Wraps a slice.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ShortBuffer> {
        if self.remaining() < n {
            return Err(ShortBuffer {
                needed: n - self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads a little-endian u8.
    pub fn u8(&mut self) -> Result<u8, ShortBuffer> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian u32.
    pub fn u32(&mut self) -> Result<u32, ShortBuffer> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian u64.
    pub fn u64(&mut self) -> Result<u64, ShortBuffer> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian f32.
    pub fn f32(&mut self) -> Result<f32, ShortBuffer> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian f64.
    pub fn f64(&mut self) -> Result<f64, ShortBuffer> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads `n` f32 values.
    pub fn f32_vec(&mut self, n: usize) -> Result<Vec<f32>, ShortBuffer> {
        let bytes = self.take(n * 4)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], ShortBuffer> {
        self.take(n)
    }

    /// Reads a bit-packed bool vector of length `n`.
    pub fn bool_vec(&mut self, n: usize) -> Result<Vec<bool>, ShortBuffer> {
        let bytes = self.take(n.div_ceil(8))?;
        Ok((0..n).map(|i| bytes[i / 8] & (1 << (i % 8)) != 0).collect())
    }

    /// Reads `n` u32 values.
    pub fn u32_vec(&mut self, n: usize) -> Result<Vec<u32>, ShortBuffer> {
        let bytes = self.take(n * 4)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }
}

/// Appends a u8.
pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

/// Appends a little-endian u32.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian u64.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian f32.
pub fn put_f32(buf: &mut Vec<u8>, v: f32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian f64.
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a slice of f32 values.
pub fn put_f32_slice(buf: &mut Vec<u8>, vs: &[f32]) {
    buf.reserve(vs.len() * 4);
    for v in vs {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

/// Appends a slice of u32 values.
pub fn put_u32_slice(buf: &mut Vec<u8>, vs: &[u32]) {
    buf.reserve(vs.len() * 4);
    for v in vs {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

/// FNV-1a 64-bit hash — the cheap content fingerprint the sparse-delta
/// model codec uses to guard against mismatched decode references.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Appends a bit-packed bool vector.
pub fn put_bool_slice(buf: &mut Vec<u8>, vs: &[bool]) {
    let mut bytes = vec![0u8; vs.len().div_ceil(8)];
    for (i, &b) in vs.iter().enumerate() {
        if b {
            bytes[i / 8] |= 1 << (i % 8);
        }
    }
    buf.extend_from_slice(&bytes);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 7);
        put_u32(&mut buf, 0xdead_beef);
        put_u64(&mut buf, u64::MAX - 3);
        put_f32(&mut buf, -1.5);
        put_f64(&mut buf, std::f64::consts::PI);
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.f32().unwrap(), -1.5);
        assert_eq!(r.f64().unwrap(), std::f64::consts::PI);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn f32_slice_roundtrip() {
        let vs: Vec<f32> = (0..100).map(|i| i as f32 * 0.25 - 10.0).collect();
        let mut buf = Vec::new();
        put_f32_slice(&mut buf, &vs);
        assert_eq!(buf.len(), 400);
        let back = Reader::new(&buf).f32_vec(100).unwrap();
        assert_eq!(back, vs);
    }

    #[test]
    fn bool_slice_roundtrip() {
        for n in [0usize, 1, 7, 8, 9, 64, 100] {
            let vs: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
            let mut buf = Vec::new();
            put_bool_slice(&mut buf, &vs);
            assert_eq!(buf.len(), n.div_ceil(8));
            let back = Reader::new(&buf).bool_vec(n).unwrap();
            assert_eq!(back, vs, "n = {n}");
        }
    }

    #[test]
    fn u32_slice_roundtrip() {
        let vs: Vec<u32> = (0..57).map(|i| i * 0x0101_0101).collect();
        let mut buf = Vec::new();
        put_u32_slice(&mut buf, &vs);
        assert_eq!(buf.len(), 57 * 4);
        assert_eq!(Reader::new(&buf).u32_vec(57).unwrap(), vs);
    }

    #[test]
    fn fnv_discriminates_and_is_stable() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"rex"), fnv1a64(b"rex"));
        assert_ne!(fnv1a64(b"rex"), fnv1a64(b"rfx"));
    }

    #[test]
    fn short_buffer_detected() {
        let buf = [1u8, 2, 3];
        let mut r = Reader::new(&buf);
        assert!(r.u32().is_err());
        assert_eq!(r.remaining(), 3); // failed read consumes nothing
        assert_eq!(r.u8().unwrap(), 1);
        assert!(r.f32().is_err());
    }
}
