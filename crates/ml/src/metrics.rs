//! Model-quality metrics. The paper reports test error as RMSE
//! ("nodes mean RMSE", §IV-A4).

use crate::model::Model;
use rex_data::Rating;

/// Root mean square error of `model` over `test`; `None` for an empty set.
#[must_use]
pub fn rmse<M: Model>(model: &M, test: &[Rating]) -> Option<f64> {
    if test.is_empty() {
        return None;
    }
    let sse: f64 = test
        .iter()
        .map(|r| {
            let err = f64::from(model.predict(r.user, r.item)) - f64::from(r.value);
            err * err
        })
        .sum();
    Some((sse / test.len() as f64).sqrt())
}

/// Mean absolute error of `model` over `test`; `None` for an empty set.
#[must_use]
pub fn mae<M: Model>(model: &M, test: &[Rating]) -> Option<f64> {
    if test.is_empty() {
        return None;
    }
    let sae: f64 = test
        .iter()
        .map(|r| (f64::from(model.predict(r.user, r.item)) - f64::from(r.value)).abs())
        .sum();
    Some(sae / test.len() as f64)
}

/// Mean of per-node RMSEs, the paper's y-axis ("nodes mean RMSE"). Nodes
/// with empty test sets are skipped.
#[must_use]
pub fn nodes_mean_rmse<M: Model>(models: &[M], tests: &[Vec<Rating>]) -> Option<f64> {
    assert_eq!(models.len(), tests.len());
    let values: Vec<f64> = models
        .iter()
        .zip(tests)
        .filter_map(|(m, t)| rmse(m, t))
        .collect();
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mf::{MfHyperParams, MfModel};

    fn constant_model(mean: f32) -> MfModel {
        // A fresh MF model predicts its global mean for unseen pairs.
        MfModel::new(10, 10, MfHyperParams::default(), mean, 0)
    }

    #[test]
    fn rmse_of_constant_predictor() {
        let model = constant_model(3.0);
        let test = vec![
            Rating {
                user: 0,
                item: 0,
                value: 4.0,
            },
            Rating {
                user: 1,
                item: 1,
                value: 2.0,
            },
        ];
        // Errors are ±1 -> RMSE = 1.
        assert!((rmse(&model, &test).unwrap() - 1.0).abs() < 1e-9);
        assert!((mae(&model, &test).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_test_gives_none() {
        let model = constant_model(3.0);
        assert!(rmse(&model, &[]).is_none());
        assert!(mae(&model, &[]).is_none());
    }

    #[test]
    fn nodes_mean_skips_empty() {
        let models = vec![constant_model(3.0), constant_model(3.0)];
        let tests = vec![
            vec![Rating {
                user: 0,
                item: 0,
                value: 5.0,
            }], // err 2
            vec![],
        ];
        assert!((nodes_mean_rmse(&models, &tests).unwrap() - 2.0).abs() < 1e-9);
    }
}
