//! Bit-exact SIMD kernels for the f32/f64 vector hot paths.
//!
//! Every dense inner loop of the MF pipeline — the SGD predict/update
//! sweep, the weighted model merge, and the serve path's dot products
//! and norms — funnels through the primitives in this module. Each
//! primitive ships a **scalar reference** implementation and x86_64
//! SIMD implementations (SSE2 and AVX2 via `std::arch`), selected once
//! per process by [`level`].
//!
//! # The bit-exactness contract
//!
//! The scalar reference computes in the *same fixed lane-chunked
//! accumulation tree* as the widest SIMD path, so every dispatch level
//! returns **bit-identical** results on identical inputs — including
//! subnormals, signed zeros, and infinities. The single carve-out is
//! NaN *payloads*: whether a result is NaN is identical on every level
//! (the trees match, and IEEE-754 NaN creation/propagation is exact),
//! but the payload bits of a NaN result are implementation-defined —
//! IEEE-754 §6.2 leaves payload propagation to the implementation, and
//! LLVM freely commutes `fmul`/`fadd` operands while x86 `mulss`/`mulps`
//! select the *first* operand's NaN, so register allocation decides the
//! payload. No Rust-level construct pins it. The parity suite therefore
//! compares NaN results by NaN-ness and everything else bit-for-bit.
//!
//! * [`dot`] accumulates into [`F32_LANES`] = 8 independent partial
//!   sums (lane `j` takes elements `i` with `i % 8 == j`, in index
//!   order; a ragged tail is zero-padded to a full chunk) and combines
//!   them in the canonical order `((s0+s4)+(s2+s6)) + ((s1+s5)+(s3+s7))`
//!   — exactly the `vextractf128`/`movhlps`/`shufps` reduction the AVX2
//!   path performs. The SSE2 path emulates the 8-lane chunking with two
//!   4-wide registers.
//! * [`norm_sq`] accumulates `f64` squares into [`F64_LANES`] = 4
//!   partial sums combined as `(s0+s2) + (s1+s3)`.
//! * [`axpy`], [`scale_add`], and [`sgd_update`] are purely vertical
//!   (no cross-element reduction), so every vector width reproduces the
//!   scalar op-for-op: IEEE-754 `mul`/`add` are exactly rounded, and no
//!   path ever contracts them into an FMA.
//!
//! The contract is enforced by the `kernel_parity` proptest suite
//! (`tests/kernel_parity.rs`): random lengths including ragged tails,
//! random bit patterns (subnormals, ±0, ±inf, NaN payloads),
//! `scalar(x) == simd(x)` bit-for-bit — modulo the NaN-payload
//! carve-out above — for every primitive at every available level.
//!
//! # Dispatch
//!
//! [`level`] picks the widest available implementation at first use
//! (`is_x86_feature_detected!("avx2")`, falling back to SSE2 — always
//! present on x86_64 — then scalar elsewhere). The `REX_KERNEL`
//! environment variable (`scalar` | `sse2` | `avx2`) pins the level for
//! testing; requesting an unavailable level aborts rather than silently
//! degrading, so a CI matrix job can trust what it measured. Benches
//! flip levels in-process via [`force_level`].

use std::sync::atomic::{AtomicU8, Ordering};

/// f32 accumulator lanes in the canonical [`dot`] tree (AVX2 width).
pub const F32_LANES: usize = 8;
/// f64 accumulator lanes in the canonical [`norm_sq`] tree (AVX2 width).
pub const F64_LANES: usize = 4;

/// A kernel dispatch level: the instruction set the primitives run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelLevel {
    /// Portable scalar reference (the canonical accumulation tree).
    Scalar,
    /// 128-bit `std::arch` x86_64 path (baseline on x86_64).
    Sse2,
    /// 256-bit `std::arch` x86_64 path (runtime-detected).
    Avx2,
}

impl KernelLevel {
    /// Parses a `REX_KERNEL` value.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "scalar" => Some(KernelLevel::Scalar),
            "sse2" => Some(KernelLevel::Sse2),
            "avx2" => Some(KernelLevel::Avx2),
            _ => None,
        }
    }

    /// The level's `REX_KERNEL` spelling.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            KernelLevel::Scalar => "scalar",
            KernelLevel::Sse2 => "sse2",
            KernelLevel::Avx2 => "avx2",
        }
    }

    /// Whether this host can execute the level.
    #[must_use]
    pub fn is_available(self) -> bool {
        match self {
            KernelLevel::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            KernelLevel::Sse2 => true,
            #[cfg(target_arch = "x86_64")]
            KernelLevel::Avx2 => is_x86_feature_detected!("avx2"),
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }

    fn encode(self) -> u8 {
        match self {
            KernelLevel::Scalar => 1,
            KernelLevel::Sse2 => 2,
            KernelLevel::Avx2 => 3,
        }
    }

    fn decode(v: u8) -> Option<Self> {
        match v {
            1 => Some(KernelLevel::Scalar),
            2 => Some(KernelLevel::Sse2),
            3 => Some(KernelLevel::Avx2),
            _ => None,
        }
    }
}

/// Every level this host can execute, narrowest first.
#[must_use]
pub fn available_levels() -> Vec<KernelLevel> {
    [KernelLevel::Scalar, KernelLevel::Sse2, KernelLevel::Avx2]
        .into_iter()
        .filter(|l| l.is_available())
        .collect()
}

static LEVEL: AtomicU8 = AtomicU8::new(0);

fn detect() -> KernelLevel {
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx2") {
            KernelLevel::Avx2
        } else {
            KernelLevel::Sse2
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    KernelLevel::Scalar
}

fn init_level() -> KernelLevel {
    let level = match std::env::var("REX_KERNEL") {
        Ok(v) => {
            let l = KernelLevel::parse(&v)
                .unwrap_or_else(|| panic!("REX_KERNEL={v}: expected scalar|sse2|avx2"));
            assert!(
                l.is_available(),
                "REX_KERNEL={v} requested but this host cannot execute it"
            );
            l
        }
        Err(_) => detect(),
    };
    LEVEL.store(level.encode(), Ordering::Relaxed);
    level
}

/// The process-wide dispatch level: `REX_KERNEL` if set, else the
/// widest detected instruction set. Resolved once, then cached.
#[inline]
#[must_use]
pub fn level() -> KernelLevel {
    match KernelLevel::decode(LEVEL.load(Ordering::Relaxed)) {
        Some(l) => l,
        None => init_level(),
    }
}

/// Pins the dispatch level in-process (bench/test hook; production code
/// uses the `REX_KERNEL` environment variable instead).
///
/// # Panics
/// When this host cannot execute `l`.
pub fn force_level(l: KernelLevel) {
    assert!(l.is_available(), "kernel level {} unavailable", l.name());
    LEVEL.store(l.encode(), Ordering::Relaxed);
}

fn check_available(l: KernelLevel) {
    assert!(
        l.is_available(),
        "kernel level {} unavailable on this host",
        l.name()
    );
}

// ---------------------------------------------------------------------
// dot
// ---------------------------------------------------------------------

/// Canonical 8-partial-sum reduction: `((s0+s4)+(s2+s6)) + ((s1+s5)+(s3+s7))`,
/// phrased as the SIMD paths execute it (`lo+hi`, `movhl`, `shuf`).
#[inline]
fn reduce8(acc: &[f32; F32_LANES]) -> f32 {
    let s0 = acc[0] + acc[4];
    let s1 = acc[1] + acc[5];
    let s2 = acc[2] + acc[6];
    let s3 = acc[3] + acc[7];
    (s0 + s2) + (s1 + s3)
}

/// Scalar reference for [`dot`]: the canonical lane-chunked tree.
///
/// The loops run *lane-major* — each of the 8 accumulator lanes walks
/// its stride-8 element subsequence to completion before the next lane
/// starts. Per lane that is the exact add sequence the chunk-major SIMD
/// paths execute (chunk order is ascending either way), so the result
/// is bit-identical — but the inner loop is one serial float dependency
/// chain over strided loads, which LLVM's auto-vectorizer will not
/// touch. That keeps this path an honest scalar baseline: the
/// chunk-major spelling gets silently vectorized to SSE at `opt-level
/// ≥ 2`, which would both fake the scalar bench arm and let a codegen
/// change alter which tree "scalar" means.
#[must_use]
pub fn dot_scalar(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot over mismatched lengths");
    let mut acc = [0.0f32; F32_LANES];
    let chunks = a.len() / F32_LANES;
    let tail = a.len() - chunks * F32_LANES;
    // Ragged tails run as one zero-padded chunk — every lane takes an
    // add (pad lanes add +0.0), exactly like a masked SIMD load.
    let mut pa = [0.0f32; F32_LANES];
    let mut pb = [0.0f32; F32_LANES];
    if tail > 0 {
        pa[..tail].copy_from_slice(&a[chunks * F32_LANES..]);
        pb[..tail].copy_from_slice(&b[chunks * F32_LANES..]);
    }
    for (j, lane) in acc.iter_mut().enumerate() {
        let mut s = 0.0f32;
        for c in 0..chunks {
            s += a[c * F32_LANES + j] * b[c * F32_LANES + j];
        }
        if tail > 0 {
            s += pa[j] * pb[j];
        }
        *lane = s;
    }
    reduce8(&acc)
}

/// `a · b` under the given dispatch level. Bit-identical across levels.
///
/// # Panics
/// When the lengths differ or `l` is unavailable on this host.
#[must_use]
pub fn dot_with(l: KernelLevel, a: &[f32], b: &[f32]) -> f32 {
    check_available(l);
    match l {
        KernelLevel::Scalar => dot_scalar(a, b),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: check_available verified the instruction set.
        KernelLevel::Sse2 => unsafe { x86::dot_sse2(a, b) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: check_available verified the instruction set.
        KernelLevel::Avx2 => unsafe { x86::dot_avx2(a, b) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => unreachable!("SIMD level on non-x86_64"),
    }
}

/// `a · b` under the process dispatch level ([`level`]).
#[inline]
#[must_use]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    dot_with(level(), a, b)
}

// ---------------------------------------------------------------------
// norm_sq
// ---------------------------------------------------------------------

/// Canonical 4-partial-sum f64 reduction: `(s0+s2) + (s1+s3)`.
#[inline]
fn reduce4(acc: &[f64; F64_LANES]) -> f64 {
    (acc[0] + acc[2]) + (acc[1] + acc[3])
}

/// Scalar reference for [`norm_sq`]: the canonical lane-chunked tree.
#[must_use]
pub fn norm_sq_scalar(a: &[f32]) -> f64 {
    let mut acc = [0.0f64; F64_LANES];
    let chunks = a.len() / F64_LANES;
    for c in 0..chunks {
        let p = &a[c * F64_LANES..(c + 1) * F64_LANES];
        for j in 0..F64_LANES {
            let v = f64::from(p[j]);
            acc[j] += v * v;
        }
    }
    let tail = a.len() - chunks * F64_LANES;
    if tail > 0 {
        let mut p = [0.0f32; F64_LANES];
        p[..tail].copy_from_slice(&a[chunks * F64_LANES..]);
        for j in 0..F64_LANES {
            let v = f64::from(p[j]);
            acc[j] += v * v;
        }
    }
    reduce4(&acc)
}

/// `Σ a_i²` in f64 under the given dispatch level.
///
/// # Panics
/// When `l` is unavailable on this host.
#[must_use]
pub fn norm_sq_with(l: KernelLevel, a: &[f32]) -> f64 {
    check_available(l);
    match l {
        KernelLevel::Scalar => norm_sq_scalar(a),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: check_available verified the instruction set.
        KernelLevel::Sse2 => unsafe { x86::norm_sq_sse2(a) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: check_available verified the instruction set.
        KernelLevel::Avx2 => unsafe { x86::norm_sq_avx2(a) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => unreachable!("SIMD level on non-x86_64"),
    }
}

/// `Σ a_i²` in f64 under the process dispatch level.
#[inline]
#[must_use]
pub fn norm_sq(a: &[f32]) -> f64 {
    norm_sq_with(level(), a)
}

// ---------------------------------------------------------------------
// axpy
// ---------------------------------------------------------------------

/// Scalar reference for [`axpy`]: `y[i] += alpha * x[i]`, purely
/// vertical, so any vector width is bit-identical by construction.
pub fn axpy_scalar(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy over mismatched lengths");
    for (yj, xj) in y.iter_mut().zip(x) {
        *yj += alpha * *xj;
    }
}

/// `y += alpha · x` under the given dispatch level.
///
/// # Panics
/// When the lengths differ or `l` is unavailable on this host.
pub fn axpy_with(l: KernelLevel, alpha: f32, x: &[f32], y: &mut [f32]) {
    check_available(l);
    match l {
        KernelLevel::Scalar => axpy_scalar(alpha, x, y),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: check_available verified the instruction set.
        KernelLevel::Sse2 => unsafe { x86::axpy_sse2(alpha, x, y) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: check_available verified the instruction set.
        KernelLevel::Avx2 => unsafe { x86::axpy_avx2(alpha, x, y) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => unreachable!("SIMD level on non-x86_64"),
    }
}

/// `y += alpha · x` under the process dispatch level.
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    axpy_with(level(), alpha, x, y)
}

// ---------------------------------------------------------------------
// scale_add (weighted accumulate for merge)
// ---------------------------------------------------------------------

/// Scalar reference for [`scale_add`]: `acc[i] += w * f64(src[i])`,
/// purely vertical.
pub fn scale_add_scalar(acc: &mut [f64], w: f64, src: &[f32]) {
    assert_eq!(acc.len(), src.len(), "scale_add over mismatched lengths");
    for (a, s) in acc.iter_mut().zip(src) {
        *a += w * f64::from(*s);
    }
}

/// `acc += w · f64(src)` under the given dispatch level — the weighted
/// row accumulate of the model merge.
///
/// # Panics
/// When the lengths differ or `l` is unavailable on this host.
pub fn scale_add_with(l: KernelLevel, acc: &mut [f64], w: f64, src: &[f32]) {
    check_available(l);
    match l {
        KernelLevel::Scalar => scale_add_scalar(acc, w, src),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: check_available verified the instruction set.
        KernelLevel::Sse2 => unsafe { x86::scale_add_sse2(acc, w, src) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: check_available verified the instruction set.
        KernelLevel::Avx2 => unsafe { x86::scale_add_avx2(acc, w, src) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => unreachable!("SIMD level on non-x86_64"),
    }
}

/// `acc += w · f64(src)` under the process dispatch level.
#[inline]
pub fn scale_add(acc: &mut [f64], w: f64, src: &[f32]) {
    scale_add_with(level(), acc, w, src)
}

// ---------------------------------------------------------------------
// sgd_update (fused biased-MF factor update)
// ---------------------------------------------------------------------

/// Scalar reference for [`sgd_update`]: the biased-MF coupled factor
/// update, element `d`:
///
/// ```text
/// x[d] ← x[d] + lr·(err·y[d] − reg·x[d])
/// y[d] ← y[d] + lr·(err·x_old[d] − reg·y[d])
/// ```
///
/// (`y`'s update reads the *pre-update* `x`.) Purely vertical.
pub fn sgd_update_scalar(x: &mut [f32], y: &mut [f32], lr: f32, err: f32, reg: f32) {
    assert_eq!(x.len(), y.len(), "sgd_update over mismatched lengths");
    for (xd, yd) in x.iter_mut().zip(y.iter_mut()) {
        let x0 = *xd;
        let y0 = *yd;
        *xd = x0 + lr * (err * y0 - reg * x0);
        *yd = y0 + lr * (err * x0 - reg * y0);
    }
}

/// Coupled SGD factor update under the given dispatch level.
///
/// # Panics
/// When the lengths differ or `l` is unavailable on this host.
pub fn sgd_update_with(l: KernelLevel, x: &mut [f32], y: &mut [f32], lr: f32, err: f32, reg: f32) {
    check_available(l);
    match l {
        KernelLevel::Scalar => sgd_update_scalar(x, y, lr, err, reg),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: check_available verified the instruction set.
        KernelLevel::Sse2 => unsafe { x86::sgd_update_sse2(x, y, lr, err, reg) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: check_available verified the instruction set.
        KernelLevel::Avx2 => unsafe { x86::sgd_update_avx2(x, y, lr, err, reg) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => unreachable!("SIMD level on non-x86_64"),
    }
}

/// Coupled SGD factor update under the process dispatch level.
#[inline]
pub fn sgd_update(x: &mut [f32], y: &mut [f32], lr: f32, err: f32, reg: f32) {
    sgd_update_with(level(), x, y, lr, err, reg)
}

// ---------------------------------------------------------------------
// x86_64 implementations
// ---------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! `std::arch` implementations. All float math is `mul` + `add`
    //! (never FMA), so each lane is exactly the scalar reference's op
    //! sequence; reductions replay the canonical trees of the parent
    //! module. Functions are `unsafe` because callers must guarantee
    //! the instruction set (checked by the dispatch wrappers).

    use super::{F32_LANES, F64_LANES};
    use std::arch::x86_64::*;

    /// The canonical 8-lane reduction on a 256-bit accumulator:
    /// `lo+hi` → `movhl` add → scalar shuffle add.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn reduce8_avx2(acc: __m256) -> f32 {
        let lo = _mm256_castps256_ps128(acc);
        let hi = _mm256_extractf128_ps(acc, 1);
        reduce4_sse2(_mm_add_ps(lo, hi))
    }

    /// `(s0+s2) + (s1+s3)` on a 128-bit register.
    #[inline]
    unsafe fn reduce4_sse2(s: __m128) -> f32 {
        let t = _mm_add_ps(s, _mm_movehl_ps(s, s)); // [s0+s2, s1+s3, ..]
        let r = _mm_add_ss(t, _mm_shuffle_ps(t, t, 0b01));
        _mm_cvtss_f32(r)
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn dot_avx2(a: &[f32], b: &[f32]) -> f32 {
        assert_eq!(a.len(), b.len(), "dot over mismatched lengths");
        let chunks = a.len() / F32_LANES;
        let mut acc = _mm256_setzero_ps();
        for c in 0..chunks {
            let va = _mm256_loadu_ps(a.as_ptr().add(c * F32_LANES));
            let vb = _mm256_loadu_ps(b.as_ptr().add(c * F32_LANES));
            acc = _mm256_add_ps(acc, _mm256_mul_ps(va, vb));
        }
        let tail = a.len() - chunks * F32_LANES;
        if tail > 0 {
            let mut pa = [0.0f32; F32_LANES];
            let mut pb = [0.0f32; F32_LANES];
            pa[..tail].copy_from_slice(&a[chunks * F32_LANES..]);
            pb[..tail].copy_from_slice(&b[chunks * F32_LANES..]);
            let va = _mm256_loadu_ps(pa.as_ptr());
            let vb = _mm256_loadu_ps(pb.as_ptr());
            acc = _mm256_add_ps(acc, _mm256_mul_ps(va, vb));
        }
        reduce8_avx2(acc)
    }

    pub unsafe fn dot_sse2(a: &[f32], b: &[f32]) -> f32 {
        assert_eq!(a.len(), b.len(), "dot over mismatched lengths");
        // Two 4-wide accumulators emulate the 8-lane canonical tree:
        // `lo` holds lanes 0–3, `hi` lanes 4–7.
        let chunks = a.len() / F32_LANES;
        let mut lo = _mm_setzero_ps();
        let mut hi = _mm_setzero_ps();
        for c in 0..chunks {
            let base = c * F32_LANES;
            let va0 = _mm_loadu_ps(a.as_ptr().add(base));
            let vb0 = _mm_loadu_ps(b.as_ptr().add(base));
            let va1 = _mm_loadu_ps(a.as_ptr().add(base + 4));
            let vb1 = _mm_loadu_ps(b.as_ptr().add(base + 4));
            lo = _mm_add_ps(lo, _mm_mul_ps(va0, vb0));
            hi = _mm_add_ps(hi, _mm_mul_ps(va1, vb1));
        }
        let tail = a.len() - chunks * F32_LANES;
        if tail > 0 {
            let mut pa = [0.0f32; F32_LANES];
            let mut pb = [0.0f32; F32_LANES];
            pa[..tail].copy_from_slice(&a[chunks * F32_LANES..]);
            pb[..tail].copy_from_slice(&b[chunks * F32_LANES..]);
            let va0 = _mm_loadu_ps(pa.as_ptr());
            let vb0 = _mm_loadu_ps(pb.as_ptr());
            let va1 = _mm_loadu_ps(pa.as_ptr().add(4));
            let vb1 = _mm_loadu_ps(pb.as_ptr().add(4));
            lo = _mm_add_ps(lo, _mm_mul_ps(va0, vb0));
            hi = _mm_add_ps(hi, _mm_mul_ps(va1, vb1));
        }
        reduce4_sse2(_mm_add_ps(lo, hi))
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn norm_sq_avx2(a: &[f32]) -> f64 {
        let chunks = a.len() / F64_LANES;
        let mut acc = _mm256_setzero_pd();
        for c in 0..chunks {
            let v = _mm256_cvtps_pd(_mm_loadu_ps(a.as_ptr().add(c * F64_LANES)));
            acc = _mm256_add_pd(acc, _mm256_mul_pd(v, v));
        }
        let tail = a.len() - chunks * F64_LANES;
        if tail > 0 {
            let mut p = [0.0f32; F64_LANES];
            p[..tail].copy_from_slice(&a[chunks * F64_LANES..]);
            let v = _mm256_cvtps_pd(_mm_loadu_ps(p.as_ptr()));
            acc = _mm256_add_pd(acc, _mm256_mul_pd(v, v));
        }
        // (s0+s2) + (s1+s3): lo128 + hi128, then lane0 + lane1.
        let lo = _mm256_castpd256_pd128(acc);
        let hi = _mm256_extractf128_pd(acc, 1);
        let s = _mm_add_pd(lo, hi);
        let r = _mm_add_sd(s, _mm_unpackhi_pd(s, s));
        _mm_cvtsd_f64(r)
    }

    pub unsafe fn norm_sq_sse2(a: &[f32]) -> f64 {
        // `lo` holds f64 lanes 0–1, `hi` lanes 2–3 of the canonical tree.
        let chunks = a.len() / F64_LANES;
        let mut lo = _mm_setzero_pd();
        let mut hi = _mm_setzero_pd();
        for c in 0..chunks {
            let f = _mm_loadu_ps(a.as_ptr().add(c * F64_LANES));
            let v0 = _mm_cvtps_pd(f);
            let v1 = _mm_cvtps_pd(_mm_movehl_ps(f, f));
            lo = _mm_add_pd(lo, _mm_mul_pd(v0, v0));
            hi = _mm_add_pd(hi, _mm_mul_pd(v1, v1));
        }
        let tail = a.len() - chunks * F64_LANES;
        if tail > 0 {
            let mut p = [0.0f32; F64_LANES];
            p[..tail].copy_from_slice(&a[chunks * F64_LANES..]);
            let f = _mm_loadu_ps(p.as_ptr());
            let v0 = _mm_cvtps_pd(f);
            let v1 = _mm_cvtps_pd(_mm_movehl_ps(f, f));
            lo = _mm_add_pd(lo, _mm_mul_pd(v0, v0));
            hi = _mm_add_pd(hi, _mm_mul_pd(v1, v1));
        }
        let s = _mm_add_pd(lo, hi); // [s0+s2, s1+s3]
        let r = _mm_add_sd(s, _mm_unpackhi_pd(s, s));
        _mm_cvtsd_f64(r)
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn axpy_avx2(alpha: f32, x: &[f32], y: &mut [f32]) {
        assert_eq!(x.len(), y.len(), "axpy over mismatched lengths");
        let va = _mm256_set1_ps(alpha);
        let chunks = x.len() / 8;
        for c in 0..chunks {
            let vx = _mm256_loadu_ps(x.as_ptr().add(c * 8));
            let vy = _mm256_loadu_ps(y.as_ptr().add(c * 8));
            _mm256_storeu_ps(
                y.as_mut_ptr().add(c * 8),
                _mm256_add_ps(vy, _mm256_mul_ps(va, vx)),
            );
        }
        for j in chunks * 8..x.len() {
            y[j] += alpha * x[j];
        }
    }

    pub unsafe fn axpy_sse2(alpha: f32, x: &[f32], y: &mut [f32]) {
        assert_eq!(x.len(), y.len(), "axpy over mismatched lengths");
        let va = _mm_set1_ps(alpha);
        let chunks = x.len() / 4;
        for c in 0..chunks {
            let vx = _mm_loadu_ps(x.as_ptr().add(c * 4));
            let vy = _mm_loadu_ps(y.as_ptr().add(c * 4));
            _mm_storeu_ps(
                y.as_mut_ptr().add(c * 4),
                _mm_add_ps(vy, _mm_mul_ps(va, vx)),
            );
        }
        for j in chunks * 4..x.len() {
            y[j] += alpha * x[j];
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn scale_add_avx2(acc: &mut [f64], w: f64, src: &[f32]) {
        assert_eq!(acc.len(), src.len(), "scale_add over mismatched lengths");
        let vw = _mm256_set1_pd(w);
        let chunks = src.len() / 4;
        for c in 0..chunks {
            let vs = _mm256_cvtps_pd(_mm_loadu_ps(src.as_ptr().add(c * 4)));
            let va = _mm256_loadu_pd(acc.as_ptr().add(c * 4));
            _mm256_storeu_pd(
                acc.as_mut_ptr().add(c * 4),
                _mm256_add_pd(va, _mm256_mul_pd(vw, vs)),
            );
        }
        for j in chunks * 4..src.len() {
            acc[j] += w * f64::from(src[j]);
        }
    }

    pub unsafe fn scale_add_sse2(acc: &mut [f64], w: f64, src: &[f32]) {
        assert_eq!(acc.len(), src.len(), "scale_add over mismatched lengths");
        let vw = _mm_set1_pd(w);
        let chunks = src.len() / 4;
        for c in 0..chunks {
            let f = _mm_loadu_ps(src.as_ptr().add(c * 4));
            let s0 = _mm_cvtps_pd(f);
            let s1 = _mm_cvtps_pd(_mm_movehl_ps(f, f));
            let a0 = _mm_loadu_pd(acc.as_ptr().add(c * 4));
            let a1 = _mm_loadu_pd(acc.as_ptr().add(c * 4 + 2));
            _mm_storeu_pd(
                acc.as_mut_ptr().add(c * 4),
                _mm_add_pd(a0, _mm_mul_pd(vw, s0)),
            );
            _mm_storeu_pd(
                acc.as_mut_ptr().add(c * 4 + 2),
                _mm_add_pd(a1, _mm_mul_pd(vw, s1)),
            );
        }
        for j in chunks * 4..src.len() {
            acc[j] += w * f64::from(src[j]);
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn sgd_update_avx2(x: &mut [f32], y: &mut [f32], lr: f32, err: f32, reg: f32) {
        assert_eq!(x.len(), y.len(), "sgd_update over mismatched lengths");
        let vlr = _mm256_set1_ps(lr);
        let verr = _mm256_set1_ps(err);
        let vreg = _mm256_set1_ps(reg);
        let chunks = x.len() / 8;
        for c in 0..chunks {
            let vx = _mm256_loadu_ps(x.as_ptr().add(c * 8));
            let vy = _mm256_loadu_ps(y.as_ptr().add(c * 8));
            let gx = _mm256_sub_ps(_mm256_mul_ps(verr, vy), _mm256_mul_ps(vreg, vx));
            let gy = _mm256_sub_ps(_mm256_mul_ps(verr, vx), _mm256_mul_ps(vreg, vy));
            _mm256_storeu_ps(
                x.as_mut_ptr().add(c * 8),
                _mm256_add_ps(vx, _mm256_mul_ps(vlr, gx)),
            );
            _mm256_storeu_ps(
                y.as_mut_ptr().add(c * 8),
                _mm256_add_ps(vy, _mm256_mul_ps(vlr, gy)),
            );
        }
        for j in chunks * 8..x.len() {
            let x0 = x[j];
            let y0 = y[j];
            x[j] = x0 + lr * (err * y0 - reg * x0);
            y[j] = y0 + lr * (err * x0 - reg * y0);
        }
    }

    pub unsafe fn sgd_update_sse2(x: &mut [f32], y: &mut [f32], lr: f32, err: f32, reg: f32) {
        assert_eq!(x.len(), y.len(), "sgd_update over mismatched lengths");
        let vlr = _mm_set1_ps(lr);
        let verr = _mm_set1_ps(err);
        let vreg = _mm_set1_ps(reg);
        let chunks = x.len() / 4;
        for c in 0..chunks {
            let vx = _mm_loadu_ps(x.as_ptr().add(c * 4));
            let vy = _mm_loadu_ps(y.as_ptr().add(c * 4));
            let gx = _mm_sub_ps(_mm_mul_ps(verr, vy), _mm_mul_ps(vreg, vx));
            let gy = _mm_sub_ps(_mm_mul_ps(verr, vx), _mm_mul_ps(vreg, vy));
            _mm_storeu_ps(
                x.as_mut_ptr().add(c * 4),
                _mm_add_ps(vx, _mm_mul_ps(vlr, gx)),
            );
            _mm_storeu_ps(
                y.as_mut_ptr().add(c * 4),
                _mm_add_ps(vy, _mm_mul_ps(vlr, gy)),
            );
        }
        for j in chunks * 4..x.len() {
            let x0 = x[j];
            let y0 = y[j];
            x[j] = x0 + lr * (err * y0 - reg * x0);
            y[j] = y0 + lr * (err * x0 - reg * y0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe_vec(seed: u64, len: usize) -> Vec<f32> {
        // splitmix64-driven bit patterns: finite floats plus the odd
        // subnormal and signed zero.
        let mut s = seed;
        (0..len)
            .map(|_| {
                s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = s;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                let bits = (z ^ (z >> 31)) as u32;
                match bits % 17 {
                    0 => 0.0,
                    1 => -0.0,
                    2 => f32::from_bits(bits & 0x007f_ffff), // subnormal
                    _ => ((bits % 2048) as f32 - 1024.0) * 0.013,
                }
            })
            .collect()
    }

    #[test]
    fn all_levels_agree_bitwise_on_every_primitive() {
        for len in [0usize, 1, 3, 4, 7, 8, 9, 15, 16, 31, 32, 63, 100] {
            let a = probe_vec(1 + len as u64, len);
            let b = probe_vec(99 + len as u64, len);
            for l in available_levels() {
                assert_eq!(
                    dot_with(l, &a, &b).to_bits(),
                    dot_scalar(&a, &b).to_bits(),
                    "dot {} len {len}",
                    l.name()
                );
                assert_eq!(
                    norm_sq_with(l, &a).to_bits(),
                    norm_sq_scalar(&a).to_bits(),
                    "norm_sq {} len {len}",
                    l.name()
                );
                let mut y_ref = b.clone();
                let mut y_got = b.clone();
                axpy_scalar(0.37, &a, &mut y_ref);
                axpy_with(l, 0.37, &a, &mut y_got);
                assert_eq!(
                    y_ref.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    y_got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "axpy {} len {len}",
                    l.name()
                );
                let mut acc_ref = vec![0.25f64; len];
                let mut acc_got = acc_ref.clone();
                scale_add_scalar(&mut acc_ref, 0.6, &a);
                scale_add_with(l, &mut acc_got, 0.6, &a);
                assert_eq!(
                    acc_ref.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    acc_got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "scale_add {} len {len}",
                    l.name()
                );
                let (mut xr, mut yr) = (a.clone(), b.clone());
                let (mut xg, mut yg) = (a.clone(), b.clone());
                sgd_update_scalar(&mut xr, &mut yr, 0.005, 1.25, 0.1);
                sgd_update_with(l, &mut xg, &mut yg, 0.005, 1.25, 0.1);
                assert_eq!(
                    xr.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    xg.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "sgd_update x {} len {len}",
                    l.name()
                );
                assert_eq!(
                    yr.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    yg.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "sgd_update y {} len {len}",
                    l.name()
                );
            }
        }
    }

    #[test]
    fn dot_matches_plain_math_closely() {
        // The canonical tree reassociates, so compare against f64.
        let a = probe_vec(5, 33);
        let b = probe_vec(6, 33);
        let want: f64 = a
            .iter()
            .zip(&b)
            .map(|(x, y)| f64::from(*x) * f64::from(*y))
            .sum();
        let got = f64::from(dot_scalar(&a, &b));
        assert!((want - got).abs() < 1e-3, "{want} vs {got}");
    }

    #[test]
    fn sgd_update_matches_the_legacy_loop() {
        // The kernel must replay the historical per-element op order so
        // its adoption is a bit-level no-op on the training trajectory.
        let x0 = probe_vec(7, 10);
        let y0 = probe_vec(8, 10);
        let (lr, err, reg) = (0.005f32, -0.75f32, 0.1f32);
        let mut x_legacy = x0.clone();
        let mut y_legacy = y0.clone();
        for d in 0..10 {
            let xu_d = x_legacy[d];
            let yi_d = y_legacy[d];
            x_legacy[d] += lr * (err * yi_d - reg * xu_d);
            y_legacy[d] += lr * (err * xu_d - reg * yi_d);
        }
        let mut x = x0;
        let mut y = y0;
        sgd_update_scalar(&mut x, &mut y, lr, err, reg);
        assert_eq!(
            x.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            x_legacy.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(
            y.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            y_legacy.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn level_parsing_and_availability() {
        assert_eq!(KernelLevel::parse("scalar"), Some(KernelLevel::Scalar));
        assert_eq!(KernelLevel::parse("sse2"), Some(KernelLevel::Sse2));
        assert_eq!(KernelLevel::parse("avx2"), Some(KernelLevel::Avx2));
        assert_eq!(KernelLevel::parse("neon"), None);
        assert!(KernelLevel::Scalar.is_available());
        let levels = available_levels();
        assert!(levels.contains(&KernelLevel::Scalar));
        for l in levels {
            assert!(l.is_available());
            assert_eq!(KernelLevel::parse(l.name()), Some(l));
        }
        // The process level is always executable.
        assert!(level().is_available());
    }
}
