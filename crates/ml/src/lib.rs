//! Machine-learning substrate for the REX reproduction.
//!
//! Two recommender families, mirroring the paper (§II-A):
//!
//! * [`mf`] — biased matrix factorization trained by plain SGD
//!   (k = 10, η = 0.005, λ = 0.1 in the paper's experiments);
//! * [`dnn`] — an embedding + 4-hidden-layer MLP recommender trained with
//!   Adam (k = 20, η = 1e-4, weight decay 1e-5, dropout 0.02/0.15).
//!
//! Both implement the [`Model`] trait consumed by `rex-core`: fixed-step
//! training epochs (paper §III-E fixes SGD steps per epoch so epoch time
//! stays constant as the data store grows), weighted merging with
//! missing-embedding handling (paper §III-C2), and byte serialization for
//! network-volume accounting.

pub mod bytesio;
pub mod dnn;
pub mod kernel;
pub mod metrics;
pub mod mf;
pub mod model;

pub use dnn::{DnnHyperParams, DnnModel};
pub use kernel::KernelLevel;
pub use metrics::{mae, rmse};
pub use mf::{MfHyperParams, MfModel};
pub use model::{Model, ModelCodecError};
