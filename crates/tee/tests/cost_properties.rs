//! Property tests over the SGX cost and EPC models.

use proptest::prelude::*;
use rex_tee::epc::{EpcTracker, Region};
use rex_tee::SgxCostModel;

proptest! {
    #[test]
    fn paging_monotone_in_resident_set(
        epc_mib in 1u64..64,
        resident_a in 0u64..(256 << 20),
        delta in 0u64..(64 << 20),
        accessed in 1u64..(32 << 20),
    ) {
        let cost = SgxCostModel::default().with_epc_limit(epc_mib << 20);
        let low = cost.paging_overhead(resident_a, accessed);
        let high = cost.paging_overhead(resident_a + delta, accessed);
        prop_assert!(high >= low, "paging decreased with larger resident set");
    }

    #[test]
    fn paging_monotone_in_bytes_accessed(
        resident in 0u64..(256 << 20),
        accessed_a in 0u64..(16 << 20),
        delta in 0u64..(16 << 20),
    ) {
        let cost = SgxCostModel::default().with_epc_limit(8 << 20);
        let low = cost.paging_overhead(resident, accessed_a);
        let high = cost.paging_overhead(resident, accessed_a + delta);
        prop_assert!(high >= low);
    }

    #[test]
    fn no_paging_when_fitting(resident in 0u64..(93 << 20), accessed in 0u64..(64 << 20)) {
        let cost = SgxCostModel::default();
        prop_assert_eq!(cost.paging_overhead(resident, accessed), 0);
    }

    #[test]
    fn transition_costs_are_affine(bytes_a in 0u64..(8 << 20), bytes_b in 0u64..(8 << 20)) {
        let cost = SgxCostModel::default();
        let fixed = cost.ecall_cost(0);
        // Affine: cost(a) + cost(b) == cost(a+b) + fixed (within rounding).
        let lhs = cost.ecall_cost(bytes_a) + cost.ecall_cost(bytes_b);
        let rhs = cost.ecall_cost(bytes_a + bytes_b) + fixed;
        prop_assert!(lhs.abs_diff(rhs) <= 2, "{lhs} vs {rhs}");
    }

    #[test]
    fn tracker_total_is_sum_of_regions(
        model in 0u64..(64 << 20),
        store in 0u64..(64 << 20),
        merge in 0u64..(64 << 20),
        msg in 0u64..(64 << 20),
    ) {
        let mut t = EpcTracker::new();
        t.set_region(Region::Model, model);
        t.set_region(Region::DataStore, store);
        t.set_region(Region::MergeBuffers, merge);
        t.set_region(Region::MessageBuffers, msg);
        prop_assert_eq!(t.resident_bytes(), model + store + merge + msg);
        prop_assert!(t.peak_bytes() >= t.resident_bytes());
    }

    #[test]
    fn compute_overhead_proportional(native_ns in 0u64..10_000_000_000) {
        let cost = SgxCostModel { enclave_compute_multiplier: 1.25, ..Default::default() };
        let overhead = cost.compute_overhead(native_ns);
        let expected = native_ns / 4;
        prop_assert!(overhead.abs_diff(expected) <= 1 + native_ns / 1_000_000);
    }
}
