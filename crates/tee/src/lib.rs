//! Simulated Intel SGX platform (DESIGN.md §2: hardware substitution).
//!
//! The paper runs REX inside real SGX enclaves on Xeon E-2288G machines.
//! This crate reproduces, in software, every SGX property the paper's
//! evaluation depends on:
//!
//! * **identity** — an enclave's [`measurement`] is a hash of its initial
//!   code/data, so all honest REX nodes share one measurement and a rogue
//!   build is detected (paper §III-A);
//! * **attestation** — [`report`]s are locally MAC'd per platform, converted
//!   to signed [`quote`]s by a per-platform quoting enclave, and verified
//!   remotely through a [`dcap`] service (paper §II-D); the quote's
//!   user-data field carries an X25519 public key from which mutually
//!   attested nodes derive AEAD [`session`] keys (paper §III-A);
//! * **cost** — enclaves pay for ecall/ocall transitions, boundary copies
//!   and EPC paging ([`cost`], [`epc`], [`meter`]); these charges drive the
//!   SGX-vs-native results (paper Figs 6–7, Table IV).
//!
//! Cost-model constants come from published SGX microbenchmarks (Costan &
//! Devadas, "Intel SGX Explained"; ~8–13 k cycles per transition, ~40 k
//! cycles per EPC fault) and are configurable per experiment.

pub mod attestation;
pub mod cost;
pub mod dcap;
pub mod enclave;
pub mod epc;
pub mod join;
pub mod measurement;
pub mod meter;
pub mod platform;
pub mod quote;
pub mod report;
pub mod session;

pub use attestation::{AttestationError, AttestationMsg, Attestor};
pub use cost::SgxCostModel;
pub use dcap::DcapService;
pub use enclave::Enclave;
pub use epc::EpcTracker;
pub use measurement::Measurement;
pub use meter::CostMeter;
pub use platform::SgxPlatform;
pub use quote::Quote;
pub use report::Report;
pub use session::SecureSession;
