//! The application enclave: identity + cost accounting.
//!
//! The protocol logic itself lives in `rex-core` (mirroring the paper's
//! split into Algorithm 1, untrusted, and Algorithm 2, trusted). This type
//! models what the *hardware* contributes: a measured identity, report
//! generation, and the runtime charges of living inside SGX (transition
//! costs, boundary copies, MEE slowdown, EPC paging).

use crate::cost::SgxCostModel;
use crate::epc::{EpcTracker, Region};
use crate::measurement::Measurement;
use crate::meter::CostMeter;
use crate::report::{Report, USER_DATA_LEN};

/// A loaded enclave instance.
pub struct Enclave {
    measurement: Measurement,
    platform_id: u64,
    report_key: [u8; 32],
    cost: SgxCostModel,
    meter: CostMeter,
    epc: EpcTracker,
}

impl Enclave {
    /// Called by [`crate::platform::SgxPlatform::create_enclave`].
    #[must_use]
    pub(crate) fn new(
        measurement: Measurement,
        platform_id: u64,
        report_key: [u8; 32],
        cost: SgxCostModel,
    ) -> Self {
        Enclave {
            measurement,
            platform_id,
            report_key,
            cost,
            meter: CostMeter::new(),
            epc: EpcTracker::new(),
        }
    }

    /// This enclave's measurement.
    #[must_use]
    pub fn measurement(&self) -> Measurement {
        self.measurement
    }

    /// Hosting platform id.
    #[must_use]
    pub fn platform_id(&self) -> u64 {
        self.platform_id
    }

    /// The cost model in force.
    #[must_use]
    pub fn cost_model(&self) -> &SgxCostModel {
        &self.cost
    }

    /// Produces a hardware report carrying `user_data` (EREPORT).
    pub fn create_report(&mut self, user_data: [u8; USER_DATA_LEN]) -> Report {
        // Report generation crosses no boundary but is enclave compute;
        // charge a token amount via the compute path (measured cost of the
        // MAC is negligible and covered by the multiplier elsewhere).
        Report::create(
            self.measurement,
            user_data,
            self.platform_id,
            &self.report_key,
        )
    }

    /// Charges one ecall carrying `bytes` into the enclave; returns the
    /// simulated overhead in ns.
    pub fn charge_ecall(&mut self, bytes: u64) -> u64 {
        let ns = self.cost.ecall_cost(bytes);
        self.meter.ecalls += 1;
        self.meter.bytes_in += bytes;
        self.meter.transition_ns += ns;
        ns
    }

    /// Charges one ocall carrying `bytes` out; returns ns.
    pub fn charge_ocall(&mut self, bytes: u64) -> u64 {
        let ns = self.cost.ocall_cost(bytes);
        self.meter.ocalls += 1;
        self.meter.bytes_out += bytes;
        self.meter.transition_ns += ns;
        ns
    }

    /// Charges the MEE multiplier over `native_ns` of in-enclave compute;
    /// returns the extra ns.
    pub fn charge_compute(&mut self, native_ns: u64) -> u64 {
        let ns = self.cost.compute_overhead(native_ns);
        self.meter.compute_ns += ns;
        ns
    }

    /// Charges EPC paging for touching `bytes_accessed` of the current
    /// resident set; returns ns.
    pub fn charge_memory_access(&mut self, bytes_accessed: u64) -> u64 {
        let ns = self.epc.access_overhead(&self.cost, bytes_accessed);
        self.meter.paging_ns += ns;
        ns
    }

    /// Updates the tracked size of a protected-memory region.
    pub fn set_region(&mut self, region: Region, bytes: u64) {
        self.epc.set_region(region, bytes);
    }

    /// Read access to the EPC tracker.
    #[must_use]
    pub fn epc(&self) -> &EpcTracker {
        &self.epc
    }

    /// Read access to the accumulated meter.
    #[must_use]
    pub fn meter(&self) -> &CostMeter {
        &self.meter
    }

    /// Takes and resets the meter (per-epoch attribution).
    pub fn take_meter(&mut self) -> CostMeter {
        self.meter.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measurement::REX_ENCLAVE_V1;

    fn enclave(cost: SgxCostModel) -> Enclave {
        Enclave::new(Measurement::of_code(REX_ENCLAVE_V1), 1, [7u8; 32], cost)
    }

    #[test]
    fn charges_accumulate() {
        let mut e = enclave(SgxCostModel::default());
        let a = e.charge_ecall(1000);
        let b = e.charge_ocall(2000);
        assert!(a > 0 && b > 0);
        assert_eq!(e.meter().ecalls, 1);
        assert_eq!(e.meter().ocalls, 1);
        assert_eq!(e.meter().bytes_in, 1000);
        assert_eq!(e.meter().bytes_out, 2000);
        assert_eq!(e.meter().transition_ns, a + b);
    }

    #[test]
    fn native_model_charges_zero() {
        let mut e = enclave(SgxCostModel::native());
        assert_eq!(e.charge_ecall(1 << 20), 0);
        assert_eq!(e.charge_compute(1_000_000), 0);
        e.set_region(Region::Model, 1 << 40);
        assert_eq!(e.charge_memory_access(1 << 30), 0);
    }

    #[test]
    fn paging_kicks_in_beyond_epc() {
        let cost = SgxCostModel::default().with_epc_limit(1 << 20);
        let mut e = enclave(cost);
        e.set_region(Region::Model, 1 << 19);
        assert_eq!(e.charge_memory_access(1 << 19), 0);
        e.set_region(Region::DataStore, 3 << 20);
        let ns = e.charge_memory_access(1 << 19);
        assert!(ns > 0);
        assert_eq!(e.meter().paging_ns, ns);
        assert!(e.epc().overcommitted(&cost));
    }

    #[test]
    fn take_meter_resets_per_epoch() {
        let mut e = enclave(SgxCostModel::default());
        e.charge_ecall(10);
        let epoch1 = e.take_meter();
        assert_eq!(epoch1.ecalls, 1);
        assert_eq!(e.meter().ecalls, 0);
    }

    #[test]
    fn report_carries_identity() {
        let mut e = enclave(SgxCostModel::default());
        let r = e.create_report([9u8; USER_DATA_LEN]);
        assert_eq!(r.measurement, e.measurement());
        assert!(r.verify(&[7u8; 32]));
    }
}
