//! Mutual remote attestation (paper §III-A).
//!
//! Two-message protocol between enclaves A (initiator) and B (responder):
//!
//! ```text
//! A → B : Hello { quote_A }    user_data = X25519 pub_A ‖ nonce_A
//! B → A : Reply { quote_B }    user_data = X25519 pub_B ‖ nonce_B
//! ```
//!
//! Each side (1) verifies the peer quote through DCAP, (2) compares the
//! quote's measurement with **its own** (all REX nodes run identical code,
//! so the expected measurement is the checker's own — §III-A), (3) combines
//! the peer public key from the quote's user-data with its local private
//! key, and (4) derives directional session keys via HKDF bound to both
//! nonces and the measurement.

use crate::dcap::DcapService;
use crate::enclave::Enclave;
use crate::measurement::Measurement;
use crate::quote::Quote;
use crate::report::USER_DATA_LEN;
use crate::session::SecureSession;
use rand::RngCore;
use rex_crypto::{Hkdf, PublicKey, StaticSecret};

/// Attestation protocol messages (exchanged in clear text; they carry no
/// secrets — paper Algorithm 1: "only attestation messages, which are not
/// privacy-sensitive, are exchanged in clear text").
#[derive(Debug, Clone)]
pub enum AttestationMsg {
    /// Initiator's evidence.
    Hello {
        /// Initiator quote (user-data: pubkey ‖ nonce).
        quote: Quote,
    },
    /// Responder's evidence.
    Reply {
        /// Responder quote (user-data: pubkey ‖ nonce).
        quote: Quote,
    },
}

impl AttestationMsg {
    /// Bytes on the wire (for traffic accounting).
    #[must_use]
    pub fn wire_size(&self) -> usize {
        1 + Quote::WIRE_SIZE
    }
}

/// Attestation failure reasons.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttestationError {
    /// DCAP could not validate the quote signature chain.
    UntrustedPlatform,
    /// Peer runs different enclave code.
    MeasurementMismatch,
    /// Peer supplied a degenerate ECDH point.
    BadKeyExchange,
    /// Protocol message arrived out of order.
    UnexpectedMessage,
}

impl std::fmt::Display for AttestationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttestationError::UntrustedPlatform => write!(f, "quote failed DCAP verification"),
            AttestationError::MeasurementMismatch => write!(f, "enclave measurement mismatch"),
            AttestationError::BadKeyExchange => write!(f, "degenerate ECDH public key"),
            AttestationError::UnexpectedMessage => write!(f, "unexpected attestation message"),
        }
    }
}

impl std::error::Error for AttestationError {}

/// Per-peer attestation state: an ephemeral X25519 key pair and a nonce.
pub struct Attestor {
    secret: StaticSecret,
    public: PublicKey,
    nonce: [u8; 32],
}

impl Attestor {
    /// Creates fresh ephemeral state.
    pub fn new<R: RngCore>(rng: &mut R) -> Self {
        let secret = StaticSecret::random(rng);
        let public = secret.public_key();
        let mut nonce = [0u8; 32];
        rng.fill_bytes(&mut nonce);
        Attestor {
            secret,
            public,
            nonce,
        }
    }

    /// The user-data field embedded in this party's quote.
    #[must_use]
    pub fn user_data(&self) -> [u8; USER_DATA_LEN] {
        let mut ud = [0u8; USER_DATA_LEN];
        ud[..32].copy_from_slice(self.public.as_bytes());
        ud[32..].copy_from_slice(&self.nonce);
        ud
    }

    /// Initiator step 1: produce the Hello carrying this enclave's quote.
    /// The caller obtains the quote from its platform's QE.
    #[must_use]
    pub fn hello(quote: Quote) -> AttestationMsg {
        AttestationMsg::Hello { quote }
    }

    /// Responder: verify Hello, produce `(Reply, session)`.
    pub fn respond(
        &self,
        enclave: &Enclave,
        dcap: &DcapService,
        own_quote: Quote,
        msg: &AttestationMsg,
    ) -> Result<(AttestationMsg, SecureSession), AttestationError> {
        let AttestationMsg::Hello { quote: peer_quote } = msg else {
            return Err(AttestationError::UnexpectedMessage);
        };
        let session = self.establish(enclave, dcap, peer_quote, &own_quote, false)?;
        Ok((AttestationMsg::Reply { quote: own_quote }, session))
    }

    /// Initiator: verify Reply, produce the session.
    pub fn finish(
        &self,
        enclave: &Enclave,
        dcap: &DcapService,
        own_quote: &Quote,
        msg: &AttestationMsg,
    ) -> Result<SecureSession, AttestationError> {
        let AttestationMsg::Reply { quote: peer_quote } = msg else {
            return Err(AttestationError::UnexpectedMessage);
        };
        self.establish(enclave, dcap, peer_quote, own_quote, true)
    }

    /// Derives the session pair of an edge directly from both parties'
    /// ephemeral state, without routing quotes through the two-message
    /// protocol — the key schedule of a **late join** (see
    /// [`crate::join`]), where both ephemerals are re-derived
    /// deterministically from the fleet seed and quote verification
    /// happens separately. The HKDF inputs mirror [`Attestor::respond`] /
    /// [`Attestor::finish`]: both nonces in initiator-then-responder
    /// order, the shared ECDH secret, and the fleet measurement — so two
    /// processes that derive the same ephemerals install byte-identical
    /// directional keys. Returns `(initiator_session, responder_session)`.
    pub fn session_pair(
        initiator: &Attestor,
        responder: &Attestor,
        measurement: Measurement,
    ) -> Result<(SecureSession, SecureSession), AttestationError> {
        let shared = initiator
            .secret
            .diffie_hellman(&responder.public)
            .map_err(|_| AttestationError::BadKeyExchange)?;
        let mut salt = Vec::with_capacity(64);
        salt.extend_from_slice(&initiator.nonce);
        salt.extend_from_slice(&responder.nonce);
        let mut info = Vec::with_capacity(32 + 24);
        info.extend_from_slice(b"rex-attested-session-v1");
        info.extend_from_slice(&measurement.0);

        let okm: [u8; 64] = Hkdf::derive(&salt, shared.as_bytes(), &info);
        let mut k_i2r = [0u8; 32];
        let mut k_r2i = [0u8; 32];
        k_i2r.copy_from_slice(&okm[..32]);
        k_r2i.copy_from_slice(&okm[32..]);

        Ok((
            SecureSession::new(k_i2r, k_r2i, true, measurement),
            SecureSession::new(k_r2i, k_i2r, false, measurement),
        ))
    }

    fn establish(
        &self,
        enclave: &Enclave,
        dcap: &DcapService,
        peer_quote: &Quote,
        own_quote: &Quote,
        is_initiator: bool,
    ) -> Result<SecureSession, AttestationError> {
        if !dcap.verify(peer_quote) {
            return Err(AttestationError::UntrustedPlatform);
        }
        // Expected measurement = the checker's own (paper §III-A).
        if !peer_quote.measurement.ct_eq(&enclave.measurement()) {
            return Err(AttestationError::MeasurementMismatch);
        }
        let mut peer_pub = [0u8; 32];
        peer_pub.copy_from_slice(&peer_quote.user_data[..32]);
        let shared = self
            .secret
            .diffie_hellman(&PublicKey(peer_pub))
            .map_err(|_| AttestationError::BadKeyExchange)?;

        // Salt binds both nonces in initiator-then-responder order.
        let (init_ud, resp_ud) = if is_initiator {
            (own_quote.user_data, peer_quote.user_data)
        } else {
            (peer_quote.user_data, own_quote.user_data)
        };
        let mut salt = Vec::with_capacity(64);
        salt.extend_from_slice(&init_ud[32..]);
        salt.extend_from_slice(&resp_ud[32..]);
        let mut info = Vec::with_capacity(32 + 24);
        info.extend_from_slice(b"rex-attested-session-v1");
        info.extend_from_slice(&enclave.measurement().0);

        let okm: [u8; 64] = Hkdf::derive(&salt, shared.as_bytes(), &info);
        let mut k_i2r = [0u8; 32];
        let mut k_r2i = [0u8; 32];
        k_i2r.copy_from_slice(&okm[..32]);
        k_r2i.copy_from_slice(&okm[32..]);

        let (send_key, recv_key) = if is_initiator {
            (k_i2r, k_r2i)
        } else {
            (k_r2i, k_i2r)
        };
        Ok(SecureSession::new(
            send_key,
            recv_key,
            is_initiator,
            peer_quote.measurement,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::SgxCostModel;
    use crate::measurement::REX_ENCLAVE_V1;
    use crate::platform::SgxPlatform;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Party {
        enclave: Enclave,
        attestor: Attestor,
        quote: Quote,
    }

    fn make_party(platform: &SgxPlatform, code: &[u8], rng: &mut StdRng) -> Party {
        let mut enclave = platform.create_enclave(code, SgxCostModel::default());
        let attestor = Attestor::new(rng);
        let report = enclave.create_report(attestor.user_data());
        let quote = platform.quote_report(&report).unwrap();
        Party {
            enclave,
            attestor,
            quote,
        }
    }

    fn setup_seeded(code_a: &[u8], code_b: &[u8], seed: u64) -> (DcapService, Party, Party) {
        let dcap = DcapService::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let p1 = SgxPlatform::provision(1, &dcap, &mut rng);
        let p2 = SgxPlatform::provision(2, &dcap, &mut rng);
        let a = make_party(&p1, code_a, &mut rng);
        let b = make_party(&p2, code_b, &mut rng);
        (dcap, a, b)
    }

    fn setup(code_a: &[u8], code_b: &[u8]) -> (DcapService, Party, Party) {
        setup_seeded(code_a, code_b, 0xA77E)
    }

    #[test]
    fn mutual_attestation_and_secure_channel() {
        let (dcap, a, b) = setup(REX_ENCLAVE_V1, REX_ENCLAVE_V1);
        let hello = Attestor::hello(a.quote.clone());
        let (reply, mut session_b) = b
            .attestor
            .respond(&b.enclave, &dcap, b.quote.clone(), &hello)
            .unwrap();
        let mut session_a = a
            .attestor
            .finish(&a.enclave, &dcap, &a.quote, &reply)
            .unwrap();

        let frame = session_a.seal(b"epoch:0", b"300 raw ratings");
        assert_eq!(
            session_b.open(b"epoch:0", &frame).unwrap(),
            b"300 raw ratings"
        );
        let back = session_b.seal(b"epoch:0", b"ack");
        assert_eq!(session_a.open(b"epoch:0", &back).unwrap(), b"ack");
    }

    #[test]
    fn rogue_enclave_rejected() {
        let (dcap, a, b) = setup(REX_ENCLAVE_V1, b"rogue-code");
        // The measurement check is symmetric: the rogue responder also
        // fails to match the honest initiator against its own measurement.
        let hello = Attestor::hello(a.quote.clone());
        assert_eq!(
            b.attestor
                .respond(&b.enclave, &dcap, b.quote.clone(), &hello)
                .unwrap_err(),
            AttestationError::MeasurementMismatch
        );
        // Even if the rogue B skipped its check and sent a Reply, honest A
        // must reject it.
        let forged_reply = AttestationMsg::Reply {
            quote: b.quote.clone(),
        };
        assert_eq!(
            a.attestor
                .finish(&a.enclave, &dcap, &a.quote, &forged_reply)
                .unwrap_err(),
            AttestationError::MeasurementMismatch
        );
    }

    #[test]
    fn honest_responder_rejects_rogue_initiator() {
        let (dcap, rogue, honest) = setup(b"rogue-code", REX_ENCLAVE_V1);
        let hello = Attestor::hello(rogue.quote.clone());
        let err = honest
            .attestor
            .respond(&honest.enclave, &dcap, honest.quote.clone(), &hello)
            .unwrap_err();
        assert_eq!(err, AttestationError::MeasurementMismatch);
    }

    #[test]
    fn unprovisioned_platform_rejected() {
        let (_, a, _) = setup(REX_ENCLAVE_V1, REX_ENCLAVE_V1);
        // Fresh DCAP that never saw A's platform.
        let empty_dcap = DcapService::new();
        let (dcap2, _, b2) = setup(REX_ENCLAVE_V1, REX_ENCLAVE_V1);
        let _ = dcap2;
        let hello = Attestor::hello(a.quote.clone());
        let err = b2
            .attestor
            .respond(&b2.enclave, &empty_dcap, b2.quote.clone(), &hello)
            .unwrap_err();
        assert_eq!(err, AttestationError::UntrustedPlatform);
    }

    #[test]
    fn tampered_user_data_rejected() {
        let (dcap, a, b) = setup(REX_ENCLAVE_V1, REX_ENCLAVE_V1);
        let mut quote = a.quote.clone();
        quote.user_data[0] ^= 1; // attacker swaps the ECDH key
        let hello = Attestor::hello(quote);
        let err = b
            .attestor
            .respond(&b.enclave, &dcap, b.quote.clone(), &hello)
            .unwrap_err();
        assert_eq!(err, AttestationError::UntrustedPlatform);
    }

    #[test]
    fn wrong_message_order_rejected() {
        let (dcap, a, b) = setup(REX_ENCLAVE_V1, REX_ENCLAVE_V1);
        let reply = AttestationMsg::Reply {
            quote: b.quote.clone(),
        };
        let err = b
            .attestor
            .respond(&b.enclave, &dcap, b.quote.clone(), &reply)
            .unwrap_err();
        assert_eq!(err, AttestationError::UnexpectedMessage);
        let hello = Attestor::hello(a.quote.clone());
        let err = a
            .attestor
            .finish(&a.enclave, &dcap, &a.quote, &hello)
            .unwrap_err();
        assert_eq!(err, AttestationError::UnexpectedMessage);
    }

    #[test]
    fn sessions_differ_across_pairs() {
        // Two independent handshakes must not derive the same keys: a frame
        // from one session cannot be opened by the other.
        let (dcap, a, b) = setup(REX_ENCLAVE_V1, REX_ENCLAVE_V1);
        let hello = Attestor::hello(a.quote.clone());
        let (reply, mut sb1) = b
            .attestor
            .respond(&b.enclave, &dcap, b.quote.clone(), &hello)
            .unwrap();
        let mut sa1 = a
            .attestor
            .finish(&a.enclave, &dcap, &a.quote, &reply)
            .unwrap();

        let (dcap2, a2, b2) = setup_seeded(REX_ENCLAVE_V1, REX_ENCLAVE_V1, 0xBEEF);
        let hello2 = Attestor::hello(a2.quote.clone());
        let (reply2, mut sb2) = b2
            .attestor
            .respond(&b2.enclave, &dcap2, b2.quote.clone(), &hello2)
            .unwrap();
        let _sa2 = a2
            .attestor
            .finish(&a2.enclave, &dcap2, &a2.quote, &reply2)
            .unwrap();

        let frame = sa1.seal(b"", b"secret");
        assert!(sb2.open(b"", &frame).is_err());
        assert!(sb1.open(b"", &frame).is_ok());
    }
}
