//! Quotes: remotely verifiable attestation evidence (paper §II-D).
//!
//! The platform's quoting enclave verifies a local report and re-signs it
//! with the platform's attestation key; the resulting quote is what travels
//! to remote verifiers, who check it through the DCAP service.

use crate::measurement::Measurement;
use crate::report::{Report, USER_DATA_LEN};
use rex_crypto::HmacSha256;

/// A signed quote.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quote {
    /// Measurement copied from the verified report.
    pub measurement: Measurement,
    /// User data copied from the verified report (REX: pubkey ‖ nonce).
    pub user_data: [u8; USER_DATA_LEN],
    /// Platform that produced the underlying report.
    pub platform_id: u64,
    /// Signature by the platform's attestation key (simulated as an HMAC
    /// whose key the DCAP service can look up by platform id).
    pub signature: [u8; 32],
}

impl Quote {
    /// Serialized signing body.
    #[must_use]
    pub fn body_bytes(&self) -> Vec<u8> {
        Report::body_bytes(&self.measurement, &self.user_data, self.platform_id)
    }

    /// Creates a quote from a verified report under the attestation key.
    #[must_use]
    pub fn sign(report: &Report, attestation_key: &[u8; 32]) -> Self {
        let body = Report::body_bytes(&report.measurement, &report.user_data, report.platform_id);
        Quote {
            measurement: report.measurement,
            user_data: report.user_data,
            platform_id: report.platform_id,
            signature: HmacSha256::mac(attestation_key, &body),
        }
    }

    /// Checks the quote signature against an attestation key.
    #[must_use]
    pub fn verify_signature(&self, attestation_key: &[u8; 32]) -> bool {
        HmacSha256::verify(attestation_key, &self.body_bytes(), &self.signature)
    }

    /// Wire size of a quote in bytes (for network accounting): measurement +
    /// user data + platform id + signature.
    pub const WIRE_SIZE: usize = 32 + USER_DATA_LEN + 8 + 32;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measurement::REX_ENCLAVE_V1;

    #[test]
    fn sign_verify_roundtrip() {
        let report_key = [1u8; 32];
        let att_key = [2u8; 32];
        let report = Report::create(
            Measurement::of_code(REX_ENCLAVE_V1),
            [7u8; USER_DATA_LEN],
            5,
            &report_key,
        );
        let quote = Quote::sign(&report, &att_key);
        assert!(quote.verify_signature(&att_key));
        assert!(!quote.verify_signature(&report_key));
        assert_eq!(quote.user_data, report.user_data);
    }

    #[test]
    fn tampered_quote_rejected() {
        let report = Report::create(
            Measurement::of_code(REX_ENCLAVE_V1),
            [0u8; USER_DATA_LEN],
            1,
            &[3u8; 32],
        );
        let quote = Quote::sign(&report, &[4u8; 32]);
        let mut bad = quote.clone();
        bad.user_data[10] ^= 0xff;
        assert!(!bad.verify_signature(&[4u8; 32]));
        let mut bad = quote;
        bad.measurement.0[0] ^= 1;
        assert!(!bad.verify_signature(&[4u8; 32]));
    }
}
