//! The SGX cost model.
//!
//! Simulated enclaves pay for exactly the effects the paper attributes its
//! SGX overheads to (§IV-D): "memory usage, transitions between the trusted
//! and untrusted environments and all cryptographic and integrity
//! operations". Constants default to published SGXv1 microbenchmark values
//! (Costan & Devadas, *Intel SGX Explained*; van Bulck et al.): ~8–13 k
//! cycles per ecall/ocall, ~40 k cycles per EPC fault, MEE slowdown on
//! enclave memory traffic.

/// Tunable cost constants of the simulated SGX platform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SgxCostModel {
    /// Fixed cost of one ecall (untrusted → trusted transition), ns.
    pub ecall_ns: u64,
    /// Fixed cost of one ocall (trusted → untrusted transition), ns.
    pub ocall_ns: u64,
    /// Marshalling cost per byte crossing the boundary, ns/byte
    /// (argument/return copies between untrusted and trusted memory).
    pub boundary_byte_ns: f64,
    /// Multiplier applied to compute performed inside the enclave
    /// (memory-encryption-engine overhead). 1.0 = free.
    pub enclave_compute_multiplier: f64,
    /// Cost of one EPC page fault (evict + load + re-encrypt), ns.
    pub epc_fault_ns: u64,
    /// Usable EPC in bytes. The paper's machines expose 93.5 MiB of the
    /// 128 MiB EPC to enclaves (§IV-D).
    pub epc_limit_bytes: u64,
    /// Page size used by the paging model.
    pub page_bytes: u64,
}

impl Default for SgxCostModel {
    fn default() -> Self {
        SgxCostModel {
            ecall_ns: 2_500,
            ocall_ns: 2_500,
            boundary_byte_ns: 0.25,
            enclave_compute_multiplier: 1.10,
            epc_fault_ns: 12_000,
            epc_limit_bytes: (93.5 * 1024.0 * 1024.0) as u64,
            page_bytes: 4096,
        }
    }
}

impl SgxCostModel {
    /// A zero-cost model (used to express "native" execution through the
    /// same code path).
    #[must_use]
    pub fn native() -> Self {
        SgxCostModel {
            ecall_ns: 0,
            ocall_ns: 0,
            boundary_byte_ns: 0.0,
            enclave_compute_multiplier: 1.0,
            epc_fault_ns: 0,
            epc_limit_bytes: u64::MAX,
            page_bytes: 4096,
        }
    }

    /// Cost model with a custom EPC budget (EXPERIMENTS.md: fig7 scales the
    /// budget to our smaller-than-paper working set to reproduce the
    /// beyond-EPC regime).
    #[must_use]
    pub fn with_epc_limit(mut self, bytes: u64) -> Self {
        self.epc_limit_bytes = bytes;
        self
    }

    /// Total charge of one ecall transferring `bytes` into the enclave, ns.
    #[must_use]
    pub fn ecall_cost(&self, bytes: u64) -> u64 {
        self.ecall_ns + (self.boundary_byte_ns * bytes as f64) as u64
    }

    /// Total charge of one ocall transferring `bytes` out, ns.
    #[must_use]
    pub fn ocall_cost(&self, bytes: u64) -> u64 {
        self.ocall_ns + (self.boundary_byte_ns * bytes as f64) as u64
    }

    /// In-enclave compute charge for work that takes `native_ns` outside.
    /// Returns the *extra* time over native.
    #[must_use]
    pub fn compute_overhead(&self, native_ns: u64) -> u64 {
        ((self.enclave_compute_multiplier - 1.0).max(0.0) * native_ns as f64) as u64
    }

    /// Paging overhead for touching `bytes_accessed` of a `resident_bytes`
    /// working set: with an LRU-approximate model under uniform access, the
    /// fraction of touches that fault is the fraction of the working set
    /// that cannot be resident.
    #[must_use]
    pub fn paging_overhead(&self, resident_bytes: u64, bytes_accessed: u64) -> u64 {
        if resident_bytes <= self.epc_limit_bytes || resident_bytes == 0 {
            return 0;
        }
        let fault_fraction = (resident_bytes - self.epc_limit_bytes) as f64 / resident_bytes as f64;
        let touched_pages = bytes_accessed.div_ceil(self.page_bytes);
        ((touched_pages as f64) * fault_fraction) as u64 * self.epc_fault_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn native_charges_nothing() {
        let c = SgxCostModel::native();
        assert_eq!(c.ecall_cost(1_000_000), 0);
        assert_eq!(c.ocall_cost(1_000_000), 0);
        assert_eq!(c.compute_overhead(1_000_000), 0);
        assert_eq!(c.paging_overhead(u64::MAX / 2, 1_000_000), 0);
    }

    #[test]
    fn transition_costs_scale_with_bytes() {
        let c = SgxCostModel::default();
        let small = c.ecall_cost(100);
        let large = c.ecall_cost(1_000_000);
        assert!(large > small);
        assert_eq!(c.ecall_cost(0), c.ecall_ns);
    }

    #[test]
    fn no_paging_below_epc() {
        let c = SgxCostModel::default();
        assert_eq!(c.paging_overhead(50 << 20, 10 << 20), 0);
        assert_eq!(c.paging_overhead(0, 10 << 20), 0);
    }

    #[test]
    fn paging_grows_with_overcommit() {
        let c = SgxCostModel::default().with_epc_limit(64 << 20);
        let mild = c.paging_overhead(80 << 20, 10 << 20);
        let severe = c.paging_overhead(200 << 20, 10 << 20);
        assert!(mild > 0);
        assert!(severe > 2 * mild, "mild={mild} severe={severe}");
    }

    #[test]
    fn compute_multiplier() {
        let c = SgxCostModel {
            enclave_compute_multiplier: 1.5,
            ..Default::default()
        };
        assert_eq!(c.compute_overhead(1000), 500);
        assert_eq!(SgxCostModel::native().compute_overhead(1000), 0);
    }

    #[test]
    fn default_epc_matches_paper() {
        let c = SgxCostModel::default();
        assert_eq!(c.epc_limit_bytes, 98_041_856); // 93.5 MiB
    }
}
