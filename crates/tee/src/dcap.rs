//! Simulated DCAP (data center attestation primitives) service.
//!
//! Real DCAP validates the certificate chain behind a quote's ECDSA
//! signature. Here, provisioning registers each genuine platform's
//! attestation key with the service, and verification checks the quote's
//! HMAC against the registered key — same trust topology (verifier trusts
//! the attestation infrastructure, not the peer), no PKI machinery.

use crate::quote::Quote;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Shared attestation-verification service.
#[derive(Clone, Default)]
pub struct DcapService {
    keys: Arc<RwLock<HashMap<u64, [u8; 32]>>>,
}

impl DcapService {
    /// Creates an empty service.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a genuine platform's attestation key (called once at
    /// platform provisioning, analogous to Intel's provisioning protocol).
    pub fn register_platform(&self, platform_id: u64, attestation_key: [u8; 32]) {
        self.keys.write().insert(platform_id, attestation_key);
    }

    /// Verifies that `quote` was signed by a registered genuine platform.
    #[must_use]
    pub fn verify(&self, quote: &Quote) -> bool {
        let keys = self.keys.read();
        match keys.get(&quote.platform_id) {
            Some(key) => quote.verify_signature(key),
            None => false,
        }
    }

    /// Number of registered platforms.
    #[must_use]
    pub fn platform_count(&self) -> usize {
        self.keys.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measurement::{Measurement, REX_ENCLAVE_V1};
    use crate::report::{Report, USER_DATA_LEN};

    fn quote_from(platform_id: u64, att_key: &[u8; 32]) -> Quote {
        let report = Report::create(
            Measurement::of_code(REX_ENCLAVE_V1),
            [1u8; USER_DATA_LEN],
            platform_id,
            &[0u8; 32],
        );
        Quote::sign(&report, att_key)
    }

    #[test]
    fn registered_platform_verifies() {
        let dcap = DcapService::new();
        dcap.register_platform(7, [5u8; 32]);
        assert!(dcap.verify(&quote_from(7, &[5u8; 32])));
        assert_eq!(dcap.platform_count(), 1);
    }

    #[test]
    fn unregistered_platform_rejected() {
        let dcap = DcapService::new();
        assert!(!dcap.verify(&quote_from(7, &[5u8; 32])));
    }

    #[test]
    fn wrong_key_rejected() {
        let dcap = DcapService::new();
        dcap.register_platform(7, [5u8; 32]);
        // Quote signed by an attacker who does not know the platform key.
        assert!(!dcap.verify(&quote_from(7, &[6u8; 32])));
    }

    #[test]
    fn shared_across_clones() {
        let dcap = DcapService::new();
        let view = dcap.clone();
        dcap.register_platform(1, [1u8; 32]);
        assert!(view.verify(&quote_from(1, &[1u8; 32])));
    }
}
