//! EPC (enclave page cache) resident-set tracking.
//!
//! Real SGXv1 backs all enclaves of a machine with one 93.5 MiB-usable EPC;
//! pages beyond it are swapped by the kernel with expensive re-encryption.
//! The tracker accumulates what the enclave currently keeps in protected
//! memory (model, raw-data store, neighbour models during merge, message
//! buffers) and reports paging overheads through the cost model.

use crate::cost::SgxCostModel;

/// Labels for memory regions inside the enclave, for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// The learnable model plus optimizer state.
    Model,
    /// The raw-rating store (grows as REX gossips data).
    DataStore,
    /// The user-shard row index over the store: per-row posting lists
    /// plus the out-of-block overflow list. Zero for unsharded nodes, so
    /// sharded deployments can read the indexing overhead of hosting
    /// many users off the per-region accounting directly.
    ShardIndex,
    /// Deserialized neighbour models held during a merge (MS only).
    MergeBuffers,
    /// Serialized in/out message buffers.
    MessageBuffers,
    /// Everything else (runtime, stacks).
    Other,
}

const NUM_REGIONS: usize = 6;

fn region_index(r: Region) -> usize {
    match r {
        Region::Model => 0,
        Region::DataStore => 1,
        Region::ShardIndex => 2,
        Region::MergeBuffers => 3,
        Region::MessageBuffers => 4,
        Region::Other => 5,
    }
}

/// Tracks the enclave's resident protected memory by region.
#[derive(Debug, Clone, Default)]
pub struct EpcTracker {
    bytes: [u64; NUM_REGIONS],
    /// High-water mark of the total.
    peak: u64,
}

impl EpcTracker {
    /// Empty tracker.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the size of one region (regions are replaced, not accumulated,
    /// so callers can refresh sizes every epoch).
    pub fn set_region(&mut self, region: Region, bytes: u64) {
        self.bytes[region_index(region)] = bytes;
        self.peak = self.peak.max(self.resident_bytes());
    }

    /// Current total resident bytes.
    #[must_use]
    pub fn resident_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Bytes of one region.
    #[must_use]
    pub fn region_bytes(&self, region: Region) -> u64 {
        self.bytes[region_index(region)]
    }

    /// Peak resident bytes observed.
    #[must_use]
    pub fn peak_bytes(&self) -> u64 {
        self.peak
    }

    /// Paging overhead (ns) for an access of `bytes_accessed` under `cost`.
    #[must_use]
    pub fn access_overhead(&self, cost: &SgxCostModel, bytes_accessed: u64) -> u64 {
        cost.paging_overhead(self.resident_bytes(), bytes_accessed)
    }

    /// Whether the resident set exceeds the usable EPC.
    #[must_use]
    pub fn overcommitted(&self, cost: &SgxCostModel) -> bool {
        self.resident_bytes() > cost.epc_limit_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_replace_not_accumulate() {
        let mut t = EpcTracker::new();
        t.set_region(Region::Model, 100);
        t.set_region(Region::Model, 60);
        t.set_region(Region::DataStore, 40);
        assert_eq!(t.resident_bytes(), 100);
        assert_eq!(t.region_bytes(Region::Model), 60);
    }

    #[test]
    fn peak_tracks_high_water() {
        let mut t = EpcTracker::new();
        t.set_region(Region::MergeBuffers, 1000);
        t.set_region(Region::MergeBuffers, 0);
        assert_eq!(t.resident_bytes(), 0);
        assert_eq!(t.peak_bytes(), 1000);
    }

    #[test]
    fn shard_index_is_a_distinct_region() {
        let mut t = EpcTracker::new();
        t.set_region(Region::DataStore, 100);
        t.set_region(Region::ShardIndex, 40);
        assert_eq!(t.region_bytes(Region::DataStore), 100);
        assert_eq!(t.region_bytes(Region::ShardIndex), 40);
        assert_eq!(t.resident_bytes(), 140);
    }

    #[test]
    fn overcommit_detection() {
        let cost = SgxCostModel::default().with_epc_limit(1 << 20);
        let mut t = EpcTracker::new();
        t.set_region(Region::Model, 1 << 19);
        assert!(!t.overcommitted(&cost));
        assert_eq!(t.access_overhead(&cost, 1 << 19), 0);
        t.set_region(Region::DataStore, 1 << 20);
        assert!(t.overcommitted(&cost));
        assert!(t.access_overhead(&cost, 1 << 19) > 0);
    }
}
