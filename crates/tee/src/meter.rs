//! Accumulates simulated SGX charges and event counts for one enclave.

/// Counters and accumulated virtual time of one enclave's SGX overheads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CostMeter {
    /// Number of ecalls performed.
    pub ecalls: u64,
    /// Number of ocalls performed.
    pub ocalls: u64,
    /// Bytes copied into the enclave.
    pub bytes_in: u64,
    /// Bytes copied out of the enclave.
    pub bytes_out: u64,
    /// EPC paging overhead charged, ns.
    pub paging_ns: u64,
    /// Transition + marshalling overhead charged, ns.
    pub transition_ns: u64,
    /// MEE compute overhead charged, ns.
    pub compute_ns: u64,
}

impl CostMeter {
    /// Fresh meter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Total simulated overhead in ns.
    #[must_use]
    pub fn total_overhead_ns(&self) -> u64 {
        self.paging_ns + self.transition_ns + self.compute_ns
    }

    /// Resets all counters, returning the previous snapshot (used to
    /// attribute overheads per epoch/stage).
    pub fn take(&mut self) -> CostMeter {
        std::mem::take(self)
    }

    /// Adds another meter's counts into this one.
    pub fn absorb(&mut self, other: &CostMeter) {
        self.ecalls += other.ecalls;
        self.ocalls += other.ocalls;
        self.bytes_in += other.bytes_in;
        self.bytes_out += other.bytes_out;
        self.paging_ns += other.paging_ns;
        self.transition_ns += other.transition_ns;
        self.compute_ns += other.compute_ns;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_resets() {
        let mut m = CostMeter::new();
        m.ecalls = 5;
        m.transition_ns = 100;
        let snap = m.take();
        assert_eq!(snap.ecalls, 5);
        assert_eq!(m, CostMeter::default());
    }

    #[test]
    fn absorb_accumulates() {
        let mut a = CostMeter {
            ecalls: 1,
            paging_ns: 10,
            ..Default::default()
        };
        let b = CostMeter {
            ecalls: 2,
            compute_ns: 7,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.ecalls, 3);
        assert_eq!(a.total_overhead_ns(), 17);
    }
}
