//! Post-attestation AEAD channel between two enclaves (paper §III-A: the
//! ECDH shared secret yields "a symmetric key for encrypted communication").
//!
//! Each direction uses its own HKDF-derived key and a counter nonce
//! sequence, so frames cannot be replayed or reflected.

use rex_crypto::aead::NonceSequence;
use rex_crypto::{ChaCha20Poly1305, CryptoError};

use crate::measurement::Measurement;

/// One endpoint of an established secure session.
pub struct SecureSession {
    send_cipher: ChaCha20Poly1305,
    recv_cipher: ChaCha20Poly1305,
    send_seq: NonceSequence,
    recv_seq: NonceSequence,
    peer_measurement: Measurement,
    bytes_sealed: u64,
    bytes_opened: u64,
}

impl std::fmt::Debug for SecureSession {
    /// Redacting debug: never prints key material.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SecureSession")
            .field("peer_measurement", &self.peer_measurement)
            .field("bytes_sealed", &self.bytes_sealed)
            .field("bytes_opened", &self.bytes_opened)
            .finish_non_exhaustive()
    }
}

impl SecureSession {
    /// Builds a session endpoint. `is_initiator` picks which derived key is
    /// used for which direction; both sides must pass the same `send_key` /
    /// `recv_key` crosswise (handled by `attestation`).
    #[must_use]
    pub fn new(
        send_key: [u8; 32],
        recv_key: [u8; 32],
        is_initiator: bool,
        peer_measurement: Measurement,
    ) -> Self {
        let (send_dir, recv_dir) = if is_initiator { (0, 1) } else { (1, 0) };
        SecureSession {
            send_cipher: ChaCha20Poly1305::new(&send_key),
            recv_cipher: ChaCha20Poly1305::new(&recv_key),
            send_seq: NonceSequence::new(send_dir),
            recv_seq: NonceSequence::new(recv_dir),
            peer_measurement,
            bytes_sealed: 0,
            bytes_opened: 0,
        }
    }

    /// Measurement of the attested peer.
    #[must_use]
    pub fn peer_measurement(&self) -> Measurement {
        self.peer_measurement
    }

    /// Encrypts `plaintext` for the peer; `aad` binds protocol metadata.
    pub fn seal(&mut self, aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
        let nonce = self.send_seq.next();
        self.bytes_sealed += plaintext.len() as u64;
        self.send_cipher.seal(&nonce, aad, plaintext)
    }

    /// Decrypts a frame from the peer. Frames must arrive in order (the
    /// simulated transports are reliable and ordered). The receive counter
    /// only advances on successful authentication, so injected garbage or
    /// tampered frames cannot desynchronize the session.
    pub fn open(&mut self, aad: &[u8], sealed: &[u8]) -> Result<Vec<u8>, CryptoError> {
        let nonce = self.recv_seq.peek();
        let plain = self.recv_cipher.open(&nonce, aad, sealed)?;
        self.recv_seq.advance();
        self.bytes_opened += plain.len() as u64;
        Ok(plain)
    }

    /// Plaintext bytes sealed so far.
    #[must_use]
    pub fn bytes_sealed(&self) -> u64 {
        self.bytes_sealed
    }

    /// Plaintext bytes opened so far.
    #[must_use]
    pub fn bytes_opened(&self) -> u64 {
        self.bytes_opened
    }

    /// AEAD overhead added to each sealed frame.
    pub const FRAME_OVERHEAD: usize = ChaCha20Poly1305::OVERHEAD;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measurement::{Measurement, REX_ENCLAVE_V1};

    fn pair() -> (SecureSession, SecureSession) {
        let m = Measurement::of_code(REX_ENCLAVE_V1);
        let k1 = [1u8; 32];
        let k2 = [2u8; 32];
        let a = SecureSession::new(k1, k2, true, m);
        let b = SecureSession::new(k2, k1, false, m);
        (a, b)
    }

    #[test]
    fn duplex_roundtrip() {
        let (mut a, mut b) = pair();
        let f1 = a.seal(b"hdr", b"from a");
        assert_eq!(b.open(b"hdr", &f1).unwrap(), b"from a");
        let f2 = b.seal(b"hdr", b"from b");
        assert_eq!(a.open(b"hdr", &f2).unwrap(), b"from b");
        assert_eq!(a.bytes_sealed(), 6);
        assert_eq!(a.bytes_opened(), 6);
    }

    #[test]
    fn replay_rejected_by_counter_nonces() {
        let (mut a, mut b) = pair();
        let frame = a.seal(b"", b"once");
        assert!(b.open(b"", &frame).is_ok());
        // Replaying the same frame advances b's counter -> nonce mismatch.
        assert!(b.open(b"", &frame).is_err());
    }

    #[test]
    fn reflection_rejected() {
        let (mut a, _b) = pair();
        let frame = a.seal(b"", b"hello");
        // Echoing a's own frame back to a fails (directional keys/nonces).
        assert!(a.open(b"", &frame).is_err());
    }

    #[test]
    fn tamper_rejected() {
        let (mut a, mut b) = pair();
        let mut frame = a.seal(b"", b"payload");
        frame[0] ^= 1;
        assert!(b.open(b"", &frame).is_err());
    }

    #[test]
    fn out_of_order_rejected_but_session_recovers() {
        let (mut a, mut b) = pair();
        let f1 = a.seal(b"", b"one");
        let f2 = a.seal(b"", b"two");
        // Delivering f2 before f1 fails at f2 (counter expects f1)...
        assert!(b.open(b"", &f2).is_err());
        // ...but the failed attempt does not burn the counter: f1 then f2
        // still open in order.
        assert_eq!(b.open(b"", &f1).unwrap(), b"one");
        assert_eq!(b.open(b"", &f2).unwrap(), b"two");
    }

    #[test]
    fn garbage_does_not_desync_session() {
        let (mut a, mut b) = pair();
        assert!(b.open(b"", &[0u8; 40]).is_err());
        let frame = a.seal(b"", b"after garbage");
        assert_eq!(b.open(b"", &frame).unwrap(), b"after garbage");
    }
}
