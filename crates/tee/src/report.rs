//! Enclave reports (paper §II-D).
//!
//! A report binds an enclave's measurement to 64 bytes of user data (REX
//! puts an X25519 public key and a nonce there) and is MAC'd with a key
//! known only to the local platform — so it can be verified *locally* by
//! the platform's quoting enclave, but carries no meaning off-platform.

use crate::measurement::Measurement;
use rex_crypto::HmacSha256;

/// Size of the free-form user-data field (matches SGX's REPORTDATA).
pub const USER_DATA_LEN: usize = 64;

/// An SGX-style local report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// Measurement of the reporting enclave.
    pub measurement: Measurement,
    /// Free-form data chosen by the enclave (REX: ECDH pubkey ‖ nonce).
    pub user_data: [u8; USER_DATA_LEN],
    /// Identifier of the platform that produced the report.
    pub platform_id: u64,
    /// MAC over the body under the platform's report key.
    pub mac: [u8; 32],
}

impl Report {
    /// Serializes the MAC'd portion.
    #[must_use]
    pub fn body_bytes(
        measurement: &Measurement,
        user_data: &[u8; USER_DATA_LEN],
        platform_id: u64,
    ) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + USER_DATA_LEN + 8);
        out.extend_from_slice(&measurement.0);
        out.extend_from_slice(user_data);
        out.extend_from_slice(&platform_id.to_le_bytes());
        out
    }

    /// Creates a report MAC'd under `report_key` (hardware-held in real SGX).
    #[must_use]
    pub fn create(
        measurement: Measurement,
        user_data: [u8; USER_DATA_LEN],
        platform_id: u64,
        report_key: &[u8; 32],
    ) -> Self {
        let mac = HmacSha256::mac(
            report_key,
            &Self::body_bytes(&measurement, &user_data, platform_id),
        );
        Report {
            measurement,
            user_data,
            platform_id,
            mac,
        }
    }

    /// Verifies the report MAC (only possible with the platform key, i.e.
    /// on the same platform).
    #[must_use]
    pub fn verify(&self, report_key: &[u8; 32]) -> bool {
        HmacSha256::verify(
            report_key,
            &Self::body_bytes(&self.measurement, &self.user_data, self.platform_id),
            &self.mac,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measurement::REX_ENCLAVE_V1;

    fn sample() -> (Report, [u8; 32]) {
        let key = [9u8; 32];
        let m = Measurement::of_code(REX_ENCLAVE_V1);
        let mut ud = [0u8; USER_DATA_LEN];
        ud[..4].copy_from_slice(b"test");
        (Report::create(m, ud, 42, &key), key)
    }

    #[test]
    fn roundtrip_verifies() {
        let (r, key) = sample();
        assert!(r.verify(&key));
    }

    #[test]
    fn wrong_key_rejected() {
        let (r, _) = sample();
        assert!(!r.verify(&[8u8; 32]));
    }

    #[test]
    fn tampered_fields_rejected() {
        let (r, key) = sample();
        let mut bad = r.clone();
        bad.user_data[0] ^= 1;
        assert!(!bad.verify(&key));
        let mut bad = r.clone();
        bad.platform_id += 1;
        assert!(!bad.verify(&key));
        let mut bad = r;
        bad.measurement.0[0] ^= 1;
        assert!(!bad.verify(&key));
    }
}
