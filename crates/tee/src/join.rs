//! Late attestation for nodes that join a running fleet.
//!
//! [`crate::attestation`] covers the setup-time handshake: every topology
//! edge is attested before epoch 0, with ephemerals drawn from one
//! sequential infrastructure RNG. A node that joins at epoch `k` cannot
//! use that stream — by then every process has consumed a different
//! amount of it — so late joins derive their material from **pure
//! per-edge functions of the shared fleet seed** instead:
//!
//! * [`edge_attestors`] re-derives both ephemeral key pairs of a joining
//!   edge from `(fleet_seed, epoch, a, b)`. Any process — the joiner, the
//!   sponsor, an in-process engine — computes the same pair, so both ends
//!   install byte-identical directional session keys without a
//!   coordinator (the same replay trick the deployed `rex-node` uses for
//!   setup attestation).
//! * [`late_session_pair`] runs the key schedule over those ephemerals
//!   (initiator = lower node id, matching setup-time convention).
//! * [`joiner_evidence`] / [`verify_joiner`] carry the *attestation* half:
//!   the joiner quotes its enclave (user-data bound to its derived
//!   ephemeral identity) and members verify the quote through DCAP plus
//!   the own-measurement check of paper §III-A before admitting it.
//!
//! Determinism is the point: a join is part of the seeded scenario, so
//! the sessions — and therefore every sealed byte after the join — replay
//! bit-for-bit across reruns, drivers, backends, and OS processes.

use crate::attestation::{AttestationError, Attestor};
use crate::dcap::DcapService;
use crate::enclave::Enclave;
use crate::platform::SgxPlatform;
use crate::quote::Quote;
use crate::session::SecureSession;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rex_crypto::splitmix64;

/// Domain-separation salts for the late-join RNG streams (distinct from
/// the fault-injection salts in `rex-net`).
const SALT_EDGE: u64 = 0x10A7_0000_0000_0001;
const SALT_EVIDENCE: u64 = 0x10A7_0000_0000_0002;

fn mix(seed: u64, salt: u64, parts: &[u64]) -> u64 {
    let mut h = splitmix64(seed ^ salt);
    for &p in parts {
        h = splitmix64(h ^ p);
    }
    h
}

/// The deterministic ephemeral pair of the edge `{a, b}` attested at
/// `epoch`: `(initiator, responder)` with the initiator at the lower node
/// id, matching the setup-time convention of `establish_tee`.
#[must_use]
pub fn edge_attestors(fleet_seed: u64, epoch: usize, a: usize, b: usize) -> (Attestor, Attestor) {
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    let mut rng = StdRng::seed_from_u64(mix(
        fleet_seed,
        SALT_EDGE,
        &[epoch as u64, lo as u64, hi as u64],
    ));
    let initiator = Attestor::new(&mut rng);
    let responder = Attestor::new(&mut rng);
    (initiator, responder)
}

/// Derives the session pair of the late-attested edge `{a, b}`:
/// returns `(session_for_a, session_for_b)`. Pure in
/// `(fleet_seed, epoch, a, b, measurement)`, so every process installs
/// the same keys.
///
/// # Panics
/// On `a == b` (no self-edges) or a degenerate derived ECDH point — both
/// programming errors, not input conditions.
#[must_use]
pub fn late_session_pair(
    fleet_seed: u64,
    epoch: usize,
    a: usize,
    b: usize,
    measurement: crate::measurement::Measurement,
) -> (SecureSession, SecureSession) {
    assert_ne!(a, b, "late attestation of a self-edge");
    let (initiator, responder) = edge_attestors(fleet_seed, epoch, a, b);
    let (init_session, resp_session) = Attestor::session_pair(&initiator, &responder, measurement)
        .expect("derived ephemerals are never degenerate");
    if a < b {
        (init_session, resp_session)
    } else {
        (resp_session, init_session)
    }
}

/// The deterministic identity attestor of a node joining at `epoch` —
/// the ephemeral whose public half is bound into the joiner's quote
/// user-data so evidence is reproducible (and therefore comparable)
/// across processes.
#[must_use]
pub fn joiner_attestor(fleet_seed: u64, epoch: usize, node: usize) -> Attestor {
    let mut rng =
        StdRng::seed_from_u64(mix(fleet_seed, SALT_EVIDENCE, &[epoch as u64, node as u64]));
    Attestor::new(&mut rng)
}

/// Produces the joiner's late-attestation evidence: a quote over its
/// enclave carrying the derived identity in user-data. The quote travels
/// in the `Join` control frame of the TCP transport (or is produced
/// in-process by the engine) and is checked by [`verify_joiner`].
///
/// # Errors
/// If the hosting platform's quoting enclave rejects the report (the
/// enclave does not belong to `platform`).
pub fn joiner_evidence(
    fleet_seed: u64,
    epoch: usize,
    node: usize,
    enclave: &mut Enclave,
    platform: &SgxPlatform,
) -> Result<Quote, String> {
    let attestor = joiner_attestor(fleet_seed, epoch, node);
    let report = enclave.create_report(attestor.user_data());
    platform
        .quote_report(&report)
        .map_err(|e| format!("joiner {node}: quoting failed: {e:?}"))
}

/// A member's admission check on joiner evidence: the quote must verify
/// through DCAP, carry the checker's own measurement (all honest REX
/// nodes run identical code — §III-A), and bind the joiner's derived
/// identity.
pub fn verify_joiner(
    fleet_seed: u64,
    epoch: usize,
    node: usize,
    quote: &Quote,
    dcap: &DcapService,
    own: &Enclave,
) -> Result<(), AttestationError> {
    if !dcap.verify(quote) {
        return Err(AttestationError::UntrustedPlatform);
    }
    if !quote.measurement.ct_eq(&own.measurement()) {
        return Err(AttestationError::MeasurementMismatch);
    }
    let expected = joiner_attestor(fleet_seed, epoch, node).user_data();
    if quote.user_data != expected {
        return Err(AttestationError::UnexpectedMessage);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::SgxCostModel;
    use crate::measurement::REX_ENCLAVE_V1;

    fn rig() -> (DcapService, SgxPlatform, Enclave) {
        let dcap = DcapService::new();
        let mut rng = StdRng::seed_from_u64(3);
        let platform = SgxPlatform::provision(0, &dcap, &mut rng);
        let enclave = platform.create_enclave(REX_ENCLAVE_V1, SgxCostModel::default());
        (dcap, platform, enclave)
    }

    #[test]
    fn session_pair_is_deterministic_and_interoperable() {
        let (_, _, enclave) = rig();
        let m = enclave.measurement();
        let (mut a1, mut b1) = late_session_pair(7, 3, 2, 5, m);
        let (mut a2, mut b2) = late_session_pair(7, 3, 2, 5, m);
        // Both derivations agree: a frame sealed by one a-side opens with
        // the other derivation's b-side, in both directions.
        let frame = a1.seal(b"aad", b"raw shares");
        assert_eq!(b2.open(b"aad", &frame).unwrap(), b"raw shares");
        let back = b1.seal(b"aad", b"ack");
        assert_eq!(a2.open(b"aad", &back).unwrap(), b"ack");
    }

    #[test]
    fn session_pair_is_symmetric_in_argument_order() {
        let (_, _, enclave) = rig();
        let m = enclave.measurement();
        // (a, b) and (b, a) describe the same edge: node 2's session is
        // the same object either way.
        let (for_2, for_5) = late_session_pair(7, 3, 2, 5, m);
        let (for_5_swapped, mut for_2_swapped) = late_session_pair(7, 3, 5, 2, m);
        let mut for_2 = for_2;
        let frame = for_2.seal(b"", b"x");
        let mut for_5b = for_5_swapped;
        assert_eq!(for_5b.open(b"", &frame).unwrap(), b"x");
        let mut for_5 = for_5;
        let frame = for_5.seal(b"", b"y");
        assert_eq!(for_2_swapped.open(b"", &frame).unwrap(), b"y");
    }

    #[test]
    fn different_edges_epochs_and_seeds_derive_distinct_keys() {
        let (_, _, enclave) = rig();
        let m = enclave.measurement();
        let (mut base, _) = late_session_pair(7, 3, 2, 5, m);
        let frame = base.seal(b"", b"secret");
        for (seed, epoch, a, b) in [(8, 3, 2, 5), (7, 4, 2, 5), (7, 3, 2, 6), (7, 3, 1, 5)] {
            let (_, mut other_b) = late_session_pair(seed, epoch, a, b, m);
            assert!(
                other_b.open(b"", &frame).is_err(),
                "({seed},{epoch},{a},{b}) derived the base edge's keys"
            );
        }
    }

    #[test]
    fn evidence_verifies_and_tampering_is_rejected() {
        let (dcap, platform, mut enclave) = rig();
        let quote = joiner_evidence(9, 4, 6, &mut enclave, &platform).unwrap();
        verify_joiner(9, 4, 6, &quote, &dcap, &enclave).unwrap();

        // Wrong join parameters: identity binding fails.
        assert_eq!(
            verify_joiner(9, 5, 6, &quote, &dcap, &enclave).unwrap_err(),
            AttestationError::UnexpectedMessage
        );
        assert_eq!(
            verify_joiner(9, 4, 7, &quote, &dcap, &enclave).unwrap_err(),
            AttestationError::UnexpectedMessage
        );
        // Unknown platform: DCAP rejects.
        assert_eq!(
            verify_joiner(9, 4, 6, &quote, &DcapService::new(), &enclave).unwrap_err(),
            AttestationError::UntrustedPlatform
        );
        // Rogue build: measurement mismatch.
        let rogue = platform.create_enclave(b"rogue-code", SgxCostModel::default());
        assert_eq!(
            verify_joiner(9, 4, 6, &quote, &dcap, &rogue).unwrap_err(),
            AttestationError::MeasurementMismatch
        );
    }
}
