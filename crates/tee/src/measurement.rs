//! Enclave measurement (the simulated `MRENCLAVE`).
//!
//! Real SGX hardware hashes the enclave's initial code, data and attributes
//! at build time. Here an enclave's identity is the SHA-256 of its code
//! identity bytes; REX requires every node's measurement to equal the
//! verifier's own (paper §III-A: "this expected value must be equal to the
//! checker's own measurement").

use rex_crypto::Sha256;

/// A 32-byte enclave measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Measurement(pub [u8; 32]);

impl Measurement {
    /// Computes the measurement of an enclave image.
    #[must_use]
    pub fn of_code(code_identity: &[u8]) -> Self {
        Measurement(Sha256::digest(code_identity))
    }

    /// Constant-time equality (measurement comparison is part of the
    /// attestation decision).
    #[must_use]
    pub fn ct_eq(&self, other: &Measurement) -> bool {
        rex_crypto::ct::ct_eq(&self.0, &other.0)
    }
}

impl std::fmt::Display for Measurement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for b in &self.0[..8] {
            write!(f, "{b:02x}")?;
        }
        write!(f, "…")
    }
}

/// The canonical REX enclave code identity for this reproduction. All honest
/// nodes are built from it; tests use variants to model rogue enclaves.
pub const REX_ENCLAVE_V1: &[u8] = b"rex-enclave-v1.0:merge-train-share-test";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_code_same_measurement() {
        assert_eq!(
            Measurement::of_code(REX_ENCLAVE_V1),
            Measurement::of_code(REX_ENCLAVE_V1)
        );
    }

    #[test]
    fn different_code_different_measurement() {
        let honest = Measurement::of_code(REX_ENCLAVE_V1);
        let rogue = Measurement::of_code(b"rex-enclave-v1.0:exfiltrate");
        assert_ne!(honest, rogue);
        assert!(!honest.ct_eq(&rogue));
        assert!(honest.ct_eq(&honest));
    }

    #[test]
    fn display_is_short_hex() {
        let m = Measurement::of_code(b"x");
        let s = format!("{m}");
        assert_eq!(s.len(), 16 + "…".len());
    }
}
