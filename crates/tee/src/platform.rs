//! A simulated SGX-capable machine: holds the hardware report key, hosts
//! the quoting enclave, and creates application enclaves.

use crate::cost::SgxCostModel;
use crate::dcap::DcapService;
use crate::enclave::Enclave;
use crate::measurement::Measurement;
use crate::quote::Quote;
use crate::report::Report;
use rand::RngCore;

/// Errors from the quoting enclave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuoteError {
    /// The report's MAC did not verify under this platform's report key.
    BadReportMac,
    /// The report was produced on a different platform.
    ForeignReport,
}

impl std::fmt::Display for QuoteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuoteError::BadReportMac => write!(f, "report MAC verification failed"),
            QuoteError::ForeignReport => write!(f, "report from a different platform"),
        }
    }
}

impl std::error::Error for QuoteError {}

/// One SGX machine (the paper uses 4, each running 2 REX processes).
pub struct SgxPlatform {
    platform_id: u64,
    report_key: [u8; 32],
    attestation_key: [u8; 32],
}

impl SgxPlatform {
    /// Provisions a new platform: generates hardware keys and registers the
    /// attestation key with the DCAP service.
    pub fn provision<R: RngCore>(platform_id: u64, dcap: &DcapService, rng: &mut R) -> Self {
        let mut report_key = [0u8; 32];
        rng.fill_bytes(&mut report_key);
        let mut attestation_key = [0u8; 32];
        rng.fill_bytes(&mut attestation_key);
        dcap.register_platform(platform_id, attestation_key);
        SgxPlatform {
            platform_id,
            report_key,
            attestation_key,
        }
    }

    /// Platform identifier.
    #[must_use]
    pub fn id(&self) -> u64 {
        self.platform_id
    }

    /// Loads an application enclave from `code_identity`, measuring it.
    #[must_use]
    pub fn create_enclave(&self, code_identity: &[u8], cost: SgxCostModel) -> Enclave {
        Enclave::new(
            Measurement::of_code(code_identity),
            self.platform_id,
            self.report_key,
            cost,
        )
    }

    /// The quoting enclave: verifies a *local* report and converts it into
    /// a remotely verifiable quote (paper §II-D).
    pub fn quote_report(&self, report: &Report) -> Result<Quote, QuoteError> {
        if report.platform_id != self.platform_id {
            return Err(QuoteError::ForeignReport);
        }
        if !report.verify(&self.report_key) {
            return Err(QuoteError::BadReportMac);
        }
        Ok(Quote::sign(report, &self.attestation_key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measurement::REX_ENCLAVE_V1;
    use crate::report::USER_DATA_LEN;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (DcapService, SgxPlatform, SgxPlatform) {
        let dcap = DcapService::new();
        let mut rng = StdRng::seed_from_u64(1);
        let p1 = SgxPlatform::provision(1, &dcap, &mut rng);
        let p2 = SgxPlatform::provision(2, &dcap, &mut rng);
        (dcap, p1, p2)
    }

    #[test]
    fn quote_chain_end_to_end() {
        let (dcap, p1, _) = setup();
        let mut enclave = p1.create_enclave(REX_ENCLAVE_V1, SgxCostModel::default());
        let report = enclave.create_report([3u8; USER_DATA_LEN]);
        let quote = p1.quote_report(&report).unwrap();
        assert!(dcap.verify(&quote));
        assert_eq!(quote.measurement, enclave.measurement());
        assert_eq!(quote.user_data, [3u8; USER_DATA_LEN]);
    }

    #[test]
    fn foreign_report_rejected_by_qe() {
        let (_, p1, p2) = setup();
        let mut enclave = p1.create_enclave(REX_ENCLAVE_V1, SgxCostModel::default());
        let report = enclave.create_report([0u8; USER_DATA_LEN]);
        assert_eq!(p2.quote_report(&report), Err(QuoteError::ForeignReport));
    }

    #[test]
    fn forged_report_rejected_by_qe() {
        let (_, p1, _) = setup();
        // Attacker fabricates a report without the hardware report key.
        let forged = Report::create(
            Measurement::of_code(REX_ENCLAVE_V1),
            [0u8; USER_DATA_LEN],
            p1.id(),
            &[0xAA; 32],
        );
        assert_eq!(p1.quote_report(&forged), Err(QuoteError::BadReportMac));
    }
}
