//! Property tests over graph generators and Metropolis–Hastings weights.

use proptest::prelude::*;
use rex_topology::{erdos_renyi, metrics, mh_weights::mixing_row, small_world, Graph};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn erdos_renyi_always_connected(n in 2usize..120, p in 0.0f64..0.2, seed in any::<u64>()) {
        let g = erdos_renyi(n, p, seed);
        prop_assert!(metrics::is_connected(&g), "disconnected at n={n} p={p}");
        prop_assert_eq!(g.len(), n);
    }

    #[test]
    fn small_world_structure(n in 7usize..150, half_k in 1usize..3, p in 0.0f64..0.3, seed in any::<u64>()) {
        let k = half_k * 2;
        prop_assume!(n > k);
        let g = small_world(n, k, p, seed);
        prop_assert!(metrics::is_connected(&g));
        // Lattice edges are never removed: degree >= k.
        for node in 0..n {
            prop_assert!(g.degree(node) >= k, "node {node} degree {}", g.degree(node));
        }
        // Shortcuts only add: at most k/2 extra edges per node on average.
        prop_assert!(g.num_edges() >= n * k / 2);
        prop_assert!(g.num_edges() <= n * k / 2 + n * (k / 2));
    }

    #[test]
    fn mh_rows_always_stochastic(n in 2usize..80, p in 0.01f64..0.3, seed in any::<u64>()) {
        let g = erdos_renyi(n, p, seed);
        for node in 0..n {
            let (self_w, row) = mixing_row(&g, node);
            let total: f64 = self_w + row.iter().map(|&(_, w)| w).sum::<f64>();
            prop_assert!((total - 1.0).abs() < 1e-9);
            prop_assert!(self_w >= -1e-12);
            for &(_, w) in &row {
                prop_assert!(w > 0.0 && w <= 1.0);
            }
        }
    }

    #[test]
    fn edges_are_symmetric_and_simple(n in 1usize..60, p in 0.0f64..0.5, seed in any::<u64>()) {
        let g = erdos_renyi(n, p, seed);
        for a in 0..n {
            for &b in g.neighbors(a) {
                prop_assert_ne!(a, b, "self loop at {}", a);
                prop_assert!(g.has_edge(b, a), "asymmetric edge {a}-{b}");
            }
            // Sorted + deduped adjacency.
            let adj = g.neighbors(a);
            for w in adj.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
        }
    }

    #[test]
    fn bfs_distances_satisfy_triangle_on_edges(n in 2usize..60, seed in any::<u64>()) {
        let g = erdos_renyi(n, 0.1, seed);
        let dist = metrics::bfs_distances(&g, 0);
        for a in 0..n {
            if dist[a] == usize::MAX { continue; }
            for &b in g.neighbors(a) {
                prop_assert!(dist[b] != usize::MAX);
                prop_assert!(dist[b] + 1 >= dist[a] && dist[a] + 1 >= dist[b]);
            }
        }
    }
}

#[test]
fn complete_graph_mixing_is_uniform_for_all_sizes() {
    for n in 2..20 {
        let g = Graph::complete(n);
        for node in 0..n {
            let (self_w, row) = mixing_row(&g, node);
            assert!((self_w - 1.0 / n as f64).abs() < 1e-12);
            for (_, w) in row {
                assert!((w - 1.0 / n as f64).abs() < 1e-12);
            }
        }
    }
}
