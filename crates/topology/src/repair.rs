//! Neighbour repair after crash-stop failures.
//!
//! When nodes crash-stop, the gossip overlay loses their edges; a graph
//! that was connected can fall apart into islands that never exchange
//! data again. The chaos scenarios (and, eventually, a live membership
//! layer) repair the overlay the same way the Erdős–Rényi generator
//! repairs an unlucky draw: isolate the dead nodes, then bridge the
//! surviving components with fresh edges, deterministically from a seed.

use crate::graph::Graph;
use crate::metrics::components;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Returns `g` with every edge touching a dead node removed. Dead nodes
/// stay in the id space (node ids are stable across a crash) but become
/// isolated. `dead` may be shorter than the graph; missing entries mean
/// alive.
#[must_use]
pub fn without_nodes(g: &Graph, dead: &[bool]) -> Graph {
    let is_dead = |v: usize| dead.get(v).copied().unwrap_or(false);
    let mut out = Graph::empty(g.len());
    for (a, b) in g.edges() {
        if !is_dead(a) && !is_dead(b) {
            out.add_edge(a, b);
        }
    }
    out
}

/// Repairs the overlay after crash-stop failures: removes the dead
/// nodes' edges, then — if the surviving subgraph is disconnected —
/// adds one bridging edge between consecutive surviving components
/// (random endpoints, deterministic from `seed`). Dead nodes remain
/// isolated; every pair of alive nodes ends up connected through alive
/// nodes only.
#[must_use]
pub fn repair_after_crashes(g: &Graph, dead: &[bool], seed: u64) -> Graph {
    let is_dead = |v: usize| dead.get(v).copied().unwrap_or(false);
    let mut out = without_nodes(g, dead);
    // Dead nodes are isolated, so they appear as singleton components;
    // only the alive components need bridging.
    let alive_comps: Vec<Vec<usize>> = components(&out)
        .into_iter()
        .filter(|comp| comp.iter().any(|&v| !is_dead(v)))
        .collect();
    if alive_comps.len() <= 1 {
        return out;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    for window in alive_comps.windows(2) {
        let a = window[0][rng.gen_range(0..window[0].len())];
        let b = window[1][rng.gen_range(0..window[1].len())];
        out.add_edge(a, b);
    }
    out
}

/// Whether every pair of alive nodes can reach each other through alive
/// nodes only (vacuously true with fewer than two alive nodes).
#[must_use]
pub fn alive_connected(g: &Graph, dead: &[bool]) -> bool {
    let is_dead = |v: usize| dead.get(v).copied().unwrap_or(false);
    let stripped = without_nodes(g, dead);
    let alive_comps = components(&stripped)
        .into_iter()
        .filter(|comp| comp.iter().any(|&v| !is_dead(v)))
        .count();
    alive_comps <= 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::small_world::small_world;

    fn dead_mask(n: usize, dead: &[usize]) -> Vec<bool> {
        let mut mask = vec![false; n];
        for &d in dead {
            mask[d] = true;
        }
        mask
    }

    #[test]
    fn without_nodes_isolates_the_dead() {
        let g = Graph::complete(5);
        let stripped = without_nodes(&g, &dead_mask(5, &[2]));
        assert_eq!(stripped.degree(2), 0);
        for v in [0, 1, 3, 4] {
            assert_eq!(stripped.degree(v), 3, "node {v}");
            assert!(!stripped.has_edge(v, 2));
        }
    }

    #[test]
    fn ring_split_by_two_crashes_gets_bridged() {
        // Killing two opposite ring nodes splits the survivors in half.
        let g = Graph::ring(10);
        let dead = dead_mask(10, &[0, 5]);
        assert!(!alive_connected(&g, &dead));
        let repaired = repair_after_crashes(&g, &dead, 7);
        assert!(alive_connected(&repaired, &dead));
        assert_eq!(repaired.degree(0), 0, "dead node stays isolated");
        assert_eq!(repaired.degree(5), 0);
    }

    #[test]
    fn repair_is_deterministic_in_the_seed() {
        let g = small_world(40, 4, 0.05, 3);
        let dead = dead_mask(40, &[1, 7, 20, 33]);
        assert_eq!(
            repair_after_crashes(&g, &dead, 9),
            repair_after_crashes(&g, &dead, 9)
        );
    }

    #[test]
    fn connected_survivors_need_no_new_edges() {
        let g = Graph::complete(6);
        let dead = dead_mask(6, &[4]);
        let repaired = repair_after_crashes(&g, &dead, 0);
        assert_eq!(repaired.num_edges(), Graph::complete(6).num_edges() - 5);
    }

    #[test]
    fn short_mask_means_alive() {
        let g = Graph::ring(6);
        assert!(alive_connected(&g, &[]));
        assert_eq!(without_nodes(&g, &[]), g);
    }

    #[test]
    fn fully_dead_graph_repairs_to_isolation() {
        // Every node dead: nothing to bridge, nothing to connect — the
        // repaired graph is edgeless and vacuously alive-connected.
        let g = Graph::complete(5);
        let dead = vec![true; 5];
        let repaired = repair_after_crashes(&g, &dead, 3);
        assert_eq!(repaired.num_edges(), 0);
        assert!(alive_connected(&repaired, &dead));
        assert!(alive_connected(&g, &dead), "vacuous before repair too");
    }

    #[test]
    fn single_survivor_needs_no_bridges() {
        // One alive node is one component: connectivity is vacuous and
        // repair must not invent edges to corpses.
        let g = Graph::ring(6);
        let dead = dead_mask(6, &[0, 1, 2, 4, 5]);
        let repaired = repair_after_crashes(&g, &dead, 11);
        assert_eq!(repaired.num_edges(), 0);
        assert_eq!(repaired.degree(3), 0);
        assert!(alive_connected(&repaired, &dead));
    }

    #[test]
    fn three_components_get_exactly_two_bridges() {
        // Three disjoint alive triangles plus one dead hub: repair must
        // chain the components with exactly two new edges, each joining
        // consecutive components, touching no dead node.
        let mut g = Graph::empty(10);
        for base in [0, 3, 6] {
            g.add_edge(base, base + 1);
            g.add_edge(base + 1, base + 2);
            g.add_edge(base, base + 2);
        }
        // Node 9 was the hub holding them together.
        for v in [0, 3, 6] {
            g.add_edge(9, v);
        }
        let dead = dead_mask(10, &[9]);
        assert!(!alive_connected(&g, &dead));
        let repaired = repair_after_crashes(&g, &dead, 21);
        assert!(alive_connected(&repaired, &dead));
        assert_eq!(
            repaired.num_edges(),
            9 + 2,
            "three triangles plus exactly two bridges"
        );
        assert_eq!(repaired.degree(9), 0, "dead hub stays isolated");
    }

    #[test]
    fn repeated_repair_is_idempotent() {
        // Repairing an already-repaired overlay (same dead set, any
        // seed) changes nothing: connectivity holds, so no bridge rolls.
        let g = small_world(30, 4, 0.1, 8);
        let dead = dead_mask(30, &[2, 9, 14, 15, 16, 28]);
        let once = repair_after_crashes(&g, &dead, 5);
        let twice = repair_after_crashes(&once, &dead, 5);
        assert_eq!(once, twice);
        // Even with a different seed: nothing is disconnected, so the
        // RNG is never consulted.
        let reseeded = repair_after_crashes(&once, &dead, 99);
        assert_eq!(once, reseeded);
    }
}
