//! Metropolis–Hastings averaging weights (paper §III-C2; Xiao, Boyd & Kim).
//!
//! In D-PSGD, a node merges neighbour models by a weighted average where the
//! weight of the edge (i, j) is `1 / (1 + max(deg(i), deg(j)))`, and the
//! self-weight absorbs the remainder so each row of the mixing matrix sums
//! to one. The sender therefore transmits its degree along with the model
//! ("it also sends an integer corresponding to its degree").

use crate::graph::Graph;

/// Weight a node with degree `own_degree` assigns to a neighbour with
/// degree `neighbor_degree`.
#[must_use]
pub fn metropolis_hastings_weight(own_degree: usize, neighbor_degree: usize) -> f64 {
    1.0 / (1.0 + own_degree.max(neighbor_degree) as f64)
}

/// Full mixing row for `node`: `(self_weight, vec of (neighbor, weight))`.
/// The row is guaranteed to sum to 1 and the self-weight to be >= 0
/// (doubly-stochastic Metropolis–Hastings construction).
#[must_use]
pub fn mixing_row(g: &Graph, node: usize) -> (f64, Vec<(usize, f64)>) {
    let own = g.degree(node);
    let neighbors: Vec<(usize, f64)> = g
        .neighbors(node)
        .iter()
        .map(|&j| (j, metropolis_hastings_weight(own, g.degree(j))))
        .collect();
    let neighbor_sum: f64 = neighbors.iter().map(|&(_, w)| w).sum();
    (1.0 - neighbor_sum, neighbors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::erdos_renyi::erdos_renyi;
    use crate::small_world::small_world;

    #[test]
    fn weight_formula() {
        assert!((metropolis_hastings_weight(3, 5) - 1.0 / 6.0).abs() < 1e-12);
        assert!((metropolis_hastings_weight(5, 3) - 1.0 / 6.0).abs() < 1e-12);
        assert!((metropolis_hastings_weight(0, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rows_sum_to_one_and_self_weight_nonnegative() {
        for g in [small_world(80, 6, 0.03, 1), erdos_renyi(80, 0.08, 2)] {
            for node in 0..g.len() {
                let (self_w, row) = mixing_row(&g, node);
                let total: f64 = self_w + row.iter().map(|&(_, w)| w).sum::<f64>();
                assert!((total - 1.0).abs() < 1e-9, "row sum {total}");
                assert!(self_w >= -1e-12, "negative self weight {self_w}");
            }
        }
    }

    #[test]
    fn symmetric_across_edges() {
        let g = small_world(40, 4, 0.05, 3);
        for (a, b) in g.edges() {
            let wa = metropolis_hastings_weight(g.degree(a), g.degree(b));
            let wb = metropolis_hastings_weight(g.degree(b), g.degree(a));
            assert!((wa - wb).abs() < 1e-15);
        }
    }

    #[test]
    fn complete_graph_uniform() {
        let g = Graph::complete(8);
        let (self_w, row) = mixing_row(&g, 0);
        for &(_, w) in &row {
            assert!((w - 1.0 / 8.0).abs() < 1e-12);
        }
        assert!((self_w - 1.0 / 8.0).abs() < 1e-12);
    }
}
