//! Undirected simple graph with adjacency lists.

/// An undirected simple graph over nodes `0..n`.
///
/// Invariants (upheld by all constructors in this crate):
/// * no self-loops,
/// * no parallel edges,
/// * adjacency lists sorted ascending.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    adjacency: Vec<Vec<usize>>,
}

impl Graph {
    /// Creates an edgeless graph with `n` nodes.
    #[must_use]
    pub fn empty(n: usize) -> Self {
        Graph {
            adjacency: vec![Vec::new(); n],
        }
    }

    /// Complete graph K_n.
    #[must_use]
    pub fn complete(n: usize) -> Self {
        let mut g = Graph::empty(n);
        for a in 0..n {
            for b in (a + 1)..n {
                g.add_edge(a, b);
            }
        }
        g
    }

    /// Cycle graph (each node linked to its two ring neighbours). For
    /// `n <= 2` this degenerates to a path/single edge.
    #[must_use]
    pub fn ring(n: usize) -> Self {
        let mut g = Graph::empty(n);
        if n >= 2 {
            for a in 0..n {
                g.add_edge(a, (a + 1) % n);
            }
        }
        g
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.adjacency.len()
    }

    /// Whether the graph has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.adjacency.is_empty()
    }

    /// Adds the undirected edge {a, b}; ignores self-loops and duplicates.
    /// Returns `true` if the edge was inserted.
    ///
    /// # Panics
    /// If `a` or `b` is out of range.
    pub fn add_edge(&mut self, a: usize, b: usize) -> bool {
        assert!(
            a < self.len() && b < self.len(),
            "edge ({a},{b}) out of range"
        );
        if a == b {
            return false;
        }
        match self.adjacency[a].binary_search(&b) {
            Ok(_) => false,
            Err(pos_a) => {
                self.adjacency[a].insert(pos_a, b);
                let pos_b = self.adjacency[b]
                    .binary_search(&a)
                    .expect_err("asymmetric adjacency");
                self.adjacency[b].insert(pos_b, a);
                true
            }
        }
    }

    /// Whether {a, b} is an edge.
    #[must_use]
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        self.adjacency
            .get(a)
            .is_some_and(|adj| adj.binary_search(&b).is_ok())
    }

    /// Neighbours of `node`, sorted ascending.
    #[must_use]
    pub fn neighbors(&self, node: usize) -> &[usize] {
        &self.adjacency[node]
    }

    /// Degree of `node`.
    #[must_use]
    pub fn degree(&self, node: usize) -> usize {
        self.adjacency[node].len()
    }

    /// Number of undirected edges.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Mean degree.
    #[must_use]
    pub fn mean_degree(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        2.0 * self.num_edges() as f64 / self.len() as f64
    }

    /// Iterates over all edges as (a, b) with a < b.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.adjacency
            .iter()
            .enumerate()
            .flat_map(|(a, adj)| adj.iter().filter(move |&&b| a < b).map(move |&b| (a, b)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_edge_symmetric_and_deduped() {
        let mut g = Graph::empty(4);
        assert!(g.add_edge(0, 2));
        assert!(!g.add_edge(2, 0));
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(2, 0));
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn no_self_loops() {
        let mut g = Graph::empty(3);
        assert!(!g.add_edge(1, 1));
        assert_eq!(g.degree(1), 0);
    }

    #[test]
    fn complete_graph() {
        let g = Graph::complete(8);
        assert_eq!(g.num_edges(), 28); // the paper's 8-node setup: 28 pairs
        assert!((g.mean_degree() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn ring_graph() {
        let g = Graph::ring(5);
        assert_eq!(g.num_edges(), 5);
        for n in 0..5 {
            assert_eq!(g.degree(n), 2);
        }
        let g2 = Graph::ring(2);
        assert_eq!(g2.num_edges(), 1);
    }

    #[test]
    fn neighbors_sorted() {
        let mut g = Graph::empty(6);
        g.add_edge(0, 5);
        g.add_edge(0, 2);
        g.add_edge(0, 4);
        assert_eq!(g.neighbors(0), &[2, 4, 5]);
    }

    #[test]
    fn edges_iterator() {
        let mut g = Graph::empty(4);
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        g.add_edge(1, 3);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 3);
        assert!(edges.iter().all(|&(a, b)| a < b));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_edge_bounds_checked() {
        let mut g = Graph::empty(2);
        g.add_edge(0, 2);
    }
}
