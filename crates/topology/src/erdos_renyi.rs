//! Erdős–Rényi G(n, p) generator with connectivity repair (paper §IV-A2b:
//! "we ensure to make it connected by adding the missing edges").

use crate::graph::Graph;
use crate::metrics::components;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a connected Erdős–Rényi graph: each of the n(n-1)/2 candidate
/// edges is included independently with probability `p`; afterwards, if the
/// graph is disconnected, one bridging edge is added between consecutive
/// components (the paper's repair step).
///
/// # Panics
/// If `p` is outside `[0, 1]`.
#[must_use]
pub fn erdos_renyi(n: usize, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1] (got {p})");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::empty(n);
    for a in 0..n {
        for b in (a + 1)..n {
            if rng.gen_bool(p) {
                g.add_edge(a, b);
            }
        }
    }
    repair_connectivity(&mut g, &mut rng);
    g
}

/// Connects a possibly-disconnected graph by linking a random node of each
/// component to a random node of the next.
pub fn repair_connectivity(g: &mut Graph, rng: &mut StdRng) {
    let comps = components(g);
    if comps.len() <= 1 {
        return;
    }
    for window in comps.windows(2) {
        let a = window[0][rng.gen_range(0..window[0].len())];
        let b = window[1][rng.gen_range(0..window[1].len())];
        g.add_edge(a, b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::is_connected;

    #[test]
    fn paper_parameters_connected() {
        let g = erdos_renyi(610, 0.05, 42);
        assert!(is_connected(&g));
        // Expected mean degree ~= p * (n-1) = 30.45.
        let mean = g.mean_degree();
        assert!((mean - 30.45).abs() < 3.0, "mean degree {mean}");
    }

    #[test]
    fn sparse_graph_gets_repaired() {
        // p = 0 forces n components, repair must chain them all.
        let g = erdos_renyi(40, 0.0, 3);
        assert!(is_connected(&g));
        assert_eq!(g.num_edges(), 39); // a tree
    }

    #[test]
    fn fifty_node_er_is_sparser_than_sw() {
        // §IV-B (DNN): the 50-node ER graph is "less connected than small
        // world"; expected degree 0.05*49 = 2.45 vs 6.
        let g = erdos_renyi(50, 0.05, 7);
        assert!(is_connected(&g));
        assert!(g.mean_degree() < 6.0, "mean {}", g.mean_degree());
    }

    #[test]
    fn deterministic() {
        assert_eq!(erdos_renyi(80, 0.05, 5), erdos_renyi(80, 0.05, 5));
        assert_ne!(erdos_renyi(80, 0.05, 5), erdos_renyi(80, 0.05, 6));
    }

    #[test]
    fn full_probability_gives_complete_graph() {
        let g = erdos_renyi(12, 1.0, 0);
        assert_eq!(g.num_edges(), 66);
    }

    #[test]
    #[should_panic(expected = "in [0,1]")]
    fn rejects_bad_probability() {
        let _ = erdos_renyi(10, 1.5, 0);
    }
}
