//! Communication-graph substrate for the REX reproduction.
//!
//! The paper evaluates two topologies (§IV-A2): a **small world** (boost BGL
//! generator: 6 close connections per node, 3 % far-fetched probability) and
//! an **Erdős–Rényi** random graph (p = 5 %, made connected by adding the
//! missing edges). D-PSGD model merging additionally needs
//! **Metropolis–Hastings weights** over the graph (§III-C2). Churn
//! scenarios use [`repair`] to restore overlay connectivity after
//! crash-stop failures.

pub mod erdos_renyi;
pub mod graph;
pub mod metrics;
pub mod mh_weights;
pub mod repair;
pub mod small_world;

pub use erdos_renyi::erdos_renyi;
pub use graph::Graph;
pub use mh_weights::metropolis_hastings_weight;
pub use repair::{alive_connected, repair_after_crashes, without_nodes};
pub use small_world::small_world;

/// Named topology presets matching the paper's experimental setup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologySpec {
    /// Small world with the paper's parameters: k = 6, p_far = 3 %.
    SmallWorld,
    /// Erdős–Rényi with p = 5 %, connectivity-repaired.
    ErdosRenyi,
    /// Complete graph (paper §IV-C uses 8 fully connected nodes).
    FullyConnected,
    /// Ring — minimal connected topology, used by ablations.
    Ring,
}

impl TopologySpec {
    /// Builds the graph over `n` nodes with the given seed.
    #[must_use]
    pub fn build(self, n: usize, seed: u64) -> Graph {
        match self {
            TopologySpec::SmallWorld => small_world(n, 6, 0.03, seed),
            TopologySpec::ErdosRenyi => erdos_renyi(n, 0.05, seed),
            TopologySpec::FullyConnected => Graph::complete(n),
            TopologySpec::Ring => Graph::ring(n),
        }
    }

    /// Short label used in experiment output ("SW", "ER", ...).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            TopologySpec::SmallWorld => "SW",
            TopologySpec::ErdosRenyi => "ER",
            TopologySpec::FullyConnected => "FC",
            TopologySpec::Ring => "RING",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_build_connected_graphs() {
        for spec in [
            TopologySpec::SmallWorld,
            TopologySpec::ErdosRenyi,
            TopologySpec::FullyConnected,
            TopologySpec::Ring,
        ] {
            let g = spec.build(50, 7);
            assert_eq!(g.len(), 50, "{}", spec.label());
            assert!(metrics::is_connected(&g), "{} disconnected", spec.label());
        }
    }

    #[test]
    fn labels_unique() {
        let labels = [
            TopologySpec::SmallWorld.label(),
            TopologySpec::ErdosRenyi.label(),
            TopologySpec::FullyConnected.label(),
            TopologySpec::Ring.label(),
        ];
        let set: std::collections::HashSet<_> = labels.iter().collect();
        assert_eq!(set.len(), labels.len());
    }
}
