//! Small-world generator (paper §IV-A2a).
//!
//! Mirrors the boost BGL `small_world_iterator` construction the paper uses:
//! a ring lattice where every node connects to its `k` nearest neighbours,
//! plus "far-fetched" shortcut edges added with probability `p` per lattice
//! edge. The result has high clustering and low diameter.

use crate::graph::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a small-world graph over `n` nodes.
///
/// * `k` — number of close connections per node (must be even; the paper
///   uses 6);
/// * `p` — probability of adding a far-fetched edge per lattice edge (the
///   paper uses 3 %).
///
/// # Panics
/// If `k` is odd, `k >= n`, or `p` is outside `[0, 1]`.
#[must_use]
pub fn small_world(n: usize, k: usize, p: f64, seed: u64) -> Graph {
    assert!(k.is_multiple_of(2), "k must be even (got {k})");
    assert!(n > k, "need n > k (got n={n}, k={k})");
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1] (got {p})");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::empty(n);

    // Ring lattice: node i connects to i±1 .. i±k/2.
    for i in 0..n {
        for d in 1..=(k / 2) {
            g.add_edge(i, (i + d) % n);
        }
    }

    // Far-fetched shortcuts: for each lattice edge, with probability p add an
    // extra random long-range edge from its source (boost's variant *adds*
    // rather than rewires, which keeps the lattice connected).
    for i in 0..n {
        for _d in 1..=(k / 2) {
            if rng.gen_bool(p) {
                // Draw a target distinct from i; duplicates are no-ops.
                let target = rng.gen_range(0..n);
                g.add_edge(i, target);
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;

    #[test]
    fn paper_parameters() {
        let g = small_world(610, 6, 0.03, 42);
        assert_eq!(g.len(), 610);
        assert!(metrics::is_connected(&g));
        // Mean degree slightly above k because shortcuts only add edges.
        let mean = g.mean_degree();
        assert!((6.0..7.0).contains(&mean), "mean degree {mean}");
    }

    #[test]
    fn high_clustering_low_diameter() {
        let g = small_world(200, 6, 0.03, 1);
        let cc = metrics::clustering_coefficient(&g);
        // A k=6 ring lattice has clustering 0.6; shortcuts dilute slightly.
        assert!(cc > 0.4, "clustering {cc}");
        let diam = metrics::diameter(&g).unwrap();
        // Pure lattice diameter would be ~n/k = 33; shortcuts shrink it.
        assert!(diam < 30, "diameter {diam}");
    }

    #[test]
    fn zero_p_gives_pure_lattice() {
        let g = small_world(20, 4, 0.0, 0);
        for i in 0..20 {
            assert_eq!(g.degree(i), 4);
        }
        assert_eq!(g.num_edges(), 40);
    }

    #[test]
    fn deterministic() {
        let a = small_world(100, 6, 0.03, 9);
        let b = small_world(100, 6, 0.03, 9);
        assert_eq!(a, b);
        let c = small_world(100, 6, 0.03, 10);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn rejects_odd_k() {
        let _ = small_world(10, 3, 0.1, 0);
    }

    #[test]
    #[should_panic(expected = "n > k")]
    fn rejects_small_n() {
        let _ = small_world(4, 4, 0.1, 0);
    }
}
