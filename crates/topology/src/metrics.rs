//! Structural graph metrics: connectivity, components, clustering
//! coefficient and diameter (the paper characterizes SW vs ER by exactly
//! these: "low diameter and high clustering coefficient", §IV-A2).

use crate::graph::Graph;
use std::collections::VecDeque;

/// Connected components, each a sorted list of nodes; components ordered by
/// smallest member.
#[must_use]
pub fn components(g: &Graph) -> Vec<Vec<usize>> {
    let n = g.len();
    let mut visited = vec![false; n];
    let mut out = Vec::new();
    for start in 0..n {
        if visited[start] {
            continue;
        }
        let mut comp = Vec::new();
        let mut queue = VecDeque::from([start]);
        visited[start] = true;
        while let Some(u) = queue.pop_front() {
            comp.push(u);
            for &v in g.neighbors(u) {
                if !visited[v] {
                    visited[v] = true;
                    queue.push_back(v);
                }
            }
        }
        comp.sort_unstable();
        out.push(comp);
    }
    out
}

/// Whether the graph is connected (true for the empty and singleton graph).
#[must_use]
pub fn is_connected(g: &Graph) -> bool {
    components(g).len() <= 1
}

/// BFS distances from `start`; `usize::MAX` marks unreachable nodes.
#[must_use]
pub fn bfs_distances(g: &Graph, start: usize) -> Vec<usize> {
    let mut dist = vec![usize::MAX; g.len()];
    dist[start] = 0;
    let mut queue = VecDeque::from([start]);
    while let Some(u) = queue.pop_front() {
        for &v in g.neighbors(u) {
            if dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Graph diameter (longest shortest path); `None` if disconnected or empty.
#[must_use]
pub fn diameter(g: &Graph) -> Option<usize> {
    if g.is_empty() {
        return None;
    }
    let mut max = 0;
    for start in 0..g.len() {
        for &d in &bfs_distances(g, start) {
            if d == usize::MAX {
                return None;
            }
            max = max.max(d);
        }
    }
    Some(max)
}

/// Average local clustering coefficient (Watts–Strogatz definition); nodes
/// of degree < 2 contribute 0.
#[must_use]
pub fn clustering_coefficient(g: &Graph) -> f64 {
    if g.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for u in 0..g.len() {
        let neigh = g.neighbors(u);
        let k = neigh.len();
        if k < 2 {
            continue;
        }
        let mut links = 0usize;
        for (i, &a) in neigh.iter().enumerate() {
            for &b in &neigh[i + 1..] {
                if g.has_edge(a, b) {
                    links += 1;
                }
            }
        }
        total += 2.0 * links as f64 / (k * (k - 1)) as f64;
    }
    total / g.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn components_of_disconnected_graph() {
        let mut g = Graph::empty(6);
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        g.add_edge(3, 4);
        let comps = components(&g);
        assert_eq!(comps, vec![vec![0, 1], vec![2, 3, 4], vec![5]]);
        assert!(!is_connected(&g));
    }

    #[test]
    fn ring_diameter() {
        let g = Graph::ring(10);
        assert_eq!(diameter(&g), Some(5));
    }

    #[test]
    fn complete_graph_metrics() {
        let g = Graph::complete(6);
        assert_eq!(diameter(&g), Some(1));
        assert!((clustering_coefficient(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn triangle_plus_tail_clustering() {
        // Triangle 0-1-2 plus pendant node 3 on 0.
        let mut g = Graph::empty(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(0, 2);
        g.add_edge(0, 3);
        // c(0) = 1/3 (one link among 3 neighbour pairs), c(1)=c(2)=1, c(3)=0.
        let cc = clustering_coefficient(&g);
        assert!((cc - (1.0 / 3.0 + 1.0 + 1.0 + 0.0) / 4.0).abs() < 1e-12);
    }

    #[test]
    fn diameter_none_when_disconnected() {
        let mut g = Graph::empty(3);
        g.add_edge(0, 1);
        assert_eq!(diameter(&g), None);
    }

    #[test]
    fn bfs_distances_path() {
        let mut g = Graph::empty(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3]);
    }

    #[test]
    fn empty_graph_edge_cases() {
        let g = Graph::empty(0);
        assert!(is_connected(&g));
        assert_eq!(diameter(&g), None);
        assert_eq!(clustering_coefficient(&g), 0.0);
    }
}
