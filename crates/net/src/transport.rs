//! The backend-agnostic transport abstraction behind the REX engine.
//!
//! The paper runs one protocol (Algorithm 2) over three deployments: a
//! discrete-event simulator, a real-thread 8-node SGX testbed, and a
//! centralized baseline. [`Transport`] is the seam that lets a single
//! engine drive all of them:
//!
//! * [`Transport`] — the *fabric* view: a connected set of `n` mailboxes
//!   addressed by node id, with exact per-node [`TrafficStats`]. Lockstep
//!   drivers (the simulator) talk to the fabric directly.
//! * [`Endpoint`] — the *per-node* view: a handle that can be moved onto a
//!   node's own OS thread. Fabrics that support real concurrency split
//!   into endpoints via [`Transport::into_endpoints`].
//! * [`Clock`] — the time hook: simulated runs advance a virtual counter,
//!   deployed runs read the wall clock; the engine records epoch
//!   timestamps through this one interface either way.
//!
//! Implementations come in two layers. The *backends*:
//! [`crate::mem::MemNetwork`] (single-owner instrumented mailboxes for
//! the simulator), [`crate::channel::ChannelTransport`] (crossbeam-style
//! channels for the thread-per-node deployment), and
//! [`crate::tcp::TcpTransport`] (real TCP sockets with length-prefixed
//! framing — see [`crate::frame`] — used both in-process over loopback
//! and by the `rex-node` multi-process deployment). On top of them sit
//! *wrappers* that compose over any backend:
//! [`crate::fault::FaultyTransport`] / [`crate::fault::FaultyEndpoint`]
//! inject a deterministic, seeded fault schedule (drop/delay/duplicate/
//! reorder, partitions) and fill in the per-epoch delivery counters that
//! the [`Transport::take_delivery`] / [`Endpoint::take_delivery`] hooks
//! expose. The engine and every experiment binary are generic over these
//! traits, so every backend — wrapped or not — runs the same protocol
//! bit-identically.

use crate::mem::Envelope;
use crate::stats::{DeliveryStats, TrafficStats};
use std::time::Instant;

/// A transport-level failure surfaced to the caller instead of
/// panicking the process: the deployed `rex-node` loop turns these into
/// clean process exits (and, for recoverable membership operations, into
/// retries), while the in-process engine — where a dead peer means the
/// experiment is unsalvageable — still converts them into panics at the
/// call site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// A peer's connection closed (or broke) while the protocol still
    /// needed it.
    PeerLost {
        /// The peer whose connection died.
        peer: usize,
        /// What the transport knows about the failure.
        detail: String,
    },
    /// A peer violated the wire protocol (malformed frame, bogus hello
    /// or join, wrong epoch).
    Protocol {
        /// The offending peer — [`TransportError::UNIDENTIFIED_PEER`]
        /// when the connection never identified itself (the `detail`
        /// then carries its remote address).
        peer: usize,
        /// What it sent.
        detail: String,
    },
    /// A blocking operation exceeded its deadline.
    Timeout {
        /// What was being waited for.
        what: String,
    },
    /// A local socket-level failure.
    Io {
        /// The underlying error, stringified.
        detail: String,
    },
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::PeerLost { peer, detail } => {
                write!(f, "peer {peer} lost: {detail}")
            }
            TransportError::Protocol { peer, detail } if *peer == Self::UNIDENTIFIED_PEER => {
                write!(f, "unidentified peer protocol violation: {detail}")
            }
            TransportError::Protocol { peer, detail } => {
                write!(f, "peer {peer} protocol violation: {detail}")
            }
            TransportError::Timeout { what } => write!(f, "timed out waiting for {what}"),
            TransportError::Io { detail } => write!(f, "transport io: {detail}"),
        }
    }
}

impl TransportError {
    /// Sentinel `peer` value for protocol violations on a connection
    /// that never completed identification (no hello/join accepted).
    pub const UNIDENTIFIED_PEER: usize = usize::MAX;
}

impl std::error::Error for TransportError {}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        TransportError::Io {
            detail: e.to_string(),
        }
    }
}

/// One peer's received per-epoch commitment — a decoded
/// `Frame::Commitment`: the chained model digest the peer claims after
/// `epoch`, with the HMAC tag binding it to the peer's identity.
/// Collected by endpoints with a commitment channel (TCP) and drained
/// through [`Endpoint::take_commitments`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerCommitment {
    /// The committing peer's node id (connection-attributed, like data
    /// frames — a frame cannot re-attribute itself).
    pub from: usize,
    /// The epoch the commitment covers.
    pub epoch: u64,
    /// The peer's chained model digest after that epoch.
    pub digest: [u8; 32],
    /// HMAC tag binding the digest to the peer's identity.
    pub tag: [u8; 32],
}

/// A message fabric connecting `n` nodes, viewed from a single owner.
///
/// # Delivery contract
/// * `send` enqueues immediately and is accounted in both ends'
///   [`TrafficStats`] at send time.
/// * `recv` drains everything delivered to a node, in **canonical order**:
///   ascending sender id, FIFO within one sender (see [`canonicalize`]).
///   Canonical order is what makes runs bit-reproducible across backends —
///   the cross-backend equivalence test relies on it.
/// * `flush` is the round barrier for fabrics that defer visibility; the
///   engine calls it after applying an epoch's sends. Immediate fabrics
///   implement it as a no-op.
pub trait Transport {
    /// Per-node handle type for thread-per-node drivers.
    type Endpoint: Endpoint + 'static;

    /// Number of attached nodes.
    fn num_nodes(&self) -> usize;

    /// Sends `bytes` from node `from` to node `to`.
    fn send(&mut self, from: usize, to: usize, bytes: Vec<u8>);

    /// Drains every message delivered to `node`, in canonical order.
    fn recv(&mut self, node: usize) -> Vec<Envelope>;

    /// Makes all prior sends visible to subsequent `recv` calls.
    fn flush(&mut self);

    /// Marks the start of protocol epoch `epoch`. The engine calls this
    /// before draining any inbox of the epoch. Plain backends ignore it;
    /// layers with epoch-dependent behaviour (the fault wrappers, which
    /// key partitions and delayed-message release off the round number)
    /// override it. Sends made before the first `epoch_begin` belong to
    /// the setup phase.
    fn epoch_begin(&mut self, _epoch: usize) {}

    /// Fabric-level twin of [`Endpoint::view_sync`]: the engine calls
    /// this when the membership view changes, before applying the
    /// transition. Plain backends ignore it; layers holding in-flight
    /// state (the fault wrappers, which purge a leaver's held delayed
    /// messages) override it. Infallible — the single-owner fabrics
    /// have no connection state that can fail here.
    fn view_sync(&mut self, epoch: usize, joined: &[usize], left: &[usize]) {
        let _ = (epoch, joined, left);
    }

    /// Drains the delivery counters accumulated since the last call
    /// (delivered/dropped/late/duplicated message counts). Plain
    /// backends deliver everything and report zeros; fault wrappers
    /// account every routing decision here.
    fn take_delivery(&mut self) -> DeliveryStats {
        DeliveryStats::default()
    }

    /// Cumulative traffic counters of `node`.
    fn stats(&self, node: usize) -> TrafficStats;

    /// Snapshot of every node's traffic counters.
    fn all_stats(&self) -> Vec<TrafficStats>;

    /// Splits the fabric into one endpoint per node, each safe to move to
    /// its own thread. Returns `None` for fabrics that only support
    /// single-owner (lockstep) driving.
    fn into_endpoints(self) -> Option<Vec<Self::Endpoint>>;
}

/// One node's handle onto a [`Transport`] fabric, movable to that node's
/// thread. Same delivery contract as the fabric view.
pub trait Endpoint: Send {
    /// The owning node's id.
    fn id(&self) -> usize;

    /// Number of nodes in the fabric.
    fn num_nodes(&self) -> usize;

    /// Sends `bytes` to node `to`.
    fn send(&mut self, to: usize, bytes: Vec<u8>);

    /// Drains every delivered message, in canonical order, without
    /// blocking.
    fn recv(&mut self) -> Vec<Envelope>;

    /// Blocks until at least one message is deliverable (or `timeout`
    /// elapses), then drains like [`Endpoint::recv`]. The
    /// bounded-staleness node loop waits on this instead of a barrier —
    /// it needs "some shares arrived", not "everything arrived".
    /// Endpoints with synchronous delivery keep the default (an
    /// immediate drain: everything sent is already visible).
    fn recv_wait(&mut self, timeout: std::time::Duration) -> Vec<Envelope> {
        let _ = timeout;
        self.recv()
    }

    /// Pushes all locally staged output onto the wire **without** a
    /// round barrier: returns once every previously sent message has
    /// left this endpoint (not necessarily arrived). Barrier-free
    /// drivers call this where lockstep drivers call
    /// [`Endpoint::sync`]. Endpoints that transmit eagerly keep the
    /// default no-op.
    fn flush_sends(&mut self) -> Result<(), TransportError> {
        Ok(())
    }

    /// Wire-level round barrier: returns once every message sent by any
    /// endpoint *before its own `sync` of this round* has been delivered
    /// to its destination mailbox. Endpoints with synchronous delivery
    /// (channels) keep the default no-op; endpoints whose fabric has real
    /// propagation delay (TCP) exchange barrier tokens here. The engine
    /// calls this after applying an epoch's sends so the next `recv` is
    /// complete and deterministic.
    fn sync(&mut self) {}

    /// Fallible twin of [`Endpoint::sync`]: surfaces peer loss, protocol
    /// violations, and barrier timeouts as a
    /// [`TransportError`] instead of panicking — the deployed `rex-node`
    /// loop runs on this so a dying peer becomes a clean process exit.
    /// Endpoints whose `sync` cannot fail keep the default.
    fn try_sync(&mut self) -> Result<(), TransportError> {
        self.sync();
        Ok(())
    }

    /// Pre-send round barrier: used by driver loops that need a wire
    /// barrier *between draining and sending* (the deployed `rex-node`
    /// loop), where `sync` is reserved for the post-send position.
    /// Defaults to `sync`; layers with send-position-dependent behaviour
    /// (the fault wrappers, which release held messages only at the
    /// post-send barrier) override it to a barrier-only operation.
    fn drain_barrier(&mut self) {
        self.sync();
    }

    /// Fallible twin of [`Endpoint::drain_barrier`], mirroring
    /// [`Endpoint::try_sync`].
    fn try_drain_barrier(&mut self) -> Result<(), TransportError> {
        self.drain_barrier();
        Ok(())
    }

    /// Membership view-synchronization hook, called by the deployed
    /// node loop when the epoch-scoped view changes: `joined` nodes
    /// enter the view this epoch, `left` nodes departed at this
    /// boundary. Endpoints with live connection state act on it — the
    /// TCP endpoint **admits** pending `join` connections from new
    /// peers (accept, validate the `Join` control frame, reply
    /// `Welcome` with the current barrier generation) and **retires**
    /// departed peers from its barrier set. In-memory endpoints, whose
    /// fabric has no per-connection state, keep the default no-op; the
    /// engine's lockstep drivers perform the equivalent transition
    /// centrally.
    fn view_sync(
        &mut self,
        epoch: usize,
        joined: &[usize],
        left: &[usize],
    ) -> Result<(), TransportError> {
        let _ = (epoch, joined, left);
        Ok(())
    }

    /// The late-attestation evidence a `Join` control frame carried for
    /// `peer`, if this endpoint admitted one (drained: a second call
    /// returns `None`). Default: no join machinery, no evidence.
    fn join_evidence(&mut self, peer: usize) -> Option<Vec<u8>> {
        let _ = peer;
        None
    }

    /// Per-endpoint twin of [`Transport::epoch_begin`]: called by the
    /// node's own driver loop at the top of each epoch.
    fn epoch_begin(&mut self, _epoch: usize) {}

    /// Broadcasts this node's signed commitment for `epoch` to every
    /// connected peer, on the control plane (never accounted in payload
    /// [`TrafficStats`], so byte counts stay bit-identical across
    /// backends). Endpoints without a wire (in-memory fabrics, where the
    /// engine reads commitments straight out of the epoch reports) keep
    /// the default no-op.
    fn send_commitment(&mut self, epoch: u64, digest: [u8; 32], tag: [u8; 32]) {
        let _ = (epoch, digest, tag);
    }

    /// Drains the peer commitments received since the last call, in
    /// arrival order. Default: no commitment channel, nothing to drain.
    fn take_commitments(&mut self) -> Vec<PeerCommitment> {
        Vec::new()
    }

    /// Per-endpoint twin of [`Transport::take_delivery`]: drains this
    /// node's *outgoing* routing decisions since the last call.
    fn take_delivery(&mut self) -> DeliveryStats {
        DeliveryStats::default()
    }

    /// Cumulative traffic counters of this node.
    fn stats(&self) -> TrafficStats;
}

/// Sorts an inbox into canonical order: ascending sender id, preserving
/// per-sender FIFO (stable sort).
pub fn canonicalize(inbox: &mut [Envelope]) {
    inbox.sort_by_key(|env| env.from);
}

/// Endpoint type for fabrics that cannot be split across threads
/// (uninhabited — no value of this type ever exists).
#[derive(Debug)]
pub enum NeverEndpoint {}

impl Endpoint for NeverEndpoint {
    fn id(&self) -> usize {
        match *self {}
    }
    fn num_nodes(&self) -> usize {
        match *self {}
    }
    fn send(&mut self, _to: usize, _bytes: Vec<u8>) {
        match *self {}
    }
    fn recv(&mut self) -> Vec<Envelope> {
        match *self {}
    }
    fn stats(&self) -> TrafficStats {
        match *self {}
    }
}

/// The engine's time hook: one interface over simulated and wall-clock
/// time.
///
/// * Simulated axes (`rex_sim::VirtualClock`) start at zero and move only
///   through [`Clock::advance`] — the modelled compute/network/SGX
///   charges.
/// * [`WallClock`] reads real elapsed time; `advance` adds modelled
///   charges (e.g. SGX hardware effects the host CPU does not exhibit) on
///   top of the measured axis.
pub trait Clock {
    /// Current time on this axis, ns.
    fn now_ns(&self) -> u64;

    /// Adds `delta_ns` of modelled time.
    fn advance(&mut self, delta_ns: u64);
}

/// Wall-clock time plus modelled extra charges.
#[derive(Debug, Clone)]
pub struct WallClock {
    origin: Instant,
    extra_ns: u64,
}

impl WallClock {
    /// Starts the clock at now.
    #[must_use]
    pub fn start() -> Self {
        WallClock {
            origin: Instant::now(),
            extra_ns: 0,
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::start()
    }
}

impl Clock for WallClock {
    fn now_ns(&self) -> u64 {
        let elapsed = self.origin.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        elapsed.saturating_add(self.extra_ns)
    }

    fn advance(&mut self, delta_ns: u64) {
        self.extra_ns = self.extra_ns.saturating_add(delta_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_order_sorts_by_sender_keeping_fifo() {
        let mut inbox = vec![
            Envelope {
                from: 2,
                bytes: vec![1],
            },
            Envelope {
                from: 0,
                bytes: vec![2],
            },
            Envelope {
                from: 2,
                bytes: vec![3],
            },
            Envelope {
                from: 1,
                bytes: vec![4],
            },
        ];
        canonicalize(&mut inbox);
        let order: Vec<(usize, u8)> = inbox.iter().map(|e| (e.from, e.bytes[0])).collect();
        assert_eq!(order, vec![(0, 2), (1, 4), (2, 1), (2, 3)]);
    }

    #[test]
    fn wall_clock_adds_modelled_charges() {
        let mut clock = WallClock::start();
        let before = clock.now_ns();
        clock.advance(5_000_000_000);
        assert!(clock.now_ns() >= before + 5_000_000_000);
    }
}
