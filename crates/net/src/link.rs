//! Link model: converts message sizes to simulated transfer time.
//!
//! The simulator's time axis (Figs 1–4) combines measured compute with
//! modelled network time; this is the network part. Defaults model the
//! paper's LAN testbed (gigabit-class links between servers).

/// Latency/bandwidth model of one link class (all links identical, matching
/// the paper's homogeneous cluster).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkModel {
    /// One-way propagation + protocol latency per message, ns.
    pub latency_ns: u64,
    /// Sustained throughput in bytes/second.
    pub bandwidth_bytes_per_sec: f64,
}

impl Default for LinkModel {
    fn default() -> Self {
        LinkModel {
            latency_ns: 100_000,                              // 100 µs
            bandwidth_bytes_per_sec: 117.0 * 1024.0 * 1024.0, // ~1 Gbps effective
        }
    }
}

impl LinkModel {
    /// An effectively infinite link (for ablations isolating compute).
    #[must_use]
    pub fn infinite() -> Self {
        LinkModel {
            latency_ns: 0,
            bandwidth_bytes_per_sec: f64::INFINITY,
        }
    }

    /// Simulated time to transfer one `bytes`-sized message, ns.
    #[must_use]
    pub fn transfer_ns(&self, bytes: u64) -> u64 {
        let serialization = if self.bandwidth_bytes_per_sec.is_finite() {
            (bytes as f64 / self.bandwidth_bytes_per_sec * 1e9) as u64
        } else {
            0
        };
        self.latency_ns + serialization
    }

    /// Simulated time for `n` messages of `bytes` each sent back-to-back on
    /// one link (serialization adds up; latency pipelines and is paid once).
    #[must_use]
    pub fn burst_ns(&self, n: u64, bytes: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        let serialization = if self.bandwidth_bytes_per_sec.is_finite() {
            (n as f64 * bytes as f64 / self.bandwidth_bytes_per_sec * 1e9) as u64
        } else {
            0
        };
        self.latency_ns + serialization
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_scales_with_size() {
        let link = LinkModel::default();
        let small = link.transfer_ns(1_000);
        let large = link.transfer_ns(1_000_000);
        assert!(large > small);
        // A 420 KiB MF model takes ~3.6 ms at ~1 Gbps.
        let model_ns = link.transfer_ns(430_000);
        assert!(model_ns > 3_000_000 && model_ns < 5_000_000, "{model_ns}");
        // A 3.6 KiB rating batch is latency-dominated.
        let batch_ns = link.transfer_ns(3_600);
        assert!(batch_ns < 200_000, "{batch_ns}");
    }

    #[test]
    fn infinite_link_is_free() {
        let link = LinkModel::infinite();
        assert_eq!(link.transfer_ns(u64::MAX / 2), 0);
        assert_eq!(link.burst_ns(100, 1 << 30), 0);
    }

    #[test]
    fn burst_pays_latency_once() {
        let link = LinkModel::default();
        let one = link.transfer_ns(1_000);
        let burst = link.burst_ns(10, 1_000);
        assert!(burst < 10 * one);
        assert!(burst > link.transfer_ns(10_000) - link.latency_ns);
        assert_eq!(link.burst_ns(0, 1_000), 0);
    }
}
