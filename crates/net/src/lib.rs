//! Networking substrate for the REX reproduction.
//!
//! The paper's implementation uses ZeroMQ between 8 processes on 4 SGX
//! machines and a simulator for the larger sweeps. Both deployments report
//! the same two network metrics: bytes in+out per node (Figs 2, 3, 5b, 6b,
//! 7b) and transfer time contributions. This crate supplies:
//!
//! * [`message`] — the REX wire protocol: cleartext attestation messages
//!   and AEAD-sealed payloads (raw-rating batches or serialized models,
//!   each tagged with the sender's degree for Metropolis–Hastings merging);
//! * [`codec`] — a self-contained length-prefixed binary encoding;
//! * [`mem`] — a single-threaded instrumented mailbox network for the
//!   discrete-event simulator;
//! * [`channel`] — a crossbeam-based transport for the real-thread runner;
//! * [`stats`] — per-node traffic accounting;
//! * [`link`] — a latency/bandwidth model that converts bytes to
//!   simulated transfer time.

pub mod channel;
pub mod codec;
pub mod compress;
pub mod link;
pub mod mem;
pub mod message;
pub mod stats;

pub use codec::CodecError;
pub use link::LinkModel;
pub use mem::{Envelope, MemNetwork};
pub use message::{Payload, Plain};
pub use stats::TrafficStats;
