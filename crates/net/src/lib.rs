//! Networking substrate for the REX reproduction.
//!
//! The paper's implementation uses ZeroMQ between 8 processes on 4 SGX
//! machines and a simulator for the larger sweeps. Both deployments report
//! the same two network metrics: bytes in+out per node (Figs 2, 3, 5b, 6b,
//! 7b) and transfer time contributions. This crate supplies:
//!
//! * [`message`] — the REX wire protocol: cleartext attestation messages
//!   and AEAD-sealed payloads (raw-rating batches or serialized models,
//!   each tagged with the sender's degree for Metropolis–Hastings merging);
//! * [`codec`] — a self-contained length-prefixed binary encoding;
//! * [`transport`] — the backend seam: the [`Transport`]/[`Endpoint`]
//!   fabric abstraction and the [`Clock`] time hook that the generic
//!   engine in `rex-core` is written against;
//! * [`mem`] — [`MemNetwork`], the single-owner instrumented mailbox
//!   backend for the discrete-event simulator;
//! * [`channel`] — [`ChannelTransport`], the crossbeam-channel backend for
//!   the real-thread deployment;
//! * [`fault`] — [`FaultPlan`] and the [`FaultyTransport`] /
//!   [`fault::FaultyEndpoint`] wrappers: deterministic, seeded
//!   drop/delay/duplicate/reorder, partition and crash schedules
//!   composing over any backend;
//! * [`frame`] — the length-prefixed socket framing (hello/data/barrier);
//! * [`tcp`] — [`TcpTransport`]/[`tcp::TcpEndpoint`], the real-socket
//!   backend: loopback fabric in-process, or one endpoint per OS process
//!   for the `rex-node` distributed deployment;
//! * [`stats`] — per-node traffic accounting;
//! * [`link`] — a latency/bandwidth model that converts bytes to
//!   simulated transfer time.
//!
//! All three [`Transport`] backends run the protocol bit-identically (the
//! cross-backend equivalence tests hold them to it); a further backend
//! only has to implement [`Transport`] + [`Endpoint`] here — the protocol
//! engine and every experiment binary are generic over it.

pub mod channel;
pub mod codec;
pub mod compress;
pub mod fault;
pub mod frame;
pub mod link;
pub mod mem;
pub mod message;
mod reactor;
pub mod stats;
pub mod tcp;
pub mod transport;

pub use channel::ChannelTransport;
pub use codec::CodecError;
pub use fault::{CrashSpec, FaultPlan, FaultyTransport, LinkFaults, PartitionSpec};
pub use frame::{Frame, FrameError};
pub use link::LinkModel;
pub use mem::{Envelope, MemNetwork};
pub use message::{Payload, Plain};
pub use stats::{DeliveryStats, TrafficStats};
pub use tcp::TcpTransport;
pub use transport::{Clock, Endpoint, PeerCommitment, Transport, TransportError, WallClock};
