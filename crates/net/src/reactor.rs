//! Event-driven socket poller for the TCP transport.
//!
//! One [`Reactor`] replaces the old thread-per-connection reader model:
//! a **single poller thread** owns the non-blocking read halves of every
//! connection an endpoint holds, services them round-robin, and feeds
//! decoded frames to a [`ReactorSink`] (the endpoint's shared mailbox +
//! barrier state). A node's thread cost is therefore O(1) in its peer
//! count — a 512-peer hub runs one poller where the old fabric spawned
//! 512 blocked readers — which is what makes thousand-peer topologies
//! reachable in-process.
//!
//! # Polling strategy
//! The poller is hand-rolled over [`std::net`] (no epoll/kqueue): it
//! sweeps all connections with non-blocking reads, and when a sweep
//! makes no progress it first spins a small budget of
//! [`std::thread::yield_now`] passes (so a reply that is already in
//! flight — the common case mid-benchmark — is picked up at
//! busy-poll latency), then parks on a condvar with **capped
//! exponential backoff** (50µs → 5ms). Parking means an idle fleet
//! costs a few hundred wakeups per second instead of a spinning core;
//! the condvar is notified on connection registration and shutdown, so
//! lifecycle changes never wait out a backoff interval.
//!
//! # Framing
//! Each connection owns a [`FrameAssembler`], so frames are decoded
//! incrementally from whatever chunk sizes the kernel returns, with the
//! assembler's buffer (and the poller's single read scratch buffer)
//! reused across frames — the read path allocates only the payload
//! `Vec`s that become [`crate::mem::Envelope`]s.

use crate::frame::{Frame, FrameAssembler};
use std::io::{self, Read};
use std::net::TcpStream;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// Where the poller delivers decoded frames and connection lifecycle
/// events. Implemented by the TCP endpoint's shared state.
pub(crate) trait ReactorSink: Send + Sync {
    /// One complete frame arrived on the connection to `peer`.
    fn on_frame(&self, peer: usize, frame: Frame);
    /// The connection to `peer` is gone: clean EOF (`None`) or a
    /// protocol/io failure (`Some(reason)`).
    fn on_closed(&self, peer: usize, reason: Option<String>);
}

/// Yield-spin passes before the first condvar park when a sweep makes no
/// progress. Small on purpose: on a loaded single-core host, yielding
/// hands the slice to the thread that will produce the next frame.
const SPIN_PASSES: u32 = 64;
/// First park interval after the spin budget is exhausted.
const IDLE_WAIT_MIN: Duration = Duration::from_micros(50);
/// Park interval cap — bounds the latency of the first frame after an
/// idle period, and bounds an idle fleet's wakeup rate.
const IDLE_WAIT_MAX: Duration = Duration::from_millis(5);
/// Read scratch buffer: one per poller, reused for every connection.
const SCRATCH_LEN: usize = 64 * 1024;

/// Registration / shutdown commands for the poller thread.
enum Command {
    /// Start polling `stream` as the connection to `peer`.
    Add { peer: usize, stream: TcpStream },
    /// Exit the poller loop.
    Shutdown,
}

/// Shared intake between endpoint and poller. The condvar doubles as the
/// poller's idle-backoff timer, so pushing a command wakes it instantly.
#[derive(Default)]
struct Intake {
    commands: Mutex<Vec<Command>>,
    wake: Condvar,
}

/// Handle to one endpoint's poller thread. Dropping it shuts the poller
/// down and joins it.
pub(crate) struct Reactor {
    intake: Arc<Intake>,
    handle: Option<JoinHandle<()>>,
}

impl Reactor {
    /// Spawns the poller thread feeding `sink`.
    pub(crate) fn spawn(sink: Arc<dyn ReactorSink>) -> Reactor {
        let intake = Arc::new(Intake::default());
        let poller_intake = Arc::clone(&intake);
        let handle = std::thread::spawn(move || poller_loop(&poller_intake, &*sink));
        Reactor {
            intake,
            handle: Some(handle),
        }
    }

    /// Registers a connection's read half: switches it non-blocking and
    /// hands it to the poller. Note that `O_NONBLOCK` lives on the file
    /// *description*, so a write half cloned from the same socket turns
    /// non-blocking too — exactly what the endpoint's coalesced
    /// partial-write output path wants.
    pub(crate) fn add(&self, peer: usize, stream: TcpStream) -> io::Result<()> {
        stream.set_nonblocking(true)?;
        self.push(Command::Add { peer, stream });
        Ok(())
    }

    fn push(&self, cmd: Command) {
        self.intake
            .commands
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(cmd);
        self.intake.wake.notify_all();
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        self.push(Command::Shutdown);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// One polled connection: the non-blocking read half plus its
/// incremental frame decoder.
struct Conn {
    peer: usize,
    stream: TcpStream,
    assembler: FrameAssembler,
}

/// Outcome of servicing one connection in a sweep.
enum Serviced {
    /// Read at least one chunk.
    Progress,
    /// Nothing available right now.
    Idle,
    /// Connection finished (EOF or failure); already reported to the
    /// sink.
    Closed,
}

fn poller_loop(intake: &Intake, sink: &dyn ReactorSink) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut scratch = vec![0u8; SCRATCH_LEN];
    let mut spins = 0u32;
    let mut idle_wait = IDLE_WAIT_MIN;

    loop {
        // Drain registrations/shutdown first so a freshly attached
        // connection is served in this very sweep.
        let commands = std::mem::take(
            &mut *intake
                .commands
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        );
        let mut progress = !commands.is_empty();
        for cmd in commands {
            match cmd {
                Command::Add { peer, stream } => conns.push(Conn {
                    peer,
                    stream,
                    assembler: FrameAssembler::new(),
                }),
                Command::Shutdown => return,
            }
        }

        conns.retain_mut(|conn| match service(conn, &mut scratch, sink) {
            Serviced::Progress => {
                progress = true;
                true
            }
            Serviced::Idle => true,
            Serviced::Closed => false,
        });

        if progress {
            spins = 0;
            idle_wait = IDLE_WAIT_MIN;
            continue;
        }
        if spins < SPIN_PASSES {
            spins += 1;
            std::thread::yield_now();
            continue;
        }
        // Park until the backoff elapses or a command arrives; sockets
        // can't signal the condvar, so the interval is the poll period.
        let guard = intake
            .commands
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if guard.is_empty() {
            let _ = intake
                .wake
                .wait_timeout(guard, idle_wait)
                .unwrap_or_else(PoisonError::into_inner);
        }
        idle_wait = (idle_wait * 2).min(IDLE_WAIT_MAX);
    }
}

/// Drains one connection's readable bytes and decodes them. Never
/// panics: a hostile or broken peer becomes an `on_closed` reason, which
/// the endpoint's next barrier surfaces as a transport error.
fn service(conn: &mut Conn, scratch: &mut [u8], sink: &dyn ReactorSink) -> Serviced {
    let mut progress = false;
    loop {
        match conn.stream.read(scratch) {
            Ok(0) => {
                // Clean close only at a frame boundary.
                let reason = conn
                    .assembler
                    .mid_frame()
                    .then(|| "connection error: eof inside a frame".to_string());
                sink.on_closed(conn.peer, reason);
                return Serviced::Closed;
            }
            Ok(n) => {
                progress = true;
                conn.assembler.extend(&scratch[..n]);
                loop {
                    match conn.assembler.next_frame() {
                        Ok(Some(frame)) => sink.on_frame(conn.peer, frame),
                        Ok(None) => break,
                        Err(e) => {
                            sink.on_closed(conn.peer, Some(format!("sent an {e}")));
                            return Serviced::Closed;
                        }
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                return if progress {
                    Serviced::Progress
                } else {
                    Serviced::Idle
                };
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => {
                sink.on_closed(conn.peer, Some(format!("connection error: {e}")));
                return Serviced::Closed;
            }
        }
    }
}
