//! Compact encoding for raw-rating batches (paper §IV-E-e).
//!
//! The paper observes that REX's payloads are highly compressible:
//! MovieLens ratings take only 10 values ("from 0.5 to 5.0 in steps of
//! 0.5"), and ids cluster. This optional codec exploits exactly that:
//!
//! * batches are sorted by (user, item) and **delta-encoded** with LEB128
//!   varints (gossiped batches come from few users, so user deltas are
//!   mostly zero and item deltas small);
//! * ratings are stored as **4-bit half-star indices**, two per byte.
//!
//! Typical batches shrink ~3× vs the plain 12-byte-triplet encoding,
//! widening REX's network advantage further. The sparse wire codec
//! (`WireCodec::Sparse` in `rex-core`) routes raw-data shares through
//! this encoding via the `Plain::RawPacked` payload variant of
//! [`crate::codec::encode_plain`]; dense mode keeps the plain triplet
//! form.

use rex_data::Rating;

/// Encoding failure (only possible on decode).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressError(pub String);

impl std::fmt::Display for CompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "compressed batch malformed: {}", self.0)
    }
}

impl std::error::Error for CompressError {}

fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

fn read_varint(buf: &[u8], pos: &mut usize) -> Result<u64, CompressError> {
    let mut out = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *buf
            .get(*pos)
            .ok_or_else(|| CompressError("truncated varint".into()))?;
        *pos += 1;
        if shift >= 63 && byte > 1 {
            return Err(CompressError("varint overflow".into()));
        }
        out |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(out);
        }
        shift += 7;
    }
}

/// Maps a half-star rating to its 4-bit index (0.5 → 0, ..., 5.0 → 9).
/// Off-grid values are snapped.
fn rating_index(value: f32) -> u8 {
    let snapped = (value.clamp(0.5, 5.0) * 2.0).round() as u8;
    snapped - 1
}

fn index_rating(index: u8) -> Result<f32, CompressError> {
    if index > 9 {
        return Err(CompressError(format!("rating index {index} out of range")));
    }
    Ok(f32::from(index + 1) * 0.5)
}

/// Compresses a batch of ratings. Order is not preserved (batches are
/// unordered sets in the protocol); duplicates survive round-trips.
#[must_use]
pub fn compress_batch(ratings: &[Rating]) -> Vec<u8> {
    let mut sorted: Vec<Rating> = ratings.to_vec();
    sorted.sort_unstable_by_key(|r| (r.user, r.item));

    let mut buf = Vec::with_capacity(ratings.len() * 3 + 8);
    put_varint(&mut buf, sorted.len() as u64);

    // Delta-encoded ids.
    let mut prev_user = 0u32;
    let mut prev_item = 0u32;
    for r in &sorted {
        let user_delta = r.user - prev_user;
        put_varint(&mut buf, u64::from(user_delta));
        // Item deltas restart per user; within a user they are ascending.
        let item_delta = if user_delta == 0 && r.item >= prev_item {
            r.item - prev_item
        } else {
            r.item
        };
        put_varint(&mut buf, u64::from(item_delta));
        prev_user = r.user;
        prev_item = r.item;
    }

    // 4-bit rating nibbles.
    let mut nibble_pending: Option<u8> = None;
    for r in &sorted {
        let idx = rating_index(r.value);
        match nibble_pending.take() {
            None => nibble_pending = Some(idx),
            Some(low) => buf.push(low | (idx << 4)),
        }
    }
    if let Some(low) = nibble_pending {
        buf.push(low);
    }
    buf
}

/// Decompresses a batch produced by [`compress_batch`].
pub fn decompress_batch(buf: &[u8]) -> Result<Vec<Rating>, CompressError> {
    let mut pos = 0usize;
    let count = read_varint(buf, &mut pos)? as usize;
    if count > 64 * 1024 * 1024 {
        return Err(CompressError(format!("hostile batch count {count}")));
    }
    // Reject before allocating: `count` entries need at least two 1-byte
    // varints each plus the rating nibbles, so a hostile count cannot
    // claim more entries than the buffer could possibly hold.
    let min_needed = count * 2 + count.div_ceil(2);
    if buf.len() - pos < min_needed {
        return Err(CompressError(format!(
            "count {count} needs ≥ {min_needed} bytes, {} remain",
            buf.len() - pos
        )));
    }
    let mut pairs = Vec::with_capacity(count);
    let mut prev_user = 0u32;
    let mut prev_item = 0u32;
    for _ in 0..count {
        let user_delta = read_varint(buf, &mut pos)?;
        let item_delta = read_varint(buf, &mut pos)?;
        let user = prev_user
            .checked_add(
                u32::try_from(user_delta)
                    .map_err(|_| CompressError("user delta overflow".into()))?,
            )
            .ok_or_else(|| CompressError("user overflow".into()))?;
        let item = if user_delta == 0 {
            prev_item
                .checked_add(
                    u32::try_from(item_delta)
                        .map_err(|_| CompressError("item delta overflow".into()))?,
                )
                .ok_or_else(|| CompressError("item overflow".into()))?
        } else {
            u32::try_from(item_delta).map_err(|_| CompressError("item overflow".into()))?
        };
        pairs.push((user, item));
        prev_user = user;
        prev_item = item;
    }

    let nibble_bytes = count.div_ceil(2);
    if buf.len() - pos != nibble_bytes {
        return Err(CompressError(format!(
            "expected {nibble_bytes} rating bytes, found {}",
            buf.len() - pos
        )));
    }
    let mut ratings = Vec::with_capacity(count);
    for (i, (user, item)) in pairs.into_iter().enumerate() {
        let byte = buf[pos + i / 2];
        let idx = if i % 2 == 0 { byte & 0x0f } else { byte >> 4 };
        ratings.push(Rating {
            user,
            item,
            value: index_rating(idx)?,
        });
    }
    Ok(ratings)
}

/// Compression ratio of a batch vs the plain 12-byte-triplet encoding.
#[must_use]
pub fn compression_ratio(ratings: &[Rating]) -> f64 {
    if ratings.is_empty() {
        return 1.0;
    }
    let plain = ratings.len() * Rating::WIRE_SIZE;
    let packed = compress_batch(ratings).len();
    plain as f64 / packed as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn sorted(mut v: Vec<Rating>) -> Vec<(u32, u32, u32)> {
        v.sort_unstable_by_key(|r| (r.user, r.item));
        v.into_iter()
            .map(|r| (r.user, r.item, (r.value * 2.0) as u32))
            .collect()
    }

    #[test]
    fn roundtrip_preserves_set() {
        let mut rng = StdRng::seed_from_u64(1);
        let batch: Vec<Rating> = (0..300)
            .map(|_| Rating {
                user: rng.gen_range(0..64),
                item: rng.gen_range(0..9000),
                value: rng.gen_range(1..=10) as f32 * 0.5,
            })
            .collect();
        let packed = compress_batch(&batch);
        let back = decompress_batch(&packed).unwrap();
        assert_eq!(sorted(back), sorted(batch));
    }

    #[test]
    fn empty_batch() {
        let packed = compress_batch(&[]);
        assert_eq!(decompress_batch(&packed).unwrap(), Vec::new());
    }

    #[test]
    fn typical_gossip_batch_compresses_about_3x() {
        // A REX share: 300 points from ONE user's perspective mixed with
        // gossip from a handful of others — few distinct users, clustered
        // items.
        let mut rng = StdRng::seed_from_u64(2);
        let batch: Vec<Rating> = (0..300)
            .map(|_| Rating {
                user: rng.gen_range(0..8),
                item: rng.gen_range(0..2000),
                value: rng.gen_range(1..=10) as f32 * 0.5,
            })
            .collect();
        let ratio = compression_ratio(&batch);
        assert!(ratio > 2.5, "ratio only {ratio:.2}");
        // And it still round-trips.
        let back = decompress_batch(&compress_batch(&batch)).unwrap();
        assert_eq!(back.len(), 300);
    }

    #[test]
    fn off_grid_values_are_snapped() {
        let batch = vec![Rating {
            user: 0,
            item: 0,
            value: 3.26,
        }];
        let back = decompress_batch(&compress_batch(&batch)).unwrap();
        assert_eq!(back[0].value, 3.5);
    }

    #[test]
    fn rejects_truncation_and_garbage() {
        let batch: Vec<Rating> = (0..10)
            .map(|i| Rating {
                user: i,
                item: i,
                value: 4.0,
            })
            .collect();
        let packed = compress_batch(&batch);
        for cut in 0..packed.len() {
            assert!(
                decompress_batch(&packed[..cut]).is_err(),
                "accepted truncation at {cut}"
            );
        }
        assert!(decompress_batch(&[0xff; 4]).is_err());
    }

    #[test]
    fn hostile_count_rejected_before_allocation() {
        // A few header bytes claiming ~64Mi entries must be refused by
        // the plausibility check, not answered with a half-GiB
        // `Vec::with_capacity`.
        let mut buf = Vec::new();
        put_varint(&mut buf, 64 * 1024 * 1024 - 1);
        let err = decompress_batch(&buf).unwrap_err();
        assert!(err.0.contains("needs"), "{err}");
        // One past the cap hits the count guard instead.
        let mut buf = Vec::new();
        put_varint(&mut buf, 64 * 1024 * 1024 + 1);
        assert!(decompress_batch(&buf).unwrap_err().0.contains("hostile"));
    }

    #[test]
    fn duplicates_survive() {
        let batch = vec![
            Rating {
                user: 1,
                item: 2,
                value: 3.0,
            },
            Rating {
                user: 1,
                item: 2,
                value: 3.0,
            },
        ];
        let back = decompress_batch(&compress_batch(&batch)).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0], back[1]);
    }
}
