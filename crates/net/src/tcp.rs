//! Real-socket TCP transport: the deployment backend the paper's 8-node
//! SGX testbed corresponds to.
//!
//! [`TcpTransport`] implements [`Transport`] over genuine TCP connections
//! carrying the length-prefixed frames of [`crate::frame`]. It comes in
//! two shapes:
//!
//! * **Loopback fabric** ([`TcpTransport::loopback`]) — all `n` endpoints
//!   live in one process, fully connected over `127.0.0.1` sockets. This
//!   is what the cross-backend equivalence tests and the benches drive:
//!   every frame crosses the kernel's TCP stack, yet runs stay
//!   bit-identical with [`crate::mem::MemNetwork`] and
//!   [`crate::channel::ChannelTransport`].
//! * **Distributed endpoint** ([`TcpEndpoint::connect`]) — one endpoint
//!   per OS process, bootstrapped from a node-id → socket-address map.
//!   The `rex-node` binary builds exactly this and runs one engine node
//!   per process.
//!
//! # Bootstrap
//! Node `i` listens on `addrs[i]`, dials every peer `j > i` (retrying
//! until the peer's listener is up), and accepts one connection from every
//! peer `j < i`. The dialing side opens with a [`Frame::Hello`] so the
//! accepting side learns which node the connection speaks for. Each
//! established connection gets one **reader thread** that decodes frames
//! and feeds the owner's mailbox; [`Endpoint::recv`] drains the mailbox in
//! canonical order (ascending sender id, per-sender FIFO — per-connection
//! FIFO plus one reader per connection preserves it).
//!
//! # Delivery barrier
//! TCP has real propagation delay, so "everything sent has arrived" must
//! be established explicitly: [`Endpoint::sync`] sends a
//! [`Frame::Barrier`] token to every peer and waits for every peer's token
//! of the same generation. Because tokens follow data frames on the same
//! FIFO connection, a completed sync guarantees the local mailbox holds
//! every message any peer sent before *its* sync — the exact property the
//! engine's round structure needs. The fabric-level [`Transport::flush`]
//! runs the same two-phase barrier across all owned endpoints.
//!
//! # Byte accounting
//! [`TrafficStats`] record **payload bytes of data frames only**, at the
//! frame layer: `bytes_out` when a data frame is written, `bytes_in` when
//! the reader thread delivers it. Hello/barrier control frames and the
//! 9-byte frame headers are excluded, so counts are bit-identical with the
//! in-memory backends; the physical wire volume (headers + control plane)
//! is tracked separately and exposed via [`TcpEndpoint::wire_traffic`].

use crate::channel::AtomicStats;
use crate::frame::{read_frame, write_frame, Frame, FrameError, HEADER_LEN};
use crate::mem::Envelope;
use crate::stats::TrafficStats;
use crate::transport::{canonicalize, Endpoint, Transport, TransportError};
use std::collections::HashMap;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Locks a mutex, recovering the guard from poisoning: a reader thread
/// must never panic on a lock another thread poisoned while unwinding —
/// that would escalate one failure into a process abort instead of a
/// surfaced [`TransportError`].
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// How long [`TcpEndpoint::connect`] keeps retrying peers that have not
/// bound their listener yet.
pub const DEFAULT_CONNECT_TIMEOUT: Duration = Duration::from_secs(30);

/// Upper bound on one barrier round; exceeding it means a peer died or
/// the fleet deadlocked, and the run cannot produce a correct result.
const BARRIER_TIMEOUT: Duration = Duration::from_secs(120);

/// Barrier bookkeeping shared with the reader threads, tracked per peer:
/// generations are strictly increasing on each connection, so "peer `p`
/// reached generation `g`" is simply `gens[p] >= g`. Per-peer tracking
/// (rather than a per-generation count) makes teardown races benign — a
/// peer closing its connection after its final token is harmless, while a
/// peer dying *before* delivering an awaited token is detected.
#[derive(Debug, Default)]
struct BarrierState {
    /// Highest barrier generation received from each peer. The own slot
    /// — and every peer without a live connection (a scheduled joiner
    /// that has not been admitted yet, or a retired leaver) — is
    /// pre-satisfied with `u64::MAX`, which is what scopes the wire
    /// barrier to the *current membership view*.
    gens: Vec<u64>,
    /// Peers whose connection reached EOF or errored.
    closed: Vec<bool>,
    /// Why a peer's connection was torn down, when the reader knows
    /// more than "closed" (a protocol violation, an io error) — surfaced
    /// through [`TransportError`] at the next barrier.
    reasons: Vec<Option<String>>,
}

/// Mailbox + barrier state one endpoint shares with its reader threads.
#[derive(Debug, Default)]
struct Shared {
    queue: Mutex<Vec<Envelope>>,
    barriers: Mutex<BarrierState>,
    barrier_cv: Condvar,
    wire_bytes_in: AtomicU64,
}

impl Shared {
    /// Handles one frame read off the connection to `peer`.
    fn on_frame(&self, peer: usize, frame: Frame, stats: &AtomicStats) {
        match frame {
            Frame::Data { payload, .. } => {
                stats.record_recv(payload.len() as u64);
                self.wire_bytes_in
                    .fetch_add((HEADER_LEN + payload.len()) as u64, Ordering::Relaxed);
                // The connection is the sender's identity (established by
                // the bootstrap hello); a frame's self-declared `from`
                // cannot re-attribute it, which would break canonical
                // ordering's per-sender FIFO invariant.
                lock(&self.queue).push(Envelope {
                    from: peer,
                    bytes: payload,
                });
            }
            Frame::Barrier { generation, .. } => {
                self.wire_bytes_in
                    .fetch_add((HEADER_LEN + 8) as u64, Ordering::Relaxed);
                let mut state = lock(&self.barriers);
                // The connection is the identity; generations only grow.
                state.gens[peer] = state.gens[peer].max(generation);
                self.barrier_cv.notify_all();
            }
            // Hello/join/welcome frames are consumed during bootstrap or
            // admission; one arriving later is a protocol violation from
            // a peer — drop it.
            Frame::Hello { .. } | Frame::Join { .. } | Frame::Welcome { .. } => {}
        }
    }

    fn on_closed(&self, peer: usize, reason: Option<String>) {
        let mut state = lock(&self.barriers);
        state.closed[peer] = true;
        if state.reasons[peer].is_none() {
            state.reasons[peer] = reason;
        }
        self.barrier_cv.notify_all();
    }
}

/// One node's endpoint on a TCP fabric. See the module docs.
pub struct TcpEndpoint {
    id: usize,
    n: usize,
    /// Write halves, indexed by peer id (`None` at the own index, at
    /// peers without a live connection — scheduled joiners not yet
    /// admitted — and at retired leavers).
    writers: Vec<Option<TcpStream>>,
    /// The listening socket, retained after bootstrap so scheduled
    /// joiners can be admitted mid-run (`None` for loopback-fabric
    /// endpoints, which are fully pre-connected).
    listener: Option<TcpListener>,
    shared: Arc<Shared>,
    stats: Arc<AtomicStats>,
    /// Barrier generation this endpoint has entered.
    generation: u64,
    wire_bytes_out: u64,
    /// Late-attestation evidence carried by admitted `Join` frames,
    /// keyed by joiner id, drained by [`Endpoint::join_evidence`].
    evidence: HashMap<usize, Vec<u8>>,
    /// Join connections that dialed in **early** — a joiner process may
    /// start (and dial) long before its scheduled epoch, even while the
    /// founders are still bootstrapping their mesh. They wait here,
    /// outside the barrier set, until [`TcpEndpoint::view_sync`] admits
    /// them at the epoch the shared schedule names.
    parked: Vec<(usize, u64, Vec<u8>, TcpStream)>,
    readers: Vec<JoinHandle<()>>,
}

impl TcpEndpoint {
    /// Assembles an endpoint from established peer connections and spawns
    /// one reader thread per connection. Peers without a connection are
    /// pre-satisfied in the barrier state (outside the current view)
    /// until [`TcpEndpoint::view_sync`] admits them.
    fn from_streams(
        id: usize,
        writers: Vec<Option<TcpStream>>,
        listener: Option<TcpListener>,
    ) -> io::Result<Self> {
        let n = writers.len();
        let shared = Arc::new(Shared {
            barriers: Mutex::new(BarrierState {
                gens: (0..n)
                    .map(|p| {
                        if p == id || writers[p].is_none() {
                            u64::MAX
                        } else {
                            0
                        }
                    })
                    .collect(),
                closed: vec![false; n],
                reasons: vec![None; n],
            }),
            ..Shared::default()
        });
        let mut endpoint = TcpEndpoint {
            id,
            n,
            writers: (0..n).map(|_| None).collect(),
            listener,
            shared,
            stats: Arc::new(AtomicStats::default()),
            generation: 0,
            wire_bytes_out: 0,
            evidence: HashMap::new(),
            parked: Vec::new(),
            readers: Vec::new(),
        };
        for (peer, stream) in writers.into_iter().enumerate() {
            let Some(stream) = stream else { continue };
            endpoint.attach(peer, stream)?;
        }
        Ok(endpoint)
    }

    /// Wires one established connection in: nodelay, reader thread,
    /// write half. The caller is responsible for the barrier-state
    /// bookkeeping (bootstrap pre-sets it; admission aligns it to the
    /// current generation).
    fn attach(&mut self, peer: usize, stream: TcpStream) -> io::Result<()> {
        stream.set_nodelay(true)?;
        let read_half = stream.try_clone()?;
        let shared = Arc::clone(&self.shared);
        let stats = Arc::clone(&self.stats);
        self.readers.push(std::thread::spawn(move || {
            reader_loop(peer, read_half, &shared, &stats);
        }));
        self.writers[peer] = Some(stream);
        Ok(())
    }

    /// Bootstraps the distributed endpoint for node `id`: binds
    /// `addrs[id]`, dials every higher-id peer (retrying until `timeout`
    /// while that peer starts up), accepts one connection from every
    /// lower-id peer, and identifies each accepted connection by its
    /// opening [`Frame::Hello`].
    pub fn connect(id: usize, addrs: &[SocketAddr], timeout: Duration) -> io::Result<TcpEndpoint> {
        let all: Vec<usize> = (0..addrs.len()).collect();
        Self::connect_among(id, addrs, &all, timeout)
    }

    /// [`TcpEndpoint::connect`] over a **subset** of the id space: the
    /// mesh spans only `peers` (which must contain `id`) — the founding
    /// members of a dynamic-membership cluster. Ids outside `peers` stay
    /// unconnected and outside the barrier set until
    /// [`Endpoint::view_sync`] admits them at their scheduled join
    /// epoch.
    pub fn connect_among(
        id: usize,
        addrs: &[SocketAddr],
        peers: &[usize],
        timeout: Duration,
    ) -> io::Result<TcpEndpoint> {
        let n = addrs.len();
        assert!(id < n, "node id {id} outside cluster of {n}");
        assert!(peers.contains(&id), "node {id} outside its own mesh");
        let deadline = Instant::now() + timeout;
        // Retry AddrInUse within the deadline: ports reserved via
        // [`reserve_loopback_addrs`] are released before this rebind, so
        // another process can hold one transiently (e.g. parallel test
        // suites reserving their own clusters).
        let listener = loop {
            match TcpListener::bind(addrs[id]) {
                Ok(l) => break l,
                Err(e) if e.kind() == io::ErrorKind::AddrInUse && Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => return Err(e),
            }
        };

        let mut writers: Vec<Option<TcpStream>> = (0..n).map(|_| None).collect();

        // Dial upward: peer listeners may not be up yet, so retry.
        for &peer in peers.iter().filter(|&&p| p > id) {
            let addr = &addrs[peer];
            let stream = loop {
                match TcpStream::connect(addr) {
                    Ok(s) => break s,
                    Err(e) => {
                        if Instant::now() >= deadline {
                            return Err(io::Error::new(
                                io::ErrorKind::TimedOut,
                                format!("node {id}: dialing peer {peer} at {addr}: {e}"),
                            ));
                        }
                        std::thread::sleep(Duration::from_millis(20));
                    }
                }
            };
            stream.set_nodelay(true)?;
            write_frame(&mut &stream, &Frame::Hello { from: id })?;
            writers[peer] = Some(stream);
        }

        // Accept downward: every lower-id mesh peer will dial us; their
        // hello says who they are. A scheduled joiner's process may dial
        // in at any point (it starts whenever it starts) — its opening
        // `Join` frame identifies it, and the connection is parked until
        // its epoch's admission instead of failing the bootstrap.
        let expected_hellos = peers.iter().filter(|&&p| p < id).count();
        let mut hellos = 0;
        let mut parked: Vec<(usize, u64, Vec<u8>, TcpStream)> = Vec::new();
        while hellos < expected_hellos {
            listener.set_nonblocking(true)?;
            let (stream, _) = loop {
                match listener.accept() {
                    Ok(conn) => break conn,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        if Instant::now() >= deadline {
                            return Err(io::Error::new(
                                io::ErrorKind::TimedOut,
                                format!("node {id}: waiting for lower-id peers"),
                            ));
                        }
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(e) => return Err(e),
                }
            };
            stream.set_nonblocking(false)?;
            match read_first_frame(&stream, deadline)? {
                Frame::Hello { from: peer }
                    if peer < n
                        && writers[peer].is_none()
                        && peer != id
                        && peers.contains(&peer) =>
                {
                    writers[peer] = Some(stream);
                    hellos += 1;
                }
                Frame::Join {
                    from,
                    epoch,
                    evidence,
                } if from < n
                    && from != id
                    && !peers.contains(&from)
                    && parked.iter().all(|(p, ..)| *p != from) =>
                {
                    parked.push((from, epoch, evidence, stream));
                }
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("node {id}: bogus bootstrap frame {other:?}"),
                    ));
                }
            }
        }

        // Back to blocking: the retained listener serves mid-run join
        // admissions, which manage their own deadlines.
        listener.set_nonblocking(false)?;
        let mut endpoint = Self::from_streams(id, writers, Some(listener))?;
        endpoint.parked = parked;
        Ok(endpoint)
    }

    /// Bootstraps the endpoint of a **scheduled joiner**: binds
    /// `addrs[id]`, dials every node in `dial` (the members it joins,
    /// plus any same-epoch joiner with a higher id), opening each
    /// connection with a [`Frame::Join`] carrying `epoch` and the
    /// late-attestation `evidence`; waits for every dialed peer's
    /// [`Frame::Welcome`] (members send it when the shared schedule
    /// reaches the join epoch, so this blocks until the running cluster
    /// arrives there); then accepts one `Join` from every same-epoch
    /// joiner in `accept_from` (lower ids dial higher ids) and welcomes
    /// them at the learned generation.
    ///
    /// Returns the endpoint with its barrier generation aligned to the
    /// running cluster's, ready to enter the join epoch's view barrier.
    ///
    /// # Errors
    /// On socket failure, timeout, disagreeing welcome generations (the
    /// cluster and this process follow different schedules), or a
    /// protocol-violating peer.
    pub fn connect_as_joiner(
        id: usize,
        addrs: &[SocketAddr],
        epoch: usize,
        dial: &[usize],
        accept_from: &[usize],
        evidence: Vec<u8>,
        timeout: Duration,
    ) -> Result<TcpEndpoint, TransportError> {
        let n = addrs.len();
        assert!(id < n, "node id {id} outside cluster of {n}");
        let deadline = Instant::now() + timeout;
        let listener = TcpListener::bind(addrs[id]).map_err(TransportError::from)?;

        // Dial everyone first (connections complete via the peers'
        // listener backlogs even before they admit), so no admission
        // order can deadlock.
        let mut writers: Vec<Option<TcpStream>> = (0..n).map(|_| None).collect();
        for &peer in dial {
            assert!(
                peer < n && peer != id,
                "joiner {id} dialing bogus peer {peer}"
            );
            let stream = loop {
                match TcpStream::connect(addrs[peer]) {
                    Ok(s) => break s,
                    Err(e) => {
                        if Instant::now() >= deadline {
                            return Err(TransportError::Timeout {
                                what: format!("joiner {id}: dialing peer {peer}: {e}"),
                            });
                        }
                        std::thread::sleep(Duration::from_millis(20));
                    }
                }
            };
            stream.set_nodelay(true).map_err(TransportError::from)?;
            write_frame(
                &mut &stream,
                &Frame::Join {
                    from: id,
                    epoch: epoch as u64,
                    evidence: evidence.clone(),
                },
            )
            .map_err(TransportError::from)?;
            writers[peer] = Some(stream);
        }

        // Collect every dialed peer's welcome. They all arrive at the
        // same schedule point, so the generations must agree.
        let mut generation = None;
        for &peer in dial {
            let stream = writers[peer].as_ref().expect("dialed above");
            let (w_epoch, w_gen) = read_welcome(stream, peer, deadline)?;
            if w_epoch != epoch as u64 {
                return Err(TransportError::Protocol {
                    peer,
                    detail: format!("welcomed epoch {w_epoch}, expected {epoch}"),
                });
            }
            if *generation.get_or_insert(w_gen) != w_gen {
                return Err(TransportError::Protocol {
                    peer,
                    detail: format!(
                        "welcome generation {w_gen} disagrees with {}",
                        generation.unwrap_or_default()
                    ),
                });
            }
        }
        let generation = generation.unwrap_or(0);

        // Same-epoch joiners with lower ids dial us; welcome them at the
        // generation the members taught us. A *later* epoch's joiner may
        // also dial in early (its process starts whenever it starts) —
        // park that connection for its own admission, exactly like the
        // founder bootstrap and `view_sync` admissions do.
        let mut pending: Vec<usize> = accept_from.to_vec();
        let mut parked: Vec<(usize, u64, Vec<u8>, TcpStream)> = Vec::new();
        while !pending.is_empty() {
            let (stream, remote) = accept_until(&listener, deadline, id)?;
            let (peer, join_epoch, peer_evidence) = read_join(&stream, remote, deadline)?;
            if pending.contains(&peer) && join_epoch == epoch as u64 {
                pending.retain(|&p| p != peer);
                write_frame(
                    &mut &stream,
                    &Frame::Welcome {
                        from: id,
                        epoch: epoch as u64,
                        generation,
                    },
                )
                .map_err(TransportError::from)?;
                writers[peer] = Some(stream);
            } else if peer < n
                && peer != id
                && join_epoch > epoch as u64
                && writers[peer].is_none()
                && parked.iter().all(|(p, ..)| *p != peer)
            {
                parked.push((peer, join_epoch, peer_evidence, stream));
            } else {
                return Err(TransportError::Protocol {
                    peer,
                    detail: format!("unexpected join for epoch {join_epoch} at joiner {id}"),
                });
            }
        }

        let mut endpoint =
            Self::from_streams(id, writers, Some(listener)).map_err(TransportError::from)?;
        endpoint.generation = generation;
        endpoint.parked = parked;
        Ok(endpoint)
    }

    /// This endpoint's node id.
    #[must_use]
    pub fn id(&self) -> usize {
        self.id
    }

    /// Physical wire volume `(bytes_out, bytes_in)` including frame
    /// headers and control frames — the framing overhead excluded from
    /// [`TrafficStats`].
    #[must_use]
    pub fn wire_traffic(&self) -> (u64, u64) {
        (
            self.wire_bytes_out,
            self.shared.wire_bytes_in.load(Ordering::Relaxed),
        )
    }

    /// Sends one data frame to `to`, accounting payload bytes at the
    /// frame layer.
    ///
    /// # Panics
    /// On self-send or unknown destination (protocol bugs).
    pub fn send(&mut self, to: usize, bytes: Vec<u8>) {
        assert_ne!(to, self.id, "self-send");
        let stream = self.writers[to]
            .as_ref()
            .expect("destination is this endpoint");
        self.stats.record_send(bytes.len() as u64);
        self.wire_bytes_out += (HEADER_LEN + bytes.len()) as u64;
        // Write failure = peer finished and closed; losing the message is
        // fine for the epoch-bounded experiments (mirrors the channel
        // backend's dropped-receiver policy).
        let _ = write_frame(
            &mut &*stream,
            &Frame::Data {
                from: self.id,
                payload: bytes,
            },
        );
    }

    /// Phase one of the round barrier: announce this endpoint's new
    /// generation to every peer.
    fn sync_begin(&mut self) {
        self.generation += 1;
        for stream in self.writers.iter().flatten() {
            self.wire_bytes_out += (HEADER_LEN + 8) as u64;
            let _ = write_frame(
                &mut &*stream,
                &Frame::Barrier {
                    from: self.id,
                    generation: self.generation,
                },
            );
        }
    }

    /// Phase two: wait until every peer's token of the current generation
    /// arrived (hence, by FIFO, every message they sent before it).
    /// Surfaces a dead peer or a timed-out round as a
    /// [`TransportError`] — the fleet can no longer produce a correct
    /// result, and the caller decides whether that panics (the engine)
    /// or exits cleanly (the deployed binary).
    fn sync_wait(&self) -> Result<(), TransportError> {
        let g = self.generation;
        let deadline = Instant::now() + BARRIER_TIMEOUT;
        let mut state = lock(&self.shared.barriers);
        loop {
            if state.gens.iter().all(|&seen| seen >= g) {
                return Ok(());
            }
            if let Some(peer) = state
                .gens
                .iter()
                .zip(&state.closed)
                .position(|(&seen, &closed)| closed && seen < g)
            {
                let detail = state.reasons[peer]
                    .clone()
                    .unwrap_or_else(|| format!("disconnected before barrier {g}"));
                return Err(TransportError::PeerLost { peer, detail });
            }
            let timeout = deadline.saturating_duration_since(Instant::now());
            if timeout.is_zero() {
                return Err(TransportError::Timeout {
                    what: format!("node {}: barrier {g}", self.id),
                });
            }
            let (guard, _) = self
                .shared
                .barrier_cv
                .wait_timeout(state, timeout.min(Duration::from_millis(100)))
                .unwrap_or_else(PoisonError::into_inner);
            state = guard;
        }
    }

    /// Admits the pending `Join` connections of `expected` (scheduled
    /// joiners of `epoch` that dialed this node), in arrival order:
    /// accept, validate the `Join` frame against the schedule, stash its
    /// evidence, reply [`Frame::Welcome`] with the current barrier
    /// generation, and wire the connection into the mailbox and barrier
    /// set at that generation.
    fn admit(&mut self, epoch: usize, expected: &[usize]) -> Result<(), TransportError> {
        if expected.is_empty() {
            return Ok(());
        }
        // Temporarily detach the listener so admissions can mutate the
        // endpoint while accepting (restored below on every path).
        let Some(listener) = self.listener.take() else {
            return Err(TransportError::Io {
                detail: format!(
                    "node {}: no listener to admit joiners {expected:?}",
                    self.id
                ),
            });
        };
        let result = self.admit_on(&listener, epoch, expected);
        self.listener = Some(listener);
        result
    }

    fn admit_on(
        &mut self,
        listener: &TcpListener,
        epoch: usize,
        expected: &[usize],
    ) -> Result<(), TransportError> {
        let deadline = Instant::now() + BARRIER_TIMEOUT;
        let mut pending: Vec<usize> = expected.to_vec();

        // Early dial-ins parked during bootstrap (or a previous
        // admission) first; connections for later epochs stay parked.
        for (peer, join_epoch, evidence, stream) in std::mem::take(&mut self.parked) {
            if pending.contains(&peer) {
                if join_epoch != epoch as u64 {
                    return Err(TransportError::Protocol {
                        peer,
                        detail: format!("joined for epoch {join_epoch}, schedule says {epoch}"),
                    });
                }
                pending.retain(|&p| p != peer);
                self.welcome_and_attach(peer, epoch, evidence, stream)?;
            } else {
                self.parked.push((peer, join_epoch, evidence, stream));
            }
        }

        while !pending.is_empty() {
            let (stream, remote) = accept_until(listener, deadline, self.id)?;
            let (peer, join_epoch, evidence) = read_join(&stream, remote, deadline)?;
            if pending.contains(&peer) {
                if join_epoch != epoch as u64 {
                    return Err(TransportError::Protocol {
                        peer,
                        detail: format!("joined for epoch {join_epoch}, schedule says {epoch}"),
                    });
                }
                pending.retain(|&p| p != peer);
                self.welcome_and_attach(peer, epoch, evidence, stream)?;
            } else if peer < self.n
                && peer != self.id
                && self.writers[peer].is_none()
                && self.parked.iter().all(|(p, ..)| *p != peer)
            {
                // A later epoch's joiner dialing early: park it.
                self.parked.push((peer, join_epoch, evidence, stream));
            } else {
                return Err(TransportError::Protocol {
                    peer,
                    detail: format!(
                        "unexpected join at node {} (expected {expected:?} at epoch {epoch})",
                        self.id
                    ),
                });
            }
        }
        Ok(())
    }

    /// Completes one admission: welcome the joiner at the current
    /// generation, stash its evidence, and wire the connection into the
    /// mailbox and barrier set.
    fn welcome_and_attach(
        &mut self,
        peer: usize,
        epoch: usize,
        evidence: Vec<u8>,
        stream: TcpStream,
    ) -> Result<(), TransportError> {
        write_frame(
            &mut &stream,
            &Frame::Welcome {
                from: self.id,
                epoch: epoch as u64,
                generation: self.generation,
            },
        )
        .map_err(TransportError::from)?;
        self.wire_bytes_out += (HEADER_LEN + 16) as u64;
        self.evidence.insert(peer, evidence);
        {
            let mut state = lock(&self.shared.barriers);
            state.gens[peer] = self.generation;
            state.closed[peer] = false;
            state.reasons[peer] = None;
        }
        self.attach(peer, stream).map_err(TransportError::from)
    }

    /// Retires a departed peer from the barrier set (its slot is
    /// pre-satisfied forever) and tears down the connection. Graceful:
    /// the leaver stopped participating at this exact schedule point, so
    /// nothing is in flight.
    fn retire(&mut self, peer: usize) {
        lock(&self.shared.barriers).gens[peer] = u64::MAX;
        if let Some(stream) = self.writers[peer].take() {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }

    /// Drains everything currently delivered, without blocking.
    pub fn try_drain(&self) -> Vec<Envelope> {
        std::mem::take(&mut *lock(&self.shared.queue))
    }

    /// Snapshot of this node's traffic stats.
    #[must_use]
    pub fn stats(&self) -> TrafficStats {
        self.stats.snapshot()
    }
}

impl Drop for TcpEndpoint {
    fn drop(&mut self) {
        // Shutdown (not just drop) so reader threads — ours via the
        // cloned read half, the peer's via FIN — wake up and exit.
        for stream in self.writers.iter().flatten() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        for handle in self.readers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Endpoint for TcpEndpoint {
    fn id(&self) -> usize {
        TcpEndpoint::id(self)
    }

    fn num_nodes(&self) -> usize {
        self.n
    }

    fn send(&mut self, to: usize, bytes: Vec<u8>) {
        TcpEndpoint::send(self, to, bytes);
    }

    fn recv(&mut self) -> Vec<Envelope> {
        let mut inbox = self.try_drain();
        canonicalize(&mut inbox);
        inbox
    }

    fn sync(&mut self) {
        self.try_sync()
            .unwrap_or_else(|e| panic!("node {}: barrier failed: {e}", self.id));
    }

    fn try_sync(&mut self) -> Result<(), TransportError> {
        self.sync_begin();
        self.sync_wait()
    }

    fn try_drain_barrier(&mut self) -> Result<(), TransportError> {
        // TCP's drain barrier is a full wire barrier (the default
        // `drain_barrier` = `sync`); this is its fallible form.
        self.sync_begin();
        self.sync_wait()
    }

    fn view_sync(
        &mut self,
        epoch: usize,
        joined: &[usize],
        left: &[usize],
    ) -> Result<(), TransportError> {
        for &l in left {
            if l != self.id {
                self.retire(l);
            }
        }
        // Admit only joiners we are not already connected to: on a
        // pre-connected loopback fabric (or for the joiner itself) this
        // is a no-op, on a distributed member it accepts the pending
        // dial-ins.
        let expected: Vec<usize> = joined
            .iter()
            .copied()
            .filter(|&j| j != self.id && self.writers[j].is_none())
            .collect();
        self.admit(epoch, &expected)
    }

    fn join_evidence(&mut self, peer: usize) -> Option<Vec<u8>> {
        self.evidence.remove(&peer)
    }

    fn stats(&self) -> TrafficStats {
        TcpEndpoint::stats(self)
    }
}

/// Decodes frames off the connection to `peer` into the owner's mailbox
/// until EOF or error. Never panics: a hostile or broken peer is
/// recorded as a closed connection with a reason, which the next
/// barrier surfaces as a [`TransportError`].
fn reader_loop(peer: usize, stream: TcpStream, shared: &Shared, stats: &AtomicStats) {
    let mut reader = io::BufReader::new(stream);
    let reason = loop {
        match read_frame(&mut reader) {
            Ok(Some(frame)) => shared.on_frame(peer, frame, stats),
            Ok(None) => break None, // clean EOF at a frame boundary
            Err(FrameError::Io(e)) => break Some(format!("connection error: {e}")),
            Err(FrameError::Invalid(m)) => break Some(format!("sent an invalid frame: {m}")),
        }
    };
    shared.on_closed(peer, reason);
}

/// Accepts one connection, bounded by `deadline`.
fn accept_until(
    listener: &TcpListener,
    deadline: Instant,
    id: usize,
) -> Result<(TcpStream, SocketAddr), TransportError> {
    listener
        .set_nonblocking(true)
        .map_err(TransportError::from)?;
    let conn = loop {
        match listener.accept() {
            Ok(conn) => break conn,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    return Err(TransportError::Timeout {
                        what: format!("node {id}: accepting a join connection"),
                    });
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => return Err(e.into()),
        }
    };
    listener
        .set_nonblocking(false)
        .map_err(TransportError::from)?;
    conn.0
        .set_nonblocking(false)
        .map_err(TransportError::from)?;
    Ok(conn)
}

/// Reads the opening [`Frame::Join`] off a fresh connection, bounded by
/// `deadline`. Returns `(joiner, epoch, evidence)`.
fn read_join(
    stream: &TcpStream,
    remote: SocketAddr,
    deadline: Instant,
) -> Result<(usize, u64, Vec<u8>), TransportError> {
    let budget = deadline.saturating_duration_since(Instant::now());
    stream
        .set_read_timeout(Some(budget.max(Duration::from_millis(10))))
        .map_err(TransportError::from)?;
    let result = match read_frame(&mut &*stream) {
        Ok(Some(Frame::Join {
            from,
            epoch,
            evidence,
        })) => Ok((from, epoch, evidence)),
        Ok(other) => Err(TransportError::Protocol {
            peer: TransportError::UNIDENTIFIED_PEER,
            detail: format!("dialer at {remote}: expected join, got {other:?}"),
        }),
        Err(FrameError::Io(e)) => Err(e.into()),
        Err(e @ FrameError::Invalid(_)) => Err(TransportError::Protocol {
            peer: TransportError::UNIDENTIFIED_PEER,
            detail: format!("dialer at {remote}: {e}"),
        }),
    };
    stream
        .set_read_timeout(None)
        .map_err(TransportError::from)?;
    result
}

/// Reads the [`Frame::Welcome`] a dialed member replies with, bounded by
/// `deadline`. Returns `(epoch, generation)`.
fn read_welcome(
    stream: &TcpStream,
    peer: usize,
    deadline: Instant,
) -> Result<(u64, u64), TransportError> {
    let budget = deadline.saturating_duration_since(Instant::now());
    stream
        .set_read_timeout(Some(budget.max(Duration::from_millis(10))))
        .map_err(TransportError::from)?;
    let result = match read_frame(&mut &*stream) {
        Ok(Some(Frame::Welcome {
            epoch, generation, ..
        })) => Ok((epoch, generation)),
        Ok(other) => Err(TransportError::Protocol {
            peer,
            detail: format!("expected welcome, got {other:?}"),
        }),
        Err(FrameError::Io(e)) => Err(e.into()),
        Err(e @ FrameError::Invalid(_)) => Err(TransportError::Protocol {
            peer,
            detail: e.to_string(),
        }),
    };
    stream
        .set_read_timeout(None)
        .map_err(TransportError::from)?;
    result
}

/// Reads the first frame off a fresh connection, bounded by `deadline`
/// (bootstrap hellos and early join dial-ins).
fn read_first_frame(stream: &TcpStream, deadline: Instant) -> io::Result<Frame> {
    let budget = deadline.saturating_duration_since(Instant::now());
    stream.set_read_timeout(Some(budget.max(Duration::from_millis(10))))?;
    let result = match read_frame(&mut &*stream) {
        Ok(Some(frame)) => Ok(frame),
        Ok(None) => Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "eof before the bootstrap frame",
        )),
        Err(FrameError::Io(e)) => Err(e),
        Err(e @ FrameError::Invalid(_)) => {
            Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
        }
    };
    stream.set_read_timeout(None)?;
    result
}

/// Reads the bootstrap hello off a fresh connection, bounded by
/// `deadline`.
fn read_hello(stream: &TcpStream, deadline: Instant) -> io::Result<usize> {
    match read_first_frame(stream, deadline)? {
        Frame::Hello { from } => Ok(from),
        other => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("expected hello, got {other:?}"),
        )),
    }
}

/// Reserves `n` distinct loopback addresses by binding ephemeral
/// listeners and releasing them (listeners set `SO_REUSEADDR`, so the
/// ports rebind immediately). Used by the multi-process launcher and
/// tests to pre-agree on a cluster address map.
pub fn reserve_loopback_addrs(n: usize) -> io::Result<Vec<SocketAddr>> {
    // Hold all listeners before dropping any so the same port is never
    // handed out twice.
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0"))
        .collect::<io::Result<_>>()?;
    listeners.iter().map(TcpListener::local_addr).collect()
}

/// A fully connected TCP fabric whose `n` endpoints all live in this
/// process, wired over loopback sockets. See the module docs.
pub struct TcpTransport {
    endpoints: Vec<TcpEndpoint>,
}

impl TcpTransport {
    /// Builds the fabric: binds `n` ephemeral loopback listeners and
    /// connects every pair (`i` dials `j` for `i < j`, with the same
    /// hello handshake the distributed bootstrap uses).
    pub fn loopback(n: usize) -> io::Result<Self> {
        let listeners: Vec<TcpListener> = (0..n)
            .map(|_| TcpListener::bind("127.0.0.1:0"))
            .collect::<io::Result<_>>()?;
        let addrs: Vec<SocketAddr> = listeners
            .iter()
            .map(TcpListener::local_addr)
            .collect::<io::Result<_>>()?;

        let mut streams: Vec<Vec<Option<TcpStream>>> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        let deadline = Instant::now() + DEFAULT_CONNECT_TIMEOUT;
        // Both loop variables index the connection matrix symmetrically.
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            for j in (i + 1)..n {
                // The listener backlog completes the handshake without an
                // accept() call, so same-thread connect-then-accept is
                // safe.
                let dialed = TcpStream::connect(addrs[j])?;
                dialed.set_nodelay(true)?;
                write_frame(&mut &dialed, &Frame::Hello { from: i })?;
                let (accepted, _) = listeners[j].accept()?;
                accepted.set_nodelay(true)?;
                let peer = read_hello(&accepted, deadline)?;
                debug_assert_eq!(peer, i, "loopback hello mismatch");
                streams[i][j] = Some(dialed);
                streams[j][i] = Some(accepted);
            }
        }

        let endpoints = streams
            .into_iter()
            .enumerate()
            .map(|(id, writers)| TcpEndpoint::from_streams(id, writers, None))
            .collect::<io::Result<Vec<_>>>()?;
        Ok(TcpTransport { endpoints })
    }
}

impl Transport for TcpTransport {
    type Endpoint = TcpEndpoint;

    fn num_nodes(&self) -> usize {
        self.endpoints.len()
    }

    fn send(&mut self, from: usize, to: usize, bytes: Vec<u8>) {
        self.endpoints[from].send(to, bytes);
    }

    fn recv(&mut self, node: usize) -> Vec<Envelope> {
        let mut inbox = self.endpoints[node].try_drain();
        canonicalize(&mut inbox);
        inbox
    }

    fn flush(&mut self) {
        // Two-phase across all owned endpoints: everyone announces the
        // new generation, then everyone waits — a single-threaded caller
        // must not wait on an endpoint before the others have sent their
        // tokens.
        for ep in &mut self.endpoints {
            ep.sync_begin();
        }
        for ep in &self.endpoints {
            ep.sync_wait()
                .unwrap_or_else(|e| panic!("node {}: barrier failed: {e}", ep.id));
        }
    }

    fn stats(&self, node: usize) -> TrafficStats {
        self.endpoints[node].stats()
    }

    fn all_stats(&self) -> Vec<TrafficStats> {
        self.endpoints.iter().map(TcpEndpoint::stats).collect()
    }

    fn into_endpoints(self) -> Option<Vec<TcpEndpoint>> {
        Some(self.endpoints)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_delivery_canonical_order_and_stats() {
        let mut net = TcpTransport::loopback(3).unwrap();
        Transport::send(&mut net, 2, 0, vec![1, 2, 3]);
        Transport::send(&mut net, 1, 0, vec![4]);
        Transport::send(&mut net, 2, 0, vec![5, 5]);
        net.flush();
        let inbox = Transport::recv(&mut net, 0);
        let order: Vec<(usize, usize)> = inbox.iter().map(|e| (e.from, e.bytes.len())).collect();
        assert_eq!(order, vec![(1, 1), (2, 3), (2, 2)]);

        // Payload-only accounting, both ends.
        assert_eq!(net.stats(0).bytes_in, 6);
        assert_eq!(net.stats(0).msgs_in, 3);
        assert_eq!(net.stats(2).bytes_out, 5);
        assert_eq!(net.stats(2).msgs_out, 2);
        assert_eq!(net.stats(1).bytes_out, 1);

        // The wire itself carried more (headers + barrier tokens).
        let (wire_out, _) = net.endpoints[2].wire_traffic();
        assert!(wire_out > 5);
    }

    #[test]
    fn endpoint_sync_guarantees_delivery() {
        let net = TcpTransport::loopback(2).unwrap();
        let mut eps = net.into_endpoints().unwrap();
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        let handle = std::thread::spawn(move || {
            Endpoint::sync(&mut b);
            // After the barrier, a's pre-barrier send must be here.
            let inbox = Endpoint::recv(&mut b);
            assert_eq!(inbox.len(), 1);
            assert_eq!(inbox[0].bytes, vec![7; 1000]);
            Endpoint::send(&mut b, 0, vec![9]);
            Endpoint::sync(&mut b);
            b.stats()
        });
        Endpoint::send(&mut a, 1, vec![7; 1000]);
        Endpoint::sync(&mut a);
        Endpoint::sync(&mut a);
        let inbox = Endpoint::recv(&mut a);
        assert_eq!(inbox.len(), 1);
        assert_eq!(inbox[0].bytes, vec![9]);
        let b_stats = handle.join().unwrap();
        assert_eq!(b_stats.bytes_in, 1000);
        assert_eq!(b_stats.bytes_out, 1);
        assert_eq!(a.stats().bytes_out, 1000);
        assert_eq!(a.stats().bytes_in, 1);
    }

    #[test]
    fn distributed_bootstrap_connects_full_mesh() {
        let addrs = reserve_loopback_addrs(3).unwrap();
        let handles: Vec<_> = (0..3)
            .map(|id| {
                let addrs = addrs.clone();
                std::thread::spawn(move || {
                    let mut ep = TcpEndpoint::connect(id, &addrs, Duration::from_secs(10)).unwrap();
                    // Everyone greets everyone, then proves the barrier
                    // delivered all greetings.
                    for peer in 0..3 {
                        if peer != id {
                            Endpoint::send(&mut ep, peer, vec![id as u8]);
                        }
                    }
                    Endpoint::sync(&mut ep);
                    let inbox = Endpoint::recv(&mut ep);
                    let senders: Vec<usize> = inbox.iter().map(|e| e.from).collect();
                    let expected: Vec<usize> = (0..3).filter(|&p| p != id).collect();
                    assert_eq!(senders, expected);
                    ep.stats()
                })
            })
            .collect();
        for h in handles {
            let stats = h.join().unwrap();
            assert_eq!(stats.msgs_out, 2);
            assert_eq!(stats.msgs_in, 2);
            assert_eq!(stats.bytes_in, 2);
        }
    }

    #[test]
    fn single_node_fabric_is_trivial() {
        let mut net = TcpTransport::loopback(1).unwrap();
        net.flush();
        assert!(Transport::recv(&mut net, 0).is_empty());
        assert_eq!(net.stats(0), TrafficStats::default());
    }

    #[test]
    #[should_panic(expected = "self-send")]
    fn self_send_panics() {
        let net = TcpTransport::loopback(2).unwrap();
        let mut eps = net.into_endpoints().unwrap();
        let mut a = eps.remove(0);
        Endpoint::send(&mut a, 0, vec![1]);
    }

    #[test]
    fn joiner_is_admitted_into_mesh_barrier_and_mailboxes() {
        // 2 founders (ids 0, 1) mesh among themselves; node 2 joins at
        // "epoch 1": founders admit via view_sync, the joiner dials in
        // with a Join frame carrying evidence, everyone barrier-syncs
        // together afterwards and data flows both ways. Finally node 0
        // "leaves" and the survivors' barrier keeps working.
        // Every thread follows the deployed node-loop shape per epoch:
        // [transition: view_sync + view barrier] → recv → drain_barrier
        // → send → sync.
        let addrs = reserve_loopback_addrs(3).unwrap();
        let founders = vec![0usize, 1];
        let founder = |id: usize, addrs: Vec<SocketAddr>| {
            let founders = founders.clone();
            std::thread::spawn(move || {
                let mut ep =
                    TcpEndpoint::connect_among(id, &addrs, &founders, Duration::from_secs(10))
                        .unwrap();
                // Epoch 0: one round between the founders only.
                assert!(Endpoint::recv(&mut ep).is_empty());
                ep.drain_barrier();
                Endpoint::send(&mut ep, 1 - id, vec![id as u8]);
                Endpoint::sync(&mut ep);

                // Epoch 1: admit the joiner, check its evidence, view
                // barrier (where a sponsor's bootstrap would travel).
                ep.view_sync(1, &[2], &[]).unwrap();
                assert_eq!(ep.join_evidence(2).as_deref(), Some(&b"quote"[..]));
                assert!(ep.join_evidence(2).is_none(), "evidence drains");
                ep.try_sync().unwrap();
                assert_eq!(Endpoint::recv(&mut ep).len(), 1, "epoch-0 round");
                ep.drain_barrier();
                Endpoint::send(&mut ep, 2, vec![10 + id as u8]);
                ep.try_sync().unwrap();

                // Epoch 2: node 0 departs gracefully before any barrier;
                // node 1 retires it and continues with the joiner.
                if id == 0 {
                    return ep.stats();
                }
                ep.view_sync(2, &[], &[0]).unwrap();
                ep.try_sync().unwrap();
                let from_joiner = Endpoint::recv(&mut ep);
                assert_eq!(from_joiner.len(), 1);
                assert_eq!(from_joiner[0].from, 2);
                ep.drain_barrier();
                Endpoint::send(&mut ep, 2, vec![99]);
                ep.try_sync().unwrap();
                ep.stats()
            })
        };
        let f0 = founder(0, addrs.clone());
        let f1 = founder(1, addrs.clone());

        let joiner = std::thread::spawn({
            let addrs = addrs.clone();
            move || {
                let mut ep = TcpEndpoint::connect_as_joiner(
                    2,
                    &addrs,
                    1,
                    &[0, 1],
                    &[],
                    b"quote".to_vec(),
                    Duration::from_secs(10),
                )
                .unwrap();
                // Epoch 1, from the view barrier onward.
                ep.try_sync().unwrap();
                assert!(Endpoint::recv(&mut ep).is_empty());
                ep.drain_barrier();
                Endpoint::send(&mut ep, 0, vec![42]);
                Endpoint::send(&mut ep, 1, vec![42]);
                ep.try_sync().unwrap();

                // Epoch 2: node 0 left; rounds continue with node 1.
                ep.view_sync(2, &[], &[0]).unwrap();
                ep.try_sync().unwrap();
                let inbox = Endpoint::recv(&mut ep);
                let got: Vec<(usize, u8)> = inbox.iter().map(|e| (e.from, e.bytes[0])).collect();
                assert_eq!(got, vec![(0, 10), (1, 11)]);
                ep.drain_barrier();
                ep.try_sync().unwrap();

                // Epoch 3 drain: node 1's epoch-2 message.
                let inbox = Endpoint::recv(&mut ep);
                assert_eq!(inbox.len(), 1);
                assert_eq!(inbox[0].bytes, vec![99]);
                ep.stats()
            }
        });

        let s0 = f0.join().unwrap();
        let s1 = f1.join().unwrap();
        let s2 = joiner.join().unwrap();
        // Payload accounting covers the join-era traffic; control frames
        // (join/welcome/barrier) stay out of it.
        assert_eq!(s0.msgs_out, 2); // founder round + to joiner
        assert_eq!(s1.msgs_out, 3); // + post-leave send
        assert_eq!(s2.msgs_out, 2);
        assert_eq!(s2.msgs_in, 3);
    }

    #[test]
    fn barrier_surfaces_peer_death_as_transport_error() {
        let net = TcpTransport::loopback(2).unwrap();
        let mut eps = net.into_endpoints().unwrap();
        let b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        drop(b); // peer vanishes without serving the barrier
        let err = a.try_sync().expect_err("dead peer must surface");
        match err {
            TransportError::PeerLost { peer, .. } => assert_eq!(peer, 1),
            other => panic!("expected PeerLost, got {other}"),
        }
    }

    #[test]
    fn invalid_frames_surface_reason_not_panic() {
        // A hostile peer writes garbage: the reader thread records the
        // reason and the next barrier reports it instead of panicking.
        let addrs = reserve_loopback_addrs(2).unwrap();
        let victim = {
            let addrs = addrs.clone();
            std::thread::spawn(move || {
                let mut ep = TcpEndpoint::connect(0, &addrs, Duration::from_secs(10)).unwrap();
                ep.try_sync().expect_err("hostile peer must surface")
            })
        };
        let hostile = std::thread::spawn(move || {
            use std::io::Write;
            let mut ep = TcpEndpoint::connect(1, &addrs, Duration::from_secs(10)).unwrap();
            // Raw garbage straight onto the wire, then hang up.
            let stream = ep.writers[0].take().unwrap();
            write_frame(&mut &stream, &Frame::Hello { from: 1 }).unwrap(); // ignored, legal
            (&stream).write_all(&[0xFF; 32]).unwrap();
            let _ = stream.shutdown(Shutdown::Both);
        });
        hostile.join().unwrap();
        let err = victim.join().unwrap();
        match err {
            TransportError::PeerLost { peer, detail } => {
                assert_eq!(peer, 1);
                assert!(detail.contains("invalid frame"), "detail: {detail}");
            }
            other => panic!("expected PeerLost, got {other}"),
        }
    }
}
