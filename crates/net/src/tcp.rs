//! Real-socket TCP transport: the deployment backend the paper's 8-node
//! SGX testbed corresponds to.
//!
//! [`TcpTransport`] implements [`Transport`] over genuine TCP connections
//! carrying the length-prefixed frames of [`crate::frame`]. It comes in
//! two shapes:
//!
//! * **Loopback fabric** ([`TcpTransport::loopback`]) — all `n` endpoints
//!   live in one process, fully connected over `127.0.0.1` sockets. This
//!   is what the cross-backend equivalence tests and the benches drive:
//!   every frame crosses the kernel's TCP stack, yet runs stay
//!   bit-identical with [`crate::mem::MemNetwork`] and
//!   [`crate::channel::ChannelTransport`].
//! * **Distributed endpoint** ([`TcpEndpoint::connect`]) — one endpoint
//!   per OS process, bootstrapped from a node-id → socket-address map.
//!   The `rex-node` binary builds exactly this and runs one engine node
//!   per process.
//!
//! # Bootstrap
//! Node `i` listens on `addrs[i]`, dials every peer `j > i` (retrying
//! until the peer's listener is up), and accepts one connection from every
//! peer `j < i`. The dialing side opens with a [`Frame::Hello`] so the
//! accepting side learns which node the connection speaks for. Each
//! established connection gets one **reader thread** that decodes frames
//! and feeds the owner's mailbox; [`Endpoint::recv`] drains the mailbox in
//! canonical order (ascending sender id, per-sender FIFO — per-connection
//! FIFO plus one reader per connection preserves it).
//!
//! # Delivery barrier
//! TCP has real propagation delay, so "everything sent has arrived" must
//! be established explicitly: [`Endpoint::sync`] sends a
//! [`Frame::Barrier`] token to every peer and waits for every peer's token
//! of the same generation. Because tokens follow data frames on the same
//! FIFO connection, a completed sync guarantees the local mailbox holds
//! every message any peer sent before *its* sync — the exact property the
//! engine's round structure needs. The fabric-level [`Transport::flush`]
//! runs the same two-phase barrier across all owned endpoints.
//!
//! # Byte accounting
//! [`TrafficStats`] record **payload bytes of data frames only**, at the
//! frame layer: `bytes_out` when a data frame is written, `bytes_in` when
//! the reader thread delivers it. Hello/barrier control frames and the
//! 9-byte frame headers are excluded, so counts are bit-identical with the
//! in-memory backends; the physical wire volume (headers + control plane)
//! is tracked separately and exposed via [`TcpEndpoint::wire_traffic`].

use crate::channel::AtomicStats;
use crate::frame::{read_frame, write_frame, Frame, FrameError, HEADER_LEN};
use crate::mem::Envelope;
use crate::stats::TrafficStats;
use crate::transport::{canonicalize, Endpoint, Transport};
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long [`TcpEndpoint::connect`] keeps retrying peers that have not
/// bound their listener yet.
pub const DEFAULT_CONNECT_TIMEOUT: Duration = Duration::from_secs(30);

/// Upper bound on one barrier round; exceeding it means a peer died or
/// the fleet deadlocked, and the run cannot produce a correct result.
const BARRIER_TIMEOUT: Duration = Duration::from_secs(120);

/// Barrier bookkeeping shared with the reader threads, tracked per peer:
/// generations are strictly increasing on each connection, so "peer `p`
/// reached generation `g`" is simply `gens[p] >= g`. Per-peer tracking
/// (rather than a per-generation count) makes teardown races benign — a
/// peer closing its connection after its final token is harmless, while a
/// peer dying *before* delivering an awaited token is detected.
#[derive(Debug, Default)]
struct BarrierState {
    /// Highest barrier generation received from each peer (own slot is
    /// pre-satisfied with `u64::MAX`).
    gens: Vec<u64>,
    /// Peers whose connection reached EOF or errored.
    closed: Vec<bool>,
}

/// Mailbox + barrier state one endpoint shares with its reader threads.
#[derive(Debug, Default)]
struct Shared {
    queue: Mutex<Vec<Envelope>>,
    barriers: Mutex<BarrierState>,
    barrier_cv: Condvar,
    wire_bytes_in: AtomicU64,
}

impl Shared {
    /// Handles one frame read off the connection to `peer`.
    fn on_frame(&self, peer: usize, frame: Frame, stats: &AtomicStats) {
        match frame {
            Frame::Data { payload, .. } => {
                stats.record_recv(payload.len() as u64);
                self.wire_bytes_in
                    .fetch_add((HEADER_LEN + payload.len()) as u64, Ordering::Relaxed);
                // The connection is the sender's identity (established by
                // the bootstrap hello); a frame's self-declared `from`
                // cannot re-attribute it, which would break canonical
                // ordering's per-sender FIFO invariant.
                self.queue.lock().unwrap().push(Envelope {
                    from: peer,
                    bytes: payload,
                });
            }
            Frame::Barrier { generation, .. } => {
                self.wire_bytes_in
                    .fetch_add((HEADER_LEN + 8) as u64, Ordering::Relaxed);
                let mut state = self.barriers.lock().unwrap();
                // The connection is the identity; generations only grow.
                state.gens[peer] = state.gens[peer].max(generation);
                self.barrier_cv.notify_all();
            }
            // Hello frames are consumed during bootstrap; one arriving
            // later is a protocol violation from a peer — drop it.
            Frame::Hello { .. } => {}
        }
    }

    fn on_closed(&self, peer: usize) {
        self.barriers.lock().unwrap().closed[peer] = true;
        self.barrier_cv.notify_all();
    }
}

/// One node's endpoint on a TCP fabric. See the module docs.
pub struct TcpEndpoint {
    id: usize,
    n: usize,
    /// Write halves, indexed by peer id (`None` at the own index).
    writers: Vec<Option<TcpStream>>,
    shared: Arc<Shared>,
    stats: Arc<AtomicStats>,
    /// Barrier generation this endpoint has entered.
    generation: u64,
    wire_bytes_out: u64,
    readers: Vec<JoinHandle<()>>,
}

impl TcpEndpoint {
    /// Assembles an endpoint from established peer connections and spawns
    /// one reader thread per connection.
    fn from_streams(id: usize, writers: Vec<Option<TcpStream>>) -> io::Result<Self> {
        let n = writers.len();
        let shared = Arc::new(Shared {
            barriers: Mutex::new(BarrierState {
                gens: (0..n).map(|p| if p == id { u64::MAX } else { 0 }).collect(),
                closed: vec![false; n],
            }),
            ..Shared::default()
        });
        let stats = Arc::new(AtomicStats::default());
        let mut readers = Vec::new();
        for (peer, stream) in writers.iter().enumerate() {
            let Some(stream) = stream else { continue };
            stream.set_nodelay(true)?;
            let read_half = stream.try_clone()?;
            let shared = Arc::clone(&shared);
            let stats = Arc::clone(&stats);
            readers.push(std::thread::spawn(move || {
                reader_loop(peer, read_half, &shared, &stats);
            }));
        }
        Ok(TcpEndpoint {
            id,
            n,
            writers,
            shared,
            stats,
            generation: 0,
            wire_bytes_out: 0,
            readers,
        })
    }

    /// Bootstraps the distributed endpoint for node `id`: binds
    /// `addrs[id]`, dials every higher-id peer (retrying until `timeout`
    /// while that peer starts up), accepts one connection from every
    /// lower-id peer, and identifies each accepted connection by its
    /// opening [`Frame::Hello`].
    pub fn connect(id: usize, addrs: &[SocketAddr], timeout: Duration) -> io::Result<TcpEndpoint> {
        let n = addrs.len();
        assert!(id < n, "node id {id} outside cluster of {n}");
        let deadline = Instant::now() + timeout;
        // Retry AddrInUse within the deadline: ports reserved via
        // [`reserve_loopback_addrs`] are released before this rebind, so
        // another process can hold one transiently (e.g. parallel test
        // suites reserving their own clusters).
        let listener = loop {
            match TcpListener::bind(addrs[id]) {
                Ok(l) => break l,
                Err(e) if e.kind() == io::ErrorKind::AddrInUse && Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => return Err(e),
            }
        };

        let mut writers: Vec<Option<TcpStream>> = (0..n).map(|_| None).collect();

        // Dial upward: peer listeners may not be up yet, so retry.
        for (peer, addr) in addrs.iter().enumerate().skip(id + 1) {
            let stream = loop {
                match TcpStream::connect(addr) {
                    Ok(s) => break s,
                    Err(e) => {
                        if Instant::now() >= deadline {
                            return Err(io::Error::new(
                                io::ErrorKind::TimedOut,
                                format!("node {id}: dialing peer {peer} at {addr}: {e}"),
                            ));
                        }
                        std::thread::sleep(Duration::from_millis(20));
                    }
                }
            };
            stream.set_nodelay(true)?;
            write_frame(&mut &stream, &Frame::Hello { from: id })?;
            writers[peer] = Some(stream);
        }

        // Accept downward: `id` peers will dial us; their hello says who
        // they are.
        for _ in 0..id {
            listener.set_nonblocking(true)?;
            let (stream, _) = loop {
                match listener.accept() {
                    Ok(conn) => break conn,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        if Instant::now() >= deadline {
                            return Err(io::Error::new(
                                io::ErrorKind::TimedOut,
                                format!("node {id}: waiting for lower-id peers"),
                            ));
                        }
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(e) => return Err(e),
                }
            };
            stream.set_nonblocking(false)?;
            let peer = read_hello(&stream, deadline)?;
            if peer >= n || writers[peer].is_some() || peer == id {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("node {id}: bogus hello from peer {peer}"),
                ));
            }
            writers[peer] = Some(stream);
        }

        Self::from_streams(id, writers)
    }

    /// This endpoint's node id.
    #[must_use]
    pub fn id(&self) -> usize {
        self.id
    }

    /// Physical wire volume `(bytes_out, bytes_in)` including frame
    /// headers and control frames — the framing overhead excluded from
    /// [`TrafficStats`].
    #[must_use]
    pub fn wire_traffic(&self) -> (u64, u64) {
        (
            self.wire_bytes_out,
            self.shared.wire_bytes_in.load(Ordering::Relaxed),
        )
    }

    /// Sends one data frame to `to`, accounting payload bytes at the
    /// frame layer.
    ///
    /// # Panics
    /// On self-send or unknown destination (protocol bugs).
    pub fn send(&mut self, to: usize, bytes: Vec<u8>) {
        assert_ne!(to, self.id, "self-send");
        let stream = self.writers[to]
            .as_ref()
            .expect("destination is this endpoint");
        self.stats.record_send(bytes.len() as u64);
        self.wire_bytes_out += (HEADER_LEN + bytes.len()) as u64;
        // Write failure = peer finished and closed; losing the message is
        // fine for the epoch-bounded experiments (mirrors the channel
        // backend's dropped-receiver policy).
        let _ = write_frame(
            &mut &*stream,
            &Frame::Data {
                from: self.id,
                payload: bytes,
            },
        );
    }

    /// Phase one of the round barrier: announce this endpoint's new
    /// generation to every peer.
    fn sync_begin(&mut self) {
        self.generation += 1;
        for stream in self.writers.iter().flatten() {
            self.wire_bytes_out += (HEADER_LEN + 8) as u64;
            let _ = write_frame(
                &mut &*stream,
                &Frame::Barrier {
                    from: self.id,
                    generation: self.generation,
                },
            );
        }
    }

    /// Phase two: wait until every peer's token of the current generation
    /// arrived (hence, by FIFO, every message they sent before it).
    ///
    /// # Panics
    /// If a peer connection closes mid-barrier or the round times out —
    /// the fleet can no longer produce a correct result.
    fn sync_wait(&self) {
        let g = self.generation;
        let deadline = Instant::now() + BARRIER_TIMEOUT;
        let mut state = self.shared.barriers.lock().unwrap();
        loop {
            if state.gens.iter().all(|&seen| seen >= g) {
                return;
            }
            let dead = state
                .gens
                .iter()
                .zip(&state.closed)
                .position(|(&seen, &closed)| closed && seen < g);
            assert!(
                dead.is_none(),
                "node {}: peer {} disconnected before barrier {g}",
                self.id,
                dead.unwrap_or_default()
            );
            let timeout = deadline.saturating_duration_since(Instant::now());
            assert!(
                !timeout.is_zero(),
                "node {}: barrier {} timed out",
                self.id,
                self.generation
            );
            let (guard, _) = self
                .shared
                .barrier_cv
                .wait_timeout(state, timeout.min(Duration::from_millis(100)))
                .unwrap();
            state = guard;
        }
    }

    /// Drains everything currently delivered, without blocking.
    pub fn try_drain(&self) -> Vec<Envelope> {
        std::mem::take(&mut *self.shared.queue.lock().unwrap())
    }

    /// Snapshot of this node's traffic stats.
    #[must_use]
    pub fn stats(&self) -> TrafficStats {
        self.stats.snapshot()
    }
}

impl Drop for TcpEndpoint {
    fn drop(&mut self) {
        // Shutdown (not just drop) so reader threads — ours via the
        // cloned read half, the peer's via FIN — wake up and exit.
        for stream in self.writers.iter().flatten() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        for handle in self.readers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Endpoint for TcpEndpoint {
    fn id(&self) -> usize {
        TcpEndpoint::id(self)
    }

    fn num_nodes(&self) -> usize {
        self.n
    }

    fn send(&mut self, to: usize, bytes: Vec<u8>) {
        TcpEndpoint::send(self, to, bytes);
    }

    fn recv(&mut self) -> Vec<Envelope> {
        let mut inbox = self.try_drain();
        canonicalize(&mut inbox);
        inbox
    }

    fn sync(&mut self) {
        self.sync_begin();
        self.sync_wait();
    }

    fn stats(&self) -> TrafficStats {
        TcpEndpoint::stats(self)
    }
}

/// Decodes frames off the connection to `peer` into the owner's mailbox
/// until EOF or error.
fn reader_loop(peer: usize, stream: TcpStream, shared: &Shared, stats: &AtomicStats) {
    let mut reader = io::BufReader::new(stream);
    loop {
        match read_frame(&mut reader) {
            Ok(Some(frame)) => shared.on_frame(peer, frame, stats),
            Ok(None) | Err(FrameError::Io(_)) => break,
            Err(FrameError::Invalid(_)) => break,
        }
    }
    shared.on_closed(peer);
}

/// Reads the bootstrap hello off a fresh connection, bounded by
/// `deadline`.
fn read_hello(stream: &TcpStream, deadline: Instant) -> io::Result<usize> {
    let budget = deadline.saturating_duration_since(Instant::now());
    stream.set_read_timeout(Some(budget.max(Duration::from_millis(10))))?;
    let result = match read_frame(&mut &*stream) {
        Ok(Some(Frame::Hello { from })) => Ok(from),
        Ok(other) => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("expected hello, got {other:?}"),
        )),
        Err(FrameError::Io(e)) => Err(e),
        Err(e @ FrameError::Invalid(_)) => {
            Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
        }
    };
    stream.set_read_timeout(None)?;
    result
}

/// Reserves `n` distinct loopback addresses by binding ephemeral
/// listeners and releasing them (listeners set `SO_REUSEADDR`, so the
/// ports rebind immediately). Used by the multi-process launcher and
/// tests to pre-agree on a cluster address map.
pub fn reserve_loopback_addrs(n: usize) -> io::Result<Vec<SocketAddr>> {
    // Hold all listeners before dropping any so the same port is never
    // handed out twice.
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0"))
        .collect::<io::Result<_>>()?;
    listeners.iter().map(TcpListener::local_addr).collect()
}

/// A fully connected TCP fabric whose `n` endpoints all live in this
/// process, wired over loopback sockets. See the module docs.
pub struct TcpTransport {
    endpoints: Vec<TcpEndpoint>,
}

impl TcpTransport {
    /// Builds the fabric: binds `n` ephemeral loopback listeners and
    /// connects every pair (`i` dials `j` for `i < j`, with the same
    /// hello handshake the distributed bootstrap uses).
    pub fn loopback(n: usize) -> io::Result<Self> {
        let listeners: Vec<TcpListener> = (0..n)
            .map(|_| TcpListener::bind("127.0.0.1:0"))
            .collect::<io::Result<_>>()?;
        let addrs: Vec<SocketAddr> = listeners
            .iter()
            .map(TcpListener::local_addr)
            .collect::<io::Result<_>>()?;

        let mut streams: Vec<Vec<Option<TcpStream>>> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        let deadline = Instant::now() + DEFAULT_CONNECT_TIMEOUT;
        // Both loop variables index the connection matrix symmetrically.
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            for j in (i + 1)..n {
                // The listener backlog completes the handshake without an
                // accept() call, so same-thread connect-then-accept is
                // safe.
                let dialed = TcpStream::connect(addrs[j])?;
                dialed.set_nodelay(true)?;
                write_frame(&mut &dialed, &Frame::Hello { from: i })?;
                let (accepted, _) = listeners[j].accept()?;
                accepted.set_nodelay(true)?;
                let peer = read_hello(&accepted, deadline)?;
                debug_assert_eq!(peer, i, "loopback hello mismatch");
                streams[i][j] = Some(dialed);
                streams[j][i] = Some(accepted);
            }
        }

        let endpoints = streams
            .into_iter()
            .enumerate()
            .map(|(id, writers)| TcpEndpoint::from_streams(id, writers))
            .collect::<io::Result<Vec<_>>>()?;
        Ok(TcpTransport { endpoints })
    }
}

impl Transport for TcpTransport {
    type Endpoint = TcpEndpoint;

    fn num_nodes(&self) -> usize {
        self.endpoints.len()
    }

    fn send(&mut self, from: usize, to: usize, bytes: Vec<u8>) {
        self.endpoints[from].send(to, bytes);
    }

    fn recv(&mut self, node: usize) -> Vec<Envelope> {
        let mut inbox = self.endpoints[node].try_drain();
        canonicalize(&mut inbox);
        inbox
    }

    fn flush(&mut self) {
        // Two-phase across all owned endpoints: everyone announces the
        // new generation, then everyone waits — a single-threaded caller
        // must not wait on an endpoint before the others have sent their
        // tokens.
        for ep in &mut self.endpoints {
            ep.sync_begin();
        }
        for ep in &self.endpoints {
            ep.sync_wait();
        }
    }

    fn stats(&self, node: usize) -> TrafficStats {
        self.endpoints[node].stats()
    }

    fn all_stats(&self) -> Vec<TrafficStats> {
        self.endpoints.iter().map(TcpEndpoint::stats).collect()
    }

    fn into_endpoints(self) -> Option<Vec<TcpEndpoint>> {
        Some(self.endpoints)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_delivery_canonical_order_and_stats() {
        let mut net = TcpTransport::loopback(3).unwrap();
        Transport::send(&mut net, 2, 0, vec![1, 2, 3]);
        Transport::send(&mut net, 1, 0, vec![4]);
        Transport::send(&mut net, 2, 0, vec![5, 5]);
        net.flush();
        let inbox = Transport::recv(&mut net, 0);
        let order: Vec<(usize, usize)> = inbox.iter().map(|e| (e.from, e.bytes.len())).collect();
        assert_eq!(order, vec![(1, 1), (2, 3), (2, 2)]);

        // Payload-only accounting, both ends.
        assert_eq!(net.stats(0).bytes_in, 6);
        assert_eq!(net.stats(0).msgs_in, 3);
        assert_eq!(net.stats(2).bytes_out, 5);
        assert_eq!(net.stats(2).msgs_out, 2);
        assert_eq!(net.stats(1).bytes_out, 1);

        // The wire itself carried more (headers + barrier tokens).
        let (wire_out, _) = net.endpoints[2].wire_traffic();
        assert!(wire_out > 5);
    }

    #[test]
    fn endpoint_sync_guarantees_delivery() {
        let net = TcpTransport::loopback(2).unwrap();
        let mut eps = net.into_endpoints().unwrap();
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        let handle = std::thread::spawn(move || {
            Endpoint::sync(&mut b);
            // After the barrier, a's pre-barrier send must be here.
            let inbox = Endpoint::recv(&mut b);
            assert_eq!(inbox.len(), 1);
            assert_eq!(inbox[0].bytes, vec![7; 1000]);
            Endpoint::send(&mut b, 0, vec![9]);
            Endpoint::sync(&mut b);
            b.stats()
        });
        Endpoint::send(&mut a, 1, vec![7; 1000]);
        Endpoint::sync(&mut a);
        Endpoint::sync(&mut a);
        let inbox = Endpoint::recv(&mut a);
        assert_eq!(inbox.len(), 1);
        assert_eq!(inbox[0].bytes, vec![9]);
        let b_stats = handle.join().unwrap();
        assert_eq!(b_stats.bytes_in, 1000);
        assert_eq!(b_stats.bytes_out, 1);
        assert_eq!(a.stats().bytes_out, 1000);
        assert_eq!(a.stats().bytes_in, 1);
    }

    #[test]
    fn distributed_bootstrap_connects_full_mesh() {
        let addrs = reserve_loopback_addrs(3).unwrap();
        let handles: Vec<_> = (0..3)
            .map(|id| {
                let addrs = addrs.clone();
                std::thread::spawn(move || {
                    let mut ep = TcpEndpoint::connect(id, &addrs, Duration::from_secs(10)).unwrap();
                    // Everyone greets everyone, then proves the barrier
                    // delivered all greetings.
                    for peer in 0..3 {
                        if peer != id {
                            Endpoint::send(&mut ep, peer, vec![id as u8]);
                        }
                    }
                    Endpoint::sync(&mut ep);
                    let inbox = Endpoint::recv(&mut ep);
                    let senders: Vec<usize> = inbox.iter().map(|e| e.from).collect();
                    let expected: Vec<usize> = (0..3).filter(|&p| p != id).collect();
                    assert_eq!(senders, expected);
                    ep.stats()
                })
            })
            .collect();
        for h in handles {
            let stats = h.join().unwrap();
            assert_eq!(stats.msgs_out, 2);
            assert_eq!(stats.msgs_in, 2);
            assert_eq!(stats.bytes_in, 2);
        }
    }

    #[test]
    fn single_node_fabric_is_trivial() {
        let mut net = TcpTransport::loopback(1).unwrap();
        net.flush();
        assert!(Transport::recv(&mut net, 0).is_empty());
        assert_eq!(net.stats(0), TrafficStats::default());
    }

    #[test]
    #[should_panic(expected = "self-send")]
    fn self_send_panics() {
        let net = TcpTransport::loopback(2).unwrap();
        let mut eps = net.into_endpoints().unwrap();
        let mut a = eps.remove(0);
        Endpoint::send(&mut a, 0, vec![1]);
    }
}
