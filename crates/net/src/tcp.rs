//! Real-socket TCP transport: the deployment backend the paper's 8-node
//! SGX testbed corresponds to.
//!
//! [`TcpTransport`] implements [`Transport`] over genuine TCP connections
//! carrying the length-prefixed frames of [`crate::frame`]. It comes in
//! two shapes:
//!
//! * **Loopback fabric** ([`TcpTransport::loopback`]) — all `n` endpoints
//!   live in one process, fully connected over `127.0.0.1` sockets. This
//!   is what the cross-backend equivalence tests and the benches drive:
//!   every frame crosses the kernel's TCP stack, yet runs stay
//!   bit-identical with [`crate::mem::MemNetwork`] and
//!   [`crate::channel::ChannelTransport`].
//! * **Distributed endpoint** ([`TcpEndpoint::connect`]) — one endpoint
//!   per OS process, bootstrapped from a node-id → socket-address map.
//!   The `rex-node` binary builds exactly this and runs one engine node
//!   per process.
//!
//! # Event-driven connection manager
//! Each endpoint runs **one** `Reactor` poller thread
//! that owns the non-blocking read halves of all its connections and
//! feeds decoded frames into the shared mailbox — thread cost is O(1) in
//! the peer count (the old fabric spawned one blocked reader per
//! connection). The write side stages frames into **per-peer output
//! buffers** (`OutBuf`): all frames destined to a peer between two
//! flush points coalesce into a single `write` syscall, encoded in place
//! via [`crate::frame::encode_frame_into`] with the buffer's capacity
//! reused across epochs. Output is drained with non-blocking partial
//! writes serviced round-robin, so one slow peer's full socket never
//! stalls the other links (see [`TcpEndpoint::set_outbound_cap`] for the
//! backpressure bound).
//!
//! # Bootstrap
//! Node `i` listens on `addrs[i]`, dials every peer `j > i` (retrying
//! with capped exponential backoff until the peer's listener is up), and
//! accepts one connection from every peer `j < i`. The dialing side
//! opens with a [`Frame::Hello`] so the accepting side learns which node
//! the connection speaks for. Handshakes run on blocking sockets; a
//! connection turns non-blocking when it is attached to the reactor.
//! Frames of one connection are decoded in arrival order by a single
//! poller, which preserves canonical delivery order (ascending sender
//! id, per-sender FIFO).
//!
//! # Delivery barrier
//! TCP has real propagation delay, so "everything sent has arrived" must
//! be established explicitly: [`Endpoint::sync`] stages a
//! [`Frame::Barrier`] token behind every peer's coalesced output, drains
//! the buffers, and waits for every peer's token of the same generation.
//! Because tokens follow data frames on the same FIFO connection, a
//! completed sync guarantees the local mailbox holds every message any
//! peer sent before *its* sync — the exact property the engine's round
//! structure needs. The fabric-level [`Transport::flush`] runs the same
//! two-phase barrier across all owned endpoints.
//!
//! # Byte accounting
//! [`TrafficStats`] record **payload bytes of data frames only**, at the
//! frame layer: `bytes_out` when a data frame is staged, `bytes_in` when
//! the poller delivers it. Hello/barrier/commitment control frames and the
//! 9-byte frame headers are excluded, so counts are bit-identical with the
//! in-memory backends; the physical wire volume (headers + control
//! plane) is tracked separately and exposed via
//! [`TcpEndpoint::wire_traffic`], and the number of `write` syscalls the
//! coalescing path actually issued via [`TcpEndpoint::write_syscalls`].

use crate::channel::AtomicStats;
use crate::frame::{encode_frame_into, read_frame, write_frame, Frame, FrameError, HEADER_LEN};
use crate::mem::Envelope;
use crate::reactor::{Reactor, ReactorSink};
use crate::stats::TrafficStats;
use crate::transport::{canonicalize, Endpoint, PeerCommitment, Transport, TransportError};
use std::collections::HashMap;
use std::io::{self, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Locks a mutex, recovering the guard from poisoning: the poller thread
/// must never panic on a lock another thread poisoned while unwinding —
/// that would escalate one failure into a process abort instead of a
/// surfaced [`TransportError`].
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// How long [`TcpEndpoint::connect`] keeps retrying peers that have not
/// bound their listener yet.
pub const DEFAULT_CONNECT_TIMEOUT: Duration = Duration::from_secs(30);

/// Upper bound on one barrier round; exceeding it means a peer died or
/// the fleet deadlocked, and the run cannot produce a correct result.
const BARRIER_TIMEOUT: Duration = Duration::from_secs(120);

/// Output staged past this size triggers an opportunistic non-blocking
/// flush inside [`TcpEndpoint::send`] — large epochs stream out in
/// ~256 KiB syscalls instead of accumulating without bound, while small
/// epochs still coalesce into a single write at the barrier.
const SOFT_FLUSH_BYTES: usize = 256 * 1024;

/// Default per-peer bound on staged output (see
/// [`TcpEndpoint::set_outbound_cap`]).
const DEFAULT_OUTBOUND_CAP: usize = 64 * 1024 * 1024;

/// Capped exponential backoff for retry/poll loops — replaces the old
/// fixed `thread::sleep` intervals, whose worst case added a hidden
/// latency floor to every connect and accept path. The first pauses are
/// short (a dial usually succeeds on the second attempt); only a peer
/// that stays away drives the interval toward the cap.
struct Backoff {
    wait: Duration,
    cap: Duration,
}

impl Backoff {
    fn new(start: Duration, cap: Duration) -> Backoff {
        Backoff { wait: start, cap }
    }

    /// Dial retries: 1ms → 20ms.
    fn dial() -> Backoff {
        Backoff::new(Duration::from_millis(1), Duration::from_millis(20))
    }

    /// Accept polls: 500µs → 5ms.
    fn accept() -> Backoff {
        Backoff::new(Duration::from_micros(500), Duration::from_millis(5))
    }

    /// Output-drain waits while a peer's socket is full: 50µs → 2ms.
    fn drain() -> Backoff {
        Backoff::new(Duration::from_micros(50), Duration::from_millis(2))
    }

    fn pause(&mut self) {
        std::thread::sleep(self.wait);
        self.wait = (self.wait * 2).min(self.cap);
    }
}

/// Barrier bookkeeping shared with the poller thread, tracked per peer:
/// generations are strictly increasing on each connection, so "peer `p`
/// reached generation `g`" is simply `gens[p] >= g`. Per-peer tracking
/// (rather than a per-generation count) makes teardown races benign — a
/// peer closing its connection after its final token is harmless, while a
/// peer dying *before* delivering an awaited token is detected.
#[derive(Debug, Default)]
struct BarrierState {
    /// Highest barrier generation received from each peer. The own slot
    /// — and every peer without a live connection (a scheduled joiner
    /// that has not been admitted yet, or a retired leaver) — is
    /// pre-satisfied with `u64::MAX`, which is what scopes the wire
    /// barrier to the *current membership view*.
    gens: Vec<u64>,
    /// Peers whose connection reached EOF or errored.
    closed: Vec<bool>,
    /// Why a peer's connection was torn down, when the poller knows
    /// more than "closed" (a protocol violation, an io error) — surfaced
    /// through [`TransportError`] at the next barrier.
    reasons: Vec<Option<String>>,
}

/// Mailbox + barrier state one endpoint shares with its poller thread.
#[derive(Debug, Default)]
struct Shared {
    queue: Mutex<Vec<Envelope>>,
    /// Signalled on every delivery and connection close, so
    /// [`Endpoint::recv_wait`] (the bounded-staleness driver's arrival
    /// hook) blocks instead of polling.
    queue_cv: Condvar,
    barriers: Mutex<BarrierState>,
    barrier_cv: Condvar,
    /// Peer commitments delivered by the poller, in arrival order,
    /// drained by [`Endpoint::take_commitments`]. Control plane — kept
    /// out of the data mailbox so canonical inbox order is untouched.
    commitments: Mutex<Vec<PeerCommitment>>,
    wire_bytes_in: AtomicU64,
}

impl Shared {
    /// Handles one frame read off the connection to `peer`.
    fn on_frame(&self, peer: usize, frame: Frame, stats: &AtomicStats) {
        match frame {
            Frame::Data { payload, .. } => {
                stats.record_recv(payload.len() as u64);
                self.wire_bytes_in
                    .fetch_add((HEADER_LEN + payload.len()) as u64, Ordering::Relaxed);
                // The connection is the sender's identity (established by
                // the bootstrap hello); a frame's self-declared `from`
                // cannot re-attribute it, which would break canonical
                // ordering's per-sender FIFO invariant.
                lock(&self.queue).push(Envelope {
                    from: peer,
                    bytes: payload,
                });
                self.queue_cv.notify_all();
            }
            Frame::Barrier { generation, .. } => {
                self.wire_bytes_in
                    .fetch_add((HEADER_LEN + 8) as u64, Ordering::Relaxed);
                let mut state = lock(&self.barriers);
                // The connection is the identity; generations only grow.
                state.gens[peer] = state.gens[peer].max(generation);
                self.barrier_cv.notify_all();
            }
            Frame::Commitment {
                epoch, digest, tag, ..
            } => {
                self.wire_bytes_in
                    .fetch_add((HEADER_LEN + 72) as u64, Ordering::Relaxed);
                // Connection-attributed like data frames: the frame's
                // self-declared `from` cannot impersonate another peer.
                lock(&self.commitments).push(PeerCommitment {
                    from: peer,
                    epoch,
                    digest,
                    tag,
                });
            }
            // Hello/join/welcome frames are consumed during bootstrap or
            // admission; one arriving later is a protocol violation from
            // a peer — drop it.
            Frame::Hello { .. } | Frame::Join { .. } | Frame::Welcome { .. } => {}
        }
    }

    fn on_closed(&self, peer: usize, reason: Option<String>) {
        let mut state = lock(&self.barriers);
        state.closed[peer] = true;
        if state.reasons[peer].is_none() {
            state.reasons[peer] = reason;
        }
        self.barrier_cv.notify_all();
        self.queue_cv.notify_all();
    }
}

/// Adapter feeding the poller's events into the endpoint's shared state.
struct EndpointSink {
    shared: Arc<Shared>,
    stats: Arc<AtomicStats>,
}

impl ReactorSink for EndpointSink {
    fn on_frame(&self, peer: usize, frame: Frame) {
        self.shared.on_frame(peer, frame, &self.stats);
    }

    fn on_closed(&self, peer: usize, reason: Option<String>) {
        self.shared.on_closed(peer, reason);
    }
}

/// Per-peer reusable output buffer: frames are staged in place via
/// [`encode_frame_into`] and drained with non-blocking partial writes,
/// so everything destined to one peer between two flush points leaves in
/// a single syscall (or a handful of `SOFT_FLUSH_BYTES`-sized ones for
/// very large epochs). `pos` tracks the partially written prefix.
#[derive(Debug, Default)]
struct OutBuf {
    buf: Vec<u8>,
    pos: usize,
}

impl OutBuf {
    fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Writes as much staged output as `w` accepts right now. Returns
    /// `Ok(true)` when the buffer fully drained (its capacity is kept
    /// for the next epoch), `Ok(false)` on a partial write cut short by
    /// `WouldBlock` — frame bytes already accepted by the kernel stay
    /// consumed, the remainder stays staged, and the peer's decoder
    /// reassembles across the split.
    fn try_flush<W: Write>(&mut self, w: &mut W, syscalls: &mut u64) -> io::Result<bool> {
        while self.pos < self.buf.len() {
            match w.write(&self.buf[self.pos..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => {
                    *syscalls += 1;
                    self.pos += n;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    *syscalls += 1;
                    return Ok(false);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        self.buf.clear();
        self.pos = 0;
        Ok(true)
    }

    fn clear(&mut self) {
        self.buf.clear();
        self.pos = 0;
    }
}

/// One live connection: the write half (non-blocking — it shares its
/// file description with the read half the reactor owns) plus the staged
/// output. A connection whose write failed is `dead`: staged and future
/// output is discarded, mirroring the old fabric's ignored write errors
/// (the peer finished and closed; losing the message is fine for the
/// epoch-bounded experiments). Accounting still records the send — the
/// counters describe what this node *sent*, identically to a fabric
/// whose peer is alive.
#[derive(Debug)]
struct Conn {
    stream: TcpStream,
    out: OutBuf,
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            out: OutBuf::default(),
            dead: false,
        }
    }

    fn stage(&mut self, frame: &Frame) {
        if !self.dead {
            encode_frame_into(frame, &mut self.out.buf);
        }
    }

    /// One non-blocking drain attempt; returns whether the buffer is
    /// empty afterwards.
    fn try_flush(&mut self, syscalls: &mut u64) -> bool {
        if self.dead {
            return true;
        }
        match self.out.try_flush(&mut &self.stream, syscalls) {
            Ok(drained) => drained,
            Err(_) => {
                self.dead = true;
                self.out.clear();
                true
            }
        }
    }
}

/// One node's endpoint on a TCP fabric. See the module docs.
pub struct TcpEndpoint {
    id: usize,
    n: usize,
    /// Live connections, indexed by peer id (`None` at the own index, at
    /// peers without a live connection — scheduled joiners not yet
    /// admitted — and at retired leavers).
    conns: Vec<Option<Conn>>,
    /// The listening socket, retained after bootstrap so scheduled
    /// joiners can be admitted mid-run (`None` for loopback-fabric
    /// endpoints, which are fully pre-connected).
    listener: Option<TcpListener>,
    shared: Arc<Shared>,
    stats: Arc<AtomicStats>,
    /// The single poller thread owning every connection's read half.
    reactor: Reactor,
    /// Barrier generation this endpoint has entered.
    generation: u64,
    wire_bytes_out: u64,
    /// `write` syscalls issued by the coalescing output path (including
    /// ones answered `WouldBlock`) — the module's "one syscall per peer
    /// per epoch" claim, measurable.
    write_syscalls: u64,
    /// Per-peer staged-output bound; see [`TcpEndpoint::set_outbound_cap`].
    outbound_cap: usize,
    /// Late-attestation evidence carried by admitted `Join` frames,
    /// keyed by joiner id, drained by [`Endpoint::join_evidence`].
    evidence: HashMap<usize, Vec<u8>>,
    /// Join connections that dialed in **early** — a joiner process may
    /// start (and dial) long before its scheduled epoch, even while the
    /// founders are still bootstrapping their mesh. They wait here,
    /// outside the barrier set, until [`TcpEndpoint::view_sync`] admits
    /// them at the epoch the shared schedule names.
    parked: Vec<(usize, u64, Vec<u8>, TcpStream)>,
}

impl TcpEndpoint {
    /// Assembles an endpoint from established peer connections, spawning
    /// its poller thread. Peers without a connection are pre-satisfied
    /// in the barrier state (outside the current view) until
    /// [`TcpEndpoint::view_sync`] admits them.
    fn from_streams(
        id: usize,
        writers: Vec<Option<TcpStream>>,
        listener: Option<TcpListener>,
    ) -> io::Result<Self> {
        let n = writers.len();
        let shared = Arc::new(Shared {
            barriers: Mutex::new(BarrierState {
                gens: (0..n)
                    .map(|p| {
                        if p == id || writers[p].is_none() {
                            u64::MAX
                        } else {
                            0
                        }
                    })
                    .collect(),
                closed: vec![false; n],
                reasons: vec![None; n],
            }),
            ..Shared::default()
        });
        let stats = Arc::new(AtomicStats::default());
        let reactor = Reactor::spawn(Arc::new(EndpointSink {
            shared: Arc::clone(&shared),
            stats: Arc::clone(&stats),
        }));
        let mut endpoint = TcpEndpoint {
            id,
            n,
            conns: (0..n).map(|_| None).collect(),
            listener,
            shared,
            stats,
            reactor,
            generation: 0,
            wire_bytes_out: 0,
            write_syscalls: 0,
            outbound_cap: DEFAULT_OUTBOUND_CAP,
            evidence: HashMap::new(),
            parked: Vec::new(),
        };
        for (peer, stream) in writers.into_iter().enumerate() {
            let Some(stream) = stream else { continue };
            endpoint.attach(peer, stream)?;
        }
        Ok(endpoint)
    }

    /// Wires one established connection in: nodelay, read half to the
    /// poller (which switches the shared file description non-blocking),
    /// write half into the connection pool. The caller is responsible
    /// for the barrier-state bookkeeping (bootstrap pre-sets it;
    /// admission aligns it to the current generation).
    fn attach(&mut self, peer: usize, stream: TcpStream) -> io::Result<()> {
        stream.set_nodelay(true)?;
        let read_half = stream.try_clone()?;
        self.reactor.add(peer, read_half)?;
        self.conns[peer] = Some(Conn::new(stream));
        Ok(())
    }

    /// Bootstraps the distributed endpoint for node `id`: binds
    /// `addrs[id]`, dials every higher-id peer (retrying until `timeout`
    /// while that peer starts up), accepts one connection from every
    /// lower-id peer, and identifies each accepted connection by its
    /// opening [`Frame::Hello`].
    pub fn connect(id: usize, addrs: &[SocketAddr], timeout: Duration) -> io::Result<TcpEndpoint> {
        let all: Vec<usize> = (0..addrs.len()).collect();
        Self::connect_among(id, addrs, &all, timeout)
    }

    /// [`TcpEndpoint::connect`] over a **subset** of the id space: the
    /// mesh spans only `peers` (which must contain `id`) — the founding
    /// members of a dynamic-membership cluster. Ids outside `peers` stay
    /// unconnected and outside the barrier set until
    /// [`Endpoint::view_sync`] admits them at their scheduled join
    /// epoch.
    pub fn connect_among(
        id: usize,
        addrs: &[SocketAddr],
        peers: &[usize],
        timeout: Duration,
    ) -> io::Result<TcpEndpoint> {
        let n = addrs.len();
        assert!(id < n, "node id {id} outside cluster of {n}");
        assert!(peers.contains(&id), "node {id} outside its own mesh");
        let deadline = Instant::now() + timeout;
        // Retry AddrInUse within the deadline: ports reserved via
        // [`reserve_loopback_addrs`] are released before this rebind, so
        // another process can hold one transiently (e.g. parallel test
        // suites reserving their own clusters).
        let mut backoff = Backoff::dial();
        let listener = loop {
            match TcpListener::bind(addrs[id]) {
                Ok(l) => break l,
                Err(e) if e.kind() == io::ErrorKind::AddrInUse && Instant::now() < deadline => {
                    backoff.pause();
                }
                Err(e) => return Err(e),
            }
        };

        let mut writers: Vec<Option<TcpStream>> = (0..n).map(|_| None).collect();

        // Dial upward: peer listeners may not be up yet, so retry.
        for &peer in peers.iter().filter(|&&p| p > id) {
            let addr = &addrs[peer];
            let mut backoff = Backoff::dial();
            let stream = loop {
                match TcpStream::connect(addr) {
                    Ok(s) => break s,
                    Err(e) => {
                        if Instant::now() >= deadline {
                            return Err(io::Error::new(
                                io::ErrorKind::TimedOut,
                                format!("node {id}: dialing peer {peer} at {addr}: {e}"),
                            ));
                        }
                        backoff.pause();
                    }
                }
            };
            stream.set_nodelay(true)?;
            write_frame(&mut &stream, &Frame::Hello { from: id })?;
            writers[peer] = Some(stream);
        }

        // Accept downward: every lower-id mesh peer will dial us; their
        // hello says who they are. A scheduled joiner's process may dial
        // in at any point (it starts whenever it starts) — its opening
        // `Join` frame identifies it, and the connection is parked until
        // its epoch's admission instead of failing the bootstrap.
        let expected_hellos = peers.iter().filter(|&&p| p < id).count();
        let mut hellos = 0;
        let mut parked: Vec<(usize, u64, Vec<u8>, TcpStream)> = Vec::new();
        while hellos < expected_hellos {
            listener.set_nonblocking(true)?;
            let mut backoff = Backoff::accept();
            let (stream, _) = loop {
                match listener.accept() {
                    Ok(conn) => break conn,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        if Instant::now() >= deadline {
                            return Err(io::Error::new(
                                io::ErrorKind::TimedOut,
                                format!("node {id}: waiting for lower-id peers"),
                            ));
                        }
                        backoff.pause();
                    }
                    Err(e) => return Err(e),
                }
            };
            stream.set_nonblocking(false)?;
            match read_first_frame(&stream, deadline)? {
                Frame::Hello { from: peer }
                    if peer < n
                        && writers[peer].is_none()
                        && peer != id
                        && peers.contains(&peer) =>
                {
                    writers[peer] = Some(stream);
                    hellos += 1;
                }
                Frame::Join {
                    from,
                    epoch,
                    evidence,
                } if from < n
                    && from != id
                    && !peers.contains(&from)
                    && parked.iter().all(|(p, ..)| *p != from) =>
                {
                    parked.push((from, epoch, evidence, stream));
                }
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("node {id}: bogus bootstrap frame {other:?}"),
                    ));
                }
            }
        }

        // Back to blocking: the retained listener serves mid-run join
        // admissions, which manage their own deadlines.
        listener.set_nonblocking(false)?;
        let mut endpoint = Self::from_streams(id, writers, Some(listener))?;
        endpoint.parked = parked;
        Ok(endpoint)
    }

    /// Bootstraps the endpoint of a **scheduled joiner**: binds
    /// `addrs[id]`, dials every node in `dial` (the members it joins,
    /// plus any same-epoch joiner with a higher id), opening each
    /// connection with a [`Frame::Join`] carrying `epoch` and the
    /// late-attestation `evidence`; waits for every dialed peer's
    /// [`Frame::Welcome`] (members send it when the shared schedule
    /// reaches the join epoch, so this blocks until the running cluster
    /// arrives there); then accepts one `Join` from every same-epoch
    /// joiner in `accept_from` (lower ids dial higher ids) and welcomes
    /// them at the learned generation.
    ///
    /// Returns the endpoint with its barrier generation aligned to the
    /// running cluster's, ready to enter the join epoch's view barrier.
    ///
    /// # Errors
    /// On socket failure, timeout, disagreeing welcome generations (the
    /// cluster and this process follow different schedules), or a
    /// protocol-violating peer.
    pub fn connect_as_joiner(
        id: usize,
        addrs: &[SocketAddr],
        epoch: usize,
        dial: &[usize],
        accept_from: &[usize],
        evidence: Vec<u8>,
        timeout: Duration,
    ) -> Result<TcpEndpoint, TransportError> {
        let n = addrs.len();
        assert!(id < n, "node id {id} outside cluster of {n}");
        let deadline = Instant::now() + timeout;
        let listener = TcpListener::bind(addrs[id]).map_err(TransportError::from)?;

        // Dial everyone first (connections complete via the peers'
        // listener backlogs even before they admit), so no admission
        // order can deadlock.
        let mut writers: Vec<Option<TcpStream>> = (0..n).map(|_| None).collect();
        for &peer in dial {
            assert!(
                peer < n && peer != id,
                "joiner {id} dialing bogus peer {peer}"
            );
            let mut backoff = Backoff::dial();
            let stream = loop {
                match TcpStream::connect(addrs[peer]) {
                    Ok(s) => break s,
                    Err(e) => {
                        if Instant::now() >= deadline {
                            return Err(TransportError::Timeout {
                                what: format!("joiner {id}: dialing peer {peer}: {e}"),
                            });
                        }
                        backoff.pause();
                    }
                }
            };
            stream.set_nodelay(true).map_err(TransportError::from)?;
            write_frame(
                &mut &stream,
                &Frame::Join {
                    from: id,
                    epoch: epoch as u64,
                    evidence: evidence.clone(),
                },
            )
            .map_err(TransportError::from)?;
            writers[peer] = Some(stream);
        }

        // Collect every dialed peer's welcome. They all arrive at the
        // same schedule point, so the generations must agree.
        let mut generation = None;
        for &peer in dial {
            let stream = writers[peer].as_ref().expect("dialed above");
            let (w_epoch, w_gen) = read_welcome(stream, peer, deadline)?;
            if w_epoch != epoch as u64 {
                return Err(TransportError::Protocol {
                    peer,
                    detail: format!("welcomed epoch {w_epoch}, expected {epoch}"),
                });
            }
            if *generation.get_or_insert(w_gen) != w_gen {
                return Err(TransportError::Protocol {
                    peer,
                    detail: format!(
                        "welcome generation {w_gen} disagrees with {}",
                        generation.unwrap_or_default()
                    ),
                });
            }
        }
        let generation = generation.unwrap_or(0);

        // Same-epoch joiners with lower ids dial us; welcome them at the
        // generation the members taught us. A *later* epoch's joiner may
        // also dial in early (its process starts whenever it starts) —
        // park that connection for its own admission, exactly like the
        // founder bootstrap and `view_sync` admissions do.
        let mut pending: Vec<usize> = accept_from.to_vec();
        let mut parked: Vec<(usize, u64, Vec<u8>, TcpStream)> = Vec::new();
        while !pending.is_empty() {
            let (stream, remote) = accept_until(&listener, deadline, id)?;
            let (peer, join_epoch, peer_evidence) = read_join(&stream, remote, deadline)?;
            if pending.contains(&peer) && join_epoch == epoch as u64 {
                pending.retain(|&p| p != peer);
                write_frame(
                    &mut &stream,
                    &Frame::Welcome {
                        from: id,
                        epoch: epoch as u64,
                        generation,
                    },
                )
                .map_err(TransportError::from)?;
                writers[peer] = Some(stream);
            } else if peer < n
                && peer != id
                && join_epoch > epoch as u64
                && writers[peer].is_none()
                && parked.iter().all(|(p, ..)| *p != peer)
            {
                parked.push((peer, join_epoch, peer_evidence, stream));
            } else {
                return Err(TransportError::Protocol {
                    peer,
                    detail: format!("unexpected join for epoch {join_epoch} at joiner {id}"),
                });
            }
        }

        let mut endpoint =
            Self::from_streams(id, writers, Some(listener)).map_err(TransportError::from)?;
        endpoint.generation = generation;
        endpoint.parked = parked;
        Ok(endpoint)
    }

    /// This endpoint's node id.
    #[must_use]
    pub fn id(&self) -> usize {
        self.id
    }

    /// Physical wire volume `(bytes_out, bytes_in)` including frame
    /// headers and control frames — the framing overhead excluded from
    /// [`TrafficStats`].
    #[must_use]
    pub fn wire_traffic(&self) -> (u64, u64) {
        (
            self.wire_bytes_out,
            self.shared.wire_bytes_in.load(Ordering::Relaxed),
        )
    }

    /// Number of `write` syscalls the coalescing output path issued so
    /// far — the old fabric paid one per *frame*, this one pays one per
    /// peer per flush interval (plus partial-write continuations).
    #[must_use]
    pub fn write_syscalls(&self) -> u64 {
        self.write_syscalls
    }

    /// Bounds staged output per peer (bytes). When a peer stops reading
    /// and its staged output exceeds the cap, [`TcpEndpoint::send`]
    /// blocks (with capped-backoff drain attempts) until the backlog
    /// shrinks — backpressure on the producer instead of unbounded
    /// memory. A peer that stays stalled past the barrier timeout is
    /// declared dead and its staged output dropped, mirroring the
    /// fabric's write-failure policy.
    pub fn set_outbound_cap(&mut self, bytes: usize) {
        self.outbound_cap = bytes.max(1);
    }

    /// Stages one data frame to `to`, accounting payload bytes at the
    /// frame layer. The frame leaves with the peer's next coalesced
    /// flush (a barrier, [`Endpoint::flush_sends`], or the soft
    /// threshold).
    ///
    /// # Panics
    /// On self-send or unknown destination (protocol bugs).
    pub fn send(&mut self, to: usize, bytes: Vec<u8>) {
        assert_ne!(to, self.id, "self-send");
        let conn = self.conns[to]
            .as_mut()
            .expect("destination is this endpoint");
        self.stats.record_send(bytes.len() as u64);
        self.wire_bytes_out += (HEADER_LEN + bytes.len()) as u64;
        conn.stage(&Frame::Data {
            from: self.id,
            payload: bytes,
        });
        if conn.out.pending() > SOFT_FLUSH_BYTES {
            conn.try_flush(&mut self.write_syscalls);
        }
        // Backpressure: a peer that stopped reading bounds our memory,
        // not the other way round. The poller keeps serving every other
        // link meanwhile — only sends to *this* peer block.
        if conn.out.pending() > self.outbound_cap {
            let deadline = Instant::now() + BARRIER_TIMEOUT;
            let mut backoff = Backoff::drain();
            while !conn.dead && conn.out.pending() > self.outbound_cap {
                if Instant::now() >= deadline {
                    conn.dead = true;
                    conn.out.clear();
                    break;
                }
                backoff.pause();
                conn.try_flush(&mut self.write_syscalls);
            }
        }
    }

    /// One non-blocking drain pass over every connection's staged
    /// output, round-robin; returns whether everything drained. A slow
    /// peer leaves its remainder staged without stalling the pass.
    fn flush_pass(&mut self) -> bool {
        let mut drained = true;
        for conn in self.conns.iter_mut().flatten() {
            drained &= conn.try_flush(&mut self.write_syscalls);
        }
        drained
    }

    /// Drains all staged output, waiting (capped backoff) for full
    /// sockets, bounded by `deadline`. Returns whether it fully drained.
    fn drain_staged(&mut self, deadline: Instant) -> bool {
        let mut backoff = Backoff::drain();
        while !self.flush_pass() {
            if Instant::now() >= deadline {
                return false;
            }
            backoff.pause();
        }
        true
    }

    /// Phase one of the round barrier: announce this endpoint's new
    /// generation to every peer, behind whatever data frames are staged
    /// — on the common path the whole epoch (data + token) leaves in one
    /// syscall per peer.
    fn sync_begin(&mut self) {
        self.generation += 1;
        let token = Frame::Barrier {
            from: self.id,
            generation: self.generation,
        };
        for conn in self.conns.iter_mut().flatten() {
            self.wire_bytes_out += (HEADER_LEN + 8) as u64;
            conn.stage(&token);
        }
        self.flush_pass();
    }

    /// Phase two: wait until every peer's token of the current generation
    /// arrived (hence, by FIFO, every message they sent before it),
    /// keeping our own staged output draining meanwhile (a peer whose
    /// socket was full at `sync_begin` still needs our token). Surfaces
    /// a dead peer or a timed-out round as a [`TransportError`] — the
    /// fleet can no longer produce a correct result, and the caller
    /// decides whether that panics (the engine) or exits cleanly (the
    /// deployed binary).
    fn sync_wait(&mut self) -> Result<(), TransportError> {
        let g = self.generation;
        let deadline = Instant::now() + BARRIER_TIMEOUT;
        loop {
            let drained = self.flush_pass();
            let state = lock(&self.shared.barriers);
            if state.gens.iter().all(|&seen| seen >= g) {
                return Ok(());
            }
            if let Some(peer) = state
                .gens
                .iter()
                .zip(&state.closed)
                .position(|(&seen, &closed)| closed && seen < g)
            {
                let detail = state.reasons[peer]
                    .clone()
                    .unwrap_or_else(|| format!("disconnected before barrier {g}"));
                return Err(TransportError::PeerLost { peer, detail });
            }
            let timeout = deadline.saturating_duration_since(Instant::now());
            if timeout.is_zero() {
                return Err(TransportError::Timeout {
                    what: format!("node {}: barrier {g}", self.id),
                });
            }
            // With output pending, wake quickly to keep draining; fully
            // drained, only a peer's token (condvar) ends the wait.
            let slice = if drained {
                Duration::from_millis(100)
            } else {
                Duration::from_millis(1)
            };
            let _ = self
                .shared
                .barrier_cv
                .wait_timeout(state, timeout.min(slice))
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Admits the pending `Join` connections of `expected` (scheduled
    /// joiners of `epoch` that dialed this node), in arrival order:
    /// accept, validate the `Join` frame against the schedule, stash its
    /// evidence, reply [`Frame::Welcome`] with the current barrier
    /// generation, and wire the connection into the mailbox and barrier
    /// set at that generation.
    fn admit(&mut self, epoch: usize, expected: &[usize]) -> Result<(), TransportError> {
        if expected.is_empty() {
            return Ok(());
        }
        // Temporarily detach the listener so admissions can mutate the
        // endpoint while accepting (restored below on every path).
        let Some(listener) = self.listener.take() else {
            return Err(TransportError::Io {
                detail: format!(
                    "node {}: no listener to admit joiners {expected:?}",
                    self.id
                ),
            });
        };
        let result = self.admit_on(&listener, epoch, expected);
        self.listener = Some(listener);
        result
    }

    fn admit_on(
        &mut self,
        listener: &TcpListener,
        epoch: usize,
        expected: &[usize],
    ) -> Result<(), TransportError> {
        let deadline = Instant::now() + BARRIER_TIMEOUT;
        let mut pending: Vec<usize> = expected.to_vec();

        // Early dial-ins parked during bootstrap (or a previous
        // admission) first; connections for later epochs stay parked.
        for (peer, join_epoch, evidence, stream) in std::mem::take(&mut self.parked) {
            if pending.contains(&peer) {
                if join_epoch != epoch as u64 {
                    return Err(TransportError::Protocol {
                        peer,
                        detail: format!("joined for epoch {join_epoch}, schedule says {epoch}"),
                    });
                }
                pending.retain(|&p| p != peer);
                self.welcome_and_attach(peer, epoch, evidence, stream)?;
            } else {
                self.parked.push((peer, join_epoch, evidence, stream));
            }
        }

        while !pending.is_empty() {
            let (stream, remote) = accept_until(listener, deadline, self.id)?;
            let (peer, join_epoch, evidence) = read_join(&stream, remote, deadline)?;
            if pending.contains(&peer) {
                if join_epoch != epoch as u64 {
                    return Err(TransportError::Protocol {
                        peer,
                        detail: format!("joined for epoch {join_epoch}, schedule says {epoch}"),
                    });
                }
                pending.retain(|&p| p != peer);
                self.welcome_and_attach(peer, epoch, evidence, stream)?;
            } else if peer < self.n
                && peer != self.id
                && self.conns[peer].is_none()
                && self.parked.iter().all(|(p, ..)| *p != peer)
            {
                // A later epoch's joiner dialing early: park it.
                self.parked.push((peer, join_epoch, evidence, stream));
            } else {
                return Err(TransportError::Protocol {
                    peer,
                    detail: format!(
                        "unexpected join at node {} (expected {expected:?} at epoch {epoch})",
                        self.id
                    ),
                });
            }
        }
        Ok(())
    }

    /// Completes one admission: welcome the joiner at the current
    /// generation (written while the handshake socket is still
    /// blocking), stash its evidence, and wire the connection into the
    /// mailbox and barrier set.
    fn welcome_and_attach(
        &mut self,
        peer: usize,
        epoch: usize,
        evidence: Vec<u8>,
        stream: TcpStream,
    ) -> Result<(), TransportError> {
        write_frame(
            &mut &stream,
            &Frame::Welcome {
                from: self.id,
                epoch: epoch as u64,
                generation: self.generation,
            },
        )
        .map_err(TransportError::from)?;
        self.wire_bytes_out += (HEADER_LEN + 16) as u64;
        self.evidence.insert(peer, evidence);
        {
            let mut state = lock(&self.shared.barriers);
            state.gens[peer] = self.generation;
            state.closed[peer] = false;
            state.reasons[peer] = None;
        }
        self.attach(peer, stream).map_err(TransportError::from)
    }

    /// Retires a departed peer from the barrier set (its slot is
    /// pre-satisfied forever) and tears down the connection. Graceful:
    /// the leaver stopped participating at this exact schedule point, so
    /// nothing is in flight; whatever output were still staged to it is
    /// discarded with the connection.
    fn retire(&mut self, peer: usize) {
        lock(&self.shared.barriers).gens[peer] = u64::MAX;
        if let Some(conn) = self.conns[peer].take() {
            let _ = conn.stream.shutdown(Shutdown::Both);
        }
    }

    /// Drains everything currently delivered, without blocking.
    pub fn try_drain(&self) -> Vec<Envelope> {
        std::mem::take(&mut *lock(&self.shared.queue))
    }

    /// Snapshot of this node's traffic stats.
    #[must_use]
    pub fn stats(&self) -> TrafficStats {
        self.stats.snapshot()
    }
}

impl Drop for TcpEndpoint {
    fn drop(&mut self) {
        // Best-effort drain of staged output, then shutdown (not just
        // drop) so both pollers — ours via the cloned read half, the
        // peer's via FIN — wake up and exit. The reactor handle's own
        // drop joins the poller thread.
        self.drain_staged(Instant::now() + Duration::from_secs(5));
        for conn in self.conns.iter().flatten() {
            let _ = conn.stream.shutdown(Shutdown::Both);
        }
    }
}

impl Endpoint for TcpEndpoint {
    fn id(&self) -> usize {
        TcpEndpoint::id(self)
    }

    fn num_nodes(&self) -> usize {
        self.n
    }

    fn send(&mut self, to: usize, bytes: Vec<u8>) {
        TcpEndpoint::send(self, to, bytes);
    }

    fn recv(&mut self) -> Vec<Envelope> {
        let mut inbox = self.try_drain();
        canonicalize(&mut inbox);
        inbox
    }

    fn recv_wait(&mut self, timeout: Duration) -> Vec<Envelope> {
        let deadline = Instant::now() + timeout;
        let mut queue = lock(&self.shared.queue);
        while queue.is_empty() {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                break;
            }
            let (guard, _) = self
                .shared
                .queue_cv
                .wait_timeout(queue, remaining)
                .unwrap_or_else(PoisonError::into_inner);
            queue = guard;
        }
        let mut inbox = std::mem::take(&mut *queue);
        drop(queue);
        canonicalize(&mut inbox);
        inbox
    }

    fn flush_sends(&mut self) -> Result<(), TransportError> {
        if self.drain_staged(Instant::now() + BARRIER_TIMEOUT) {
            Ok(())
        } else {
            Err(TransportError::Timeout {
                what: format!("node {}: draining staged output", self.id),
            })
        }
    }

    fn sync(&mut self) {
        self.try_sync()
            .unwrap_or_else(|e| panic!("node {}: barrier failed: {e}", self.id));
    }

    fn try_sync(&mut self) -> Result<(), TransportError> {
        self.sync_begin();
        self.sync_wait()
    }

    fn try_drain_barrier(&mut self) -> Result<(), TransportError> {
        // TCP's drain barrier is a full wire barrier (the default
        // `drain_barrier` = `sync`); this is its fallible form.
        self.sync_begin();
        self.sync_wait()
    }

    fn view_sync(
        &mut self,
        epoch: usize,
        joined: &[usize],
        left: &[usize],
    ) -> Result<(), TransportError> {
        for &l in left {
            if l != self.id {
                self.retire(l);
            }
        }
        // Admit only joiners we are not already connected to: on a
        // pre-connected loopback fabric (or for the joiner itself) this
        // is a no-op, on a distributed member it accepts the pending
        // dial-ins.
        let expected: Vec<usize> = joined
            .iter()
            .copied()
            .filter(|&j| j != self.id && self.conns[j].is_none())
            .collect();
        self.admit(epoch, &expected)
    }

    fn join_evidence(&mut self, peer: usize) -> Option<Vec<u8>> {
        self.evidence.remove(&peer)
    }

    fn send_commitment(&mut self, epoch: u64, digest: [u8; 32], tag: [u8; 32]) {
        // Staged like a barrier token: behind the epoch's data frames on
        // every live connection, leaving with the same coalesced flush.
        // Control plane — accounted in wire bytes only, never in payload
        // stats.
        let frame = Frame::Commitment {
            from: self.id,
            epoch,
            digest,
            tag,
        };
        for conn in self.conns.iter_mut().flatten() {
            self.wire_bytes_out += (HEADER_LEN + 72) as u64;
            conn.stage(&frame);
        }
    }

    fn take_commitments(&mut self) -> Vec<PeerCommitment> {
        std::mem::take(&mut *lock(&self.shared.commitments))
    }

    fn stats(&self) -> TrafficStats {
        TcpEndpoint::stats(self)
    }
}

/// Accepts one connection, bounded by `deadline`.
fn accept_until(
    listener: &TcpListener,
    deadline: Instant,
    id: usize,
) -> Result<(TcpStream, SocketAddr), TransportError> {
    listener
        .set_nonblocking(true)
        .map_err(TransportError::from)?;
    let mut backoff = Backoff::accept();
    let conn = loop {
        match listener.accept() {
            Ok(conn) => break conn,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    return Err(TransportError::Timeout {
                        what: format!("node {id}: accepting a join connection"),
                    });
                }
                backoff.pause();
            }
            Err(e) => return Err(e.into()),
        }
    };
    listener
        .set_nonblocking(false)
        .map_err(TransportError::from)?;
    conn.0
        .set_nonblocking(false)
        .map_err(TransportError::from)?;
    Ok(conn)
}

/// Reads the opening [`Frame::Join`] off a fresh connection, bounded by
/// `deadline`. Returns `(joiner, epoch, evidence)`.
fn read_join(
    stream: &TcpStream,
    remote: SocketAddr,
    deadline: Instant,
) -> Result<(usize, u64, Vec<u8>), TransportError> {
    let budget = deadline.saturating_duration_since(Instant::now());
    stream
        .set_read_timeout(Some(budget.max(Duration::from_millis(10))))
        .map_err(TransportError::from)?;
    let result = match read_frame(&mut &*stream) {
        Ok(Some(Frame::Join {
            from,
            epoch,
            evidence,
        })) => Ok((from, epoch, evidence)),
        Ok(other) => Err(TransportError::Protocol {
            peer: TransportError::UNIDENTIFIED_PEER,
            detail: format!("dialer at {remote}: expected join, got {other:?}"),
        }),
        Err(FrameError::Io(e)) => Err(e.into()),
        Err(e @ FrameError::Invalid(_)) => Err(TransportError::Protocol {
            peer: TransportError::UNIDENTIFIED_PEER,
            detail: format!("dialer at {remote}: {e}"),
        }),
    };
    stream
        .set_read_timeout(None)
        .map_err(TransportError::from)?;
    result
}

/// Reads the [`Frame::Welcome`] a dialed member replies with, bounded by
/// `deadline`. Returns `(epoch, generation)`.
fn read_welcome(
    stream: &TcpStream,
    peer: usize,
    deadline: Instant,
) -> Result<(u64, u64), TransportError> {
    let budget = deadline.saturating_duration_since(Instant::now());
    stream
        .set_read_timeout(Some(budget.max(Duration::from_millis(10))))
        .map_err(TransportError::from)?;
    let result = match read_frame(&mut &*stream) {
        Ok(Some(Frame::Welcome {
            epoch, generation, ..
        })) => Ok((epoch, generation)),
        Ok(other) => Err(TransportError::Protocol {
            peer,
            detail: format!("expected welcome, got {other:?}"),
        }),
        Err(FrameError::Io(e)) => Err(e.into()),
        Err(e @ FrameError::Invalid(_)) => Err(TransportError::Protocol {
            peer,
            detail: e.to_string(),
        }),
    };
    stream
        .set_read_timeout(None)
        .map_err(TransportError::from)?;
    result
}

/// Reads the first frame off a fresh connection, bounded by `deadline`
/// (bootstrap hellos and early join dial-ins).
fn read_first_frame(stream: &TcpStream, deadline: Instant) -> io::Result<Frame> {
    let budget = deadline.saturating_duration_since(Instant::now());
    stream.set_read_timeout(Some(budget.max(Duration::from_millis(10))))?;
    let result = match read_frame(&mut &*stream) {
        Ok(Some(frame)) => Ok(frame),
        Ok(None) => Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "eof before the bootstrap frame",
        )),
        Err(FrameError::Io(e)) => Err(e),
        Err(e @ FrameError::Invalid(_)) => {
            Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
        }
    };
    stream.set_read_timeout(None)?;
    result
}

/// Reads the bootstrap hello off a fresh connection, bounded by
/// `deadline`.
fn read_hello(stream: &TcpStream, deadline: Instant) -> io::Result<usize> {
    match read_first_frame(stream, deadline)? {
        Frame::Hello { from } => Ok(from),
        other => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("expected hello, got {other:?}"),
        )),
    }
}

/// Reserves `n` distinct loopback addresses by binding ephemeral
/// listeners and releasing them (listeners set `SO_REUSEADDR`, so the
/// ports rebind immediately). Used by the multi-process launcher and
/// tests to pre-agree on a cluster address map.
pub fn reserve_loopback_addrs(n: usize) -> io::Result<Vec<SocketAddr>> {
    // Hold all listeners before dropping any so the same port is never
    // handed out twice.
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0"))
        .collect::<io::Result<_>>()?;
    listeners.iter().map(TcpListener::local_addr).collect()
}

/// A TCP fabric whose `n` endpoints all live in this process, wired over
/// loopback sockets. See the module docs.
pub struct TcpTransport {
    endpoints: Vec<TcpEndpoint>,
}

impl TcpTransport {
    /// Builds the fully connected fabric: binds `n` ephemeral loopback
    /// listeners and connects every pair (`i` dials `j` for `i < j`,
    /// with the same hello handshake the distributed bootstrap uses).
    pub fn loopback(n: usize) -> io::Result<Self> {
        let listeners: Vec<TcpListener> = (0..n)
            .map(|_| TcpListener::bind("127.0.0.1:0"))
            .collect::<io::Result<_>>()?;
        let addrs: Vec<SocketAddr> = listeners
            .iter()
            .map(TcpListener::local_addr)
            .collect::<io::Result<_>>()?;

        let mut streams: Vec<Vec<Option<TcpStream>>> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        let deadline = Instant::now() + DEFAULT_CONNECT_TIMEOUT;
        // Both loop variables index the connection matrix symmetrically.
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            for j in (i + 1)..n {
                // The listener backlog completes the handshake without an
                // accept() call, so same-thread connect-then-accept is
                // safe.
                let dialed = TcpStream::connect(addrs[j])?;
                dialed.set_nodelay(true)?;
                write_frame(&mut &dialed, &Frame::Hello { from: i })?;
                let (accepted, _) = listeners[j].accept()?;
                accepted.set_nodelay(true)?;
                let peer = read_hello(&accepted, deadline)?;
                debug_assert_eq!(peer, i, "loopback hello mismatch");
                streams[i][j] = Some(dialed);
                streams[j][i] = Some(accepted);
            }
        }

        let endpoints = streams
            .into_iter()
            .enumerate()
            .map(|(id, writers)| TcpEndpoint::from_streams(id, writers, None))
            .collect::<io::Result<Vec<_>>>()?;
        Ok(TcpTransport { endpoints })
    }

    /// Builds a **hub-star** fabric: endpoint 0 holds one connection to
    /// every other endpoint, the spokes hold only their hub link (their
    /// remaining peer slots stay outside the barrier set, like
    /// not-yet-admitted joiners). This is the connection-*scale* shape —
    /// one node with `n - 1` concurrent connections served by a single
    /// poller thread — used by the scale tests and
    /// `bench_transport`'s connection-scale arm; a full mesh of the same
    /// size would need O(n²) sockets.
    pub fn star(n: usize) -> io::Result<Self> {
        assert!(n >= 1, "star fabric needs a hub");
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let hub_addr = listener.local_addr()?;

        let mut hub_streams: Vec<Option<TcpStream>> = (0..n).map(|_| None).collect();
        let mut spokes = Vec::with_capacity(n.saturating_sub(1));
        let deadline = Instant::now() + DEFAULT_CONNECT_TIMEOUT;
        for (i, hub_slot) in hub_streams.iter_mut().enumerate().skip(1) {
            let dialed = TcpStream::connect(hub_addr)?;
            dialed.set_nodelay(true)?;
            write_frame(&mut &dialed, &Frame::Hello { from: i })?;
            let (accepted, _) = listener.accept()?;
            accepted.set_nodelay(true)?;
            let peer = read_hello(&accepted, deadline)?;
            debug_assert_eq!(peer, i, "star hello mismatch");
            *hub_slot = Some(accepted);
            let mut spoke_streams: Vec<Option<TcpStream>> = (0..n).map(|_| None).collect();
            spoke_streams[0] = Some(dialed);
            spokes.push(spoke_streams);
        }

        let mut endpoints = Vec::with_capacity(n);
        endpoints.push(TcpEndpoint::from_streams(0, hub_streams, None)?);
        for (i, spoke_streams) in spokes.into_iter().enumerate() {
            endpoints.push(TcpEndpoint::from_streams(i + 1, spoke_streams, None)?);
        }
        Ok(TcpTransport { endpoints })
    }
}

impl Transport for TcpTransport {
    type Endpoint = TcpEndpoint;

    fn num_nodes(&self) -> usize {
        self.endpoints.len()
    }

    fn send(&mut self, from: usize, to: usize, bytes: Vec<u8>) {
        self.endpoints[from].send(to, bytes);
    }

    fn recv(&mut self, node: usize) -> Vec<Envelope> {
        let mut inbox = self.endpoints[node].try_drain();
        canonicalize(&mut inbox);
        inbox
    }

    fn flush(&mut self) {
        // Two-phase across all owned endpoints: everyone announces the
        // new generation, then everyone waits — a single-threaded caller
        // must not wait on an endpoint before the others have sent their
        // tokens.
        for ep in &mut self.endpoints {
            ep.sync_begin();
        }
        for ep in &mut self.endpoints {
            let id = ep.id;
            ep.sync_wait()
                .unwrap_or_else(|e| panic!("node {id}: barrier failed: {e}"));
        }
    }

    fn stats(&self, node: usize) -> TrafficStats {
        self.endpoints[node].stats()
    }

    fn all_stats(&self) -> Vec<TrafficStats> {
        self.endpoints.iter().map(TcpEndpoint::stats).collect()
    }

    fn into_endpoints(self) -> Option<Vec<TcpEndpoint>> {
        Some(self.endpoints)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::encode_frame;

    #[test]
    fn loopback_delivery_canonical_order_and_stats() {
        let mut net = TcpTransport::loopback(3).unwrap();
        Transport::send(&mut net, 2, 0, vec![1, 2, 3]);
        Transport::send(&mut net, 1, 0, vec![4]);
        Transport::send(&mut net, 2, 0, vec![5, 5]);
        net.flush();
        let inbox = Transport::recv(&mut net, 0);
        let order: Vec<(usize, usize)> = inbox.iter().map(|e| (e.from, e.bytes.len())).collect();
        assert_eq!(order, vec![(1, 1), (2, 3), (2, 2)]);

        // Payload-only accounting, both ends.
        assert_eq!(net.stats(0).bytes_in, 6);
        assert_eq!(net.stats(0).msgs_in, 3);
        assert_eq!(net.stats(2).bytes_out, 5);
        assert_eq!(net.stats(2).msgs_out, 2);
        assert_eq!(net.stats(1).bytes_out, 1);

        // The wire itself carried more (headers + barrier tokens).
        let (wire_out, _) = net.endpoints[2].wire_traffic();
        assert!(wire_out > 5);
    }

    #[test]
    fn epoch_coalesces_into_one_syscall_per_peer() {
        let mut net = TcpTransport::loopback(2).unwrap();
        // An epoch's worth of small frames plus the barrier token leave
        // in a single write per peer — the coalescing headline.
        for _ in 0..16 {
            Transport::send(&mut net, 0, 1, vec![7; 32]);
        }
        net.flush();
        assert_eq!(
            net.endpoints[0].write_syscalls(),
            1,
            "16 data frames + barrier must coalesce into one write"
        );
        assert_eq!(Transport::recv(&mut net, 1).len(), 16);
    }

    #[test]
    fn endpoint_sync_guarantees_delivery() {
        let net = TcpTransport::loopback(2).unwrap();
        let mut eps = net.into_endpoints().unwrap();
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        let handle = std::thread::spawn(move || {
            Endpoint::sync(&mut b);
            // After the barrier, a's pre-barrier send must be here.
            let inbox = Endpoint::recv(&mut b);
            assert_eq!(inbox.len(), 1);
            assert_eq!(inbox[0].bytes, vec![7; 1000]);
            Endpoint::send(&mut b, 0, vec![9]);
            Endpoint::sync(&mut b);
            b.stats()
        });
        Endpoint::send(&mut a, 1, vec![7; 1000]);
        Endpoint::sync(&mut a);
        Endpoint::sync(&mut a);
        let inbox = Endpoint::recv(&mut a);
        assert_eq!(inbox.len(), 1);
        assert_eq!(inbox[0].bytes, vec![9]);
        let b_stats = handle.join().unwrap();
        assert_eq!(b_stats.bytes_in, 1000);
        assert_eq!(b_stats.bytes_out, 1);
        assert_eq!(a.stats().bytes_out, 1000);
        assert_eq!(a.stats().bytes_in, 1);
    }

    #[test]
    fn distributed_bootstrap_connects_full_mesh() {
        let addrs = reserve_loopback_addrs(3).unwrap();
        let handles: Vec<_> = (0..3)
            .map(|id| {
                let addrs = addrs.clone();
                std::thread::spawn(move || {
                    let mut ep = TcpEndpoint::connect(id, &addrs, Duration::from_secs(10)).unwrap();
                    // Everyone greets everyone, then proves the barrier
                    // delivered all greetings.
                    for peer in 0..3 {
                        if peer != id {
                            Endpoint::send(&mut ep, peer, vec![id as u8]);
                        }
                    }
                    Endpoint::sync(&mut ep);
                    let inbox = Endpoint::recv(&mut ep);
                    let senders: Vec<usize> = inbox.iter().map(|e| e.from).collect();
                    let expected: Vec<usize> = (0..3).filter(|&p| p != id).collect();
                    assert_eq!(senders, expected);
                    ep.stats()
                })
            })
            .collect();
        for h in handles {
            let stats = h.join().unwrap();
            assert_eq!(stats.msgs_out, 2);
            assert_eq!(stats.msgs_in, 2);
            assert_eq!(stats.bytes_in, 2);
        }
    }

    #[test]
    fn single_node_fabric_is_trivial() {
        let mut net = TcpTransport::loopback(1).unwrap();
        net.flush();
        assert!(Transport::recv(&mut net, 0).is_empty());
        assert_eq!(net.stats(0), TrafficStats::default());
    }

    #[test]
    #[should_panic(expected = "self-send")]
    fn self_send_panics() {
        let net = TcpTransport::loopback(2).unwrap();
        let mut eps = net.into_endpoints().unwrap();
        let mut a = eps.remove(0);
        Endpoint::send(&mut a, 0, vec![1]);
    }

    #[test]
    fn joiner_is_admitted_into_mesh_barrier_and_mailboxes() {
        // 2 founders (ids 0, 1) mesh among themselves; node 2 joins at
        // "epoch 1": founders admit via view_sync, the joiner dials in
        // with a Join frame carrying evidence, everyone barrier-syncs
        // together afterwards and data flows both ways. Finally node 0
        // "leaves" and the survivors' barrier keeps working.
        // Every thread follows the deployed node-loop shape per epoch:
        // [transition: view_sync + view barrier] → recv → drain_barrier
        // → send → sync.
        let addrs = reserve_loopback_addrs(3).unwrap();
        let founders = vec![0usize, 1];
        let founder = |id: usize, addrs: Vec<SocketAddr>| {
            let founders = founders.clone();
            std::thread::spawn(move || {
                let mut ep =
                    TcpEndpoint::connect_among(id, &addrs, &founders, Duration::from_secs(10))
                        .unwrap();
                // Epoch 0: one round between the founders only.
                assert!(Endpoint::recv(&mut ep).is_empty());
                ep.drain_barrier();
                Endpoint::send(&mut ep, 1 - id, vec![id as u8]);
                Endpoint::sync(&mut ep);

                // Epoch 1: admit the joiner, check its evidence, view
                // barrier (where a sponsor's bootstrap would travel).
                ep.view_sync(1, &[2], &[]).unwrap();
                assert_eq!(ep.join_evidence(2).as_deref(), Some(&b"quote"[..]));
                assert!(ep.join_evidence(2).is_none(), "evidence drains");
                ep.try_sync().unwrap();
                assert_eq!(Endpoint::recv(&mut ep).len(), 1, "epoch-0 round");
                ep.drain_barrier();
                Endpoint::send(&mut ep, 2, vec![10 + id as u8]);
                ep.try_sync().unwrap();

                // Epoch 2: node 0 departs gracefully before any barrier;
                // node 1 retires it and continues with the joiner.
                if id == 0 {
                    return ep.stats();
                }
                ep.view_sync(2, &[], &[0]).unwrap();
                ep.try_sync().unwrap();
                let from_joiner = Endpoint::recv(&mut ep);
                assert_eq!(from_joiner.len(), 1);
                assert_eq!(from_joiner[0].from, 2);
                ep.drain_barrier();
                Endpoint::send(&mut ep, 2, vec![99]);
                ep.try_sync().unwrap();
                ep.stats()
            })
        };
        let f0 = founder(0, addrs.clone());
        let f1 = founder(1, addrs.clone());

        let joiner = std::thread::spawn({
            let addrs = addrs.clone();
            move || {
                let mut ep = TcpEndpoint::connect_as_joiner(
                    2,
                    &addrs,
                    1,
                    &[0, 1],
                    &[],
                    b"quote".to_vec(),
                    Duration::from_secs(10),
                )
                .unwrap();
                // Epoch 1, from the view barrier onward.
                ep.try_sync().unwrap();
                assert!(Endpoint::recv(&mut ep).is_empty());
                ep.drain_barrier();
                Endpoint::send(&mut ep, 0, vec![42]);
                Endpoint::send(&mut ep, 1, vec![42]);
                ep.try_sync().unwrap();

                // Epoch 2: node 0 left; rounds continue with node 1.
                ep.view_sync(2, &[], &[0]).unwrap();
                ep.try_sync().unwrap();
                let inbox = Endpoint::recv(&mut ep);
                let got: Vec<(usize, u8)> = inbox.iter().map(|e| (e.from, e.bytes[0])).collect();
                assert_eq!(got, vec![(0, 10), (1, 11)]);
                ep.drain_barrier();
                ep.try_sync().unwrap();

                // Epoch 3 drain: node 1's epoch-2 message.
                let inbox = Endpoint::recv(&mut ep);
                assert_eq!(inbox.len(), 1);
                assert_eq!(inbox[0].bytes, vec![99]);
                ep.stats()
            }
        });

        let s0 = f0.join().unwrap();
        let s1 = f1.join().unwrap();
        let s2 = joiner.join().unwrap();
        // Payload accounting covers the join-era traffic; control frames
        // (join/welcome/barrier) stay out of it.
        assert_eq!(s0.msgs_out, 2); // founder round + to joiner
        assert_eq!(s1.msgs_out, 3); // + post-leave send
        assert_eq!(s2.msgs_out, 2);
        assert_eq!(s2.msgs_in, 3);
    }

    #[test]
    fn commitments_travel_control_plane_and_drain() {
        let net = TcpTransport::loopback(3).unwrap();
        let mut eps = net.into_endpoints().unwrap();
        let mut c = eps.pop().unwrap();
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        let payload_before = a.stats();
        let (wire_before, _) = b.wire_traffic();

        // Node 1 and node 2 commit and flush (barrier-free — a single
        // thread cannot serve three barriers); node 0 drains both,
        // connection-attributed, with payload stats untouched.
        Endpoint::send_commitment(&mut b, 4, [0x11; 32], [0x22; 32]);
        Endpoint::send_commitment(&mut c, 4, [0x33; 32], [0x44; 32]);
        b.flush_sends().unwrap();
        c.flush_sends().unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut got = Vec::new();
        while got.len() < 2 && Instant::now() < deadline {
            got.extend(Endpoint::take_commitments(&mut a));
            std::thread::sleep(Duration::from_millis(1));
        }
        let mut senders: Vec<usize> = got.iter().map(|pc| pc.from).collect();
        senders.sort_unstable();
        assert_eq!(senders, vec![1, 2]);
        let from1 = got.iter().find(|pc| pc.from == 1).unwrap();
        assert_eq!(from1.epoch, 4);
        assert_eq!(from1.digest, [0x11; 32]);
        assert_eq!(from1.tag, [0x22; 32]);
        assert!(
            Endpoint::take_commitments(&mut a).is_empty(),
            "drained on first take"
        );

        // Payload accounting unchanged; the wire carried the frames.
        assert_eq!(a.stats(), payload_before);
        let (wire_after, _) = b.wire_traffic();
        assert!(wire_after >= wire_before + (HEADER_LEN as u64 + 72) * 2);
    }

    #[test]
    fn barrier_surfaces_peer_death_as_transport_error() {
        let net = TcpTransport::loopback(2).unwrap();
        let mut eps = net.into_endpoints().unwrap();
        let b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        drop(b); // peer vanishes without serving the barrier
        let err = a.try_sync().expect_err("dead peer must surface");
        match err {
            TransportError::PeerLost { peer, .. } => assert_eq!(peer, 1),
            other => panic!("expected PeerLost, got {other}"),
        }
    }

    #[test]
    fn invalid_frames_surface_reason_not_panic() {
        // A hostile peer writes garbage: the poller records the reason
        // and the next barrier reports it instead of panicking.
        let addrs = reserve_loopback_addrs(2).unwrap();
        let victim = {
            let addrs = addrs.clone();
            std::thread::spawn(move || {
                let mut ep = TcpEndpoint::connect(0, &addrs, Duration::from_secs(10)).unwrap();
                ep.try_sync().expect_err("hostile peer must surface")
            })
        };
        let hostile = std::thread::spawn(move || {
            let mut ep = TcpEndpoint::connect(1, &addrs, Duration::from_secs(10)).unwrap();
            // Raw garbage straight onto the wire, then hang up. The
            // stream is non-blocking (reactor-attached); 41 bytes always
            // fit a fresh socket buffer.
            let conn = ep.conns[0].take().unwrap();
            write_frame(&mut &conn.stream, &Frame::Hello { from: 1 }).unwrap(); // ignored, legal
            (&conn.stream).write_all(&[0xFF; 32]).unwrap();
            let _ = conn.stream.shutdown(Shutdown::Both);
        });
        hostile.join().unwrap();
        let err = victim.join().unwrap();
        match err {
            TransportError::PeerLost { peer, detail } => {
                assert_eq!(peer, 1);
                assert!(detail.contains("invalid frame"), "detail: {detail}");
            }
            other => panic!("expected PeerLost, got {other}"),
        }
    }

    #[test]
    fn hub_sustains_512_concurrent_connections() {
        // The acceptance headline: one endpoint holding 512 live
        // connections on a single poller thread, barriers and data
        // flowing both ways.
        let n = 513;
        let mut net = TcpTransport::star(n).unwrap();
        for i in 1..n {
            Transport::send(&mut net, i, 0, vec![(i % 251) as u8]);
        }
        net.flush();
        let inbox = Transport::recv(&mut net, 0);
        assert_eq!(inbox.len(), n - 1);
        let senders: Vec<usize> = inbox.iter().map(|e| e.from).collect();
        assert_eq!(senders, (1..n).collect::<Vec<_>>(), "canonical order");

        // Fan-out: the hub answers every spoke through the same pool.
        for i in 1..n {
            Transport::send(&mut net, 0, i, vec![1, 2]);
        }
        net.flush();
        for i in 1..n {
            let inbox = Transport::recv(&mut net, i);
            assert_eq!(inbox.len(), 1, "spoke {i}");
            assert_eq!(inbox[0].bytes, vec![1, 2]);
        }
        assert_eq!(net.stats(0).msgs_in, (n - 1) as u64);
        assert_eq!(net.stats(0).msgs_out, (n - 1) as u64);
    }

    /// Syscall-budget regression gate: a 1000-spoke hub must spend
    /// exactly **one `write(2)` per peer per epoch** — data frames and
    /// the barrier token coalesced — no matter how many messages the
    /// epoch carries. A regression here (per-frame writes, split
    /// barrier) multiplies the hub's syscall bill by the message count
    /// and shows up long before wall-clock does.
    #[test]
    #[ignore = "opens ~2k sockets; run explicitly (CI transport-perf job)"]
    fn syscall_budget_one_write_per_peer_per_epoch() {
        let n = 1001;
        let mut net = TcpTransport::star(n).unwrap();
        let mut last = net.endpoints[0].write_syscalls();
        assert_eq!(last, 0, "bootstrap must not charge the hub's budget");
        for epoch in 0..3u8 {
            // A fan-out epoch: several small frames to every spoke, then
            // the barrier.
            for i in 1..n {
                Transport::send(&mut net, 0, i, vec![epoch; 48]);
                Transport::send(&mut net, 0, i, vec![epoch; 16]);
            }
            net.flush();
            let now = net.endpoints[0].write_syscalls();
            assert_eq!(
                now - last,
                (n - 1) as u64,
                "epoch {epoch}: hub wrote more than once per peer"
            );
            last = now;
            for i in 1..n {
                assert_eq!(Transport::recv(&mut net, i).len(), 2, "spoke {i}");
            }
        }
    }

    #[test]
    fn slow_peer_does_not_stall_other_links() {
        // Raw-socket spokes so one of them can refuse to read: the hub
        // keeps its backlog staged (partial writes against a full
        // kernel buffer) while the fast link stays at full service.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw_pair = || {
            let dialed = TcpStream::connect(addr).unwrap();
            let (accepted, _) = listener.accept().unwrap();
            (accepted, dialed)
        };
        let (hub_slow, slow_end) = raw_pair();
        let (hub_fast, fast_end) = raw_pair();
        let mut hub =
            TcpEndpoint::from_streams(0, vec![None, Some(hub_slow), Some(hub_fast)], None).unwrap();

        // Far more than loopback's socket buffers hold: the tail stays
        // staged in the hub's per-peer buffer.
        let chunk = vec![0xABu8; 64 * 1024];
        let total = 256;
        for _ in 0..total {
            hub.send(1, chunk.clone());
        }
        // The slow link is clogged…
        assert!(
            !hub.drain_staged(Instant::now() + Duration::from_millis(200)),
            "slow peer must leave a backlog"
        );
        // …yet the fast link delivers immediately through the same
        // endpoint.
        hub.send(2, b"ping".to_vec());
        let _ = hub.drain_staged(Instant::now() + Duration::from_millis(200));
        let got = read_frame(&mut &fast_end).unwrap().unwrap();
        assert_eq!(
            got,
            Frame::Data {
                from: 0,
                payload: b"ping".to_vec()
            }
        );

        // Once the slow reader drains, the backlog completes and every
        // byte frames correctly across the partial-write splits.
        let reader = std::thread::spawn(move || {
            let mut seen = 0usize;
            let mut reader = io::BufReader::new(slow_end);
            while seen < total {
                match read_frame(&mut reader).unwrap() {
                    Some(Frame::Data { payload, .. }) => {
                        assert_eq!(payload.len(), 64 * 1024);
                        seen += 1;
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            seen
        });
        assert!(
            hub.drain_staged(Instant::now() + Duration::from_secs(30)),
            "backlog must drain once the peer reads"
        );
        assert_eq!(reader.join().unwrap(), total);
    }

    #[test]
    fn outbound_cap_applies_backpressure_then_releases() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let dialed = TcpStream::connect(addr).unwrap();
        let (accepted, _) = listener.accept().unwrap();
        let mut hub = TcpEndpoint::from_streams(0, vec![None, Some(accepted)], None).unwrap();
        hub.set_outbound_cap(128 * 1024);

        // A reader that starts late: sends beyond the cap must block
        // until it comes up, then complete.
        let reader = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(100));
            let mut seen = 0usize;
            let mut reader = io::BufReader::new(dialed);
            while let Ok(Some(Frame::Data { .. })) = read_frame(&mut reader) {
                seen += 1;
            }
            seen
        });
        let sent = 128;
        for _ in 0..sent {
            hub.send(1, vec![0x5A; 64 * 1024]);
        }
        assert!(hub.drain_staged(Instant::now() + Duration::from_secs(30)));
        drop(hub); // FIN → the reader's loop ends
        assert_eq!(reader.join().unwrap(), sent);
    }

    #[test]
    fn partial_writes_preserve_framing() {
        // A writer that accepts tiny, ragged chunks — every frame
        // boundary lands mid-write — must still produce a byte stream
        // the assembler decodes exactly.
        struct Ragged {
            out: Vec<u8>,
            calls: usize,
        }
        impl Write for Ragged {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.calls += 1;
                if self.calls.is_multiple_of(3) {
                    return Err(io::ErrorKind::WouldBlock.into());
                }
                let take = buf.len().min(7);
                self.out.extend_from_slice(&buf[..take]);
                Ok(take)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let mut out = OutBuf::default();
        let frames: Vec<Frame> = (0..20)
            .map(|i| Frame::Data {
                from: i,
                payload: vec![i as u8; i * 3],
            })
            .collect();
        for f in &frames {
            encode_frame_into(f, &mut out.buf);
        }
        let expected: Vec<u8> = frames.iter().flat_map(encode_frame).collect();

        let mut sink = Ragged {
            out: Vec::new(),
            calls: 0,
        };
        let mut syscalls = 0u64;
        while !out.try_flush(&mut sink, &mut syscalls).unwrap() {}
        assert_eq!(sink.out, expected, "byte stream intact across splits");
        assert!(syscalls > frames.len() as u64, "writes really were ragged");

        let mut asm = crate::frame::FrameAssembler::new();
        asm.extend(&sink.out);
        for f in &frames {
            assert_eq!(asm.next_frame().unwrap().as_ref(), Some(f));
        }
        assert!(asm.next_frame().unwrap().is_none());
    }

    #[test]
    fn recv_wait_blocks_until_delivery() {
        let net = TcpTransport::loopback(2).unwrap();
        let mut eps = net.into_endpoints().unwrap();
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();

        // Nothing in flight: the wait times out empty.
        assert!(b.recv_wait(Duration::from_millis(20)).is_empty());

        let sender = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            Endpoint::send(&mut a, 1, vec![7]);
            a.flush_sends().unwrap();
            a
        });
        // Blocks across the sender's delay, wakes on arrival (no
        // barrier involved — this is the bounded-staleness path).
        let inbox = b.recv_wait(Duration::from_secs(10));
        assert_eq!(inbox.len(), 1);
        assert_eq!(inbox[0].bytes, vec![7]);
        let a = sender.join().unwrap();
        drop(a);
    }
}
