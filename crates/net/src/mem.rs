//! Single-threaded instrumented mailbox network for the discrete-event
//! simulator: reliable, ordered, with exact byte accounting.
//!
//! [`MemNetwork`] implements [`Transport`] as a single-owner fabric: the
//! lockstep engine drains inboxes, runs the epoch, and applies sends in
//! deterministic node order. It cannot be split into per-node endpoints
//! ([`Transport::into_endpoints`] returns `None`) — real-thread runs use
//! [`crate::channel::ChannelTransport`] instead.

use crate::stats::TrafficStats;
use crate::transport::{canonicalize, NeverEndpoint, Transport};
use std::collections::VecDeque;

/// A delivered message.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Sender node id.
    pub from: usize,
    /// Raw payload bytes.
    pub bytes: Vec<u8>,
}

/// Mailbox network over `n` nodes.
#[derive(Debug, Default)]
pub struct MemNetwork {
    inboxes: Vec<VecDeque<Envelope>>,
    stats: Vec<TrafficStats>,
}

impl MemNetwork {
    /// Creates a network with `n` empty mailboxes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        MemNetwork {
            inboxes: (0..n).map(|_| VecDeque::new()).collect(),
            stats: vec![TrafficStats::new(); n],
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inboxes.len()
    }

    /// Whether the network has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inboxes.is_empty()
    }

    /// Sends `bytes` from `from` to `to`; returns the message size.
    ///
    /// # Panics
    /// On out-of-range node ids or self-sends (protocol bugs).
    pub fn send(&mut self, from: usize, to: usize, bytes: Vec<u8>) -> usize {
        assert!(from < self.len() && to < self.len(), "bad node id");
        assert_ne!(from, to, "self-send");
        let size = bytes.len();
        self.stats[from].record_send(size);
        self.stats[to].record_recv(size);
        self.inboxes[to].push_back(Envelope { from, bytes });
        size
    }

    /// Removes and returns every message queued for `node`.
    pub fn drain_inbox(&mut self, node: usize) -> Vec<Envelope> {
        self.inboxes[node].drain(..).collect()
    }

    /// Number of messages waiting for `node`.
    #[must_use]
    pub fn inbox_len(&self, node: usize) -> usize {
        self.inboxes[node].len()
    }

    /// Cumulative stats of `node`.
    #[must_use]
    pub fn stats(&self, node: usize) -> &TrafficStats {
        &self.stats[node]
    }

    /// Snapshot of all node stats.
    #[must_use]
    pub fn all_stats(&self) -> Vec<TrafficStats> {
        self.stats.clone()
    }

    /// Total bytes moved across the whole network.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.stats.iter().map(|s| s.bytes_out).sum()
    }
}

impl Transport for MemNetwork {
    type Endpoint = NeverEndpoint;

    fn num_nodes(&self) -> usize {
        self.len()
    }

    fn send(&mut self, from: usize, to: usize, bytes: Vec<u8>) {
        MemNetwork::send(self, from, to, bytes);
    }

    fn recv(&mut self, node: usize) -> Vec<Envelope> {
        let mut inbox = self.drain_inbox(node);
        canonicalize(&mut inbox);
        inbox
    }

    fn flush(&mut self) {
        // Sends land in the destination mailbox immediately.
    }

    fn stats(&self, node: usize) -> TrafficStats {
        *MemNetwork::stats(self, node)
    }

    fn all_stats(&self) -> Vec<TrafficStats> {
        MemNetwork::all_stats(self)
    }

    fn into_endpoints(self) -> Option<Vec<NeverEndpoint>> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_and_drain_ordered() {
        let mut net = MemNetwork::new(3);
        net.send(0, 2, vec![1]);
        net.send(1, 2, vec![2, 2]);
        net.send(0, 2, vec![3, 3, 3]);
        assert_eq!(net.inbox_len(2), 3);
        let msgs = net.drain_inbox(2);
        assert_eq!(msgs.len(), 3);
        assert_eq!(msgs[0].from, 0);
        assert_eq!(msgs[0].bytes, vec![1]);
        assert_eq!(msgs[2].bytes, vec![3, 3, 3]);
        assert_eq!(net.inbox_len(2), 0);
    }

    #[test]
    fn stats_account_both_ends() {
        let mut net = MemNetwork::new(2);
        net.send(0, 1, vec![0; 100]);
        assert_eq!(net.stats(0).bytes_out, 100);
        assert_eq!(net.stats(0).bytes_in, 0);
        assert_eq!(net.stats(1).bytes_in, 100);
        assert_eq!(net.total_bytes(), 100);
    }

    #[test]
    #[should_panic(expected = "self-send")]
    fn self_send_is_a_bug() {
        let mut net = MemNetwork::new(2);
        net.send(1, 1, vec![]);
    }

    #[test]
    #[should_panic(expected = "bad node id")]
    fn bad_id_is_a_bug() {
        let mut net = MemNetwork::new(2);
        net.send(0, 5, vec![]);
    }
}
