//! Deterministic fault injection over any [`Transport`] backend.
//!
//! The REX evaluation assumes a fully reliable fabric, but the paper's
//! own premise — edge devices gossiping raw data — lives on networks
//! that drop, delay, and churn. This module makes unreliability a
//! first-class, *reproducible* experiment input:
//!
//! * [`FaultPlan`] — a seeded, serializable schedule of faults: per-link
//!   drop/delay/duplicate/reorder rates (with per-link overrides for
//!   asymmetric links), flash [`PartitionSpec`]s, and per-node
//!   crash-stop/rejoin [`CrashSpec`]s;
//! * [`FaultyTransport`] / [`FaultyEndpoint`] — wrappers that compose
//!   over *any* backend (mem, channel, TCP) and apply the plan's link
//!   faults at send time, counting every decision in
//!   [`DeliveryStats`].
//!
//! # Determinism
//! Fault decisions never consult a stateful RNG shared across links.
//! The fate of message `k` on the directed link `from → to` is a pure
//! hash of `(plan seed, fault kind, from, to, k)`, so:
//!
//! * the same plan replays **bit-for-bit** across reruns;
//! * lockstep and thread-per-node drivers agree (each directed link's
//!   messages are emitted by exactly one node in deterministic order,
//!   so the per-link counters agree no matter how threads interleave);
//! * all three backends agree — the wrapper sits above the backend's
//!   delivery machinery and below the engine's canonical ordering.
//!
//! # Division of labor with the engine
//! The wrapper owns **link** faults only. Crash-stop semantics (a down
//! node runs no epoch, sends nothing, and discards whatever landed in
//! its mailbox) live in the engine's drivers, which read the same
//! [`FaultPlan`] — that way crash behaviour is identical whether or not
//! a run is wrapped. Messages sent *while an epoch is not active*
//! (TEE provisioning + attestation) always pass through unfaulted: the
//! wrapper activates on the first [`Transport::epoch_begin`] /
//! [`Endpoint::epoch_begin`] call.
//!
//! # Byte accounting
//! The wrapper sits *above* the backend's [`TrafficStats`], which
//! therefore record what the fabric actually carried end-to-end: a
//! dropped message is accounted at **neither** end, a duplicate at
//! both ends twice, and a message delayed past the end of the run not
//! at all. Losses are visible in [`DeliveryStats`], not in the byte
//! counters — which keeps the counters bit-comparable across backends
//! and with the delivered payload volume.
//!
//! # Fate semantics
//! Checked in priority order, each against its own hash stream:
//! drop → delay (held one full round: sent at epoch `e`, delivered into
//! the epoch `e+2` inbox instead of `e+1`) → duplicate (two copies
//! delivered) → reorder (moved to the back of the sender's FIFO for the
//! round) → deliver. An active partition or a crashed endpoint on
//! either side of the link drops the message outright before any rate
//! is consulted.

use crate::mem::Envelope;
use crate::stats::{DeliveryStats, TrafficStats};
use crate::transport::{Endpoint, Transport};
use rex_crypto::splitmix64;

/// Per-link fault rates, each a probability in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LinkFaults {
    /// Probability a message is destroyed.
    pub drop: f64,
    /// Probability a message is delayed by one full round.
    pub delay: f64,
    /// Probability a message is delivered twice.
    pub duplicate: f64,
    /// Probability a message moves to the back of its sender's FIFO for
    /// the round (visible because canonical order preserves per-sender
    /// FIFO).
    pub reorder: f64,
}

impl LinkFaults {
    /// A uniform-loss profile.
    #[must_use]
    pub fn drop_rate(drop: f64) -> Self {
        LinkFaults {
            drop,
            ..LinkFaults::default()
        }
    }

    /// Whether every rate is zero.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.drop == 0.0 && self.delay == 0.0 && self.duplicate == 0.0 && self.reorder == 0.0
    }

    fn check(&self, what: &str) -> Result<(), String> {
        for (name, rate) in [
            ("drop", self.drop),
            ("delay", self.delay),
            ("duplicate", self.duplicate),
            ("reorder", self.reorder),
        ] {
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("{what}: {name} rate {rate} outside [0,1]"));
            }
        }
        Ok(())
    }
}

/// A flash partition: while active, messages crossing the cut are
/// dropped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionSpec {
    /// First epoch the cut is active.
    pub start: usize,
    /// First epoch after healing (exclusive; active for
    /// `start <= epoch < end`).
    pub end: usize,
    /// One side of the cut; every node not listed is on the other side.
    pub group: Vec<usize>,
}

impl PartitionSpec {
    /// Whether this partition separates `from` and `to` at `epoch`.
    #[must_use]
    pub fn cuts(&self, epoch: usize, from: usize, to: usize) -> bool {
        epoch >= self.start
            && epoch < self.end
            && (self.group.contains(&from) != self.group.contains(&to))
    }
}

/// Crash-stop schedule for one node: down for
/// `crash_epoch <= epoch < rejoin_epoch` (forever when `rejoin_epoch`
/// is `None`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashSpec {
    /// The crashing node.
    pub node: usize,
    /// First epoch the node is down.
    pub crash_epoch: usize,
    /// First epoch the node is back up (`None` = crash-stop forever).
    pub rejoin_epoch: Option<usize>,
}

impl CrashSpec {
    /// Whether this spec keeps `node` down at `epoch`.
    #[must_use]
    pub fn down_at(&self, node: usize, epoch: usize) -> bool {
        self.node == node
            && epoch >= self.crash_epoch
            && self.rejoin_epoch.is_none_or(|r| epoch < r)
    }
}

/// A complete, seeded fault schedule. See the module docs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed of every probabilistic decision (drop/delay/duplicate/
    /// reorder draws). Two runs with the same plan replay identically;
    /// changing only the seed re-rolls every per-message fate.
    pub seed: u64,
    /// Default rates applied to every directed link.
    pub link: LinkFaults,
    /// Per-directed-link `(from, to, rates)` overrides — asymmetric
    /// links are expressed by overriding only one direction.
    pub link_overrides: Vec<(usize, usize, LinkFaults)>,
    /// Flash partitions.
    pub partitions: Vec<PartitionSpec>,
    /// Crash-stop/rejoin schedules.
    pub crashes: Vec<CrashSpec>,
}

/// What happens to one message. See the module docs for semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fate {
    /// Delivered normally.
    Deliver,
    /// Destroyed.
    Drop,
    /// Held one full round.
    Delay,
    /// Delivered twice.
    Duplicate,
    /// Moved to the back of the sender's FIFO for the round.
    Reorder,
}

/// Domain-separation salts, one per fault kind, so the four rate draws
/// of a message are independent.
const SALT_DROP: u64 = 0xD509_0000_0000_0001;
const SALT_DELAY: u64 = 0xD509_0000_0000_0002;
const SALT_DUP: u64 = 0xD509_0000_0000_0003;
const SALT_REORDER: u64 = 0xD509_0000_0000_0004;

impl FaultPlan {
    /// A plan with a seed and uniform link rates, no partitions or
    /// crashes.
    #[must_use]
    pub fn uniform(seed: u64, link: LinkFaults) -> Self {
        FaultPlan {
            seed,
            link,
            ..FaultPlan::default()
        }
    }

    /// Adds a per-directed-link override (builder style).
    #[must_use]
    pub fn with_link(mut self, from: usize, to: usize, faults: LinkFaults) -> Self {
        self.link_overrides.push((from, to, faults));
        self
    }

    /// Adds a flash partition (builder style).
    #[must_use]
    pub fn with_partition(mut self, start: usize, end: usize, group: Vec<usize>) -> Self {
        self.partitions.push(PartitionSpec { start, end, group });
        self
    }

    /// Adds a crash-stop (builder style); pass `rejoin_epoch = None` for
    /// a permanent crash.
    #[must_use]
    pub fn with_crash(
        mut self,
        node: usize,
        crash_epoch: usize,
        rejoin_epoch: Option<usize>,
    ) -> Self {
        self.crashes.push(CrashSpec {
            node,
            crash_epoch,
            rejoin_epoch,
        });
        self
    }

    /// Whether the plan injects nothing at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.link.is_clean()
            && self.link_overrides.iter().all(|(_, _, f)| f.is_clean())
            && self.partitions.is_empty()
            && self.crashes.is_empty()
    }

    /// Checks internal consistency against a fleet of `n`, reporting the
    /// first problem found (the `Result` twin of [`FaultPlan::validate`],
    /// for config-parsing paths that must not panic).
    pub fn check(&self, n: usize) -> Result<(), String> {
        self.link.check("default link")?;
        for (from, to, faults) in &self.link_overrides {
            if !(*from < n && *to < n && from != to) {
                return Err(format!(
                    "link override {from}->{to} invalid for fleet of {n}"
                ));
            }
            faults.check("link override")?;
        }
        for p in &self.partitions {
            if p.start >= p.end {
                return Err(format!("partition [{}, {}) is empty", p.start, p.end));
            }
            if let Some(v) = p.group.iter().find(|&&v| v >= n) {
                return Err(format!(
                    "partition group references node {v} outside fleet of {n}"
                ));
            }
        }
        for c in &self.crashes {
            if c.node >= n {
                return Err(format!("crash of node {} outside fleet of {n}", c.node));
            }
            if let Some(r) = c.rejoin_epoch {
                if r <= c.crash_epoch {
                    return Err(format!(
                        "node {} rejoins at {r} before crashing at {}",
                        c.node, c.crash_epoch
                    ));
                }
            }
        }
        Ok(())
    }

    /// Panics if the plan is internally inconsistent or references node
    /// ids outside a fleet of `n` (the asserting twin of
    /// [`FaultPlan::check`], used where a bad plan is a programming
    /// error).
    pub fn validate(&self, n: usize) {
        if let Err(e) = self.check(n) {
            panic!("invalid fault plan: {e}");
        }
    }

    /// The rates governing the directed link `from → to`.
    #[must_use]
    pub fn link_faults(&self, from: usize, to: usize) -> LinkFaults {
        self.link_overrides
            .iter()
            .find(|(f, t, _)| *f == from && *t == to)
            .map_or(self.link, |(_, _, faults)| *faults)
    }

    /// Whether `node` is crashed at `epoch`.
    #[must_use]
    pub fn is_down(&self, node: usize, epoch: usize) -> bool {
        self.crashes.iter().any(|c| c.down_at(node, epoch))
    }

    /// Nodes that are down for the whole run (crash at epoch 0, never
    /// rejoin): they never attest, never hold sessions, and are pruned
    /// from their neighbours' views before TEE setup.
    #[must_use]
    pub fn dead_at_setup(&self, n: usize) -> Vec<bool> {
        (0..n)
            .map(|node| {
                self.crashes
                    .iter()
                    .any(|c| c.node == node && c.crash_epoch == 0 && c.rejoin_epoch.is_none())
            })
            .collect()
    }

    /// A uniform draw in `[0, 1)` for message `index` on `from → to`
    /// under `salt` — a pure function, the heart of replayability.
    fn unit(&self, salt: u64, from: usize, to: usize, index: u64) -> f64 {
        let mut h = splitmix64(self.seed ^ salt);
        h = splitmix64(h ^ (from as u64).wrapping_mul(0xA24B_AED4_963E_E407));
        h = splitmix64(h ^ (to as u64).wrapping_mul(0x9FB2_1C65_1E98_DF25));
        h = splitmix64(h ^ index);
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Decides the fate of message `index` on `from → to` sent during
    /// `epoch`.
    #[must_use]
    pub fn fate(&self, epoch: usize, from: usize, to: usize, index: u64) -> Fate {
        if self.partitions.iter().any(|p| p.cuts(epoch, from, to)) {
            return Fate::Drop;
        }
        let lf = self.link_faults(from, to);
        if lf.drop > 0.0 && self.unit(SALT_DROP, from, to, index) < lf.drop {
            return Fate::Drop;
        }
        if lf.delay > 0.0 && self.unit(SALT_DELAY, from, to, index) < lf.delay {
            return Fate::Delay;
        }
        if lf.duplicate > 0.0 && self.unit(SALT_DUP, from, to, index) < lf.duplicate {
            return Fate::Duplicate;
        }
        if lf.reorder > 0.0 && self.unit(SALT_REORDER, from, to, index) < lf.reorder {
            return Fate::Reorder;
        }
        Fate::Deliver
    }
}

/// A message the injector is holding back: released into the inner
/// transport at the flush/sync of `release_epoch`.
#[derive(Debug)]
struct Held {
    release_epoch: usize,
    from: usize,
    to: usize,
    bytes: Vec<u8>,
}

/// The fault decision core shared by both wrapper shapes. `counters`
/// indexes directed links as `from * n + to` for the fabric wrapper and
/// as `to` for a single endpoint (whose `from` is fixed).
#[derive(Debug)]
struct Injector {
    plan: FaultPlan,
    /// `Some(epoch)` once the protocol phase began; `None` during setup
    /// (faults inactive).
    epoch: Option<usize>,
    counters: Vec<u64>,
    /// Messages reordered to the back of the current round.
    reordered: Vec<Held>,
    /// Messages delayed into a later round.
    delayed: Vec<Held>,
    delivery: DeliveryStats,
}

impl Injector {
    fn new(plan: FaultPlan, links: usize) -> Self {
        Injector {
            plan,
            epoch: None,
            counters: vec![0; links],
            reordered: Vec::new(),
            delayed: Vec::new(),
            delivery: DeliveryStats::default(),
        }
    }

    /// Routes one send: forwards into `forward` zero, one, or two times
    /// now, or holds the message for a later release.
    fn route(
        &mut self,
        slot: usize,
        from: usize,
        to: usize,
        bytes: Vec<u8>,
        forward: &mut impl FnMut(usize, usize, Vec<u8>),
    ) {
        let Some(epoch) = self.epoch else {
            // Setup phase: attestation traffic is never faulted (and not
            // counted — delivery stats describe protocol rounds).
            forward(from, to, bytes);
            return;
        };
        let index = self.counters[slot];
        self.counters[slot] += 1;
        match self.plan.fate(epoch, from, to, index) {
            Fate::Deliver => {
                self.delivery.delivered += 1;
                forward(from, to, bytes);
            }
            Fate::Drop => self.delivery.dropped += 1,
            Fate::Delay => {
                self.delivery.late += 1;
                self.delayed.push(Held {
                    release_epoch: epoch + 1,
                    from,
                    to,
                    bytes,
                });
            }
            Fate::Duplicate => {
                self.delivery.delivered += 2;
                self.delivery.duplicated += 1;
                forward(from, to, bytes.clone());
                forward(from, to, bytes);
            }
            Fate::Reorder => {
                self.delivery.delivered += 1;
                self.reordered.push(Held {
                    release_epoch: epoch,
                    from,
                    to,
                    bytes,
                });
            }
        }
    }

    /// Drops every held message addressed to or sent by `node` — the
    /// membership-leave purge: a graceful leaver's in-flight delayed
    /// messages die with it, identically in the engine's central
    /// wrapper and in each deployed process's endpoint wrapper (where a
    /// release after retirement would otherwise target a torn-down
    /// connection). The messages were already counted `late` when they
    /// were held; they are never counted `delivered`.
    fn forget_node(&mut self, node: usize) {
        self.delayed.retain(|h| h.from != node && h.to != node);
        self.reordered.retain(|h| h.from != node && h.to != node);
    }

    /// Releases held messages at a round boundary (wrapper `flush` /
    /// `sync`, *before* the inner barrier): all reordered messages of
    /// this round, plus delayed messages whose release round arrived.
    fn release(&mut self, forward: &mut impl FnMut(usize, usize, Vec<u8>)) {
        let Some(epoch) = self.epoch else { return };
        for held in self.reordered.drain(..) {
            forward(held.from, held.to, held.bytes);
        }
        let mut kept = Vec::new();
        for held in self.delayed.drain(..) {
            if held.release_epoch <= epoch {
                self.delivery.delivered += 1;
                forward(held.from, held.to, held.bytes);
            } else {
                kept.push(held);
            }
        }
        self.delayed = kept;
    }
}

/// Fault-injecting fabric wrapper: `FaultyTransport<MemNetwork>`,
/// `FaultyTransport<ChannelTransport>`, `FaultyTransport<TcpTransport>`
/// all run the same plan reproducibly. See the module docs.
pub struct FaultyTransport<T: Transport> {
    inner: T,
    inj: Injector,
}

impl<T: Transport> FaultyTransport<T> {
    /// Wraps `inner` under `plan`.
    ///
    /// # Panics
    /// If the plan fails [`FaultPlan::validate`] against the fabric
    /// size.
    #[must_use]
    pub fn new(inner: T, plan: FaultPlan) -> Self {
        let n = inner.num_nodes();
        plan.validate(n);
        FaultyTransport {
            inner,
            inj: Injector::new(plan, n * n),
        }
    }

    /// The wrapped plan.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.inj.plan
    }

    /// Read access to the wrapped fabric.
    #[must_use]
    pub fn inner(&self) -> &T {
        &self.inner
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    type Endpoint = FaultyEndpoint<T::Endpoint>;

    fn num_nodes(&self) -> usize {
        self.inner.num_nodes()
    }

    fn send(&mut self, from: usize, to: usize, bytes: Vec<u8>) {
        let n = self.inner.num_nodes();
        let inner = &mut self.inner;
        self.inj
            .route(from * n + to, from, to, bytes, &mut |f, t, b| {
                inner.send(f, t, b);
            });
    }

    fn recv(&mut self, node: usize) -> Vec<Envelope> {
        self.inner.recv(node)
    }

    fn flush(&mut self) {
        let inner = &mut self.inner;
        self.inj.release(&mut |f, t, b| inner.send(f, t, b));
        self.inner.flush();
    }

    fn epoch_begin(&mut self, epoch: usize) {
        self.inj.epoch = Some(epoch);
        self.inner.epoch_begin(epoch);
    }

    fn view_sync(&mut self, epoch: usize, joined: &[usize], left: &[usize]) {
        for &l in left {
            self.inj.forget_node(l);
        }
        self.inner.view_sync(epoch, joined, left);
    }

    fn take_delivery(&mut self) -> DeliveryStats {
        std::mem::take(&mut self.inj.delivery)
    }

    fn stats(&self, node: usize) -> TrafficStats {
        self.inner.stats(node)
    }

    fn all_stats(&self) -> Vec<TrafficStats> {
        self.inner.all_stats()
    }

    fn into_endpoints(self) -> Option<Vec<FaultyEndpoint<T::Endpoint>>> {
        let n = self.inner.num_nodes();
        let plan = self.inj.plan;
        let epoch = self.inj.epoch;
        debug_assert!(
            self.inj.delayed.is_empty() && self.inj.reordered.is_empty(),
            "splitting a fabric with in-flight held messages"
        );
        let endpoints = self.inner.into_endpoints()?;
        debug_assert_eq!(endpoints.len(), n);
        Some(
            endpoints
                .into_iter()
                .enumerate()
                .map(|(id, inner)| {
                    let mut inj = Injector::new(plan.clone(), n);
                    inj.epoch = epoch;
                    // Carry this node's outgoing per-link counters over so
                    // a mid-run split (not something the engine does, but
                    // legal) keeps the hash streams aligned.
                    inj.counters
                        .copy_from_slice(&self.inj.counters[id * n..(id + 1) * n]);
                    FaultyEndpoint { inner, inj }
                })
                .collect(),
        )
    }
}

/// Fault-injecting per-node endpoint wrapper; decisions for a link
/// `self → to` are identical to the fabric wrapper's.
pub struct FaultyEndpoint<E: Endpoint> {
    inner: E,
    inj: Injector,
}

impl<E: Endpoint> FaultyEndpoint<E> {
    /// Wraps a single endpoint under `plan` (the distributed `rex-node`
    /// shape: every process wraps its own endpoint with the same plan).
    ///
    /// # Panics
    /// If the plan fails [`FaultPlan::validate`] against the fabric
    /// size.
    #[must_use]
    pub fn new(inner: E, plan: FaultPlan) -> Self {
        let n = inner.num_nodes();
        plan.validate(n);
        FaultyEndpoint {
            inj: Injector::new(plan, n),
            inner,
        }
    }

    /// Read access to the wrapped endpoint.
    #[must_use]
    pub fn inner(&self) -> &E {
        &self.inner
    }
}

impl<E: Endpoint> Endpoint for FaultyEndpoint<E> {
    fn id(&self) -> usize {
        self.inner.id()
    }

    fn num_nodes(&self) -> usize {
        self.inner.num_nodes()
    }

    fn send(&mut self, to: usize, bytes: Vec<u8>) {
        let from = self.inner.id();
        let inner = &mut self.inner;
        self.inj.route(to, from, to, bytes, &mut |_, t, b| {
            inner.send(t, b);
        });
    }

    fn recv(&mut self) -> Vec<Envelope> {
        self.inner.recv()
    }

    fn sync(&mut self) {
        let inner = &mut self.inner;
        self.inj.release(&mut |_, t, b| inner.send(t, b));
        self.inner.sync();
    }

    fn try_sync(&mut self) -> Result<(), crate::transport::TransportError> {
        // Same release point as `sync` — held messages go out before the
        // inner barrier, whichever error surface the caller uses.
        let inner = &mut self.inner;
        self.inj.release(&mut |_, t, b| inner.send(t, b));
        self.inner.try_sync()
    }

    fn view_sync(
        &mut self,
        epoch: usize,
        joined: &[usize],
        left: &[usize],
    ) -> Result<(), crate::transport::TransportError> {
        // Membership is infrastructure, not protocol: admissions and
        // retirements pass through unfaulted (the *bootstrap payload*
        // is a normal epoch send and very much faultable). A leaver's
        // held (delayed) messages die with it — releasing them after
        // retirement would target a torn-down connection, and the
        // engine's central wrapper purges the same set.
        for &l in left {
            self.inj.forget_node(l);
        }
        self.inner.view_sync(epoch, joined, left)
    }

    fn join_evidence(&mut self, peer: usize) -> Option<Vec<u8>> {
        self.inner.join_evidence(peer)
    }

    fn drain_barrier(&mut self) {
        // Barrier only — no release. The deployed node loop runs a wire
        // barrier *before* sending too; releasing held messages there
        // would both reorder them ahead of the epoch's normal sends and
        // race slow peers' current-epoch drain. Held messages go out
        // exclusively at the post-send `sync`, exactly where the
        // engine's drivers release them.
        self.inner.sync();
    }

    fn try_drain_barrier(&mut self) -> Result<(), crate::transport::TransportError> {
        // Barrier only, like `drain_barrier` — see above.
        self.inner.try_sync()
    }

    fn epoch_begin(&mut self, epoch: usize) {
        self.inj.epoch = Some(epoch);
        self.inner.epoch_begin(epoch);
    }

    fn take_delivery(&mut self) -> DeliveryStats {
        std::mem::take(&mut self.inj.delivery)
    }

    fn send_commitment(&mut self, epoch: u64, digest: [u8; 32], tag: [u8; 32]) {
        // Commitments are audit infrastructure, not protocol traffic:
        // they pass through unfaulted (dropping one would fake
        // misbehaviour where there is none), like membership admissions.
        self.inner.send_commitment(epoch, digest, tag);
    }

    fn take_commitments(&mut self) -> Vec<crate::transport::PeerCommitment> {
        self.inner.take_commitments()
    }

    fn stats(&self) -> TrafficStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemNetwork;

    fn msg(b: u8) -> Vec<u8> {
        vec![b]
    }

    #[test]
    fn empty_plan_is_transparent() {
        let mut net = FaultyTransport::new(MemNetwork::new(3), FaultPlan::default());
        net.epoch_begin(0);
        net.send(0, 1, msg(1));
        net.send(2, 1, msg(2));
        net.flush();
        let inbox = net.recv(1);
        assert_eq!(inbox.len(), 2);
        assert_eq!(net.stats(0).bytes_out, 1);
        assert_eq!(
            net.take_delivery(),
            DeliveryStats {
                delivered: 2,
                ..DeliveryStats::default()
            }
        );
    }

    #[test]
    fn setup_phase_traffic_is_never_faulted() {
        let plan = FaultPlan::uniform(1, LinkFaults::drop_rate(1.0));
        let mut net = FaultyTransport::new(MemNetwork::new(2), plan);
        // No epoch_begin yet: this is attestation-style setup traffic.
        net.send(0, 1, msg(9));
        net.flush();
        assert_eq!(net.recv(1).len(), 1);
        assert_eq!(net.take_delivery(), DeliveryStats::default());
        // Once the first epoch begins, the same link loses everything.
        net.epoch_begin(0);
        net.send(0, 1, msg(9));
        net.flush();
        assert!(net.recv(1).is_empty());
        assert_eq!(net.take_delivery().dropped, 1);
    }

    #[test]
    fn full_drop_loses_everything_and_counts_it() {
        let plan = FaultPlan::uniform(3, LinkFaults::drop_rate(1.0));
        let mut net = FaultyTransport::new(MemNetwork::new(2), plan);
        net.epoch_begin(0);
        for i in 0..10 {
            net.send(0, 1, msg(i));
        }
        net.flush();
        assert!(net.recv(1).is_empty());
        let d = net.take_delivery();
        assert_eq!(d.dropped, 10);
        assert_eq!(d.delivered, 0);
    }

    #[test]
    fn drop_rate_is_roughly_honoured_and_replays_bitwise() {
        let plan = FaultPlan::uniform(7, LinkFaults::drop_rate(0.3));
        let run = |plan: FaultPlan| {
            let mut net = FaultyTransport::new(MemNetwork::new(2), plan);
            net.epoch_begin(0);
            for i in 0..200u8 {
                net.send(0, 1, msg(i));
            }
            net.flush();
            let got: Vec<u8> = net.recv(1).iter().map(|e| e.bytes[0]).collect();
            (got, net.take_delivery())
        };
        let (got_a, del_a) = run(plan.clone());
        let (got_b, del_b) = run(plan);
        assert_eq!(got_a, got_b, "same seed must replay bit-for-bit");
        assert_eq!(del_a, del_b);
        let dropped = del_a.dropped as f64 / 200.0;
        assert!(
            (0.15..=0.45).contains(&dropped),
            "0.3 drop rate realized as {dropped}"
        );
        // A different seed re-rolls the fates.
        let (got_c, _) = run(FaultPlan::uniform(8, LinkFaults::drop_rate(0.3)));
        assert_ne!(got_a, got_c);
    }

    #[test]
    fn delay_holds_one_full_round() {
        let plan = FaultPlan::uniform(
            0,
            LinkFaults {
                delay: 1.0,
                ..LinkFaults::default()
            },
        );
        let mut net = FaultyTransport::new(MemNetwork::new(2), plan);
        net.epoch_begin(0);
        net.send(0, 1, msg(42));
        net.flush();
        assert!(net.recv(1).is_empty(), "delayed out of its own round");
        net.epoch_begin(1);
        net.flush();
        let inbox = net.recv(1);
        assert_eq!(inbox.len(), 1, "released one round later");
        assert_eq!(inbox[0].bytes, msg(42));
        let d = net.take_delivery();
        assert_eq!((d.late, d.delivered), (1, 1));
    }

    #[test]
    fn duplicate_delivers_twice() {
        let plan = FaultPlan::uniform(
            0,
            LinkFaults {
                duplicate: 1.0,
                ..LinkFaults::default()
            },
        );
        let mut net = FaultyTransport::new(MemNetwork::new(2), plan);
        net.epoch_begin(0);
        net.send(0, 1, msg(5));
        net.flush();
        assert_eq!(net.recv(1).len(), 2);
        let d = net.take_delivery();
        assert_eq!((d.delivered, d.duplicated), (2, 1));
    }

    #[test]
    fn reorder_moves_message_to_back_of_sender_fifo() {
        let plan = FaultPlan::default().with_link(
            0,
            1,
            LinkFaults {
                reorder: 1.0,
                ..LinkFaults::default()
            },
        );
        let mut net = FaultyTransport::new(MemNetwork::new(3), plan);
        net.epoch_begin(0);
        net.send(0, 1, msg(1)); // reordered to the back
        net.send(2, 1, msg(2)); // clean link, delivered in place
        net.send(0, 1, msg(3)); // also reordered, after msg 1
        net.flush();
        let inbox = net.recv(1);
        let order: Vec<(usize, u8)> = inbox.iter().map(|e| (e.from, e.bytes[0])).collect();
        // Canonical order sorts by sender; within sender 0's FIFO the
        // reorder pushed both to the release position, preserving their
        // relative order.
        assert_eq!(order, vec![(0, 1), (0, 3), (2, 2)]);
    }

    #[test]
    fn partition_cuts_only_across_groups_and_heals() {
        let plan = FaultPlan::default().with_partition(1, 2, vec![0]);
        let mut net = FaultyTransport::new(MemNetwork::new(3), plan);
        net.epoch_begin(1); // partition active
        net.send(0, 1, msg(1)); // crosses the cut: dropped
        net.send(1, 2, msg(2)); // same side: delivered
        net.flush();
        assert!(net.recv(1).is_empty());
        assert_eq!(net.recv(2).len(), 1);
        let d = net.take_delivery();
        assert_eq!((d.dropped, d.delivered), (1, 1));
        net.epoch_begin(2); // healed
        net.send(0, 1, msg(3));
        net.flush();
        assert_eq!(net.recv(1).len(), 1);
    }

    #[test]
    fn asymmetric_override_affects_one_direction() {
        let plan = FaultPlan::default().with_link(0, 1, LinkFaults::drop_rate(1.0));
        let mut net = FaultyTransport::new(MemNetwork::new(2), plan);
        net.epoch_begin(0);
        net.send(0, 1, msg(1));
        net.send(1, 0, msg(2));
        net.flush();
        assert!(net.recv(1).is_empty(), "0->1 fully lossy");
        assert_eq!(net.recv(0).len(), 1, "1->0 untouched");
    }

    #[test]
    fn endpoint_and_fabric_wrappers_decide_identically() {
        let plan = FaultPlan::uniform(11, LinkFaults::drop_rate(0.5));
        // Fabric-level decisions.
        let mut fabric = FaultyTransport::new(MemNetwork::new(2), plan.clone());
        fabric.epoch_begin(0);
        for i in 0..64u8 {
            fabric.send(0, 1, msg(i));
        }
        fabric.flush();
        let fabric_got: Vec<u8> = fabric.recv(1).iter().map(|e| e.bytes[0]).collect();

        // Endpoint-level decisions over a channel backend.
        let eps = crate::channel::channel_network(2);
        let mut eps = eps.into_iter();
        let mut a = FaultyEndpoint::new(eps.next().unwrap(), plan);
        let mut b = eps.next().unwrap();
        a.epoch_begin(0);
        for i in 0..64u8 {
            Endpoint::send(&mut a, 1, msg(i));
        }
        Endpoint::sync(&mut a);
        let ep_got: Vec<u8> = Endpoint::recv(&mut b).iter().map(|e| e.bytes[0]).collect();
        assert_eq!(fabric_got, ep_got);
    }

    #[test]
    fn crash_windows_and_setup_deadness() {
        let plan = FaultPlan::default()
            .with_crash(1, 0, None)
            .with_crash(2, 3, Some(5));
        assert!(plan.is_down(1, 0) && plan.is_down(1, 100));
        assert!(!plan.is_down(2, 2) && plan.is_down(2, 3) && plan.is_down(2, 4));
        assert!(!plan.is_down(2, 5));
        assert_eq!(plan.dead_at_setup(4), vec![false, true, false, false]);
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn bad_rate_rejected() {
        FaultPlan::uniform(0, LinkFaults::drop_rate(1.5)).validate(2);
    }

    #[test]
    #[should_panic(expected = "outside fleet")]
    fn crash_outside_fleet_rejected() {
        FaultPlan::default().with_crash(9, 0, None).validate(4);
    }
}
