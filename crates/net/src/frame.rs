//! Length-prefixed wire framing for the TCP transport.
//!
//! Every byte that crosses a [`crate::tcp`] socket travels inside one
//! frame: a 9-byte header — kind tag, sender node id, body length, all
//! little-endian — followed by the body. The kinds:
//!
//! * [`Frame::Hello`] — sent once by the dialing side of each connection
//!   so the accepting side learns which peer it is talking to;
//! * [`Frame::Data`] — carries one protocol message (an encoded
//!   [`crate::message::Payload`]); only these bodies are accounted in
//!   [`crate::stats::TrafficStats`], which keeps byte counts bit-identical
//!   with the in-memory backends;
//! * [`Frame::Barrier`] — a round-barrier token with a generation number;
//!   control plane, never accounted;
//! * [`Frame::Join`] / [`Frame::Welcome`] — the online-join admission
//!   handshake; control plane, never accounted;
//! * [`Frame::Commitment`] — a per-epoch signed model-digest commitment
//!   (fixed 72-byte body); control plane, never accounted.
//!
//! The codec is split into pure buffer functions ([`encode_frame`] /
//! [`decode_frame`]) that the tests exercise exhaustively, and streaming
//! wrappers ([`write_frame`] / [`read_frame`]) over [`std::io`] used by
//! the socket reader/writer paths. Hostile or corrupt length fields are
//! rejected before any allocation via [`MAX_BODY_LEN`].

use std::io::{self, Read, Write};

/// Frame kind tags on the wire.
const KIND_HELLO: u8 = 1;
const KIND_DATA: u8 = 2;
const KIND_BARRIER: u8 = 3;
const KIND_JOIN: u8 = 4;
const KIND_WELCOME: u8 = 5;
const KIND_COMMITMENT: u8 = 6;

/// Fixed body size of a [`Frame::Commitment`]: epoch (8) + digest (32) +
/// tag (32).
const COMMITMENT_BODY_LEN: usize = 72;

/// Fixed header size: kind (1) + from (4) + body length (4).
pub const HEADER_LEN: usize = 9;

/// Sanity cap on frame bodies (256 MiB): far above any REX payload (the
/// message codec caps vectors at 16 Mi entries) but small enough to stop a
/// corrupt length prefix from attempting a huge allocation.
pub const MAX_BODY_LEN: u32 = 256 * 1024 * 1024;

/// One wire frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Connection bootstrap: "this connection speaks for node `from`".
    Hello {
        /// Dialing node's id.
        from: usize,
    },
    /// One protocol message.
    Data {
        /// Sending node's id.
        from: usize,
        /// Encoded payload (what the in-memory backends would carry
        /// verbatim; its length is what traffic stats record).
        payload: Vec<u8>,
    },
    /// Round-barrier token.
    Barrier {
        /// Sending node's id.
        from: usize,
        /// Barrier generation the sender has entered.
        generation: u64,
    },
    /// Online-join bootstrap: "this connection speaks for node `from`,
    /// which the shared membership schedule admits at `epoch`". Sent by
    /// the dialing joiner; the accepting member validates it against its
    /// own view and replies [`Frame::Welcome`]. Control plane, never
    /// accounted in payload traffic.
    Join {
        /// Joining node's id.
        from: usize,
        /// The epoch the joiner enters the view.
        epoch: u64,
        /// Late-attestation evidence (an encoded quote payload; empty in
        /// native mode).
        evidence: Vec<u8>,
    },
    /// Join admission reply: carries the admitting member's current
    /// barrier generation so the joiner can align with the running
    /// cluster's wire barrier. Control plane, never accounted.
    Welcome {
        /// Admitting node's id.
        from: usize,
        /// The join epoch being acknowledged.
        epoch: u64,
        /// The admitting side's barrier generation at admission.
        generation: u64,
    },
    /// Per-epoch signed model-digest commitment (`rex-core`'s
    /// commitment chain): the sender's chained SHA-256 digest after
    /// `epoch`, bound to its identity by an HMAC tag. Ships alongside
    /// the epoch's data frames so peers (and a later challenger) hold
    /// the claims a replay is audited against. Control plane, never
    /// accounted in payload traffic — byte counts stay bit-identical
    /// with the in-memory backends.
    Commitment {
        /// Committing node's id.
        from: usize,
        /// The epoch the commitment covers.
        epoch: u64,
        /// Chained model digest after this epoch.
        digest: [u8; 32],
        /// HMAC tag binding the digest to the sender's identity.
        tag: [u8; 32],
    },
}

/// Framing failure.
#[derive(Debug)]
pub enum FrameError {
    /// Socket-level failure.
    Io(io::Error),
    /// Structurally invalid frame (unknown kind, oversized or mismatched
    /// length field, truncated buffer).
    Invalid(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame io: {e}"),
            FrameError::Invalid(m) => write!(f, "invalid frame: {m}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

fn header(kind: u8, from: usize, len: usize) -> [u8; HEADER_LEN] {
    // Mirror of the decode-side cap: silently truncating `len as u32`
    // would desynchronize the stream and surface at the *peer* as a
    // bogus disconnect. Oversized payloads are a protocol bug here.
    assert!(
        len as u64 <= u64::from(MAX_BODY_LEN),
        "frame body of {len} bytes exceeds cap {MAX_BODY_LEN}"
    );
    let mut h = [0u8; HEADER_LEN];
    h[0] = kind;
    h[1..5].copy_from_slice(&(from as u32).to_le_bytes());
    h[5..9].copy_from_slice(&(len as u32).to_le_bytes());
    h
}

/// Appends a frame's wire encoding (header + body) to `buf` without
/// allocating: the destination is caller-owned and reusable, so hot send
/// paths (the TCP endpoint's per-peer output buffers) stage many frames
/// into one buffer and amortize its capacity across epochs.
pub fn encode_frame_into(frame: &Frame, buf: &mut Vec<u8>) {
    match frame {
        Frame::Hello { from } => buf.extend_from_slice(&header(KIND_HELLO, *from, 0)),
        Frame::Data { from, payload } => {
            buf.reserve(HEADER_LEN + payload.len());
            buf.extend_from_slice(&header(KIND_DATA, *from, payload.len()));
            buf.extend_from_slice(payload);
        }
        Frame::Barrier { from, generation } => {
            buf.reserve(HEADER_LEN + 8);
            buf.extend_from_slice(&header(KIND_BARRIER, *from, 8));
            buf.extend_from_slice(&generation.to_le_bytes());
        }
        Frame::Join {
            from,
            epoch,
            evidence,
        } => {
            buf.reserve(HEADER_LEN + 8 + evidence.len());
            buf.extend_from_slice(&header(KIND_JOIN, *from, 8 + evidence.len()));
            buf.extend_from_slice(&epoch.to_le_bytes());
            buf.extend_from_slice(evidence);
        }
        Frame::Welcome {
            from,
            epoch,
            generation,
        } => {
            buf.reserve(HEADER_LEN + 16);
            buf.extend_from_slice(&header(KIND_WELCOME, *from, 16));
            buf.extend_from_slice(&epoch.to_le_bytes());
            buf.extend_from_slice(&generation.to_le_bytes());
        }
        Frame::Commitment {
            from,
            epoch,
            digest,
            tag,
        } => {
            buf.reserve(HEADER_LEN + COMMITMENT_BODY_LEN);
            buf.extend_from_slice(&header(KIND_COMMITMENT, *from, COMMITMENT_BODY_LEN));
            buf.extend_from_slice(&epoch.to_le_bytes());
            buf.extend_from_slice(digest);
            buf.extend_from_slice(tag);
        }
    }
}

/// Encodes a frame into a fresh contiguous buffer (header + body). Thin
/// wrapper over [`encode_frame_into`] for callers that want an owned
/// buffer; hot paths should use [`encode_frame_into`] directly.
#[must_use]
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut buf = Vec::new();
    encode_frame_into(frame, &mut buf);
    buf
}

/// Parses a decoded header into `(kind, from, body_len)`, validating the
/// length field.
fn parse_header(h: &[u8; HEADER_LEN]) -> Result<(u8, usize, usize), FrameError> {
    let kind = h[0];
    let from = u32::from_le_bytes([h[1], h[2], h[3], h[4]]) as usize;
    let len = u32::from_le_bytes([h[5], h[6], h[7], h[8]]);
    if len > MAX_BODY_LEN {
        return Err(FrameError::Invalid(format!(
            "body length {len} exceeds cap {MAX_BODY_LEN}"
        )));
    }
    Ok((kind, from, len as usize))
}

fn build_frame(kind: u8, from: usize, body: &[u8]) -> Result<Frame, FrameError> {
    match kind {
        KIND_HELLO => {
            if !body.is_empty() {
                return Err(FrameError::Invalid(format!(
                    "hello frame with {}-byte body",
                    body.len()
                )));
            }
            Ok(Frame::Hello { from })
        }
        KIND_DATA => Ok(Frame::Data {
            from,
            payload: body.to_vec(),
        }),
        KIND_BARRIER => {
            if body.len() != 8 {
                return Err(FrameError::Invalid(format!(
                    "barrier frame with {}-byte body",
                    body.len()
                )));
            }
            let mut g = [0u8; 8];
            g.copy_from_slice(body);
            Ok(Frame::Barrier {
                from,
                generation: u64::from_le_bytes(g),
            })
        }
        KIND_JOIN => {
            if body.len() < 8 {
                return Err(FrameError::Invalid(format!(
                    "join frame with {}-byte body",
                    body.len()
                )));
            }
            let mut e = [0u8; 8];
            e.copy_from_slice(&body[..8]);
            Ok(Frame::Join {
                from,
                epoch: u64::from_le_bytes(e),
                evidence: body[8..].to_vec(),
            })
        }
        KIND_WELCOME => {
            if body.len() != 16 {
                return Err(FrameError::Invalid(format!(
                    "welcome frame with {}-byte body",
                    body.len()
                )));
            }
            let mut e = [0u8; 8];
            e.copy_from_slice(&body[..8]);
            let mut g = [0u8; 8];
            g.copy_from_slice(&body[8..]);
            Ok(Frame::Welcome {
                from,
                epoch: u64::from_le_bytes(e),
                generation: u64::from_le_bytes(g),
            })
        }
        KIND_COMMITMENT => {
            if body.len() != COMMITMENT_BODY_LEN {
                return Err(FrameError::Invalid(format!(
                    "commitment frame with {}-byte body",
                    body.len()
                )));
            }
            let mut e = [0u8; 8];
            e.copy_from_slice(&body[..8]);
            let mut digest = [0u8; 32];
            digest.copy_from_slice(&body[8..40]);
            let mut tag = [0u8; 32];
            tag.copy_from_slice(&body[40..]);
            Ok(Frame::Commitment {
                from,
                epoch: u64::from_le_bytes(e),
                digest,
                tag,
            })
        }
        other => Err(FrameError::Invalid(format!("unknown frame kind {other}"))),
    }
}

/// Decodes one frame from the start of `buf`; returns the frame and the
/// number of bytes consumed. Fails on truncation, unknown kinds, and
/// hostile length fields — never panics.
pub fn decode_frame(buf: &[u8]) -> Result<(Frame, usize), FrameError> {
    if buf.len() < HEADER_LEN {
        return Err(FrameError::Invalid(format!(
            "truncated header: {} of {HEADER_LEN} bytes",
            buf.len()
        )));
    }
    let mut h = [0u8; HEADER_LEN];
    h.copy_from_slice(&buf[..HEADER_LEN]);
    let (kind, from, len) = parse_header(&h)?;
    let end = HEADER_LEN + len;
    if buf.len() < end {
        return Err(FrameError::Invalid(format!(
            "truncated body: {} of {len} bytes",
            buf.len() - HEADER_LEN
        )));
    }
    Ok((build_frame(kind, from, &buf[HEADER_LEN..end])?, end))
}

/// Writes one frame to `w` (single `write_all`, so concurrent writers
/// interleave only at frame granularity when externally serialized). The
/// encoding stages through a thread-local scratch buffer routed via
/// [`encode_frame_into`], so steady-state calls allocate nothing.
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> io::Result<()> {
    thread_local! {
        static SCRATCH: std::cell::RefCell<Vec<u8>> = const { std::cell::RefCell::new(Vec::new()) };
    }
    SCRATCH.with(|cell| {
        let mut buf = cell.borrow_mut();
        buf.clear();
        encode_frame_into(frame, &mut buf);
        w.write_all(&buf)
    })
}

/// Reads one frame from `r`. Returns `Ok(None)` on clean EOF at a frame
/// boundary; mid-frame EOF and malformed frames are errors.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Frame>, FrameError> {
    let mut h = [0u8; HEADER_LEN];
    let mut filled = 0;
    while filled < HEADER_LEN {
        match r.read(&mut h[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(FrameError::Invalid(format!(
                    "eof inside header after {filled} bytes"
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    let (kind, from, len) = parse_header(&h)?;
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(Some(build_frame(kind, from, &body)?))
}

/// Incremental frame decoder over a **reusable** buffer: feed raw socket
/// bytes in with [`FrameAssembler::extend`] in whatever chunks the kernel
/// hands out, pull complete frames with [`FrameAssembler::next_frame`].
/// Unlike [`decode_frame`], an incomplete frame is not an error — it is
/// `Ok(None)` ("need more bytes") — while hostile headers (unknown kind,
/// oversized length) fail before any body is buffered. The internal
/// buffer is compacted in place and its capacity reused across frames,
/// so a steady message stream decodes without per-frame allocation
/// (frame *payloads* are still copied out, matching
/// [`crate::mem::Envelope`] ownership).
#[derive(Debug, Default)]
pub struct FrameAssembler {
    buf: Vec<u8>,
    /// Start of un-decoded bytes within `buf`; everything before it has
    /// been consumed and awaits compaction.
    pos: usize,
}

impl FrameAssembler {
    /// Fresh assembler with an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw bytes read off the wire.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Compact before growing: once the consumed prefix dominates the
        // buffer, shifting the live tail down is cheaper than letting the
        // allocation creep.
        if self.pos > 0 && (self.pos >= self.buf.len() || self.pos >= 4096) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Decodes the next complete frame, if the buffer holds one.
    ///
    /// # Errors
    /// On a structurally invalid frame (unknown kind, hostile length
    /// field, malformed fixed-size body) — the stream is unrecoverable
    /// past that point and the connection should be torn down.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, FrameError> {
        let avail = &self.buf[self.pos..];
        if avail.len() < HEADER_LEN {
            return Ok(None);
        }
        let mut h = [0u8; HEADER_LEN];
        h.copy_from_slice(&avail[..HEADER_LEN]);
        let (kind, from, len) = parse_header(&h)?;
        if avail.len() < HEADER_LEN + len {
            return Ok(None);
        }
        let frame = build_frame(kind, from, &avail[HEADER_LEN..HEADER_LEN + len])?;
        self.pos += HEADER_LEN + len;
        Ok(Some(frame))
    }

    /// Whether bytes of a partially received frame are pending — at EOF
    /// this distinguishes a clean close (frame boundary) from a peer
    /// dying mid-frame.
    #[must_use]
    pub fn mid_frame(&self) -> bool {
        self.pos < self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_kinds() {
        for frame in [
            Frame::Hello { from: 3 },
            Frame::Data {
                from: 7,
                payload: vec![1, 2, 3, 4, 5],
            },
            Frame::Data {
                from: 0,
                payload: Vec::new(),
            },
            Frame::Barrier {
                from: 2,
                generation: 0xDEAD_BEEF_u64,
            },
            Frame::Join {
                from: 4,
                epoch: 3,
                evidence: vec![9, 8, 7],
            },
            Frame::Join {
                from: 4,
                epoch: 0,
                evidence: Vec::new(),
            },
            Frame::Welcome {
                from: 1,
                epoch: 3,
                generation: 6,
            },
            Frame::Commitment {
                from: 6,
                epoch: 9,
                digest: [0xAB; 32],
                tag: [0xCD; 32],
            },
        ] {
            let bytes = encode_frame(&frame);
            let (back, consumed) = decode_frame(&bytes).unwrap();
            assert_eq!(back, frame);
            assert_eq!(consumed, bytes.len());
        }
    }

    #[test]
    fn decode_consumes_exactly_one_frame() {
        let mut buf = encode_frame(&Frame::Hello { from: 1 });
        let second = encode_frame(&Frame::Barrier {
            from: 1,
            generation: 9,
        });
        buf.extend_from_slice(&second);
        let (frame, consumed) = decode_frame(&buf).unwrap();
        assert_eq!(frame, Frame::Hello { from: 1 });
        let (frame2, _) = decode_frame(&buf[consumed..]).unwrap();
        assert_eq!(
            frame2,
            Frame::Barrier {
                from: 1,
                generation: 9
            }
        );
    }

    #[test]
    fn truncated_frames_error_never_panic() {
        let full = encode_frame(&Frame::Data {
            from: 4,
            payload: vec![9; 32],
        });
        for cut in 0..full.len() {
            assert!(
                decode_frame(&full[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn unknown_kind_rejected() {
        let mut buf = encode_frame(&Frame::Hello { from: 0 });
        buf[0] = 42;
        assert!(decode_frame(&buf).is_err());
    }

    #[test]
    fn oversized_length_prefix_rejected_before_allocation() {
        let mut buf = header(KIND_DATA, 0, 0).to_vec();
        buf[5..9].copy_from_slice(&u32::MAX.to_le_bytes());
        match decode_frame(&buf) {
            Err(FrameError::Invalid(m)) => assert!(m.contains("cap")),
            other => panic!("expected Invalid, got {other:?}"),
        }
    }

    #[test]
    fn malformed_fixed_size_bodies_rejected() {
        // Hello with a body.
        let mut buf = header(KIND_HELLO, 0, 3).to_vec();
        buf.extend_from_slice(&[1, 2, 3]);
        assert!(decode_frame(&buf).is_err());
        // Barrier with a short body.
        let mut buf = header(KIND_BARRIER, 0, 4).to_vec();
        buf.extend_from_slice(&[0; 4]);
        assert!(decode_frame(&buf).is_err());
        // Join too short to carry its epoch.
        let mut buf = header(KIND_JOIN, 0, 4).to_vec();
        buf.extend_from_slice(&[0; 4]);
        assert!(decode_frame(&buf).is_err());
        // Welcome with a short body.
        let mut buf = header(KIND_WELCOME, 0, 8).to_vec();
        buf.extend_from_slice(&[0; 8]);
        assert!(decode_frame(&buf).is_err());
        // Commitment with a truncated tag.
        let mut buf = header(KIND_COMMITMENT, 0, 40).to_vec();
        buf.extend_from_slice(&[0; 40]);
        assert!(decode_frame(&buf).is_err());
    }

    #[test]
    fn streaming_roundtrip_and_clean_eof() {
        let frames = [
            Frame::Hello { from: 5 },
            Frame::Data {
                from: 5,
                payload: vec![0xA5; 100],
            },
            Frame::Barrier {
                from: 5,
                generation: 1,
            },
        ];
        let mut wire = Vec::new();
        for f in &frames {
            write_frame(&mut wire, f).unwrap();
        }
        let mut r = &wire[..];
        for f in &frames {
            assert_eq!(read_frame(&mut r).unwrap().unwrap(), *f);
        }
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn encode_into_matches_encode_and_appends() {
        let frames = [
            Frame::Hello { from: 3 },
            Frame::Data {
                from: 7,
                payload: vec![1, 2, 3],
            },
            Frame::Barrier {
                from: 2,
                generation: 10,
            },
            Frame::Join {
                from: 4,
                epoch: 3,
                evidence: vec![9],
            },
            Frame::Welcome {
                from: 1,
                epoch: 3,
                generation: 6,
            },
            Frame::Commitment {
                from: 2,
                epoch: 4,
                digest: [0x11; 32],
                tag: [0x22; 32],
            },
        ];
        // Staging all frames into one buffer is byte-for-byte the
        // concatenation of the individual encodings — the coalesced
        // write path cannot change the wire format.
        let mut staged = Vec::new();
        let mut concat = Vec::new();
        for f in &frames {
            encode_frame_into(f, &mut staged);
            concat.extend_from_slice(&encode_frame(f));
        }
        assert_eq!(staged, concat);
    }

    #[test]
    fn assembler_reassembles_byte_by_byte() {
        let frames = [
            Frame::Hello { from: 5 },
            Frame::Data {
                from: 5,
                payload: vec![0xA5; 100],
            },
            Frame::Barrier {
                from: 5,
                generation: 1,
            },
        ];
        let mut wire = Vec::new();
        for f in &frames {
            encode_frame_into(f, &mut wire);
        }
        // Worst-case fragmentation: one byte per extend.
        let mut asm = FrameAssembler::new();
        let mut out = Vec::new();
        for b in &wire {
            asm.extend(std::slice::from_ref(b));
            while let Some(f) = asm.next_frame().unwrap() {
                out.push(f);
            }
        }
        assert_eq!(out, frames);
        assert!(!asm.mid_frame(), "stream ended at a frame boundary");
    }

    #[test]
    fn assembler_handles_bulk_chunks_spanning_frames() {
        let mut wire = Vec::new();
        for i in 0..50usize {
            encode_frame_into(
                &Frame::Data {
                    from: i,
                    payload: vec![i as u8; i * 7],
                },
                &mut wire,
            );
        }
        let mut asm = FrameAssembler::new();
        let mut got = 0usize;
        for chunk in wire.chunks(97) {
            asm.extend(chunk);
            while let Some(f) = asm.next_frame().unwrap() {
                match f {
                    Frame::Data { from, payload } => {
                        assert_eq!(payload, vec![from as u8; from * 7]);
                        assert_eq!(from, got);
                        got += 1;
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
        }
        assert_eq!(got, 50);
        assert!(!asm.mid_frame());
    }

    #[test]
    fn assembler_rejects_hostile_header_mid_stream() {
        let mut asm = FrameAssembler::new();
        asm.extend(&encode_frame(&Frame::Hello { from: 1 }));
        assert!(matches!(asm.next_frame(), Ok(Some(Frame::Hello { .. }))));
        // A corrupt length prefix after a valid frame fails without
        // buffering the claimed body.
        asm.extend(&[0xFF; 9]);
        assert!(matches!(asm.next_frame(), Err(FrameError::Invalid(_))));
        // And a partial frame reports mid-frame state for EOF handling.
        let mut asm = FrameAssembler::new();
        let full = encode_frame(&Frame::Data {
            from: 1,
            payload: vec![7; 16],
        });
        asm.extend(&full[..full.len() - 1]);
        assert!(asm.next_frame().unwrap().is_none());
        assert!(asm.mid_frame());
    }

    #[test]
    fn streaming_midframe_eof_is_error() {
        let wire = encode_frame(&Frame::Data {
            from: 1,
            payload: vec![7; 16],
        });
        let mut r = &wire[..wire.len() - 1];
        assert!(read_frame(&mut r).is_err());
    }
}
