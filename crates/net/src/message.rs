//! REX protocol messages.
//!
//! Two outer kinds travel on the wire (paper Algorithm 1/2):
//! * attestation messages in clear text ("only attestation messages, which
//!   are not privacy-sensitive, are exchanged in clear text"),
//! * AEAD-sealed frames whose plaintext is a [`Plain`] payload.
//!
//! Every data-bearing payload carries the sender's degree, required by
//! D-PSGD's Metropolis–Hastings weighting (§III-C2: "along with the model,
//! it also sends an integer corresponding to its degree").

use rex_data::Rating;
use rex_tee::attestation::AttestationMsg;

/// Outer wire message.
#[derive(Debug, Clone)]
pub enum Payload {
    /// Cleartext attestation handshake message.
    Attestation(AttestationMsg),
    /// An AEAD frame (ciphertext ‖ tag) produced by a `SecureSession`;
    /// plaintext decodes to a [`Plain`].
    Sealed(Vec<u8>),
    /// A plaintext payload — used only by *native* (non-SGX) deployments,
    /// which the paper evaluates as the no-protection baseline (§IV-D).
    Clear(Vec<u8>),
}

/// Inner (possibly encrypted) protocol payload.
#[derive(Debug, Clone, PartialEq)]
pub enum Plain {
    /// REX raw-data sharing: a batch of rating triplets.
    RawData {
        /// Sampled ratings (paper §III-C: randomly selected from the store).
        ratings: Vec<Rating>,
        /// Sender's degree in the topology.
        degree: u32,
    },
    /// Model sharing: an opaque serialized model.
    Model {
        /// `Model::to_bytes` output.
        bytes: Vec<u8>,
        /// Sender's degree in the topology.
        degree: u32,
    },
    /// REX raw-data sharing through the sparse wire codec: the same
    /// rating batch, but delta/nibble-packed on the wire (see
    /// [`crate::compress`]). Decodes back to the full triplet batch;
    /// receivers treat it exactly like [`Plain::RawData`]. Batch order
    /// is not preserved (the store treats batches as sets).
    RawPacked {
        /// The carried ratings (encode-side input / decode-side output).
        ratings: Vec<Rating>,
        /// Sender's degree in the topology.
        degree: u32,
    },
    /// Model sharing through the sparse wire codec: a `SparseDelta` of
    /// changed rows against the fleet's shared model initialization
    /// (`Model::delta_bytes` output). Receivers reconstruct the sender's
    /// full model bit-exactly via `Model::apply_delta`, then merge as if
    /// a [`Plain::Model`] had arrived.
    ModelDelta {
        /// `Model::delta_bytes` output.
        bytes: Vec<u8>,
        /// Sender's degree in the topology.
        degree: u32,
    },
    /// A content-free message that still satisfies barrier conditions
    /// (paper Algorithm 2: "a message (possibly empty) from all its
    /// neighbors").
    Empty {
        /// Sender's degree in the topology.
        degree: u32,
    },
}

impl Plain {
    /// The sender degree carried by any payload variant.
    #[must_use]
    pub fn degree(&self) -> u32 {
        match self {
            Plain::RawData { degree, .. }
            | Plain::Model { degree, .. }
            | Plain::RawPacked { degree, .. }
            | Plain::ModelDelta { degree, .. }
            | Plain::Empty { degree } => *degree,
        }
    }
}
